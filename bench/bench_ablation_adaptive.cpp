/**
 * @file
 * Ablation A6: adaptive profile-guided reoptimization (paper
 * Section 4.2 under LLEE). A cold launch profiles translated code,
 * promotes hot functions to the -O2+traces tier mid-run, and
 * persists both the profile and the promoted translations through
 * the offline cache; a warm launch reloads the trace-tier code and
 * starts at the top rung without re-profiling. This bench measures
 * the cold/warm asymmetry per workload: promotions performed, trace
 * coverage of the profile, online translation cost, and simulated
 * run time with and without the adaptive tier.
 *
 * Results land in BENCH_adaptive.json (see JsonReport) so CI can
 * archive and diff them.
 */

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "llee/llee.h"

using namespace llva;
using namespace llva::bench;

namespace {

CodeGenOptions
adaptiveOpts()
{
    CodeGenOptions opts;
    opts.optLevel = 2;
    opts.adaptive = true;
    opts.promoteWatermark = 500;
    return opts;
}

} // namespace

int
main(int argc, char **argv)
{
    std::printf("Ablation A6: adaptive reoptimization — cold "
                "profiling run vs warm trace-tier restart\n");
    hr('=');
    std::printf("%-18s %6s %6s %9s %9s %10s %10s %9s\n", "Program",
                "promo", "reload", "cov(%)", "cold(ms)", "base(Mi)",
                "warm(Mi)", "d-instr%");
    hr();

    Target &target = *getTarget("x86");
    JsonReport report("adaptive");
    for (const auto &info : allWorkloads()) {
        auto m = prepared(info);
        auto bc = writeBytecode(*m);

        // Baseline: plain -O2, no profiling, no promotion.
        CodeGenOptions base;
        base.optLevel = 2;
        LLEE baseline(target, nullptr, base);
        LLEEResult b = baseline.execute(bc);

        // Cold adaptive launch: profile, promote, persist.
        MemoryStorage storage;
        LLEE cold(target, &storage, adaptiveOpts());
        LLEEResult c = cold.execute(bc);

        // Warm restart against the same store: the promoted
        // trace-tier translations and the profile come back from
        // the cache; no re-profiling, no online translation.
        LLEE warm(target, &storage, adaptiveOpts());
        LLEEResult w = warm.execute(bc);

        if (!b.exec.ok() || c.exec.value.i != b.exec.value.i ||
            w.exec.value.i != b.exec.value.i ||
            c.output != b.output || w.output != b.output)
            fatal("adaptive-tier divergence in %s",
                  info.name.c_str());

        double d_instr =
            b.machineInstructionsExecuted
                ? 100.0 *
                      (static_cast<double>(
                           b.machineInstructionsExecuted) -
                       static_cast<double>(
                           w.machineInstructionsExecuted)) /
                      static_cast<double>(
                          b.machineInstructionsExecuted)
                : 0.0;
        std::printf("%-18s %6zu %6zu %9.1f %9.3f %10.3f %10.3f "
                    "%8.2f%%\n",
                    info.name.c_str(), c.promotions,
                    w.traceTierLoaded, c.traceCoverage * 100.0,
                    c.onlineTranslateSeconds * 1000.0,
                    b.machineInstructionsExecuted / 1e6,
                    w.machineInstructionsExecuted / 1e6, d_instr);
        report.beginRow()
            .field("program", info.name)
            .field("cold_promotions", double(c.promotions))
            .field("cold_promotion_failures",
                   double(c.promotionFailures))
            .field("cold_trace_coverage", c.traceCoverage)
            .field("cold_profile_samples",
                   double(c.profileSamples))
            .field("cold_online_translate_s",
                   c.onlineTranslateSeconds)
            .field("warm_trace_tier_loaded",
                   double(w.traceTierLoaded))
            .field("warm_promotions", double(w.promotions))
            .field("warm_profile_loaded",
                   double(w.profileLoaded))
            .field("warm_online_translate_s",
                   w.onlineTranslateSeconds)
            .field("warm_online_functions",
                   double(w.functionsTranslatedOnline))
            .field("baseline_machine_instructions",
                   double(b.machineInstructionsExecuted))
            .field("warm_machine_instructions",
                   double(w.machineInstructionsExecuted))
            .field("instruction_delta_pct", d_instr);
    }
    hr();
    report.write();
    std::printf("warm restarts reload the promoted -O2+traces code "
                "and skip both re-profiling and online "
                "translation; d-instr is the simulated instruction "
                "reduction of trace-first layout over plain -O2.\n");

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}

// Timed: one full cold adaptive launch (profile + promote) vs the
// warm restart that reuses everything, on the first workload.
static void
BM_AdaptiveColdLaunch(benchmark::State &state)
{
    auto m = prepared(allWorkloads()[0]);
    auto bc = writeBytecode(*m);
    for (auto _ : state) {
        MemoryStorage storage;
        LLEE llee(*getTarget("x86"), &storage, adaptiveOpts());
        benchmark::DoNotOptimize(llee.execute(bc).promotions);
    }
}
BENCHMARK(BM_AdaptiveColdLaunch);

static void
BM_AdaptiveWarmRestart(benchmark::State &state)
{
    auto m = prepared(allWorkloads()[0]);
    auto bc = writeBytecode(*m);
    MemoryStorage storage;
    {
        LLEE seed(*getTarget("x86"), &storage, adaptiveOpts());
        seed.execute(bc);
    }
    for (auto _ : state) {
        LLEE llee(*getTarget("x86"), &storage, adaptiveOpts());
        benchmark::DoNotOptimize(
            llee.execute(bc).traceTierLoaded);
    }
}
BENCHMARK(BM_AdaptiveWarmRestart);
