/**
 * @file
 * Ablation A4: the instruction encoding (paper Section 3.1: "we use
 * a self-extending instruction encoding, but define a fixed-size
 * 32-bit format to hold small instructions for compactness and
 * translator efficiency"). Measures, per workload, what fraction of
 * instructions fit the fixed 32-bit word, the bytes per
 * instruction, and the breakdown of the object file.
 */

#include <benchmark/benchmark.h>

#include "bench_common.h"

using namespace llva;
using namespace llva::bench;

int
main(int argc, char **argv)
{
    std::printf("Ablation A4: fixed 32-bit word vs self-extending "
                "encoding\n");
    hr('=');
    std::printf("%-18s %8s %8s %9s %10s %10s %9s\n", "Program",
                "32-bit", "extended", "%fixed", "inst bytes",
                "B/inst", "types(B)");
    hr();

    double worst_fixed = 1.0;
    for (const auto &info : allWorkloads()) {
        auto m = prepared(info);
        BytecodeStats s = measureBytecode(*m);
        size_t total =
            s.instructionWords32 + s.instructionsExtended;
        double fixed_frac =
            static_cast<double>(s.instructionWords32) /
            static_cast<double>(total);
        worst_fixed = std::min(worst_fixed, fixed_frac);
        std::printf("%-18s %8zu %8zu %8.1f%% %10zu %10.2f %9zu\n",
                    info.name.c_str(), s.instructionWords32,
                    s.instructionsExtended, fixed_frac * 100.0,
                    s.instructionBytes,
                    static_cast<double>(s.instructionBytes) /
                        static_cast<double>(total),
                    s.typeTableBytes);
    }
    hr();
    std::printf("worst-case fixed-word share: %.1f%% — \"most "
                "instructions usually fit in a single 32-bit "
                "word\".\n\n",
                worst_fixed * 100.0);

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}

static void
BM_ReadBytecode(benchmark::State &state)
{
    auto m = prepared(allWorkloads()[0], 2, 1);
    auto bytes = writeBytecode(*m);
    for (auto _ : state)
        benchmark::DoNotOptimize(readBytecode(bytes));
}
BENCHMARK(BM_ReadBytecode);
