/**
 * @file
 * Ablation A2: LLEE's offline caching (paper Section 4.1). DAISY
 * and Crusoe "cannot cache any translated code ... or perform any
 * offline translation"; the paper's storage API removes online
 * translation from warm launches entirely. This bench measures
 * per-program online translation cost on cold launch, warm launch,
 * and after idle-time (offline) translation.
 */

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "llee/llee.h"

using namespace llva;
using namespace llva::bench;

int
main(int argc, char **argv)
{
    std::printf("Ablation A2: offline caching of native "
                "translations (LLEE)\n");
    hr('=');
    std::printf("%-18s %12s %12s %12s %8s %8s\n", "Program",
                "cold(ms)", "warm(ms)", "idle+run(ms)", "hits",
                "misses");
    hr();

    Target &target = *getTarget("sparc");
    for (const auto &info : allWorkloads()) {
        auto m = prepared(info);
        auto bc = writeBytecode(*m);

        MemoryStorage storage;
        LLEE llee(target, &storage);
        LLEEResult cold = llee.execute(bc);
        LLEEResult warm = llee.execute(bc);

        MemoryStorage storage2;
        LLEE llee2(target, &storage2);
        llee2.offlineTranslate(bc);
        LLEEResult primed = llee2.execute(bc);

        if (!cold.exec.ok() ||
            warm.exec.value.i != cold.exec.value.i ||
            primed.exec.value.i != cold.exec.value.i)
            fatal("cache-path divergence in %s",
                  info.name.c_str());

        std::printf("%-18s %12.4f %12.4f %12.4f %8zu %8zu\n",
                    info.name.c_str(),
                    cold.onlineTranslateSeconds * 1000.0,
                    warm.onlineTranslateSeconds * 1000.0,
                    primed.onlineTranslateSeconds * 1000.0,
                    warm.cacheHits, warm.cacheMisses);
    }
    hr();
    std::printf("warm and idle-primed launches perform ZERO online "
                "translation — the capability DAISY/Crusoe lack.\n\n");

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}

static void
BM_LLEE_ColdLaunch(benchmark::State &state)
{
    auto m = prepared(allWorkloads()[0], 2, 1);
    auto bc = writeBytecode(*m);
    for (auto _ : state) {
        MemoryStorage storage;
        LLEE llee(*getTarget("sparc"), &storage);
        benchmark::DoNotOptimize(llee.execute(bc));
    }
}
BENCHMARK(BM_LLEE_ColdLaunch);

static void
BM_LLEE_WarmLaunch(benchmark::State &state)
{
    auto m = prepared(allWorkloads()[0], 2, 1);
    auto bc = writeBytecode(*m);
    MemoryStorage storage;
    LLEE llee(*getTarget("sparc"), &storage);
    llee.execute(bc);
    for (auto _ : state)
        benchmark::DoNotOptimize(llee.execute(bc));
}
BENCHMARK(BM_LLEE_WarmLaunch);
