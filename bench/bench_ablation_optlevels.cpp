/**
 * @file
 * Ablation A1: machine-independent optimization on the virtual
 * object code before translation (paper Section 4.2: "the LLVA
 * representation allows substantial optimization to be performed
 * before translation, minimizing optimization that must be
 * performed online"). Measures static LLVA instructions and dynamic
 * simulated instructions at O0 / O1 / O2.
 */

#include <benchmark/benchmark.h>

#include "bench_common.h"

using namespace llva;
using namespace llva::bench;

namespace {

struct Row
{
    size_t staticInsts;
    uint64_t dynamicInsts;
};

Row
measure(const WorkloadInfo &info, int level)
{
    auto m = info.build(info.defaultScale);
    PassManager pm;
    if (level < 0) {
        // "Naive front-end" baseline: every cross-block value lives
        // in memory, as unoptimized compiler output would.
        pm.add(createReg2MemPass());
    } else {
        addStandardPasses(pm, static_cast<unsigned>(level));
    }
    pm.run(*m);
    verifyOrDie(*m);

    ExecutionContext ctx(*m);
    CodeManager cm(*getTarget("sparc"));
    MachineSimulator sim(ctx, cm);
    auto r = sim.run(m->getFunction("main"));
    if (!r.ok())
        fatal("workload %s failed at O%u", info.name.c_str(),
              level);
    return {m->instructionCount(), sim.instructionsExecuted()};
}

} // namespace

int
main(int argc, char **argv)
{
    std::printf("Ablation A1: V-ISA-level optimization before "
                "translation\n");
    hr('=');
    std::printf("%-18s %30s %32s\n", "",
                "static LLVA instructions",
                "dynamic machine instructions");
    std::printf("%-18s %7s %7s %7s %7s %11s %11s %9s\n", "Program",
                "naive", "O0", "O1", "O2", "naive", "O2",
                "speedup");
    hr();

    double total_speedup = 0;
    size_t n = 0;
    for (const auto &info : allWorkloads()) {
        Row naive = measure(info, -1);
        Row o0 = measure(info, 0);
        Row o1 = measure(info, 1);
        Row o2 = measure(info, 2);
        double speedup = static_cast<double>(naive.dynamicInsts) /
                         static_cast<double>(o2.dynamicInsts);
        total_speedup += speedup;
        ++n;
        std::printf(
            "%-18s %7zu %7zu %7zu %7zu %11llu %11llu %8.2fx\n",
            info.name.c_str(), naive.staticInsts, o0.staticInsts,
            o1.staticInsts, o2.staticInsts,
            (unsigned long long)naive.dynamicInsts,
            (unsigned long long)o2.dynamicInsts, speedup);
    }
    hr();
    std::printf("geomean-ish mean speedup from ahead-of-time "
                "optimization: %.2fx\n",
                total_speedup / n);
    std::printf("(this work happens on the persistent V-ISA, NOT "
                "in the online translator — the paper's point)\n\n");

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}

static void
BM_OptimizationPipeline_O2(benchmark::State &state)
{
    for (auto _ : state) {
        state.PauseTiming();
        auto m = allWorkloads()[0].build(1);
        state.ResumeTiming();
        PassManager pm;
        addStandardPasses(pm, 2);
        pm.run(*m);
        benchmark::DoNotOptimize(m->instructionCount());
    }
}
BENCHMARK(BM_OptimizationPipeline_O2);
