/**
 * @file
 * Ablation A5: phi elimination and copy coalescing (paper Section
 * 3.1: "The translator eliminates the phi-nodes by introducing copy
 * operations into predecessor basic blocks. These copies are
 * usually eliminated during register allocation."). Compares the
 * linear-scan allocator with coalescing hints on vs off, and the
 * naive local allocator, counting inserted phi copies, coalesced
 * copies, and final machine instructions.
 */

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "vm/code_manager.h"

using namespace llva;
using namespace llva::bench;

namespace {

struct Row
{
    CodeGenStats stats;
    size_t machineInsts;
};

Row
measure(Module &m, CodeGenOptions::Allocator alloc, bool coalesce)
{
    CodeGenOptions opts;
    opts.allocator = alloc;
    opts.coalesce = coalesce;
    CodeManager cm(*getTarget("sparc"), opts);
    cm.translateAll(m);
    return {cm.stats(), cm.totalMachineInstructions()};
}

} // namespace

int
main(int argc, char **argv)
{
    std::printf("Ablation A5: phi-elimination copies and "
                "coalescing\n");
    hr('=');
    std::printf("%-18s %8s | %18s | %18s | %10s\n", "", "phi",
                "lscan+coalesce", "lscan, no hints", "local");
    std::printf("%-18s %8s | %8s %9s | %8s %9s | %10s\n",
                "Program", "copies", "removed", "insts", "removed",
                "insts", "insts");
    hr();

    for (const auto &info : allWorkloads()) {
        auto m = prepared(info);
        Row with = measure(
            *m, CodeGenOptions::Allocator::LinearScan, true);
        Row without = measure(
            *m, CodeGenOptions::Allocator::LinearScan, false);
        Row local =
            measure(*m, CodeGenOptions::Allocator::Local, true);

        std::printf(
            "%-18s %8zu | %8zu %9zu | %8zu %9zu | %10zu\n",
            info.name.c_str(), with.stats.phiCopiesInserted,
            with.stats.phiCopiesCoalesced, with.machineInsts,
            without.stats.phiCopiesCoalesced, without.machineInsts,
            local.machineInsts);
    }
    hr();
    std::printf("coalescing hints delete copies outright "
                "(mov r,r); the local allocator instead pays "
                "spill/reload traffic.\n\n");

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}

static void
BM_RegAllocLinearScan(benchmark::State &state)
{
    auto m = prepared(allWorkloads()[0], 2, 1);
    const Function *f = m->getFunction("main");
    Target &t = *getTarget("sparc");
    for (auto _ : state)
        benchmark::DoNotOptimize(translateFunction(*f, t));
}
BENCHMARK(BM_RegAllocLinearScan);

static void
BM_RegAllocLocal(benchmark::State &state)
{
    auto m = prepared(allWorkloads()[0], 2, 1);
    const Function *f = m->getFunction("main");
    Target &t = *getTarget("x86");
    CodeGenOptions opts;
    opts.allocator = CodeGenOptions::Allocator::Local;
    for (auto _ : state)
        benchmark::DoNotOptimize(translateFunction(*f, t, opts));
}
BENCHMARK(BM_RegAllocLocal);
