/**
 * @file
 * Ablation A6: Automatic Pool Allocation (paper Section 5.1, ref
 * [25]) on the heap-intensive workloads. Reports, per workload, the
 * number of disjoint data-structure instances found by the
 * points-to analysis, and the spatial clustering each pool achieves:
 * with pools, a structure's address range equals the bytes it
 * allocated (perfectly contiguous); with plain malloc, concurrent
 * structures interleave across the whole heap range.
 */

#include <benchmark/benchmark.h>

#include "bench_common.h"

using namespace llva;
using namespace llva::bench;

namespace {

/** Mean over pools of (bytes allocated / address-range spanned). */
double
poolDensity(const ExecutionContext &ctx)
{
    double sum = 0;
    size_t n = 0;
    for (const auto &[addr, pool] : ctx.pools()) {
        if (pool.hiAddr <= pool.loAddr || pool.totalAllocated == 0)
            continue;
        sum += static_cast<double>(pool.totalAllocated) /
               static_cast<double>(pool.hiAddr - pool.loAddr);
        ++n;
    }
    return n ? sum / static_cast<double>(n) : 0.0;
}

} // namespace

int
main(int argc, char **argv)
{
    std::printf("Ablation A6: Automatic Pool Allocation "
                "(Section 5.1)\n");
    hr('=');
    std::printf("%-18s %8s %10s %12s %14s %10s\n", "Program",
                "pools", "pooled KB", "density", "heap spread",
                "checksum");
    hr();

    for (const char *name :
         {"ptrdist-anagram", "ptrdist-ks", "ptrdist-ft",
          "ptrdist-yacr2", "164.gzip", "255.vortex", "300.twolf",
          "181.mcf"}) {
        // Reference run (plain malloc).
        auto plain = buildWorkload(name);
        ExecutionContext pctx(*plain);
        Interpreter pi(pctx);
        pi.setInstructionLimit(500000000);
        auto ref = pi.run(plain->getFunction("main"));
        if (!ref.ok())
            fatal("%s failed", name);
        uint64_t heap_spread = pctx.memory().heapBytesAllocated();

        // Pooled run.
        auto pooled = buildWorkload(name);
        PassManager pm;
        pm.add(createPoolAllocationPass());
        pm.run(*pooled);
        verifyOrDie(*pooled);
        ExecutionContext ctx(*pooled);
        Interpreter interp(ctx);
        interp.setInstructionLimit(500000000);
        auto r = interp.run(pooled->getFunction("main"));
        if (!r.ok() || r.value.i != ref.value.i ||
            ctx.output() != pctx.output())
            fatal("pool allocation changed %s's behaviour", name);

        uint64_t pooled_bytes = 0;
        for (const auto &[addr, pool] : ctx.pools())
            pooled_bytes += pool.totalAllocated;

        std::printf("%-18s %8zu %10.2f %11.2f%% %13llu %10lld\n",
                    name, ctx.pools().size(),
                    pooled_bytes / 1024.0,
                    poolDensity(ctx) * 100.0,
                    (unsigned long long)heap_spread,
                    (long long)r.value.i);
    }
    hr();
    std::printf("density = bytes allocated / address range per "
                "pool: 100%% means each logical data structure is "
                "perfectly contiguous,\nwhere plain malloc "
                "interleaves all concurrent structures across the "
                "heap. Checksums are verified unchanged.\n\n");

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}

static void
BM_PoolAllocationPass(benchmark::State &state)
{
    for (auto _ : state) {
        state.PauseTiming();
        auto m = buildWorkload("255.vortex", 1);
        state.ResumeTiming();
        PassManager pm;
        pm.add(createPoolAllocationPass());
        pm.run(*m);
        benchmark::DoNotOptimize(m->instructionCount());
    }
}
BENCHMARK(BM_PoolAllocationPass);
