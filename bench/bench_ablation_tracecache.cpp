/**
 * @file
 * Ablation A3: the software trace cache (paper Section 4.2).
 * Profiles each workload over the explicit CFG, forms hot traces at
 * several thresholds, and reports coverage plus the executed-
 * instruction reduction when trace-driven layout is applied before
 * retranslation.
 */

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "trace/trace.h"

using namespace llva;
using namespace llva::bench;

namespace {

uint64_t
simulatedInstructions(Module &m)
{
    ExecutionContext ctx(m);
    CodeManager cm(*getTarget("sparc"));
    MachineSimulator sim(ctx, cm);
    auto r = sim.run(m.getFunction("main"));
    if (!r.ok())
        fatal("workload failed");
    return sim.instructionsExecuted();
}

} // namespace

int
main(int argc, char **argv)
{
    std::printf("Ablation A3: software trace cache — coverage and "
                "layout benefit\n");
    hr('=');
    std::printf("%-18s %8s %10s %12s %12s %9s\n", "Program",
                "traces", "coverage", "insts before",
                "insts after", "saved");
    hr();

    for (const auto &info : allWorkloads()) {
        auto m = prepared(info);
        uint64_t before = simulatedInstructions(*m);

        // Profile everything in one interpreted run.
        EdgeProfile profile;
        {
            ExecutionContext ctx(*m);
            Interpreter interp(ctx);
            interp.setProfile(&profile);
            interp.run(m->getFunction("main"));
        }

        TraceCache cache;
        for (const auto &f : m->functions()) {
            if (f->isDeclaration())
                continue;
            for (Trace &t : formTraces(*f, profile))
                cache.insert(std::move(t));
        }
        for (const auto &f : m->functions())
            if (!f->isDeclaration())
                applyTraceLayout(*f, cache.traces());
        verifyOrDie(*m);

        uint64_t after = simulatedInstructions(*m);
        std::printf("%-18s %8zu %9.1f%% %12llu %12llu %8.2f%%\n",
                    info.name.c_str(), cache.size(),
                    cache.coverage(profile) * 100.0,
                    (unsigned long long)before,
                    (unsigned long long)after,
                    100.0 * (1.0 - static_cast<double>(after) /
                                       static_cast<double>(
                                           before)));
    }
    hr();
    std::printf("threshold sweep (ptrdist-ft): trace count and "
                "coverage vs hot threshold\n");
    {
        auto m = prepared(allWorkloads()[2]);
        EdgeProfile profile;
        ExecutionContext ctx(*m);
        Interpreter interp(ctx);
        interp.setProfile(&profile);
        interp.run(m->getFunction("main"));
        for (uint64_t thresh : {10u, 50u, 200u, 1000u, 5000u}) {
            TraceOptions opts;
            opts.hotThreshold = thresh;
            TraceCache cache;
            for (const auto &f : m->functions())
                if (!f->isDeclaration())
                    for (Trace &t :
                         formTraces(*f, profile, opts))
                        cache.insert(std::move(t));
            std::printf("  threshold %5llu: %2zu traces, coverage "
                        "%5.1f%%\n",
                        (unsigned long long)thresh, cache.size(),
                        cache.coverage(profile) * 100.0);
        }
    }
    std::printf("\n");

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}

static void
BM_TraceFormation(benchmark::State &state)
{
    auto m = prepared(allWorkloads()[0], 2, 1);
    EdgeProfile profile;
    ExecutionContext ctx(*m);
    Interpreter interp(ctx);
    interp.setProfile(&profile);
    interp.run(m->getFunction("main"));
    Function *f = m->getFunction("main");
    for (auto _ : state)
        benchmark::DoNotOptimize(formTraces(*f, profile));
}
BENCHMARK(BM_TraceFormation);
