/**
 * @file
 * Chaos harness: live-update under fire. For every workload, a
 * multi-threaded serving loop executes the program repeatedly from
 * one shared CodeManager while dedicated adversary threads inject
 * faults the whole time:
 *
 *  - an SMC thread replaces (replaceFunctionLive) and invalidates
 *    translations of the very functions being executed,
 *  - the same thread runs checkpoint/restore cycles on a dedicated
 *    VM — pause mid-run, capture, restore into a fresh context
 *    against the shared (still churning) code cache, resume,
 *  - a storage thread serves the program through LLEE over a
 *    FaultInjectingStorage (failed ops, damaged payloads),
 *  - the translation pipeline itself faults deterministically on a
 *    fraction of -O2 codegens (tier degradation under fire).
 *
 * Every execution — workers, resumed checkpoints, faulted-storage
 * runs — must produce the byte-identical output of the quiet
 * baseline; any divergence is fatal. A final quiet phase migrates
 * each workload's completed state cross-ISA (x86 -> riscv) through
 * a checkpoint: wrong-target code classifies Incompatible, heals by
 * retranslation, and the carried profile re-promotes immediately.
 *
 * Knobs: --threads=N (workers), --iters=N (runs per worker),
 * --workloads=N (first N only), --scale=N (workload scale).
 * Results land in BENCH_chaos.json.
 */

#include <atomic>
#include <cstring>
#include <memory>
#include <thread>

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "llee/checkpoint.h"
#include "llee/fault_storage.h"
#include "llee/llee.h"
#include "support/hashing.h"

using namespace llva;
using namespace llva::bench;

namespace {

struct Knobs
{
    unsigned threads = 4;
    unsigned iters = 4;
    size_t workloads = 0; ///< 0 = all
    int scale = 1;
};

CodeGenOptions
adaptiveOpts()
{
    CodeGenOptions opts;
    opts.optLevel = 2;
    opts.adaptive = true;
    opts.promoteWatermark = 500;
    return opts;
}

struct Baseline
{
    uint64_t value = 0;
    std::string output;
};

Baseline
quietBaseline(Module &m)
{
    ExecutionContext ctx(m);
    CodeManager cm(*getTarget("x86"), adaptiveOpts());
    EdgeProfile profile;
    cm.setAdaptive(&profile, adaptiveOpts().promoteWatermark);
    MachineSimulator sim(ctx, cm);
    sim.setProfile(&profile);
    auto r = sim.run(m.getFunction("main"));
    if (!r.ok())
        fatal("chaos baseline trapped: %s", trapKindName(r.trap));
    return {r.value.i, ctx.output()};
}

/** ExecutionContext construction walks module constants while the
 *  shared manager may be optimizing bodies in place; take the same
 *  reader lock the interpreter tier takes. */
std::unique_ptr<ExecutionContext>
freshContext(Module &m, CodeManager &cm)
{
    auto lock = cm.readLock();
    return std::make_unique<ExecutionContext>(m);
}

struct ChaosOutcome
{
    size_t runs = 0;
    size_t mismatches = 0;
    size_t replacements = 0;
    size_t invalidations = 0;
    size_t checkpointCycles = 0;
    size_t checkpointAborts = 0;
    size_t storageRuns = 0;
    size_t storageOpsFailed = 0;
    size_t storagePayloadsDamaged = 0;
    size_t tierDowngrades = 0;
    size_t reclaimed = 0;
    size_t promotions = 0;
    size_t retiredLeaked = 0;
    double seconds = 0;
};

ChaosOutcome
chaosPhase(Module &m, const std::vector<uint8_t> &bc,
           const Baseline &base, const Knobs &knobs)
{
    const uint64_t hash = fnv1a(bc);
    CodeManager cm(*getTarget("x86"), adaptiveOpts());
    EdgeProfile master;
    cm.setAdaptive(&master, adaptiveOpts().promoteWatermark);

    // Deterministic pass faults: every 5th -O2 codegen attempt
    // throws, degrading that one translation a tier. Degradation
    // changes speed, never semantics — output must stay identical.
    std::atomic<uint64_t> codegenAttempts{0};
    TranslationHooks hooks;
    hooks.beforeCodegen = [&](const Function &, unsigned level) {
        if (level == 2 &&
            codegenAttempts.fetch_add(
                1, std::memory_order_relaxed) % 5 == 4)
            throw std::runtime_error("chaos: injected codegen fault");
    };
    cm.setHooks(hooks);

    std::vector<const Function *> defined;
    for (const auto &f : m.functions())
        if (!f->isDeclaration())
            defined.push_back(f.get());

    ChaosOutcome out;
    std::atomic<bool> stop{false};
    std::atomic<size_t> mismatches{0};
    std::atomic<size_t> replacements{0};
    std::atomic<size_t> invalidations{0};
    std::atomic<size_t> storageRuns{0};

    auto check = [&](bool ok, uint64_t value,
                     const std::string &output) {
        if (!ok || value != base.value || output != base.output)
            mismatches.fetch_add(1, std::memory_order_relaxed);
    };

    Timer timer;

    // The SMC + checkpoint adversary.
    std::thread smc([&] {
        uint64_t rng = 0x9e3779b97f4a7c15ull;
        size_t step = 0;
        while (!stop.load(std::memory_order_relaxed)) {
            const Function *f = defined[step % defined.size()];
            rng = rng * 6364136223846793005ull +
                  1442695040888963407ull;
            if ((rng >> 33) & 1) {
                if (cm.replaceFunctionLive(f))
                    replacements.fetch_add(
                        1, std::memory_order_relaxed);
            } else {
                cm.invalidate(f);
                invalidations.fetch_add(1,
                                        std::memory_order_relaxed);
            }
            if (++step % 16 == 0) {
                // Checkpoint/restore cycle on a dedicated VM while
                // everything above keeps churning the shared cache.
                auto cctx = freshContext(m, cm);
                MachineSimulator csim(*cctx, cm);
                csim.setPauseAt(2000);
                auto r = csim.run(m.getFunction("main"));
                if (!csim.paused()) {
                    check(r.ok(), r.value.i, cctx->output());
                    continue;
                }
                auto blob = captureCheckpoint(hash, *cctx, cm,
                                              nullptr, &csim);
                auto rctx = freshContext(m, cm);
                MachineSimulator rsim(*rctx, cm);
                auto st = restoreCheckpoint(blob, hash, *rctx, cm,
                                            nullptr, &rsim);
                if (st.ok() && rsim.paused()) {
                    auto rr = rsim.resume();
                    check(rr.ok(), rr.value.i, rctx->output());
                    ++out.checkpointCycles;
                } else {
                    // A replacement changed the installed body's
                    // shape between capture and restore; the
                    // restore refused rather than resume onto the
                    // wrong code. Abort the cycle, never diverge.
                    ++out.checkpointAborts;
                }
                // The original VM resumes in-process regardless —
                // its epoch pin kept the captured body alive.
                auto cr = csim.resume();
                check(cr.ok(), cr.value.i, cctx->output());
            }
            std::this_thread::yield();
        }
    });

    // The storage adversary: full LLEE runs (own module, own code
    // manager) over fault-injecting storage, concurrently.
    size_t storageFailed = 0, storageDamaged = 0;
    std::thread storageThread([&] {
        MemoryStorage inner;
        FaultConfig fc;
        fc.seed = 42;
        fc.failRate = 0.10;
        fc.corruptRate = 0.10;
        FaultInjectingStorage storage(inner, fc);
        while (!stop.load(std::memory_order_relaxed)) {
            LLEE llee(*getTarget("x86"), &storage, adaptiveOpts());
            auto r = llee.execute(bc);
            check(r.exec.ok(), r.exec.value.i, r.output);
            storageRuns.fetch_add(1, std::memory_order_relaxed);
        }
        storageFailed = storage.opsFailed();
        storageDamaged = storage.payloadsDamaged();
    });

    // The serving loop: workers execute from the shared cache with
    // thread-local profiles, publishing heat via mergeProfile.
    std::vector<std::thread> workers;
    for (unsigned t = 0; t < knobs.threads; ++t)
        workers.emplace_back([&] {
            for (unsigned it = 0; it < knobs.iters; ++it) {
                EdgeProfile local;
                auto ctx = freshContext(m, cm);
                MachineSimulator sim(*ctx, cm);
                sim.setProfile(&local);
                auto r = sim.run(m.getFunction("main"));
                check(r.ok(), r.value.i, ctx->output());
                cm.mergeProfile(local);
            }
        });
    for (auto &w : workers)
        w.join();
    stop.store(true, std::memory_order_relaxed);
    smc.join();
    storageThread.join();
    out.seconds = timer.seconds();

    // After the fire: the shared cache must still serve a quiet run
    // exactly, and every retired body/chain must have been
    // reclaimed (no pins remain — nothing may leak).
    {
        EdgeProfile local;
        auto ctx = freshContext(m, cm);
        MachineSimulator sim(*ctx, cm);
        sim.setProfile(&local);
        auto r = sim.run(m.getFunction("main"));
        check(r.ok(), r.value.i, ctx->output());
    }
    out.retiredLeaked = cm.retiredBodies() + cm.retiredChainCount();

    out.runs = size_t(knobs.threads) * knobs.iters + 1;
    out.mismatches = mismatches.load();
    out.replacements = replacements.load();
    out.invalidations = invalidations.load();
    out.storageRuns = storageRuns.load();
    out.storageOpsFailed = storageFailed;
    out.storagePayloadsDamaged = storageDamaged;
    out.tierDowngrades = cm.tierDowngrades();
    out.reclaimed = cm.reclaimedObjects();
    out.promotions = cm.promotions();
    return out;
}

struct MigrationOutcome
{
    bool ok = true;
    size_t codeIncompatible = 0;
    size_t codeRestored = 0;
    size_t promotions = 0;
    bool profileRestored = false;
};

/** Quiet cross-ISA migration: x86 run -> checkpoint -> riscv
 *  restore (Incompatible entries heal by retranslation, profile
 *  keeps its heat) -> riscv serving run, byte-identical. */
MigrationOutcome
migrationPhase(Module &m, const std::vector<uint8_t> &bc,
               const Baseline &base)
{
    const uint64_t hash = fnv1a(bc);
    MigrationOutcome out;

    ExecutionContext ctx1(m);
    CodeManager cm1(*getTarget("x86"), adaptiveOpts());
    EdgeProfile p1;
    cm1.setAdaptive(&p1, adaptiveOpts().promoteWatermark);
    MachineSimulator sim1(ctx1, cm1);
    sim1.setProfile(&p1);
    auto r1 = sim1.run(m.getFunction("main"));
    out.ok &= r1.ok() && r1.value.i == base.value &&
              ctx1.output() == base.output;
    auto blob = captureCheckpoint(hash, ctx1, cm1, &p1);

    ExecutionContext ctx2(m);
    CodeManager cm2(*getTarget("riscv"), adaptiveOpts());
    EdgeProfile p2;
    cm2.setAdaptive(&p2, adaptiveOpts().promoteWatermark);
    auto st = restoreCheckpoint(blob, hash, ctx2, cm2, &p2);
    if (!st.ok()) {
        out.ok = false;
        return out;
    }
    out.codeIncompatible = st->codeIncompatible;
    out.codeRestored = st->codeRestored;
    out.profileRestored = st->profileRestored;
    // The migrated image is byte-identical, including its captured
    // output so far.
    out.ok &= ctx2.output() == base.output;

    // The next serving cycle on the new ISA: healed on demand, and
    // the carried profile promotes the hot functions immediately.
    ExecutionContext fresh(m);
    MachineSimulator sim2(fresh, cm2);
    sim2.setProfile(&p2);
    auto r2 = sim2.run(m.getFunction("main"));
    out.ok &= r2.ok() && r2.value.i == base.value &&
              fresh.output() == base.output;
    out.promotions = cm2.promotions();
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    Knobs knobs;
    int kept = 1;
    for (int i = 1; i < argc; ++i) {
        if (!std::strncmp(argv[i], "--threads=", 10))
            knobs.threads = std::atoi(argv[i] + 10);
        else if (!std::strncmp(argv[i], "--iters=", 8))
            knobs.iters = std::atoi(argv[i] + 8);
        else if (!std::strncmp(argv[i], "--workloads=", 12))
            knobs.workloads = std::atoi(argv[i] + 12);
        else if (!std::strncmp(argv[i], "--scale=", 8))
            knobs.scale = std::atoi(argv[i] + 8);
        else
            argv[kept++] = argv[i];
    }
    argc = kept;
    if (knobs.threads < 1)
        knobs.threads = 1;
    if (knobs.iters < 1)
        knobs.iters = 1;
    if (knobs.scale < 1)
        knobs.scale = 1;

    auto workloads = allWorkloads();
    if (knobs.workloads && knobs.workloads < workloads.size())
        workloads.resize(knobs.workloads);

    std::printf("Chaos harness: %u workers x %u iters per workload, "
                "concurrent SMC replacement + checkpoint/restore + "
                "faulting storage + pass faults\n",
                knobs.threads, knobs.iters);
    hr('=');
    std::printf("%-18s %5s %6s %6s %6s %5s %6s %6s %7s %7s %6s\n",
                "Program", "runs", "repl", "inval", "ckpt", "abort",
                "store", "downgr", "reclaim", "incomp", "mism");
    hr();

    JsonReport report("chaos");
    size_t totalMismatches = 0, totalLeaked = 0;
    size_t migrationFailures = 0;
    for (const auto &info : workloads) {
        auto m = prepared(info, 2, knobs.scale);
        auto bc = writeBytecode(*m);
        Baseline base = quietBaseline(*m);

        ChaosOutcome c = chaosPhase(*m, bc, base, knobs);
        MigrationOutcome mig = migrationPhase(*m, bc, base);

        totalMismatches += c.mismatches;
        totalLeaked += c.retiredLeaked;
        if (!mig.ok)
            ++migrationFailures;

        std::printf("%-18s %5zu %6zu %6zu %6zu %5zu %6zu %6zu "
                    "%7zu %7zu %6zu\n",
                    info.name.c_str(), c.runs, c.replacements,
                    c.invalidations, c.checkpointCycles,
                    c.checkpointAborts, c.storageRuns,
                    c.tierDowngrades, c.reclaimed,
                    mig.codeIncompatible, c.mismatches);

        report.beginRow()
            .field("program", info.name)
            .field("runs", double(c.runs))
            .field("mismatches", double(c.mismatches))
            .field("replacements", double(c.replacements))
            .field("invalidations", double(c.invalidations))
            .field("checkpoint_cycles", double(c.checkpointCycles))
            .field("checkpoint_aborts", double(c.checkpointAborts))
            .field("storage_runs", double(c.storageRuns))
            .field("storage_ops_failed", double(c.storageOpsFailed))
            .field("storage_payloads_damaged",
                   double(c.storagePayloadsDamaged))
            .field("tier_downgrades", double(c.tierDowngrades))
            .field("retired_reclaimed", double(c.reclaimed))
            .field("retired_leaked", double(c.retiredLeaked))
            .field("promotions", double(c.promotions))
            .field("chaos_seconds", c.seconds)
            .field("migration_ok", mig.ok ? 1.0 : 0.0)
            .field("migration_code_incompatible",
                   double(mig.codeIncompatible))
            .field("migration_profile_restored",
                   mig.profileRestored ? 1.0 : 0.0)
            .field("migration_promotions", double(mig.promotions));
    }
    hr();
    report.write();
    std::printf("Every run under chaos (workers, resumed "
                "checkpoints, faulted storage) is checked against "
                "the quiet baseline byte-for-byte; mism must be 0. "
                "ckpt = completed mid-run checkpoint/restore/resume "
                "cycles; abort = cycles refused because the code "
                "cache changed shape between capture and restore "
                "(refusal, never divergence). incomp = x86 entries "
                "healed by riscv retranslation in the quiet "
                "migration phase.\n");

    if (totalMismatches)
        fatal("chaos: %zu execution(s) diverged from the quiet "
              "baseline", totalMismatches);
    if (totalLeaked)
        fatal("chaos: %zu retired object(s) never reclaimed",
              totalLeaked);
    if (migrationFailures)
        fatal("chaos: %zu cross-ISA migration(s) failed",
              migrationFailures);

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}

// Timed: one serving iteration from a warm shared cache with a
// replacement storm in the background, vs the figure a quiet run
// gets (compare against bench_throughput).
static void
BM_ServeUnderReplacementStorm(benchmark::State &state)
{
    auto m = prepared(allWorkloads()[0], 2, 1);
    CodeManager cm(*getTarget("x86"), adaptiveOpts());
    EdgeProfile profile;
    cm.setAdaptive(&profile, 500);
    const Function *main = m->getFunction("main");
    {
        ExecutionContext ctx(*m);
        MachineSimulator sim(ctx, cm);
        sim.setProfile(&profile);
        sim.run(main);
    }
    std::vector<const Function *> defined;
    for (const auto &f : m->functions())
        if (!f->isDeclaration())
            defined.push_back(f.get());
    std::atomic<bool> stop{false};
    std::thread storm([&] {
        size_t i = 0;
        while (!stop.load(std::memory_order_relaxed)) {
            cm.replaceFunctionLive(defined[i++ % defined.size()]);
            std::this_thread::yield();
        }
    });
    for (auto _ : state) {
        ExecutionContext ctx(*m);
        MachineSimulator sim(ctx, cm);
        sim.setProfile(&profile);
        benchmark::DoNotOptimize(sim.run(main).value.i);
    }
    stop.store(true, std::memory_order_relaxed);
    storm.join();
}
BENCHMARK(BM_ServeUnderReplacementStorm);
