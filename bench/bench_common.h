/**
 * @file
 * Shared helpers for the Table 2 / ablation benchmark binaries.
 * Each binary prints a paper-style table on stdout and then runs
 * any registered google-benchmark timers.
 */

#ifndef LLVA_BENCH_BENCH_COMMON_H
#define LLVA_BENCH_BENCH_COMMON_H

#include <cstdio>
#include <memory>
#include <string>

#include "bytecode/bytecode.h"
#include "support/timer.h"
#include "transforms/pass.h"
#include "verifier/verifier.h"
#include "vm/interpreter.h"
#include "vm/machine_sim.h"
#include "workloads/workloads.h"

namespace llva {
namespace bench {

/**
 * A workload prepared the way the paper prepared its inputs: built,
 * optimized at the link-time level (the paper applied "the same
 * LLVA optimizations ... in both cases"), and verified.
 */
inline std::unique_ptr<Module>
prepared(const WorkloadInfo &info, unsigned opt_level = 2,
         int scale = 0)
{
    auto m = info.build(scale > 0 ? scale : info.defaultScale);
    PassManager pm;
    addStandardPasses(pm, opt_level);
    pm.run(*m);
    verifyOrDie(*m);
    return m;
}

/** Rough proxy for the paper's "#LOC" column: textual LLVA lines. */
inline size_t
sourceLines(const Module &m)
{
    std::string text = m.str();
    size_t lines = 0;
    for (char c : text)
        if (c == '\n')
            ++lines;
    return lines;
}

inline void
hr(char c = '-', int width = 100)
{
    for (int i = 0; i < width; ++i)
        std::putchar(c);
    std::putchar('\n');
}

/** Simulated nominal clock for converting cycles to seconds. */
constexpr double kSimHz = 1.0e9;

} // namespace bench
} // namespace llva

#endif // LLVA_BENCH_BENCH_COMMON_H
