/**
 * @file
 * Shared helpers for the Table 2 / ablation benchmark binaries.
 * Each binary prints a paper-style table on stdout and then runs
 * any registered google-benchmark timers.
 */

#ifndef LLVA_BENCH_BENCH_COMMON_H
#define LLVA_BENCH_BENCH_COMMON_H

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "bytecode/bytecode.h"
#include "support/timer.h"
#include "transforms/pass.h"
#include "verifier/verifier.h"
#include "vm/interpreter.h"
#include "vm/machine_sim.h"
#include "workloads/workloads.h"

namespace llva {
namespace bench {

/**
 * A workload prepared the way the paper prepared its inputs: built,
 * optimized at the link-time level (the paper applied "the same
 * LLVA optimizations ... in both cases"), and verified.
 */
inline std::unique_ptr<Module>
prepared(const WorkloadInfo &info, unsigned opt_level = 2,
         int scale = 0)
{
    auto m = info.build(scale > 0 ? scale : info.defaultScale);
    PassManager pm;
    addStandardPasses(pm, opt_level);
    pm.run(*m);
    verifyOrDie(*m);
    return m;
}

/** Rough proxy for the paper's "#LOC" column: textual LLVA lines. */
inline size_t
sourceLines(const Module &m)
{
    std::string text = m.str();
    size_t lines = 0;
    for (char c : text)
        if (c == '\n')
            ++lines;
    return lines;
}

inline void
hr(char c = '-', int width = 100)
{
    for (int i = 0; i < width; ++i)
        std::putchar(c);
    std::putchar('\n');
}

/** Simulated nominal clock for converting cycles to seconds. */
constexpr double kSimHz = 1.0e9;

/**
 * Machine-readable companion to the printed tables: accumulate rows
 * of key/value fields and write them as `BENCH_<name>.json` so CI
 * can archive benchmark results as artifacts and diff them across
 * commits. The output directory is `$LLVA_BENCH_DIR` when set, the
 * working directory otherwise. Numeric fields are stored as doubles
 * (every counter we emit fits exactly below 2^53).
 */
class JsonReport
{
  public:
    explicit JsonReport(std::string name) : name_(std::move(name)) {}

    JsonReport &beginRow()
    {
        rows_.emplace_back();
        return *this;
    }

    JsonReport &field(const std::string &key, const std::string &v)
    {
        rows_.back().emplace_back(key,
                                  "\"" + escape(v) + "\"");
        return *this;
    }

    JsonReport &field(const std::string &key, const char *v)
    {
        return field(key, std::string(v));
    }

    JsonReport &field(const std::string &key, double v)
    {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.12g", v);
        rows_.back().emplace_back(key, buf);
        return *this;
    }

    /** Write `BENCH_<name>.json`; reports the path on stderr. */
    bool write() const
    {
        std::string dir = ".";
        if (const char *env = std::getenv("LLVA_BENCH_DIR"))
            if (*env)
                dir = env;
        std::string path = dir + "/BENCH_" + name_ + ".json";
        std::FILE *f = std::fopen(path.c_str(), "w");
        if (!f) {
            std::fprintf(stderr, "bench: cannot write %s\n",
                         path.c_str());
            return false;
        }
        std::fprintf(f, "{\n  \"bench\": \"%s\",\n  \"rows\": [",
                     escape(name_).c_str());
        for (size_t i = 0; i < rows_.size(); ++i) {
            std::fprintf(f, "%s\n    {", i ? "," : "");
            for (size_t j = 0; j < rows_[i].size(); ++j)
                std::fprintf(f, "%s\"%s\": %s", j ? ", " : "",
                             escape(rows_[i][j].first).c_str(),
                             rows_[i][j].second.c_str());
            std::fputc('}', f);
        }
        std::fprintf(f, "\n  ]\n}\n");
        std::fclose(f);
        std::fprintf(stderr, "bench: wrote %s (%zu rows)\n",
                     path.c_str(), rows_.size());
        return true;
    }

  private:
    static std::string escape(const std::string &s)
    {
        std::string out;
        for (char c : s) {
            if (c == '"' || c == '\\')
                out.push_back('\\');
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
                continue;
            }
            out.push_back(c);
        }
        return out;
    }

    using Row = std::vector<std::pair<std::string, std::string>>;
    std::string name_;
    std::vector<Row> rows_;
};

} // namespace bench
} // namespace llva

#endif // LLVA_BENCH_BENCH_COMMON_H
