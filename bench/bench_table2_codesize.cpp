/**
 * @file
 * Table 2, columns 2-4: lines of code, native executable size, and
 * LLVA object size for every benchmark. The paper's claim: "the
 * virtual object code is significantly smaller than the native
 * code, roughly 1.3x to 2x for the larger programs" — despite
 * carrying type, CFG, and SSA information.
 *
 * Native size here is the byte-accurate encoding of the sparc-like
 * back-end's output (the paper also measured its SPARC V9 back
 * end); the same LLVA optimizations are applied on both sides.
 */

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "vm/code_manager.h"

using namespace llva;
using namespace llva::bench;

int
main(int argc, char **argv)
{
    std::printf("Table 2 (code size): native vs. LLVA object "
                "size\n");
    hr('=');
    std::printf("%-18s %8s %14s %14s %8s\n", "Program", "#lines",
                "Native (KB)", "LLVA (KB)", "ratio");
    hr();

    double ratio_min = 1e9, ratio_max = 0;
    for (const auto &info : allWorkloads()) {
        auto m = prepared(info);

        CodeManager native(*getTarget("sparc"));
        native.translateAll(*m);
        size_t native_bytes = native.totalEncodedBytes();
        for (const auto &gv : m->globals())
            native_bytes += gv->containedType()->sizeInBytes(
                m->pointerSize());
        size_t virtual_bytes = writeBytecode(*m).size();

        double ratio = static_cast<double>(native_bytes) /
                       static_cast<double>(virtual_bytes);
        ratio_min = std::min(ratio_min, ratio);
        ratio_max = std::max(ratio_max, ratio);

        std::printf("%-18s %8zu %14.2f %14.2f %8.2f\n",
                    info.name.c_str(), sourceLines(*m),
                    native_bytes / 1024.0, virtual_bytes / 1024.0,
                    ratio);
    }
    hr();
    std::printf("native/LLVA size ratio range: %.2fx .. %.2fx "
                "(paper: ~1.3x .. 2x for larger programs)\n\n",
                ratio_min, ratio_max);

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}

// Timed micro-benchmark: bytecode emission throughput.
static void
BM_WriteBytecode(benchmark::State &state)
{
    auto m = prepared(allWorkloads()[0]);
    for (auto _ : state)
        benchmark::DoNotOptimize(writeBytecode(*m));
}
BENCHMARK(BM_WriteBytecode);
