/**
 * @file
 * Table 2, columns 5-9: #LLVA instructions, #x86 instructions and
 * the x86/LLVA ratio, #sparc instructions and the sparc/LLVA ratio.
 * Paper: "each LLVA instruction translates into very few I-ISA
 * instructions on average; about 2-3 for X86 and 2.5-4 for SPARC
 * V9. Furthermore, all LLVA instructions are translated directly to
 * native machine code — no emulation routines are used at all."
 */

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "vm/code_manager.h"

using namespace llva;
using namespace llva::bench;

int
main(int argc, char **argv)
{
    std::printf("Table 2 (expansion): LLVA -> I-ISA instruction "
                "ratios\n");
    hr('=');
    std::printf("%-18s %10s %10s %7s %10s %7s\n", "Program",
                "#LLVA", "#x86", "ratio", "#sparc", "ratio");
    hr();

    double xs = 0, ss = 0;
    size_t n = 0;
    for (const auto &info : allWorkloads()) {
        auto m = prepared(info);
        size_t llva = m->instructionCount();

        // Paper configuration: the x86 back-end uses the naive
        // local allocator (heavy spill code), the sparc back-end
        // the higher-quality linear scan.
        CodeGenOptions xopts;
        xopts.allocator = CodeGenOptions::Allocator::Local;
        CodeManager x86(*getTarget("x86"), xopts);
        x86.translateAll(*m);
        size_t xi = x86.totalMachineInstructions();

        CodeManager sparc(*getTarget("sparc"));
        sparc.translateAll(*m);
        // Static sparc instructions = encoded words: this counts
        // delay-slot nops and sethi/or pairs like a real binary.
        size_t si = sparc.totalEncodedBytes() / 4;

        double rx = static_cast<double>(xi) / llva;
        double rs = static_cast<double>(si) / llva;
        xs += rx;
        ss += rs;
        ++n;
        std::printf("%-18s %10zu %10zu %7.2f %10zu %7.2f\n",
                    info.name.c_str(), llva, xi, rx, si, rs);
    }
    hr();
    std::printf("mean ratios: x86 %.2f (paper 2.2-3.3), sparc %.2f "
                "(paper 2.3-4.2)\n",
                xs / n, ss / n);
    std::printf("no emulation routines: every LLVA instruction is "
                "translated directly.\n\n");

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}

static void
BM_InstructionSelection(benchmark::State &state)
{
    auto m = prepared(allWorkloads()[0]);
    Target &t = *getTarget("sparc");
    const Function *f = m->getFunction("main");
    for (auto _ : state) {
        auto mf = translateFunction(*f, t);
        benchmark::DoNotOptimize(mf);
    }
}
BENCHMARK(BM_InstructionSelection);
