/**
 * @file
 * Table 2, columns 10-12: whole-program JIT translation time, run
 * time, and the translate/run ratio. Paper: "the JIT compilation
 * times are negligible, except for large codes with short running
 * time" — under 1% of execution time for most programs.
 *
 * Translate time is real wall-clock time of our translator (like
 * the paper's). Run time is simulated: machine instructions
 * executed at a nominal 1 GHz, 1 IPC (the paper ran on real
 * hardware; the ratio's shape is what transfers).
 */

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "support/statistic.h"

using namespace llva;
using namespace llva::bench;

int
main(int argc, char **argv)
{
    std::printf("Table 2 (translation cost): JIT translate vs run "
                "time\n");
    hr('=');
    std::printf("%-18s %12s %12s %8s %12s %9s\n", "Program",
                "Translate(s)", "Par j4 (s)", "speedup", "Run(s)",
                "ratio");
    hr();

    stats::reset();
    JsonReport report("table2");
    for (const auto &info : allWorkloads()) {
        // Larger inputs than the other benches: translation cost is
        // per-instruction (static) while run time scales with the
        // input, which is what makes the paper's ratios tiny.
        auto m = prepared(info, 2, info.defaultScale * 3);

        // Whole-program translation (the paper compiles the entire
        // program "regardless of which functions are actually
        // executed" to make the data easier to understand).
        Target &target = *getTarget("x86");
        CodeGenOptions opts;
        opts.allocator = CodeGenOptions::Allocator::Local;

        // Median-of-5 wall-clock translation time, serial and on
        // the 4-worker pipeline (byte-identical output).
        double best = 1e18, best_par = 1e18;
        for (int rep = 0; rep < 5; ++rep) {
            {
                CodeManager cm(target, opts);
                Timer t;
                cm.translateAll(*m);
                best = std::min(best, t.seconds());
            }
            {
                CodeManager cm(target, opts);
                Timer t;
                cm.translateAll(*m, 4);
                best_par = std::min(best_par, t.seconds());
            }
        }

        CodeManager cm(target, opts);
        cm.translateAll(*m);
        ExecutionContext ctx(*m);
        MachineSimulator sim(ctx, cm);
        auto r = sim.run(m->getFunction("main"));
        if (!r.ok())
            fatal("workload %s failed", info.name.c_str());
        double run_seconds =
            static_cast<double>(sim.instructionsExecuted()) /
            kSimHz;

        std::printf("%-18s %12.6f %12.6f %7.2fx %12.6f %9.3f\n",
                    info.name.c_str(), best, best_par,
                    best_par > 0 ? best / best_par : 0.0,
                    run_seconds,
                    run_seconds > 0 ? best / run_seconds : 0.0);
        report.beginRow()
            .field("program", info.name)
            .field("translate_s", best)
            .field("translate_par4_s", best_par)
            .field("parallel_speedup",
                   best_par > 0 ? best / best_par : 0.0)
            .field("run_s", run_seconds)
            .field("translate_run_ratio",
                   run_seconds > 0 ? best / run_seconds : 0.0);
    }
    hr();
    report.write();
    std::printf("(run time = simulated instructions at 1 GHz, "
                "1 IPC; ratios > 1 correspond to the paper's "
                "short-running codes)\n\n");

    // Pipeline observability: per-stage timing and the named
    // counters accumulated across every translation above.
    std::fputs(stats::report().c_str(), stdout);
    std::printf("\n");

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}

// Wall-clock translation benchmark per target, for the record.
static void
BM_TranslateWholeProgram_x86(benchmark::State &state)
{
    auto m = prepared(allWorkloads()[0]);
    for (auto _ : state) {
        CodeManager cm(*getTarget("x86"));
        cm.translateAll(*m);
        benchmark::DoNotOptimize(cm.totalMachineInstructions());
    }
}
BENCHMARK(BM_TranslateWholeProgram_x86);

static void
BM_TranslateWholeProgram_sparc(benchmark::State &state)
{
    auto m = prepared(allWorkloads()[0]);
    for (auto _ : state) {
        CodeManager cm(*getTarget("sparc"));
        cm.translateAll(*m);
        benchmark::DoNotOptimize(cm.totalMachineInstructions());
    }
}
BENCHMARK(BM_TranslateWholeProgram_sparc);
