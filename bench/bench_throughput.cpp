/**
 * @file
 * Execution throughput: instructions per second of the simulated
 * processor under the two dispatch engines — the legacy per-
 * instruction switch (state reset + virtual execute + opcode
 * switch, names rehashed on every profile event) and the direct-
 * threaded engine (cached handler pointers, chained trace-tier
 * superblocks, translation-time block IDs). Every configuration
 * runs warm: an adaptive first pass promotes the hot functions to
 * -O2+traces, then the timed runs execute from the same code cache
 * with profiling left on — the whole point of making profiling
 * cheap is never switching it off.
 *
 * The reference interpreter (itself computed-goto threaded) is
 * timed alongside for scale. Results land in BENCH_throughput.json
 * so CI can archive and diff them.
 */

#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "llee/llee.h"

using namespace llva;
using namespace llva::bench;

namespace {

CodeGenOptions
adaptiveOpts()
{
    CodeGenOptions opts;
    opts.optLevel = 2;
    opts.adaptive = true;
    opts.promoteWatermark = 500;
    return opts;
}

struct Measured
{
    double ips = 0;        ///< instructions / second
    uint64_t value = 0;    ///< program checksum (divergence check)
    std::string output;    ///< captured output (divergence check)
    size_t promotions = 0;
    size_t chained = 0;    ///< chained functions after the runs
};

/** Keep timing until both floors are met. */
constexpr double kMinSeconds = 0.2;
constexpr int kMinRuns = 3;

Measured
measureSim(Module &m, Target &target,
           MachineSimulator::Dispatch dispatch,
           uint64_t sampleInterval = 1)
{
    CodeManager cm(target, adaptiveOpts());
    EdgeProfile profile;
    cm.setAdaptive(&profile, adaptiveOpts().promoteWatermark);

    Measured out;
    // Warm pass: profile, promote, translate — none of it timed.
    {
        ExecutionContext ctx(m);
        MachineSimulator sim(ctx, cm);
        sim.setDispatch(dispatch);
        sim.setProfile(&profile);
        auto r = sim.run(m.getFunction("main"));
        if (!r.ok())
            fatal("throughput warmup trapped: %s",
                  trapKindName(r.trap));
        out.value = r.value.i;
        out.output = ctx.output();
    }
    // Timed passes from the warm cache, profiling still on.
    uint64_t instrs = 0;
    double secs = 0;
    for (int runs = 0; runs < kMinRuns || secs < kMinSeconds;
         ++runs) {
        ExecutionContext ctx(m);
        MachineSimulator sim(ctx, cm);
        sim.setDispatch(dispatch);
        sim.setProfile(&profile);
        sim.setProfileSampleInterval(sampleInterval);
        Timer t;
        auto r = sim.run(m.getFunction("main"));
        secs += t.seconds();
        instrs += sim.instructionsExecuted();
        if (!r.ok() || r.value.i != out.value)
            fatal("throughput divergence across runs");
    }
    out.ips = secs > 0 ? instrs / secs : 0;
    out.promotions = cm.promotions();
    out.chained = cm.chainedFunctions();
    return out;
}

Measured
measureInterp(Module &m)
{
    Measured out;
    uint64_t instrs = 0;
    double secs = 0;
    for (int runs = 0; runs < kMinRuns || secs < kMinSeconds;
         ++runs) {
        ExecutionContext ctx(m);
        Interpreter interp(ctx);
        Timer t;
        auto r = interp.run(m.getFunction("main"));
        secs += t.seconds();
        instrs += r.instructionsExecuted;
        if (!r.ok())
            fatal("interpreter trapped in throughput bench");
        out.value = r.value.i;
        out.output = ctx.output();
    }
    out.ips = secs > 0 ? instrs / secs : 0;
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    std::printf("Execution throughput: switch dispatch vs direct-"
                "threaded + chained superblocks (warm -O2+traces, "
                "profiling on)\n");
    hr('=');
    std::printf("%-18s %11s %11s %11s %11s %8s %7s\n", "Program",
                "interp(M/s)", "switch(M/s)", "thread(M/s)",
                "+smpl(M/s)", "speedup", "chains");
    hr();

    // The full new engine samples its always-on profile (every Nth
    // event, weight N — totals stay in execution units, so the
    // promotion watermark needs no rescaling).
    constexpr uint64_t kSampleInterval = 32;

    Target &target = *getTarget("x86");
    JsonReport report("throughput");
    for (const auto &info : allWorkloads()) {
        auto m = prepared(info);

        Measured in = measureInterp(*m);
        Measured sw = measureSim(
            *m, target, MachineSimulator::Dispatch::Switch);
        Measured th = measureSim(
            *m, target, MachineSimulator::Dispatch::Threaded);
        Measured ts = measureSim(
            *m, target, MachineSimulator::Dispatch::Threaded,
            kSampleInterval);
        if (sw.value != th.value || sw.output != th.output ||
            ts.value != th.value || ts.output != th.output)
            fatal("dispatch divergence in %s", info.name.c_str());

        double speedupExact = sw.ips > 0 ? th.ips / sw.ips : 0;
        double speedup = sw.ips > 0 ? ts.ips / sw.ips : 0;
        std::printf("%-18s %11.2f %11.2f %11.2f %11.2f %7.2fx "
                    "%7zu\n",
                    info.name.c_str(), in.ips / 1e6, sw.ips / 1e6,
                    th.ips / 1e6, ts.ips / 1e6, speedup,
                    ts.chained);
        report.beginRow()
            .field("program", info.name)
            .field("interp_ips", in.ips)
            .field("switch_ips", sw.ips)
            .field("threaded_ips", th.ips)
            .field("threaded_sampled_ips", ts.ips)
            .field("speedup_exact_profile", speedupExact)
            .field("speedup", speedup)
            .field("promotions", double(ts.promotions))
            .field("chained_functions", double(ts.chained));
    }
    hr();
    report.write();
    std::printf("IPS = simulated machine instructions per wall-"
                "clock second, timed warm (translations cached, "
                "hot functions already at -O2+traces), profiling "
                "on. switch = legacy engine (exact counts, "
                "rehashed IDs); thread = direct-threaded + chained "
                "superblocks, exact counts; +smpl adds 1-in-%llu "
                "sampled counters. speedup = +smpl/switch.\n",
                (unsigned long long)kSampleInterval);

    benchmark::Initialize(&argc, argv);
    benchmark::RunSpecifiedBenchmarks();
    return 0;
}

// Timed: one warm run of the first workload under each dispatch
// engine, for `--benchmark_filter` style comparisons.
static void
BM_SwitchDispatch(benchmark::State &state)
{
    auto m = prepared(allWorkloads()[0]);
    CodeManager cm(*getTarget("x86"), adaptiveOpts());
    EdgeProfile profile;
    cm.setAdaptive(&profile, 500);
    for (auto _ : state) {
        ExecutionContext ctx(*m);
        MachineSimulator sim(ctx, cm);
        sim.setDispatch(MachineSimulator::Dispatch::Switch);
        sim.setProfile(&profile);
        benchmark::DoNotOptimize(
            sim.run(m->getFunction("main")).value.i);
    }
}
BENCHMARK(BM_SwitchDispatch);

static void
BM_ThreadedDispatch(benchmark::State &state)
{
    auto m = prepared(allWorkloads()[0]);
    CodeManager cm(*getTarget("x86"), adaptiveOpts());
    EdgeProfile profile;
    cm.setAdaptive(&profile, 500);
    for (auto _ : state) {
        ExecutionContext ctx(*m);
        MachineSimulator sim(ctx, cm);
        sim.setDispatch(MachineSimulator::Dispatch::Threaded);
        sim.setProfile(&profile);
        benchmark::DoNotOptimize(
            sim.run(m->getFunction("main")).value.i);
    }
}
BENCHMARK(BM_ThreadedDispatch);
