/**
 * @file
 * The V-ISA's novel mechanisms in action (paper Sections 3.3-3.5):
 *   - the per-instruction ExceptionsEnabled attribute (a division
 *     that would trap is executed with exceptions off),
 *   - invoke/unwind source-level exception handling,
 *   - an OS-registered trap handler receiving a null-pointer trap,
 *   - self-modifying code via the llva.smc.replace.function
 *     intrinsic (future invocations only).
 */

#include <cstdio>

#include "parser/parser.h"
#include "verifier/verifier.h"
#include "vm/interpreter.h"
#include "vm/machine_sim.h"

using namespace llva;

static const char *kProgram = R"(
declare void %putint(long %v)
declare void %llva.smc.replace.function(ubyte* %t, ubyte* %r)

; --- ExceptionsEnabled: the same division, both ways -------------
internal int %quietDiv(int %a, int %b) {
entry:
    %q = div int %a, %b !ee(false)   ; ignored on divide-by-zero
    ret int %q
}

; --- invoke/unwind ------------------------------------------------
internal int %checked(int %x) {
entry:
    %bad = setlt int %x, 0
    br bool %bad, label %throw, label %ok
throw:
    unwind
ok:
    %r = mul int %x, 10
    ret int %r
}

internal int %tryChecked(int %x) {
entry:
    %r = invoke int %checked(int %x) to label %fine unwind label %caught
fine:
    ret int %r
caught:
    ret int -1
}

; --- SMC ----------------------------------------------------------
internal int %greetingV1() {
entry:
    ret int 111
}
internal int %greetingV2() {
entry:
    ret int 222
}

int %main() {
entry:
    ; quiet division by zero produces a defined 0, no trap
    %q = call int %quietDiv(int 7, int 0)
    call void %putint(long 1000)
    %ql = cast int %q to long
    call void %putint(long %ql)

    ; invoke/unwind: one success, one caught error
    %good = call int %tryChecked(int 4)
    %bad = call int %tryChecked(int -4)
    %gl = cast int %good to long
    call void %putint(long %gl)
    %bl = cast int %bad to long
    call void %putint(long %bl)

    ; SMC: replace greetingV1's body; only future calls change
    %before = call int %greetingV1()
    %t = cast int ()* %greetingV1 to ubyte*
    %r = cast int ()* %greetingV2 to ubyte*
    call void %llva.smc.replace.function(ubyte* %t, ubyte* %r)
    %after = call int %greetingV1()
    %sl = cast int %before to long
    call void %putint(long %sl)
    %al = cast int %after to long
    call void %putint(long %al)
    ret int 0
}
)";

int
main()
{
    auto m = parseAssembly(kProgram, "mechanisms").orDie();
    verifyOrDie(*m);

    std::printf("=== exceptions, unwinding, traps, and SMC ===\n\n");

    for (const char *engine : {"interpreter", "x86", "sparc"}) {
        ExecutionContext ctx(*m);
        if (std::string(engine) == "interpreter") {
            Interpreter interp(ctx);
            interp.run(m->getFunction("main"));
        } else {
            CodeManager cm(*getTarget(engine));
            MachineSimulator sim(ctx, cm);
            sim.run(m->getFunction("main"));
        }
        std::printf("%-11s -> %s\n", engine, ctx.output().c_str());
    }

    // Trap handler dispatch: register an LLVA handler for null
    // loads, then trigger one.
    auto m2 = parseAssembly(R"(
declare void %putint(long %v)
internal void %onTrap(long %trapno, ubyte* %info) {
entry:
    call void %putint(long 7777)
    call void %putint(long %trapno)
    ret void
}
int %main() {
entry:
    %v = load int* null
    ret int %v
}
)",
                            "traps").orDie();
    verifyOrDie(*m2);
    ExecutionContext ctx(*m2);
    ctx.setTrapHandler(
        static_cast<unsigned>(TrapKind::NullAccess),
        ctx.memory().functionAddress(m2->getFunction("onTrap")));
    CodeManager cm(*getTarget("sparc"));
    MachineSimulator sim(ctx, cm);
    auto r = sim.run(m2->getFunction("main"));
    std::printf("\ntrap demo   -> trap='%s', handler printed: %s\n",
                trapKindName(r.trap), ctx.output().c_str());
    return 0;
}
