/**
 * @file
 * LLEE and the OS-independent storage API (paper Section 4.1, Fig.
 * 3): compile a workload to virtual object code, then "launch" it
 * three ways —
 *   1. with no storage API (every launch translates online, the
 *      DAISY/Crusoe situation),
 *   2. cold with a disk cache (translates online, writes back),
 *   3. warm (loads the cached native code; zero online translation),
 * plus an idle-time offlineTranslate pass that primes the cache
 * before the program ever runs.
 */

#include <cstdio>

#include "bytecode/bytecode.h"
#include "llee/llee.h"
#include "workloads/workloads.h"

using namespace llva;

static void
report(const char *label, const LLEEResult &r)
{
    std::printf("%-28s checksum=%-12lld hits=%zu misses=%zu "
                "translated-online=%zu (%.3f ms)\n",
                label, (long long)r.exec.value.i, r.cacheHits,
                r.cacheMisses, r.functionsTranslatedOnline,
                r.onlineTranslateSeconds * 1000.0);
}

int
main()
{
    std::printf("=== LLEE: offline caching of native "
                "translations ===\n\n");

    auto m = buildWorkload("ptrdist-anagram", 1);
    auto bytecode = writeBytecode(*m);
    std::printf("virtual executable: %zu bytes "
                "(program key %s)\n\n",
                bytecode.size(), LLEE::programKey(bytecode).c_str());

    Target &target = *getTarget("sparc");

    // 1. No storage API registered by the "OS".
    {
        LLEE llee(target, nullptr);
        report("no storage, launch 1:", llee.execute(bytecode));
        report("no storage, launch 2:", llee.execute(bytecode));
    }

    // 2./3. Disk-backed storage: cold then warm.
    std::printf("\n");
    {
        FileStorage storage("/tmp/llva-llee-example");
        storage.deleteCache("llee-native-cache");
        LLEE llee(target, &storage);
        report("disk cache, cold:", llee.execute(bytecode));
        report("disk cache, warm:", llee.execute(bytecode));
    }

    // 4. Idle-time translation before first launch.
    std::printf("\n");
    {
        FileStorage storage("/tmp/llva-llee-example2");
        storage.deleteCache("llee-native-cache");
        LLEE llee(target, &storage);
        size_t n = llee.offlineTranslate(bytecode);
        std::printf("idle-time: translated %zu functions while "
                    "\"idle\"\n",
                    n);
        report("first launch after idle:", llee.execute(bytecode));
    }

    std::printf("\nWarm launches and idle-primed launches run with "
                "zero online translation,\nwhich is exactly what "
                "the paper's offline-capable design buys over "
                "DAISY/Crusoe.\n");
    return 0;
}
