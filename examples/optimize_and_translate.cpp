/**
 * @file
 * The translator pipeline, end to end: parse a function, run the
 * link-time optimization pipeline on the virtual object code, then
 * translate to both modeled I-ISAs and print the machine code with
 * instruction counts, encoded sizes, and expansion ratios — the
 * quantities Table 2 reports.
 */

#include <cstdio>

#include "codegen/codegen.h"
#include "parser/parser.h"
#include "transforms/pass.h"
#include "verifier/verifier.h"

using namespace llva;

static const char *kProgram = R"(
internal int %square(int %x) {
entry:
    %r = mul int %x, %x
    ret int %r
}

int %polyeval(int %x) {
entry:
    ; 3*x^2 + 4*x + 5, written naively (dead code included)
    %unused = mul int %x, 99
    %x2 = call int %square(int %x)
    %t1 = mul int %x2, 3
    %t2 = mul int %x, 4
    %t3 = add int %t1, %t2
    %t4 = add int %t3, 5
    %t5 = add int %t4, 0
    ret int %t5
}
)";

int
main()
{
    auto m = parseAssembly(kProgram, "pipeline").orDie();
    verifyOrDie(*m);

    std::printf("=== virtual object code, as written ===\n%s\n",
                m->str().c_str());

    PassManager pm;
    pm.setVerifyEach(true);
    addStandardPasses(pm, 2);
    pm.run(*m);
    std::printf("=== after the link-time pipeline (O2) ===\n%s",
                m->str().c_str());
    std::printf("passes that fired:");
    for (const auto &p : pm.changedPasses())
        std::printf(" %s", p.c_str());
    std::printf("\n\n");

    Function *f = m->getFunction("polyeval");
    size_t llva_count = f->instructionCount();

    for (const char *tname : {"x86", "sparc"}) {
        Target &target = *getTarget(tname);
        CodeGenOptions opts;
        // Mirror the paper: naive allocation on x86, linear scan on
        // sparc.
        opts.allocator = std::string(tname) == "x86"
                             ? CodeGenOptions::Allocator::Local
                             : CodeGenOptions::Allocator::LinearScan;
        CodeGenStats stats;
        auto mf = translateFunction(*f, target, opts, &stats);
        auto bytes = encodeFunction(*mf, target);

        std::printf("=== %s machine code ===\n%s", tname,
                    machineFunctionToString(*mf, target).c_str());
        std::printf("%zu LLVA -> %zu %s instructions "
                    "(ratio %.2f), %zu bytes encoded\n",
                    llva_count, mf->instructionCount(), tname,
                    static_cast<double>(mf->instructionCount()) /
                        static_cast<double>(llva_count),
                    bytes.size());
        std::printf("phi copies inserted %zu / coalesced %zu, "
                    "spills %zu, reloads %zu\n\n",
                    stats.phiCopiesInserted,
                    stats.phiCopiesCoalesced, stats.spillsInserted,
                    stats.reloadsInserted);
    }
    return 0;
}
