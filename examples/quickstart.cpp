/**
 * @file
 * Quickstart: the paper's own running example (Fig. 2). Parse the
 * Sum3rdChildren function from LLVA assembly, verify it, build a
 * small quadtree, and run the program on all three execution
 * engines — the reference interpreter and the two JIT-translating
 * machine simulators.
 */

#include <cstdio>

#include "parser/parser.h"
#include "verifier/verifier.h"
#include "vm/interpreter.h"
#include "vm/machine_sim.h"

using namespace llva;

static const char *kProgram = R"(
; Paper Figure 2, plus a driver that builds a small tree.
%struct.QuadTree = type { double, [4 x %struct.QuadTree*] }

declare ubyte* %malloc(ulong %n)
declare void %putdouble(double %v)

void %Sum3rdChildren(%struct.QuadTree* %T, double* %Result) {
entry:
    %V = alloca double
    %tmp.0 = seteq %struct.QuadTree* %T, null
    br bool %tmp.0, label %endif, label %else
else:
    %tmp.1 = getelementptr %struct.QuadTree* %T, long 0, ubyte 1, long 3
    %Child3 = load %struct.QuadTree** %tmp.1
    call void %Sum3rdChildren(%struct.QuadTree* %Child3, double* %V)
    %tmp.2 = load double* %V
    %tmp.3 = getelementptr %struct.QuadTree* %T, long 0, ubyte 0
    %tmp.4 = load double* %tmp.3
    %Ret.0 = add double %tmp.2, %tmp.4
    br label %endif
endif:
    %Ret.1 = phi double [ %Ret.0, %else ], [ 0.0, %entry ]
    store double %Ret.1, double* %Result
    ret void
}

internal %struct.QuadTree* %makeNode(double %data) {
entry:
    %raw = call ubyte* %malloc(ulong 40)
    %n = cast ubyte* %raw to %struct.QuadTree*
    %dp = getelementptr %struct.QuadTree* %n, long 0, ubyte 0
    store double %data, double* %dp
    br label %zero
zero:
    %i = phi long [ 0, %entry ], [ %i2, %zero ]
    %cp = getelementptr %struct.QuadTree* %n, long 0, ubyte 1, long %i
    store %struct.QuadTree* null, %struct.QuadTree** %cp
    %i2 = add long %i, 1
    %more = setlt long %i2, 4
    br bool %more, label %zero, label %done
done:
    ret %struct.QuadTree* %n
}

int %main() {
entry:
    ; root(1.0) -> child3(2.5) -> child3(4.0)
    %root = call %struct.QuadTree* %makeNode(double 1.0)
    %c3 = call %struct.QuadTree* %makeNode(double 2.5)
    %cc3 = call %struct.QuadTree* %makeNode(double 4.0)
    %slot1 = getelementptr %struct.QuadTree* %root, long 0, ubyte 1, long 3
    store %struct.QuadTree* %c3, %struct.QuadTree** %slot1
    %slot2 = getelementptr %struct.QuadTree* %c3, long 0, ubyte 1, long 3
    store %struct.QuadTree* %cc3, %struct.QuadTree** %slot2

    %result = alloca double
    call void %Sum3rdChildren(%struct.QuadTree* %root, double* %result)
    %sum = load double* %result
    call void %putdouble(double %sum)
    %r = cast double %sum to int
    ret int %r
}
)";

int
main()
{
    std::printf("=== LLVA quickstart: paper Fig. 2 ===\n\n");

    auto m = parseAssembly(kProgram, "fig2").orDie();
    verifyOrDie(*m);
    std::printf("parsed & verified module with %zu functions, "
                "%zu LLVA instructions\n\n",
                m->functions().size(), m->instructionCount());

    // Reference interpreter.
    {
        ExecutionContext ctx(*m);
        Interpreter interp(ctx);
        auto r = interp.run(m->getFunction("main"));
        std::printf("interpreter : sum=%s  (%zu LLVA instructions "
                    "executed)\n",
                    ctx.output().c_str(), r.instructionsExecuted);
    }

    // JIT translation to each modeled I-ISA, executed on its
    // functional simulator.
    for (const char *target : {"x86", "sparc"}) {
        ExecutionContext ctx(*m);
        CodeManager cm(*getTarget(target));
        MachineSimulator sim(ctx, cm);
        auto r = sim.run(m->getFunction("main"));
        (void)r;
        std::printf(
            "%-5s JIT   : sum=%s  (%llu machine instructions, "
            "%zu functions translated in %.4f ms)\n",
            target, ctx.output().c_str(),
            (unsigned long long)sim.instructionsExecuted(),
            cm.functionsTranslated(),
            cm.totalTranslateSeconds() * 1000.0);
    }

    std::printf("\nAll three engines computed 1.0 + 2.5 + 4.0 over "
                "the Children[3] spine.\n");
    return 0;
}
