/**
 * @file
 * Runtime trace-driven reoptimization (paper Section 4.2): profile
 * a program's CFG edges while it runs, form hot traces, store them
 * in the software trace cache, re-lay-out the code so traces are
 * contiguous, retranslate, and measure the drop in executed machine
 * instructions from fallthrough elision.
 */

#include <cstdio>

#include "parser/parser.h"
#include "trace/trace.h"
#include "verifier/verifier.h"
#include "vm/machine_sim.h"

using namespace llva;

static const char *kProgram = R"(
int %main() {
entry:
    br label %head
head:
    %i = phi int [ 0, %entry ], [ %i2, %latch ]
    %acc = phi int [ 0, %entry ], [ %acc2, %latch ]
    %r = rem int %i, 64
    %rare = seteq int %r, 63
    br bool %rare, label %cold, label %hot
cold:
    %c = mul int %acc, 3
    br label %latch
hot:
    %h = add int %acc, 1
    br label %latch
latch:
    %acc2 = phi int [ %c, %cold ], [ %h, %hot ]
    %i2 = add int %i, 1
    %more = setlt int %i2, 20000
    br bool %more, label %head, label %out
out:
    ret int %acc2
}
)";

static uint64_t
simulate(Module &m, const char *label)
{
    ExecutionContext ctx(m);
    CodeManager cm(*getTarget("sparc"));
    MachineSimulator sim(ctx, cm);
    auto r = sim.run(m.getFunction("main"));
    std::printf("%-18s checksum=%-10lld machine instructions "
                "executed=%llu\n",
                label, (long long)r.value.i,
                (unsigned long long)sim.instructionsExecuted());
    return sim.instructionsExecuted();
}

int
main()
{
    std::printf("=== trace-driven code layout ===\n\n");

    auto m = parseAssembly(kProgram, "traced").orDie();
    verifyOrDie(*m);
    uint64_t before = simulate(*m, "original layout:");

    // Profile on the interpreter (the paper instruments statically
    // and profiles paths within loop regions at runtime).
    Function *f = m->getFunction("main");
    EdgeProfile profile;
    {
        ExecutionContext ctx(*m);
        Interpreter interp(ctx);
        interp.setProfile(&profile);
        interp.run(f);
    }

    TraceCache cache;
    for (Trace &t : formTraces(*f, profile))
        cache.insert(std::move(t));
    std::printf("\nformed %zu traces; hottest covers %.1f%% of "
                "profiled block executions:\n",
                cache.size(), cache.coverage(profile) * 100.0);
    for (const Trace &t : cache.traces()) {
        std::printf("  trace @%s (executed %llu times):",
                    t.head()->name().c_str(),
                    (unsigned long long)t.headCount);
        for (BasicBlock *bb : t.blocks)
            std::printf(" %s", bb->name().c_str());
        std::printf("\n");
    }

    applyTraceLayout(*f, cache.traces());
    verifyOrDie(*m);
    std::printf("\n");
    uint64_t after = simulate(*m, "trace layout:");

    std::printf("\nexecuted-instruction reduction: %.2f%%\n",
                100.0 * (1.0 - static_cast<double>(after) /
                                   static_cast<double>(before)));
    return 0;
}
