#include "analysis/alias_analysis.h"

#include <functional>
#include <set>

#include "ir/instructions.h"

namespace llva {

// --- BasicAliasAnalysis ---------------------------------------------------

const Value *
BasicAliasAnalysis::underlyingObject(const Value *ptr)
{
    while (true) {
        if (auto *gep = dyn_cast<GetElementPtrInst>(ptr)) {
            ptr = gep->pointer();
        } else if (auto *c = dyn_cast<CastInst>(ptr)) {
            if (!c->value()->type()->isPointer())
                return ptr; // integer provenance: opaque
            ptr = c->value();
        } else {
            return ptr;
        }
    }
}

bool
BasicAliasAnalysis::isIdentifiedObject(const Value *v)
{
    if (isa<AllocaInst>(v) || isa<GlobalVariable>(v))
        return true;
    // A direct call to a known allocator yields fresh storage.
    if (auto *call = dyn_cast<CallInst>(v)) {
        if (const Function *f = call->calledFunction())
            return f->name() == "malloc" ||
                   f->name() == "llva.malloc";
    }
    return false;
}

namespace {

/** Byte offset of a GEP if all indices are constant; false if not. */
bool
constantGEPOffset(const GetElementPtrInst *gep, unsigned ptr_size,
                  int64_t &offset)
{
    if (!gep->hasAllConstantIndices())
        return false;
    offset = 0;
    Type *cur =
        cast<PointerType>(gep->pointer()->type())->pointee();
    for (unsigned i = 0; i < gep->numIndices(); ++i) {
        auto *ci = cast<ConstantInt>(gep->index(i));
        if (i == 0) {
            offset += ci->sext() *
                      static_cast<int64_t>(cur->sizeInBytes(ptr_size));
            continue;
        }
        if (auto *at = dyn_cast<ArrayType>(cur)) {
            cur = at->element();
            offset += ci->sext() *
                      static_cast<int64_t>(cur->sizeInBytes(ptr_size));
        } else if (auto *st = dyn_cast<StructType>(cur)) {
            size_t field = static_cast<size_t>(ci->zext());
            offset += static_cast<int64_t>(
                st->fieldOffset(field, ptr_size));
            cur = st->field(field);
        } else {
            return false;
        }
    }
    return true;
}

/** Size in bytes of the scalar a pointer refers to (0 if unknown). */
uint64_t
pointeeSize(const Value *ptr, unsigned ptr_size)
{
    auto *pt = dyn_cast<PointerType>(ptr->type());
    if (!pt)
        return 0;
    return pt->pointee()->sizeInBytes(ptr_size);
}

} // namespace

AliasResult
BasicAliasAnalysis::alias(const Value *a, const Value *b) const
{
    if (a == b)
        return AliasResult::MustAlias;

    const Value *oa = underlyingObject(a);
    const Value *ob = underlyingObject(b);

    // Distinct identified allocations never overlap.
    if (oa != ob && isIdentifiedObject(oa) && isIdentifiedObject(ob))
        return AliasResult::NoAlias;

    // Null aliases nothing.
    if (isa<ConstantNull>(oa) || isa<ConstantNull>(ob))
        return AliasResult::NoAlias;

    // Same base object: compare constant getelementptr offsets.
    if (oa == ob) {
        auto *ga = dyn_cast<GetElementPtrInst>(a);
        auto *gb = dyn_cast<GetElementPtrInst>(b);
        unsigned ps = m_.pointerSize();
        int64_t off_a = 0, off_b = 0;
        bool ka = ga ? constantGEPOffset(ga, ps, off_a) : (a == oa);
        bool kb = gb ? constantGEPOffset(gb, ps, off_b) : (b == oa);
        if (ka && kb) {
            if (off_a == off_b)
                return AliasResult::MustAlias;
            // Disjoint if the accessed ranges cannot overlap.
            uint64_t sz_a = pointeeSize(a, ps);
            uint64_t sz_b = pointeeSize(b, ps);
            if (sz_a && sz_b) {
                int64_t lo = std::min(off_a, off_b);
                int64_t hi = std::max(off_a, off_b);
                uint64_t lo_sz = (lo == off_a) ? sz_a : sz_b;
                if (lo + static_cast<int64_t>(lo_sz) <= hi)
                    return AliasResult::NoAlias;
            }
            return AliasResult::MayAlias;
        }
    }

    return AliasResult::MayAlias;
}

// --- SteensgaardAnalysis --------------------------------------------------

unsigned
SteensgaardAnalysis::find(unsigned x) const
{
    while (parent_[x] != x) {
        parent_[x] = parent_[parent_[x]]; // path halving
        x = parent_[x];
    }
    return x;
}

unsigned
SteensgaardAnalysis::unify(unsigned a, unsigned b)
{
    a = find(a);
    b = find(b);
    if (a == b)
        return a;
    parent_[b] = a;
    // Merge pointee edges: if both point somewhere, unify targets.
    unsigned pa = pointee_[a], pb = pointee_[b];
    if (pa && pb) {
        // Recursion depth is bounded by the points-to chain length.
        pointee_[a] = unify(pa, pb);
    } else if (pb) {
        pointee_[a] = pb;
    }
    return a;
}

unsigned
SteensgaardAnalysis::nodeFor(const Value *v)
{
    // Null and undef point to nothing: give every occurrence a
    // fresh node so the interned constant does not act as a bridge
    // between unrelated structures.
    if (isa<ConstantNull>(v) || isa<ConstantUndef>(v)) {
        unsigned n = static_cast<unsigned>(parent_.size());
        parent_.push_back(n);
        pointee_.push_back(0);
        return n;
    }
    auto it = valueNode_.find(v);
    if (it != valueNode_.end())
        return it->second;
    unsigned n = static_cast<unsigned>(parent_.size());
    parent_.push_back(n);
    pointee_.push_back(0);
    valueNode_[v] = n;
    return n;
}

unsigned
SteensgaardAnalysis::pointeeOf(unsigned node)
{
    node = find(node);
    if (!pointee_[node]) {
        unsigned n = static_cast<unsigned>(parent_.size());
        parent_.push_back(n);
        pointee_.push_back(0);
        pointee_[node] = n;
    }
    return find(pointee_[node]);
}

SteensgaardAnalysis::SteensgaardAnalysis(const Module &m)
    : m_(m)
{
    // Node 0 is reserved as "no node".
    parent_.push_back(0);
    pointee_.push_back(0);

    // Seed: every global/alloca/allocator call points to a fresh
    // abstract object (its allocation site node).
    for (const auto &gv : m.globals()) {
        unsigned obj = pointeeOf(nodeFor(gv.get()));
        allocSite_[gv.get()] = obj;
    }

    auto handleCall = [&](const Instruction *inst, const Value *callee,
                          const std::vector<Value *> &args) {
        auto *f = dyn_cast<Function>(callee);
        if (f && (f->name() == "malloc" || f->name() == "llva.malloc")) {
            unsigned obj = pointeeOf(nodeFor(inst));
            allocSite_[inst] = obj;
            return;
        }
        if (f && f->isDeclaration())
            return; // external: no pointer flow modeled
        if (!f) {
            // Indirect call: conservatively unify pointer args with
            // every address-taken function's parameters — for our
            // workloads, collapse everything passed through it.
            for (const Value *a : args)
                if (a->type()->isPointer())
                    unify(nodeFor(a), nodeFor(callee));
            return;
        }
        for (size_t i = 0;
             i < std::min<size_t>(args.size(), f->numArgs()); ++i)
            if (args[i]->type()->isPointer())
                unify(nodeFor(args[i]), nodeFor(f->arg(i)));
        // Return value flows back to the call result.
        if (inst->type()->isPointer())
            unify(nodeFor(inst), nodeFor(f));
        // (Function node doubles as its return-value node.)
    };

    for (const auto &func : m.functions()) {
        for (const auto &bb : *func) {
            for (const auto &inst : *bb) {
                switch (inst->opcode()) {
                  case Opcode::Alloca: {
                    unsigned obj = pointeeOf(nodeFor(inst.get()));
                    allocSite_[inst.get()] = obj;
                    break;
                  }
                  case Opcode::GetElementPtr:
                    // Field-insensitive: derived pointer aliases base.
                    unify(nodeFor(inst.get()),
                          nodeFor(cast<GetElementPtrInst>(inst.get())
                                      ->pointer()));
                    break;
                  case Opcode::Cast: {
                    auto *c = cast<CastInst>(inst.get());
                    if (c->type()->isPointer() &&
                        c->value()->type()->isPointer())
                        unify(nodeFor(c), nodeFor(c->value()));
                    break;
                  }
                  case Opcode::Load: {
                    auto *l = cast<LoadInst>(inst.get());
                    if (l->type()->isPointer())
                        unify(nodeFor(l),
                              pointeeOf(pointeeOf(
                                  nodeFor(l->pointer()))));
                    break;
                  }
                  case Opcode::Store: {
                    auto *s = cast<StoreInst>(inst.get());
                    if (s->value()->type()->isPointer())
                        unify(pointeeOf(pointeeOf(
                                  nodeFor(s->pointer()))),
                              nodeFor(s->value()));
                    break;
                  }
                  case Opcode::Phi: {
                    auto *p = cast<PhiNode>(inst.get());
                    if (p->type()->isPointer())
                        for (unsigned i = 0; i < p->numIncoming(); ++i)
                            unify(nodeFor(p),
                                  nodeFor(p->incomingValue(i)));
                    break;
                  }
                  case Opcode::Call: {
                    auto *c = cast<CallInst>(inst.get());
                    std::vector<Value *> args;
                    for (unsigned i = 0; i < c->numArgs(); ++i)
                        args.push_back(c->arg(i));
                    handleCall(c, c->callee(), args);
                    break;
                  }
                  case Opcode::Invoke: {
                    auto *c = cast<InvokeInst>(inst.get());
                    std::vector<Value *> args;
                    for (unsigned i = 0; i < c->numArgs(); ++i)
                        args.push_back(c->arg(i));
                    handleCall(c, c->callee(), args);
                    break;
                  }
                  default:
                    break;
                }
                // Return values: unify returned pointers with the
                // function's return node (the function node itself).
                if (auto *r = dyn_cast<ReturnInst>(inst.get()))
                    if (r->returnValue() &&
                        r->returnValue()->type()->isPointer())
                        unify(nodeFor(func.get()),
                              nodeFor(r->returnValue()));
            }
        }
    }
}

unsigned
SteensgaardAnalysis::structureClass(const Value *v) const
{
    unsigned target = pointsToNode(v);
    if (!target)
        return 0;

    // Lazily collapse points-to chains into components.
    if (component_.empty()) {
        component_.resize(parent_.size());
        for (unsigned i = 0; i < component_.size(); ++i)
            component_[i] = i;
        std::function<unsigned(unsigned)> findc =
            [&](unsigned x) {
                while (component_[x] != x)
                    x = component_[x] = component_[component_[x]];
                return x;
            };
        for (unsigned i = 0; i < component_.size(); ++i) {
            unsigned rep = find(i);
            unsigned pt = pointee_[rep] ? find(pointee_[rep]) : 0;
            if (pt)
                component_[findc(rep)] = findc(pt);
            if (rep != i)
                component_[findc(i)] = findc(rep);
        }
        // Path-compress everything once.
        for (unsigned i = 0; i < component_.size(); ++i)
            component_[i] = findc(i);
    }
    return component_[target];
}

AliasResult
SteensgaardAnalysis::alias(const Value *a, const Value *b) const
{
    unsigned na = pointsToNode(a);
    unsigned nb = pointsToNode(b);
    if (!na || !nb)
        return AliasResult::MayAlias;
    return na == nb ? AliasResult::MayAlias : AliasResult::NoAlias;
}

unsigned
SteensgaardAnalysis::pointsToNode(const Value *v) const
{
    auto it = valueNode_.find(v);
    if (it == valueNode_.end())
        return 0;
    unsigned n = find(it->second);
    return pointee_[n] ? find(pointee_[n]) : 0;
}

unsigned
SteensgaardAnalysis::numClasses() const
{
    std::set<unsigned> reps;
    for (const auto &[site, node] : allocSite_)
        reps.insert(find(node));
    return static_cast<unsigned>(reps.size());
}

std::vector<const Value *>
SteensgaardAnalysis::structureInstance(const Value *v) const
{
    std::vector<const Value *> out;
    unsigned target = pointsToNode(v);
    if (!target)
        return out;
    for (const auto &[site, node] : allocSite_)
        if (find(node) == target)
            out.push_back(site);
    return out;
}

} // namespace llva
