/**
 * @file
 * Alias analysis over LLVA.
 *
 * Paper Section 3.3/5.1: "the type, control-flow, and SSA information
 * enable sophisticated alias analysis algorithms in the translator."
 * Two analyses are provided:
 *
 *  - BasicAliasAnalysis: local, SSA-based rules (distinct allocas,
 *    distinct globals, getelementptr with distinct constant offsets).
 *  - SteensgaardAnalysis: a unification-based, interprocedural
 *    points-to analysis in the spirit of the paper's Data Structure
 *    Analysis. It identifies disjoint logical data-structure
 *    instances (the property Automatic Pool Allocation exploits).
 *    Simplification vs. the paper: unification-based rather than
 *    fully context-sensitive — see DESIGN.md.
 */

#ifndef LLVA_ANALYSIS_ALIAS_ANALYSIS_H
#define LLVA_ANALYSIS_ALIAS_ANALYSIS_H

#include <map>
#include <vector>

#include "ir/module.h"

namespace llva {

enum class AliasResult : uint8_t {
    NoAlias,
    MayAlias,
    MustAlias,
};

/** Stateless local alias rules. */
class BasicAliasAnalysis
{
  public:
    explicit BasicAliasAnalysis(const Module &m)
        : m_(m)
    {}

    /** Do pointers \p a and \p b possibly address the same memory? */
    AliasResult alias(const Value *a, const Value *b) const;

    /**
     * Trace a pointer through getelementptr and cast chains to the
     * value that identifies the underlying allocation (an alloca, a
     * global, a call result, an argument, a load, or a phi).
     */
    static const Value *underlyingObject(const Value *ptr);

    /** True if \p v definitely identifies a distinct allocation. */
    static bool isIdentifiedObject(const Value *v);

  private:
    const Module &m_;
};

/**
 * Unification-based points-to analysis. Every pointer value maps to
 * an abstract node; assignments unify nodes. After construction,
 * two pointers may alias iff their representatives are equal.
 */
class SteensgaardAnalysis
{
  public:
    explicit SteensgaardAnalysis(const Module &m);

    AliasResult alias(const Value *a, const Value *b) const;

    /** Representative id for the node \p v points to (0 if unknown). */
    unsigned pointsToNode(const Value *v) const;

    /** Number of disjoint memory classes discovered. */
    unsigned numClasses() const;

    /**
     * All allocation sites (allocas, globals, heap-allocating calls)
     * whose storage landed in the same class as \p v's target —
     * the "logical data structure instance" of DSA.
     */
    std::vector<const Value *> structureInstance(const Value *v) const;

    /**
     * Connected-component id of the data structure \p v points
     * into: objects linked by points-to edges (a list and the nodes
     * it reaches) share one component. This is the pool-allocation
     * granularity (one pool per logical data structure instance).
     */
    unsigned structureClass(const Value *v) const;

  private:
    unsigned find(unsigned x) const;
    unsigned unify(unsigned a, unsigned b);
    unsigned nodeFor(const Value *v);
    unsigned pointeeOf(unsigned node);

    const Module &m_;
    mutable std::vector<unsigned> parent_; // union-find
    mutable std::vector<unsigned> component_; // points-to closure
    std::vector<unsigned> pointee_;        // node -> pointed-to node
    std::map<const Value *, unsigned> valueNode_;
    std::map<const Value *, unsigned> allocSite_; // site -> node
};

} // namespace llva

#endif // LLVA_ANALYSIS_ALIAS_ANALYSIS_H
