#include "analysis/analysis_manager.h"

#include "support/error.h"
#include "support/statistic.h"

namespace llva {

namespace {

Statistic NumDomTreesComputed(
    "analysis.domtree.computed",
    "Dominator trees computed (analysis cache misses)");
Statistic NumDomTreeHits("analysis.domtree.cache_hits",
                         "Dominator tree requests served from cache");
Statistic NumLoopInfosComputed(
    "analysis.loopinfo.computed",
    "Loop-info results computed (analysis cache misses)");
Statistic NumLoopInfoHits("analysis.loopinfo.cache_hits",
                          "Loop-info requests served from cache");

/**
 * True if the two trees assign every block of \p f the same
 * immediate dominator. Catches any CFG edit that survived a pass
 * claiming to preserve the DominatorTree.
 */
bool
sameIdoms(const Function &f, const DominatorTree &a,
          const DominatorTree &b)
{
    for (const auto &bb : f)
        if (a.idom(bb.get()) != b.idom(bb.get()))
            return false;
    return true;
}

} // namespace

DominatorTree &
AnalysisManager::dominators(const Function &f)
{
    Slot &slot = slots_[&f];
    if (!slot.domtree) {
        slot.domtree = std::make_unique<DominatorTree>(f);
        ++NumDomTreesComputed;
    } else {
        ++NumDomTreeHits;
    }
    return *slot.domtree;
}

LoopInfo &
AnalysisManager::loops(const Function &f)
{
    // Force dominators first: taking the reference before touching
    // the slot again keeps the LoopInfo construction well-ordered.
    DominatorTree &dt = dominators(f);
    Slot &slot = slots_[&f];
    if (!slot.loopinfo) {
        slot.loopinfo = std::make_unique<LoopInfo>(f, dt);
        ++NumLoopInfosComputed;
    } else {
        ++NumLoopInfoHits;
    }
    return *slot.loopinfo;
}

void
AnalysisManager::invalidate(const Function &f,
                            const PreservedAnalyses &pa)
{
    auto it = slots_.find(&f);
    if (it == slots_.end())
        return;
    if (auditPreservation_ && it->second.domtree &&
        pa.preserved(AnalysisID::DominatorTree) && !f.empty()) {
        DominatorTree fresh(f);
        if (!sameIdoms(f, *it->second.domtree, fresh))
            fatal("pass lied about preserving DominatorTree for "
                  "function '%s': cached tree disagrees with a "
                  "fresh computation",
                  f.name().c_str());
    }
    if (!pa.preserved(AnalysisID::DominatorTree))
        it->second.domtree.reset();
    if (!pa.preserved(AnalysisID::LoopInfo))
        it->second.loopinfo.reset();
    if (!it->second.domtree && !it->second.loopinfo)
        slots_.erase(it);
}

void
AnalysisManager::invalidate(const Function &f)
{
    slots_.erase(&f);
}

void
AnalysisManager::clear()
{
    slots_.clear();
}

bool
AnalysisManager::isCached(const Function &f, AnalysisID id) const
{
    auto it = slots_.find(&f);
    if (it == slots_.end())
        return false;
    switch (id) {
      case AnalysisID::DominatorTree:
        return it->second.domtree != nullptr;
      case AnalysisID::LoopInfo:
        return it->second.loopinfo != nullptr;
    }
    return false;
}

} // namespace llva
