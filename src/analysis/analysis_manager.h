/**
 * @file
 * AnalysisManager: per-function analysis caching for the staged
 * translation pipeline. The paper's premise (Section 4.2) is that
 * compile-, install-, run-, and idle-time optimization all operate
 * on one persistent representation; the analyses computed over that
 * representation are equally persistent — a DominatorTree survives
 * every pass that does not change the CFG. Passes declare what they
 * preserved via a PreservedAnalyses value and the manager
 * invalidates exactly the rest, so a mem2reg → instcombine → SCCP
 * sequence computes dominators once instead of once per pass.
 */

#ifndef LLVA_ANALYSIS_ANALYSIS_MANAGER_H
#define LLVA_ANALYSIS_ANALYSIS_MANAGER_H

#include <map>
#include <memory>

#include "analysis/dominators.h"
#include "analysis/loop_info.h"

namespace llva {

/** The analyses an AnalysisManager can compute and cache. */
enum class AnalysisID : unsigned {
    DominatorTree = 0,
    LoopInfo = 1,
};

/**
 * What a pass left intact. Returned by every pass run; the pass
 * manager hands it to AnalysisManager::invalidate. The contract is
 * conservative: a pass may only claim to preserve an analysis if
 * every cached result is still correct for the transformed
 * function. Passes that rewrite instructions but never add, remove,
 * or re-wire basic blocks preserve the (purely CFG-derived)
 * DominatorTree and LoopInfo and return all(); passes that edit the
 * CFG return none().
 */
class PreservedAnalyses
{
  public:
    /** Everything preserved (IR untouched, or only non-CFG edits). */
    static PreservedAnalyses
    all()
    {
        PreservedAnalyses pa;
        pa.mask_ = ~0u;
        return pa;
    }

    /** Nothing preserved (CFG changed). */
    static PreservedAnalyses none() { return PreservedAnalyses(); }

    PreservedAnalyses &
    preserve(AnalysisID id)
    {
        mask_ |= 1u << static_cast<unsigned>(id);
        return *this;
    }

    bool
    preserved(AnalysisID id) const
    {
        return mask_ & (1u << static_cast<unsigned>(id));
    }

  private:
    unsigned mask_ = 0;
};

/**
 * Caches analysis results per function. Not thread-safe: each
 * optimization pipeline owns one manager and runs serially over a
 * module (parallel translation happens after optimization, on
 * read-only IR).
 */
class AnalysisManager
{
  public:
    /** Dominator tree for \p f, computed on first use then cached. */
    DominatorTree &dominators(const Function &f);

    /** Natural-loop info for \p f (forces dominators as well). */
    LoopInfo &loops(const Function &f);

    /** Drop whatever \p pa does not claim to preserve for \p f. */
    void invalidate(const Function &f, const PreservedAnalyses &pa);

    /**
     * Preservation audit (debug builds, on by default there): when a
     * pass claims to have preserved a cached DominatorTree, recompute
     * one from scratch and fatal() if the idoms differ — i.e. the
     * pass lied about what it preserved. Costs a full domtree build
     * per audited claim, hence debug-only by default.
     */
    void setAuditPreservation(bool v) { auditPreservation_ = v; }
    bool auditPreservation() const { return auditPreservation_; }

    /** Drop all cached results for \p f. */
    void invalidate(const Function &f);

    /** Drop everything (after a module pass changed the program). */
    void clear();

    /** True if a result is currently cached (tests, telemetry). */
    bool isCached(const Function &f, AnalysisID id) const;

  private:
    struct Slot
    {
        std::unique_ptr<DominatorTree> domtree;
        std::unique_ptr<LoopInfo> loopinfo;
    };

    std::map<const Function *, Slot> slots_;
#ifdef NDEBUG
    bool auditPreservation_ = false;
#else
    bool auditPreservation_ = true;
#endif
};

} // namespace llva

#endif // LLVA_ANALYSIS_ANALYSIS_MANAGER_H
