#include "analysis/call_graph.h"

#include <algorithm>
#include <set>

#include "ir/instructions.h"

namespace llva {

CallGraph::CallGraph(const Module &m)
    : m_(m)
{
    // Address-taken functions: any use that is not the callee slot of
    // a direct call/invoke.
    for (const auto &f : m.functions()) {
        bool taken = false;
        for (const User *u : f->users()) {
            auto *call = dyn_cast<CallInst>(u);
            auto *inv = dyn_cast<InvokeInst>(u);
            if (call && call->callee() == f.get())
                continue;
            if (inv && inv->callee() == f.get())
                continue;
            taken = true;
            break;
        }
        // Global initializers reference functions without use edges;
        // scan them too.
        if (!taken) {
            std::vector<const Constant *> work;
            for (const auto &gv : m.globals())
                if (gv->initializer())
                    work.push_back(gv->initializer());
            while (!taken && !work.empty()) {
                const Constant *c = work.back();
                work.pop_back();
                if (c == f.get())
                    taken = true;
                else if (auto *agg = dyn_cast<ConstantAggregate>(c))
                    for (size_t i = 0; i < agg->numElements(); ++i)
                        work.push_back(agg->element(i));
            }
        }
        if (taken)
            addressTaken_.push_back(f.get());
    }

    auto addEdge = [&](const Function *from, const Function *to) {
        auto &out = callees_[from];
        if (std::find(out.begin(), out.end(), to) == out.end())
            out.push_back(to);
        auto &in = callers_[to];
        if (std::find(in.begin(), in.end(), from) == in.end())
            in.push_back(from);
    };

    for (const auto &f : m.functions()) {
        for (const auto &bb : *f) {
            for (const auto &inst : *bb) {
                const Value *callee = nullptr;
                FunctionType *ft = nullptr;
                if (auto *c = dyn_cast<CallInst>(inst.get())) {
                    callee = c->callee();
                    ft = c->calleeType();
                } else if (auto *iv =
                               dyn_cast<InvokeInst>(inst.get())) {
                    callee = iv->callee();
                    ft = iv->calleeType();
                } else {
                    continue;
                }
                if (auto *target = dyn_cast<Function>(callee)) {
                    addEdge(f.get(), target);
                } else {
                    // Indirect: all type-compatible address-taken
                    // functions.
                    for (const Function *cand : addressTaken_)
                        if (cand->functionType() == ft)
                            addEdge(f.get(), cand);
                }
            }
        }
    }
}

const std::vector<const Function *> &
CallGraph::callees(const Function *f) const
{
    auto it = callees_.find(f);
    return it == callees_.end() ? empty_ : it->second;
}

const std::vector<const Function *> &
CallGraph::callers(const Function *f) const
{
    auto it = callers_.find(f);
    return it == callers_.end() ? empty_ : it->second;
}

bool
CallGraph::isRecursive(const Function *f) const
{
    // DFS from f looking for a path back to f.
    std::set<const Function *> visited;
    std::vector<const Function *> work{f};
    while (!work.empty()) {
        const Function *cur = work.back();
        work.pop_back();
        for (const Function *callee : callees(cur)) {
            if (callee == f)
                return true;
            if (visited.insert(callee).second)
                work.push_back(callee);
        }
    }
    return false;
}

std::vector<const Function *>
CallGraph::bottomUpOrder() const
{
    std::vector<const Function *> order;
    std::set<const Function *> visited;

    // Post-order DFS over the call graph.
    struct Frame
    {
        const Function *f;
        size_t next = 0;
    };
    for (const auto &root : m_.functions()) {
        if (root->isDeclaration() || visited.count(root.get()))
            continue;
        std::vector<Frame> stack{{root.get()}};
        visited.insert(root.get());
        while (!stack.empty()) {
            Frame &fr = stack.back();
            const auto &succ = callees(fr.f);
            if (fr.next < succ.size()) {
                const Function *next = succ[fr.next++];
                if (!next->isDeclaration() &&
                    visited.insert(next).second)
                    stack.push_back({next});
            } else {
                order.push_back(fr.f);
                stack.pop_back();
            }
        }
    }
    return order;
}

} // namespace llva
