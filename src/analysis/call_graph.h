/**
 * @file
 * Call graph construction. Direct calls give precise edges; indirect
 * calls conservatively target every address-taken function whose type
 * matches (the type information in LLVA makes the match sound —
 * paper Section 5.1 uses Data Structure Analysis for an accurate
 * call graph; the type filter is our baseline approximation).
 */

#ifndef LLVA_ANALYSIS_CALL_GRAPH_H
#define LLVA_ANALYSIS_CALL_GRAPH_H

#include <map>
#include <vector>

#include "ir/module.h"

namespace llva {

class CallGraph
{
  public:
    explicit CallGraph(const Module &m);

    /** Possible callees of each call site in \p f (union). */
    const std::vector<const Function *> &callees(const Function *f) const;

    /** Functions that may call \p f. */
    const std::vector<const Function *> &callers(const Function *f) const;

    /** True if f may (transitively) call itself. */
    bool isRecursive(const Function *f) const;

    /**
     * Bottom-up (callee-first) ordering of defined functions; members
     * of strongly connected components appear in arbitrary relative
     * order. Useful for inlining order.
     */
    std::vector<const Function *> bottomUpOrder() const;

    /** Functions whose address is taken (indirect-call candidates). */
    const std::vector<const Function *> &addressTaken() const
    {
        return addressTaken_;
    }

  private:
    const Module &m_;
    std::map<const Function *, std::vector<const Function *>> callees_;
    std::map<const Function *, std::vector<const Function *>> callers_;
    std::vector<const Function *> addressTaken_;
    std::vector<const Function *> empty_;
};

} // namespace llva

#endif // LLVA_ANALYSIS_CALL_GRAPH_H
