#include "analysis/dominators.h"

#include <algorithm>
#include <set>

#include "ir/instructions.h"

namespace llva {

std::vector<BasicBlock *>
reversePostOrder(const Function &f)
{
    std::vector<BasicBlock *> post;
    std::set<const BasicBlock *> visited;

    // Iterative DFS with an explicit stack of (block, next-succ-index).
    std::vector<std::pair<BasicBlock *, size_t>> stack;
    BasicBlock *entry = const_cast<Function &>(f).entryBlock();
    stack.emplace_back(entry, 0);
    visited.insert(entry);

    while (!stack.empty()) {
        auto &[bb, idx] = stack.back();
        std::vector<BasicBlock *> succs = bb->successors();
        if (idx < succs.size()) {
            BasicBlock *next = succs[idx++];
            if (visited.insert(next).second)
                stack.emplace_back(next, 0);
        } else {
            post.push_back(bb);
            stack.pop_back();
        }
    }
    std::reverse(post.begin(), post.end());
    return post;
}

DominatorTree::DominatorTree(const Function &f)
    : f_(f)
{
    rpo_ = reversePostOrder(f);
    for (size_t i = 0; i < rpo_.size(); ++i)
        nodes_[rpo_[i]].rpoIndex = static_cast<int>(i);

    // Cooper–Harvey–Kennedy iteration.
    BasicBlock *entry = rpo_.empty() ? nullptr : rpo_[0];
    if (!entry)
        return;
    nodes_[entry].idom = entry; // sentinel: entry's idom is itself

    auto intersect = [&](BasicBlock *a, BasicBlock *b) {
        while (a != b) {
            while (nodes_[a].rpoIndex > nodes_[b].rpoIndex)
                a = nodes_[a].idom;
            while (nodes_[b].rpoIndex > nodes_[a].rpoIndex)
                b = nodes_[b].idom;
        }
        return a;
    };

    bool changed = true;
    while (changed) {
        changed = false;
        for (size_t i = 1; i < rpo_.size(); ++i) {
            BasicBlock *bb = rpo_[i];
            BasicBlock *new_idom = nullptr;
            for (BasicBlock *pred : bb->predecessors()) {
                auto it = nodes_.find(pred);
                if (it == nodes_.end() || !it->second.idom)
                    continue; // unreachable or unprocessed
                new_idom = new_idom ? intersect(new_idom, pred) : pred;
            }
            if (new_idom && nodes_[bb].idom != new_idom) {
                nodes_[bb].idom = new_idom;
                changed = true;
            }
        }
    }

    // Entry's idom is conventionally null; build children lists.
    nodes_[entry].idom = nullptr;
    for (BasicBlock *bb : rpo_) {
        if (BasicBlock *d = nodes_[bb].idom)
            nodes_[d].children.push_back(bb);
    }
}

const DominatorTree::Node *
DominatorTree::node(const BasicBlock *bb) const
{
    auto it = nodes_.find(bb);
    return it == nodes_.end() ? nullptr : &it->second;
}

BasicBlock *
DominatorTree::idom(const BasicBlock *bb) const
{
    const Node *n = node(bb);
    return n ? n->idom : nullptr;
}

bool
DominatorTree::reachable(const BasicBlock *bb) const
{
    return node(bb) != nullptr;
}

bool
DominatorTree::dominates(const BasicBlock *a, const BasicBlock *b) const
{
    if (a == b)
        return true;
    const Node *nb = node(b);
    if (!nb)
        return true; // b unreachable: vacuously dominated
    const Node *na = node(a);
    if (!na)
        return false;
    // Walk b's idom chain upward; depths are bounded by rpo index.
    const BasicBlock *cur = nb->idom;
    while (cur) {
        if (cur == a)
            return true;
        cur = node(cur)->idom;
    }
    return false;
}

bool
DominatorTree::dominates(const Instruction *def, const Instruction *user,
                         unsigned op_index) const
{
    const BasicBlock *def_bb = def->parent();
    const BasicBlock *use_bb = user->parent();

    // A phi's use of a value happens at the end of the incoming block.
    if (auto *phi = dyn_cast<PhiNode>(user)) {
        unsigned incoming = op_index / 2;
        const BasicBlock *in_bb = phi->incomingBlock(incoming);
        return dominates(def_bb, in_bb);
    }

    if (def_bb != use_bb)
        return dominates(def_bb, use_bb);

    // Same block: def must come strictly before use.
    for (const auto &inst : *def_bb) {
        if (inst.get() == def)
            return true;
        if (inst.get() == user)
            return false;
    }
    return false;
}

const std::vector<BasicBlock *> &
DominatorTree::children(const BasicBlock *bb) const
{
    const Node *n = node(bb);
    return n ? n->children : empty_;
}

const std::vector<BasicBlock *> &
DominatorTree::frontier(const BasicBlock *bb)
{
    if (!frontiersComputed_)
        computeFrontiers();
    const Node *n = node(bb);
    return n ? n->frontier : empty_;
}

void
DominatorTree::computeFrontiers()
{
    frontiersComputed_ = true;
    for (BasicBlock *bb : rpo_) {
        std::vector<BasicBlock *> preds = bb->predecessors();
        if (preds.size() < 2)
            continue;
        BasicBlock *dom = nodes_[bb].idom;
        for (BasicBlock *pred : preds) {
            if (!reachable(pred))
                continue;
            BasicBlock *runner = pred;
            while (runner && runner != dom) {
                auto &df = nodes_[runner].frontier;
                if (std::find(df.begin(), df.end(), bb) == df.end())
                    df.push_back(bb);
                runner = nodes_[runner].idom;
            }
        }
    }
}

} // namespace llva
