/**
 * @file
 * Dominator tree over the explicit CFG. LLVA's explicit control-flow
 * information (paper Section 3.1) is what makes this computable
 * directly on the persistent representation — no binary-level CFG
 * reconstruction is needed.
 *
 * Uses the Cooper–Harvey–Kennedy iterative algorithm over a reverse
 * post-order numbering.
 */

#ifndef LLVA_ANALYSIS_DOMINATORS_H
#define LLVA_ANALYSIS_DOMINATORS_H

#include <map>
#include <vector>

#include "ir/function.h"

namespace llva {

/** Blocks of \p f in reverse post-order from the entry block. */
std::vector<BasicBlock *> reversePostOrder(const Function &f);

class DominatorTree
{
  public:
    /** Build the dominator tree for \p f (must have an entry block). */
    explicit DominatorTree(const Function &f);

    /** Immediate dominator (nullptr for entry / unreachable blocks). */
    BasicBlock *idom(const BasicBlock *bb) const;

    /** True if \p a dominates \p b (reflexive). */
    bool dominates(const BasicBlock *a, const BasicBlock *b) const;

    /**
     * True if the definition \p def dominates the use site
     * (instruction \p user at operand slot \p op_index). Phi uses are
     * checked against the end of the incoming block.
     */
    bool dominates(const Instruction *def, const Instruction *user,
                   unsigned op_index) const;

    /** Children of \p bb in the dominator tree. */
    const std::vector<BasicBlock *> &children(const BasicBlock *bb) const;

    /** Dominance frontier of \p bb (computed lazily, then cached). */
    const std::vector<BasicBlock *> &frontier(const BasicBlock *bb);

    /** True if \p bb is reachable from the entry block. */
    bool reachable(const BasicBlock *bb) const;

    const std::vector<BasicBlock *> &rpo() const { return rpo_; }

  private:
    struct Node
    {
        int rpoIndex = -1;
        BasicBlock *idom = nullptr;
        std::vector<BasicBlock *> children;
        std::vector<BasicBlock *> frontier;
    };

    const Node *node(const BasicBlock *bb) const;
    void computeFrontiers();

    const Function &f_;
    std::vector<BasicBlock *> rpo_;
    std::map<const BasicBlock *, Node> nodes_;
    bool frontiersComputed_ = false;
    std::vector<BasicBlock *> empty_;
};

} // namespace llva

#endif // LLVA_ANALYSIS_DOMINATORS_H
