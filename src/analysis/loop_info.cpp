#include "analysis/loop_info.h"

#include <algorithm>
#include <set>

namespace llva {

std::vector<BasicBlock *>
Loop::exitingBlocks() const
{
    std::vector<BasicBlock *> out;
    for (BasicBlock *bb : blocks_)
        for (BasicBlock *succ : bb->successors())
            if (!contains(succ)) {
                out.push_back(bb);
                break;
            }
    return out;
}

BasicBlock *
Loop::preheader() const
{
    BasicBlock *pre = nullptr;
    for (BasicBlock *pred : header_->predecessors()) {
        if (contains(pred))
            continue;
        if (pre)
            return nullptr; // multiple outside predecessors
        pre = pred;
    }
    // A true preheader must branch only to the header.
    if (pre && pre->successors().size() != 1)
        return nullptr;
    return pre;
}

std::vector<BasicBlock *>
Loop::latches() const
{
    std::vector<BasicBlock *> out;
    for (BasicBlock *pred : header_->predecessors())
        if (contains(pred))
            out.push_back(pred);
    return out;
}

LoopInfo::LoopInfo(const Function &f, DominatorTree &dt)
{
    (void)f; // loops are derived purely from the dominator tree's CFG

    // Find back edges: edge T -> H where H dominates T.
    // Process headers in post-order of the dominator tree so inner
    // loops are discovered before their enclosing loops.
    std::map<BasicBlock *, std::vector<BasicBlock *>> backEdges;
    for (BasicBlock *bb : dt.rpo())
        for (BasicBlock *succ : bb->successors())
            if (dt.dominates(succ, bb))
                backEdges[succ].push_back(bb);

    // Process headers innermost-first: reverse RPO order works
    // because an inner header appears after its outer header in RPO.
    std::vector<BasicBlock *> headers;
    for (BasicBlock *bb : dt.rpo())
        if (backEdges.count(bb))
            headers.push_back(bb);
    std::reverse(headers.begin(), headers.end());

    for (BasicBlock *header : headers) {
        auto loop = std::make_unique<Loop>();
        loop->header_ = header;

        // Collect the natural loop body: backward walk from each
        // back-edge source until the header.
        std::set<BasicBlock *> body{header};
        std::vector<BasicBlock *> work = backEdges[header];
        while (!work.empty()) {
            BasicBlock *bb = work.back();
            work.pop_back();
            if (!body.insert(bb).second)
                continue;
            for (BasicBlock *pred : bb->predecessors())
                if (dt.reachable(pred))
                    work.push_back(pred);
        }

        for (BasicBlock *bb : body) {
            loop->blocks_.push_back(bb);
            // The innermost loop wins; blocks already claimed by an
            // inner loop keep that mapping, and the inner loop gets
            // parented to this one.
            auto it = blockMap_.find(bb);
            if (it == blockMap_.end()) {
                blockMap_[bb] = loop.get();
            } else {
                // Find the outermost enclosing loop without a parent.
                Loop *inner = it->second;
                while (inner->parent_)
                    inner = inner->parent_;
                if (inner != loop.get() && !inner->parent_) {
                    inner->parent_ = loop.get();
                    loop->subLoops_.push_back(inner);
                }
            }
        }
        loops_.push_back(std::move(loop));
    }

    // Depths and roots.
    for (auto &l : loops_)
        if (!l->parent_)
            roots_.push_back(l.get());
    // Depth = 1 + number of ancestors.
    for (auto &l : loops_) {
        unsigned d = 1;
        for (Loop *p = l->parent_; p; p = p->parent_)
            ++d;
        l->depth_ = d;
    }
    // Deduplicate subLoops (a loop may claim an inner loop once per
    // shared block).
    for (auto &l : loops_) {
        auto &subs = l->subLoops_;
        std::sort(subs.begin(), subs.end());
        subs.erase(std::unique(subs.begin(), subs.end()), subs.end());
    }
}

Loop *
LoopInfo::loopFor(const BasicBlock *bb) const
{
    auto it = blockMap_.find(bb);
    return it == blockMap_.end() ? nullptr : it->second;
}

} // namespace llva
