/**
 * @file
 * Natural-loop detection over the explicit CFG. Loop structure drives
 * the runtime path-profiling and trace-formation strategy of paper
 * Section 4.2 ("use the CFG at runtime to perform path profiling
 * within frequently executed loop regions").
 */

#ifndef LLVA_ANALYSIS_LOOP_INFO_H
#define LLVA_ANALYSIS_LOOP_INFO_H

#include <map>
#include <memory>
#include <vector>

#include "analysis/dominators.h"
#include "ir/function.h"

namespace llva {

/** A natural loop: header plus the set of blocks that reach a back
 *  edge without leaving the header's dominance region. */
class Loop
{
  public:
    BasicBlock *header() const { return header_; }
    Loop *parent() const { return parent_; }
    unsigned depth() const { return depth_; }

    const std::vector<BasicBlock *> &blocks() const { return blocks_; }
    const std::vector<Loop *> &subLoops() const { return subLoops_; }

    bool
    contains(const BasicBlock *bb) const
    {
        for (BasicBlock *b : blocks_)
            if (b == bb)
                return true;
        return false;
    }

    /** Blocks inside the loop with a successor outside it. */
    std::vector<BasicBlock *> exitingBlocks() const;

    /** The unique loop preheader, or nullptr if there is none. */
    BasicBlock *preheader() const;

    /** Latch blocks: in-loop predecessors of the header. */
    std::vector<BasicBlock *> latches() const;

  private:
    friend class LoopInfo;
    BasicBlock *header_ = nullptr;
    Loop *parent_ = nullptr;
    unsigned depth_ = 1;
    std::vector<BasicBlock *> blocks_;
    std::vector<Loop *> subLoops_;
};

/** All natural loops of a function, nested. */
class LoopInfo
{
  public:
    LoopInfo(const Function &f, DominatorTree &dt);

    /** Innermost loop containing \p bb (nullptr if none). */
    Loop *loopFor(const BasicBlock *bb) const;

    unsigned
    depth(const BasicBlock *bb) const
    {
        Loop *l = loopFor(bb);
        return l ? l->depth() : 0;
    }

    const std::vector<Loop *> &topLevelLoops() const { return roots_; }
    const std::vector<std::unique_ptr<Loop>> &loops() const
    {
        return loops_;
    }

  private:
    std::vector<std::unique_ptr<Loop>> loops_;
    std::vector<Loop *> roots_;
    std::map<const BasicBlock *, Loop *> blockMap_;
};

} // namespace llva

#endif // LLVA_ANALYSIS_LOOP_INFO_H
