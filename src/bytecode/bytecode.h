/**
 * @file
 * Virtual object code: the persistent binary form of LLVA modules.
 *
 * The format follows paper Section 3.1's encoding strategy: a
 * fixed-size 32-bit instruction word holds "small" instructions
 * (opcode, result type index, and up to three small operand ids), and
 * a self-extending variable-length form covers everything else. The
 * file header carries the pointer-size and endianness flags of
 * Section 3.2 so a translator for a different I-ISA configuration can
 * detect the producing configuration.
 *
 * Format constraint: within a function, only phi instructions may
 * reference values defined later in the stream. The writer emits
 * basic blocks in reverse post-order, which guarantees this for all
 * verifier-clean SSA code (every definition dominates its uses, and
 * dominators precede their dominees in RPO).
 *
 * Layout:
 *   magic "LLVA", version, pointer-size, endianness
 *   module name
 *   type table        (indices; recursive structs via named shells)
 *   global variables  (name, type, flags, initializer)
 *   function table    (name, type, flags)
 *   function bodies   (constant pool + blocks of instruction words)
 */

#ifndef LLVA_BYTECODE_BYTECODE_H
#define LLVA_BYTECODE_BYTECODE_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ir/module.h"

namespace llva {

/** Current bytecode format version. */
constexpr uint8_t kBytecodeVersion = 1;

/** Serialize \p m to virtual object code. */
std::vector<uint8_t> writeBytecode(const Module &m);

/** Deserialize a module; throws FatalError on malformed input. */
std::unique_ptr<Module> readBytecode(const std::vector<uint8_t> &bytes);

/** Statistics about an encoded module (for the encoding ablation). */
struct BytecodeStats
{
    size_t totalBytes = 0;
    size_t instructionWords32 = 0; ///< instructions in one 32-bit word
    size_t instructionsExtended = 0; ///< self-extending form
    size_t instructionBytes = 0;
    size_t typeTableBytes = 0;
    size_t globalBytes = 0;
};

/** Encode and measure (same bytes as writeBytecode). */
BytecodeStats measureBytecode(const Module &m);

} // namespace llva

#endif // LLVA_BYTECODE_BYTECODE_H
