/**
 * @file
 * Virtual object code: the persistent binary form of LLVA modules.
 *
 * The format follows paper Section 3.1's encoding strategy: a
 * fixed-size 32-bit instruction word holds "small" instructions
 * (opcode, result type index, and up to three small operand ids), and
 * a self-extending variable-length form covers everything else. The
 * file header carries the pointer-size and endianness flags of
 * Section 3.2 so a translator for a different I-ISA configuration can
 * detect the producing configuration.
 *
 * Format constraint: within a function, only phi instructions may
 * reference values defined later in the stream. The writer emits
 * basic blocks in reverse post-order, which guarantees this for all
 * verifier-clean SSA code (every definition dominates its uses, and
 * dominators precede their dominees in RPO).
 *
 * Layout:
 *   magic "LLVA", version, pointer-size, endianness
 *   module name
 *   type table        (indices; recursive structs via named shells)
 *   global variables  (name, type, flags, initializer)
 *   function table    (name, type, flags)
 *   function bodies   (constant pool + blocks of instruction words)
 *   crc32 trailer     (4 bytes LE, over everything preceding it)
 *
 * Trust boundary: virtual object code is the *sole* persistent
 * program representation (Section 3.1), so files cross an untrusted
 * storage boundary on every load. The reader therefore (a) verifies
 * the CRC-32 trailer before parsing a single record, (b) bounds-
 * checks every declared count against the bytes actually remaining,
 * and (c) reports malformed input as a recoverable Error rather
 * than throwing, so an execution environment can degrade instead of
 * dying.
 */

#ifndef LLVA_BYTECODE_BYTECODE_H
#define LLVA_BYTECODE_BYTECODE_H

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ir/module.h"
#include "support/expected.h"

namespace llva {

/** Current bytecode format version (2 added the crc32 trailer). */
constexpr uint8_t kBytecodeVersion = 2;

/** Bytes of the integrity trailer at the end of every object file. */
constexpr size_t kBytecodeTrailerSize = 4;

/** Serialize \p m to virtual object code (checksummed). */
std::vector<uint8_t> writeBytecode(const Module &m);

/**
 * Deserialize a module. Malformed input — bad magic or version,
 * checksum mismatch, truncation, any structurally invalid record —
 * is reported as an Error; no exception escapes this API and no
 * partial module is returned.
 */
Expected<std::unique_ptr<Module>>
readBytecode(const std::vector<uint8_t> &bytes);

/** Statistics about an encoded module (for the encoding ablation). */
struct BytecodeStats
{
    size_t totalBytes = 0;
    size_t instructionWords32 = 0; ///< instructions in one 32-bit word
    size_t instructionsExtended = 0; ///< self-extending form
    size_t instructionBytes = 0;
    size_t typeTableBytes = 0;
    size_t globalBytes = 0;
};

/** Encode and measure (same bytes as writeBytecode). */
BytecodeStats measureBytecode(const Module &m);

} // namespace llva

#endif // LLVA_BYTECODE_BYTECODE_H
