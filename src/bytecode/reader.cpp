#include <map>
#include <vector>

#include "bytecode/bytecode.h"
#include "ir/instructions.h"
#include "support/byte_io.h"

namespace llva {

namespace {

// Constant encoding tags (mirrors writer.cpp).
enum ConstTag : uint8_t {
    kConstInt = 0,
    kConstFP = 1,
    kConstNull = 2,
    kConstUndef = 3,
    kConstString = 4,
    kConstAggregate = 5,
    kConstGlobalRef = 6,
    kConstFunctionRef = 7,
};

/** Raw type record: kind plus unresolved operand indices. */
struct TypeRecord
{
    TypeKind kind;
    std::string name;           // struct name (may be empty)
    std::vector<uint64_t> refs; // pointee/element/fields/ret+params
    uint64_t count = 0;         // array length
    bool vararg = false;
};

class ModuleReader
{
  public:
    explicit ModuleReader(const std::vector<uint8_t> &bytes)
        : r_(bytes)
    {}

    std::unique_ptr<Module>
    run()
    {
        if (r_.readByte() != 'L' || r_.readByte() != 'L' ||
            r_.readByte() != 'V' || r_.readByte() != 'A')
            fatal("not an LLVA object file (bad magic)");
        uint8_t version = r_.readByte();
        if (version != kBytecodeVersion)
            fatal("unsupported bytecode version %u", version);
        TargetFlags flags;
        flags.pointerSize = r_.readByte();
        flags.bigEndian = r_.readByte() != 0;
        r_.readByte(); // reserved
        if (flags.pointerSize != 4 && flags.pointerSize != 8)
            fatal("bad pointer size %u in header", flags.pointerSize);

        std::string name = r_.readString();
        m_ = std::make_unique<Module>(name);
        m_->setTargetFlags(flags);

        readTypeTable();
        readGlobals();
        readFunctions();
        return std::move(m_);
    }

  private:
    // --- Types ---------------------------------------------------------

    void
    readTypeTable()
    {
        uint64_t count = r_.readVaruint();
        records_.resize(count);
        for (auto &rec : records_) {
            rec.kind = static_cast<TypeKind>(r_.readByte());
            switch (rec.kind) {
              case TypeKind::Pointer:
                rec.refs.push_back(r_.readVaruint());
                break;
              case TypeKind::Array:
                rec.refs.push_back(r_.readVaruint());
                rec.count = r_.readVaruint();
                break;
              case TypeKind::Struct: {
                rec.name = r_.readString();
                uint64_t n = r_.readVaruint();
                for (uint64_t i = 0; i < n; ++i)
                    rec.refs.push_back(r_.readVaruint());
                break;
              }
              case TypeKind::Function: {
                rec.refs.push_back(r_.readVaruint());
                uint64_t n = r_.readVaruint();
                for (uint64_t i = 0; i < n; ++i)
                    rec.refs.push_back(r_.readVaruint());
                rec.vararg = r_.readByte() != 0;
                break;
              }
              default:
                if (static_cast<uint8_t>(rec.kind) >
                    static_cast<uint8_t>(TypeKind::Function))
                    fatal("bad type kind in type table");
                break;
            }
        }
        resolved_.assign(records_.size(), nullptr);
        for (size_t i = 0; i < records_.size(); ++i)
            resolveType(i);
    }

    Type *
    resolveType(uint64_t idx)
    {
        if (idx >= records_.size())
            fatal("type index %llu out of range",
                  (unsigned long long)idx);
        if (resolved_[idx])
            return resolved_[idx];
        TypeRecord &rec = records_[idx];
        TypeContext &tc = m_->types();
        switch (rec.kind) {
          case TypeKind::Pointer: {
            // The pointee may be an in-progress named struct; named
            // shells are created before their bodies, so recursion
            // terminates there.
            Type *pointee = resolveType(rec.refs[0]);
            return resolved_[idx] = tc.pointerTo(pointee);
          }
          case TypeKind::Array:
            return resolved_[idx] =
                       tc.arrayOf(resolveType(rec.refs[0]), rec.count);
          case TypeKind::Struct: {
            if (!rec.name.empty()) {
                StructType *st = tc.getOrCreateNamedStruct(rec.name);
                resolved_[idx] = st; // shell first: recursion-safe
                std::vector<Type *> fields;
                for (uint64_t ref : rec.refs)
                    fields.push_back(resolveType(ref));
                st->setBody(std::move(fields));
                return st;
            }
            std::vector<Type *> fields;
            for (uint64_t ref : rec.refs)
                fields.push_back(resolveType(ref));
            return resolved_[idx] = tc.structOf(fields);
          }
          case TypeKind::Function: {
            Type *ret = resolveType(rec.refs[0]);
            std::vector<Type *> params;
            for (size_t i = 1; i < rec.refs.size(); ++i)
                params.push_back(resolveType(rec.refs[i]));
            return resolved_[idx] =
                       tc.functionOf(ret, params, rec.vararg);
          }
          default:
            return resolved_[idx] = tc.prim(rec.kind);
        }
    }

    Type *
    readTypeRef()
    {
        return resolveType(r_.readVaruint());
    }

    // --- Constants -----------------------------------------------------

    Constant *
    readConstant()
    {
        uint8_t tag = r_.readByte();
        switch (tag) {
          case kConstInt: {
            Type *t = readTypeRef();
            int64_t v = r_.readVarint();
            return m_->constantInt(t, static_cast<uint64_t>(v));
          }
          case kConstFP: {
            Type *t = readTypeRef();
            return m_->constantFP(t, r_.readDouble());
          }
          case kConstNull: {
            Type *t = readTypeRef();
            auto *pt = dyn_cast<PointerType>(t);
            if (!pt)
                fatal("null constant with non-pointer type");
            return m_->constantNull(const_cast<PointerType *>(pt));
          }
          case kConstUndef:
            return m_->constantUndef(readTypeRef());
          case kConstString:
            return m_->constantString(r_.readString(), /*nul=*/false);
          case kConstAggregate: {
            Type *t = readTypeRef();
            uint64_t n = r_.readVaruint();
            std::vector<Constant *> elems;
            for (uint64_t i = 0; i < n; ++i)
                elems.push_back(readConstant());
            return m_->constantAggregate(t, std::move(elems));
          }
          case kConstFunctionRef: {
            std::string name = r_.readString();
            Function *f = m_->getFunction(name);
            if (!f)
                fatal("reference to unknown function %%%s",
                      name.c_str());
            return f;
          }
          case kConstGlobalRef: {
            std::string name = r_.readString();
            GlobalVariable *g = m_->getGlobal(name);
            if (!g)
                fatal("reference to unknown global %%%s", name.c_str());
            return g;
          }
          default:
            fatal("bad constant tag %u", tag);
        }
    }

    // --- Globals & functions -------------------------------------------

    void
    readGlobals()
    {
        uint64_t count = r_.readVaruint();
        // Two-phase: create all globals first so initializers can
        // reference them... but initializers may also reference
        // functions, which appear later in the file. Defer initializer
        // decoding by recording byte positions? The writer emits
        // initializers inline, so instead create globals with null
        // initializers and decode inline: function refs are resolved
        // against the function table, which is read *after* globals.
        // To keep the format single-pass, initializers that reference
        // functions are re-resolved in a fixup list.
        pendingGlobals_.clear();
        for (uint64_t i = 0; i < count; ++i) {
            std::string name = r_.readString();
            Type *contained = readTypeRef();
            uint8_t flags = r_.readByte();
            GlobalVariable *gv = m_->createGlobal(
                contained, name, nullptr, (flags & 1) != 0,
                (flags & 2) ? Linkage::Internal : Linkage::External);
            if (r_.readByte()) {
                // Initializer bytes follow; we must decode now, but
                // function refs may be unresolvable. Save position,
                // skip by decoding into a tolerant mode.
                pendingGlobals_.emplace_back(gv, r_.position());
                skipConstant();
            }
        }
    }

    /** Skip an encoded constant without resolving references. */
    void
    skipConstant()
    {
        uint8_t tag = r_.readByte();
        switch (tag) {
          case kConstInt:
            r_.readVaruint();
            r_.readVarint();
            break;
          case kConstFP:
            r_.readVaruint();
            r_.readDouble();
            break;
          case kConstNull:
          case kConstUndef:
            r_.readVaruint();
            break;
          case kConstString:
            r_.readString();
            break;
          case kConstAggregate: {
            r_.readVaruint();
            uint64_t n = r_.readVaruint();
            for (uint64_t i = 0; i < n; ++i)
                skipConstant();
            break;
          }
          case kConstFunctionRef:
          case kConstGlobalRef:
            r_.readString();
            break;
          default:
            fatal("bad constant tag %u", tag);
        }
    }

    void
    readFunctions()
    {
        uint64_t count = r_.readVaruint();
        std::vector<Function *> defined;
        for (uint64_t i = 0; i < count; ++i) {
            std::string name = r_.readString();
            Type *t = readTypeRef();
            auto *ft = dyn_cast<FunctionType>(t);
            if (!ft)
                fatal("function %%%s has non-function type",
                      name.c_str());
            uint8_t flags = r_.readByte();
            Function *f = m_->createFunction(
                const_cast<FunctionType *>(ft), name,
                (flags & 1) ? Linkage::Internal : Linkage::External);
            if (flags & 2)
                defined.push_back(f);
        }

        // Now that all functions exist, decode pending global
        // initializers from their saved positions.
        size_t resume = r_.position();
        for (auto &[gv, pos] : pendingGlobals_) {
            r_.seek(pos);
            gv->setInitializer(readConstant());
        }
        r_.seek(resume);

        for (Function *f : defined)
            readBody(*f);
    }

    // --- Function bodies -----------------------------------------------

    void
    readBody(Function &f)
    {
        uint64_t num_blocks = r_.readVaruint();
        uint64_t pool_size = r_.readVaruint();

        std::vector<Value *> values;
        for (size_t i = 0; i < f.numArgs(); ++i)
            values.push_back(f.arg(i));
        std::vector<BasicBlock *> blocks;
        for (uint64_t i = 0; i < num_blocks; ++i) {
            BasicBlock *bb =
                f.createBlock("bb" + std::to_string(i));
            blocks.push_back(bb);
            values.push_back(bb);
        }
        for (uint64_t i = 0; i < pool_size; ++i)
            values.push_back(readConstant());

        // Forward references (phi operands): placeholder undefs.
        std::map<uint32_t, ConstantUndef *> forwards;

        auto getValue = [&](uint32_t id, Type *expected) -> Value * {
            if (id < values.size())
                return values[id];
            auto it = forwards.find(id);
            if (it != forwards.end())
                return it->second;
            if (!expected)
                fatal("forward reference with unknown type "
                      "(malformed object code)");
            auto *ph = new ConstantUndef(expected);
            forwards[id] = ph;
            return ph;
        };

        for (BasicBlock *bb : blocks) {
            uint64_t n = r_.readVaruint();
            for (uint64_t i = 0; i < n; ++i) {
                Instruction *inst = readInstruction(*bb, getValue);
                if (!inst->type()->isVoid())
                    values.push_back(inst);
            }
        }

        // Patch forward references.
        for (auto &[id, ph] : forwards) {
            if (id >= values.size())
                fatal("unresolved forward reference %u", id);
            if (values[id]->type() != ph->type())
                fatal("forward reference %u type mismatch", id);
            ph->replaceAllUsesWith(values[id]);
            delete ph;
        }
    }

    template <typename GetValue>
    Instruction *
    readInstruction(BasicBlock &bb, GetValue &getValue)
    {
        uint8_t head = r_.readByte();
        unsigned fmt = head >> 6;
        uint8_t opfield = head & 0x3f;
        bool ee_override = (opfield & 0x20) != 0;
        auto opcode = static_cast<Opcode>(opfield & 0x1f);
        if ((opfield & 0x1f) >= kNumOpcodes)
            fatal("bad opcode %u in object code", opfield & 0x1f);

        Type *type;
        std::vector<uint32_t> ops;
        if (fmt == 0) {
            type = resolveType(r_.readVaruint());
            uint64_t n = r_.readVaruint();
            for (uint64_t i = 0; i < n; ++i)
                ops.push_back(
                    static_cast<uint32_t>(r_.readVaruint()));
        } else {
            type = resolveType(r_.readByte());
            uint32_t tail = static_cast<uint32_t>(r_.readByte()) << 8;
            tail |= r_.readByte();
            if (fmt == 1) {
                if (tail != 0xffff)
                    ops.push_back(tail);
            } else if (fmt == 2) {
                ops.push_back((tail >> 8) & 0xff);
                ops.push_back(tail & 0xff);
            } else {
                ops.push_back((tail >> 11) & 0x1f);
                ops.push_back((tail >> 6) & 0x1f);
                ops.push_back(tail & 0x3f);
            }
        }

        Instruction *inst =
            buildInstruction(opcode, type, ops, getValue);
        if (ee_override)
            inst->setExceptionsEnabled(
                !defaultExceptionsEnabled(opcode));
        bb.append(std::unique_ptr<Instruction>(inst));
        return inst;
    }

    template <typename GetValue>
    Instruction *
    buildInstruction(Opcode opcode, Type *type,
                     const std::vector<uint32_t> &ops,
                     GetValue &getValue)
    {
        TypeContext &tc = m_->types();

        auto val = [&](size_t i, Type *expected = nullptr) {
            LLVA_ASSERT(i < ops.size(), "operand index out of range");
            return getValue(ops[i], expected);
        };
        auto block = [&](size_t i) {
            Value *v = val(i);
            auto *bb = dyn_cast<BasicBlock>(v);
            if (!bb)
                fatal("expected block operand");
            return const_cast<BasicBlock *>(bb);
        };

        switch (opcode) {
          case Opcode::Add:
          case Opcode::Sub:
          case Opcode::Mul:
          case Opcode::Div:
          case Opcode::Rem:
          case Opcode::And:
          case Opcode::Or:
          case Opcode::Xor:
          case Opcode::Shl:
          case Opcode::Shr:
            requireOps(ops, 2);
            return new BinaryOperator(opcode, val(0), val(1));
          case Opcode::SetEQ:
          case Opcode::SetNE:
          case Opcode::SetLT:
          case Opcode::SetGT:
          case Opcode::SetLE:
          case Opcode::SetGE:
            requireOps(ops, 2);
            return new SetCondInst(opcode, val(0), val(1));
          case Opcode::Ret:
            if (ops.empty())
                return new ReturnInst(tc);
            requireOps(ops, 1);
            return new ReturnInst(tc, val(0));
          case Opcode::Br:
            if (ops.size() == 1)
                return new BranchInst(tc, block(0));
            requireOps(ops, 3);
            return new BranchInst(tc, val(0), block(1), block(2));
          case Opcode::MBr: {
            if (ops.size() < 2 || ops.size() % 2 != 0)
                fatal("malformed mbr");
            auto *m = new MBrInst(tc, val(0), block(1));
            for (size_t i = 2; i + 1 < ops.size(); i += 2) {
                auto *ci = dyn_cast<ConstantInt>(val(i));
                if (!ci)
                    fatal("mbr case is not a constant");
                m->addCase(const_cast<ConstantInt *>(ci),
                           block(i + 1));
            }
            return m;
          }
          case Opcode::Invoke: {
            if (ops.size() < 3)
                fatal("malformed invoke");
            std::vector<Value *> args;
            for (size_t i = 1; i + 2 < ops.size(); ++i)
                args.push_back(val(i));
            return new InvokeInst(type, val(0), args,
                                  block(ops.size() - 2),
                                  block(ops.size() - 1));
          }
          case Opcode::Unwind:
            return new UnwindInst(tc);
          case Opcode::Load:
            requireOps(ops, 1);
            return new LoadInst(val(0));
          case Opcode::Store:
            requireOps(ops, 2);
            return new StoreInst(val(0), val(1));
          case Opcode::GetElementPtr: {
            if (ops.empty())
                fatal("malformed getelementptr");
            std::vector<Value *> indices;
            for (size_t i = 1; i < ops.size(); ++i)
                indices.push_back(val(i));
            return new GetElementPtrInst(val(0), indices);
          }
          case Opcode::Alloca: {
            auto *pt = dyn_cast<PointerType>(type);
            if (!pt)
                fatal("malformed alloca (non-pointer result)");
            Value *size = ops.empty() ? nullptr : val(0);
            return new AllocaInst(
                const_cast<PointerType *>(pt)->pointee(), size);
          }
          case Opcode::Cast:
            requireOps(ops, 1);
            return new CastInst(val(0), type);
          case Opcode::Call: {
            if (ops.empty())
                fatal("malformed call");
            std::vector<Value *> args;
            for (size_t i = 1; i < ops.size(); ++i)
                args.push_back(val(i));
            return new CallInst(type, val(0), args);
          }
          case Opcode::Phi: {
            if (ops.size() % 2 != 0)
                fatal("malformed phi");
            auto *phi = new PhiNode(type);
            for (size_t i = 0; i + 1 < ops.size(); i += 2)
                phi->addIncoming(val(i, type), block(i + 1));
            return phi;
          }
        }
        fatal("bad opcode");
    }

    static void
    requireOps(const std::vector<uint32_t> &ops, size_t n)
    {
        if (ops.size() != n)
            fatal("instruction has %zu operands, expected %zu",
                  ops.size(), n);
    }

    ByteReader r_;
    std::unique_ptr<Module> m_;
    std::vector<TypeRecord> records_;
    std::vector<Type *> resolved_;
    std::vector<std::pair<GlobalVariable *, size_t>> pendingGlobals_;
};

} // namespace

std::unique_ptr<Module>
readBytecode(const std::vector<uint8_t> &bytes)
{
    return ModuleReader(bytes).run();
}

} // namespace llva
