#include <map>
#include <set>
#include <vector>

#include "bytecode/bytecode.h"
#include "ir/instructions.h"
#include "support/byte_io.h"
#include "support/hashing.h"

namespace llva {

namespace {

// Constant encoding tags (mirrors writer.cpp).
enum ConstTag : uint8_t {
    kConstInt = 0,
    kConstFP = 1,
    kConstNull = 2,
    kConstUndef = 3,
    kConstString = 4,
    kConstAggregate = 5,
    kConstGlobalRef = 6,
    kConstFunctionRef = 7,
};

/** Nesting cap for encoded aggregate constants (anti stack-smash). */
constexpr unsigned kMaxConstantDepth = 512;

/** Raw type record: kind plus unresolved operand indices. */
struct TypeRecord
{
    TypeKind kind;
    std::string name;           // struct name (may be empty)
    std::vector<uint64_t> refs; // pointee/element/fields/ret+params
    uint64_t count = 0;         // array length
    bool vararg = false;
};

/**
 * Decodes one object file. Every declared count is checked against
 * the bytes actually remaining before any allocation sized by it, so
 * a corrupted length field can never balloon memory; every name and
 * index is validated before it reaches a Module factory, so the
 * library's internal invariants (which panic, not throw) are never
 * violated by untrusted input. All rejection paths go through
 * fatal(), which the readBytecode wrapper converts to an Error.
 */
class ModuleReader
{
  public:
    ModuleReader(const uint8_t *data, size_t size)
        : r_(data, size)
    {}

    std::unique_ptr<Module>
    run()
    {
        if (r_.remaining() < 8)
            fatal("not an LLVA object file (too small)");
        if (r_.readByte() != 'L' || r_.readByte() != 'L' ||
            r_.readByte() != 'V' || r_.readByte() != 'A')
            fatal("not an LLVA object file (bad magic)");
        uint8_t version = r_.readByte();
        if (version != kBytecodeVersion)
            fatal("unsupported bytecode version %u", version);
        TargetFlags flags;
        flags.pointerSize = r_.readByte();
        flags.bigEndian = r_.readByte() != 0;
        r_.readByte(); // reserved
        if (flags.pointerSize != 4 && flags.pointerSize != 8)
            fatal("bad pointer size %u in header", flags.pointerSize);

        std::string name = r_.readString();
        m_ = std::make_unique<Module>(name);
        m_->setTargetFlags(flags);

        readTypeTable();
        readGlobals();
        readFunctions();
        if (!r_.atEnd())
            fatal("%zu trailing bytes after module payload",
                  r_.remaining());
        return std::move(m_);
    }

    /**
     * Error-path cleanup: destroy the half-built module first (its
     * instructions drop their operand uses), then any orphaned
     * forward-reference placeholders, so nothing leaks when run()
     * throws out of the middle of a function body.
     */
    void
    discard()
    {
        m_.reset();
        for (auto &[id, ph] : forwards_)
            delete ph;
        forwards_.clear();
    }

  private:
    // --- Types ---------------------------------------------------------

    void
    readTypeTable()
    {
        uint64_t count = r_.readVaruint();
        // Each record occupies at least one byte of stream, so a
        // count beyond the remaining bytes is unsatisfiable — reject
        // before sizing any table by it.
        if (count > r_.remaining())
            fatal("type table count %llu exceeds remaining %zu bytes",
                  (unsigned long long)count, r_.remaining());
        records_.resize(count);
        for (auto &rec : records_) {
            rec.kind = static_cast<TypeKind>(r_.readByte());
            switch (rec.kind) {
              case TypeKind::Pointer:
                rec.refs.push_back(r_.readVaruint());
                break;
              case TypeKind::Array:
                rec.refs.push_back(r_.readVaruint());
                rec.count = r_.readVaruint();
                break;
              case TypeKind::Struct: {
                rec.name = r_.readString();
                uint64_t n = r_.readVaruint();
                if (n > r_.remaining())
                    fatal("struct field count %llu exceeds stream",
                          (unsigned long long)n);
                for (uint64_t i = 0; i < n; ++i)
                    rec.refs.push_back(r_.readVaruint());
                break;
              }
              case TypeKind::Function: {
                rec.refs.push_back(r_.readVaruint());
                uint64_t n = r_.readVaruint();
                if (n > r_.remaining())
                    fatal("param count %llu exceeds stream",
                          (unsigned long long)n);
                for (uint64_t i = 0; i < n; ++i)
                    rec.refs.push_back(r_.readVaruint());
                rec.vararg = r_.readByte() != 0;
                break;
              }
              default:
                if (static_cast<uint8_t>(rec.kind) >
                    static_cast<uint8_t>(TypeKind::Function))
                    fatal("bad type kind in type table");
                break;
            }
        }
        resolved_.assign(records_.size(), nullptr);
        resolving_.assign(records_.size(), 0);
        // By-value containment (struct fields, array elements) must
        // be acyclic — a type that contains itself by value has
        // infinite size. Pointers are the only legitimate back edge,
        // so they are excluded from this walk.
        checkContainmentCycles();
        // Named-struct shells first: a pointer record earlier in the
        // table may legally point into a struct defined later, so
        // every shell must exist before any record resolves.
        for (size_t i = 0; i < records_.size(); ++i) {
            TypeRecord &rec = records_[i];
            if (rec.kind != TypeKind::Struct || rec.name.empty())
                continue;
            if (!seenNamedStructs_.insert(rec.name).second)
                fatal("duplicate struct type %%%s",
                      rec.name.c_str());
            resolved_[i] =
                m_->types().getOrCreateNamedStruct(rec.name);
        }
        for (size_t i = 0; i < records_.size(); ++i) {
            TypeRecord &rec = records_[i];
            if (rec.kind == TypeKind::Struct && !rec.name.empty()) {
                std::vector<Type *> fields;
                for (uint64_t ref : rec.refs)
                    fields.push_back(checkedFieldType(ref));
                static_cast<StructType *>(resolved_[i])
                    ->setBody(std::move(fields));
            } else {
                resolveType(i);
            }
        }
    }

    /**
     * Reject type tables whose by-value containment graph has a
     * cycle. Iterative DFS — the table can hold as many records as
     * the stream has bytes, so recursion depth must not scale with
     * attacker-controlled input.
     */
    void
    checkContainmentCycles()
    {
        // 0 = unvisited, 1 = on the DFS stack, 2 = finished.
        std::vector<uint8_t> color(records_.size(), 0);
        std::vector<std::pair<uint64_t, size_t>> stack;
        for (uint64_t root = 0; root < records_.size(); ++root) {
            if (color[root])
                continue;
            color[root] = 1;
            stack.push_back({root, 0});
            while (!stack.empty()) {
                uint64_t idx = stack.back().first;
                const TypeRecord &rec = records_[idx];
                size_t nedges = 0;
                if (rec.kind == TypeKind::Array)
                    nedges = 1;
                else if (rec.kind == TypeKind::Struct)
                    nedges = rec.refs.size();
                if (stack.back().second == nedges) {
                    color[idx] = 2;
                    stack.pop_back();
                    continue;
                }
                uint64_t ref = rec.refs[stack.back().second++];
                if (ref >= records_.size())
                    fatal("type index %llu out of range",
                          (unsigned long long)ref);
                if (color[ref] == 1)
                    fatal("cyclic type table entry %llu",
                          (unsigned long long)ref);
                if (color[ref] == 0) {
                    color[ref] = 1;
                    stack.push_back({ref, 0});
                }
            }
        }
    }

    Type *
    resolveType(uint64_t idx)
    {
        if (idx >= records_.size())
            fatal("type index %llu out of range",
                  (unsigned long long)idx);
        if (resolved_[idx])
            return resolved_[idx];
        // Legitimate recursion always passes through a named-struct
        // shell (installed in resolved_ before its fields resolve);
        // re-entering an unresolved record any other way means the
        // table encodes a cycle that can never terminate.
        if (resolving_[idx])
            fatal("cyclic type table entry %llu",
                  (unsigned long long)idx);
        resolving_[idx] = 1;
        TypeRecord &rec = records_[idx];
        TypeContext &tc = m_->types();
        switch (rec.kind) {
          case TypeKind::Pointer: {
            // The pointee may be an in-progress named struct; named
            // shells are created before their bodies, so recursion
            // terminates there.
            Type *pointee = resolveType(rec.refs[0]);
            if (pointee->isVoid() || pointee->isLabel())
                fatal("pointer to %s in type table",
                      pointee->str().c_str());
            return resolved_[idx] = tc.pointerTo(pointee);
          }
          case TypeKind::Array: {
            Type *elem = resolveType(rec.refs[0]);
            if (elem->isVoid() || elem->isLabel())
                fatal("array of %s in type table",
                      elem->str().c_str());
            return resolved_[idx] = tc.arrayOf(elem, rec.count);
          }
          case TypeKind::Struct: {
            // Named structs were pre-resolved to shells in
            // readTypeTable, so only anonymous structs reach here;
            // their field cycles were rejected by the containment
            // walk above.
            std::vector<Type *> fields;
            for (uint64_t ref : rec.refs)
                fields.push_back(checkedFieldType(ref));
            return resolved_[idx] = tc.structOf(fields);
          }
          case TypeKind::Function: {
            Type *ret = resolveType(rec.refs[0]);
            std::vector<Type *> params;
            for (size_t i = 1; i < rec.refs.size(); ++i)
                params.push_back(checkedFieldType(rec.refs[i]));
            return resolved_[idx] =
                       tc.functionOf(ret, params, rec.vararg);
          }
          default:
            return resolved_[idx] = tc.prim(rec.kind);
        }
    }

    /** Resolve a struct-field / parameter type; void and label are
     *  not storable and would violate TypeContext invariants. */
    Type *
    checkedFieldType(uint64_t ref)
    {
        Type *t = resolveType(ref);
        if (t->isVoid() || t->isLabel())
            fatal("%s is not a storable field/parameter type",
                  t->str().c_str());
        return t;
    }

    Type *
    readTypeRef()
    {
        return resolveType(r_.readVaruint());
    }

    // --- Constants -----------------------------------------------------

    Constant *
    readConstant(unsigned depth = 0)
    {
        if (depth > kMaxConstantDepth)
            fatal("constant nesting exceeds %u levels",
                  kMaxConstantDepth);
        uint8_t tag = r_.readByte();
        switch (tag) {
          case kConstInt: {
            Type *t = readTypeRef();
            if (!t->isInteger() && !t->isBool())
                fatal("integer constant with type %s",
                      t->str().c_str());
            int64_t v = r_.readVarint();
            return m_->constantInt(t, static_cast<uint64_t>(v));
          }
          case kConstFP: {
            Type *t = readTypeRef();
            if (!t->isFloatingPoint())
                fatal("fp constant with type %s", t->str().c_str());
            return m_->constantFP(t, r_.readDouble());
          }
          case kConstNull: {
            Type *t = readTypeRef();
            auto *pt = dyn_cast<PointerType>(t);
            if (!pt)
                fatal("null constant with non-pointer type");
            return m_->constantNull(const_cast<PointerType *>(pt));
          }
          case kConstUndef: {
            Type *t = readTypeRef();
            if (t->isVoid() || t->isLabel())
                fatal("undef constant with type %s",
                      t->str().c_str());
            return m_->constantUndef(t);
          }
          case kConstString:
            return m_->constantString(r_.readString(), /*nul=*/false);
          case kConstAggregate: {
            Type *t = readTypeRef();
            uint64_t n = r_.readVaruint();
            if (n > r_.remaining())
                fatal("aggregate element count %llu exceeds stream",
                      (unsigned long long)n);
            std::vector<Constant *> elems;
            for (uint64_t i = 0; i < n; ++i)
                elems.push_back(readConstant(depth + 1));
            return m_->constantAggregate(t, std::move(elems));
          }
          case kConstFunctionRef: {
            std::string name = r_.readString();
            Function *f = m_->getFunction(name);
            if (!f)
                fatal("reference to unknown function %%%s",
                      name.c_str());
            return f;
          }
          case kConstGlobalRef: {
            std::string name = r_.readString();
            GlobalVariable *g = m_->getGlobal(name);
            if (!g)
                fatal("reference to unknown global %%%s", name.c_str());
            return g;
          }
          default:
            fatal("bad constant tag %u", tag);
        }
    }

    // --- Globals & functions -------------------------------------------

    void
    readGlobals()
    {
        uint64_t count = r_.readVaruint();
        // Two-phase: create all globals first so initializers can
        // reference them... but initializers may also reference
        // functions, which appear later in the file. Defer initializer
        // decoding by recording byte positions? The writer emits
        // initializers inline, so instead create globals with null
        // initializers and decode inline: function refs are resolved
        // against the function table, which is read *after* globals.
        // To keep the format single-pass, initializers that reference
        // functions are re-resolved in a fixup list.
        pendingGlobals_.clear();
        for (uint64_t i = 0; i < count; ++i) {
            std::string name = r_.readString();
            Type *contained = readTypeRef();
            if (contained->isVoid() || contained->isLabel())
                fatal("global %%%s of unstorable type %s",
                      name.c_str(), contained->str().c_str());
            if (m_->getGlobal(name))
                fatal("duplicate global %%%s", name.c_str());
            uint8_t flags = r_.readByte();
            GlobalVariable *gv = m_->createGlobal(
                contained, name, nullptr, (flags & 1) != 0,
                (flags & 2) ? Linkage::Internal : Linkage::External);
            if (r_.readByte()) {
                // Initializer bytes follow; we must decode now, but
                // function refs may be unresolvable. Save position,
                // skip by decoding into a tolerant mode.
                pendingGlobals_.emplace_back(gv, r_.position());
                skipConstant();
            }
        }
    }

    /** Skip an encoded constant without resolving references. */
    void
    skipConstant(unsigned depth = 0)
    {
        if (depth > kMaxConstantDepth)
            fatal("constant nesting exceeds %u levels",
                  kMaxConstantDepth);
        uint8_t tag = r_.readByte();
        switch (tag) {
          case kConstInt:
            r_.readVaruint();
            r_.readVarint();
            break;
          case kConstFP:
            r_.readVaruint();
            r_.readDouble();
            break;
          case kConstNull:
          case kConstUndef:
            r_.readVaruint();
            break;
          case kConstString:
            r_.readString();
            break;
          case kConstAggregate: {
            r_.readVaruint();
            uint64_t n = r_.readVaruint();
            if (n > r_.remaining())
                fatal("aggregate element count %llu exceeds stream",
                      (unsigned long long)n);
            for (uint64_t i = 0; i < n; ++i)
                skipConstant(depth + 1);
            break;
          }
          case kConstFunctionRef:
          case kConstGlobalRef:
            r_.readString();
            break;
          default:
            fatal("bad constant tag %u", tag);
        }
    }

    void
    readFunctions()
    {
        uint64_t count = r_.readVaruint();
        if (count > r_.remaining())
            fatal("function count %llu exceeds remaining %zu bytes",
                  (unsigned long long)count, r_.remaining());
        std::vector<Function *> defined;
        for (uint64_t i = 0; i < count; ++i) {
            std::string name = r_.readString();
            Type *t = readTypeRef();
            auto *ft = dyn_cast<FunctionType>(t);
            if (!ft)
                fatal("function %%%s has non-function type",
                      name.c_str());
            if (m_->getFunction(name))
                fatal("duplicate function %%%s", name.c_str());
            uint8_t flags = r_.readByte();
            Function *f = m_->createFunction(
                const_cast<FunctionType *>(ft), name,
                (flags & 1) ? Linkage::Internal : Linkage::External);
            if (flags & 2)
                defined.push_back(f);
        }

        // Now that all functions exist, decode pending global
        // initializers from their saved positions.
        size_t resume = r_.position();
        for (auto &[gv, pos] : pendingGlobals_) {
            r_.seek(pos);
            gv->setInitializer(readConstant());
        }
        r_.seek(resume);

        for (Function *f : defined)
            readBody(*f);
    }

    // --- Function bodies -----------------------------------------------

    void
    readBody(Function &f)
    {
        uint64_t num_blocks = r_.readVaruint();
        // Every block and pool constant consumes at least one stream
        // byte; counts beyond that are corrupt length fields.
        if (num_blocks > r_.remaining())
            fatal("block count %llu exceeds remaining %zu bytes",
                  (unsigned long long)num_blocks, r_.remaining());
        uint64_t pool_size = r_.readVaruint();
        if (pool_size > r_.remaining())
            fatal("constant pool size %llu exceeds remaining %zu "
                  "bytes",
                  (unsigned long long)pool_size, r_.remaining());

        std::vector<Value *> values;
        for (size_t i = 0; i < f.numArgs(); ++i)
            values.push_back(f.arg(i));
        std::vector<BasicBlock *> blocks;
        for (uint64_t i = 0; i < num_blocks; ++i) {
            BasicBlock *bb =
                f.createBlock("bb" + std::to_string(i));
            blocks.push_back(bb);
            values.push_back(bb);
        }
        for (uint64_t i = 0; i < pool_size; ++i)
            values.push_back(readConstant());

        // Forward references (phi operands): placeholder undefs,
        // tracked in a member so the error path can reclaim them.
        LLVA_ASSERT(forwards_.empty(),
                    "forward table leaked from previous body");

        auto getValue = [&](uint32_t id, Type *expected) -> Value * {
            if (id < values.size())
                return values[id];
            auto it = forwards_.find(id);
            if (it != forwards_.end())
                return it->second;
            if (!expected)
                fatal("forward reference with unknown type "
                      "(malformed object code)");
            // Every future value costs at least one stream byte, so
            // ids beyond values + remaining can never be defined;
            // this also caps the placeholder table's growth.
            if (id - values.size() >= r_.remaining())
                fatal("forward reference %u beyond end of function",
                      id);
            auto *ph = new ConstantUndef(expected);
            forwards_[id] = ph;
            return ph;
        };

        for (BasicBlock *bb : blocks) {
            uint64_t n = r_.readVaruint();
            for (uint64_t i = 0; i < n; ++i) {
                Instruction *inst = readInstruction(*bb, getValue);
                if (!inst->type()->isVoid())
                    values.push_back(inst);
            }
        }

        // Patch forward references. Validate every entry before
        // mutating anything, so a bad one cannot leave the table
        // half-deleted on the error path.
        for (auto &[id, ph] : forwards_) {
            if (id >= values.size())
                fatal("unresolved forward reference %u", id);
            if (values[id]->type() != ph->type())
                fatal("forward reference %u type mismatch", id);
        }
        for (auto &[id, ph] : forwards_) {
            ph->replaceAllUsesWith(values[id]);
            delete ph;
        }
        forwards_.clear();
    }

    template <typename GetValue>
    Instruction *
    readInstruction(BasicBlock &bb, GetValue &getValue)
    {
        uint8_t head = r_.readByte();
        unsigned fmt = head >> 6;
        uint8_t opfield = head & 0x3f;
        bool ee_override = (opfield & 0x20) != 0;
        auto opcode = static_cast<Opcode>(opfield & 0x1f);
        if ((opfield & 0x1f) >= kNumOpcodes)
            fatal("bad opcode %u in object code", opfield & 0x1f);

        Type *type;
        std::vector<uint32_t> ops;
        if (fmt == 0) {
            type = resolveType(r_.readVaruint());
            uint64_t n = r_.readVaruint();
            if (n > r_.remaining())
                fatal("operand count %llu exceeds stream",
                      (unsigned long long)n);
            for (uint64_t i = 0; i < n; ++i)
                ops.push_back(
                    static_cast<uint32_t>(r_.readVaruint()));
        } else {
            type = resolveType(r_.readByte());
            uint32_t tail = static_cast<uint32_t>(r_.readByte()) << 8;
            tail |= r_.readByte();
            if (fmt == 1) {
                if (tail != 0xffff)
                    ops.push_back(tail);
            } else if (fmt == 2) {
                ops.push_back((tail >> 8) & 0xff);
                ops.push_back(tail & 0xff);
            } else {
                ops.push_back((tail >> 11) & 0x1f);
                ops.push_back((tail >> 6) & 0x1f);
                ops.push_back(tail & 0x3f);
            }
        }

        std::unique_ptr<Instruction> inst =
            buildInstruction(opcode, type, ops, getValue);
        if (ee_override)
            inst->setExceptionsEnabled(
                !defaultExceptionsEnabled(opcode));
        Instruction *raw = inst.get();
        bb.append(std::move(inst));
        return raw;
    }

    template <typename GetValue>
    std::unique_ptr<Instruction>
    buildInstruction(Opcode opcode, Type *type,
                     const std::vector<uint32_t> &ops,
                     GetValue &getValue)
    {
        TypeContext &tc = m_->types();

        auto val = [&](size_t i, Type *expected = nullptr) {
            LLVA_ASSERT(i < ops.size(), "operand index out of range");
            return getValue(ops[i], expected);
        };
        auto block = [&](size_t i) {
            Value *v = val(i);
            auto *bb = dyn_cast<BasicBlock>(v);
            if (!bb)
                fatal("expected block operand");
            return const_cast<BasicBlock *>(bb);
        };
        // Ownership note: constructing through make() keeps a
        // half-built instruction owned while later operand decoding
        // may still fatal() (e.g. a bad mbr case), so rejection paths
        // leak nothing.
        auto make = [](Instruction *i) {
            return std::unique_ptr<Instruction>(i);
        };

        switch (opcode) {
          case Opcode::Add:
          case Opcode::Sub:
          case Opcode::Mul:
          case Opcode::Div:
          case Opcode::Rem:
          case Opcode::And:
          case Opcode::Or:
          case Opcode::Xor:
          case Opcode::Shl:
          case Opcode::Shr:
            requireOps(ops, 2);
            return make(new BinaryOperator(opcode, val(0), val(1)));
          case Opcode::SetEQ:
          case Opcode::SetNE:
          case Opcode::SetLT:
          case Opcode::SetGT:
          case Opcode::SetLE:
          case Opcode::SetGE:
            requireOps(ops, 2);
            return make(new SetCondInst(opcode, val(0), val(1)));
          case Opcode::Ret:
            if (ops.empty())
                return make(new ReturnInst(tc));
            requireOps(ops, 1);
            return make(new ReturnInst(tc, val(0)));
          case Opcode::Br:
            if (ops.size() == 1)
                return make(new BranchInst(tc, block(0)));
            requireOps(ops, 3);
            return make(
                new BranchInst(tc, val(0), block(1), block(2)));
          case Opcode::MBr: {
            if (ops.size() < 2 || ops.size() % 2 != 0)
                fatal("malformed mbr");
            auto m = make(new MBrInst(tc, val(0), block(1)));
            auto *mbr = static_cast<MBrInst *>(m.get());
            for (size_t i = 2; i + 1 < ops.size(); i += 2) {
                auto *ci = dyn_cast<ConstantInt>(val(i));
                if (!ci)
                    fatal("mbr case is not a constant");
                mbr->addCase(const_cast<ConstantInt *>(ci),
                             block(i + 1));
            }
            return m;
          }
          case Opcode::Invoke: {
            if (ops.size() < 3)
                fatal("malformed invoke");
            // Destination blocks first: they fatal() on non-block
            // operands before any instruction exists.
            BasicBlock *normal = block(ops.size() - 2);
            BasicBlock *unwind = block(ops.size() - 1);
            std::vector<Value *> args;
            for (size_t i = 1; i + 2 < ops.size(); ++i)
                args.push_back(val(i));
            return make(
                new InvokeInst(type, val(0), args, normal, unwind));
          }
          case Opcode::Unwind:
            return make(new UnwindInst(tc));
          case Opcode::Load: {
            requireOps(ops, 1);
            Value *ptr = val(0);
            if (!isa<PointerType>(ptr->type()))
                fatal("load from non-pointer operand");
            return make(new LoadInst(ptr));
          }
          case Opcode::Store:
            requireOps(ops, 2);
            return make(new StoreInst(val(0), val(1)));
          case Opcode::GetElementPtr: {
            if (ops.empty())
                fatal("malformed getelementptr");
            std::vector<Value *> indices;
            for (size_t i = 1; i < ops.size(); ++i)
                indices.push_back(val(i));
            // computeResultType (run by the constructor) fatal()s on
            // non-pointer bases and invalid index sequences, before
            // the instruction is allocated.
            return make(new GetElementPtrInst(val(0), indices));
          }
          case Opcode::Alloca: {
            auto *pt = dyn_cast<PointerType>(type);
            if (!pt)
                fatal("malformed alloca (non-pointer result)");
            Value *size = ops.empty() ? nullptr : val(0);
            return make(new AllocaInst(
                const_cast<PointerType *>(pt)->pointee(), size));
          }
          case Opcode::Cast:
            requireOps(ops, 1);
            if (type->isVoid() || type->isLabel())
                fatal("cast to %s", type->str().c_str());
            return make(new CastInst(val(0), type));
          case Opcode::Call: {
            if (ops.empty())
                fatal("malformed call");
            std::vector<Value *> args;
            for (size_t i = 1; i < ops.size(); ++i)
                args.push_back(val(i));
            return make(new CallInst(type, val(0), args));
          }
          case Opcode::Phi: {
            if (ops.size() % 2 != 0)
                fatal("malformed phi");
            if (type->isVoid() || type->isLabel())
                fatal("phi of %s", type->str().c_str());
            auto p = make(new PhiNode(type));
            auto *phi = static_cast<PhiNode *>(p.get());
            for (size_t i = 0; i + 1 < ops.size(); i += 2)
                phi->addIncoming(val(i, type), block(i + 1));
            return p;
          }
        }
        fatal("bad opcode");
    }

    static void
    requireOps(const std::vector<uint32_t> &ops, size_t n)
    {
        if (ops.size() != n)
            fatal("instruction has %zu operands, expected %zu",
                  ops.size(), n);
    }

    ByteReader r_;
    std::unique_ptr<Module> m_;
    std::vector<TypeRecord> records_;
    std::vector<Type *> resolved_;
    std::vector<uint8_t> resolving_;
    std::set<std::string> seenNamedStructs_;
    std::map<uint32_t, ConstantUndef *> forwards_;
    std::vector<std::pair<GlobalVariable *, size_t>> pendingGlobals_;
};

} // namespace

Expected<std::unique_ptr<Module>>
readBytecode(const std::vector<uint8_t> &bytes)
{
    // Verify the integrity trailer before parsing a single record:
    // any flip or truncation anywhere in the file is caught here
    // with probability 1 - 2^-32, and the parser below only ever
    // sees payloads the producer actually wrote (its structural
    // checks remain as defense in depth).
    if (bytes.size() < 8 + kBytecodeTrailerSize)
        return Error("not an LLVA object file (too small)");
    size_t payload = bytes.size() - kBytecodeTrailerSize;
    uint32_t stored = 0;
    for (size_t i = 0; i < kBytecodeTrailerSize; ++i)
        stored |= static_cast<uint32_t>(bytes[payload + i]) << (8 * i);
    if (crc32(bytes.data(), payload) != stored)
        return Error("object file checksum mismatch (corrupt or "
                     "truncated)");

    ModuleReader reader(bytes.data(), payload);
    try {
        return reader.run();
    } catch (const FatalError &e) {
        reader.discard();
        return Error(e.what());
    }
}

} // namespace llva
