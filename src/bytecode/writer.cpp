#include <map>
#include <set>

#include "analysis/dominators.h"
#include "bytecode/bytecode.h"
#include "ir/instructions.h"
#include "support/byte_io.h"
#include "support/hashing.h"

namespace llva {

namespace {

/** Type table: assigns dense indices; handles recursive structs. */
class TypeTableWriter
{
  public:
    uint32_t
    index(Type *t)
    {
        auto it = indices_.find(t);
        if (it != indices_.end())
            return it->second;
        // Assign the index before visiting children so recursive
        // structs terminate.
        uint32_t idx = static_cast<uint32_t>(records_.size());
        indices_[t] = idx;
        records_.emplace_back();
        ByteWriter payload;
        payload.writeByte(static_cast<uint8_t>(t->kind()));
        switch (t->kind()) {
          case TypeKind::Pointer:
            payload.writeVaruint(index(cast<PointerType>(t)->pointee()));
            break;
          case TypeKind::Array: {
            auto *at = cast<ArrayType>(t);
            payload.writeVaruint(index(at->element()));
            payload.writeVaruint(at->numElements());
            break;
          }
          case TypeKind::Struct: {
            auto *st = cast<StructType>(t);
            payload.writeString(st->name());
            payload.writeVaruint(st->numFields());
            for (Type *f : st->fields())
                payload.writeVaruint(index(f));
            break;
          }
          case TypeKind::Function: {
            auto *ft = cast<FunctionType>(t);
            payload.writeVaruint(index(ft->returnType()));
            payload.writeVaruint(ft->numParams());
            for (Type *p : ft->paramTypes())
                payload.writeVaruint(index(p));
            payload.writeByte(ft->isVarArg() ? 1 : 0);
            break;
          }
          default:
            break; // primitives: kind byte only
        }
        records_[idx] = payload.takeBytes();
        return idx;
    }

    void
    emit(ByteWriter &out)
    {
        out.writeVaruint(records_.size());
        for (const auto &rec : records_)
            out.writeBytes(rec.data(), rec.size());
    }

  private:
    std::map<Type *, uint32_t> indices_;
    std::vector<std::vector<uint8_t>> records_;
};

// Constant encoding tags.
enum ConstTag : uint8_t {
    kConstInt = 0,
    kConstFP = 1,
    kConstNull = 2,
    kConstUndef = 3,
    kConstString = 4,
    kConstAggregate = 5,
    kConstGlobalRef = 6,
    kConstFunctionRef = 7,
};

class ModuleWriter
{
  public:
    explicit ModuleWriter(const Module &m)
        : m_(m)
    {}

    std::vector<uint8_t>
    run(BytecodeStats *stats)
    {
        // Header.
        out_.writeByte('L');
        out_.writeByte('L');
        out_.writeByte('V');
        out_.writeByte('A');
        out_.writeByte(kBytecodeVersion);
        out_.writeByte(static_cast<uint8_t>(m_.pointerSize()));
        out_.writeByte(m_.targetFlags().bigEndian ? 1 : 0);
        out_.writeByte(0);
        out_.writeString(m_.name());

        // Type table: pre-index every type the module mentions, then
        // emit. (index() is called during global/function encoding
        // too, so collect first via a dry pass over signatures.)
        ByteWriter globals = encodeGlobals();
        ByteWriter funcTable, bodies;
        encodeFunctions(funcTable, bodies);

        size_t typeStart = out_.size();
        types_.emit(out_);
        size_t typeEnd = out_.size();

        out_.writeBytes(globals.bytes().data(), globals.size());
        size_t globalEnd = out_.size();
        out_.writeBytes(funcTable.bytes().data(), funcTable.size());
        out_.writeBytes(bodies.bytes().data(), bodies.size());

        // Integrity trailer: crc32 over every byte written so far.
        // The reader verifies this before trusting any record.
        out_.writeU32(crc32(out_.bytes()));

        if (stats) {
            stats->totalBytes = out_.size();
            stats->typeTableBytes = typeEnd - typeStart;
            stats->globalBytes = globalEnd - typeEnd;
            stats->instructionWords32 = words32_;
            stats->instructionsExtended = extended_;
            stats->instructionBytes = instBytes_;
        }
        return out_.takeBytes();
    }

  private:
    ByteWriter
    encodeGlobals()
    {
        ByteWriter w;
        w.writeVaruint(m_.globals().size());
        for (const auto &gv : m_.globals()) {
            w.writeString(gv->name());
            w.writeVaruint(types_.index(gv->containedType()));
            uint8_t flags = (gv->isConstant() ? 1 : 0) |
                            (gv->linkage() == Linkage::Internal ? 2 : 0);
            w.writeByte(flags);
            if (gv->initializer()) {
                w.writeByte(1);
                encodeConstant(w, gv->initializer());
            } else {
                w.writeByte(0);
            }
        }
        return w;
    }

    void
    encodeConstant(ByteWriter &w, const Constant *c)
    {
        if (auto *ci = dyn_cast<ConstantInt>(c)) {
            w.writeByte(kConstInt);
            w.writeVaruint(types_.index(ci->type()));
            w.writeVarint(ci->sext());
        } else if (auto *cf = dyn_cast<ConstantFP>(c)) {
            w.writeByte(kConstFP);
            w.writeVaruint(types_.index(cf->type()));
            w.writeDouble(cf->value());
        } else if (isa<ConstantNull>(c)) {
            w.writeByte(kConstNull);
            w.writeVaruint(types_.index(c->type()));
        } else if (isa<ConstantUndef>(c)) {
            w.writeByte(kConstUndef);
            w.writeVaruint(types_.index(c->type()));
        } else if (auto *cs = dyn_cast<ConstantString>(c)) {
            w.writeByte(kConstString);
            w.writeString(cs->data());
        } else if (auto *ca = dyn_cast<ConstantAggregate>(c)) {
            w.writeByte(kConstAggregate);
            w.writeVaruint(types_.index(ca->type()));
            w.writeVaruint(ca->numElements());
            for (size_t i = 0; i < ca->numElements(); ++i)
                encodeConstant(w, ca->element(i));
        } else if (auto *f = dyn_cast<Function>(c)) {
            w.writeByte(kConstFunctionRef);
            w.writeString(f->name());
        } else if (auto *g = dyn_cast<GlobalVariable>(c)) {
            w.writeByte(kConstGlobalRef);
            w.writeString(g->name());
        } else {
            panic("unencodable constant");
        }
    }

    void
    encodeFunctions(ByteWriter &table, ByteWriter &bodies)
    {
        table.writeVaruint(m_.functions().size());
        for (const auto &f : m_.functions()) {
            table.writeString(f->name());
            table.writeVaruint(types_.index(f->functionType()));
            uint8_t flags =
                (f->linkage() == Linkage::Internal ? 1 : 0) |
                (f->isDeclaration() ? 0 : 2);
            table.writeByte(flags);
        }
        for (const auto &f : m_.functions())
            if (!f->isDeclaration())
                encodeBody(bodies, *f);
    }

    void
    encodeBody(ByteWriter &w, const Function &f)
    {
        // Block layout: RPO first, then unreachable blocks.
        std::vector<BasicBlock *> layout =
            reversePostOrder(f);
        {
            std::set<BasicBlock *> reach(layout.begin(), layout.end());
            for (const auto &bb : f)
                if (!reach.count(bb.get()))
                    layout.push_back(bb.get());
        }

        // Value numbering: args, blocks, pool constants, results.
        std::map<const Value *, uint32_t> ids;
        uint32_t next = 0;
        for (size_t i = 0; i < f.numArgs(); ++i)
            ids[f.arg(i)] = next++;
        for (BasicBlock *bb : layout)
            ids[bb] = next++;

        // Constant pool: module-level values and literals used as
        // operands, in first-use order.
        std::vector<const Constant *> pool;
        for (BasicBlock *bb : layout) {
            for (const auto &inst : *bb) {
                for (size_t i = 0; i < inst->numOperands(); ++i) {
                    const Value *op = inst->operand(i);
                    auto *c = dyn_cast<Constant>(op);
                    if (c && !ids.count(op)) {
                        ids[op] = next++;
                        pool.push_back(c);
                    }
                }
            }
        }

        uint32_t firstResultId = next;
        for (BasicBlock *bb : layout)
            for (const auto &inst : *bb)
                if (!inst->type()->isVoid())
                    ids[inst.get()] = next++;

        w.writeVaruint(layout.size());
        w.writeVaruint(pool.size());
        for (const Constant *c : pool)
            encodeConstant(w, c);

        uint32_t decoded_results = firstResultId;
        for (BasicBlock *bb : layout) {
            w.writeVaruint(bb->size());
            for (const auto &inst : *bb) {
                encodeInstruction(w, inst.get(), ids, decoded_results);
                if (!inst->type()->isVoid())
                    ++decoded_results;
            }
        }
    }

    void
    encodeInstruction(ByteWriter &w, const Instruction *inst,
                      const std::map<const Value *, uint32_t> &ids,
                      uint32_t defined_limit)
    {
        size_t start = w.size();
        std::vector<uint32_t> ops;
        for (size_t i = 0; i < inst->numOperands(); ++i) {
            auto it = ids.find(inst->operand(i));
            LLVA_ASSERT(it != ids.end(), "operand not numbered");
            uint32_t id = it->second;
            if (id >= defined_limit && !isa<PhiNode>(inst) &&
                !inst->operand(i)->type()->isLabel() &&
                isa<Instruction>(inst->operand(i)))
                fatal("bytecode: non-phi forward reference in %%%s "
                      "(run simplifycfg to remove unreachable code)",
                      inst->function()->name().c_str());
            ops.push_back(id);
        }

        uint32_t typeIdx = types_.index(inst->type());
        uint8_t opcode = static_cast<uint8_t>(inst->opcode());
        bool ee_override = inst->exceptionsEnabled() !=
                           defaultExceptionsEnabled(inst->opcode());
        // Every instruction's reconstruction is implied by its result
        // type and operands (alloca's allocated type is the result
        // pointer's pointee; cast's destination is the result type).
        if (opcode >= 32)
            panic("opcode exceeds encoding space");
        uint8_t opfield = opcode | (ee_override ? 0x20 : 0);

        // Try the fixed 32-bit formats: byte 0 is
        // [fmt:2][opcode+ee:6], byte 1 the result type index, bytes
        // 2-3 the packed operand ids.
        auto fitsType = typeIdx <= 0xff;
        bool emitted = false;
        auto word32 = [&](unsigned fmt, uint32_t tail16) {
            w.writeByte(static_cast<uint8_t>((fmt << 6) | opfield));
            w.writeByte(static_cast<uint8_t>(typeIdx));
            w.writeByte(static_cast<uint8_t>(tail16 >> 8));
            w.writeByte(static_cast<uint8_t>(tail16));
            emitted = true;
        };
        if (fitsType) {
            if (ops.size() == 1 && ops[0] <= 0xfffe) {
                word32(1, ops[0]);
            } else if (ops.size() == 2 && ops[0] <= 0xff &&
                       ops[1] <= 0xff) {
                word32(2, (ops[0] << 8) | ops[1]);
            } else if (ops.size() == 3 && ops[0] <= 0x1f &&
                       ops[1] <= 0x1f && ops[2] <= 0x3f) {
                word32(3,
                       (ops[0] << 11) | (ops[1] << 6) | ops[2]);
            } else if (ops.empty()) {
                word32(1, 0xffff);
            }
        }
        if (emitted) {
            ++words32_;
        } else {
            // Self-extending form: a one-byte header (fmt 0)
            // followed by varint type, count, and operand ids.
            w.writeByte(opfield);
            w.writeVaruint(typeIdx);
            w.writeVaruint(ops.size());
            for (uint32_t id : ops)
                w.writeVaruint(id);
            ++extended_;
        }
        instBytes_ += w.size() - start;
    }

    const Module &m_;
    ByteWriter out_;
    TypeTableWriter types_;
    size_t words32_ = 0;
    size_t extended_ = 0;
    size_t instBytes_ = 0;
};

} // namespace

std::vector<uint8_t>
writeBytecode(const Module &m)
{
    return ModuleWriter(m).run(nullptr);
}

BytecodeStats
measureBytecode(const Module &m)
{
    BytecodeStats stats;
    ModuleWriter(m).run(&stats);
    return stats;
}

} // namespace llva
