#include "codegen/codegen.h"

#include <set>
#include <sstream>

#include "support/statistic.h"

namespace llva {

namespace {

// Named pipeline counters, surfaced by `-stats` and the bench
// harness. All atomic: parallel translation increments them from
// worker threads.
Statistic NumFunctionsTranslated(
    "codegen.functions_translated",
    "Functions translated to machine code");
Statistic NumInstructionsSelected(
    "codegen.instructions_selected",
    "Machine instructions produced by instruction selection");
Statistic NumPhiCopies("codegen.phi_copies",
                       "Copies inserted by phi elimination");
Statistic NumSpills("codegen.spills",
                    "Spill stores inserted by register allocation");
Statistic NumReloads("codegen.reloads",
                     "Reloads inserted by register allocation");
Statistic NumBytesEmitted("codegen.bytes_emitted",
                          "Native bytes produced by the encoder");

StageTimer IselTime("translate.isel", "instruction selection");
StageTimer PhiElimTime("translate.phi_elim", "phi elimination");
StageTimer RegAllocTime("translate.regalloc",
                        "register allocation");
StageTimer FrameTime("translate.frame",
                     "frame layout + prologue/epilogue");
StageTimer EncodeTime("translate.encode", "byte encoding");

} // namespace

void
finalizeFrame(MachineFunction &mf)
{
    // Layout: [0, outgoingArgs) | frame objects | (saved regs added
    // by the prologue afterwards). Offsets are sp-relative after the
    // prologue's stack adjustment.
    uint64_t offset = mf.outgoingArgsSize();
    for (FrameObject &obj : mf.frame()) {
        uint64_t align = obj.align ? obj.align : 8;
        offset = (offset + align - 1) / align * align;
        obj.offset = static_cast<int64_t>(offset);
        offset += obj.size;
    }
    offset = (offset + 15) / 16 * 16;
    mf.setFrameSize(offset);

    // Rewrite Frame operands to immediates: sp-relative offsets.
    // Negative indices -(1+i) denote incoming argument slots, which
    // live in the caller's outgoing area at sp + frameSize + 8i.
    for (auto &mbb : mf.blocks()) {
        for (auto &mi : mbb->instrs()) {
            for (MOperand &op : mi->ops) {
                if (op.kind != MOperand::Frame)
                    continue;
                int64_t off;
                if (op.frameIndex < 0) {
                    int arg = -op.frameIndex - 1;
                    off = static_cast<int64_t>(mf.frameSize()) +
                          8 * arg;
                } else {
                    off = mf.frame()[static_cast<size_t>(
                                         op.frameIndex)]
                              .offset;
                }
                op.kind = MOperand::Imm;
                op.imm = off;
            }
        }
    }
}

std::vector<unsigned>
usedCalleeSaved(const MachineFunction &mf, const Target &target)
{
    std::set<unsigned> written;
    for (const auto &mbb : mf.blocks())
        for (const auto &mi : mbb->instrs())
            for (size_t i = 0; i < mi->numDefs; ++i)
                if (mi->ops[i].kind == MOperand::Reg)
                    written.insert(mi->ops[i].reg);

    std::vector<unsigned> out;
    for (RegClass rc : {RegClass::Int, RegClass::FP})
        for (unsigned reg : target.calleeSaved(rc))
            if (written.count(reg))
                out.push_back(reg);
    return out;
}

std::unique_ptr<MachineFunction>
translateFunction(const Function &f, Target &target,
                  const CodeGenOptions &opts, CodeGenStats *stats)
{
    LLVA_ASSERT(!f.isDeclaration(), "cannot translate a declaration");
    auto mf =
        std::make_unique<MachineFunction>(&f, target.name());

    // This is the self-contained, re-entrant translation unit: it
    // reads shared immutable IR and a stateless target, and writes
    // only its own MachineFunction plus atomic counters — safe to
    // run on any worker thread.
    CodeGenStats local;
    CodeGenStats *s = stats ? stats : &local;
    CodeGenStats before = *s;

    {
        ScopedStageTimer t(IselTime);
        target.select(f, *mf);
    }
    NumInstructionsSelected += mf->instructionCount();

    {
        ScopedStageTimer t(PhiElimTime);
        eliminatePhis(*mf, s);
    }

    {
        ScopedStageTimer t(RegAllocTime);
        if (opts.allocator == CodeGenOptions::Allocator::Local)
            allocateRegistersLocal(*mf, target, s);
        else
            allocateRegistersLinearScan(*mf, target, opts.coalesce,
                                        s);
    }

    ScopedStageTimer t(FrameTime);
    // Save slots for callee-saved registers the allocator used, then
    // final frame layout, then the concrete prologue/epilogue.
    std::vector<unsigned> saved = usedCalleeSaved(*mf, target);
    std::vector<int> save_slots;
    for (size_t i = 0; i < saved.size(); ++i)
        save_slots.push_back(mf->createFrameObject(8, 8));
    finalizeFrame(*mf);
    std::vector<std::pair<unsigned, int64_t>> saved_offsets;
    for (size_t i = 0; i < saved.size(); ++i)
        saved_offsets.emplace_back(
            saved[i],
            mf->frame()[static_cast<size_t>(save_slots[i])].offset);
    target.insertPrologueEpilogue(*mf, saved_offsets);
    elideFallthroughJumps(*mf);

    ++NumFunctionsTranslated;
    NumPhiCopies += s->phiCopiesInserted - before.phiCopiesInserted;
    NumSpills += s->spillsInserted - before.spillsInserted;
    NumReloads += s->reloadsInserted - before.reloadsInserted;
    return mf;
}

void
elideFallthroughJumps(MachineFunction &mf)
{
    auto &blocks = mf.blocks();
    for (size_t i = 0; i + 1 < blocks.size(); ++i) {
        auto &instrs = blocks[i]->instrs();
        // The jump may be followed by delay-slot fillers (no
        // operands, no effects); an elided branch takes its delay
        // slot with it.
        size_t j = instrs.size();
        while (j > 0 && instrs[j - 1]->ops.empty() &&
               instrs[j - 1]->numDefs == 0 &&
               !instrs[j - 1]->isCall && !instrs[j - 1]->isRet)
            --j;
        if (j == 0)
            continue;
        MachineInstr &last = *instrs[j - 1];
        // An unconditional jump is a non-call, non-ret instruction
        // whose only operand is a block.
        if (last.isCall || last.isRet || last.ops.size() != 1 ||
            last.ops[0].kind != MOperand::Block)
            continue;
        if (last.ops[0].block == blocks[i + 1].get())
            instrs.erase(instrs.begin() +
                             static_cast<ptrdiff_t>(j - 1),
                         instrs.end());
    }
}

std::vector<uint8_t>
encodeFunction(const MachineFunction &mf, const Target &target)
{
    ScopedStageTimer t(EncodeTime);
    std::vector<uint8_t> bytes;
    for (const auto &mbb : mf.blocks()) {
        for (const auto &mi : mbb->instrs()) {
            std::vector<uint8_t> enc = target.encode(*mi);
            bytes.insert(bytes.end(), enc.begin(), enc.end());
        }
    }
    NumBytesEmitted += bytes.size();
    return bytes;
}

std::string
machineFunctionToString(const MachineFunction &mf,
                        const Target &target)
{
    std::ostringstream os;
    os << mf.name() << ":  ; " << target.name() << ", frame "
       << mf.frameSize() << " bytes\n";
    for (const auto &mbb : mf.blocks()) {
        os << "." << mbb->name() << ":\n";
        for (const auto &mi : mbb->instrs())
            os << "    " << target.instrToString(*mi) << "\n";
    }
    return os.str();
}

} // namespace llva
