/**
 * @file
 * The translator's code-generation pipeline: instruction selection,
 * phi elimination, register allocation, frame lowering, and prologue
 * insertion. This is the per-function core of the LLVA-to-I-ISA
 * translation that LLEE invokes (offline or just-in-time).
 */

#ifndef LLVA_CODEGEN_CODEGEN_H
#define LLVA_CODEGEN_CODEGEN_H

#include <memory>

#include "codegen/target.h"

namespace llva {

/** Knobs for the translation pipeline (used by ablation benches). */
struct CodeGenOptions
{
    enum class Allocator {
        Local,      ///< block-local, spill-everything-between-blocks
        LinearScan, ///< global linear scan with copy hints
    };

    Allocator allocator = Allocator::LinearScan;
    /** Honor copy hints and delete coalesced copies (A5 ablation). */
    bool coalesce = true;
    /**
     * Requested optimization level for runtime translation (the top
     * rung of the tier ladder; a faulting pipeline degrades from
     * here toward 0 and finally the interpreter).
     */
    uint8_t optLevel = 0;
    /** Run the verifier after every optimization pass (diagnosis);
     *  not part of the cache compatibility key. */
    bool verifyEach = false;
    /**
     * Adaptive reoptimization (paper Section 4.2): profile
     * translated code at runtime and promote hot functions to the
     * trace tier (`-O<level>+traces`). Like verifyEach, none of the
     * adaptive knobs joins the cache compatibility key — the tier a
     * body was *achieved* at travels in the envelope instead.
     */
    bool adaptive = false;
    /** Profiled block executions in one function before it is
     *  promoted to the trace tier. */
    uint64_t promoteWatermark = 5000;
    /** Dump formed traces to stderr on promotion (-print-traces). */
    bool printTraces = false;
};

/** Statistics from one function translation. */
struct CodeGenStats
{
    size_t phiCopiesInserted = 0;
    size_t phiCopiesCoalesced = 0;
    size_t spillsInserted = 0;
    size_t reloadsInserted = 0;
};

/**
 * Translate one verified LLVA function to machine code for \p target.
 * The result has only physical registers and resolved frame offsets.
 */
std::unique_ptr<MachineFunction>
translateFunction(const Function &f, Target &target,
                  const CodeGenOptions &opts = {},
                  CodeGenStats *stats = nullptr);

/** Encode every instruction of \p mf; returns total bytes. */
std::vector<uint8_t> encodeFunction(const MachineFunction &mf,
                                    const Target &target);

/** Pretty-print machine code (debugging, examples). */
std::string machineFunctionToString(const MachineFunction &mf,
                                    const Target &target);

// Pipeline stages (exposed for unit testing).
void eliminatePhis(MachineFunction &mf, CodeGenStats *stats);
void allocateRegistersLocal(MachineFunction &mf, Target &target,
                            CodeGenStats *stats);
void allocateRegistersLinearScan(MachineFunction &mf, Target &target,
                                 bool coalesce, CodeGenStats *stats);
/** Assign frame offsets and rewrite Frame operands to sp-relative. */
void finalizeFrame(MachineFunction &mf);
/**
 * Delete unconditional jumps to the lexically next block; the
 * simulator falls through. Trace-driven block layout (Section 4.2)
 * turns this into fewer executed branches and smaller code.
 */
void elideFallthroughJumps(MachineFunction &mf);
/** Callee-saved registers actually written by allocated code. */
std::vector<unsigned> usedCalleeSaved(const MachineFunction &mf,
                                      const Target &target);

} // namespace llva

#endif // LLVA_CODEGEN_CODEGEN_H
