#include "codegen/isel.h"

namespace llva {

void
ISelBase::runOn(const Function &f, MachineFunction &mf)
{
    mf_ = &mf;
    f_ = &f;
    vregs_.clear();
    blockMap_.clear();
    edgeBlock_.clear();
    staticAllocas_.clear();
    pointerSize_ = f.parent()->pointerSize();

    for (const auto &bb : f)
        blockMap_[bb.get()] = mf.createBlock(bb->name());

    cur_ = blockMap_[f.entryBlock()];
    lowerArgs();

    for (const auto &bb : f) {
        cur_ = blockMap_[bb.get()];
        for (const auto &inst : *bb)
            dispatch(*inst);
    }
}

void
ISelBase::dispatch(const Instruction &inst)
{
    switch (inst.opcode()) {
      case Opcode::Add:
      case Opcode::Sub:
      case Opcode::Mul:
      case Opcode::Div:
      case Opcode::Rem:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::Shl:
      case Opcode::Shr:
        lowerBinary(static_cast<const BinaryOperator &>(inst));
        return;
      case Opcode::SetEQ:
      case Opcode::SetNE:
      case Opcode::SetLT:
      case Opcode::SetGT:
      case Opcode::SetLE:
      case Opcode::SetGE:
        lowerCompare(static_cast<const SetCondInst &>(inst));
        return;
      case Opcode::Ret:
        lowerRet(static_cast<const ReturnInst &>(inst));
        return;
      case Opcode::Br:
        lowerBr(static_cast<const BranchInst &>(inst));
        return;
      case Opcode::MBr:
        lowerMBr(static_cast<const MBrInst &>(inst));
        return;
      case Opcode::Invoke:
        lowerInvoke(static_cast<const InvokeInst &>(inst));
        return;
      case Opcode::Unwind:
        lowerUnwind(static_cast<const UnwindInst &>(inst));
        return;
      case Opcode::Load:
        lowerLoad(static_cast<const LoadInst &>(inst));
        return;
      case Opcode::Store:
        lowerStore(static_cast<const StoreInst &>(inst));
        return;
      case Opcode::GetElementPtr:
        lowerGEP(static_cast<const GetElementPtrInst &>(inst));
        return;
      case Opcode::Alloca:
        lowerAlloca(static_cast<const AllocaInst &>(inst));
        return;
      case Opcode::Cast:
        lowerCast(static_cast<const CastInst &>(inst));
        return;
      case Opcode::Call:
        lowerCall(static_cast<const CallInst &>(inst));
        return;
      case Opcode::Phi:
        lowerPhi(static_cast<const PhiNode &>(inst));
        return;
    }
    panic("unhandled opcode in instruction selection");
}

unsigned
ISelBase::vregFor(const Value *v)
{
    auto it = vregs_.find(v);
    if (it != vregs_.end())
        return it->second;
    unsigned vreg =
        mf_->createVReg(classOf(v->type()), isFP32(v->type()));
    vregs_[v] = vreg;
    return vreg;
}

unsigned
ISelBase::valueReg(const Value *v)
{
    if (auto *c = dyn_cast<Constant>(v)) {
        bool fp = c->type()->isFloatingPoint();
        unsigned dst = mf_->createVReg(classOf(c->type()),
                                       isFP32(c->type()));
        if (auto *ci = dyn_cast<ConstantInt>(c)) {
            emitMaterialize(dst, MOperand::makeImm(ci->sext()), false,
                            false);
        } else if (auto *cf = dyn_cast<ConstantFP>(c)) {
            emitMaterialize(dst, MOperand::makeFPImm(cf->value()), fp,
                            isFP32(c->type()));
        } else if (isa<ConstantNull>(c) || isa<ConstantUndef>(c)) {
            if (fp)
                emitMaterialize(dst, MOperand::makeFPImm(0.0), true,
                                isFP32(c->type()));
            else
                emitMaterialize(dst, MOperand::makeImm(0), false,
                                false);
        } else if (auto *gv = dyn_cast<GlobalVariable>(c)) {
            emitMaterialize(dst, MOperand::makeGlobal(gv), false,
                            false);
        } else if (auto *fn = dyn_cast<Function>(c)) {
            emitMaterialize(dst, MOperand::makeFunc(fn), false,
                            false);
        } else {
            panic("cannot materialize constant");
        }
        return dst;
    }
    return vregFor(v);
}

MOperand
ISelBase::phiOperand(const Value *v)
{
    if (auto *ci = dyn_cast<ConstantInt>(v))
        return MOperand::makeImm(ci->sext());
    if (auto *cf = dyn_cast<ConstantFP>(v))
        return MOperand::makeFPImm(cf->value());
    if (isa<ConstantNull>(v))
        return MOperand::makeImm(0);
    if (isa<ConstantUndef>(v)) {
        if (v->type()->isFloatingPoint())
            return MOperand::makeFPImm(0.0);
        return MOperand::makeImm(0);
    }
    if (auto *gv = dyn_cast<GlobalVariable>(v))
        return MOperand::makeGlobal(gv);
    if (auto *fn = dyn_cast<Function>(v))
        return MOperand::makeFunc(fn);
    return MOperand::makeReg(vregFor(v));
}

MachineBasicBlock *
ISelBase::edgeBlockFor(const BasicBlock *pred, const BasicBlock *succ)
{
    auto it = edgeBlock_.find({pred, succ});
    if (it != edgeBlock_.end())
        return it->second;
    return blockMap_.at(pred);
}

void
ISelBase::lowerPhi(const PhiNode &phi)
{
    std::vector<MOperand> ops;
    ops.push_back(MOperand::makeReg(vregFor(&phi)));
    for (unsigned i = 0; i < phi.numIncoming(); ++i) {
        ops.push_back(phiOperand(phi.incomingValue(i)));
        ops.push_back(MOperand::makeBlock(edgeBlockFor(
            phi.incomingBlock(i), phi.parent())));
    }
    MachineInstr *mi = emit(kOpPhi, std::move(ops), 1);
    mi->fp32 = isFP32(phi.type());
}

void
ISelBase::lowerGEP(const GetElementPtrInst &gep)
{
    unsigned addr = valueReg(gep.pointer());
    Type *cur = cast<PointerType>(gep.pointer()->type())->pointee();
    int64_t const_off = 0;
    unsigned dst = vregFor(&gep);
    bool addr_is_result = false;

    auto addScaled = [&](const Value *idx, uint64_t scale) {
        if (auto *ci = dyn_cast<ConstantInt>(idx)) {
            const_off +=
                ci->sext() * static_cast<int64_t>(scale);
            return;
        }
        unsigned idx_reg = valueReg(idx);
        unsigned scaled;
        if (scale == 1) {
            scaled = idx_reg;
        } else {
            scaled = mf_->createVReg(RegClass::Int);
            emitMulImm(scaled, idx_reg,
                       static_cast<int64_t>(scale));
        }
        unsigned sum = mf_->createVReg(RegClass::Int);
        emitAdd(sum, addr, scaled);
        addr = sum;
    };

    for (unsigned i = 0; i < gep.numIndices(); ++i) {
        const Value *idx = gep.index(i);
        if (i == 0) {
            addScaled(idx, cur->sizeInBytes(pointerSize_));
            continue;
        }
        if (auto *at = dyn_cast<ArrayType>(cur)) {
            cur = at->element();
            addScaled(idx, cur->sizeInBytes(pointerSize_));
        } else {
            auto *st = cast<StructType>(cur);
            auto *ci = cast<ConstantInt>(idx);
            size_t field = static_cast<size_t>(ci->zext());
            const_off += static_cast<int64_t>(
                st->fieldOffset(field, pointerSize_));
            cur = st->field(field);
        }
    }

    if (const_off != 0) {
        emitAddImm(dst, addr, const_off);
        addr_is_result = true;
    }
    if (!addr_is_result)
        emitMove(dst, addr, false, false);
}

void
ISelBase::lowerAlloca(const AllocaInst &alloca)
{
    unsigned dst = vregFor(&alloca);
    if (alloca.isStatic()) {
        uint64_t count = 1;
        if (auto *ci =
                dyn_cast<ConstantInt>(alloca.arraySize()))
            count = ci->zext();
        Type *t = alloca.allocatedType();
        uint64_t size = t->sizeInBytes(pointerSize_) * count;
        uint64_t align = t->alignment(pointerSize_);
        auto it = staticAllocas_.find(&alloca);
        int slot;
        if (it != staticAllocas_.end()) {
            slot = it->second;
        } else {
            slot = mf_->createFrameObject(size ? size : 1, align);
            staticAllocas_[&alloca] = slot;
        }
        emit(kOpFrameAddr,
             {MOperand::makeReg(dst), MOperand::makeFrame(slot)}, 1);
        return;
    }
    // Dynamic alloca: compute the byte size, then ask the target to
    // produce fresh storage (a runtime-heap call in this
    // implementation; a hardware stack adjustment in a real one).
    unsigned count = valueReg(alloca.arraySize());
    unsigned size = mf_->createVReg(RegClass::Int);
    emitMulImm(size, count,
               static_cast<int64_t>(alloca.allocatedType()->sizeInBytes(
                   pointerSize_)));
    emitDynAlloca(dst, size);
}

} // namespace llva
