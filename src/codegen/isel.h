/**
 * @file
 * Shared instruction-selection skeleton. A target subclasses
 * ISelBase, implements the small emit-helper vocabulary (moves,
 * adds, loads, ...) in terms of its own opcodes, plus the
 * target-flavored lowerings (calls, branches, binaries). The base
 * class owns the traversal, value→vreg mapping, phi pseudo emission,
 * getelementptr address arithmetic, and alloca lowering — the parts
 * that are the same for every I-ISA.
 */

#ifndef LLVA_CODEGEN_ISEL_H
#define LLVA_CODEGEN_ISEL_H

#include <map>

#include "codegen/machine.h"
#include "codegen/target.h"
#include "ir/instructions.h"

namespace llva {

class ISelBase
{
  public:
    virtual ~ISelBase() = default;

    /** Translate \p f into \p mf. */
    void runOn(const Function &f, MachineFunction &mf);

  protected:
    // --- State ----------------------------------------------------------

    MachineFunction *mf_ = nullptr;
    const Function *f_ = nullptr;
    MachineBasicBlock *cur_ = nullptr;
    std::map<const Value *, unsigned> vregs_;
    std::map<const BasicBlock *, MachineBasicBlock *> blockMap_;
    /** Block that carries phi copies for edges leaving an IR block
     *  through the given (pred, succ) pair — differs from
     *  blockMap_[pred] for invoke edges. */
    std::map<std::pair<const BasicBlock *, const BasicBlock *>,
             MachineBasicBlock *>
        edgeBlock_;
    std::map<const AllocaInst *, int> staticAllocas_;

    unsigned pointerSize_ = 8;

    // --- Shared utilities -------------------------------------------------

    static RegClass
    classOf(const Type *t)
    {
        return t->isFloatingPoint() ? RegClass::FP : RegClass::Int;
    }

    static bool
    isFP32(const Type *t)
    {
        return t->kind() == TypeKind::Float;
    }

    /** The vreg that holds \p v's value (creating it for defs). */
    unsigned vregFor(const Value *v);

    /** A vreg holding \p v, materializing constants as needed. */
    unsigned valueReg(const Value *v);

    /** Operand for a phi incoming value (constants stay inline). */
    MOperand phiOperand(const Value *v);

    MachineInstr *
    emit(uint16_t opcode, std::vector<MOperand> ops, unsigned defs = 0)
    {
        return cur_->append(opcode, std::move(ops), defs);
    }

    // --- Target emit-helper vocabulary ------------------------------------

    /** dst <- src (register move). */
    virtual void emitMove(unsigned dst, unsigned src, bool fp,
                          bool fp32) = 0;
    /** dst <- immediate / global address / function address. */
    virtual void emitMaterialize(unsigned dst, const MOperand &value,
                                 bool fp, bool fp32) = 0;
    /** dst <- a + b (integer registers). */
    virtual void emitAdd(unsigned dst, unsigned a, unsigned b) = 0;
    /** dst <- a + imm. */
    virtual void emitAddImm(unsigned dst, unsigned a, int64_t imm) = 0;
    /** dst <- a * imm (pointer scaling). */
    virtual void emitMulImm(unsigned dst, unsigned a, int64_t imm) = 0;
    /** dst <- fresh storage of sizeReg bytes (dynamic alloca). */
    virtual void emitDynAlloca(unsigned dst, unsigned size_reg) = 0;

    // --- Target lowerings ---------------------------------------------------

    /** Copy incoming arguments into their vregs (entry block). */
    virtual void lowerArgs() = 0;

    virtual void lowerBinary(const BinaryOperator &inst) = 0;
    virtual void lowerCompare(const SetCondInst &inst) = 0;
    virtual void lowerRet(const ReturnInst &inst) = 0;
    virtual void lowerBr(const BranchInst &inst) = 0;
    virtual void lowerMBr(const MBrInst &inst) = 0;
    virtual void lowerLoad(const LoadInst &inst) = 0;
    virtual void lowerStore(const StoreInst &inst) = 0;
    virtual void lowerCast(const CastInst &inst) = 0;
    virtual void lowerCall(const CallInst &inst) = 0;
    virtual void lowerInvoke(const InvokeInst &inst) = 0;
    virtual void lowerUnwind(const UnwindInst &inst) = 0;

    // --- Shared lowerings (implemented here) --------------------------------

    void lowerGEP(const GetElementPtrInst &inst);
    void lowerAlloca(const AllocaInst &inst);
    void lowerPhi(const PhiNode &inst);

    /** MBB that phi copies for edge (pred -> succ) belong in. */
    MachineBasicBlock *edgeBlockFor(const BasicBlock *pred,
                                    const BasicBlock *succ);

  private:
    void dispatch(const Instruction &inst);
};

} // namespace llva

#endif // LLVA_CODEGEN_ISEL_H
