/**
 * @file
 * Target-independent machine IR: the output of instruction selection
 * and the input to register allocation, encoding, and the I-ISA
 * simulators. Each target defines its own opcode space; the
 * structures here are shared.
 */

#ifndef LLVA_CODEGEN_MACHINE_H
#define LLVA_CODEGEN_MACHINE_H

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "ir/module.h"
#include "support/hashing.h"

namespace llva {

/** Register class of a virtual or physical register. */
enum class RegClass : uint8_t {
    Int, ///< integers, booleans, pointers
    FP,  ///< float and double
};

/** Virtual register numbers start here; below are physical. */
constexpr unsigned kFirstVirtualReg = 1024;

inline bool
isVirtualReg(unsigned reg)
{
    return reg >= kFirstVirtualReg;
}

class MachineBasicBlock;
struct MachineInstr;
struct SimState;

/**
 * Resolved execution semantics of one machine instruction: the
 * direct-threaded dispatch handler. The simulator caches the
 * target's handler on the instruction the first time it executes,
 * so steady-state dispatch is one indirect call — no virtual
 * dispatch, no opcode switch.
 */
using ExecFn = void (*)(const MachineInstr &, SimState &);

/** One operand of a machine instruction. */
struct MOperand
{
    enum Kind : uint8_t {
        Reg,    ///< register (virtual or physical)
        Imm,    ///< integer immediate
        FPImm,  ///< floating-point immediate
        Frame,  ///< frame object index (resolved to sp/fp offset)
        Block,  ///< branch target
        Global, ///< address of a global variable
        Func,   ///< address of a function
    };

    Kind kind = Imm;
    unsigned reg = 0;
    int64_t imm = 0;
    double fpimm = 0.0;
    int frameIndex = -1;
    MachineBasicBlock *block = nullptr;
    const GlobalVariable *global = nullptr;
    const Function *func = nullptr;

    static MOperand
    makeReg(unsigned r)
    {
        MOperand op;
        op.kind = Reg;
        op.reg = r;
        return op;
    }

    static MOperand
    makeImm(int64_t v)
    {
        MOperand op;
        op.kind = Imm;
        op.imm = v;
        return op;
    }

    static MOperand
    makeFPImm(double v)
    {
        MOperand op;
        op.kind = FPImm;
        op.fpimm = v;
        return op;
    }

    static MOperand
    makeFrame(int index)
    {
        MOperand op;
        op.kind = Frame;
        op.frameIndex = index;
        return op;
    }

    static MOperand
    makeBlock(MachineBasicBlock *bb)
    {
        MOperand op;
        op.kind = Block;
        op.block = bb;
        return op;
    }

    static MOperand
    makeGlobal(const GlobalVariable *g)
    {
        MOperand op;
        op.kind = Global;
        op.global = g;
        return op;
    }

    static MOperand
    makeFunc(const Function *f)
    {
        MOperand op;
        op.kind = Func;
        op.func = f;
        return op;
    }
};

/**
 * A machine instruction: target opcode plus operands. By convention
 * the first \ref numDefs operands are register definitions.
 */
struct MachineInstr
{
    uint16_t opcode = 0;
    uint8_t numDefs = 0;
    /** Deliver traps from this instruction (ExceptionsEnabled). */
    bool trapEnabled = false;
    /** Transfers to another function (clobbers caller-saved regs). */
    bool isCall = false;
    /** Returns from the function. */
    bool isRet = false;
    /** Byte width of the memory access / operation, when relevant. */
    uint8_t width = 8;
    /** Sign-extend (vs zero-extend) for loads, narrows, division. */
    bool signExt = false;
    /** FP operations: true for float (4-byte), false for double. */
    bool fp32 = false;
    std::vector<MOperand> ops;
    /** Lazily resolved dispatch handler (owned by the executing
     *  target; never serialized). Atomic because concurrent
     *  simulators may resolve the same instruction: handlerFor()
     *  is deterministic per opcode, so racing stores write the
     *  same value and relaxed ordering suffices. */
    mutable std::atomic<ExecFn> exec{nullptr};

    MachineInstr(uint16_t opc, std::vector<MOperand> operands,
                 unsigned defs = 0)
        : opcode(opc), numDefs(static_cast<uint8_t>(defs)),
          ops(std::move(operands))
    {}
};

class MachineFunction;

/** A machine basic block: straight-line MIs plus successor edges. */
class MachineBasicBlock
{
  public:
    MachineBasicBlock(MachineFunction *parent, std::string name,
                      unsigned index)
        : parent_(parent), name_(std::move(name)), index_(index),
          nameHash_(fnv1a(name_))
    {}

    MachineFunction *parent() const { return parent_; }
    const std::string &name() const { return name_; }
    unsigned index() const { return index_; }

    /** fnv1a of the block name, computed once at creation — the
     *  BlockId::block component, so profiling never rehashes the
     *  name on a block entry. */
    uint64_t nameHash() const { return nameHash_; }

    std::vector<std::unique_ptr<MachineInstr>> &instrs()
    {
        return instrs_;
    }
    const std::vector<std::unique_ptr<MachineInstr>> &instrs() const
    {
        return instrs_;
    }

    MachineInstr *
    append(uint16_t opcode, std::vector<MOperand> ops,
           unsigned defs = 0)
    {
        instrs_.push_back(std::make_unique<MachineInstr>(
            opcode, std::move(ops), defs));
        return instrs_.back().get();
    }

    std::vector<MachineBasicBlock *> &successors() { return succs_; }
    const std::vector<MachineBasicBlock *> &successors() const
    {
        return succs_;
    }

  private:
    MachineFunction *parent_;
    std::string name_;
    unsigned index_;
    uint64_t nameHash_;
    std::vector<std::unique_ptr<MachineInstr>> instrs_;
    std::vector<MachineBasicBlock *> succs_;
};

/** A stack frame object (spill slot, alloca, outgoing arg area). */
struct FrameObject
{
    uint64_t size = 8;
    uint64_t align = 8;
    int64_t offset = 0; ///< assigned during frame finalization
};

/** Per-virtual-register bookkeeping. */
struct VRegInfo
{
    RegClass regClass = RegClass::Int;
    bool fp32 = false; ///< FP class: float rather than double
};

class MachineFunction
{
  public:
    MachineFunction(const Function *source, std::string target_name)
        : source_(source), targetName_(std::move(target_name)),
          nameHash_(fnv1a(source_->name()))
    {}

    const Function *source() const { return source_; }
    const std::string &name() const { return source_->name(); }
    const std::string &targetName() const { return targetName_; }

    /** fnv1a of the source function's name, computed once at
     *  translation time — the BlockId::fn component. */
    uint64_t nameHash() const { return nameHash_; }

    MachineBasicBlock *
    createBlock(const std::string &name)
    {
        blocks_.push_back(std::make_unique<MachineBasicBlock>(
            this, name, static_cast<unsigned>(blocks_.size())));
        return blocks_.back().get();
    }

    const std::vector<std::unique_ptr<MachineBasicBlock>> &blocks()
        const
    {
        return blocks_;
    }
    std::vector<std::unique_ptr<MachineBasicBlock>> &blocks()
    {
        return blocks_;
    }

    unsigned
    createVReg(RegClass rc, bool fp32 = false)
    {
        vregs_.push_back({rc, fp32});
        return kFirstVirtualReg +
               static_cast<unsigned>(vregs_.size()) - 1;
    }

    const VRegInfo &
    vregInfo(unsigned reg) const
    {
        LLVA_ASSERT(isVirtualReg(reg), "not a virtual register");
        return vregs_[reg - kFirstVirtualReg];
    }

    size_t numVRegs() const { return vregs_.size(); }

    int
    createFrameObject(uint64_t size, uint64_t align)
    {
        frame_.push_back({size, align, 0});
        return static_cast<int>(frame_.size()) - 1;
    }

    std::vector<FrameObject> &frame() { return frame_; }
    const std::vector<FrameObject> &frame() const { return frame_; }

    /** Total frame size after finalization. */
    uint64_t frameSize() const { return frameSize_; }
    void setFrameSize(uint64_t s) { frameSize_ = s; }

    /**
     * Bytes reserved at sp+0 for outgoing call arguments (the
     * stack-based part of the calling convention).
     */
    uint64_t outgoingArgsSize() const { return outgoingArgs_; }

    void
    noteOutgoingArgs(uint64_t bytes)
    {
        if (bytes > outgoingArgs_)
            outgoingArgs_ = bytes;
    }

    size_t
    instructionCount() const
    {
        size_t n = 0;
        for (const auto &bb : blocks_)
            n += bb->instrs().size();
        return n;
    }

  private:
    const Function *source_;
    std::string targetName_;
    uint64_t nameHash_;
    std::vector<std::unique_ptr<MachineBasicBlock>> blocks_;
    std::vector<VRegInfo> vregs_;
    std::vector<FrameObject> frame_;
    uint64_t frameSize_ = 0;
    uint64_t outgoingArgs_ = 0;
};

} // namespace llva

#endif // LLVA_CODEGEN_MACHINE_H
