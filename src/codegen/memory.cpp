#include "codegen/memory.h"

#include <algorithm>
#include <cstring>

#include "ir/instructions.h"

namespace llva {

const char *
trapKindName(TrapKind k)
{
    switch (k) {
      case TrapKind::None: return "none";
      case TrapKind::NullAccess: return "null access";
      case TrapKind::OutOfBounds: return "out of bounds";
      case TrapKind::Misaligned: return "misaligned access";
      case TrapKind::DivByZero: return "division by zero";
      case TrapKind::StackOverflow: return "stack overflow";
      case TrapKind::OutOfMemory: return "out of memory";
      case TrapKind::BadIndirectCall: return "bad indirect call";
      case TrapKind::PrivilegeViolation: return "privilege violation";
    }
    return "unknown";
}

Memory::Memory(uint64_t size)
    : bytes_(size, 0), size_(size)
{
    globalBrk_ = kCodeBase + kCodeSize;
    // Reserve the top 1/4 for stacks.
    stackLimit_ = size_ - size_ / 4;
}

bool
Memory::load(uint64_t addr, unsigned width, uint64_t &out)
{
    if (!check(addr, width))
        return false;
    uint64_t v = 0;
    std::memcpy(&v, bytes_.data() + addr, width);
    out = v;
    return true;
}

bool
Memory::store(uint64_t addr, unsigned width, uint64_t value)
{
    if (!check(addr, width))
        return false;
    std::memcpy(bytes_.data() + addr, &value, width);
    return true;
}

bool
Memory::loadFP(uint64_t addr, bool fp32, double &out)
{
    if (!check(addr, fp32 ? 4 : 8))
        return false;
    if (fp32) {
        float f;
        std::memcpy(&f, bytes_.data() + addr, 4);
        out = f;
    } else {
        std::memcpy(&out, bytes_.data() + addr, 8);
    }
    return true;
}

bool
Memory::storeFP(uint64_t addr, bool fp32, double value)
{
    if (!check(addr, fp32 ? 4 : 8))
        return false;
    if (fp32) {
        float f = static_cast<float>(value);
        std::memcpy(bytes_.data() + addr, &f, 4);
    } else {
        std::memcpy(bytes_.data() + addr, &value, 8);
    }
    return true;
}

void
Memory::writeRaw(uint64_t addr, const void *data, uint64_t n)
{
    LLVA_ASSERT(addr + n <= size_, "writeRaw out of range");
    std::memcpy(bytes_.data() + addr, data, n);
}

std::string
Memory::readCString(uint64_t addr, uint64_t max)
{
    std::string s;
    while (addr < size_ && s.size() < max) {
        char c = static_cast<char>(bytes_[addr++]);
        if (!c)
            break;
        s += c;
    }
    return s;
}

uint64_t
Memory::allocateGlobal(uint64_t size, uint64_t align)
{
    if (align == 0)
        align = 1;
    globalBrk_ = (globalBrk_ + align - 1) / align * align;
    uint64_t addr = globalBrk_;
    globalBrk_ += size ? size : 1;
    heapBase_ = heapBrk_ =
        (globalBrk_ + 4095) / 4096 * 4096; // heap follows globals
    return addr;
}

uint64_t
Memory::malloc(uint64_t size)
{
    if (size == 0)
        size = 1;
    size = (size + 15) / 16 * 16;

    // First fit over the free list.
    for (auto &[addr, blk] : heapBlocks_) {
        if (blk.free && blk.size >= size) {
            blk.free = false;
            heapAllocated_ += size;
            return addr;
        }
    }
    if (heapBase_ == 0)
        heapBase_ = heapBrk_ = kCodeBase + kCodeSize;
    uint64_t addr = heapBrk_;
    if (addr + size > stackLimit_) {
        trap_ = TrapKind::OutOfMemory;
        return 0;
    }
    heapBrk_ += size;
    heapBlocks_[addr] = {size, false};
    heapAllocated_ += size;
    return addr;
}

void
Memory::free(uint64_t addr)
{
    if (addr == 0)
        return;
    auto it = heapBlocks_.find(addr);
    if (it != heapBlocks_.end())
        it->second.free = true;
}

uint64_t
Memory::functionAddress(const Function *f)
{
    auto it = funcAddrs_.find(f);
    if (it != funcAddrs_.end())
        return it->second;
    uint64_t addr = kCodeBase + 16 * (funcAddrs_.size() + 1);
    LLVA_ASSERT(addr < kCodeBase + kCodeSize, "code region exhausted");
    funcAddrs_[f] = addr;
    addrFuncs_[addr] = f;
    return addr;
}

const Function *
Memory::functionAt(uint64_t addr) const
{
    auto it = addrFuncs_.find(addr);
    return it == addrFuncs_.end() ? nullptr : it->second;
}

void
Memory::serialize(ByteWriter &w) const
{
    constexpr uint64_t kPage = 4096;
    w.writeU64(size_);
    // Sparse image: only pages with live data. Typical checkpoints
    // touch a few hundred KiB of a 64 MiB space.
    uint64_t pages = 0;
    for (uint64_t p = 0; p < size_; p += kPage) {
        uint64_t n = std::min(kPage, size_ - p);
        bool zero = true;
        for (uint64_t i = 0; i < n && zero; ++i)
            zero = bytes_[p + i] == 0;
        if (!zero)
            ++pages;
    }
    w.writeVaruint(pages);
    for (uint64_t p = 0; p < size_; p += kPage) {
        uint64_t n = std::min(kPage, size_ - p);
        bool zero = true;
        for (uint64_t i = 0; i < n && zero; ++i)
            zero = bytes_[p + i] == 0;
        if (zero)
            continue;
        w.writeU64(p);
        w.writeVaruint(n);
        for (uint64_t i = 0; i < n; ++i)
            w.writeByte(bytes_[p + i]);
    }
    w.writeU64(globalBrk_);
    w.writeU64(heapBase_);
    w.writeU64(heapBrk_);
    w.writeU64(stackLimit_);
    w.writeU64(heapAllocated_);
    w.writeVaruint(heapBlocks_.size());
    for (const auto &[addr, blk] : heapBlocks_) {
        w.writeU64(addr);
        w.writeU64(blk.size);
        w.writeByte(blk.free ? 1 : 0);
    }
    // Function "addresses" by name: the restoring process assigns
    // its own Function pointers but must reproduce the exact same
    // numeric addresses (they are stored as data in the image).
    w.writeVaruint(funcAddrs_.size());
    for (const auto &[f, addr] : funcAddrs_) {
        w.writeString(f->name());
        w.writeU64(addr);
    }
}

bool
Memory::restore(ByteReader &r, const Module &m)
{
    uint64_t size = r.readU64();
    if (size != size_)
        return false;
    std::fill(bytes_.begin(), bytes_.end(), 0);
    uint64_t pages = r.readVaruint();
    for (uint64_t i = 0; i < pages; ++i) {
        uint64_t p = r.readU64();
        uint64_t n = r.readVaruint();
        if (p + n > size_)
            return false;
        for (uint64_t b = 0; b < n; ++b)
            bytes_[p + b] = r.readByte();
    }
    globalBrk_ = r.readU64();
    heapBase_ = r.readU64();
    heapBrk_ = r.readU64();
    stackLimit_ = r.readU64();
    heapAllocated_ = r.readU64();
    heapBlocks_.clear();
    uint64_t nBlocks = r.readVaruint();
    for (uint64_t i = 0; i < nBlocks; ++i) {
        uint64_t addr = r.readU64();
        HeapBlock blk;
        blk.size = r.readU64();
        blk.free = r.readByte() != 0;
        heapBlocks_[addr] = blk;
    }
    funcAddrs_.clear();
    addrFuncs_.clear();
    uint64_t nFuncs = r.readVaruint();
    for (uint64_t i = 0; i < nFuncs; ++i) {
        std::string name = r.readString();
        uint64_t addr = r.readU64();
        const Function *f = m.getFunction(name);
        if (!f)
            return false;
        funcAddrs_[f] = addr;
        addrFuncs_[addr] = f;
    }
    // functionAddress() hands out kCodeBase + 16*(n+1): restoring N
    // entries keeps future assignments past every restored address
    // only if the checkpointing process assigned them the same way —
    // which it did, so the next fresh address is collision-free.
    trap_ = TrapKind::None;
    return true;
}

namespace {

/** Write one constant into the image at \p addr. */
void
writeConstant(Memory &mem, const Module &m,
              const std::map<const GlobalVariable *, uint64_t> &addrs,
              const Constant *c, uint64_t addr)
{
    unsigned ps = m.pointerSize();
    Type *t = c->type();
    if (auto *ci = dyn_cast<ConstantInt>(c)) {
        mem.store(addr, static_cast<unsigned>(t->sizeInBytes(ps)),
                  ci->zext());
    } else if (auto *cf = dyn_cast<ConstantFP>(c)) {
        mem.storeFP(addr, t->kind() == TypeKind::Float, cf->value());
    } else if (isa<ConstantNull>(c) || isa<ConstantUndef>(c)) {
        // Image is zero-initialized.
    } else if (auto *cs = dyn_cast<ConstantString>(c)) {
        mem.writeRaw(addr, cs->data().data(), cs->data().size());
    } else if (auto *ca = dyn_cast<ConstantAggregate>(c)) {
        if (auto *at = dyn_cast<ArrayType>(t)) {
            uint64_t esz = at->element()->sizeInBytes(ps);
            for (size_t i = 0; i < ca->numElements(); ++i)
                writeConstant(mem, m, addrs, ca->element(i),
                              addr + i * esz);
        } else {
            auto *st = cast<StructType>(t);
            for (size_t i = 0; i < ca->numElements(); ++i)
                writeConstant(mem, m, addrs, ca->element(i),
                              addr + st->fieldOffset(i, ps));
        }
    } else if (auto *gv = dyn_cast<GlobalVariable>(c)) {
        mem.store(addr, ps, addrs.at(gv));
    } else if (auto *f = dyn_cast<Function>(c)) {
        mem.store(addr, ps, mem.functionAddress(f));
    } else {
        panic("unwritable constant in global image");
    }
}

} // namespace

std::map<const GlobalVariable *, uint64_t>
layoutGlobals(const Module &m, Memory &mem)
{
    std::map<const GlobalVariable *, uint64_t> addrs;
    unsigned ps = m.pointerSize();
    for (const auto &gv : m.globals()) {
        Type *t = gv->containedType();
        addrs[gv.get()] =
            mem.allocateGlobal(t->sizeInBytes(ps), t->alignment(ps));
    }
    for (const auto &gv : m.globals())
        if (gv->initializer())
            writeConstant(mem, m, addrs, gv->initializer(),
                          addrs[gv.get()]);
    return addrs;
}

} // namespace llva
