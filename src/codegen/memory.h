/**
 * @file
 * The simulated physical memory of the I-ISA machine: one flat
 * little-endian address space shared by the LLVA interpreter and the
 * machine-code simulators, so results are directly comparable across
 * execution engines.
 *
 * Layout: a null guard page, a code stub region (function
 * "addresses" for indirect calls), the global data image, the heap,
 * and a downward-growing stack at the top.
 */

#ifndef LLVA_CODEGEN_MEMORY_H
#define LLVA_CODEGEN_MEMORY_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "ir/module.h"
#include "support/byte_io.h"

namespace llva {

/** Kinds of runtime traps (paper Section 3.3 exception conditions). */
enum class TrapKind : uint8_t {
    None,
    NullAccess,
    OutOfBounds,
    Misaligned,
    DivByZero,
    StackOverflow,
    OutOfMemory,
    BadIndirectCall,
    PrivilegeViolation,
};

const char *trapKindName(TrapKind k);

class Memory
{
  public:
    explicit Memory(uint64_t size = 64ull << 20);

    uint64_t size() const { return size_; }

    // --- Checked access (sets trap on failure) -------------------------

    bool load(uint64_t addr, unsigned width, uint64_t &out);
    bool store(uint64_t addr, unsigned width, uint64_t value);
    bool loadFP(uint64_t addr, bool fp32, double &out);
    bool storeFP(uint64_t addr, bool fp32, double value);

    TrapKind lastTrap() const { return trap_; }
    void clearTrap() { trap_ = TrapKind::None; }

    // --- Unchecked raw access (for loaders/runtime) ---------------------

    uint8_t *raw() { return bytes_.data(); }
    void writeRaw(uint64_t addr, const void *data, uint64_t n);
    std::string readCString(uint64_t addr, uint64_t max = 1 << 20);

    // --- Allocation ------------------------------------------------------

    /** Bump-allocate in the global data region (image layout). */
    uint64_t allocateGlobal(uint64_t size, uint64_t align);

    /** Heap allocation with a first-fit free list. */
    uint64_t malloc(uint64_t size);
    void free(uint64_t addr);

    /** Top-of-stack address (stacks grow downward from here). */
    uint64_t stackTop() const { return size_; }
    uint64_t stackLimit() const { return stackLimit_; }

    /** Function "addresses" for indirect calls. */
    uint64_t functionAddress(const Function *f);
    const Function *functionAt(uint64_t addr) const;

    /** Total bytes handed out by malloc (statistics). */
    uint64_t heapBytesAllocated() const { return heapAllocated_; }

    // --- Checkpoint ------------------------------------------------------

    /**
     * Serialize the memory image and allocator state. The byte
     * image is written sparsely (only non-zero 4 KiB pages), and
     * function addresses by function name — heap pointers stored in
     * memory stay valid because the restored image reproduces the
     * exact same address space.
     */
    void serialize(ByteWriter &w) const;

    /** Rebuild from checkpoint bytes; function names are resolved
     *  against \p m. Returns false on a size mismatch or a function
     *  that no longer exists. */
    bool restore(ByteReader &r, const Module &m);

  private:
    bool
    check(uint64_t addr, unsigned width)
    {
        if (addr < kGuardSize) {
            trap_ = TrapKind::NullAccess;
            return false;
        }
        if (addr + width > size_) {
            trap_ = TrapKind::OutOfBounds;
            return false;
        }
        return true;
    }

    static constexpr uint64_t kGuardSize = 4096;
    static constexpr uint64_t kCodeBase = 4096;
    static constexpr uint64_t kCodeSize = 1 << 16;

    std::vector<uint8_t> bytes_;
    uint64_t size_;
    uint64_t globalBrk_;
    uint64_t heapBase_ = 0;
    uint64_t heapBrk_ = 0;
    uint64_t stackLimit_;
    uint64_t heapAllocated_ = 0;
    TrapKind trap_ = TrapKind::None;

    struct HeapBlock
    {
        uint64_t size;
        bool free;
    };
    std::map<uint64_t, HeapBlock> heapBlocks_; // addr -> block

    std::map<const Function *, uint64_t> funcAddrs_;
    std::map<uint64_t, const Function *> addrFuncs_;
};

/**
 * Lay out a module's globals in \p mem and return their addresses.
 * Initializers (including nested aggregates, strings, and pointers
 * to other globals/functions) are written into the image.
 */
std::map<const GlobalVariable *, uint64_t>
layoutGlobals(const Module &m, Memory &mem);

} // namespace llva

#endif // LLVA_CODEGEN_MEMORY_H
