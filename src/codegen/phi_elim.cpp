/**
 * @file
 * Phi elimination: "The translator eliminates the phi-nodes by
 * introducing copy operations into predecessor basic blocks. These
 * copies are usually eliminated during register allocation." (paper
 * Section 3.1.)
 *
 * The conservative two-copy scheme is used: each phi gets a fresh
 * temporary written at the end of every predecessor and read once at
 * the phi's position. Fresh temporaries make the parallel-copy
 * semantics of simultaneous phis trivially correct (no lost-copy or
 * swap problems); the register allocator's coalescing removes most of
 * them, which ablation A5 measures.
 */

#include "codegen/codegen.h"

namespace llva {

void
eliminatePhis(MachineFunction &mf, CodeGenStats *stats)
{
    for (auto &mbb : mf.blocks()) {
        auto &instrs = mbb->instrs();
        size_t phi_count = 0;
        for (auto &mi : instrs) {
            if (mi->opcode != kOpPhi)
                break;
            ++phi_count;
        }
        if (phi_count == 0)
            continue;

        for (size_t p = 0; p < phi_count; ++p) {
            MachineInstr *phi = instrs[p].get();
            unsigned dest = phi->ops[0].reg;
            const VRegInfo &info = mf.vregInfo(dest);
            unsigned tmp = mf.createVReg(info.regClass, info.fp32);

            // Insert tmp <- incoming before each predecessor's
            // terminator.
            for (size_t i = 1; i + 1 < phi->ops.size(); i += 2) {
                MOperand val = phi->ops[i];
                MachineBasicBlock *pred = phi->ops[i + 1].block;

                // The terminator group is every trailing instruction
                // with a Block operand (conditional chains emit
                // several); copies go before the first of them.
                auto &pinstrs = pred->instrs();
                size_t insert_at = pinstrs.size();
                while (insert_at > 0) {
                    const MachineInstr &cand = *pinstrs[insert_at - 1];
                    bool is_term = false;
                    for (const MOperand &op : cand.ops)
                        if (op.kind == MOperand::Block)
                            is_term = true;
                    if (!is_term)
                        break;
                    --insert_at;
                }
                auto copy = std::make_unique<MachineInstr>(
                    kOpCopy,
                    std::vector<MOperand>{MOperand::makeReg(tmp), val},
                    1);
                copy->fp32 = info.fp32;
                pinstrs.insert(pinstrs.begin() +
                                   static_cast<ptrdiff_t>(insert_at),
                               std::move(copy));
                if (stats)
                    ++stats->phiCopiesInserted;
            }

            // Replace the phi with dest <- tmp at its position.
            auto copy = std::make_unique<MachineInstr>(
                kOpCopy,
                std::vector<MOperand>{MOperand::makeReg(dest),
                                      MOperand::makeReg(tmp)},
                1);
            copy->fp32 = info.fp32;
            instrs[p] = std::move(copy);
            if (stats)
                ++stats->phiCopiesInserted;
        }
    }
}

} // namespace llva
