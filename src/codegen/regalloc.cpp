/**
 * @file
 * Register allocation.
 *
 * Two allocators model the paper's two back-ends (Section 5.2):
 *
 *  - Local: block-local greedy binding with everything spilled to the
 *    stack between blocks. This mirrors the paper's X86 JIT, which
 *    "performs virtually no optimization and very simple register
 *    allocation resulting in significant spill code".
 *  - LinearScan: global linear scan over live intervals with copy
 *    hints (cheap coalescing), modeling the higher-quality SPARC
 *    back-end.
 */

#include <algorithm>
#include <map>
#include <set>

#include "codegen/codegen.h"

namespace llva {

namespace {

bool
isBranchy(const MachineInstr &mi)
{
    for (const MOperand &op : mi.ops)
        if (op.kind == MOperand::Block)
            return true;
    return mi.isRet;
}

/** Shared helper: lazily created spill slot per vreg. */
class SpillSlots
{
  public:
    explicit SpillSlots(MachineFunction &mf)
        : mf_(mf)
    {}

    int
    slotOf(unsigned vreg)
    {
        auto it = slots_.find(vreg);
        if (it != slots_.end())
            return it->second;
        int idx = mf_.createFrameObject(8, 8);
        slots_[vreg] = idx;
        return idx;
    }

  private:
    MachineFunction &mf_;
    std::map<unsigned, int> slots_;
};

std::unique_ptr<MachineInstr>
makeSpill(unsigned phys, int slot, bool fp, bool fp32)
{
    auto mi = std::make_unique<MachineInstr>(
        kOpSpill,
        std::vector<MOperand>{MOperand::makeReg(phys),
                              MOperand::makeFrame(slot)},
        0);
    mi->width = 8;
    mi->fp32 = fp32;
    (void)fp;
    return mi;
}

std::unique_ptr<MachineInstr>
makeReload(unsigned phys, int slot, bool fp, bool fp32)
{
    auto mi = std::make_unique<MachineInstr>(
        kOpReload,
        std::vector<MOperand>{MOperand::makeReg(phys),
                              MOperand::makeFrame(slot)},
        1);
    mi->width = 8;
    mi->fp32 = fp32;
    (void)fp;
    return mi;
}

// --- Local allocator -------------------------------------------------------

class LocalAllocator
{
  public:
    LocalAllocator(MachineFunction &mf, Target &target,
                   CodeGenStats *stats)
        : mf_(mf), target_(target), stats_(stats), slots_(mf)
    {}

    void
    run()
    {
        for (auto &mbb : mf_.blocks())
            runOnBlock(*mbb);
    }

  private:
    struct Binding
    {
        unsigned vreg = 0;
        bool dirty = false;
    };

    MachineFunction &mf_;
    Target &target_;
    CodeGenStats *stats_;
    SpillSlots slots_;

    // Per-block state.
    std::map<unsigned, Binding> physState_; // phys -> binding
    std::map<unsigned, unsigned> vregLoc_;  // vreg -> phys
    std::set<unsigned> reservedPhys_;
    std::vector<std::unique_ptr<MachineInstr>> *instrs_ = nullptr;
    size_t cursor_ = 0; // insertion point (index of current MI)

    RegClass
    classOf(unsigned vreg) const
    {
        return mf_.vregInfo(vreg).regClass;
    }

    void
    insertBeforeCursor(std::unique_ptr<MachineInstr> mi)
    {
        instrs_->insert(instrs_->begin() +
                            static_cast<ptrdiff_t>(cursor_),
                        std::move(mi));
        ++cursor_;
    }

    void
    spillPhys(unsigned phys)
    {
        auto it = physState_.find(phys);
        if (it == physState_.end())
            return;
        Binding b = it->second;
        if (b.dirty) {
            const VRegInfo &info = mf_.vregInfo(b.vreg);
            insertBeforeCursor(makeSpill(
                phys, slots_.slotOf(b.vreg),
                info.regClass == RegClass::FP, info.fp32));
            if (stats_)
                ++stats_->spillsInserted;
        }
        vregLoc_.erase(b.vreg);
        physState_.erase(it);
    }

    unsigned
    allocPhys(RegClass rc, const std::set<unsigned> &avoid)
    {
        const auto &pool = target_.allocatable(rc);
        // Free register first.
        for (unsigned phys : pool)
            if (!physState_.count(phys) && !reservedPhys_.count(phys) &&
                !avoid.count(phys))
                return phys;
        // Evict (farthest binding — heuristics don't matter much for
        // a block-local allocator; pick the first evictable).
        for (unsigned phys : pool) {
            if (reservedPhys_.count(phys) || avoid.count(phys))
                continue;
            spillPhys(phys);
            return phys;
        }
        panic("register allocation: no evictable register");
    }

    unsigned
    ensureLoaded(unsigned vreg, const std::set<unsigned> &avoid)
    {
        auto it = vregLoc_.find(vreg);
        if (it != vregLoc_.end())
            return it->second;
        const VRegInfo &info = mf_.vregInfo(vreg);
        unsigned phys = allocPhys(info.regClass, avoid);
        insertBeforeCursor(makeReload(
            phys, slots_.slotOf(vreg),
            info.regClass == RegClass::FP, info.fp32));
        if (stats_)
            ++stats_->reloadsInserted;
        physState_[phys] = {vreg, false};
        vregLoc_[vreg] = phys;
        return phys;
    }

    void
    flushAll(bool unbind)
    {
        // Deterministic order for reproducible code.
        std::vector<unsigned> physregs;
        for (auto &[phys, b] : physState_)
            physregs.push_back(phys);
        for (unsigned phys : physregs)
            spillPhys(phys);
        if (unbind) {
            physState_.clear();
            vregLoc_.clear();
        }
    }

    void
    runOnBlock(MachineBasicBlock &mbb)
    {
        physState_.clear();
        vregLoc_.clear();
        reservedPhys_.clear();
        instrs_ = &mbb.instrs();

        bool flushed = false;
        for (cursor_ = 0; cursor_ < instrs_->size(); ++cursor_) {
            MachineInstr &mi = *(*instrs_)[cursor_];
            // Everything must live in stack slots across blocks:
            // flush once, when the first control-transfer is reached.
            // (Spill/reload moves do not disturb the condition codes,
            // so flushing between a compare and its branch is safe.)
            if (!flushed && isBranchy(mi)) {
                flushAll(true);
                flushed = true;
            }

            if (mi.isCall) {
                // Everything allocatable is caller-saved for the
                // local allocator: flush and unbind.
                flushAll(true);
                reservedPhys_.clear();
            }

            // Uses: operands [numDefs..).
            std::set<unsigned> avoid;
            for (const MOperand &op : mi.ops)
                if (op.kind == MOperand::Reg &&
                    !isVirtualReg(op.reg))
                    avoid.insert(op.reg);
            for (size_t i = mi.numDefs; i < mi.ops.size(); ++i) {
                MOperand &op = mi.ops[i];
                if (op.kind != MOperand::Reg ||
                    !isVirtualReg(op.reg))
                    continue;
                op.reg = ensureLoaded(op.reg, avoid);
                avoid.insert(op.reg);
            }
            // Defs.
            for (size_t i = 0; i < mi.numDefs; ++i) {
                MOperand &op = mi.ops[i];
                if (op.kind != MOperand::Reg)
                    continue;
                if (!isVirtualReg(op.reg)) {
                    // Explicit physical def: evict any occupant.
                    spillPhys(op.reg);
                    reservedPhys_.insert(op.reg);
                    continue;
                }
                unsigned vreg = op.reg;
                auto loc = vregLoc_.find(vreg);
                unsigned phys;
                if (loc != vregLoc_.end()) {
                    phys = loc->second;
                } else {
                    phys = allocPhys(classOf(vreg), avoid);
                    physState_[phys] = {vreg, false};
                    vregLoc_[vreg] = phys;
                }
                physState_[phys].dirty = true;
                op.reg = phys;
                avoid.insert(phys);
            }
        }
        if (!flushed)
            flushAll(true);
        instrs_ = nullptr;
    }
};

// --- Linear scan ------------------------------------------------------------

struct Interval
{
    unsigned vreg = 0;
    int start = 0;
    int end = 0;
    bool crossesCall = false;
    unsigned assigned = 0;
    /** Whether \c assigned holds a register. Register numbers start
     *  at 0 (x86 %rax is register 0), so the number alone cannot
     *  double as a validity flag. */
    bool hasReg = false;
    bool spilled = false;
};

class LinearScanAllocator
{
  public:
    LinearScanAllocator(MachineFunction &mf, Target &target,
                        bool coalesce, CodeGenStats *stats)
        : mf_(mf), target_(target), coalesce_(coalesce),
          stats_(stats), slots_(mf)
    {}

    void
    run()
    {
        numberInstructions();
        computeLiveness();
        buildIntervals();
        allocate();
        rewrite();
    }

  private:
    MachineFunction &mf_;
    Target &target_;
    bool coalesce_;
    CodeGenStats *stats_;
    SpillSlots slots_;

    // Linearized view.
    std::vector<MachineInstr *> order_;
    std::map<const MachineInstr *, int> index_;
    std::vector<int> callPositions_;

    std::map<unsigned, std::set<unsigned>> liveIn_; // block idx -> vregs
    std::map<unsigned, Interval> intervals_;

    // Scratch registers reserved for spill-code rewriting.
    std::vector<unsigned> scratchInt_, scratchFP_;

    void
    numberInstructions()
    {
        for (auto &mbb : mf_.blocks()) {
            for (auto &mi : mbb->instrs()) {
                index_[mi.get()] = static_cast<int>(order_.size());
                order_.push_back(mi.get());
                if (mi->isCall)
                    callPositions_.push_back(
                        static_cast<int>(order_.size()) - 1);
            }
        }
    }

    static void
    collectUsesDefs(const MachineInstr &mi,
                    std::vector<unsigned> &uses,
                    std::vector<unsigned> &defs)
    {
        for (size_t i = 0; i < mi.ops.size(); ++i) {
            const MOperand &op = mi.ops[i];
            if (op.kind != MOperand::Reg || !isVirtualReg(op.reg))
                continue;
            if (i < mi.numDefs)
                defs.push_back(op.reg);
            else
                uses.push_back(op.reg);
        }
    }

    void
    computeLiveness()
    {
        // Iterative backward dataflow over blocks.
        bool changed = true;
        while (changed) {
            changed = false;
            auto &blocks = mf_.blocks();
            for (auto it = blocks.rbegin(); it != blocks.rend();
                 ++it) {
                MachineBasicBlock *mbb = it->get();
                std::set<unsigned> live;
                for (MachineBasicBlock *succ : mbb->successors()) {
                    const auto &in = liveIn_[succ->index()];
                    live.insert(in.begin(), in.end());
                }
                for (auto mit = mbb->instrs().rbegin();
                     mit != mbb->instrs().rend(); ++mit) {
                    std::vector<unsigned> uses, defs;
                    collectUsesDefs(**mit, uses, defs);
                    for (unsigned d : defs)
                        live.erase(d);
                    for (unsigned u : uses)
                        live.insert(u);
                }
                auto &in = liveIn_[mbb->index()];
                if (live != in) {
                    in = std::move(live);
                    changed = true;
                }
            }
        }
    }

    void
    touch(unsigned vreg, int pos)
    {
        auto [it, fresh] =
            intervals_.try_emplace(vreg, Interval{vreg, pos, pos});
        if (!fresh) {
            it->second.start = std::min(it->second.start, pos);
            it->second.end = std::max(it->second.end, pos);
        }
    }

    void
    buildIntervals()
    {
        for (auto &mbb : mf_.blocks()) {
            if (mbb->instrs().empty())
                continue;
            int bstart = index_[mbb->instrs().front().get()];
            int bend = index_[mbb->instrs().back().get()];
            // Live-in values span the whole block from its start.
            for (unsigned v : liveIn_[mbb->index()])
                touch(v, bstart);
            // Values live out across the block extend to its end.
            for (MachineBasicBlock *succ : mbb->successors())
                for (unsigned v : liveIn_[succ->index()])
                    touch(v, bend);
            for (auto &mi : mbb->instrs()) {
                int pos = index_[mi.get()];
                std::vector<unsigned> uses, defs;
                collectUsesDefs(*mi, uses, defs);
                for (unsigned u : uses)
                    touch(u, pos);
                for (unsigned d : defs)
                    touch(d, pos);
                // Copy hints for coalescing.
                if (coalesce_ && mi->opcode == kOpCopy &&
                    mi->ops.size() == 2 &&
                    mi->ops[1].kind == MOperand::Reg) {
                    // Remember the relationship; resolved at
                    // assignment time.
                    copyPairs_.emplace_back(mi->ops[0].reg,
                                            mi->ops[1].reg);
                }
            }
        }
        for (auto &[vreg, iv] : intervals_) {
            for (int call : callPositions_) {
                if (call > iv.start && call < iv.end) {
                    iv.crossesCall = true;
                    break;
                }
            }
        }
    }

    void
    allocate()
    {
        // Reserve scratch registers (last two of each pool).
        auto reserve = [&](RegClass rc, std::vector<unsigned> &out) {
            const auto &pool = target_.allocatable(rc);
            // Two scratch registers cover the worst case (an
            // instruction with two spilled register uses).
            size_t n = pool.size() >= 3 ? 2 : 1;
            for (size_t i = pool.size() - n; i < pool.size(); ++i)
                out.push_back(pool[i]);
        };
        reserve(RegClass::Int, scratchInt_);
        reserve(RegClass::FP, scratchFP_);

        std::vector<Interval *> list;
        for (auto &[vreg, iv] : intervals_)
            list.push_back(&iv);
        std::sort(list.begin(), list.end(),
                  [](const Interval *a, const Interval *b) {
                      return a->start < b->start ||
                             (a->start == b->start &&
                              a->vreg < b->vreg);
                  });

        std::vector<Interval *> active;
        std::map<unsigned, Interval *> physInUse;

        auto expire = [&](int pos) {
            for (auto it = active.begin(); it != active.end();) {
                if ((*it)->end < pos) {
                    physInUse.erase((*it)->assigned);
                    it = active.erase(it);
                } else {
                    ++it;
                }
            }
        };

        for (Interval *iv : list) {
            expire(iv->start);
            RegClass rc = mf_.vregInfo(iv->vreg).regClass;
            const auto &scratch =
                rc == RegClass::Int ? scratchInt_ : scratchFP_;
            const auto &calleeSaved = target_.calleeSaved(rc);

            auto usable = [&](unsigned phys) {
                if (physInUse.count(phys))
                    return false;
                if (std::find(scratch.begin(), scratch.end(), phys) !=
                    scratch.end())
                    return false;
                if (iv->crossesCall &&
                    std::find(calleeSaved.begin(), calleeSaved.end(),
                              phys) == calleeSaved.end())
                    return false;
                return true;
            };

            unsigned chosen = 0;
            bool found = false;
            // Try the coalescing hint first. Copies to and from
            // convention registers (arguments, return values) hint
            // at physical registers outside the allocatable pool;
            // binding a live range to one of those would let call
            // marshalling code clobber it, so only in-pool hints
            // are honored.
            const auto &pool = target_.allocatable(rc);
            unsigned hint = 0;
            if (coalesce_ && hintFor(iv->vreg, hint) &&
                usable(hint) &&
                std::find(pool.begin(), pool.end(), hint) !=
                    pool.end()) {
                chosen = hint;
                found = true;
            }
            if (!found) {
                for (unsigned phys : pool) {
                    if (usable(phys)) {
                        chosen = phys;
                        found = true;
                        break;
                    }
                }
            }
            if (found) {
                iv->assigned = chosen;
                iv->hasReg = true;
                active.push_back(iv);
                physInUse[chosen] = iv;
            } else {
                // Spill the interval ending last (this one or an
                // active one of the same class).
                Interval *victim = iv;
                for (Interval *a : active)
                    if (mf_.vregInfo(a->vreg).regClass == rc &&
                        a->end > victim->end &&
                        !(iv->crossesCall && !a->crossesCall))
                        victim = a;
                if (victim != iv) {
                    iv->assigned = victim->assigned;
                    iv->hasReg = true;
                    physInUse[iv->assigned] = iv;
                    active.erase(std::find(active.begin(),
                                           active.end(), victim));
                    active.push_back(iv);
                    victim->assigned = 0;
                    victim->hasReg = false;
                    victim->spilled = true;
                } else {
                    iv->spilled = true;
                }
            }
        }
    }

    bool
    hintFor(unsigned vreg, unsigned &hint)
    {
        for (auto &[a, b] : copyPairs_) {
            unsigned other;
            if (a == vreg)
                other = b;
            else if (b == vreg)
                other = a;
            else
                continue;
            if (isVirtualReg(other)) {
                auto it = intervals_.find(other);
                if (it != intervals_.end() && it->second.hasReg) {
                    hint = it->second.assigned;
                    return true;
                }
            } else {
                hint = other; // physical hint (arg/ret copies)
                return true;
            }
        }
        return false;
    }

    void
    rewrite()
    {
        for (auto &mbb : mf_.blocks()) {
            auto &instrs = mbb->instrs();
            for (size_t i = 0; i < instrs.size(); ++i) {
                MachineInstr &mi = *instrs[i];
                unsigned scratchUsedInt = 0, scratchUsedFP = 0;

                // Uses first: reload spilled values into scratch.
                for (size_t o = mi.numDefs; o < mi.ops.size(); ++o) {
                    MOperand &op = mi.ops[o];
                    if (op.kind != MOperand::Reg ||
                        !isVirtualReg(op.reg))
                        continue;
                    Interval &iv = intervals_.at(op.reg);
                    const VRegInfo &info = mf_.vregInfo(op.reg);
                    if (!iv.spilled) {
                        op.reg = iv.assigned;
                        continue;
                    }
                    bool fp = info.regClass == RegClass::FP;
                    auto &scratch = fp ? scratchFP_ : scratchInt_;
                    unsigned &used =
                        fp ? scratchUsedFP : scratchUsedInt;
                    LLVA_ASSERT(used < scratch.size(),
                                "out of scratch registers");
                    unsigned phys = scratch[used++];
                    instrs.insert(
                        instrs.begin() + static_cast<ptrdiff_t>(i),
                        makeReload(phys, slots_.slotOf(op.reg), fp,
                                   info.fp32));
                    if (stats_)
                        ++stats_->reloadsInserted;
                    ++i;
                    op.reg = phys;
                }
                // Defs: spill after the instruction.
                for (size_t o = 0; o < mi.numDefs; ++o) {
                    MOperand &op = mi.ops[o];
                    if (op.kind != MOperand::Reg ||
                        !isVirtualReg(op.reg))
                        continue;
                    Interval &iv = intervals_.at(op.reg);
                    const VRegInfo &info = mf_.vregInfo(op.reg);
                    if (!iv.spilled) {
                        op.reg = iv.assigned;
                        continue;
                    }
                    bool fp = info.regClass == RegClass::FP;
                    auto &scratch = fp ? scratchFP_ : scratchInt_;
                    unsigned phys = scratch[0];
                    op.reg = phys;
                    instrs.insert(
                        instrs.begin() +
                            static_cast<ptrdiff_t>(i + 1),
                        makeSpill(phys, slots_.slotOf(
                                            intervalVReg(iv)),
                                  fp, info.fp32));
                    if (stats_)
                        ++stats_->spillsInserted;
                }
            }
            // Delete coalesced copies (same source and dest).
            for (auto it = instrs.begin(); it != instrs.end();) {
                MachineInstr &mi = **it;
                if (mi.opcode == kOpCopy && mi.ops.size() == 2 &&
                    mi.ops[0].kind == MOperand::Reg &&
                    mi.ops[1].kind == MOperand::Reg &&
                    mi.ops[0].reg == mi.ops[1].reg) {
                    if (stats_)
                        ++stats_->phiCopiesCoalesced;
                    it = instrs.erase(it);
                } else {
                    ++it;
                }
            }
        }
    }

    static unsigned
    intervalVReg(const Interval &iv)
    {
        return iv.vreg;
    }

    std::vector<std::pair<unsigned, unsigned>> copyPairs_;
};

} // namespace

void
allocateRegistersLocal(MachineFunction &mf, Target &target,
                       CodeGenStats *stats)
{
    LocalAllocator(mf, target, stats).run();
}

void
allocateRegistersLinearScan(MachineFunction &mf, Target &target,
                            bool coalesce, CodeGenStats *stats)
{
    LinearScanAllocator(mf, target, coalesce, stats).run();
}

} // namespace llva
