/**
 * @file
 * The target (I-ISA) abstraction. An implementation provides
 * instruction selection from LLVA, register-set information, a byte
 * encoder (so native code size can be measured), and the execution
 * semantics of each machine instruction (so translated code actually
 * runs, on the machine simulator).
 *
 * Three targets are registered (src/codegen/targets.cpp), all built
 * on the common framework in src/target/common/:
 *  - "x86"  : CISC, two-address, 8 integer registers, variable-length
 *             encoding, stack-based calling convention — models the
 *             paper's CISC evaluation machine.
 *  - "sparc": RISC, three-address, 32 integer registers, fixed 4-byte
 *             encoding, register calling convention, sethi+or for
 *             large immediates, delay slots — the paper's RISC
 *             evaluation machine.
 *  - "riscv": RISC, three-address, fixed 4-byte encoding, lui+ori
 *             immediate pairs, eight register arguments, no delay
 *             slots — the framework's proof target.
 */

#ifndef LLVA_CODEGEN_TARGET_H
#define LLVA_CODEGEN_TARGET_H

#include <array>
#include <memory>
#include <string>
#include <vector>

#include "codegen/machine.h"
#include "codegen/memory.h"

namespace llva {

/** A scalar crossing the engine/runtime/driver boundary. */
struct RtValue
{
    uint64_t i = 0;
    double f = 0.0;

    static RtValue
    ofInt(uint64_t v)
    {
        RtValue r;
        r.i = v;
        return r;
    }

    static RtValue
    ofFP(double v)
    {
        RtValue r;
        r.f = v;
        return r;
    }
};

/** Target-independent pseudo opcodes, handled by every target. */
enum GenericOpcode : uint16_t {
    kOpPhi = 0xfff0,       ///< removed by phi elimination
    kOpCopy = 0xfff1,      ///< reg <- reg move
    kOpSpill = 0xfff2,     ///< frame[i] <- reg
    kOpReload = 0xfff3,    ///< reg <- frame[i]
    kOpFrameAddr = 0xfff4, ///< reg <- sp + offsetof(frame[i])
    kOpDynAlloca = 0xfff5, ///< reg <- fresh storage of reg bytes
};

/** Architectural state of the simulated hardware processor. */
struct SimState
{
    /** What the last executed instruction asked the driver to do. */
    enum class Next : uint8_t {
        Fall,     ///< continue to the next instruction
        Branch,   ///< jump to branchTarget
        Return,   ///< pop the call stack
        Call,     ///< call callTarget (direct) or callAddr (indirect)
        Unwind,   ///< pop to the nearest invoke handler
        Trap,     ///< deliverable exception raised
    };

    std::array<uint64_t, 64> ireg{};
    std::array<double, 64> freg{};

    // Comparison state (x86 flags / sparc condition codes).
    int64_t ccSA = 0, ccSB = 0;
    uint64_t ccUA = 0, ccUB = 0;
    double ccFA = 0, ccFB = 0;
    bool ccFP = false;

    uint64_t sp = 0;
    Memory *mem = nullptr;
    /** Addresses assigned to globals at link time. */
    const std::map<const GlobalVariable *, uint64_t> *globalAddrs =
        nullptr;

    Next next = Next::Fall;
    MachineBasicBlock *branchTarget = nullptr;
    const Function *callTarget = nullptr;
    uint64_t callAddr = 0;
    TrapKind trapKind = TrapKind::None;

    void
    reset()
    {
        next = Next::Fall;
        branchTarget = nullptr;
        callTarget = nullptr;
        callAddr = 0;
        trapKind = TrapKind::None;
    }

    void
    trap(TrapKind k)
    {
        next = Next::Trap;
        trapKind = k;
    }
};

/** Description of one target register. */
struct RegDesc
{
    const char *name;
    RegClass cls;
};

class Target
{
  public:
    virtual ~Target() = default;

    virtual const char *name() const = 0;

    /** Allocatable registers by class, in preference order. */
    virtual const std::vector<unsigned> &allocatable(RegClass rc)
        const = 0;

    /** Subset of allocatable regs preserved across calls. */
    virtual const std::vector<unsigned> &calleeSaved(RegClass rc)
        const = 0;

    /** Register holding return values of the given class. */
    virtual unsigned returnReg(RegClass rc) const = 0;

    virtual const char *regName(unsigned reg) const = 0;

    /**
     * Instruction selection: translate a verified LLVA function into
     * machine instructions over virtual registers. Phi nodes become
     * kOpPhi pseudos, later removed by phi elimination.
     */
    virtual void select(const Function &f, MachineFunction &mf) = 0;

    /**
     * Insert the prologue/epilogue (stack adjustment, callee-saved
     * register saves/restores) after register allocation and frame
     * finalization. Each pair is (physical register, sp-relative
     * byte offset of its save slot).
     */
    virtual void insertPrologueEpilogue(
        MachineFunction &mf,
        const std::vector<std::pair<unsigned, int64_t>> &saved) = 0;

    /** Byte encoding of one instruction (for code-size measurement). */
    virtual std::vector<uint8_t> encode(const MachineInstr &mi)
        const = 0;

    /** Execute one instruction against the architectural state. */
    virtual void execute(const MachineInstr &mi, SimState &state)
        const = 0;

    /**
     * The direct-threaded dispatch handler for \p mi: a free
     * function implementing exactly what execute() would do for
     * this opcode. Handlers assume the driver set state.next =
     * Fall before the call (no full reset()): every consumer field
     * (branchTarget, callTarget/callAddr, trapKind) is written by
     * the handler that requests the corresponding Next value, so
     * stale values are never observed. The simulator caches the
     * result on the instruction (MachineInstr::exec).
     */
    virtual ExecFn handlerFor(const MachineInstr &mi) const = 0;

    /** Disassembly for debugging and examples. */
    virtual std::string instrToString(const MachineInstr &mi)
        const = 0;

    // Calling-convention marshalling, used by the simulator driver
    // at the program boundary (program entry and runtime calls).

    /** Place \p args where a callee of type \p ft expects them. */
    virtual void writeArgs(SimState &state, const FunctionType *ft,
                           const std::vector<RtValue> &args) const;

    /** Read the arguments a caller just placed for callee \p ft. */
    virtual std::vector<RtValue> readArgs(SimState &state,
                                          const FunctionType *ft)
        const;

    /** Deposit a return value where callers expect it. */
    virtual void writeReturn(SimState &state, const Type *type,
                             RtValue value) const;

    /** Fetch the return value after a call. */
    virtual RtValue readReturn(SimState &state, const Type *type)
        const;
};

/** The registry of built-in targets. */
Target *getTarget(const std::string &name);

/** Names of all built-in targets ("x86", "sparc", "riscv"). */
std::vector<std::string> targetNames();

} // namespace llva

#endif // LLVA_CODEGEN_TARGET_H
