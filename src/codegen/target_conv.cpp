/**
 * @file
 * Default calling-convention marshalling: the fully stack-based
 * convention (all arguments in the caller's outgoing area at sp+8i).
 * Register-argument targets override these.
 */

#include "codegen/target.h"

namespace llva {

void
Target::writeArgs(SimState &state, const FunctionType *ft,
                  const std::vector<RtValue> &args) const
{
    for (size_t i = 0; i < args.size(); ++i) {
        uint64_t addr = state.sp + 8 * i;
        bool fp = i < ft->numParams() &&
                  ft->paramType(i)->isFloatingPoint();
        if (fp)
            state.mem->storeFP(addr, false, args[i].f);
        else
            state.mem->store(addr, 8, args[i].i);
    }
}

std::vector<RtValue>
Target::readArgs(SimState &state, const FunctionType *ft) const
{
    std::vector<RtValue> args(ft->numParams());
    for (size_t i = 0; i < ft->numParams(); ++i) {
        uint64_t addr = state.sp + 8 * i;
        if (ft->paramType(i)->isFloatingPoint()) {
            double v = 0;
            state.mem->loadFP(addr, false, v);
            args[i] = RtValue::ofFP(v);
        } else {
            uint64_t v = 0;
            state.mem->load(addr, 8, v);
            args[i] = RtValue::ofInt(v);
        }
    }
    return args;
}

void
Target::writeReturn(SimState &state, const Type *type,
                    RtValue value) const
{
    if (type->isVoid())
        return;
    if (type->isFloatingPoint())
        state.freg[returnReg(RegClass::FP) - 32] = value.f;
    else
        state.ireg[returnReg(RegClass::Int)] = value.i;
}

RtValue
Target::readReturn(SimState &state, const Type *type) const
{
    if (type->isVoid())
        return RtValue();
    if (type->isFloatingPoint())
        return RtValue::ofFP(state.freg[returnReg(RegClass::FP) - 32]);
    return RtValue::ofInt(state.ireg[returnReg(RegClass::Int)]);
}

} // namespace llva
