#include "codegen/target.h"

#include "target/sparc/sparc_target.h"
#include "target/x86/x86_target.h"

namespace llva {

Target *
getTarget(const std::string &name)
{
    static X86Target x86;
    static SparcTarget sparc;
    if (name == "x86")
        return &x86;
    if (name == "sparc")
        return &sparc;
    return nullptr;
}

std::vector<std::string>
targetNames()
{
    return {"x86", "sparc"};
}

} // namespace llva
