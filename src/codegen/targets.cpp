#include "codegen/target.h"

#include "support/error.h"
#include "target/sparc/sparc_target.h"
#include "target/x86/x86_target.h"

namespace llva {

Target *
getTarget(const std::string &name)
{
    static X86Target x86;
    static SparcTarget sparc;
    if (name == "x86")
        return &x86;
    if (name == "sparc")
        return &sparc;
    std::string known;
    for (const std::string &n : targetNames()) {
        if (!known.empty())
            known += ", ";
        known += n;
    }
    fatal("unknown target '%s' (known targets: %s)", name.c_str(),
          known.c_str());
}

std::vector<std::string>
targetNames()
{
    return {"x86", "sparc"};
}

} // namespace llva
