/**
 * @file
 * The target registry. One table row per backend — name plus a
 * lazily-constructed singleton — drives getTarget, targetNames, and
 * every consumer that enumerates targets (tool flags, the
 * differential oracle, the cache compatibility tests), so adding a
 * backend means adding exactly one row here.
 */

#include "codegen/target.h"

#include <functional>

#include "support/error.h"
#include "target/riscv/riscv_target.h"
#include "target/sparc/sparc_target.h"
#include "target/x86/x86_target.h"

namespace llva {

namespace {

struct TargetEntry
{
    const char *name;
    Target &(*instance)();
};

template <typename T>
Target &
singleton()
{
    static T target;
    return target;
}

const TargetEntry kTargets[] = {
    {"x86", singleton<X86Target>},
    {"sparc", singleton<SparcTarget>},
    {"riscv", singleton<RiscvTarget>},
};

} // namespace

Target *
getTarget(const std::string &name)
{
    for (const TargetEntry &e : kTargets)
        if (name == e.name)
            return &e.instance();
    std::string known;
    for (const std::string &n : targetNames()) {
        if (!known.empty())
            known += ", ";
        known += n;
    }
    fatal("unknown target '%s' (known targets: %s)", name.c_str(),
          known.c_str());
}

std::vector<std::string>
targetNames()
{
    std::vector<std::string> names;
    for (const TargetEntry &e : kTargets)
        names.push_back(e.name);
    return names;
}

} // namespace llva
