#include "ir/basic_block.h"

#include <algorithm>

#include "ir/function.h"
#include "ir/instructions.h"

namespace llva {

Instruction *
BasicBlock::insertBefore(Instruction *before,
                         std::unique_ptr<Instruction> inst)
{
    return insert(locate(before), std::move(inst));
}

BasicBlock::iterator
BasicBlock::locate(Instruction *inst)
{
    for (auto it = insts_.begin(); it != insts_.end(); ++it)
        if (it->get() == inst)
            return it;
    panic("instruction not in this block");
}

void
BasicBlock::erase(Instruction *inst)
{
    auto it = locate(inst);
    (*it)->dropAllOperands();
    LLVA_ASSERT(!(*it)->hasUses(),
                "erasing instruction '%s' that still has uses",
                inst->name().c_str());
    insts_.erase(it);
}

std::unique_ptr<Instruction>
BasicBlock::remove(Instruction *inst)
{
    auto it = locate(inst);
    std::unique_ptr<Instruction> owned = std::move(*it);
    insts_.erase(it);
    owned->setParent(nullptr);
    return owned;
}

void
BasicBlock::clear()
{
    // Break all def-use edges first so destruction order is safe.
    for (auto &inst : insts_)
        inst->dropAllOperands();
    insts_.clear();
}

std::vector<BasicBlock *>
BasicBlock::successors() const
{
    std::vector<BasicBlock *> out;
    if (Instruction *term = terminator())
        for (unsigned i = 0, e = term->numSuccessors(); i != e; ++i)
            out.push_back(term->successor(i));
    return out;
}

std::vector<BasicBlock *>
BasicBlock::predecessors() const
{
    std::vector<BasicBlock *> preds;
    for (User *u : users()) {
        auto *inst = dyn_cast<Instruction>(u);
        if (!inst || !inst->isTerminator())
            continue;
        BasicBlock *pred = inst->parent();
        if (std::find(preds.begin(), preds.end(), pred) == preds.end())
            preds.push_back(pred);
    }
    return preds;
}

BasicBlock::iterator
BasicBlock::firstNonPhi()
{
    auto it = insts_.begin();
    while (it != insts_.end() && isa<PhiNode>(it->get()))
        ++it;
    return it;
}

BasicBlock::const_iterator
BasicBlock::firstNonPhi() const
{
    auto it = insts_.begin();
    while (it != insts_.end() && isa<PhiNode>(it->get()))
        ++it;
    return it;
}

BasicBlock *
BasicBlock::splitBefore(Instruction *pos, const std::string &name)
{
    LLVA_ASSERT(parent_, "cannot split a detached block");
    BasicBlock *tail = parent_->createBlockAfter(this, name);
    auto it = locate(pos);
    while (it != insts_.end()) {
        std::unique_ptr<Instruction> inst = std::move(*it);
        it = insts_.erase(it);
        inst->setParent(tail);
        tail->insts_.push_back(std::move(inst));
    }
    append(std::make_unique<BranchInst>(type()->context(), tail));
    return tail;
}

} // namespace llva
