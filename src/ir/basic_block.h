/**
 * @file
 * BasicBlock: a label value owning a straight-line instruction list
 * terminated by exactly one control-flow instruction.
 *
 * Paper Section 3.1: "Each function in LLVA is a list of basic
 * blocks, and each basic block is a list of instructions ending in a
 * single control flow instruction that explicitly specifies its
 * successor basic blocks." Because blocks are Values (of label type)
 * used by terminators and phis, the predecessor set falls out of the
 * use list.
 */

#ifndef LLVA_IR_BASIC_BLOCK_H
#define LLVA_IR_BASIC_BLOCK_H

#include <list>
#include <memory>
#include <vector>

#include "ir/instruction.h"
#include "ir/value.h"

namespace llva {

class Function;

class BasicBlock : public Value
{
  public:
    using InstList = std::list<std::unique_ptr<Instruction>>;
    using iterator = InstList::iterator;
    using const_iterator = InstList::const_iterator;

    BasicBlock(TypeContext &ctx, const std::string &name)
        : Value(ctx.labelTy(), ValueKind::BasicBlock)
    {
        setName(name);
    }

    ~BasicBlock() override { clear(); }

    Function *parent() const { return parent_; }
    void setParent(Function *f) { parent_ = f; }

    bool empty() const { return insts_.empty(); }
    size_t size() const { return insts_.size(); }

    iterator begin() { return insts_.begin(); }
    iterator end() { return insts_.end(); }
    const_iterator begin() const { return insts_.begin(); }
    const_iterator end() const { return insts_.end(); }

    Instruction *front() const { return insts_.front().get(); }
    Instruction *back() const { return insts_.back().get(); }

    /** The block's terminator, or nullptr if not yet terminated. */
    Instruction *
    terminator() const
    {
        if (insts_.empty() || !insts_.back()->isTerminator())
            return nullptr;
        return insts_.back().get();
    }

    /** Append an instruction, taking ownership. */
    Instruction *
    append(std::unique_ptr<Instruction> inst)
    {
        inst->setParent(this);
        insts_.push_back(std::move(inst));
        return insts_.back().get();
    }

    /** Insert before \p pos, taking ownership. */
    Instruction *
    insert(iterator pos, std::unique_ptr<Instruction> inst)
    {
        inst->setParent(this);
        return insts_.insert(pos, std::move(inst))->get();
    }

    /** Insert immediately before an existing instruction. */
    Instruction *insertBefore(Instruction *before,
                              std::unique_ptr<Instruction> inst);

    /** Remove and destroy \p inst (must belong to this block). */
    void erase(Instruction *inst);

    /** Remove without destroying; returns ownership. */
    std::unique_ptr<Instruction> remove(Instruction *inst);

    /** Iterator pointing at \p inst. */
    iterator locate(Instruction *inst);

    /** Destroy all instructions (dropping operands first). */
    void clear();

    /** Successor blocks, read off the terminator. */
    std::vector<BasicBlock *> successors() const;

    /**
     * Predecessor blocks, computed from the use list: any terminator
     * using this block as a target is a predecessor edge. Duplicate
     * edges (e.g. both arms of a br to the same block) are collapsed.
     */
    std::vector<BasicBlock *> predecessors() const;

    /** First non-phi instruction position. */
    iterator firstNonPhi();
    const_iterator firstNonPhi() const;

    /**
     * Split this block before \p pos; instructions from \p pos onward
     * move to a new block which is returned. A br to the new block is
     * appended here. Phi nodes and predecessor bookkeeping are the
     * caller's concern.
     */
    BasicBlock *splitBefore(Instruction *pos, const std::string &name);

    static bool
    classof(const Value *v)
    {
        return v->valueKind() == ValueKind::BasicBlock;
    }

  private:
    InstList insts_;
    Function *parent_ = nullptr;
};

} // namespace llva

#endif // LLVA_IR_BASIC_BLOCK_H
