#include "ir/clone.h"

#include <map>

#include "ir/instructions.h"
#include "ir/module.h"

namespace llva {

FunctionSnapshot::~FunctionSnapshot()
{
    for (auto &bb : blocks_)
        for (auto &inst : *bb)
            inst->dropAllOperands();
}

FunctionSnapshot
FunctionSnapshot::capture(const Function &f)
{
    FunctionSnapshot snap;
    snap.captured_ = true;
    if (f.isDeclaration())
        return snap;

    TypeContext &tc = f.functionType()->context();

    // Pass 1: one detached block per source block, so branch and phi
    // operands can be remapped even across forward edges.
    std::map<const Value *, Value *> map;
    for (const auto &bb : f) {
        auto clone = std::make_unique<BasicBlock>(tc, bb->name());
        map[bb.get()] = clone.get();
        snap.blocks_.push_back(std::move(clone));
    }

    // Pass 2: clone instructions block by block.
    auto dst = snap.blocks_.begin();
    for (const auto &bb : f) {
        BasicBlock *clone_bb = dst->get();
        ++dst;
        for (const auto &inst : *bb) {
            Instruction *c = inst->clone();
            c->setName(inst->name());
            c->setExceptionsEnabled(inst->exceptionsEnabled());
            map[inst.get()] = c;
            clone_bb->append(std::unique_ptr<Instruction>(c));
            ++snap.instCount_;
        }
    }

    // Pass 3: remap operands onto the cloned defs/blocks. Anything
    // not in the map (arguments, constants, globals, functions) is
    // stable across body replacement and stays as-is.
    for (const auto &bb : snap.blocks_) {
        for (const auto &inst : *bb) {
            for (size_t i = 0; i < inst->numOperands(); ++i) {
                auto it = map.find(inst->operand(i));
                if (it != map.end())
                    inst->setOperand(i, it->second);
            }
        }
    }
    return snap;
}

void
FunctionSnapshot::restoreInto(Function &f)
{
    LLVA_ASSERT(captured_, "restoring an empty FunctionSnapshot");

    // Sever every def-use edge of the current body first: a faulting
    // pass may have left instructions referencing values in blocks
    // that die before they do.
    for (auto &bb : f)
        for (auto &inst : *bb)
            inst->dropAllOperands();
    f.takeBlocks(); // destroys the old body

    for (auto &bb : blocks_)
        f.adoptBlock(std::move(bb));
    blocks_.clear();
    instCount_ = 0;
    captured_ = false;
}

} // namespace llva
