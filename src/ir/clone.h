/**
 * @file
 * FunctionSnapshot: a detached, self-contained clone of a function
 * body, used as the restore point for fault-contained pass execution
 * and tiered retranslation. Capturing is a cheap IR clone (one
 * Instruction::clone per instruction plus an operand remap);
 * restoring replaces the function's current — possibly mangled —
 * body with the captured one in O(body size), leaving every
 * module-level entity (arguments, globals, constants, other
 * functions) untouched.
 */

#ifndef LLVA_IR_CLONE_H
#define LLVA_IR_CLONE_H

#include <memory>
#include <vector>

#include "ir/function.h"

namespace llva {

class FunctionSnapshot
{
  public:
    FunctionSnapshot() = default;

    /**
     * Discarding an unconsumed snapshot (the common case: the
     * guarded pass succeeded and the restore point is no longer
     * needed) severs the clone's cross-block def-use edges first;
     * BasicBlock teardown only breaks edges within one block.
     */
    ~FunctionSnapshot();

    FunctionSnapshot(FunctionSnapshot &&) = default;
    FunctionSnapshot &operator=(FunctionSnapshot &&) = default;
    FunctionSnapshot(const FunctionSnapshot &) = delete;
    FunctionSnapshot &operator=(const FunctionSnapshot &) = delete;

    /**
     * Clone the body of \p f. The clone references only the
     * snapshot's own blocks/instructions plus values that are stable
     * across body replacement: arguments, constants, globals, and
     * functions. Capturing a declaration yields an empty snapshot.
     */
    static FunctionSnapshot capture(const Function &f);

    /**
     * Replace the current body of \p f with the captured one. Safe
     * to call no matter how broken the current body is (a faulting
     * pass may have left half-rewired instructions): every def-use
     * edge of the old body is severed before anything is destroyed.
     * One-shot: the snapshot is consumed.
     */
    void restoreInto(Function &f);

    /** Instructions in the captured body. */
    size_t instructionCount() const { return instCount_; }

    bool captured() const { return captured_; }

  private:
    std::vector<std::unique_ptr<BasicBlock>> blocks_;
    size_t instCount_ = 0;
    bool captured_ = false;
};

} // namespace llva

#endif // LLVA_IR_CLONE_H
