/**
 * @file
 * Constants and global values.
 *
 * Scalar constants (integers, floats, null pointers) are interned per
 * Module so that pointer equality holds. Aggregate constants supply
 * initializers for global variables.
 */

#ifndef LLVA_IR_CONSTANT_H
#define LLVA_IR_CONSTANT_H

#include <cstdint>
#include <string>
#include <vector>

#include "ir/type.h"
#include "ir/value.h"

namespace llva {

class Module;

/** Base class of all constant values. */
class Constant : public Value
{
  public:
    static bool
    classof(const Value *v)
    {
        switch (v->valueKind()) {
          case ValueKind::ConstantInt:
          case ValueKind::ConstantFP:
          case ValueKind::ConstantNull:
          case ValueKind::ConstantUndef:
          case ValueKind::ConstantAggregate:
          case ValueKind::ConstantString:
          case ValueKind::GlobalVariable:
          case ValueKind::Function:
            return true;
          default:
            return false;
        }
    }

  protected:
    Constant(Type *type, ValueKind vkind)
        : Value(type, vkind)
    {}
};

/**
 * Integer or boolean constant. The value is stored as the 64-bit
 * sign- or zero-extension (per the type's signedness) of the
 * constant's bit pattern.
 */
class ConstantInt : public Constant
{
  public:
    ConstantInt(Type *type, uint64_t bits)
        : Constant(type, ValueKind::ConstantInt), bits_(bits)
    {}

    /** Raw 64-bit representation (sign-extended if signed type). */
    uint64_t bits() const { return bits_; }
    int64_t sext() const { return static_cast<int64_t>(bits_); }
    uint64_t zext() const { return bits_; }

    bool isZero() const { return bits_ == 0; }
    bool isOne() const { return bits_ == 1; }

    static bool
    classof(const Value *v)
    {
        return v->valueKind() == ValueKind::ConstantInt;
    }

  private:
    uint64_t bits_;
};

/** Floating-point constant (float constants stored widened). */
class ConstantFP : public Constant
{
  public:
    ConstantFP(Type *type, double value)
        : Constant(type, ValueKind::ConstantFP), value_(value)
    {}

    double value() const { return value_; }

    static bool
    classof(const Value *v)
    {
        return v->valueKind() == ValueKind::ConstantFP;
    }

  private:
    double value_;
};

/** The null pointer constant of some pointer type. */
class ConstantNull : public Constant
{
  public:
    explicit ConstantNull(PointerType *type)
        : Constant(type, ValueKind::ConstantNull)
    {}

    static bool
    classof(const Value *v)
    {
        return v->valueKind() == ValueKind::ConstantNull;
    }
};

/** Undefined value of any first-class type. */
class ConstantUndef : public Constant
{
  public:
    explicit ConstantUndef(Type *type)
        : Constant(type, ValueKind::ConstantUndef)
    {}

    static bool
    classof(const Value *v)
    {
        return v->valueKind() == ValueKind::ConstantUndef;
    }
};

/**
 * Constant array or structure initializer. Elements are plain
 * references (no use tracking): initializers are immutable data, not
 * part of the rewritable SSA graph.
 */
class ConstantAggregate : public Constant
{
  public:
    ConstantAggregate(Type *type, std::vector<Constant *> elems)
        : Constant(type, ValueKind::ConstantAggregate),
          elems_(std::move(elems))
    {}

    size_t numElements() const { return elems_.size(); }
    Constant *element(size_t i) const { return elems_[i]; }
    const std::vector<Constant *> &elements() const { return elems_; }

    static bool
    classof(const Value *v)
    {
        return v->valueKind() == ValueKind::ConstantAggregate;
    }

  private:
    std::vector<Constant *> elems_;
};

/** Byte-string constant; type is [N x ubyte] (NUL included if added). */
class ConstantString : public Constant
{
  public:
    ConstantString(ArrayType *type, std::string data)
        : Constant(type, ValueKind::ConstantString),
          data_(std::move(data))
    {}

    const std::string &data() const { return data_; }

    static bool
    classof(const Value *v)
    {
        return v->valueKind() == ValueKind::ConstantString;
    }

  private:
    std::string data_;
};

/** Linkage of globals and functions. */
enum class Linkage : uint8_t {
    External, ///< Visible to other modules.
    Internal, ///< Local to this module.
};

/**
 * A module-level global variable. Its value type is `T*` where T is
 * the contained type; loads/stores go through that pointer.
 */
class GlobalVariable : public Constant
{
  public:
    GlobalVariable(PointerType *type, const std::string &name,
                   Constant *init, bool is_constant, Linkage linkage)
        : Constant(type, ValueKind::GlobalVariable), init_(init),
          isConstant_(is_constant), linkage_(linkage)
    {
        setName(name);
    }

    /** The contained (pointed-to) type. */
    Type *
    containedType() const
    {
        return cast<PointerType>(type())->pointee();
    }

    Constant *initializer() const { return init_; }
    void setInitializer(Constant *c) { init_ = c; }
    bool isConstant() const { return isConstant_; }
    Linkage linkage() const { return linkage_; }

    static bool
    classof(const Value *v)
    {
        return v->valueKind() == ValueKind::GlobalVariable;
    }

  private:
    Constant *init_;
    bool isConstant_;
    Linkage linkage_;
};

} // namespace llva

#endif // LLVA_IR_CONSTANT_H
