#include "ir/function.h"

#include <map>
#include <set>

#include "ir/instructions.h"
#include "ir/module.h"

namespace llva {

Function::Function(FunctionType *fn_type, const std::string &name,
                   Linkage linkage, Module *parent)
    : Constant(fn_type->context().pointerTo(fn_type),
               ValueKind::Function),
      fnType_(fn_type), parent_(parent), linkage_(linkage)
{
    setName(name);
    for (size_t i = 0; i < fn_type->numParams(); ++i)
        args_.push_back(std::make_unique<Argument>(
            fn_type->paramType(i), "arg" + std::to_string(i), this,
            static_cast<unsigned>(i)));
}

Function::~Function()
{
    // Instructions may reference blocks/arguments across the whole
    // function; sever every def-use edge before anything dies.
    for (auto &bb : blocks_)
        for (auto &inst : *bb)
            inst->dropAllOperands();
}

BasicBlock *
Function::createBlock(const std::string &name)
{
    auto bb = std::make_unique<BasicBlock>(fnType_->context(), name);
    bb->setParent(this);
    blocks_.push_back(std::move(bb));
    return blocks_.back().get();
}

BasicBlock *
Function::createBlockAfter(BasicBlock *after, const std::string &name)
{
    auto bb = std::make_unique<BasicBlock>(fnType_->context(), name);
    bb->setParent(this);
    for (auto it = blocks_.begin(); it != blocks_.end(); ++it) {
        if (it->get() == after) {
            auto pos = std::next(it);
            return blocks_.insert(pos, std::move(bb))->get();
        }
    }
    panic("createBlockAfter: block not in function");
}

void
Function::eraseBlock(BasicBlock *bb)
{
    for (auto it = blocks_.begin(); it != blocks_.end(); ++it) {
        if (it->get() == bb) {
            bb->clear();
            LLVA_ASSERT(!bb->hasUses(),
                        "erasing block '%s' that still has users",
                        bb->name().c_str());
            blocks_.erase(it);
            return;
        }
    }
    panic("eraseBlock: block not in function");
}

void
Function::moveBlockBefore(BasicBlock *bb, BasicBlock *before)
{
    std::unique_ptr<BasicBlock> owned;
    for (auto it = blocks_.begin(); it != blocks_.end(); ++it) {
        if (it->get() == bb) {
            owned = std::move(*it);
            blocks_.erase(it);
            break;
        }
    }
    LLVA_ASSERT(owned, "moveBlockBefore: block not in function");
    if (!before) {
        blocks_.push_back(std::move(owned));
        return;
    }
    for (auto it = blocks_.begin(); it != blocks_.end(); ++it) {
        if (it->get() == before) {
            blocks_.insert(it, std::move(owned));
            return;
        }
    }
    panic("moveBlockBefore: 'before' block not in function");
}

BasicBlock *
Function::findBlock(const std::string &name) const
{
    for (const auto &bb : blocks_)
        if (bb->name() == name)
            return bb.get();
    return nullptr;
}

Function::BlockList
Function::takeBlocks()
{
    BlockList out;
    out.swap(blocks_); // guarantees blocks_ is left empty
    return out;
}

BasicBlock *
Function::adoptBlock(std::unique_ptr<BasicBlock> bb)
{
    bb->setParent(this);
    blocks_.push_back(std::move(bb));
    return blocks_.back().get();
}

size_t
Function::instructionCount() const
{
    size_t n = 0;
    for (const auto &bb : blocks_)
        n += bb->size();
    return n;
}

void
Function::renumberValues()
{
    std::set<std::string> taken;
    unsigned slot = 0;

    auto assign = [&](Value *v, bool needs_name) {
        if (!needs_name) {
            return;
        }
        std::string base = v->name();
        if (base.empty())
            base = std::to_string(slot++);
        std::string name = base;
        unsigned suffix = 0;
        while (taken.count(name))
            name = base + "." + std::to_string(++suffix);
        taken.insert(name);
        v->setName(name);
    };

    for (auto &arg : args_)
        assign(arg.get(), true);
    for (auto &bb : blocks_) {
        assign(bb.get(), true);
        for (auto &inst : *bb)
            assign(inst.get(), !inst->type()->isVoid());
    }
}

} // namespace llva
