/**
 * @file
 * Function: a typed global symbol owning a CFG of basic blocks.
 */

#ifndef LLVA_IR_FUNCTION_H
#define LLVA_IR_FUNCTION_H

#include <list>
#include <memory>
#include <string>
#include <vector>

#include "ir/basic_block.h"
#include "ir/constant.h"
#include "ir/type.h"

namespace llva {

class Module;

/**
 * A function definition or declaration. The function's value type is
 * a pointer to its FunctionType, so functions can be passed and
 * called indirectly like any other pointer.
 *
 * A function with no basic blocks is a declaration: either an
 * external symbol resolved at (virtual) link time or one of the LLVA
 * intrinsics (paper Section 3.5), whose names start with "llva.".
 */
class Function : public Constant
{
  public:
    using BlockList = std::list<std::unique_ptr<BasicBlock>>;
    using iterator = BlockList::iterator;
    using const_iterator = BlockList::const_iterator;

    Function(FunctionType *fn_type, const std::string &name,
             Linkage linkage, Module *parent);
    ~Function() override;

    Module *parent() const { return parent_; }
    void setParent(Module *m) { parent_ = m; }

    FunctionType *functionType() const { return fnType_; }
    Type *returnType() const { return fnType_->returnType(); }
    Linkage linkage() const { return linkage_; }
    void setLinkage(Linkage l) { linkage_ = l; }

    bool isDeclaration() const { return blocks_.empty(); }

    /** LLVA intrinsic functions are declarations named "llva.*". */
    bool
    isIntrinsic() const
    {
        return name().rfind("llva.", 0) == 0;
    }

    // Arguments.
    size_t numArgs() const { return args_.size(); }
    Argument *arg(size_t i) const { return args_[i].get(); }
    const std::vector<std::unique_ptr<Argument>> &args() const
    {
        return args_;
    }

    // Blocks.
    bool empty() const { return blocks_.empty(); }
    size_t size() const { return blocks_.size(); }
    iterator begin() { return blocks_.begin(); }
    iterator end() { return blocks_.end(); }
    const_iterator begin() const { return blocks_.begin(); }
    const_iterator end() const { return blocks_.end(); }

    BasicBlock *
    entryBlock() const
    {
        LLVA_ASSERT(!blocks_.empty(), "declaration has no entry block");
        return blocks_.front().get();
    }

    /** Create and append a new basic block. */
    BasicBlock *createBlock(const std::string &name);

    /** Insert a new block after \p after. */
    BasicBlock *createBlockAfter(BasicBlock *after,
                                 const std::string &name);

    /** Remove and destroy \p bb (must have no users). */
    void eraseBlock(BasicBlock *bb);

    /** Move \p bb to the position before \p before (or end). */
    void moveBlockBefore(BasicBlock *bb, BasicBlock *before);

    /** Find a block by name (nullptr if absent). */
    BasicBlock *findBlock(const std::string &name) const;

    /**
     * Detach and return the whole block list (body surgery; see
     * FunctionSnapshot). The caller must have severed any def-use
     * edges it wants to survive; dropping the returned list destroys
     * the body.
     */
    BlockList takeBlocks();

    /** Append a detached block, taking ownership. */
    BasicBlock *adoptBlock(std::unique_ptr<BasicBlock> bb);

    /** Total instruction count across all blocks. */
    size_t instructionCount() const;

    /**
     * Assign unique printable names: unnamed values get %N slots,
     * duplicate names get numeric suffixes. Used by printer/bytecode.
     */
    void renumberValues();

    static bool
    classof(const Value *v)
    {
        return v->valueKind() == ValueKind::Function;
    }

  private:
    FunctionType *fnType_;
    Module *parent_;
    Linkage linkage_;
    std::vector<std::unique_ptr<Argument>> args_;
    BlockList blocks_;
};

} // namespace llva

#endif // LLVA_IR_FUNCTION_H
