#include "ir/instruction.h"

#include "ir/basic_block.h"
#include "ir/function.h"
#include "ir/instructions.h"

namespace llva {

const char *
opcodeName(Opcode op)
{
    switch (op) {
      case Opcode::Add: return "add";
      case Opcode::Sub: return "sub";
      case Opcode::Mul: return "mul";
      case Opcode::Div: return "div";
      case Opcode::Rem: return "rem";
      case Opcode::And: return "and";
      case Opcode::Or: return "or";
      case Opcode::Xor: return "xor";
      case Opcode::Shl: return "shl";
      case Opcode::Shr: return "shr";
      case Opcode::SetEQ: return "seteq";
      case Opcode::SetNE: return "setne";
      case Opcode::SetLT: return "setlt";
      case Opcode::SetGT: return "setgt";
      case Opcode::SetLE: return "setle";
      case Opcode::SetGE: return "setge";
      case Opcode::Ret: return "ret";
      case Opcode::Br: return "br";
      case Opcode::MBr: return "mbr";
      case Opcode::Invoke: return "invoke";
      case Opcode::Unwind: return "unwind";
      case Opcode::Load: return "load";
      case Opcode::Store: return "store";
      case Opcode::GetElementPtr: return "getelementptr";
      case Opcode::Alloca: return "alloca";
      case Opcode::Cast: return "cast";
      case Opcode::Call: return "call";
      case Opcode::Phi: return "phi";
    }
    return "<badop>";
}

Function *
Instruction::function() const
{
    return parent_ ? parent_->parent() : nullptr;
}

unsigned
Instruction::numSuccessors() const
{
    switch (opcode_) {
      case Opcode::Br:
        return cast<BranchInst>(this)->isConditional() ? 2 : 1;
      case Opcode::MBr:
        return 1 + cast<MBrInst>(this)->numCases();
      case Opcode::Invoke:
        return 2;
      default:
        return 0;
    }
}

BasicBlock *
Instruction::successor(unsigned i) const
{
    switch (opcode_) {
      case Opcode::Br:
        return cast<BranchInst>(this)->target(i);
      case Opcode::MBr: {
        auto *m = cast<MBrInst>(this);
        return i == 0 ? m->defaultDest() : m->caseDest(i - 1);
      }
      case Opcode::Invoke: {
        auto *inv = cast<InvokeInst>(this);
        return i == 0 ? inv->normalDest() : inv->unwindDest();
      }
      default:
        panic("successor() on non-branching instruction");
    }
}

void
Instruction::replaceSuccessor(BasicBlock *from, BasicBlock *to)
{
    for (size_t i = 0, e = numOperands(); i != e; ++i)
        if (operand(i) == static_cast<Value *>(from) &&
            operand(i)->valueKind() == ValueKind::BasicBlock)
            setOperand(i, to);
}

void
Instruction::eraseFromParent()
{
    LLVA_ASSERT(parent_, "instruction has no parent");
    parent_->erase(this);
}

void
Instruction::removeFromParent()
{
    LLVA_ASSERT(parent_, "instruction has no parent");
    parent_->remove(this).release();
    parent_ = nullptr;
}

Opcode
SetCondInst::inverse(Opcode op)
{
    switch (op) {
      case Opcode::SetEQ: return Opcode::SetNE;
      case Opcode::SetNE: return Opcode::SetEQ;
      case Opcode::SetLT: return Opcode::SetGE;
      case Opcode::SetGT: return Opcode::SetLE;
      case Opcode::SetLE: return Opcode::SetGT;
      case Opcode::SetGE: return Opcode::SetLT;
      default: panic("inverse() of non-comparison opcode");
    }
}

Opcode
SetCondInst::swapped(Opcode op)
{
    switch (op) {
      case Opcode::SetEQ: return Opcode::SetEQ;
      case Opcode::SetNE: return Opcode::SetNE;
      case Opcode::SetLT: return Opcode::SetGT;
      case Opcode::SetGT: return Opcode::SetLT;
      case Opcode::SetLE: return Opcode::SetGE;
      case Opcode::SetGE: return Opcode::SetLE;
      default: panic("swapped() of non-comparison opcode");
    }
}

FunctionType *
CallInst::calleeType() const
{
    auto *pt = cast<PointerType>(callee()->type());
    return cast<FunctionType>(pt->pointee());
}

Function *
CallInst::calledFunction() const
{
    return dyn_cast<Function>(callee());
}

FunctionType *
InvokeInst::calleeType() const
{
    auto *pt = cast<PointerType>(callee()->type());
    return cast<FunctionType>(pt->pointee());
}

Type *
GetElementPtrInst::computeResultType(Type *ptr_type,
                                     const std::vector<Value *> &indices)
{
    auto *pt = dyn_cast<PointerType>(ptr_type);
    if (!pt)
        fatal("getelementptr base is not a pointer");
    if (indices.empty())
        fatal("getelementptr requires at least one index");

    // The first index steps over the pointer itself (array-of-T view).
    Type *cur = pt->pointee();
    for (size_t i = 1; i < indices.size(); ++i) {
        if (auto *at = dyn_cast<ArrayType>(cur)) {
            cur = at->element();
        } else if (auto *st = dyn_cast<StructType>(cur)) {
            auto *ci = dyn_cast<ConstantInt>(indices[i]);
            if (!ci)
                fatal("structure index must be a constant");
            if (ci->zext() >= st->numFields())
                fatal("structure index %llu out of range",
                      (unsigned long long)ci->zext());
            cur = st->field(static_cast<size_t>(ci->zext()));
        } else {
            fatal("getelementptr cannot index into %s",
                  cur->str().c_str());
        }
    }
    return cur->context().pointerTo(cur);
}

bool
GetElementPtrInst::hasAllConstantIndices() const
{
    for (unsigned i = 0, e = numIndices(); i != e; ++i)
        if (!isa<ConstantInt>(index(i)))
            return false;
    return true;
}

} // namespace llva
