/**
 * @file
 * The Instruction base class and the 28-opcode LLVA instruction set
 * (paper Table 1).
 *
 * Every instruction carries the ExceptionsEnabled attribute from
 * paper Section 3.3: exceptions raised by an instruction whose
 * attribute is false are ignored; when true they are delivered
 * precisely. The default is true for load, store, div, and rem, and
 * false for everything else.
 */

#ifndef LLVA_IR_INSTRUCTION_H
#define LLVA_IR_INSTRUCTION_H

#include <cstdint>
#include <string>

#include "ir/type.h"
#include "ir/value.h"

namespace llva {

class BasicBlock;
class Function;

/** The complete LLVA opcode set: exactly the 28 of paper Table 1. */
enum class Opcode : uint8_t {
    // Arithmetic.
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    // Bitwise.
    And,
    Or,
    Xor,
    Shl,
    Shr,
    // Comparison.
    SetEQ,
    SetNE,
    SetLT,
    SetGT,
    SetLE,
    SetGE,
    // Control flow.
    Ret,
    Br,
    MBr,
    Invoke,
    Unwind,
    // Memory.
    Load,
    Store,
    GetElementPtr,
    Alloca,
    // Other.
    Cast,
    Call,
    Phi,
};

constexpr unsigned kNumOpcodes = 28;

/** Assembly mnemonic for an opcode ("add", "getelementptr", ...). */
const char *opcodeName(Opcode op);

/** The ExceptionsEnabled default for \p op (Section 3.3). */
constexpr bool
defaultExceptionsEnabled(Opcode op)
{
    return op == Opcode::Load || op == Opcode::Store ||
           op == Opcode::Div || op == Opcode::Rem;
}

/**
 * Base class for all LLVA instructions. An instruction is a User (it
 * references operand Values) and a Value (its result can be used).
 */
class Instruction : public User
{
  public:
    Opcode opcode() const { return opcode_; }
    const char *opcodeStr() const { return opcodeName(opcode_); }

    BasicBlock *parent() const { return parent_; }
    void setParent(BasicBlock *bb) { parent_ = bb; }

    /** Function containing this instruction (via its block). */
    Function *function() const;

    /** ExceptionsEnabled attribute (paper Section 3.3). */
    bool exceptionsEnabled() const { return exceptionsEnabled_; }
    void setExceptionsEnabled(bool e) { exceptionsEnabled_ = e; }

    bool
    isTerminator() const
    {
        switch (opcode_) {
          case Opcode::Ret:
          case Opcode::Br:
          case Opcode::MBr:
          case Opcode::Invoke:
          case Opcode::Unwind:
            return true;
          default:
            return false;
        }
    }

    bool
    isBinaryOp() const
    {
        return opcode_ >= Opcode::Add && opcode_ <= Opcode::Shr;
    }

    bool
    isComparison() const
    {
        return opcode_ >= Opcode::SetEQ && opcode_ <= Opcode::SetGE;
    }

    /** True if this instruction writes memory or transfers control. */
    bool
    hasSideEffects() const
    {
        switch (opcode_) {
          case Opcode::Store:
          case Opcode::Call:
          case Opcode::Invoke:
          case Opcode::Ret:
          case Opcode::Br:
          case Opcode::MBr:
          case Opcode::Unwind:
            return true;
          default:
            return false;
        }
    }

    /**
     * True if the instruction may raise an exception that will be
     * delivered (i.e. it can trap and ExceptionsEnabled is set).
     */
    bool
    mayTrap() const
    {
        return exceptionsEnabled_ &&
               (opcode_ == Opcode::Load || opcode_ == Opcode::Store ||
                opcode_ == Opcode::Div || opcode_ == Opcode::Rem);
    }

    /** Number of successor blocks (terminators only). */
    unsigned numSuccessors() const;
    /** Successor block \p i of a terminator. */
    BasicBlock *successor(unsigned i) const;
    /** Rewrite any successor slot equal to \p from to \p to. */
    void replaceSuccessor(BasicBlock *from, BasicBlock *to);

    /** Unlink from the parent block and destroy. */
    void eraseFromParent();
    /** Unlink from the parent block without destroying. */
    void removeFromParent();

    /** Deep copy with identical operands (caller fixes names/SSA). */
    virtual Instruction *clone() const = 0;

    static bool
    classof(const Value *v)
    {
        return v->valueKind() == ValueKind::Instruction;
    }

  protected:
    Instruction(Type *type, Opcode opcode)
        : User(type, ValueKind::Instruction), opcode_(opcode),
          exceptionsEnabled_(defaultExceptionsEnabled(opcode))
    {}

  private:
    BasicBlock *parent_ = nullptr;
    Opcode opcode_;
    bool exceptionsEnabled_;
};

} // namespace llva

#endif // LLVA_IR_INSTRUCTION_H
