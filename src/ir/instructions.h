/**
 * @file
 * Concrete instruction classes for the 28 LLVA opcodes.
 */

#ifndef LLVA_IR_INSTRUCTIONS_H
#define LLVA_IR_INSTRUCTIONS_H

#include <vector>

#include "ir/basic_block.h"
#include "ir/constant.h"
#include "ir/instruction.h"

namespace llva {

class Function;

/**
 * Arithmetic and bitwise operators: add, sub, mul, div, rem, and,
 * or, xor, shl, shr. The result type equals the left operand's type;
 * shift amounts are ubyte (paper-era convention).
 */
class BinaryOperator : public Instruction
{
  public:
    BinaryOperator(Opcode op, Value *lhs, Value *rhs)
        : Instruction(lhs->type(), op)
    {
        addOperand(lhs);
        addOperand(rhs);
    }

    Value *lhs() const { return operand(0); }
    Value *rhs() const { return operand(1); }

    Instruction *
    clone() const override
    {
        auto *i = new BinaryOperator(opcode(), operand(0), operand(1));
        i->setExceptionsEnabled(exceptionsEnabled());
        return i;
    }

    static bool
    classof(const Value *v)
    {
        auto *i = dyn_cast<Instruction>(v);
        return i && i->isBinaryOp();
    }
};

/**
 * Comparison operators seteq..setge; both operands share a type and
 * the result is bool.
 */
class SetCondInst : public Instruction
{
  public:
    SetCondInst(Opcode op, Value *lhs, Value *rhs)
        : Instruction(lhs->type()->context().boolTy(), op)
    {
        addOperand(lhs);
        addOperand(rhs);
    }

    Value *lhs() const { return operand(0); }
    Value *rhs() const { return operand(1); }

    /** seteq -> setne, setlt -> setge, etc. */
    static Opcode inverse(Opcode op);
    /** setlt -> setgt (operand swap), seteq -> seteq, etc. */
    static Opcode swapped(Opcode op);

    Instruction *
    clone() const override
    {
        return new SetCondInst(opcode(), operand(0), operand(1));
    }

    static bool
    classof(const Value *v)
    {
        auto *i = dyn_cast<Instruction>(v);
        return i && i->isComparison();
    }
};

/** Function return, with an optional value. */
class ReturnInst : public Instruction
{
  public:
    explicit ReturnInst(TypeContext &ctx, Value *value = nullptr)
        : Instruction(ctx.voidTy(), Opcode::Ret)
    {
        if (value)
            addOperand(value);
    }

    Value *
    returnValue() const
    {
        return numOperands() ? operand(0) : nullptr;
    }

    Instruction *
    clone() const override
    {
        return new ReturnInst(type()->context(), returnValue());
    }

    static bool
    classof(const Value *v)
    {
        auto *i = dyn_cast<Instruction>(v);
        return i && i->opcode() == Opcode::Ret;
    }
};

/** Conditional or unconditional branch. */
class BranchInst : public Instruction
{
  public:
    /** Unconditional: `br label %dest`. */
    BranchInst(TypeContext &ctx, BasicBlock *dest)
        : Instruction(ctx.voidTy(), Opcode::Br)
    {
        addOperand(dest);
    }

    /** Conditional: `br bool %c, label %t, label %f`. */
    BranchInst(TypeContext &ctx, Value *cond, BasicBlock *if_true,
               BasicBlock *if_false)
        : Instruction(ctx.voidTy(), Opcode::Br)
    {
        addOperand(cond);
        addOperand(if_true);
        addOperand(if_false);
    }

    bool isConditional() const { return numOperands() == 3; }

    Value *
    condition() const
    {
        LLVA_ASSERT(isConditional(), "unconditional branch");
        return operand(0);
    }

    BasicBlock *
    target(unsigned i) const
    {
        return static_cast<BasicBlock *>(
            operand(isConditional() ? 1 + i : i));
    }

    Instruction *
    clone() const override
    {
        auto &ctx = type()->context();
        if (isConditional())
            return new BranchInst(ctx, condition(), target(0),
                                  target(1));
        return new BranchInst(ctx, target(0));
    }

    static bool
    classof(const Value *v)
    {
        auto *i = dyn_cast<Instruction>(v);
        return i && i->opcode() == Opcode::Br;
    }
};

/**
 * Multi-way branch (mbr): dispatch on an integer value over constant
 * cases with a default target.
 * Operand layout: [value, default, c0, b0, c1, b1, ...].
 */
class MBrInst : public Instruction
{
  public:
    MBrInst(TypeContext &ctx, Value *value, BasicBlock *def)
        : Instruction(ctx.voidTy(), Opcode::MBr)
    {
        addOperand(value);
        addOperand(def);
    }

    Value *condition() const { return operand(0); }

    BasicBlock *
    defaultDest() const
    {
        return static_cast<BasicBlock *>(operand(1));
    }

    unsigned numCases() const { return (numOperands() - 2) / 2; }

    ConstantInt *
    caseValue(unsigned i) const
    {
        return cast<ConstantInt>(operand(2 + 2 * i));
    }

    BasicBlock *
    caseDest(unsigned i) const
    {
        return static_cast<BasicBlock *>(operand(3 + 2 * i));
    }

    void
    addCase(ConstantInt *val, BasicBlock *dest)
    {
        addOperand(val);
        addOperand(dest);
    }

    /** Remove case \p i (not the default). */
    void
    removeCase(unsigned i)
    {
        removeOperand(2 + 2 * i); // value
        removeOperand(2 + 2 * i); // dest (shifted down)
    }

    Instruction *
    clone() const override
    {
        auto *m = new MBrInst(type()->context(), condition(),
                              defaultDest());
        for (unsigned i = 0, e = numCases(); i != e; ++i)
            m->addCase(caseValue(i), caseDest(i));
        return m;
    }

    static bool
    classof(const Value *v)
    {
        auto *i = dyn_cast<Instruction>(v);
        return i && i->opcode() == Opcode::MBr;
    }
};

/**
 * invoke: call a function with an exceptional continuation. Control
 * resumes at the normal destination on return, or at the unwind
 * destination if the callee (transitively) executes `unwind`.
 * Operand layout: [callee, args..., normal, unwind].
 */
class InvokeInst : public Instruction
{
  public:
    InvokeInst(Type *result_type, Value *callee,
               const std::vector<Value *> &args, BasicBlock *normal,
               BasicBlock *unwind)
        : Instruction(result_type, Opcode::Invoke)
    {
        addOperand(callee);
        for (Value *a : args)
            addOperand(a);
        addOperand(normal);
        addOperand(unwind);
    }

    Value *callee() const { return operand(0); }
    unsigned numArgs() const { return numOperands() - 3; }
    Value *arg(unsigned i) const { return operand(1 + i); }

    BasicBlock *
    normalDest() const
    {
        return static_cast<BasicBlock *>(operand(numOperands() - 2));
    }

    BasicBlock *
    unwindDest() const
    {
        return static_cast<BasicBlock *>(operand(numOperands() - 1));
    }

    /** The callee's function type (through the pointer if indirect). */
    FunctionType *calleeType() const;

    Instruction *
    clone() const override
    {
        std::vector<Value *> args;
        for (unsigned i = 0, e = numArgs(); i != e; ++i)
            args.push_back(arg(i));
        return new InvokeInst(type(), callee(), args, normalDest(),
                              unwindDest());
    }

    static bool
    classof(const Value *v)
    {
        auto *i = dyn_cast<Instruction>(v);
        return i && i->opcode() == Opcode::Invoke;
    }
};

/** unwind: pop frames to the nearest dynamically-enclosing invoke. */
class UnwindInst : public Instruction
{
  public:
    explicit UnwindInst(TypeContext &ctx)
        : Instruction(ctx.voidTy(), Opcode::Unwind)
    {}

    Instruction *
    clone() const override
    {
        return new UnwindInst(type()->context());
    }

    static bool
    classof(const Value *v)
    {
        auto *i = dyn_cast<Instruction>(v);
        return i && i->opcode() == Opcode::Unwind;
    }
};

/** load: read a scalar from memory through a typed pointer. */
class LoadInst : public Instruction
{
  public:
    explicit LoadInst(Value *ptr)
        : Instruction(cast<PointerType>(ptr->type())->pointee(),
                      Opcode::Load)
    {
        addOperand(ptr);
    }

    Value *pointer() const { return operand(0); }

    Instruction *
    clone() const override
    {
        auto *l = new LoadInst(pointer());
        l->setExceptionsEnabled(exceptionsEnabled());
        return l;
    }

    static bool
    classof(const Value *v)
    {
        auto *i = dyn_cast<Instruction>(v);
        return i && i->opcode() == Opcode::Load;
    }
};

/** store: write a scalar to memory through a typed pointer. */
class StoreInst : public Instruction
{
  public:
    StoreInst(Value *value, Value *ptr)
        : Instruction(value->type()->context().voidTy(), Opcode::Store)
    {
        addOperand(value);
        addOperand(ptr);
    }

    Value *value() const { return operand(0); }
    Value *pointer() const { return operand(1); }

    Instruction *
    clone() const override
    {
        auto *s = new StoreInst(value(), pointer());
        s->setExceptionsEnabled(exceptionsEnabled());
        return s;
    }

    static bool
    classof(const Value *v)
    {
        auto *i = dyn_cast<Instruction>(v);
        return i && i->opcode() == Opcode::Store;
    }
};

/**
 * getelementptr: type-safe pointer arithmetic (paper Section 3.1).
 * Offsets are expressed symbolically — `long` element indexes for
 * arrays/pointers and constant `ubyte` field numbers for structures —
 * so the representation never exposes pointer size or endianness.
 */
class GetElementPtrInst : public Instruction
{
  public:
    GetElementPtrInst(Value *ptr, const std::vector<Value *> &indices)
        : Instruction(computeResultType(ptr->type(), indices),
                      Opcode::GetElementPtr)
    {
        addOperand(ptr);
        for (Value *idx : indices)
            addOperand(idx);
    }

    Value *pointer() const { return operand(0); }
    unsigned numIndices() const { return numOperands() - 1; }
    Value *index(unsigned i) const { return operand(1 + i); }

    /**
     * The pointer type produced by indexing \p ptr_type with
     * \p indices; fatal()s on invalid index sequences.
     */
    static Type *computeResultType(Type *ptr_type,
                                   const std::vector<Value *> &indices);

    /** True if every index is a constant. */
    bool hasAllConstantIndices() const;

    Instruction *
    clone() const override
    {
        std::vector<Value *> idx;
        for (unsigned i = 0, e = numIndices(); i != e; ++i)
            idx.push_back(index(i));
        return new GetElementPtrInst(pointer(), idx);
    }

    static bool
    classof(const Value *v)
    {
        auto *i = dyn_cast<Instruction>(v);
        return i && i->opcode() == Opcode::GetElementPtr;
    }
};

/**
 * alloca: allocate stack space in the current frame and return a
 * typed pointer to it (paper Section 3.2: the stack frame layout is
 * abstracted by making all stack allocation explicit). Fixed-size
 * allocas in the entry block are preallocated by the translator.
 */
class AllocaInst : public Instruction
{
  public:
    AllocaInst(Type *allocated, Value *array_size = nullptr)
        : Instruction(allocated->context().pointerTo(allocated),
                      Opcode::Alloca),
          allocated_(allocated)
    {
        if (array_size)
            addOperand(array_size);
    }

    Type *allocatedType() const { return allocated_; }

    Value *
    arraySize() const
    {
        return numOperands() ? operand(0) : nullptr;
    }

    /** True when the allocation size is a compile-time constant. */
    bool
    isStatic() const
    {
        return !arraySize() || isa<ConstantInt>(arraySize());
    }

    Instruction *
    clone() const override
    {
        return new AllocaInst(allocated_, arraySize());
    }

    static bool
    classof(const Value *v)
    {
        auto *i = dyn_cast<Instruction>(v);
        return i && i->opcode() == Opcode::Alloca;
    }

  private:
    Type *allocated_;
};

/**
 * cast: the sole type-conversion mechanism (paper Section 3.1 —
 * "no mixed-type operations and hence, no implicit type coercion").
 */
class CastInst : public Instruction
{
  public:
    CastInst(Value *value, Type *dest_type)
        : Instruction(dest_type, Opcode::Cast)
    {
        addOperand(value);
    }

    Value *value() const { return operand(0); }
    Type *destType() const { return type(); }

    Instruction *
    clone() const override
    {
        return new CastInst(value(), type());
    }

    static bool
    classof(const Value *v)
    {
        auto *i = dyn_cast<Instruction>(v);
        return i && i->opcode() == Opcode::Cast;
    }
};

/**
 * call: abstract calling convention — parameter passing and stack
 * adjustment are hidden behind this single instruction and chosen by
 * the translator (paper Section 3.2).
 * Operand layout: [callee, args...].
 */
class CallInst : public Instruction
{
  public:
    CallInst(Type *result_type, Value *callee,
             const std::vector<Value *> &args)
        : Instruction(result_type, Opcode::Call)
    {
        addOperand(callee);
        for (Value *a : args)
            addOperand(a);
    }

    Value *callee() const { return operand(0); }
    unsigned numArgs() const { return numOperands() - 1; }
    Value *arg(unsigned i) const { return operand(1 + i); }

    /** The callee's function type (through the pointer if indirect). */
    FunctionType *calleeType() const;

    /** Directly-called Function, or nullptr for indirect calls. */
    Function *calledFunction() const;

    Instruction *
    clone() const override
    {
        std::vector<Value *> args;
        for (unsigned i = 0, e = numArgs(); i != e; ++i)
            args.push_back(arg(i));
        return new CallInst(type(), callee(), args);
    }

    static bool
    classof(const Value *v)
    {
        auto *i = dyn_cast<Instruction>(v);
        return i && i->opcode() == Opcode::Call;
    }
};

/**
 * phi: SSA merge at a control-flow join (paper Section 3.1). The
 * translator eliminates phis by inserting copies in predecessors,
 * which register allocation then usually coalesces away.
 * Operand layout: [v0, b0, v1, b1, ...].
 */
class PhiNode : public Instruction
{
  public:
    explicit PhiNode(Type *type)
        : Instruction(type, Opcode::Phi)
    {}

    unsigned numIncoming() const { return numOperands() / 2; }
    Value *incomingValue(unsigned i) const { return operand(2 * i); }

    BasicBlock *
    incomingBlock(unsigned i) const
    {
        return static_cast<BasicBlock *>(operand(2 * i + 1));
    }

    void
    addIncoming(Value *value, BasicBlock *block)
    {
        addOperand(value);
        addOperand(block);
    }

    void setIncomingValue(unsigned i, Value *v) { setOperand(2 * i, v); }

    /** Index of the entry for predecessor \p bb, or -1. */
    int
    incomingIndexFor(const BasicBlock *bb) const
    {
        for (unsigned i = 0, e = numIncoming(); i != e; ++i)
            if (incomingBlock(i) == bb)
                return static_cast<int>(i);
        return -1;
    }

    Value *
    incomingValueFor(const BasicBlock *bb) const
    {
        int i = incomingIndexFor(bb);
        return i < 0 ? nullptr : incomingValue(static_cast<unsigned>(i));
    }

    void
    removeIncoming(unsigned i)
    {
        removeOperand(2 * i); // value
        removeOperand(2 * i); // block (shifted down)
    }

    Instruction *
    clone() const override
    {
        auto *p = new PhiNode(type());
        for (unsigned i = 0, e = numIncoming(); i != e; ++i)
            p->addIncoming(incomingValue(i), incomingBlock(i));
        return p;
    }

    static bool
    classof(const Value *v)
    {
        auto *i = dyn_cast<Instruction>(v);
        return i && i->opcode() == Opcode::Phi;
    }
};

} // namespace llva

#endif // LLVA_IR_INSTRUCTIONS_H
