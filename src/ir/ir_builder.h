/**
 * @file
 * IRBuilder: convenience interface for constructing LLVA instructions
 * at an insertion point. This is the API external compilers (and our
 * workload generators) use to emit virtual object code.
 */

#ifndef LLVA_IR_IR_BUILDER_H
#define LLVA_IR_IR_BUILDER_H

#include <memory>
#include <string>
#include <vector>

#include "ir/instructions.h"
#include "ir/module.h"

namespace llva {

class IRBuilder
{
  public:
    explicit IRBuilder(Module &m)
        : m_(m)
    {}

    IRBuilder(Module &m, BasicBlock *bb)
        : m_(m), block_(bb)
    {}

    Module &module() const { return m_; }
    TypeContext &types() const { return m_.types(); }

    /** Append subsequent instructions to the end of \p bb. */
    void setInsertPoint(BasicBlock *bb) { block_ = bb; }
    BasicBlock *insertBlock() const { return block_; }

    // --- Constants -----------------------------------------------------

    ConstantInt *cInt(int64_t v) { return m_.constantInt(types().intTy(), static_cast<uint64_t>(v)); }
    ConstantInt *cUInt(uint64_t v) { return m_.constantInt(types().uintTy(), v); }
    ConstantInt *cLong(int64_t v) { return m_.constantInt(types().longTy(), static_cast<uint64_t>(v)); }
    ConstantInt *cULong(uint64_t v) { return m_.constantInt(types().ulongTy(), v); }
    ConstantInt *cUByte(uint8_t v) { return m_.constantInt(types().ubyteTy(), v); }
    ConstantInt *cBool(bool v) { return m_.constantBool(v); }
    ConstantFP *cDouble(double v) { return m_.constantFP(types().doubleTy(), v); }
    ConstantFP *cFloat(double v) { return m_.constantFP(types().floatTy(), v); }
    ConstantNull *cNull(Type *pointee) { return m_.constantNull(types().pointerTo(pointee)); }

    // --- Instructions --------------------------------------------------

    Value *
    binary(Opcode op, Value *lhs, Value *rhs, const std::string &name = "")
    {
        return insert(new BinaryOperator(op, lhs, rhs), name);
    }

    Value *add(Value *l, Value *r, const std::string &n = "") { return binary(Opcode::Add, l, r, n); }
    Value *sub(Value *l, Value *r, const std::string &n = "") { return binary(Opcode::Sub, l, r, n); }
    Value *mul(Value *l, Value *r, const std::string &n = "") { return binary(Opcode::Mul, l, r, n); }
    Value *div(Value *l, Value *r, const std::string &n = "") { return binary(Opcode::Div, l, r, n); }
    Value *rem(Value *l, Value *r, const std::string &n = "") { return binary(Opcode::Rem, l, r, n); }
    Value *band(Value *l, Value *r, const std::string &n = "") { return binary(Opcode::And, l, r, n); }
    Value *bor(Value *l, Value *r, const std::string &n = "") { return binary(Opcode::Or, l, r, n); }
    Value *bxor(Value *l, Value *r, const std::string &n = "") { return binary(Opcode::Xor, l, r, n); }
    Value *shl(Value *l, Value *r, const std::string &n = "") { return binary(Opcode::Shl, l, r, n); }
    Value *shr(Value *l, Value *r, const std::string &n = "") { return binary(Opcode::Shr, l, r, n); }

    Value *
    cmp(Opcode op, Value *lhs, Value *rhs, const std::string &name = "")
    {
        return insert(new SetCondInst(op, lhs, rhs), name);
    }

    Value *setEQ(Value *l, Value *r, const std::string &n = "") { return cmp(Opcode::SetEQ, l, r, n); }
    Value *setNE(Value *l, Value *r, const std::string &n = "") { return cmp(Opcode::SetNE, l, r, n); }
    Value *setLT(Value *l, Value *r, const std::string &n = "") { return cmp(Opcode::SetLT, l, r, n); }
    Value *setGT(Value *l, Value *r, const std::string &n = "") { return cmp(Opcode::SetGT, l, r, n); }
    Value *setLE(Value *l, Value *r, const std::string &n = "") { return cmp(Opcode::SetLE, l, r, n); }
    Value *setGE(Value *l, Value *r, const std::string &n = "") { return cmp(Opcode::SetGE, l, r, n); }

    Instruction *
    retVoid()
    {
        return insert(new ReturnInst(types()), "");
    }

    Instruction *
    ret(Value *v)
    {
        return insert(new ReturnInst(types(), v), "");
    }

    Instruction *
    br(BasicBlock *dest)
    {
        return insert(new BranchInst(types(), dest), "");
    }

    Instruction *
    condBr(Value *cond, BasicBlock *t, BasicBlock *f)
    {
        return insert(new BranchInst(types(), cond, t, f), "");
    }

    MBrInst *
    mbr(Value *value, BasicBlock *def)
    {
        return static_cast<MBrInst *>(
            insert(new MBrInst(types(), value, def), ""));
    }

    Value *
    invoke(Function *callee, const std::vector<Value *> &args,
           BasicBlock *normal, BasicBlock *unwind,
           const std::string &name = "")
    {
        return insert(
            new InvokeInst(callee->returnType(), callee, args, normal,
                           unwind),
            name);
    }

    Instruction *
    unwind()
    {
        return insert(new UnwindInst(types()), "");
    }

    Value *
    load(Value *ptr, const std::string &name = "")
    {
        return insert(new LoadInst(ptr), name);
    }

    Instruction *
    store(Value *value, Value *ptr)
    {
        return insert(new StoreInst(value, ptr), "");
    }

    Value *
    gep(Value *ptr, const std::vector<Value *> &indices,
        const std::string &name = "")
    {
        return insert(new GetElementPtrInst(ptr, indices), name);
    }

    /** gep %p, long i — index a pointer-as-array. */
    Value *
    gepAt(Value *ptr, Value *index, const std::string &name = "")
    {
        return gep(ptr, {index}, name);
    }

    /** gep %p, long 0, ubyte field — address a struct field. */
    Value *
    gepField(Value *ptr, unsigned field, const std::string &name = "")
    {
        return gep(ptr, {cLong(0), cUByte(static_cast<uint8_t>(field))},
                   name);
    }

    Value *
    alloca_(Type *type, Value *array_size = nullptr,
            const std::string &name = "")
    {
        return insert(new AllocaInst(type, array_size), name);
    }

    Value *
    cast_(Value *v, Type *dest, const std::string &name = "")
    {
        if (v->type() == dest)
            return v;
        return insert(new CastInst(v, dest), name);
    }

    Value *
    call(Value *callee, const std::vector<Value *> &args,
         const std::string &name = "")
    {
        auto *pt = cast<PointerType>(callee->type());
        auto *ft = cast<FunctionType>(pt->pointee());
        return insert(new CallInst(ft->returnType(), callee, args),
                      name);
    }

    PhiNode *
    phi(Type *type, const std::string &name = "")
    {
        return static_cast<PhiNode *>(insert(new PhiNode(type), name));
    }

  private:
    Instruction *
    insert(Instruction *inst, const std::string &name)
    {
        LLVA_ASSERT(block_, "IRBuilder has no insertion point");
        if (!name.empty())
            inst->setName(name);
        return block_->append(std::unique_ptr<Instruction>(inst));
    }

    Module &m_;
    BasicBlock *block_ = nullptr;
};

} // namespace llva

#endif // LLVA_IR_IR_BUILDER_H
