#include "ir/module.h"

#include <sstream>

#include "ir/instructions.h"

namespace llva {

Module::Module(const std::string &name)
    : name_(name)
{}

Module::~Module()
{
    // Functions/globals may reference each other (calls, global
    // references); sever all def-use edges before anything dies.
    for (auto &f : functions_)
        for (auto &bb : *f)
            for (auto &inst : *bb)
                inst->dropAllOperands();
}

Function *
Module::createFunction(FunctionType *type, const std::string &name,
                       Linkage linkage)
{
    LLVA_ASSERT(!getFunction(name), "duplicate function %%%s",
                name.c_str());
    auto f = std::make_unique<Function>(type, name, linkage, this);
    functions_.push_back(std::move(f));
    return functions_.back().get();
}

Function *
Module::getFunction(const std::string &name) const
{
    for (const auto &f : functions_)
        if (f->name() == name)
            return f.get();
    return nullptr;
}

Function *
Module::getOrInsertFunction(const std::string &name, FunctionType *type)
{
    if (Function *f = getFunction(name)) {
        LLVA_ASSERT(f->functionType() == type,
                    "function %%%s redeclared with different type",
                    name.c_str());
        return f;
    }
    return createFunction(type, name);
}

void
Module::eraseFunction(Function *f)
{
    for (auto it = functions_.begin(); it != functions_.end(); ++it) {
        if (it->get() == f) {
            // Destroy the body so block/argument uses disappear.
            for (auto &bb : *f)
                bb->clear();
            LLVA_ASSERT(!f->hasUses(),
                        "erasing function %%%s that still has users",
                        f->name().c_str());
            functions_.erase(it);
            return;
        }
    }
    panic("eraseFunction: function not in module");
}

GlobalVariable *
Module::createGlobal(Type *contained, const std::string &name,
                     Constant *init, bool is_constant, Linkage linkage)
{
    LLVA_ASSERT(!getGlobal(name), "duplicate global %%%s", name.c_str());
    auto gv = std::make_unique<GlobalVariable>(
        types_.pointerTo(contained), name, init, is_constant, linkage);
    globals_.push_back(std::move(gv));
    return globals_.back().get();
}

GlobalVariable *
Module::getGlobal(const std::string &name) const
{
    for (const auto &g : globals_)
        if (g->name() == name)
            return g.get();
    return nullptr;
}

ConstantInt *
Module::constantInt(Type *type, uint64_t bits)
{
    LLVA_ASSERT(type->isInteger() || type->isBool(),
                "constantInt of non-integer type %s",
                type->str().c_str());
    // Canonicalize to the type's width (sign- or zero-extended).
    unsigned width = type->integerBitWidth();
    if (width < 64) {
        uint64_t mask = (1ull << width) - 1;
        bits &= mask;
        if (type->isSignedInteger() && (bits >> (width - 1)) & 1)
            bits |= ~mask;
    }
    auto key = std::make_pair(type, bits);
    auto it = intConsts_.find(key);
    if (it != intConsts_.end())
        return it->second;
    auto *c = new ConstantInt(type, bits);
    ownedConstants_.emplace_back(c);
    intConsts_[key] = c;
    return c;
}

ConstantInt *
Module::constantBool(bool b)
{
    return constantInt(types_.boolTy(), b ? 1 : 0);
}

ConstantFP *
Module::constantFP(Type *type, double value)
{
    LLVA_ASSERT(type->isFloatingPoint(), "constantFP of non-FP type");
    if (type->kind() == TypeKind::Float)
        value = static_cast<float>(value);
    auto key = std::make_pair(type, value);
    auto it = fpConsts_.find(key);
    if (it != fpConsts_.end())
        return it->second;
    auto *c = new ConstantFP(type, value);
    ownedConstants_.emplace_back(c);
    fpConsts_[key] = c;
    return c;
}

ConstantNull *
Module::constantNull(PointerType *type)
{
    auto it = nullConsts_.find(type);
    if (it != nullConsts_.end())
        return it->second;
    auto *c = new ConstantNull(type);
    ownedConstants_.emplace_back(c);
    nullConsts_[type] = c;
    return c;
}

ConstantUndef *
Module::constantUndef(Type *type)
{
    auto it = undefConsts_.find(type);
    if (it != undefConsts_.end())
        return it->second;
    auto *c = new ConstantUndef(type);
    ownedConstants_.emplace_back(c);
    undefConsts_[type] = c;
    return c;
}

ConstantAggregate *
Module::constantAggregate(Type *type, std::vector<Constant *> elems)
{
    auto agg =
        std::make_unique<ConstantAggregate>(type, std::move(elems));
    ownedAggregates_.push_back(std::move(agg));
    return ownedAggregates_.back().get();
}

ConstantString *
Module::constantString(const std::string &data, bool nul)
{
    std::string bytes = data;
    if (nul)
        bytes.push_back('\0');
    auto *type = types_.arrayOf(types_.ubyteTy(), bytes.size());
    auto *c = new ConstantString(type, bytes);
    ownedConstants_.emplace_back(c);
    return c;
}

Constant *
Module::zeroOf(Type *type)
{
    if (type->isInteger() || type->isBool())
        return constantInt(type, 0);
    if (type->isFloatingPoint())
        return constantFP(type, 0.0);
    if (auto *pt = dyn_cast<PointerType>(type))
        return constantNull(const_cast<PointerType *>(pt));
    panic("zeroOf: type %s has no zero constant", type->str().c_str());
}

size_t
Module::instructionCount() const
{
    size_t n = 0;
    for (const auto &f : functions_)
        n += f->instructionCount();
    return n;
}

std::string
Module::str() const
{
    std::ostringstream os;
    print(os);
    return os.str();
}

} // namespace llva
