/**
 * @file
 * Module: a translation unit of virtual object code.
 *
 * Carries the representation-portability flags of paper Section 3.2:
 * the pointer size and endianness the producing compiler assumed,
 * recorded so a translator for a different I-ISA configuration can
 * detect (and, for type-safe code, ignore) the difference.
 */

#ifndef LLVA_IR_MODULE_H
#define LLVA_IR_MODULE_H

#include <list>
#include <memory>
#include <string>
#include <vector>

#include "ir/constant.h"
#include "ir/function.h"
#include "ir/type.h"

namespace llva {

/** The I-ISA configuration flags encoded in object files (§3.2). */
struct TargetFlags
{
    unsigned pointerSize = 8; ///< 4 or 8 bytes.
    bool bigEndian = false;
};

class Module
{
  public:
    explicit Module(const std::string &name);
    ~Module();

    Module(const Module &) = delete;
    Module &operator=(const Module &) = delete;

    const std::string &name() const { return name_; }
    TypeContext &types() { return types_; }
    const TypeContext &types() const { return types_; }
    const TargetFlags &targetFlags() const { return flags_; }
    void setTargetFlags(const TargetFlags &f) { flags_ = f; }
    unsigned pointerSize() const { return flags_.pointerSize; }

    // --- Functions -----------------------------------------------------

    /** Create a new function (definition starts empty/declaration). */
    Function *createFunction(FunctionType *type, const std::string &name,
                             Linkage linkage = Linkage::External);

    /** Find a function by name (nullptr if absent). */
    Function *getFunction(const std::string &name) const;

    /** Find-or-create a declaration with the given type. */
    Function *getOrInsertFunction(const std::string &name,
                                  FunctionType *type);

    /** Remove and destroy a function (must have no users). */
    void eraseFunction(Function *f);

    const std::list<std::unique_ptr<Function>> &functions() const
    {
        return functions_;
    }

    // --- Globals -------------------------------------------------------

    GlobalVariable *createGlobal(Type *contained, const std::string &name,
                                 Constant *init, bool is_constant = false,
                                 Linkage linkage = Linkage::External);

    GlobalVariable *getGlobal(const std::string &name) const;

    const std::list<std::unique_ptr<GlobalVariable>> &globals() const
    {
        return globals_;
    }

    // --- Constants (interned) ------------------------------------------

    ConstantInt *constantInt(Type *type, uint64_t bits);
    ConstantInt *constantBool(bool b);
    ConstantFP *constantFP(Type *type, double value);
    ConstantNull *constantNull(PointerType *type);
    ConstantUndef *constantUndef(Type *type);
    ConstantAggregate *constantAggregate(Type *type,
                                         std::vector<Constant *> elems);
    /** [N x ubyte] string constant; appends a NUL when \p nul. */
    ConstantString *constantString(const std::string &data,
                                   bool nul = true);

    /** The zero/null constant of any first-class type. */
    Constant *zeroOf(Type *type);

    // --- Convenience ---------------------------------------------------

    /** Sum of instructionCount over all defined functions. */
    size_t instructionCount() const;

    /** Print the whole module in LLVA assembly syntax. */
    void print(std::ostream &os) const;
    std::string str() const;

  private:
    std::string name_;
    TypeContext types_;
    TargetFlags flags_;
    std::list<std::unique_ptr<Function>> functions_;
    std::list<std::unique_ptr<GlobalVariable>> globals_;

    // Interning tables / ownership for constants.
    std::map<std::pair<Type *, uint64_t>, ConstantInt *> intConsts_;
    std::map<std::pair<Type *, double>, ConstantFP *> fpConsts_;
    std::map<PointerType *, ConstantNull *> nullConsts_;
    std::map<Type *, ConstantUndef *> undefConsts_;
    std::vector<std::unique_ptr<Constant>> ownedConstants_;
    std::vector<std::unique_ptr<ConstantAggregate>> ownedAggregates_;
};

} // namespace llva

#endif // LLVA_IR_MODULE_H
