/**
 * @file
 * The LLVA assembly writer. Output follows the paper's Fig. 2 syntax
 * and round-trips through the parser.
 */

#include <cstdio>
#include <map>
#include <ostream>
#include <set>
#include <string>

#include "ir/instructions.h"
#include "ir/module.h"

namespace llva {

namespace {

/** Words that cannot stand alone as a label or value name. */
bool
isReservedWord(const std::string &name)
{
    static const std::set<std::string> reserved = {
        // types
        "void", "bool", "ubyte", "sbyte", "ushort", "short", "uint",
        "int", "ulong", "long", "float", "double", "label",
        // opcodes
        "add", "sub", "mul", "div", "rem", "and", "or", "xor",
        "shl", "shr", "seteq", "setne", "setlt", "setgt", "setle",
        "setge", "ret", "br", "mbr", "invoke", "unwind", "load",
        "store", "getelementptr", "alloca", "cast", "call", "phi",
        // structure keywords and literals
        "declare", "internal", "global", "constant", "target",
        "type", "to", "null", "true", "false", "undef",
        "zeroinitializer", "x",
    };
    return reserved.count(name) != 0;
}

/** Is \p name printable without renaming? */
bool
isSimpleName(const std::string &name)
{
    if (name.empty() || isReservedWord(name))
        return false;
    for (char c : name)
        if (!isalnum(static_cast<unsigned char>(c)) && c != '.' &&
            c != '_' && c != '$' && c != '-')
            return false;
    return true;
}

std::string
fpToString(double v)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.17g", v);
    std::string s(buf);
    // Ensure the token is recognizably floating-point.
    if (s.find_first_of(".eEnN") == std::string::npos)
        s += ".0";
    return s;
}

/** Per-module printing state: local value names per function. */
class Printer
{
  public:
    explicit Printer(const Module &m, std::ostream &os)
        : m_(m), os_(os)
    {}

    void
    run()
    {
        os_ << "; module '" << m_.name() << "'\n";
        os_ << "target pointersize = "
            << m_.targetFlags().pointerSize * 8 << "\n";
        os_ << "target endian = "
            << (m_.targetFlags().bigEndian ? "big" : "little")
            << "\n\n";

        for (const auto &[name, st] : m_.types().namedTypes()) {
            os_ << "%" << name << " = type { ";
            for (size_t i = 0; i < st->numFields(); ++i) {
                if (i)
                    os_ << ", ";
                os_ << st->field(i)->str();
            }
            os_ << " }\n";
        }
        if (!m_.types().namedTypes().empty())
            os_ << "\n";

        for (const auto &gv : m_.globals())
            printGlobal(gv.get());
        if (!m_.globals().empty())
            os_ << "\n";

        for (const auto &f : m_.functions())
            printFunction(f.get());
    }

  private:
    void
    printGlobal(const GlobalVariable *gv)
    {
        os_ << "%" << gv->name() << " = ";
        if (gv->linkage() == Linkage::Internal)
            os_ << "internal ";
        os_ << (gv->isConstant() ? "constant " : "global ");
        os_ << gv->containedType()->str();
        if (gv->initializer()) {
            os_ << " ";
            printConstantValue(gv->initializer());
        } else {
            os_ << " zeroinitializer";
        }
        os_ << "\n";
    }

    /** Initializer payload (no leading type). */
    void
    printConstantValue(const Constant *c)
    {
        if (auto *ci = dyn_cast<ConstantInt>(c)) {
            if (ci->type()->isBool())
                os_ << (ci->isZero() ? "false" : "true");
            else if (ci->type()->isSignedInteger())
                os_ << ci->sext();
            else
                os_ << ci->zext();
        } else if (auto *cf = dyn_cast<ConstantFP>(c)) {
            os_ << fpToString(cf->value());
        } else if (isa<ConstantNull>(c)) {
            os_ << "null";
        } else if (isa<ConstantUndef>(c)) {
            os_ << "undef";
        } else if (auto *cs = dyn_cast<ConstantString>(c)) {
            os_ << "c\"";
            for (char ch : cs->data()) {
                auto u = static_cast<unsigned char>(ch);
                if (isprint(u) && ch != '"' && ch != '\\') {
                    os_ << ch;
                } else {
                    char buf[4];
                    std::snprintf(buf, sizeof(buf), "\\%02X", u);
                    os_ << buf;
                }
            }
            os_ << "\"";
        } else if (auto *ca = dyn_cast<ConstantAggregate>(c)) {
            bool is_struct = ca->type()->isStruct();
            os_ << (is_struct ? "{ " : "[ ");
            for (size_t i = 0; i < ca->numElements(); ++i) {
                if (i)
                    os_ << ", ";
                const Constant *e = ca->element(i);
                os_ << e->type()->str() << " ";
                printConstantValue(e);
            }
            os_ << (is_struct ? " }" : " ]");
        } else if (auto *f = dyn_cast<Function>(c)) {
            os_ << "%" << f->name();
        } else if (auto *g = dyn_cast<GlobalVariable>(c)) {
            os_ << "%" << g->name();
        } else {
            panic("unprintable constant");
        }
    }

    /** Build printable names for every local value in \p f. */
    void
    nameLocals(const Function *f)
    {
        names_.clear();
        std::set<std::string> taken;
        unsigned slot = 0;

        auto assign = [&](const Value *v, bool is_block) {
            std::string base =
                isSimpleName(v->name()) ? v->name() : std::string();
            if (base.empty()) {
                // Labels must lex as words, so blocks get an "L"
                // prefix; values can be bare slot numbers.
                base = (is_block ? "L" : "") +
                       std::to_string(slot++);
            }
            std::string name = base;
            unsigned suffix = 0;
            while (taken.count(name))
                name = base + "." + std::to_string(++suffix);
            taken.insert(name);
            names_[v] = name;
        };

        for (const auto &arg : f->args())
            assign(arg.get(), false);
        for (const auto &bb : *f) {
            assign(bb.get(), true);
            for (const auto &inst : *bb)
                if (!inst->type()->isVoid())
                    assign(inst.get(), false);
        }
    }

    /** Operand reference without its type: %name / literal. */
    std::string
    ref(const Value *v)
    {
        if (auto *c = dyn_cast<ConstantInt>(v)) {
            if (c->type()->isBool())
                return c->isZero() ? "false" : "true";
            return c->type()->isSignedInteger()
                       ? std::to_string(c->sext())
                       : std::to_string(c->zext());
        }
        if (auto *c = dyn_cast<ConstantFP>(v))
            return fpToString(c->value());
        if (isa<ConstantNull>(v))
            return "null";
        if (isa<ConstantUndef>(v))
            return "undef";
        if (auto *f = dyn_cast<Function>(v))
            return "%" + f->name();
        if (auto *g = dyn_cast<GlobalVariable>(v))
            return "%" + g->name();
        auto it = names_.find(v);
        LLVA_ASSERT(it != names_.end(), "operand has no printed name");
        return "%" + it->second;
    }

    /** Operand reference with its type: `int %x`. */
    std::string
    typedRef(const Value *v)
    {
        return v->type()->str() + " " + ref(v);
    }

    void
    printFunction(const Function *f)
    {
        if (f->isDeclaration()) {
            os_ << "declare " << f->returnType()->str() << " %"
                << f->name() << "(";
            for (size_t i = 0; i < f->numArgs(); ++i) {
                if (i)
                    os_ << ", ";
                os_ << f->arg(i)->type()->str();
            }
            if (f->functionType()->isVarArg())
                os_ << (f->numArgs() ? ", ..." : "...");
            os_ << ")\n\n";
            return;
        }

        nameLocals(f);
        if (f->linkage() == Linkage::Internal)
            os_ << "internal ";
        os_ << f->returnType()->str() << " %" << f->name() << "(";
        for (size_t i = 0; i < f->numArgs(); ++i) {
            if (i)
                os_ << ", ";
            os_ << f->arg(i)->type()->str() << " %"
                << names_[f->arg(i)];
        }
        if (f->functionType()->isVarArg())
            os_ << (f->numArgs() ? ", ..." : "...");
        os_ << ") {\n";

        bool first = true;
        for (const auto &bb : *f) {
            if (!first)
                os_ << "\n";
            first = false;
            os_ << names_[bb.get()] << ":\n";
            for (const auto &inst : *bb)
                printInstruction(inst.get());
        }
        os_ << "}\n\n";
    }

    void
    printInstruction(const Instruction *inst)
    {
        os_ << "    ";
        if (!inst->type()->isVoid())
            os_ << "%" << names_[inst] << " = ";
        switch (inst->opcode()) {
          case Opcode::Add:
          case Opcode::Sub:
          case Opcode::Mul:
          case Opcode::Div:
          case Opcode::Rem:
          case Opcode::And:
          case Opcode::Or:
          case Opcode::Xor:
          case Opcode::Shl:
          case Opcode::Shr: {
            auto *b = cast<BinaryOperator>(inst);
            os_ << inst->opcodeStr() << " " << typedRef(b->lhs()) << ", ";
            // Shift amounts are ubyte while the result is lhs-typed,
            // so spell the rhs type out for shifts: "shl int %x, ubyte 3".
            if (inst->opcode() == Opcode::Shl ||
                inst->opcode() == Opcode::Shr)
                os_ << typedRef(b->rhs());
            else
                os_ << ref(b->rhs());
            break;
          }
          case Opcode::SetEQ:
          case Opcode::SetNE:
          case Opcode::SetLT:
          case Opcode::SetGT:
          case Opcode::SetLE:
          case Opcode::SetGE: {
            auto *s = cast<SetCondInst>(inst);
            os_ << inst->opcodeStr() << " " << typedRef(s->lhs()) << ", "
                << ref(s->rhs());
            break;
          }
          case Opcode::Ret: {
            auto *r = cast<ReturnInst>(inst);
            if (r->returnValue())
                os_ << "ret " << typedRef(r->returnValue());
            else
                os_ << "ret void";
            break;
          }
          case Opcode::Br: {
            auto *b = cast<BranchInst>(inst);
            if (b->isConditional())
                os_ << "br " << typedRef(b->condition()) << ", label "
                    << ref(b->target(0)) << ", label "
                    << ref(b->target(1));
            else
                os_ << "br label " << ref(b->target(0));
            break;
          }
          case Opcode::MBr: {
            auto *m = cast<MBrInst>(inst);
            os_ << "mbr " << typedRef(m->condition()) << ", label "
                << ref(m->defaultDest()) << " [";
            for (unsigned i = 0; i < m->numCases(); ++i) {
                if (i)
                    os_ << ",";
                os_ << " " << typedRef(m->caseValue(i)) << ", label "
                    << ref(m->caseDest(i));
            }
            os_ << " ]";
            break;
          }
          case Opcode::Invoke: {
            auto *iv = cast<InvokeInst>(inst);
            os_ << "invoke " << iv->type()->str() << " "
                << ref(iv->callee()) << "(";
            for (unsigned i = 0; i < iv->numArgs(); ++i) {
                if (i)
                    os_ << ", ";
                os_ << typedRef(iv->arg(i));
            }
            os_ << ") to label " << ref(iv->normalDest())
                << " unwind label " << ref(iv->unwindDest());
            break;
          }
          case Opcode::Unwind:
            os_ << "unwind";
            break;
          case Opcode::Load: {
            auto *l = cast<LoadInst>(inst);
            os_ << "load " << typedRef(l->pointer());
            break;
          }
          case Opcode::Store: {
            auto *s = cast<StoreInst>(inst);
            os_ << "store " << typedRef(s->value()) << ", "
                << typedRef(s->pointer());
            break;
          }
          case Opcode::GetElementPtr: {
            auto *g = cast<GetElementPtrInst>(inst);
            os_ << "getelementptr " << typedRef(g->pointer());
            for (unsigned i = 0; i < g->numIndices(); ++i)
                os_ << ", " << typedRef(g->index(i));
            break;
          }
          case Opcode::Alloca: {
            auto *a = cast<AllocaInst>(inst);
            os_ << "alloca " << a->allocatedType()->str();
            if (a->arraySize())
                os_ << ", " << typedRef(a->arraySize());
            break;
          }
          case Opcode::Cast: {
            auto *c = cast<CastInst>(inst);
            os_ << "cast " << typedRef(c->value()) << " to "
                << c->type()->str();
            break;
          }
          case Opcode::Call: {
            auto *c = cast<CallInst>(inst);
            os_ << "call " << c->type()->str() << " " << ref(c->callee())
                << "(";
            for (unsigned i = 0; i < c->numArgs(); ++i) {
                if (i)
                    os_ << ", ";
                os_ << typedRef(c->arg(i));
            }
            os_ << ")";
            break;
          }
          case Opcode::Phi: {
            auto *p = cast<PhiNode>(inst);
            os_ << "phi " << p->type()->str();
            for (unsigned i = 0; i < p->numIncoming(); ++i) {
                os_ << (i ? ", [ " : " [ ")
                    << ref(p->incomingValue(i)) << ", "
                    << ref(p->incomingBlock(i)) << " ]";
            }
            break;
          }
        }
        // Non-default ExceptionsEnabled is an explicit attribute
        // (paper Section 3.3).
        if (inst->exceptionsEnabled() !=
            defaultExceptionsEnabled(inst->opcode()))
            os_ << (inst->exceptionsEnabled() ? " !ee(true)"
                                              : " !ee(false)");
        os_ << "\n";
    }

    const Module &m_;
    std::ostream &os_;
    std::map<const Value *, std::string> names_;
};

} // namespace

void
Module::print(std::ostream &os) const
{
    Printer(*this, os).run();
}

} // namespace llva
