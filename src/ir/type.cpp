#include "ir/type.h"

#include <algorithm>

#include "support/error.h"

namespace llva {

namespace {

/** Round \p v up to a multiple of \p align. */
uint64_t
alignTo(uint64_t v, uint64_t align)
{
    return (v + align - 1) / align * align;
}

} // namespace

uint64_t
Type::sizeInBytes(unsigned ptr_size) const
{
    switch (kind_) {
      case TypeKind::Void:
      case TypeKind::Label:
      case TypeKind::Function:
        return 0;
      case TypeKind::Bool:
      case TypeKind::UByte:
      case TypeKind::SByte:
        return 1;
      case TypeKind::UShort:
      case TypeKind::Short:
        return 2;
      case TypeKind::UInt:
      case TypeKind::Int:
      case TypeKind::Float:
        return 4;
      case TypeKind::ULong:
      case TypeKind::Long:
      case TypeKind::Double:
        return 8;
      case TypeKind::Pointer:
        return ptr_size;
      case TypeKind::Array: {
        auto *at = cast<ArrayType>(this);
        return at->numElements() *
               at->element()->sizeInBytes(ptr_size);
      }
      case TypeKind::Struct: {
        auto *st = cast<StructType>(this);
        if (st->numFields() == 0)
            return 0;
        uint64_t end = st->fieldOffset(st->numFields() - 1, ptr_size) +
                       st->field(st->numFields() - 1)
                           ->sizeInBytes(ptr_size);
        return alignTo(end, alignment(ptr_size));
      }
    }
    return 0;
}

uint64_t
Type::alignment(unsigned ptr_size) const
{
    switch (kind_) {
      case TypeKind::Array:
        return cast<ArrayType>(this)->element()->alignment(ptr_size);
      case TypeKind::Struct: {
        uint64_t a = 1;
        for (Type *f : cast<StructType>(this)->fields())
            a = std::max(a, f->alignment(ptr_size));
        return a;
      }
      default: {
        uint64_t sz = sizeInBytes(ptr_size);
        return sz ? sz : 1;
      }
    }
}

uint64_t
StructType::fieldOffset(size_t i, unsigned ptr_size) const
{
    LLVA_ASSERT(i < fields_.size(), "field index out of range");
    uint64_t off = 0;
    for (size_t f = 0; f <= i; ++f) {
        off = alignTo(off, fields_[f]->alignment(ptr_size));
        if (f == i)
            return off;
        off += fields_[f]->sizeInBytes(ptr_size);
    }
    return off;
}

std::string
Type::str() const
{
    switch (kind_) {
      case TypeKind::Void:
        return "void";
      case TypeKind::Bool:
        return "bool";
      case TypeKind::UByte:
        return "ubyte";
      case TypeKind::SByte:
        return "sbyte";
      case TypeKind::UShort:
        return "ushort";
      case TypeKind::Short:
        return "short";
      case TypeKind::UInt:
        return "uint";
      case TypeKind::Int:
        return "int";
      case TypeKind::ULong:
        return "ulong";
      case TypeKind::Long:
        return "long";
      case TypeKind::Float:
        return "float";
      case TypeKind::Double:
        return "double";
      case TypeKind::Label:
        return "label";
      case TypeKind::Pointer:
        return cast<PointerType>(this)->pointee()->str() + "*";
      case TypeKind::Array: {
        auto *at = cast<ArrayType>(this);
        return "[" + std::to_string(at->numElements()) + " x " +
               at->element()->str() + "]";
      }
      case TypeKind::Struct: {
        auto *st = cast<StructType>(this);
        if (!st->name().empty())
            return "%" + st->name();
        std::string s = "{ ";
        for (size_t i = 0; i < st->numFields(); ++i) {
            if (i)
                s += ", ";
            s += st->field(i)->str();
        }
        return s + " }";
      }
      case TypeKind::Function: {
        auto *ft = cast<FunctionType>(this);
        std::string s = ft->returnType()->str() + " (";
        for (size_t i = 0; i < ft->numParams(); ++i) {
            if (i)
                s += ", ";
            s += ft->paramType(i)->str();
        }
        if (ft->isVarArg())
            s += ft->numParams() ? ", ..." : "...";
        return s + ")";
      }
    }
    return "<badtype>";
}

TypeContext::TypeContext() = default;
TypeContext::~TypeContext() = default;

Type *
TypeContext::prim(TypeKind kind)
{
    auto it = prims_.find(kind);
    if (it != prims_.end())
        return it->second;
    struct PrimType : Type
    {
        PrimType(TypeContext &ctx, TypeKind k) : Type(ctx, k) {}
    };
    auto t = std::make_unique<PrimType>(*this, kind);
    Type *raw = t.get();
    owned_.push_back(std::move(t));
    prims_[kind] = raw;
    return raw;
}

Type *
TypeContext::primByName(const std::string &name)
{
    static const std::map<std::string, TypeKind> table = {
        {"void", TypeKind::Void},     {"bool", TypeKind::Bool},
        {"ubyte", TypeKind::UByte},   {"sbyte", TypeKind::SByte},
        {"ushort", TypeKind::UShort}, {"short", TypeKind::Short},
        {"uint", TypeKind::UInt},     {"int", TypeKind::Int},
        {"ulong", TypeKind::ULong},   {"long", TypeKind::Long},
        {"float", TypeKind::Float},   {"double", TypeKind::Double},
        {"label", TypeKind::Label},
    };
    auto it = table.find(name);
    return it == table.end() ? nullptr : prim(it->second);
}

PointerType *
TypeContext::pointerTo(Type *pointee)
{
    LLVA_ASSERT(pointee && !pointee->isVoid() && !pointee->isLabel(),
                "invalid pointee type");
    auto it = pointers_.find(pointee);
    if (it != pointers_.end())
        return it->second;
    auto *t = new PointerType(*this, pointee);
    owned_.emplace_back(t);
    pointers_[pointee] = t;
    return t;
}

ArrayType *
TypeContext::arrayOf(Type *element, uint64_t num)
{
    auto key = std::make_pair(element, num);
    auto it = arrays_.find(key);
    if (it != arrays_.end())
        return it->second;
    auto *t = new ArrayType(*this, element, num);
    owned_.emplace_back(t);
    arrays_[key] = t;
    return t;
}

StructType *
TypeContext::structOf(const std::vector<Type *> &fields)
{
    auto it = structs_.find(fields);
    if (it != structs_.end())
        return it->second;
    auto *t = new StructType(*this, fields);
    owned_.emplace_back(t);
    structs_[fields] = t;
    return t;
}

StructType *
TypeContext::namedStruct(const std::string &name,
                         const std::vector<Type *> &fields)
{
    LLVA_ASSERT(!named_.count(name), "duplicate named type %%%s",
                name.c_str());
    auto *t = new StructType(*this, fields);
    t->setName(name);
    owned_.emplace_back(t);
    named_[name] = t;
    return t;
}

StructType *
TypeContext::getOrCreateNamedStruct(const std::string &name)
{
    if (StructType *st = namedType(name))
        return st;
    return namedStruct(name, {});
}

StructType *
TypeContext::namedType(const std::string &name) const
{
    auto it = named_.find(name);
    return it == named_.end() ? nullptr : it->second;
}

FunctionType *
TypeContext::functionOf(Type *ret, const std::vector<Type *> &params,
                        bool vararg)
{
    auto key = std::make_pair(ret, std::make_pair(params, vararg));
    auto it = functions_.find(key);
    if (it != functions_.end())
        return it->second;
    auto *t = new FunctionType(*this, ret, params, vararg);
    owned_.emplace_back(t);
    functions_[key] = t;
    return t;
}

} // namespace llva
