/**
 * @file
 * The LLVA type system (paper Section 3.1).
 *
 * The type system is deliberately small: primitive scalar types with
 * predefined sizes (bool, sbyte/ubyte, short/ushort, int/uint,
 * long/ulong, float, double), plus exactly four derived types —
 * pointer, array, structure, and function. All instructions are
 * strictly typed over these; there is no implicit coercion (the
 * `cast` instruction is the sole conversion mechanism).
 *
 * Types are interned: structurally identical types are represented by
 * a single Type object owned by a TypeContext, so pointer equality is
 * type equality.
 */

#ifndef LLVA_IR_TYPE_H
#define LLVA_IR_TYPE_H

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "support/casting.h"

namespace llva {

class TypeContext;

/** Discriminator for every LLVA type. */
enum class TypeKind : uint8_t {
    Void,
    Bool,
    UByte,
    SByte,
    UShort,
    Short,
    UInt,
    Int,
    ULong,
    Long,
    Float,
    Double,
    Label,
    Pointer,
    Array,
    Struct,
    Function,
};

/**
 * Base class for all LLVA types. Interned and immutable; compare with
 * pointer equality.
 */
class Type
{
  public:
    virtual ~Type() = default;

    TypeKind kind() const { return kind_; }
    TypeContext &context() const { return ctx_; }

    bool isVoid() const { return kind_ == TypeKind::Void; }
    bool isBool() const { return kind_ == TypeKind::Bool; }
    bool isLabel() const { return kind_ == TypeKind::Label; }
    bool isPointer() const { return kind_ == TypeKind::Pointer; }
    bool isArray() const { return kind_ == TypeKind::Array; }
    bool isStruct() const { return kind_ == TypeKind::Struct; }
    bool isFunction() const { return kind_ == TypeKind::Function; }

    bool
    isInteger() const
    {
        return kind_ >= TypeKind::UByte && kind_ <= TypeKind::Long;
    }

    bool
    isSignedInteger() const
    {
        return kind_ == TypeKind::SByte || kind_ == TypeKind::Short ||
               kind_ == TypeKind::Int || kind_ == TypeKind::Long;
    }

    bool
    isUnsignedInteger() const
    {
        return isInteger() && !isSignedInteger();
    }

    bool
    isFloatingPoint() const
    {
        return kind_ == TypeKind::Float || kind_ == TypeKind::Double;
    }

    /** Integer, bool, FP, or pointer — what a virtual register holds. */
    bool
    isScalar() const
    {
        return isBool() || isInteger() || isFloatingPoint() ||
               isPointer();
    }

    /** Usable as the element type of memory (loads/stores/allocas). */
    bool
    isFirstClass() const
    {
        return isScalar();
    }

    /** Storage size in bytes. Pointer size comes from \p ptr_size. */
    uint64_t sizeInBytes(unsigned ptr_size) const;

    /** Natural alignment in bytes. */
    uint64_t alignment(unsigned ptr_size) const;

    /** Bit width of integer/bool types. */
    unsigned
    integerBitWidth() const
    {
        switch (kind_) {
          case TypeKind::Bool:
            return 1;
          case TypeKind::UByte:
          case TypeKind::SByte:
            return 8;
          case TypeKind::UShort:
          case TypeKind::Short:
            return 16;
          case TypeKind::UInt:
          case TypeKind::Int:
            return 32;
          case TypeKind::ULong:
          case TypeKind::Long:
            return 64;
          default:
            return 0;
        }
    }

    /** Render this type in LLVA assembly syntax (e.g. "[4 x %QT*]"). */
    std::string str() const;

  protected:
    Type(TypeContext &ctx, TypeKind kind)
        : ctx_(ctx), kind_(kind)
    {}

  private:
    TypeContext &ctx_;
    TypeKind kind_;
};

/** Pointer type: `T*`. */
class PointerType : public Type
{
  public:
    Type *pointee() const { return pointee_; }

    static bool
    classof(const Type *t)
    {
        return t->kind() == TypeKind::Pointer;
    }

  private:
    friend class TypeContext;
    PointerType(TypeContext &ctx, Type *pointee)
        : Type(ctx, TypeKind::Pointer), pointee_(pointee)
    {}

    Type *pointee_;
};

/** Fixed-size array type: `[N x T]`. */
class ArrayType : public Type
{
  public:
    Type *element() const { return element_; }
    uint64_t numElements() const { return num_; }

    static bool
    classof(const Type *t)
    {
        return t->kind() == TypeKind::Array;
    }

  private:
    friend class TypeContext;
    ArrayType(TypeContext &ctx, Type *element, uint64_t num)
        : Type(ctx, TypeKind::Array), element_(element), num_(num)
    {}

    Type *element_;
    uint64_t num_;
};

/** Structure type: `{T0, T1, ...}`; may carry a name (%struct.Foo). */
class StructType : public Type
{
  public:
    const std::vector<Type *> &fields() const { return fields_; }
    size_t numFields() const { return fields_.size(); }
    Type *field(size_t i) const { return fields_[i]; }

    /** Symbolic name, empty for anonymous structs. */
    const std::string &name() const { return name_; }
    void setName(const std::string &n) { name_ = n; }

    /**
     * Set the field list of a named struct created as a forward
     * reference (only the parser should need this).
     */
    void setBody(std::vector<Type *> fields) { fields_ = std::move(fields); }

    /** Byte offset of field \p i given the pointer size. */
    uint64_t fieldOffset(size_t i, unsigned ptr_size) const;

    static bool
    classof(const Type *t)
    {
        return t->kind() == TypeKind::Struct;
    }

  private:
    friend class TypeContext;
    StructType(TypeContext &ctx, std::vector<Type *> fields)
        : Type(ctx, TypeKind::Struct), fields_(std::move(fields))
    {}

    std::vector<Type *> fields_;
    std::string name_;
};

/** Function type: `Ret (A0, A1, ...)`, optionally varargs. */
class FunctionType : public Type
{
  public:
    Type *returnType() const { return ret_; }
    const std::vector<Type *> &paramTypes() const { return params_; }
    size_t numParams() const { return params_.size(); }
    Type *paramType(size_t i) const { return params_[i]; }
    bool isVarArg() const { return vararg_; }

    static bool
    classof(const Type *t)
    {
        return t->kind() == TypeKind::Function;
    }

  private:
    friend class TypeContext;
    FunctionType(TypeContext &ctx, Type *ret, std::vector<Type *> params,
                 bool vararg)
        : Type(ctx, TypeKind::Function), ret_(ret),
          params_(std::move(params)), vararg_(vararg)
    {}

    Type *ret_;
    std::vector<Type *> params_;
    bool vararg_;
};

/**
 * Owns and interns all types for one Module tree.
 *
 * Named struct types (paper Fig. 2: `%struct.QuadTree = type {...}`)
 * are registered here so the parser/printer can resolve them.
 */
class TypeContext
{
  public:
    TypeContext();
    ~TypeContext();

    TypeContext(const TypeContext &) = delete;
    TypeContext &operator=(const TypeContext &) = delete;

    // Primitive type accessors.
    Type *voidTy() { return prim(TypeKind::Void); }
    Type *boolTy() { return prim(TypeKind::Bool); }
    Type *ubyteTy() { return prim(TypeKind::UByte); }
    Type *sbyteTy() { return prim(TypeKind::SByte); }
    Type *ushortTy() { return prim(TypeKind::UShort); }
    Type *shortTy() { return prim(TypeKind::Short); }
    Type *uintTy() { return prim(TypeKind::UInt); }
    Type *intTy() { return prim(TypeKind::Int); }
    Type *ulongTy() { return prim(TypeKind::ULong); }
    Type *longTy() { return prim(TypeKind::Long); }
    Type *floatTy() { return prim(TypeKind::Float); }
    Type *doubleTy() { return prim(TypeKind::Double); }
    Type *labelTy() { return prim(TypeKind::Label); }

    Type *prim(TypeKind kind);
    Type *primByName(const std::string &name);

    PointerType *pointerTo(Type *pointee);
    ArrayType *arrayOf(Type *element, uint64_t num);
    /** Anonymous (structurally interned) struct type. */
    StructType *structOf(const std::vector<Type *> &fields);
    /** Fresh named struct type; registered under \p name. */
    StructType *namedStruct(const std::string &name,
                            const std::vector<Type *> &fields);

    /** Named struct, created empty on first request (parser use). */
    StructType *getOrCreateNamedStruct(const std::string &name);
    FunctionType *functionOf(Type *ret, const std::vector<Type *> &params,
                             bool vararg = false);

    /** Look up a named struct (nullptr if absent). */
    StructType *namedType(const std::string &name) const;
    const std::map<std::string, StructType *> &namedTypes() const
    {
        return named_;
    }

  private:
    std::vector<std::unique_ptr<Type>> owned_;
    std::map<TypeKind, Type *> prims_;
    std::map<Type *, PointerType *> pointers_;
    std::map<std::pair<Type *, uint64_t>, ArrayType *> arrays_;
    std::map<std::vector<Type *>, StructType *> structs_;
    std::map<std::pair<Type *, std::pair<std::vector<Type *>, bool>>,
             FunctionType *>
        functions_;
    std::map<std::string, StructType *> named_;
};

} // namespace llva

#endif // LLVA_IR_TYPE_H
