#include "ir/value.h"

#include <algorithm>

namespace llva {

Value::~Value()
{
    LLVA_ASSERT(users_.empty(),
                "value '%s' destroyed while still in use", name_.c_str());
}

void
Value::removeUser(User *u)
{
    auto it = std::find(users_.begin(), users_.end(), u);
    LLVA_ASSERT(it != users_.end(), "removeUser: not a user");
    users_.erase(it);
}

void
Value::replaceAllUsesWith(Value *repl)
{
    LLVA_ASSERT(repl != this, "replaceAllUsesWith self");
    // Users mutate users_ as slots are rewritten; iterate on a copy.
    std::vector<User *> snapshot = users_;
    for (User *u : snapshot) {
        for (size_t i = 0, e = u->numOperands(); i != e; ++i)
            if (u->operand(i) == this)
                u->setOperand(i, repl);
    }
}

} // namespace llva
