/**
 * @file
 * Value and User: the SSA def-use graph underlying LLVA.
 *
 * Every register in LLVA is an SSA value (paper Section 3.1: "an
 * infinite, typed register file where all registers are in Static
 * Single Assignment form"). Values track their users so transforms
 * can rewrite def-use chains (replaceAllUsesWith) in O(uses).
 */

#ifndef LLVA_IR_VALUE_H
#define LLVA_IR_VALUE_H

#include <cstdint>
#include <string>
#include <vector>

#include "support/casting.h"
#include "support/error.h"

namespace llva {

class Type;
class User;

/** Dynamic kind tag enabling cheap isa<>/dyn_cast<>. */
enum class ValueKind : uint8_t {
    Argument,
    BasicBlock,
    ConstantInt,
    ConstantFP,
    ConstantNull,
    ConstantUndef,
    ConstantAggregate,
    ConstantString,
    GlobalVariable,
    Function,
    Instruction,
};

/**
 * Base of everything that can appear as an instruction operand:
 * arguments, constants, globals, functions, basic blocks (branch
 * targets), and instruction results.
 */
class Value
{
  public:
    virtual ~Value();

    Value(const Value &) = delete;
    Value &operator=(const Value &) = delete;

    ValueKind valueKind() const { return vkind_; }
    Type *type() const { return type_; }

    const std::string &name() const { return name_; }
    void setName(const std::string &n) { name_ = n; }
    bool hasName() const { return !name_.empty(); }

    /**
     * All users of this value. A user appears once per operand slot
     * that references this value (so duplicates are possible).
     */
    const std::vector<User *> &users() const { return users_; }
    bool hasUses() const { return !users_.empty(); }
    size_t numUses() const { return users_.size(); }

    /** Rewrite every use of this value to use \p repl instead. */
    void replaceAllUsesWith(Value *repl);

    static bool classof(const Value *) { return true; }

  protected:
    Value(Type *type, ValueKind vkind)
        : type_(type), vkind_(vkind)
    {}

  private:
    friend class User;
    void addUser(User *u) { users_.push_back(u); }
    void removeUser(User *u);

    Type *type_;
    std::vector<User *> users_;
    std::string name_;
    ValueKind vkind_;
};

/**
 * A Value that references other Values through operand slots
 * (instructions and aggregate constants).
 */
class User : public Value
{
  public:
    ~User() override { dropAllOperands(); }

    size_t numOperands() const { return operands_.size(); }

    Value *
    operand(size_t i) const
    {
        LLVA_ASSERT(i < operands_.size(), "operand index out of range");
        return operands_[i];
    }

    const std::vector<Value *> &operands() const { return operands_; }

    /** Replace operand slot \p i, maintaining use lists. */
    void
    setOperand(size_t i, Value *v)
    {
        LLVA_ASSERT(i < operands_.size(), "operand index out of range");
        if (operands_[i])
            operands_[i]->removeUser(this);
        operands_[i] = v;
        if (v)
            v->addUser(this);
    }

    /** Clear all operand slots (used before deletion). */
    void
    dropAllOperands()
    {
        for (Value *v : operands_)
            if (v)
                v->removeUser(this);
        operands_.clear();
    }

    static bool
    classof(const Value *v)
    {
        return v->valueKind() == ValueKind::Instruction;
    }

  protected:
    User(Type *type, ValueKind vkind)
        : Value(type, vkind)
    {}

    /** Append an operand slot referencing \p v. */
    void
    addOperand(Value *v)
    {
        operands_.push_back(v);
        if (v)
            v->addUser(this);
    }

    /** Remove operand slot \p i entirely (shifts later slots down). */
    void
    removeOperand(size_t i)
    {
        LLVA_ASSERT(i < operands_.size(), "operand index out of range");
        if (operands_[i])
            operands_[i]->removeUser(this);
        operands_.erase(operands_.begin() +
                        static_cast<ptrdiff_t>(i));
    }

  private:
    std::vector<Value *> operands_;
};

/** A formal parameter of a Function. */
class Function;

class Argument : public Value
{
  public:
    Argument(Type *type, const std::string &name, Function *parent,
             unsigned index)
        : Value(type, ValueKind::Argument), parent_(parent),
          index_(index)
    {
        setName(name);
    }

    Function *parent() const { return parent_; }
    unsigned index() const { return index_; }

    static bool
    classof(const Value *v)
    {
        return v->valueKind() == ValueKind::Argument;
    }

  private:
    Function *parent_;
    unsigned index_;
};

} // namespace llva

#endif // LLVA_IR_VALUE_H
