#include "llee/checkpoint.h"

#include <tuple>

#include "llee/envelope.h"
#include "llee/mcode_io.h"
#include "support/statistic.h"

namespace llva {

namespace {

constexpr char kMagic[4] = {'L', 'V', 'C', 'K'};

Statistic NumCheckpointsCaptured(
    "vm.checkpoints_captured",
    "VM checkpoints captured (sealed blobs produced)");

Statistic NumCheckpointsRestored(
    "vm.checkpoints_restored",
    "VM checkpoints restored into a fresh context");

} // namespace

std::vector<uint8_t>
captureCheckpoint(uint64_t moduleHash, const ExecutionContext &ctx,
                  CodeManager &cm, const EdgeProfile *profile,
                  const MachineSimulator *sim)
{
    ByteWriter w;
    w.writeU64(moduleHash);
    w.writeString(cm.target().name());
    w.writeByte(cm.options().optLevel);

    ctx.serialize(w);

    if (profile) {
        std::vector<uint8_t> pbytes = writeEdgeProfile(*profile);
        w.writeVaruint(pbytes.size());
        w.writeBytes(pbytes.data(), pbytes.size());
    } else {
        w.writeVaruint(0);
    }

    // Code-cache index. Entries are serialized inside the
    // enumeration callback — the manager holds its shared lock for
    // the whole walk, so no body can be retired mid-serialization.
    // Interpreter pins travel with an empty payload: the pin itself
    // is the information (do not walk the failing ladder again).
    std::vector<std::tuple<std::string, uint8_t,
                           std::vector<uint8_t>>> entries;
    cm.forEachCached([&](const Function *f, uint8_t tier,
                         const MachineFunction *mf) {
        entries.emplace_back(f->name(), tier,
                             mf ? writeMachineFunction(*mf)
                                : std::vector<uint8_t>());
    });
    w.writeVaruint(entries.size());
    for (const auto &[name, tier, bytes] : entries) {
        w.writeString(name);
        w.writeByte(tier);
        w.writeVaruint(bytes.size());
        w.writeBytes(bytes.data(), bytes.size());
    }

    if (sim && sim->paused()) {
        w.writeByte(1);
        sim->serializeSuspended(w);
    } else {
        w.writeByte(0);
    }

    ++NumCheckpointsCaptured;
    return sealBlob(kMagic, kCheckpointVersion, w.takeBytes());
}

Expected<CheckpointRestoreStats>
restoreCheckpoint(const std::vector<uint8_t> &sealed,
                  uint64_t moduleHash, ExecutionContext &ctx,
                  CodeManager &cm, EdgeProfile *profile,
                  MachineSimulator *sim)
{
    std::vector<uint8_t> payload;
    EnvelopeStatus st =
        openBlob(sealed, kMagic, kCheckpointVersion, payload);
    if (st != EnvelopeStatus::Ok)
        return Error(std::string("checkpoint envelope is ") +
                     envelopeStatusName(st));

    const Module &m = ctx.module();
    try {
        ByteReader r(payload.data(), payload.size());
        if (r.readU64() != moduleHash)
            return Error("checkpoint was taken against different "
                         "virtual object code");
        std::string fromTarget = r.readString();
        uint8_t fromOptLevel = r.readByte();
        (void)fromOptLevel; // informational; tiers travel per entry

        if (!ctx.restore(r))
            return Error("checkpoint execution state names "
                         "functions this module does not define");

        CheckpointRestoreStats stats;
        uint64_t plen = r.readVaruint();
        if (plen) {
            std::vector<uint8_t> pbytes(plen);
            r.readBytes(pbytes.data(), plen);
            Expected<EdgeProfile> prof = readEdgeProfile(pbytes);
            if (!prof)
                return Error("checkpoint profile damaged: " +
                             prof.error().message());
            if (profile) {
                *profile = prof.take();
                stats.profileRestored = true;
            }
        }

        // Code entries: same-target bodies are validated against
        // the module and installed at their recorded tier; entries
        // from a different target ISA are Incompatible — dropped
        // and healed by on-demand retranslation, exactly like an
        // incompatible storage-cache entry. Interpreter pins also
        // only carry over same-target: a ladder that failed on one
        // ISA says nothing about another's.
        const bool sameTarget = fromTarget == cm.target().name();
        uint64_t nCode = r.readVaruint();
        for (uint64_t i = 0; i < nCode; ++i) {
            std::string name = r.readString();
            uint8_t tier = r.readByte();
            uint64_t len = r.readVaruint();
            std::vector<uint8_t> bytes(len);
            r.readBytes(bytes.data(), len);

            const Function *f = m.getFunction(name);
            if (!f || f->isDeclaration()) {
                ++stats.codeRejected;
                continue;
            }
            if (!sameTarget) {
                ++stats.codeIncompatible;
                continue;
            }
            if (tier == kTierInterpreter) {
                cm.markInterpreted(f);
                ++stats.codeRestored;
                continue;
            }
            Expected<std::unique_ptr<MachineFunction>> mf =
                readMachineFunction(bytes, m, f);
            if (!mf) {
                ++stats.codeRejected;
                continue;
            }
            cm.install(f, mf.take(), tier);
            ++stats.codeRestored;
        }

        if (r.readByte()) {
            stats.suspended = true;
            if (!sameTarget)
                return Error(
                    "suspended checkpoint captured on target '" +
                    fromTarget + "' cannot be restored on '" +
                    cm.target().name() +
                    "' (cross-ISA migration needs a quiescent "
                    "checkpoint)");
            if (!sim)
                return Error("suspended checkpoint needs a "
                             "simulator to restore into");
            if (!sim->restoreSuspended(r))
                return Error("suspended activation does not match "
                             "the retranslated code");
        }

        ++NumCheckpointsRestored;
        return stats;
    } catch (const FatalError &) {
        return Error("checkpoint payload truncated");
    }
}

} // namespace llva
