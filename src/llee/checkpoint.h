/**
 * @file
 * VM checkpoint/restore: serialize a whole running program — heap
 * and stack image, captured output, OS state (trap handlers, the
 * privileged bit, SMC redirects), the code-cache index, the runtime
 * edge profile, and optionally a suspended activation — into one
 * envelope-sealed blob restorable in a fresh process.
 *
 * The design follows the paper's offline-translation contract
 * (Section 4.1): everything that crosses the process boundary is
 * expressed at the V-ISA level or validated before use. Function
 * references travel by name; heap references need no relocation
 * because the restored memory image reproduces the same simulated
 * address space; machine-code entries carry their target and are
 * *classified*, not trusted — an entry from a different target ISA
 * is Incompatible and simply dropped, to be healed by retranslation
 * on demand, which is what makes a checkpoint taken on one ISA
 * restorable on another. The carried profile keeps its heat, so the
 * adaptive tier re-promotes hot functions immediately instead of
 * re-profiling from zero.
 *
 * A suspended activation (MachineSimulator pause) is restorable
 * only onto the same target ISA: its register state and frame
 * indices are I-ISA-level. Cross-ISA migration requires a quiescent
 * checkpoint (pause at a call boundary, i.e. no suspended section).
 */

#ifndef LLVA_LLEE_CHECKPOINT_H
#define LLVA_LLEE_CHECKPOINT_H

#include <cstdint>
#include <vector>

#include "support/expected.h"
#include "vm/machine_sim.h"

namespace llva {

/** Format version of the sealed checkpoint blob. */
constexpr uint32_t kCheckpointVersion = 1;

/** What a restore did with the checkpoint's contents. */
struct CheckpointRestoreStats
{
    /** Code entries installed (including interpreter pins). */
    size_t codeRestored = 0;
    /** Entries for a different target ISA, dropped for on-demand
     *  retranslation (the cross-ISA healing path). */
    size_t codeIncompatible = 0;
    /** Entries that failed validation against the module. */
    size_t codeRejected = 0;
    /** A carried profile was loaded into the caller's profile. */
    bool profileRestored = false;
    /** The checkpoint contained a suspended activation (and it was
     *  restored — a suspended section that cannot be restored is a
     *  hard error, not a partial restore). */
    bool suspended = false;
};

/**
 * Capture a checkpoint of the program state held by \p ctx and the
 * code cache of \p cm. \p moduleHash identifies the virtual object
 * code (any stable content hash; restore must present the same).
 * \p profile, when non-null, is carried for immediate re-promotion
 * after restore. \p sim, when non-null and paused, contributes its
 * suspended activation. Returns the sealed blob.
 */
std::vector<uint8_t>
captureCheckpoint(uint64_t moduleHash, const ExecutionContext &ctx,
                  CodeManager &cm, const EdgeProfile *profile,
                  const MachineSimulator *sim = nullptr);

/**
 * Restore a checkpoint into a fresh context/manager built over the
 * same module (hash-checked against \p moduleHash). The restoring
 * CodeManager's target may differ from the capturing one: native
 * entries then classify as Incompatible and are retranslated on
 * demand. \p profile receives the carried profile (ignored when
 * null); \p sim receives a suspended activation if one is present
 * (an error if it is null or on a different target). Errors:
 * damaged envelope, module mismatch, execution state that no longer
 * resolves, or an unrestorable suspended section.
 */
Expected<CheckpointRestoreStats>
restoreCheckpoint(const std::vector<uint8_t> &sealed,
                  uint64_t moduleHash, ExecutionContext &ctx,
                  CodeManager &cm, EdgeProfile *profile,
                  MachineSimulator *sim = nullptr);

} // namespace llva

#endif // LLVA_LLEE_CHECKPOINT_H
