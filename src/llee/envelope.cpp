#include "llee/envelope.h"

#include "support/byte_io.h"
#include "support/hashing.h"

namespace llva {

namespace {

constexpr uint8_t kEnvelopeVersion = 3;
constexpr char kMagic[4] = {'L', 'M', 'C', 'E'};
constexpr size_t kCrcSize = 4;

} // namespace

std::vector<uint8_t>
sealTranslation(const TranslationKey &key,
                const std::vector<uint8_t> &payload)
{
    ByteWriter w;
    for (char c : kMagic)
        w.writeByte(static_cast<uint8_t>(c));
    w.writeByte(kEnvelopeVersion);
    w.writeU32(key.translatorVersion);
    w.writeString(key.targetName);
    w.writeByte(key.allocator);
    w.writeByte(key.coalesce);
    w.writeByte(key.optLevel);
    w.writeByte(key.tier);
    w.writeU64(key.sourceHash);
    w.writeU64(key.profileHash);
    w.writeVaruint(payload.size());
    w.writeBytes(payload.data(), payload.size());
    w.writeU32(crc32(w.bytes()));
    return w.takeBytes();
}

EnvelopeStatus
openTranslation(const std::vector<uint8_t> &envelope,
                const TranslationKey &expected,
                std::vector<uint8_t> &payload, uint8_t *tier,
                uint64_t *profileHash)
{
    // Integrity first: a damaged entry must classify as Corrupt even
    // if the damage happens to land in the compatibility key, so the
    // CRC over the whole envelope is checked before any field is
    // interpreted.
    if (envelope.size() < sizeof(kMagic) + 1 + kCrcSize)
        return EnvelopeStatus::Corrupt;
    size_t body = envelope.size() - kCrcSize;
    uint32_t stored = 0;
    for (size_t i = 0; i < kCrcSize; ++i)
        stored |= static_cast<uint32_t>(envelope[body + i]) << (8 * i);
    if (crc32(envelope.data(), body) != stored)
        return EnvelopeStatus::Corrupt;

    try {
        ByteReader r(envelope.data(), body);
        for (char c : kMagic)
            if (r.readByte() != static_cast<uint8_t>(c))
                return EnvelopeStatus::Corrupt;
        if (r.readByte() != kEnvelopeVersion)
            return EnvelopeStatus::Incompatible;
        uint32_t version = r.readU32();
        std::string target = r.readString();
        uint8_t allocator = r.readByte();
        uint8_t coalesce = r.readByte();
        uint8_t optLevel = r.readByte();
        uint8_t achieved = r.readByte();
        uint64_t source = r.readU64();
        uint64_t profile = r.readU64();
        if (version != expected.translatorVersion ||
            target != expected.targetName ||
            allocator != expected.allocator ||
            coalesce != expected.coalesce ||
            optLevel != expected.optLevel)
            return EnvelopeStatus::Incompatible;
        if (source != expected.sourceHash)
            return EnvelopeStatus::Stale;
        uint64_t n = r.readVaruint();
        if (n != r.remaining())
            return EnvelopeStatus::Corrupt;
        payload.resize(n);
        r.readBytes(payload.data(), n);
        if (tier)
            *tier = achieved;
        if (profileHash)
            *profileHash = profile;
        return EnvelopeStatus::Ok;
    } catch (const FatalError &) {
        // Structurally impossible under a matching CRC unless the
        // producer itself was broken; treat as corruption either way.
        return EnvelopeStatus::Corrupt;
    }
}

EnvelopeStatus
inspectTranslation(const std::vector<uint8_t> &envelope,
                   TranslationKey *key)
{
    if (envelope.size() < sizeof(kMagic) + 1 + kCrcSize)
        return EnvelopeStatus::Corrupt;
    size_t body = envelope.size() - kCrcSize;
    uint32_t stored = 0;
    for (size_t i = 0; i < kCrcSize; ++i)
        stored |= static_cast<uint32_t>(envelope[body + i]) << (8 * i);
    if (crc32(envelope.data(), body) != stored)
        return EnvelopeStatus::Corrupt;

    try {
        ByteReader r(envelope.data(), body);
        for (char c : kMagic)
            if (r.readByte() != static_cast<uint8_t>(c))
                return EnvelopeStatus::Corrupt;
        if (r.readByte() != kEnvelopeVersion)
            return EnvelopeStatus::Incompatible;
        TranslationKey k;
        k.translatorVersion = r.readU32();
        k.targetName = r.readString();
        k.allocator = r.readByte();
        k.coalesce = r.readByte();
        k.optLevel = r.readByte();
        k.tier = r.readByte();
        k.sourceHash = r.readU64();
        k.profileHash = r.readU64();
        uint64_t n = r.readVaruint();
        if (n != r.remaining())
            return EnvelopeStatus::Corrupt;
        bool compatible = k.translatorVersion == kTranslatorVersion;
        if (key)
            *key = std::move(k);
        return compatible ? EnvelopeStatus::Ok
                          : EnvelopeStatus::Incompatible;
    } catch (const FatalError &) {
        return EnvelopeStatus::Corrupt;
    }
}

std::vector<uint8_t>
sealBlob(const char magic[4], uint32_t version,
         const std::vector<uint8_t> &payload)
{
    ByteWriter w;
    for (size_t i = 0; i < 4; ++i)
        w.writeByte(static_cast<uint8_t>(magic[i]));
    w.writeU32(version);
    w.writeVaruint(payload.size());
    w.writeBytes(payload.data(), payload.size());
    w.writeU32(crc32(w.bytes()));
    return w.takeBytes();
}

EnvelopeStatus
openBlob(const std::vector<uint8_t> &envelope, const char magic[4],
         uint32_t version, std::vector<uint8_t> &payload)
{
    if (envelope.size() < 4 + 4 + kCrcSize)
        return EnvelopeStatus::Corrupt;
    size_t body = envelope.size() - kCrcSize;
    uint32_t stored = 0;
    for (size_t i = 0; i < kCrcSize; ++i)
        stored |= static_cast<uint32_t>(envelope[body + i]) << (8 * i);
    if (crc32(envelope.data(), body) != stored)
        return EnvelopeStatus::Corrupt;

    try {
        ByteReader r(envelope.data(), body);
        for (size_t i = 0; i < 4; ++i)
            if (r.readByte() != static_cast<uint8_t>(magic[i]))
                return EnvelopeStatus::Corrupt;
        if (r.readU32() != version)
            return EnvelopeStatus::Incompatible;
        uint64_t n = r.readVaruint();
        if (n != r.remaining())
            return EnvelopeStatus::Corrupt;
        payload.resize(n);
        r.readBytes(payload.data(), n);
        return EnvelopeStatus::Ok;
    } catch (const FatalError &) {
        return EnvelopeStatus::Corrupt;
    }
}

const char *
envelopeStatusName(EnvelopeStatus status)
{
    switch (status) {
      case EnvelopeStatus::Ok:
        return "ok";
      case EnvelopeStatus::Corrupt:
        return "corrupt";
      case EnvelopeStatus::Incompatible:
        return "incompatible";
      case EnvelopeStatus::Stale:
        return "stale";
    }
    return "?";
}

} // namespace llva
