/**
 * @file
 * Integrity envelope for cached native translations.
 *
 * A cached translation read back from OS storage (paper Section 4.1)
 * is untrusted input: the file may be torn by a crash, flipped by a
 * bad disk, produced by a different translator version, or produced
 * for a different target or codegen configuration. Every entry is
 * therefore wrapped in a versioned envelope carrying (a) a
 * compatibility key identifying exactly which translator state
 * produced it and which source bytecode it belongs to, and (b) a
 * CRC-32 over the whole envelope. openTranslation() classifies an
 * entry before a single payload byte is trusted:
 *
 *   Corrupt       damaged bytes (bad magic, short file, CRC mismatch)
 *   Incompatible  intact, but from a different translator version,
 *                 target, or codegen configuration
 *   Stale         intact and compatible, but derived from different
 *                 source bytecode
 *   Ok            payload is exactly what a compatible translator
 *                 wrote for this source
 *
 * Anything but Ok means "retranslate": the entry is evicted, a
 * statistic is bumped, and execution proceeds as a cache miss.
 *
 * Layout v3 (all integers little-endian; strings length-prefixed):
 *   magic "LMCE" | envelope version u8
 *   translator version u32 | target name | allocator u8 | coalesce u8
 *   opt level u8 | tier u8
 *   source hash u64 (fnv1a of the function name seeded with the
 *                    fnv1a of the producing module's object code)
 *   profile hash u64 (fnv1a of the serialized edge profile the
 *                     translation was optimized against; 0 = none)
 *   payload length varuint | payload bytes
 *   crc32 u32 over every preceding byte
 *
 * `opt level` is the *requested* level and part of the compatibility
 * key (an -O0 cache must not satisfy an -O2 run). `tier` is the
 * level the translator actually *achieved* for this function after
 * fault-driven degradation or profile-guided promotion; it is
 * carried, not compatibility-checked, so a downgraded function is
 * not re-attempted at the failing tier on every run and a promoted
 * function starts at the trace tier without re-profiling. tier ==
 * kTierInterpreter with an empty payload marks a function pinned to
 * the interpreter; tier == kTierTrace marks a trace-laid-out
 * translation, with `profile hash` identifying the profile that
 * drove it (also carried, not checked — a stale profile only costs
 * layout quality, never correctness).
 */

#ifndef LLVA_LLEE_ENVELOPE_H
#define LLVA_LLEE_ENVELOPE_H

#include <cstdint>
#include <string>
#include <vector>

namespace llva {

/**
 * Version of the translation pipeline whose output lives in the
 * cache. Bump whenever the mcode serialization format or the
 * semantics of translated code change; old entries then classify as
 * Incompatible and are retranslated instead of misinterpreted.
 */
constexpr uint32_t kTranslatorVersion = 3;

/** Tier value marking a function pinned to the interpreter. */
constexpr uint8_t kTierInterpreter = 0xff;

/** Tier value marking a trace-laid-out (promoted) translation. */
constexpr uint8_t kTierTrace = 0xfe;

/** Identifies what produced a cached translation, and from what. */
struct TranslationKey
{
    uint32_t translatorVersion = kTranslatorVersion;
    std::string targetName;
    uint8_t allocator = 0;
    uint8_t coalesce = 0;
    /** Requested optimization level (compatibility-checked). */
    uint8_t optLevel = 0;
    /** Achieved tier (carried, not compatibility-checked). */
    uint8_t tier = 0;
    uint64_t sourceHash = 0;
    /** Hash of the edge profile a trace-tier translation was laid
     *  out against; 0 when unprofiled (carried, not checked). */
    uint64_t profileHash = 0;
};

enum class EnvelopeStatus { Ok, Corrupt, Incompatible, Stale };

/** Wrap \p payload in an integrity envelope under \p key. */
std::vector<uint8_t> sealTranslation(const TranslationKey &key,
                                     const std::vector<uint8_t> &payload);

/**
 * Verify \p envelope against \p expected. On Ok, \p payload receives
 * the enclosed bytes, \p tier (when non-null) the achieved tier, and
 * \p profileHash (when non-null) the embedded profile hash; on any
 * other status \p payload is untouched and no byte of the entry
 * should be trusted. `expected.tier` and `expected.profileHash` are
 * ignored.
 */
EnvelopeStatus openTranslation(const std::vector<uint8_t> &envelope,
                               const TranslationKey &expected,
                               std::vector<uint8_t> &payload,
                               uint8_t *tier = nullptr,
                               uint64_t *profileHash = nullptr);

/**
 * Structural scan without a source program (llva-translate
 * --verify-cache): Ok means the entry is intact and was produced by
 * this translator version; staleness cannot be judged without the
 * source bytecode and is not reported. \p key, when non-null,
 * receives the embedded compatibility key of intact entries.
 */
EnvelopeStatus inspectTranslation(const std::vector<uint8_t> &envelope,
                                  TranslationKey *key = nullptr);

/** Human-readable status name (for tool output and logs). */
const char *envelopeStatusName(EnvelopeStatus status);

// --- Generic blob envelopes ----------------------------------------------

/**
 * Seal an arbitrary payload (e.g. a VM checkpoint) under a caller-
 * chosen 4-byte magic and format version: magic | version u32 |
 * payload length varuint | payload | crc32 u32 over every preceding
 * byte. The same integrity discipline as translation envelopes —
 * nothing in the payload is trusted before the CRC passes.
 */
std::vector<uint8_t> sealBlob(const char magic[4], uint32_t version,
                              const std::vector<uint8_t> &payload);

/**
 * Open a sealed blob: Corrupt on damage (bad magic, short file, CRC
 * mismatch), Incompatible on a version mismatch, otherwise Ok with
 * \p payload receiving the enclosed bytes.
 */
EnvelopeStatus openBlob(const std::vector<uint8_t> &envelope,
                        const char magic[4], uint32_t version,
                        std::vector<uint8_t> &payload);

} // namespace llva

#endif // LLVA_LLEE_ENVELOPE_H
