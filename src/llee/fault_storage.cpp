#include "llee/fault_storage.h"

namespace llva {

/** splitmix64: tiny, well-distributed, and fully deterministic. */
uint64_t
FaultInjectingStorage::next()
{
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ull);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

bool
FaultInjectingStorage::roll(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    // 53 random bits -> uniform double in [0, 1).
    double u = static_cast<double>(next() >> 11) * 0x1.0p-53;
    return u < p;
}

/**
 * Damage a payload the way real storage does: flip a bit, truncate
 * (torn write / short read), zero a span (unwritten page), or
 * append garbage (stale tail after a shrinking rewrite).
 */
void
FaultInjectingStorage::damage(std::vector<uint8_t> &bytes)
{
    ++payloads_damaged_;
    if (bytes.empty()) {
        bytes.push_back(static_cast<uint8_t>(next()));
        return;
    }
    switch (next() & 3) {
      case 0: { // single bit flip
        size_t pos = next() % bytes.size();
        bytes[pos] ^= static_cast<uint8_t>(1u << (next() & 7));
        break;
      }
      case 1: // truncation to a strict prefix
        bytes.resize(next() % bytes.size());
        break;
      case 2: { // zeroed span
        size_t pos = next() % bytes.size();
        size_t len = 1 + next() % 16;
        for (size_t i = pos; i < bytes.size() && i < pos + len; ++i)
            bytes[i] = 0;
        break;
      }
      default: { // appended garbage
        size_t len = 1 + next() % 16;
        for (size_t i = 0; i < len; ++i)
            bytes.push_back(static_cast<uint8_t>(next()));
        break;
      }
    }
}

bool
FaultInjectingStorage::createCache(const std::string &cache)
{
    if (roll(config_.failRate)) {
        ++ops_failed_;
        return false;
    }
    return inner_.createCache(cache);
}

bool
FaultInjectingStorage::deleteCache(const std::string &cache)
{
    if (roll(config_.failRate)) {
        ++ops_failed_;
        return false;
    }
    return inner_.deleteCache(cache);
}

uint64_t
FaultInjectingStorage::cacheSize(const std::string &cache)
{
    if (roll(config_.failRate)) {
        ++ops_failed_;
        return UINT64_MAX;
    }
    return inner_.cacheSize(cache);
}

bool
FaultInjectingStorage::write(const std::string &cache,
                             const std::string &name,
                             const std::vector<uint8_t> &bytes)
{
    if (roll(config_.failRate)) {
        ++ops_failed_;
        return false;
    }
    if (roll(config_.corruptRate)) {
        // Torn write: damaged bytes land in storage, and the write
        // still *reports success* — the worst case the integrity
        // envelope exists to catch.
        std::vector<uint8_t> torn = bytes;
        damage(torn);
        return inner_.write(cache, name, torn);
    }
    return inner_.write(cache, name, bytes);
}

bool
FaultInjectingStorage::read(const std::string &cache,
                            const std::string &name,
                            std::vector<uint8_t> &bytes)
{
    if (roll(config_.failRate)) {
        ++ops_failed_;
        return false;
    }
    if (!inner_.read(cache, name, bytes))
        return false;
    if (roll(config_.corruptRate))
        damage(bytes);
    return true;
}

uint64_t
FaultInjectingStorage::timestamp(const std::string &cache,
                                 const std::string &name)
{
    if (roll(config_.failRate)) {
        ++ops_failed_;
        return 0;
    }
    return inner_.timestamp(cache, name);
}

bool
FaultInjectingStorage::remove(const std::string &cache,
                              const std::string &name)
{
    if (roll(config_.failRate)) {
        ++ops_failed_;
        return false;
    }
    return inner_.remove(cache, name);
}

std::vector<std::string>
FaultInjectingStorage::list(const std::string &cache)
{
    if (roll(config_.failRate)) {
        ++ops_failed_;
        return {};
    }
    return inner_.list(cache);
}

} // namespace llva
