/**
 * @file
 * Fault-injecting storage decorator for robustness testing.
 *
 * Wraps any StorageAPI and, driven by a seeded deterministic PRNG,
 * makes operations fail outright or silently damages the payloads
 * that flow through read() and write() — bit flips, truncations,
 * zeroed spans, appended garbage, torn (partial) writes. This is the
 * adversary the persistent-input boundary is hardened against:
 * under any fault schedule LLEE must produce the same program output
 * as with no storage at all, never crash, and never install a
 * damaged translation (see DESIGN.md section 8).
 *
 * Determinism: the fault schedule is a pure function of the seed and
 * the sequence of calls, so any failure a test run finds is
 * reproducible by rerunning with the same seed.
 */

#ifndef LLVA_LLEE_FAULT_STORAGE_H
#define LLVA_LLEE_FAULT_STORAGE_H

#include "llee/storage.h"

namespace llva {

/** Probabilities and seed for a fault schedule. */
struct FaultConfig
{
    uint64_t seed = 1;
    /** Chance each operation reports failure (dead storage = 1.0). */
    double failRate = 0.0;
    /** Chance each payload crossing the API is damaged in place. */
    double corruptRate = 0.0;
};

class FaultInjectingStorage : public StorageAPI
{
  public:
    FaultInjectingStorage(StorageAPI &inner, FaultConfig config)
        : inner_(inner), config_(config), state_(config.seed | 1)
    {}

    bool createCache(const std::string &cache) override;
    bool deleteCache(const std::string &cache) override;
    uint64_t cacheSize(const std::string &cache) override;
    bool write(const std::string &cache, const std::string &name,
               const std::vector<uint8_t> &bytes) override;
    bool read(const std::string &cache, const std::string &name,
              std::vector<uint8_t> &bytes) override;
    uint64_t timestamp(const std::string &cache,
                       const std::string &name) override;
    bool remove(const std::string &cache,
                const std::string &name) override;
    std::vector<std::string> list(const std::string &cache) override;

    /** Operations failed / payloads damaged so far (telemetry). */
    size_t opsFailed() const { return ops_failed_; }
    size_t payloadsDamaged() const { return payloads_damaged_; }

  private:
    uint64_t next();
    bool roll(double p);
    void damage(std::vector<uint8_t> &bytes);

    StorageAPI &inner_;
    FaultConfig config_;
    uint64_t state_;
    size_t ops_failed_ = 0;
    size_t payloads_damaged_ = 0;
};

} // namespace llva

#endif // LLVA_LLEE_FAULT_STORAGE_H
