#include "llee/llee.h"

#include "bytecode/bytecode.h"
#include "llee/mcode_io.h"
#include "support/hashing.h"
#include "support/timer.h"

namespace llva {

LLEE::LLEE(Target &target, StorageAPI *storage, CodeGenOptions opts)
    : target_(target), storage_(storage), opts_(opts)
{
    if (storage_)
        storage_->createCache(kCacheName);
}

std::string
LLEE::programKey(const std::vector<uint8_t> &bytecode)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  (unsigned long long)fnv1a(bytecode));
    return buf;
}

LLEEResult
LLEE::execute(const std::vector<uint8_t> &bytecode,
              const std::string &entry,
              const std::vector<RtValue> &args)
{
    LLEEResult result;

    // The module hash keys every cached artifact, which makes the
    // paper's timestamp check a content-validity check: a stale
    // translation simply never matches the new key.
    std::string key = programKey(bytecode);
    std::unique_ptr<Module> m = readBytecode(bytecode);

    CodeManager cm(target_, opts_);

    // Look for cached translations of every defined function.
    for (const auto &f : m->functions()) {
        if (f->isDeclaration())
            continue;
        if (!storage_) {
            ++result.cacheMisses;
            continue;
        }
        std::string name = key + "." + f->name() + "." +
                           target_.name() + "." +
                           (opts_.allocator ==
                                    CodeGenOptions::Allocator::Local
                                ? "local"
                                : "lscan");
        std::vector<uint8_t> cached;
        if (storage_->read(kCacheName, name, cached) &&
            storage_->timestamp(kCacheName, name) != 0) {
            cm.install(f.get(),
                       readMachineFunction(cached, *m, f.get()));
            ++result.cacheHits;
        } else {
            ++result.cacheMisses;
        }
    }

    ExecutionContext ctx(*m);
    MachineSimulator sim(ctx, cm);

    const Function *entry_fn = m->getFunction(entry);
    if (!entry_fn || entry_fn->isDeclaration())
        fatal("LLEE: no entry function %%%s", entry.c_str());

    result.exec = sim.run(entry_fn, args);
    result.output = ctx.output();
    result.machineInstructionsExecuted = sim.instructionsExecuted();
    result.functionsTranslatedOnline = cm.functionsTranslated();
    result.onlineTranslateSeconds = cm.totalTranslateSeconds();

    // Write back any translations produced online.
    if (storage_) {
        for (const auto &f : m->functions()) {
            if (f->isDeclaration() || !cm.has(f.get()))
                continue;
            std::string name =
                key + "." + f->name() + "." + target_.name() + "." +
                (opts_.allocator == CodeGenOptions::Allocator::Local
                     ? "local"
                     : "lscan");
            if (storage_->timestamp(kCacheName, name) == 0)
                storage_->write(
                    kCacheName, name,
                    writeMachineFunction(*cm.get(f.get())));
        }
    }
    return result;
}

size_t
LLEE::offlineTranslate(const std::vector<uint8_t> &bytecode)
{
    if (!storage_)
        return 0;
    std::string key = programKey(bytecode);
    std::unique_ptr<Module> m = readBytecode(bytecode);

    CodeManager cm(target_, opts_);
    size_t translated = 0;
    for (const auto &f : m->functions()) {
        if (f->isDeclaration())
            continue;
        std::string name =
            key + "." + f->name() + "." + target_.name() + "." +
            (opts_.allocator == CodeGenOptions::Allocator::Local
                 ? "local"
                 : "lscan");
        if (storage_->timestamp(kCacheName, name) != 0)
            continue; // already translated and current
        storage_->write(kCacheName, name,
                        writeMachineFunction(*cm.get(f.get())));
        ++translated;
    }
    return translated;
}

bool
LLEE::writeProfile(const std::vector<uint8_t> &bytecode,
                   const EdgeProfile &profile, const Module &m)
{
    if (!storage_)
        return false;
    (void)m;
    // Profiles are persisted as block-count and edge-count rows
    // keyed by the program hash.
    std::string text;
    for (const auto &[bb, count] : profile.blocks)
        text += "block " + bb->parent()->name() + " " + bb->name() +
                " " + std::to_string(count) + "\n";
    for (const auto &[edge, count] : profile.edges) {
        const BasicBlock *from = edge.first;
        const BasicBlock *to = edge.second;
        text += "edge " + from->parent()->name() + " " +
                from->name() + " " + to->name() + " " +
                std::to_string(count) + "\n";
    }
    std::vector<uint8_t> bytes(text.begin(), text.end());
    return storage_->write(kCacheName,
                           programKey(bytecode) + ".profile", bytes);
}

} // namespace llva
