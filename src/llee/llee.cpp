#include "llee/llee.h"

#include "bytecode/bytecode.h"
#include "llee/mcode_io.h"
#include "support/hashing.h"
#include "support/statistic.h"
#include "support/timer.h"

namespace llva {

namespace {

Statistic NumCacheHits("llee.cache_hits",
                       "Cached translations loaded from storage");
Statistic NumCacheMisses("llee.cache_misses",
                         "Functions with no valid cached translation");
Statistic NumOfflineTranslations(
    "llee.offline_translations",
    "Functions translated during idle-time offline translation");

} // namespace

LLEE::LLEE(Target &target, StorageAPI *storage, CodeGenOptions opts)
    : target_(target), storage_(storage), opts_(opts)
{
    if (storage_)
        storage_->createCache(kCacheName);
}

std::string
LLEE::programKey(const std::vector<uint8_t> &bytecode)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  (unsigned long long)fnv1a(bytecode));
    return buf;
}

std::string
LLEE::translationKey(const std::string &programKey,
                     const Function &f, const Target &target,
                     const CodeGenOptions &opts)
{
    return programKey + "." + f.name() + "." + target.name() + "." +
           (opts.allocator == CodeGenOptions::Allocator::Local
                ? "local"
                : "lscan");
}

LLEEResult
LLEE::execute(const std::vector<uint8_t> &bytecode,
              const std::string &entry,
              const std::vector<RtValue> &args)
{
    LLEEResult result;

    // The module hash keys every cached artifact, which makes the
    // paper's timestamp check a content-validity check: a stale
    // translation simply never matches the new key.
    std::string progKey = programKey(bytecode);
    std::unique_ptr<Module> m = readBytecode(bytecode);

    CodeManager cm(target_, opts_);

    // Look for cached translations of every defined function.
    std::vector<const Function *> missing;
    for (const auto &f : m->functions()) {
        if (f->isDeclaration())
            continue;
        if (!storage_) {
            ++result.cacheMisses;
            ++NumCacheMisses;
            missing.push_back(f.get());
            continue;
        }
        std::string name = key(progKey, *f);
        std::vector<uint8_t> cached;
        if (storage_->read(kCacheName, name, cached) &&
            storage_->timestamp(kCacheName, name) != 0) {
            cm.install(f.get(),
                       readMachineFunction(cached, *m, f.get()));
            ++result.cacheHits;
            ++NumCacheHits;
        } else {
            ++result.cacheMisses;
            ++NumCacheMisses;
            missing.push_back(f.get());
        }
    }

    // With multiple workers, translate all cache misses eagerly
    // before execution starts (batch "online translation"); serially
    // we keep the lazy on-demand JIT behaviour, where unused code is
    // never translated.
    if (jobs_ > 1)
        cm.translate(missing, jobs_);

    ExecutionContext ctx(*m);
    MachineSimulator sim(ctx, cm);

    const Function *entry_fn = m->getFunction(entry);
    if (!entry_fn || entry_fn->isDeclaration())
        fatal("LLEE: no entry function %%%s", entry.c_str());

    result.exec = sim.run(entry_fn, args);
    result.output = ctx.output();
    result.machineInstructionsExecuted = sim.instructionsExecuted();
    result.functionsTranslatedOnline = cm.functionsTranslated();
    result.onlineTranslateSeconds = cm.totalTranslateSeconds();

    // Write back any translations produced online, in module order.
    if (storage_) {
        for (const auto &f : m->functions()) {
            if (f->isDeclaration() || !cm.has(f.get()))
                continue;
            std::string name = key(progKey, *f);
            if (storage_->timestamp(kCacheName, name) == 0)
                storage_->write(
                    kCacheName, name,
                    writeMachineFunction(*cm.get(f.get())));
        }
    }
    return result;
}

size_t
LLEE::offlineTranslate(const std::vector<uint8_t> &bytecode)
{
    if (!storage_)
        return 0;
    std::string progKey = programKey(bytecode);
    std::unique_ptr<Module> m = readBytecode(bytecode);

    // Incremental retranslation (Section 4.2): entries whose storage
    // timestamp is already set are current — the content hash in the
    // key guarantees it — and are skipped.
    std::vector<const Function *> pending;
    std::vector<std::string> names;
    for (const auto &f : m->functions()) {
        if (f->isDeclaration())
            continue;
        std::string name = key(progKey, *f);
        if (storage_->timestamp(kCacheName, name) != 0)
            continue; // already translated and current
        pending.push_back(f.get());
        names.push_back(std::move(name));
    }
    if (pending.empty())
        return 0;

    CodeManager cm(target_, opts_);
    cm.translate(pending, jobs_);

    // Serial write-back in module order: storage sees the same
    // sequence of writes whether translation ran on 1 thread or N.
    for (size_t i = 0; i < pending.size(); ++i)
        storage_->write(kCacheName, names[i],
                        writeMachineFunction(*cm.get(pending[i])));
    NumOfflineTranslations += pending.size();
    return pending.size();
}

bool
LLEE::writeProfile(const std::vector<uint8_t> &bytecode,
                   const EdgeProfile &profile, const Module &m)
{
    if (!storage_)
        return false;
    (void)m;
    // Profiles are persisted as block-count and edge-count rows
    // keyed by the program hash.
    std::string text;
    for (const auto &[bb, count] : profile.blocks)
        text += "block " + bb->parent()->name() + " " + bb->name() +
                " " + std::to_string(count) + "\n";
    for (const auto &[edge, count] : profile.edges) {
        const BasicBlock *from = edge.first;
        const BasicBlock *to = edge.second;
        text += "edge " + from->parent()->name() + " " +
                from->name() + " " + to->name() + " " +
                std::to_string(count) + "\n";
    }
    std::vector<uint8_t> bytes(text.begin(), text.end());
    return storage_->write(kCacheName,
                           programKey(bytecode) + ".profile", bytes);
}

} // namespace llva
