#include "llee/llee.h"

#include "bytecode/bytecode.h"
#include "llee/envelope.h"
#include "llee/mcode_io.h"
#include "support/hashing.h"
#include "support/statistic.h"
#include "support/thread_pool.h"
#include "support/timer.h"
#include "trace/profile.h"

namespace llva {

namespace {

Statistic NumCacheHits("llee.cache_hits",
                       "Cached translations loaded from storage");
Statistic NumCacheMisses("llee.cache_misses",
                         "Functions with no valid cached translation");
Statistic NumCacheCorrupt(
    "llee.cache_corrupt",
    "Cached translations rejected: damaged bytes (checksum/decode)");
Statistic NumCacheIncompatible(
    "llee.cache_incompatible",
    "Cached translations rejected: other translator/target/options");
Statistic NumCacheStale(
    "llee.cache_stale",
    "Cached translations rejected: derived from different bytecode");
Statistic NumCacheEvicted(
    "llee.cache_evicted",
    "Invalid cache entries deleted from storage");
Statistic NumStorageFailures(
    "llee.storage_failures",
    "Storage API operations that failed (tolerated, non-fatal)");
Statistic NumOfflineTranslations(
    "llee.offline_translations",
    "Functions translated during idle-time offline translation");
Statistic NumTraceTierLoaded(
    "llee.trace_tier_loaded",
    "Cached translations loaded already at the trace tier (warm "
    "restart skipped re-profiling and re-promotion)");
Statistic NumProfileLoads(
    "llee.profile_loads",
    "Persisted edge profiles loaded intact from storage");
Statistic NumProfileRejected(
    "llee.profile_rejected",
    "Persisted edge profiles rejected as damaged and evicted");

/** The compatibility key this environment stamps on / expects from
 *  every cache entry (see envelope.h). */
TranslationKey
compatKey(const Target &target, const CodeGenOptions &opts,
          const std::string &fnName, uint64_t moduleHash)
{
    TranslationKey k;
    k.targetName = target.name();
    k.allocator = static_cast<uint8_t>(opts.allocator);
    k.coalesce = opts.coalesce ? 1 : 0;
    k.optLevel = opts.optLevel;
    k.sourceHash =
        fnv1a(reinterpret_cast<const uint8_t *>(fnName.data()),
              fnName.size(), moduleHash);
    return k;
}

} // namespace

LLEE::LLEE(Target &target, StorageAPI *storage, CodeGenOptions opts)
    : target_(target), storage_(storage), opts_(opts)
{
    // Storage is strictly optional (paper Section 4.1); a cache that
    // cannot even be created degrades every lookup to a miss and
    // every write-back to a tolerated failure, never an error.
    if (storage_ && !storage_->createCache(kCacheName))
        ++NumStorageFailures;
}

std::string
LLEE::programKey(const std::vector<uint8_t> &bytecode)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%016llx",
                  (unsigned long long)fnv1a(bytecode));
    return buf;
}

std::string
LLEE::translationKey(const std::string &programKey,
                     const Function &f, const Target &target,
                     const CodeGenOptions &opts)
{
    return programKey + "." + f.name() + "." + target.name() + "." +
           (opts.allocator == CodeGenOptions::Allocator::Local
                ? "local"
                : "lscan") +
           ".O" + std::to_string(opts.optLevel);
}

LLEEResult
LLEE::execute(const std::vector<uint8_t> &bytecode,
              const std::string &entry,
              const std::vector<RtValue> &args)
{
    LLEEResult result;

    // The module hash keys every cached artifact, which makes the
    // paper's timestamp check a content-validity check: a stale
    // translation simply never matches the new key.
    uint64_t moduleHash = fnv1a(bytecode);
    std::string progKey = programKey(bytecode);
    std::unique_ptr<Module> m = readBytecode(bytecode).orDie();

    CodeManager cm(target_, opts_);
    cm.setHooks(hooks_);

    // Adaptive reoptimization: resume from the persisted profile if
    // one survives intact in storage (a warm restart then starts
    // already knowing what is hot), and arm the promotion watermark.
    // The single-worker pool is the dedicated translation worker the
    // dispatch loop hands promotion jobs to.
    EdgeProfile profile;
    std::unique_ptr<ThreadPool> promotionPool;
    if (opts_.adaptive) {
        result.profileLoaded = readProfile(bytecode, profile);
        promotionPool = std::make_unique<ThreadPool>(1);
        cm.setAdaptive(&profile, opts_.promoteWatermark,
                       promotionPool.get());
    }

    // Look for cached translations of every defined function. An
    // entry is installed only after it passes the full trust
    // boundary: integrity envelope (checksum + compatibility key),
    // structural decode, and validation against the current module.
    // Anything less is evicted and counted, and execution proceeds
    // as a plain cache miss.
    std::vector<const Function *> missing;
    std::map<const Function *, uint8_t> loadedTier;
    for (const auto &f : m->functions()) {
        if (f->isDeclaration())
            continue;
        bool installed = false;
        if (storage_) {
            std::string name = key(progKey, *f);
            std::vector<uint8_t> cached;
            if (storage_->read(kCacheName, name, cached)) {
                TranslationKey want = compatKey(target_, opts_,
                                                f->name(), moduleHash);
                std::vector<uint8_t> payload;
                uint8_t tier = 0;
                EnvelopeStatus st =
                    openTranslation(cached, want, payload, &tier);
                if (st == EnvelopeStatus::Ok) {
                    if (tier == kTierInterpreter && payload.empty()) {
                        // Cached knowledge that every native tier
                        // failed for this function: pin it to the
                        // interpreter instead of re-attempting (and
                        // re-faulting) the whole ladder each run.
                        cm.markInterpreted(f.get());
                        installed = true;
                        ++result.cacheHits;
                        ++NumCacheHits;
                    } else {
                        auto mf =
                            readMachineFunction(payload, *m, f.get());
                        if (mf.ok()) {
                            cm.install(f.get(), mf.take(), tier);
                            installed = true;
                            loadedTier[f.get()] = tier;
                            if (tier == kTierTrace) {
                                ++result.traceTierLoaded;
                                ++NumTraceTierLoaded;
                            }
                            ++result.cacheHits;
                            ++NumCacheHits;
                        } else {
                            // Sealed correctly but undecodable:
                            // damage the checksum missed, or a buggy
                            // producer.
                            st = EnvelopeStatus::Corrupt;
                        }
                    }
                }
                if (!installed) {
                    switch (st) {
                      case EnvelopeStatus::Corrupt:
                        ++NumCacheCorrupt;
                        break;
                      case EnvelopeStatus::Incompatible:
                        ++NumCacheIncompatible;
                        break;
                      case EnvelopeStatus::Stale:
                        ++NumCacheStale;
                        break;
                      case EnvelopeStatus::Ok:
                        break;
                    }
                    ++result.cacheInvalid;
                    if (storage_->remove(kCacheName, name))
                        ++NumCacheEvicted;
                    else
                        ++NumStorageFailures;
                }
            }
        }
        if (!installed) {
            ++result.cacheMisses;
            ++NumCacheMisses;
            missing.push_back(f.get());
        }
    }

    // With multiple workers, translate all cache misses eagerly
    // before execution starts (batch "online translation"); serially
    // we keep the lazy on-demand JIT behaviour, where unused code is
    // never translated.
    if (jobs_ > 1)
        cm.translate(missing, jobs_);

    ExecutionContext ctx(*m);
    MachineSimulator sim(ctx, cm);
    sim.setDispatch(dispatch_);
    sim.setProfileSampleInterval(sampleInterval_);
    if (opts_.adaptive)
        sim.setProfile(&profile);

    const Function *entry_fn = m->getFunction(entry);
    if (!entry_fn || entry_fn->isDeclaration())
        fatal("LLEE: no entry function %%%s", entry.c_str());

    result.exec = sim.run(entry_fn, args);
    result.output = ctx.output();
    result.machineInstructionsExecuted = sim.instructionsExecuted();
    result.functionsTranslatedOnline = cm.functionsTranslated();
    result.onlineTranslateSeconds = cm.totalTranslateSeconds();
    result.tierDowngrades = cm.tierDowngrades();
    for (const auto &f : m->functions())
        if (!f->isDeclaration() && cm.isInterpreted(f.get()))
            ++result.functionsInterpreted;
    if (opts_.adaptive) {
        result.promotions = cm.promotions();
        result.promotionFailures = cm.promotionFailures();
        result.profileSamples = profile.samples;
        result.traceCoverage = cm.lastTraceCoverage();
    }

    // Write back any translations produced online, in module order.
    // Failures are tolerated: the next run simply translates again.
    // Interpreter-pinned functions get an empty marker entry so the
    // next run does not re-walk (and re-fault) the whole tier
    // ladder for them. A function promoted to the trace tier this
    // run *overwrites* its existing entry — that is the whole point
    // of promotion: the next (warm) start loads the trace-tier body
    // directly and skips re-profiling.
    if (storage_) {
        for (const auto &f : m->functions()) {
            if (f->isDeclaration())
                continue;
            const bool interp = cm.isInterpreted(f.get());
            if (!interp && !cm.has(f.get()))
                continue;
            uint8_t achieved =
                interp ? kTierInterpreter : cm.tierOf(f.get());
            auto lt = loadedTier.find(f.get());
            const bool promoted =
                achieved == kTierTrace &&
                (lt == loadedTier.end() || lt->second != kTierTrace);
            std::string name = key(progKey, *f);
            if (!promoted &&
                storage_->timestamp(kCacheName, name) != 0)
                continue; // valid entry already present
            TranslationKey k =
                compatKey(target_, opts_, f->name(), moduleHash);
            k.tier = achieved;
            if (achieved == kTierTrace)
                k.profileHash = profileHash(profile);
            std::vector<uint8_t> sealed = sealTranslation(
                k, interp ? std::vector<uint8_t>{}
                          : writeMachineFunction(*cm.get(f.get())));
            if (!storage_->write(kCacheName, name, sealed))
                ++NumStorageFailures;
        }
        // Persist the accumulated profile alongside the code so the
        // next run resumes with this run's knowledge of what is hot.
        if (opts_.adaptive && !profile.empty())
            writeProfile(bytecode, profile, *m);
    }
    return result;
}

size_t
LLEE::offlineTranslate(const std::vector<uint8_t> &bytecode)
{
    if (!storage_)
        return 0;
    uint64_t moduleHash = fnv1a(bytecode);
    std::string progKey = programKey(bytecode);
    std::unique_ptr<Module> m = readBytecode(bytecode).orDie();

    // Incremental retranslation (Section 4.2): entries whose storage
    // timestamp is already set are current — the content hash in the
    // key guarantees it — and are skipped. Entries that turn out to
    // be damaged anyway are caught at load time by execute()'s
    // envelope check, evicted, and retranslated there.
    std::vector<const Function *> pending;
    std::vector<std::string> names;
    for (const auto &f : m->functions()) {
        if (f->isDeclaration())
            continue;
        std::string name = key(progKey, *f);
        if (storage_->timestamp(kCacheName, name) != 0)
            continue; // already translated and current
        pending.push_back(f.get());
        names.push_back(std::move(name));
    }
    if (pending.empty())
        return 0;

    CodeManager cm(target_, opts_);
    cm.setHooks(hooks_);
    cm.translate(pending, jobs_);

    // Serial write-back in module order: storage sees the same
    // sequence of writes whether translation ran on 1 thread or N.
    for (size_t i = 0; i < pending.size(); ++i) {
        const bool interp = cm.isInterpreted(pending[i]);
        TranslationKey k =
            compatKey(target_, opts_, pending[i]->name(), moduleHash);
        k.tier = interp ? kTierInterpreter : cm.tierOf(pending[i]);
        std::vector<uint8_t> sealed = sealTranslation(
            k, interp ? std::vector<uint8_t>{}
                      : writeMachineFunction(*cm.get(pending[i])));
        if (!storage_->write(kCacheName, names[i], sealed))
            ++NumStorageFailures;
    }
    NumOfflineTranslations += pending.size();
    return pending.size();
}

bool
LLEE::writeProfile(const std::vector<uint8_t> &bytecode,
                   const EdgeProfile &profile, const Module &m)
{
    if (!storage_)
        return false;
    (void)m; // keys are stable block IDs; no module needed
    return storage_->write(kCacheName,
                           programKey(bytecode) + ".profile",
                           writeEdgeProfile(profile));
}

bool
LLEE::readProfile(const std::vector<uint8_t> &bytecode,
                  EdgeProfile &profile)
{
    if (!storage_)
        return false;
    std::string name = programKey(bytecode) + ".profile";
    std::vector<uint8_t> bytes;
    if (!storage_->read(kCacheName, name, bytes))
        return false;
    // Persisted profiles cross the same trust boundary as cached
    // translations: damage costs the profile (re-profile from
    // scratch), never the run.
    Expected<EdgeProfile> parsed = readEdgeProfile(bytes);
    if (!parsed.ok()) {
        ++NumProfileRejected;
        if (storage_->remove(kCacheName, name))
            ++NumCacheEvicted;
        else
            ++NumStorageFailures;
        return false;
    }
    profile = parsed.take();
    ++NumProfileLoads;
    return true;
}

} // namespace llva
