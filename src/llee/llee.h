/**
 * @file
 * LLEE: the LLVA Execution Environment (paper Section 4.1, Fig. 3).
 *
 * Strategy: "offline translation when possible, online translation
 * whenever necessary." When asked to execute a virtual executable,
 * LLEE consults the (optional) OS-provided storage API for cached
 * native translations keyed by a hash of the virtual object code;
 * hits are loaded and relocated, misses are JIT-translated and
 * written back. An OS can also ask LLEE to translate a program
 * during idle time without running it (offlineTranslate), and
 * profile information collected at runtime is persisted the same
 * way for idle-time profile-guided optimization.
 */

#ifndef LLVA_LLEE_LLEE_H
#define LLVA_LLEE_LLEE_H

#include <memory>
#include <string>

#include "llee/storage.h"
#include "vm/interpreter.h"
#include "vm/machine_sim.h"

namespace llva {

/** Outcome of one LLEE program execution, with cache telemetry. */
struct LLEEResult
{
    ExecResult exec;
    std::string output;
    size_t cacheHits = 0;
    size_t cacheMisses = 0;
    /** Entries found but rejected (corrupt/incompatible/stale) and
     *  evicted; each also counts as a miss. */
    size_t cacheInvalid = 0;
    size_t functionsTranslatedOnline = 0;
    double onlineTranslateSeconds = 0;
    uint64_t machineInstructionsExecuted = 0;
    /** Translation tiers abandoned after contained faults (one per
     *  demotion step on the -O2 → -O1 → -O0 → interpreter ladder). */
    size_t tierDowngrades = 0;
    /** Functions executed by the interpreter tier of last resort. */
    size_t functionsInterpreted = 0;
    // --- Adaptive reoptimization (opts.adaptive) --------------------------
    /** Functions promoted to the trace tier during this run. */
    size_t promotions = 0;
    /** Trace-tier promotions that failed (previous tier kept). */
    size_t promotionFailures = 0;
    /** Block executions recorded into the edge profile (this run's
     *  contribution plus any profile loaded from storage). */
    uint64_t profileSamples = 0;
    /** Coverage of the last promotion's trace set (0..1). */
    double traceCoverage = 0;
    /** Cached translations loaded already at the trace tier — a warm
     *  restart after a profiled run starts here, skipping both
     *  re-profiling and re-promotion. */
    size_t traceTierLoaded = 0;
    /** True when a persisted profile was found, intact, and loaded
     *  (re-profiling from zero was not needed). */
    bool profileLoaded = false;
};

class LLEE
{
  public:
    /**
     * \p storage may be null: the system operates correctly without
     * it, translating online on every run (the DAISY/Crusoe
     * situation the paper contrasts against).
     */
    LLEE(Target &target, StorageAPI *storage,
         CodeGenOptions opts = {});

    /**
     * Worker threads for translation (default 1 = serial). Parallel
     * and serial translation produce byte-identical machine code;
     * only the wall-clock cost changes.
     */
    void setJobs(unsigned jobs) { jobs_ = jobs ? jobs : 1; }
    unsigned jobs() const { return jobs_; }

    /** Inner-loop dispatch strategy of the simulated processor
     *  (default: direct-threaded with superblock chaining). */
    void setDispatch(MachineSimulator::Dispatch d) { dispatch_ = d; }

    /** Sampled profiling: record every Nth block event with weight
     *  N (1 = exact counting). See MachineSimulator. */
    void setProfileSampleInterval(uint64_t n)
    {
        sampleInterval_ = n ? n : 1;
    }

    /** Test seams into the translation pipeline (fault injection);
     *  forwarded to every CodeManager this environment creates. */
    void setHooks(TranslationHooks hooks) { hooks_ = std::move(hooks); }

    /**
     * Load a virtual executable (bytecode), then run \p entry.
     * Cached translations are used when valid; new translations are
     * written back if storage is available.
     */
    LLEEResult execute(const std::vector<uint8_t> &bytecode,
                       const std::string &entry = "main",
                       const std::vector<RtValue> &args = {});

    /**
     * "During idle times, the OS can notify LLEE to perform offline
     * translation of an LLVA program" — translate and cache every
     * function without executing anything.
     */
    size_t offlineTranslate(const std::vector<uint8_t> &bytecode);

    /** Persist an edge profile for idle-time PGO (binary format of
     *  trace/profile.h, integrity-checked on load). */
    bool writeProfile(const std::vector<uint8_t> &bytecode,
                      const EdgeProfile &profile, const Module &m);

    /**
     * Load the persisted edge profile for \p bytecode into
     * \p profile. False when storage is absent, the entry is
     * missing, or its bytes are damaged (damage also evicts the
     * entry) — the caller simply profiles from scratch.
     */
    bool readProfile(const std::vector<uint8_t> &bytecode,
                     EdgeProfile &profile);

    /** Cache key prefix for a program (content hash). */
    static std::string programKey(const std::vector<uint8_t> &bytecode);

    /**
     * Storage name of one function's cached translation:
     * "<program>.<function>.<target>.<allocator>.O<level>". Every
     * lookup and write-back uses this single helper, so the key
     * scheme cannot silently drift between the read, write-back, and
     * offline paths.
     */
    static std::string translationKey(const std::string &programKey,
                                      const Function &f,
                                      const Target &target,
                                      const CodeGenOptions &opts);

  private:
    static constexpr const char *kCacheName = "llee-native-cache";

    /** translationKey against this environment's target/options. */
    std::string key(const std::string &programKey,
                    const Function &f) const
    {
        return translationKey(programKey, f, target_, opts_);
    }

    Target &target_;
    StorageAPI *storage_;
    CodeGenOptions opts_;
    TranslationHooks hooks_;
    unsigned jobs_ = 1;
    MachineSimulator::Dispatch dispatch_ =
        MachineSimulator::Dispatch::Threaded;
    uint64_t sampleInterval_ = 1;
};

} // namespace llva

#endif // LLVA_LLEE_LLEE_H
