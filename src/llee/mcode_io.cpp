#include "llee/mcode_io.h"

#include "support/byte_io.h"

namespace llva {

std::vector<uint8_t>
writeMachineFunction(const MachineFunction &mf)
{
    ByteWriter w;
    w.writeString(mf.targetName());
    w.writeString(mf.name());
    w.writeVaruint(mf.frameSize());
    w.writeVaruint(mf.blocks().size());
    // Block names are cosmetic and not serialized; blocks are
    // identified by index.
    for (const auto &mbb : mf.blocks()) {
        w.writeVaruint(mbb->successors().size());
        for (const MachineBasicBlock *succ : mbb->successors())
            w.writeVaruint(succ->index());
        w.writeVaruint(mbb->instrs().size());
        for (const auto &mi : mbb->instrs()) {
            w.writeVaruint(mi->opcode);
            w.writeByte(mi->numDefs);
            uint8_t flags = (mi->trapEnabled ? 1 : 0) |
                            (mi->isCall ? 2 : 0) |
                            (mi->isRet ? 4 : 0) |
                            (mi->signExt ? 8 : 0) |
                            (mi->fp32 ? 16 : 0);
            w.writeByte(flags);
            w.writeByte(mi->width);
            w.writeVaruint(mi->ops.size());
            for (const MOperand &op : mi->ops) {
                w.writeByte(static_cast<uint8_t>(op.kind));
                switch (op.kind) {
                  case MOperand::Reg:
                    w.writeVaruint(op.reg);
                    break;
                  case MOperand::Imm:
                    w.writeVarint(op.imm);
                    break;
                  case MOperand::FPImm:
                    w.writeDouble(op.fpimm);
                    break;
                  case MOperand::Frame:
                    w.writeVarint(op.frameIndex);
                    break;
                  case MOperand::Block:
                    w.writeVaruint(op.block->index());
                    break;
                  case MOperand::Global:
                    w.writeString(op.global->name());
                    break;
                  case MOperand::Func:
                    w.writeString(op.func->name());
                    break;
                }
            }
        }
    }
    return w.takeBytes();
}

std::unique_ptr<MachineFunction>
readMachineFunction(const std::vector<uint8_t> &bytes, const Module &m,
                    const Function *source)
{
    ByteReader r(bytes);
    std::string target_name = r.readString();
    std::string fn_name = r.readString();
    if (fn_name != source->name())
        fatal("cached translation is for %%%s, not %%%s",
              fn_name.c_str(), source->name().c_str());

    auto mf = std::make_unique<MachineFunction>(source, target_name);
    mf->setFrameSize(r.readVaruint());

    uint64_t num_blocks = r.readVaruint();
    std::vector<MachineBasicBlock *> blocks;
    // Two passes are unnecessary if blocks are created up front; the
    // stream interleaves block payloads, so pre-scan is impossible —
    // instead create all blocks lazily by index with temporary names
    // and fill payloads in order. Successor and branch references use
    // indices, which are stable.
    struct PendingInstr
    {
        MachineInstr *mi;
        std::vector<std::pair<size_t, uint64_t>> blockRefs;
    };

    // First create shells (names read later would be nicer, but the
    // format stores name at payload start — so do a single pass and
    // patch block pointers afterwards).
    for (uint64_t i = 0; i < num_blocks; ++i)
        blocks.push_back(mf->createBlock("b" + std::to_string(i)));

    std::vector<std::vector<uint64_t>> succIndexes(num_blocks);
    std::vector<PendingInstr> pending;

    for (uint64_t b = 0; b < num_blocks; ++b) {
        MachineBasicBlock *mbb = blocks[b];
        uint64_t nsucc = r.readVaruint();
        for (uint64_t s = 0; s < nsucc; ++s)
            succIndexes[b].push_back(r.readVaruint());
        uint64_t ninstr = r.readVaruint();
        for (uint64_t k = 0; k < ninstr; ++k) {
            uint64_t opcode = r.readVaruint();
            uint8_t defs = r.readByte();
            uint8_t flags = r.readByte();
            uint8_t width = r.readByte();
            uint64_t nops = r.readVaruint();
            std::vector<MOperand> ops;
            PendingInstr pend;
            for (uint64_t o = 0; o < nops; ++o) {
                auto kind =
                    static_cast<MOperand::Kind>(r.readByte());
                switch (kind) {
                  case MOperand::Reg:
                    ops.push_back(MOperand::makeReg(
                        static_cast<unsigned>(r.readVaruint())));
                    break;
                  case MOperand::Imm:
                    ops.push_back(MOperand::makeImm(r.readVarint()));
                    break;
                  case MOperand::FPImm:
                    ops.push_back(
                        MOperand::makeFPImm(r.readDouble()));
                    break;
                  case MOperand::Frame:
                    ops.push_back(MOperand::makeFrame(
                        static_cast<int>(r.readVarint())));
                    break;
                  case MOperand::Block: {
                    uint64_t idx = r.readVaruint();
                    pend.blockRefs.emplace_back(ops.size(), idx);
                    ops.push_back(MOperand::makeBlock(nullptr));
                    break;
                  }
                  case MOperand::Global: {
                    std::string gname = r.readString();
                    const GlobalVariable *g = m.getGlobal(gname);
                    if (!g)
                        fatal("cached code references unknown "
                              "global %%%s",
                              gname.c_str());
                    ops.push_back(MOperand::makeGlobal(g));
                    break;
                  }
                  case MOperand::Func: {
                    std::string fname = r.readString();
                    const Function *fn = m.getFunction(fname);
                    if (!fn)
                        fatal("cached code references unknown "
                              "function %%%s",
                              fname.c_str());
                    ops.push_back(MOperand::makeFunc(fn));
                    break;
                  }
                  default:
                    fatal("bad operand kind in cached code");
                }
            }
            MachineInstr *mi =
                mbb->append(static_cast<uint16_t>(opcode),
                            std::move(ops), defs);
            mi->trapEnabled = flags & 1;
            mi->isCall = (flags & 2) != 0;
            mi->isRet = (flags & 4) != 0;
            mi->signExt = (flags & 8) != 0;
            mi->fp32 = (flags & 16) != 0;
            mi->width = width;
            if (!pend.blockRefs.empty()) {
                pend.mi = mi;
                pending.push_back(std::move(pend));
            }
        }
    }

    // Patch block references now that every block exists.
    for (auto &pend : pending)
        for (auto &[slot, idx] : pend.blockRefs) {
            if (idx >= blocks.size())
                fatal("bad block index in cached code");
            pend.mi->ops[slot].block = blocks[idx];
        }
    for (uint64_t b = 0; b < num_blocks; ++b)
        for (uint64_t idx : succIndexes[b]) {
            if (idx >= blocks.size())
                fatal("bad successor index in cached code");
            blocks[b]->successors().push_back(blocks[idx]);
        }

    return mf;
}

} // namespace llva
