#include "llee/mcode_io.h"

#include "support/byte_io.h"

namespace llva {

namespace {

std::unique_ptr<MachineFunction>
readMachineFunctionImpl(const std::vector<uint8_t> &bytes,
                        const Module &m, const Function *source)
{
    ByteReader r(bytes);
    std::string target_name = r.readString();
    std::string fn_name = r.readString();
    if (fn_name != source->name())
        fatal("cached translation is for %%%s, not %%%s",
              fn_name.c_str(), source->name().c_str());
    // The signature check catches the subtle stale case: same module
    // hash collision or hand-edited cache where the name matches but
    // the function changed shape — installing such a body would
    // corrupt the simulator's call frames.
    std::string sig = r.readString();
    if (sig != source->functionType()->str())
        fatal("cached translation signature %s does not match %%%s "
              "(%s)",
              sig.c_str(), source->name().c_str(),
              source->functionType()->str().c_str());

    auto mf = std::make_unique<MachineFunction>(source, target_name);
    mf->setFrameSize(r.readVaruint());

    uint64_t num_blocks = r.readVaruint();
    // Every block costs at least two stream bytes (successor count +
    // instruction count); a larger claim is a corrupt length field.
    if (num_blocks > r.remaining())
        fatal("cached code block count %llu exceeds remaining %zu "
              "bytes",
              (unsigned long long)num_blocks, r.remaining());
    std::vector<MachineBasicBlock *> blocks;
    struct PendingInstr
    {
        MachineInstr *mi;
        std::vector<std::pair<size_t, uint64_t>> blockRefs;
    };

    // Create shells up front; block payloads follow in order, and
    // successor/branch references are patched by index afterwards.
    // Names come from the stream: the adaptive tier keys runtime
    // profiles by block name, so a cached body must keep the block
    // identities the profiler will report against.
    for (uint64_t i = 0; i < num_blocks; ++i)
        blocks.push_back(mf->createBlock(r.readString()));

    std::vector<std::vector<uint64_t>> succIndexes(num_blocks);
    std::vector<PendingInstr> pending;

    for (uint64_t b = 0; b < num_blocks; ++b) {
        MachineBasicBlock *mbb = blocks[b];
        // A successor list may be longer than the block count: a
        // folded multiway compare chain legitimately lists the same
        // target many times (197.parser's digit dispatch has 12
        // successors over 11 blocks). The corruption bound is the
        // stream — every successor costs at least one byte — and
        // each index is still range-checked when patched below.
        uint64_t nsucc = r.readVaruint();
        if (nsucc > r.remaining())
            fatal("cached code successor count %llu exceeds "
                  "remaining %zu bytes",
                  (unsigned long long)nsucc, r.remaining());
        for (uint64_t s = 0; s < nsucc; ++s)
            succIndexes[b].push_back(r.readVaruint());
        uint64_t ninstr = r.readVaruint();
        if (ninstr > r.remaining())
            fatal("cached code instruction count %llu exceeds "
                  "remaining %zu bytes",
                  (unsigned long long)ninstr, r.remaining());
        for (uint64_t k = 0; k < ninstr; ++k) {
            uint64_t opcode = r.readVaruint();
            if (opcode > UINT16_MAX)
                fatal("bad machine opcode in cached code");
            uint8_t defs = r.readByte();
            uint8_t flags = r.readByte();
            uint8_t width = r.readByte();
            uint64_t nops = r.readVaruint();
            if (nops > r.remaining())
                fatal("cached code operand count %llu exceeds "
                      "remaining %zu bytes",
                      (unsigned long long)nops, r.remaining());
            std::vector<MOperand> ops;
            PendingInstr pend;
            for (uint64_t o = 0; o < nops; ++o) {
                auto kind =
                    static_cast<MOperand::Kind>(r.readByte());
                switch (kind) {
                  case MOperand::Reg: {
                    uint64_t reg = r.readVaruint();
                    // Cached bodies are post-register-allocation; a
                    // virtual register can only mean damage (or a
                    // huge physical number that would index past the
                    // simulator's register file).
                    if (reg >= kFirstVirtualReg)
                        fatal("virtual register %llu in cached code",
                              (unsigned long long)reg);
                    ops.push_back(MOperand::makeReg(
                        static_cast<unsigned>(reg)));
                    break;
                  }
                  case MOperand::Imm:
                    ops.push_back(MOperand::makeImm(r.readVarint()));
                    break;
                  case MOperand::FPImm:
                    ops.push_back(
                        MOperand::makeFPImm(r.readDouble()));
                    break;
                  case MOperand::Frame:
                    ops.push_back(MOperand::makeFrame(
                        static_cast<int>(r.readVarint())));
                    break;
                  case MOperand::Block: {
                    uint64_t idx = r.readVaruint();
                    if (idx >= num_blocks)
                        fatal("bad block index in cached code");
                    pend.blockRefs.emplace_back(ops.size(), idx);
                    ops.push_back(MOperand::makeBlock(nullptr));
                    break;
                  }
                  case MOperand::Global: {
                    std::string gname = r.readString();
                    const GlobalVariable *g = m.getGlobal(gname);
                    if (!g)
                        fatal("cached code references unknown "
                              "global %%%s",
                              gname.c_str());
                    ops.push_back(MOperand::makeGlobal(g));
                    break;
                  }
                  case MOperand::Func: {
                    std::string fname = r.readString();
                    const Function *fn = m.getFunction(fname);
                    if (!fn)
                        fatal("cached code references unknown "
                              "function %%%s",
                              fname.c_str());
                    ops.push_back(MOperand::makeFunc(fn));
                    break;
                  }
                  default:
                    fatal("bad operand kind in cached code");
                }
            }
            if (defs > ops.size())
                fatal("cached instruction defines %u of %zu operands",
                      defs, ops.size());
            MachineInstr *mi =
                mbb->append(static_cast<uint16_t>(opcode),
                            std::move(ops), defs);
            mi->trapEnabled = flags & 1;
            mi->isCall = (flags & 2) != 0;
            mi->isRet = (flags & 4) != 0;
            mi->signExt = (flags & 8) != 0;
            mi->fp32 = (flags & 16) != 0;
            mi->width = width;
            if (!pend.blockRefs.empty()) {
                pend.mi = mi;
                pending.push_back(std::move(pend));
            }
        }
    }
    if (!r.atEnd())
        fatal("%zu trailing bytes after cached code", r.remaining());

    // Patch block references now that every block exists.
    for (auto &pend : pending)
        for (auto &[slot, idx] : pend.blockRefs)
            pend.mi->ops[slot].block = blocks[idx];
    for (uint64_t b = 0; b < num_blocks; ++b)
        for (uint64_t idx : succIndexes[b]) {
            if (idx >= blocks.size())
                fatal("bad successor index in cached code");
            blocks[b]->successors().push_back(blocks[idx]);
        }

    return mf;
}

} // namespace

std::vector<uint8_t>
writeMachineFunction(const MachineFunction &mf)
{
    ByteWriter w;
    w.writeString(mf.targetName());
    w.writeString(mf.name());
    w.writeString(mf.source()->functionType()->str());
    w.writeVaruint(mf.frameSize());
    w.writeVaruint(mf.blocks().size());
    // Cross-references use block indexes, but names are serialized
    // too: stable block identity is what lets a profile gathered
    // over a cached body drive trace formation on the IR.
    for (const auto &mbb : mf.blocks())
        w.writeString(mbb->name());
    for (const auto &mbb : mf.blocks()) {
        w.writeVaruint(mbb->successors().size());
        for (const MachineBasicBlock *succ : mbb->successors())
            w.writeVaruint(succ->index());
        w.writeVaruint(mbb->instrs().size());
        for (const auto &mi : mbb->instrs()) {
            w.writeVaruint(mi->opcode);
            w.writeByte(mi->numDefs);
            uint8_t flags = (mi->trapEnabled ? 1 : 0) |
                            (mi->isCall ? 2 : 0) |
                            (mi->isRet ? 4 : 0) |
                            (mi->signExt ? 8 : 0) |
                            (mi->fp32 ? 16 : 0);
            w.writeByte(flags);
            w.writeByte(mi->width);
            w.writeVaruint(mi->ops.size());
            for (const MOperand &op : mi->ops) {
                w.writeByte(static_cast<uint8_t>(op.kind));
                switch (op.kind) {
                  case MOperand::Reg:
                    w.writeVaruint(op.reg);
                    break;
                  case MOperand::Imm:
                    w.writeVarint(op.imm);
                    break;
                  case MOperand::FPImm:
                    w.writeDouble(op.fpimm);
                    break;
                  case MOperand::Frame:
                    w.writeVarint(op.frameIndex);
                    break;
                  case MOperand::Block:
                    w.writeVaruint(op.block->index());
                    break;
                  case MOperand::Global:
                    w.writeString(op.global->name());
                    break;
                  case MOperand::Func:
                    w.writeString(op.func->name());
                    break;
                }
            }
        }
    }
    return w.takeBytes();
}

Expected<std::unique_ptr<MachineFunction>>
readMachineFunction(const std::vector<uint8_t> &bytes, const Module &m,
                    const Function *source)
{
    try {
        return readMachineFunctionImpl(bytes, m, source);
    } catch (const FatalError &e) {
        return Error(e.what());
    }
}

} // namespace llva
