/**
 * @file
 * Serialization of translated machine code for the offline cache.
 * Symbolic operands (globals, functions) are stored by name and
 * re-resolved against the module on load — the "relocation as
 * necessary on the native code" step of paper Section 4.1.
 *
 * The serialized form records the source function's name and type
 * signature so that a reconstructed body is validated against the
 * module it is about to be installed into, not just trusted by file
 * name. Cached bytes are untrusted input (they normally arrive
 * inside the integrity envelope of envelope.h, but the reader does
 * not rely on that): every malformed shape is reported as a
 * recoverable Error, never an escaping exception.
 */

#ifndef LLVA_LLEE_MCODE_IO_H
#define LLVA_LLEE_MCODE_IO_H

#include <memory>
#include <vector>

#include "codegen/machine.h"
#include "support/expected.h"

namespace llva {

/** Serialize \p mf (post-register-allocation form). */
std::vector<uint8_t> writeMachineFunction(const MachineFunction &mf);

/**
 * Reconstruct a machine function for \p source from cached bytes,
 * resolving global/function names against \p m. Malformed input —
 * truncation, bad counts or indices, a body recorded for a different
 * function or signature, unresolvable names, virtual registers in
 * what must be post-allocation code — yields an Error.
 */
Expected<std::unique_ptr<MachineFunction>>
readMachineFunction(const std::vector<uint8_t> &bytes, const Module &m,
                    const Function *source);

} // namespace llva

#endif // LLVA_LLEE_MCODE_IO_H
