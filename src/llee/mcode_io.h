/**
 * @file
 * Serialization of translated machine code for the offline cache.
 * Symbolic operands (globals, functions) are stored by name and
 * re-resolved against the module on load — the "relocation as
 * necessary on the native code" step of paper Section 4.1.
 */

#ifndef LLVA_LLEE_MCODE_IO_H
#define LLVA_LLEE_MCODE_IO_H

#include <memory>
#include <vector>

#include "codegen/machine.h"

namespace llva {

/** Serialize \p mf (post-register-allocation form). */
std::vector<uint8_t> writeMachineFunction(const MachineFunction &mf);

/**
 * Reconstruct a machine function for \p source from cached bytes,
 * resolving global/function names against \p m. Throws FatalError on
 * malformed or unresolvable input.
 */
std::unique_ptr<MachineFunction>
readMachineFunction(const std::vector<uint8_t> &bytes, const Module &m,
                    const Function *source);

} // namespace llva

#endif // LLVA_LLEE_MCODE_IO_H
