#include "llee/storage.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

#include <fcntl.h>
#include <unistd.h>

namespace llva {

namespace fs = std::filesystem;

// --- MemoryStorage ---------------------------------------------------------

bool
MemoryStorage::createCache(const std::string &cache)
{
    caches_.try_emplace(cache);
    return true;
}

bool
MemoryStorage::deleteCache(const std::string &cache)
{
    return caches_.erase(cache) != 0;
}

uint64_t
MemoryStorage::cacheSize(const std::string &cache)
{
    auto it = caches_.find(cache);
    if (it == caches_.end())
        return UINT64_MAX;
    uint64_t total = 0;
    for (const auto &[name, e] : it->second)
        total += e.bytes.size();
    return total;
}

bool
MemoryStorage::write(const std::string &cache, const std::string &name,
                     const std::vector<uint8_t> &bytes)
{
    auto it = caches_.find(cache);
    if (it == caches_.end())
        return false;
    it->second[name] = {bytes, clock_++};
    return true;
}

bool
MemoryStorage::read(const std::string &cache, const std::string &name,
                    std::vector<uint8_t> &bytes)
{
    auto it = caches_.find(cache);
    if (it == caches_.end())
        return false;
    auto eit = it->second.find(name);
    if (eit == it->second.end())
        return false;
    bytes = eit->second.bytes;
    return true;
}

uint64_t
MemoryStorage::timestamp(const std::string &cache,
                         const std::string &name)
{
    auto it = caches_.find(cache);
    if (it == caches_.end())
        return 0;
    auto eit = it->second.find(name);
    return eit == it->second.end() ? 0 : eit->second.stamp;
}

bool
MemoryStorage::remove(const std::string &cache,
                      const std::string &name)
{
    auto it = caches_.find(cache);
    if (it == caches_.end())
        return false;
    return it->second.erase(name) != 0;
}

std::vector<std::string>
MemoryStorage::list(const std::string &cache)
{
    std::vector<std::string> out;
    auto it = caches_.find(cache);
    if (it != caches_.end())
        for (const auto &[name, e] : it->second)
            out.push_back(name);
    return out;
}

// --- FileStorage -----------------------------------------------------------

namespace {

/** Byte-vector names may contain '/' etc.; flatten for filenames. */
std::string
mangle(const std::string &name)
{
    std::string out;
    for (char c : name) {
        if (isalnum(static_cast<unsigned char>(c)) || c == '.' ||
            c == '-' || c == '_')
            out += c;
        else
            out += '_';
    }
    return out;
}

/** Suffix of in-flight temp files; never a valid entry name (entry
 *  names end in a key component, and list() filters the suffix). */
constexpr const char *kTmpSuffix = ".tmp";

bool
hasTmpSuffix(const std::string &s)
{
    constexpr size_t n = 4;
    return s.size() >= n && s.compare(s.size() - n, n, kTmpSuffix) == 0;
}

} // namespace

std::string
FileStorage::path(const std::string &cache,
                  const std::string &name) const
{
    std::string p = root_ + "/" + mangle(cache);
    if (!name.empty())
        p += "/" + mangle(name);
    return p;
}

bool
FileStorage::createCache(const std::string &cache)
{
    std::error_code ec;
    fs::create_directories(path(cache), ec);
    return !ec;
}

bool
FileStorage::deleteCache(const std::string &cache)
{
    std::error_code ec;
    fs::remove_all(path(cache), ec);
    return !ec;
}

uint64_t
FileStorage::cacheSize(const std::string &cache)
{
    std::error_code ec;
    if (!fs::is_directory(path(cache), ec))
        return UINT64_MAX;
    uint64_t total = 0;
    for (const auto &entry :
         fs::directory_iterator(path(cache), ec)) {
        if (hasTmpSuffix(entry.path().filename().string()))
            continue; // in-flight or abandoned partial write
        if (entry.is_regular_file(ec) && !ec)
            total += entry.file_size(ec);
        if (ec)
            ec.clear();
    }
    return total;
}

bool
FileStorage::write(const std::string &cache, const std::string &name,
                   const std::vector<uint8_t> &bytes)
{
    // Crash-safe publish: write everything to a temp file in the
    // same directory, fsync it, then rename over the target. A crash
    // or failure at any point leaves either the old entry or no
    // entry — never a torn one — plus at worst an orphaned .tmp that
    // list()/cacheSize() ignore and the next write replaces.
    std::string final_path = path(cache, name);
    std::string tmp_path = final_path + kTmpSuffix;

    // The cache directory may have been removed behind our back;
    // recreate it on demand rather than failing permanently.
    std::error_code ec;
    if (!fs::is_directory(path(cache), ec))
        if (!createCache(cache))
            return false;

    int fd = ::open(tmp_path.c_str(),
                    O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (fd < 0)
        return false;
    size_t done = 0;
    while (done < bytes.size()) {
        ssize_t n = ::write(fd, bytes.data() + done,
                            bytes.size() - done);
        if (n < 0) {
            ::close(fd);
            ::unlink(tmp_path.c_str());
            return false;
        }
        done += static_cast<size_t>(n);
    }
    if (::fsync(fd) != 0 || ::close(fd) != 0) {
        ::unlink(tmp_path.c_str());
        return false;
    }
    if (::rename(tmp_path.c_str(), final_path.c_str()) != 0) {
        ::unlink(tmp_path.c_str());
        return false;
    }
    return true;
}

bool
FileStorage::read(const std::string &cache, const std::string &name,
                  std::vector<uint8_t> &bytes)
{
    std::ifstream f(path(cache, name),
                    std::ios::binary | std::ios::ate);
    if (!f)
        return false;
    auto size = f.tellg();
    if (size < 0)
        return false;
    f.seekg(0);
    bytes.resize(static_cast<size_t>(size));
    f.read(reinterpret_cast<char *>(bytes.data()), size);
    return f.good();
}

uint64_t
FileStorage::timestamp(const std::string &cache,
                       const std::string &name)
{
    std::error_code ec;
    auto t = fs::last_write_time(path(cache, name), ec);
    if (ec)
        return 0;
    return static_cast<uint64_t>(
        t.time_since_epoch().count());
}

bool
FileStorage::remove(const std::string &cache,
                    const std::string &name)
{
    std::error_code ec;
    return fs::remove(path(cache, name), ec) && !ec;
}

std::vector<std::string>
FileStorage::list(const std::string &cache)
{
    std::vector<std::string> out;
    std::error_code ec;
    for (const auto &entry :
         fs::directory_iterator(path(cache), ec)) {
        std::string fname = entry.path().filename().string();
        if (hasTmpSuffix(fname))
            continue; // in-flight or abandoned partial write
        if (entry.is_regular_file(ec) && !ec)
            out.push_back(std::move(fname));
        if (ec)
            ec.clear();
    }
    return out;
}

} // namespace llva
