#include "llee/storage.h"

#include <cstdio>
#include <filesystem>
#include <fstream>

namespace llva {

namespace fs = std::filesystem;

// --- MemoryStorage ---------------------------------------------------------

bool
MemoryStorage::createCache(const std::string &cache)
{
    caches_.try_emplace(cache);
    return true;
}

bool
MemoryStorage::deleteCache(const std::string &cache)
{
    return caches_.erase(cache) != 0;
}

uint64_t
MemoryStorage::cacheSize(const std::string &cache)
{
    auto it = caches_.find(cache);
    if (it == caches_.end())
        return UINT64_MAX;
    uint64_t total = 0;
    for (const auto &[name, e] : it->second)
        total += e.bytes.size();
    return total;
}

bool
MemoryStorage::write(const std::string &cache, const std::string &name,
                     const std::vector<uint8_t> &bytes)
{
    auto it = caches_.find(cache);
    if (it == caches_.end())
        return false;
    it->second[name] = {bytes, clock_++};
    return true;
}

bool
MemoryStorage::read(const std::string &cache, const std::string &name,
                    std::vector<uint8_t> &bytes)
{
    auto it = caches_.find(cache);
    if (it == caches_.end())
        return false;
    auto eit = it->second.find(name);
    if (eit == it->second.end())
        return false;
    bytes = eit->second.bytes;
    return true;
}

uint64_t
MemoryStorage::timestamp(const std::string &cache,
                         const std::string &name)
{
    auto it = caches_.find(cache);
    if (it == caches_.end())
        return 0;
    auto eit = it->second.find(name);
    return eit == it->second.end() ? 0 : eit->second.stamp;
}

std::vector<std::string>
MemoryStorage::list(const std::string &cache)
{
    std::vector<std::string> out;
    auto it = caches_.find(cache);
    if (it != caches_.end())
        for (const auto &[name, e] : it->second)
            out.push_back(name);
    return out;
}

// --- FileStorage -----------------------------------------------------------

namespace {

/** Byte-vector names may contain '/' etc.; flatten for filenames. */
std::string
mangle(const std::string &name)
{
    std::string out;
    for (char c : name) {
        if (isalnum(static_cast<unsigned char>(c)) || c == '.' ||
            c == '-' || c == '_')
            out += c;
        else
            out += '_';
    }
    return out;
}

} // namespace

std::string
FileStorage::path(const std::string &cache,
                  const std::string &name) const
{
    std::string p = root_ + "/" + mangle(cache);
    if (!name.empty())
        p += "/" + mangle(name);
    return p;
}

bool
FileStorage::createCache(const std::string &cache)
{
    std::error_code ec;
    fs::create_directories(path(cache), ec);
    return !ec;
}

bool
FileStorage::deleteCache(const std::string &cache)
{
    std::error_code ec;
    fs::remove_all(path(cache), ec);
    return !ec;
}

uint64_t
FileStorage::cacheSize(const std::string &cache)
{
    std::error_code ec;
    if (!fs::is_directory(path(cache), ec))
        return UINT64_MAX;
    uint64_t total = 0;
    for (const auto &entry : fs::directory_iterator(path(cache), ec))
        if (entry.is_regular_file())
            total += entry.file_size();
    return total;
}

bool
FileStorage::write(const std::string &cache, const std::string &name,
                   const std::vector<uint8_t> &bytes)
{
    std::ofstream f(path(cache, name), std::ios::binary);
    if (!f)
        return false;
    f.write(reinterpret_cast<const char *>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
    return f.good();
}

bool
FileStorage::read(const std::string &cache, const std::string &name,
                  std::vector<uint8_t> &bytes)
{
    std::ifstream f(path(cache, name),
                    std::ios::binary | std::ios::ate);
    if (!f)
        return false;
    auto size = f.tellg();
    f.seekg(0);
    bytes.resize(static_cast<size_t>(size));
    f.read(reinterpret_cast<char *>(bytes.data()), size);
    return f.good();
}

uint64_t
FileStorage::timestamp(const std::string &cache,
                       const std::string &name)
{
    std::error_code ec;
    auto t = fs::last_write_time(path(cache, name), ec);
    if (ec)
        return 0;
    return static_cast<uint64_t>(
        t.time_since_epoch().count());
}

std::vector<std::string>
FileStorage::list(const std::string &cache)
{
    std::vector<std::string> out;
    std::error_code ec;
    for (const auto &entry :
         fs::directory_iterator(path(cache), ec))
        if (entry.is_regular_file())
            out.push_back(entry.path().filename().string());
    return out;
}

} // namespace llva
