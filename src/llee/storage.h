/**
 * @file
 * The OS-independent storage API of paper Section 4.1.
 *
 * "The V-ABI defines a standard, OS-independent storage API with a
 * set of routines that enables LLEE to read, write, and validate
 * data in offline storage. An OS ported to LLVA can choose to
 * implement these routines for higher performance, but they are
 * strictly optional and the system will operate correctly in their
 * absence."
 *
 * The interface matches the paper's description: create, delete, and
 * query the size of an offline cache; read or write a vector of N
 * bytes tagged by a unique string name; and check a timestamp on a
 * cached vector. Two implementations are provided — a POSIX
 * directory-backed store (the paper's own user-level implementation
 * used disk files) and an in-memory store for tests.
 *
 * Failure contract: storage is strictly optional ("the system will
 * operate correctly in their absence"), so no method may throw — any
 * I/O or permission problem is reported by the boolean/sentinel
 * return value and the caller degrades to the no-storage path.
 * FileStorage additionally guarantees that a write is atomic: a
 * reader (or a crash) never observes a partially-written vector,
 * only the old bytes, the new bytes, or absence.
 */

#ifndef LLVA_LLEE_STORAGE_H
#define LLVA_LLEE_STORAGE_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace llva {

class StorageAPI
{
  public:
    virtual ~StorageAPI() = default;

    /** Create an offline cache (idempotent). */
    virtual bool createCache(const std::string &cache) = 0;

    /** Delete a cache and everything in it. */
    virtual bool deleteCache(const std::string &cache) = 0;

    /** Total bytes stored in a cache (SIZE_MAX if absent). */
    virtual uint64_t cacheSize(const std::string &cache) = 0;

    /** Write a named byte vector (overwrites). */
    virtual bool write(const std::string &cache,
                       const std::string &name,
                       const std::vector<uint8_t> &bytes) = 0;

    /** Read a named byte vector; false if absent. */
    virtual bool read(const std::string &cache,
                      const std::string &name,
                      std::vector<uint8_t> &bytes) = 0;

    /** Timestamp of a cached vector (0 if absent). */
    virtual uint64_t timestamp(const std::string &cache,
                               const std::string &name) = 0;

    /**
     * Evict a single named vector (extension beyond the paper's
     * API; LLEE uses it to drop cache entries that fail integrity
     * validation). True if the entry existed and is now gone.
     */
    virtual bool remove(const std::string &cache,
                        const std::string &name) = 0;

    /** Names stored in a cache (extension for enumeration). */
    virtual std::vector<std::string>
    list(const std::string &cache) = 0;
};

/** Volatile in-memory storage (tests; "no OS support" baseline). */
class MemoryStorage : public StorageAPI
{
  public:
    bool createCache(const std::string &cache) override;
    bool deleteCache(const std::string &cache) override;
    uint64_t cacheSize(const std::string &cache) override;
    bool write(const std::string &cache, const std::string &name,
               const std::vector<uint8_t> &bytes) override;
    bool read(const std::string &cache, const std::string &name,
              std::vector<uint8_t> &bytes) override;
    uint64_t timestamp(const std::string &cache,
                       const std::string &name) override;
    bool remove(const std::string &cache,
                const std::string &name) override;
    std::vector<std::string> list(const std::string &cache) override;

  private:
    struct Entry
    {
        std::vector<uint8_t> bytes;
        uint64_t stamp;
    };
    std::map<std::string, std::map<std::string, Entry>> caches_;
    uint64_t clock_ = 1;
};

/** Directory-backed storage (one file per named vector). */
class FileStorage : public StorageAPI
{
  public:
    explicit FileStorage(const std::string &root)
        : root_(root)
    {}

    bool createCache(const std::string &cache) override;
    bool deleteCache(const std::string &cache) override;
    uint64_t cacheSize(const std::string &cache) override;
    bool write(const std::string &cache, const std::string &name,
               const std::vector<uint8_t> &bytes) override;
    bool read(const std::string &cache, const std::string &name,
              std::vector<uint8_t> &bytes) override;
    uint64_t timestamp(const std::string &cache,
                       const std::string &name) override;
    bool remove(const std::string &cache,
                const std::string &name) override;
    std::vector<std::string> list(const std::string &cache) override;

  private:
    std::string path(const std::string &cache,
                     const std::string &name = "") const;

    std::string root_;
};

} // namespace llva

#endif // LLVA_LLEE_STORAGE_H
