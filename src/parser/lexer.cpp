#include "parser/lexer.h"

#include <cctype>
#include <cstdlib>

#include "support/error.h"

namespace llva {

namespace {

bool
isNameChar(char c)
{
    return isalnum(static_cast<unsigned char>(c)) || c == '.' ||
           c == '_' || c == '$' || c == '-';
}

} // namespace

char
Lexer::peek(size_t ahead) const
{
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
}

void
Lexer::advance()
{
    // Skip whitespace and ';' comments.
    while (pos_ < src_.size()) {
        char c = src_[pos_];
        if (c == '\n') {
            ++line_;
            ++pos_;
            lineStart_ = pos_;
        } else if (isspace(static_cast<unsigned char>(c))) {
            ++pos_;
        } else if (c == ';') {
            while (pos_ < src_.size() && src_[pos_] != '\n')
                ++pos_;
        } else {
            break;
        }
    }

    tok_ = Token();
    tok_.line = line_;
    tok_.col = static_cast<int>(pos_ - lineStart_) + 1;
    if (pos_ >= src_.size()) {
        tok_.kind = TokKind::Eof;
        return;
    }

    char c = src_[pos_];

    auto punct = [&](TokKind k) {
        tok_.kind = k;
        ++pos_;
    };

    switch (c) {
      case '(': punct(TokKind::LParen); return;
      case ')': punct(TokKind::RParen); return;
      case '{': punct(TokKind::LBrace); return;
      case '}': punct(TokKind::RBrace); return;
      case '[': punct(TokKind::LBracket); return;
      case ']': punct(TokKind::RBracket); return;
      case ',': punct(TokKind::Comma); return;
      case '=': punct(TokKind::Equal); return;
      case '*': punct(TokKind::Star); return;
      case ':': punct(TokKind::Colon); return;
      case '!': punct(TokKind::Bang); return;
      default: break;
    }

    if (c == '.' && peek(1) == '.' && peek(2) == '.') {
        tok_.kind = TokKind::Ellipsis;
        pos_ += 3;
        return;
    }

    if (c == '%') {
        ++pos_;
        std::string name;
        while (pos_ < src_.size() && isNameChar(src_[pos_]))
            name += src_[pos_++];
        if (name.empty())
            fatal("line %d:%d: empty %% identifier", line_, curCol());
        tok_.kind = TokKind::Var;
        tok_.text = name;
        return;
    }

    // c"..." byte string.
    if (c == 'c' && peek(1) == '"') {
        pos_ += 2;
        std::string bytes;
        while (pos_ < src_.size() && src_[pos_] != '"') {
            char ch = src_[pos_++];
            if (ch == '\\') {
                // Two hex digits.
                if (pos_ + 1 >= src_.size())
                    fatal("line %d:%d: truncated string escape", line_, curCol());
                auto hex = [&](char h) -> int {
                    if (h >= '0' && h <= '9') return h - '0';
                    if (h >= 'a' && h <= 'f') return h - 'a' + 10;
                    if (h >= 'A' && h <= 'F') return h - 'A' + 10;
                    fatal("line %d:%d: bad hex digit in string", line_, curCol());
                };
                int hi = hex(src_[pos_++]);
                int lo = hex(src_[pos_++]);
                bytes += static_cast<char>(hi * 16 + lo);
            } else {
                bytes += ch;
            }
        }
        if (pos_ >= src_.size())
            fatal("line %d:%d: unterminated string", line_, curCol());
        ++pos_; // closing quote
        tok_.kind = TokKind::StringLit;
        tok_.text = bytes;
        return;
    }

    // Numbers (optionally negative; FP if '.', exponent, inf, or nan).
    if (isdigit(static_cast<unsigned char>(c)) ||
        (c == '-' && (isdigit(static_cast<unsigned char>(peek(1))) ||
                      peek(1) == '.'))) {
        size_t start = pos_;
        if (c == '-')
            ++pos_;
        bool is_fp = false;
        while (pos_ < src_.size()) {
            char d = src_[pos_];
            if (isdigit(static_cast<unsigned char>(d))) {
                ++pos_;
            } else if (d == '.' && peek(1) != '.') {
                is_fp = true;
                ++pos_;
            } else if (d == 'e' || d == 'E') {
                is_fp = true;
                ++pos_;
                if (pos_ < src_.size() &&
                    (src_[pos_] == '+' || src_[pos_] == '-'))
                    ++pos_;
            } else {
                break;
            }
        }
        std::string text = src_.substr(start, pos_ - start);
        if (is_fp) {
            tok_.kind = TokKind::FPLit;
            tok_.fpValue = std::strtod(text.c_str(), nullptr);
        } else {
            tok_.kind = TokKind::IntLit;
            if (text[0] == '-') {
                tok_.intNegative = true;
                tok_.intBits = static_cast<uint64_t>(
                    std::strtoll(text.c_str(), nullptr, 10));
            } else {
                tok_.intBits = std::strtoull(text.c_str(), nullptr, 10);
            }
        }
        return;
    }

    if (isalpha(static_cast<unsigned char>(c)) || c == '_') {
        std::string word;
        while (pos_ < src_.size() && isNameChar(src_[pos_]))
            word += src_[pos_++];
        tok_.kind = TokKind::Word;
        tok_.text = word;
        return;
    }

    fatal("line %d:%d: unexpected character '%c'", line_, curCol(), c);
}

} // namespace llva
