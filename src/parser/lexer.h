/**
 * @file
 * Tokenizer for LLVA assembly.
 */

#ifndef LLVA_PARSER_LEXER_H
#define LLVA_PARSER_LEXER_H

#include <cstdint>
#include <string>

namespace llva {

enum class TokKind : uint8_t {
    Eof,
    Word,      ///< bare identifier/keyword: add, int, label, declare...
    Var,       ///< %name — value, type, or global reference
    IntLit,    ///< integer literal (possibly negative)
    FPLit,     ///< floating-point literal
    StringLit, ///< c"..." byte-string literal
    LParen,
    RParen,
    LBrace,
    RBrace,
    LBracket,
    RBracket,
    Comma,
    Equal,
    Star,
    Colon,
    Bang,
    Ellipsis,
};

struct Token
{
    TokKind kind = TokKind::Eof;
    std::string text;    ///< Word/Var name or decoded string bytes.
    uint64_t intBits = 0;///< IntLit payload (two's complement).
    bool intNegative = false;
    double fpValue = 0.0;
    int line = 0;
    int col = 0; ///< 1-based column of the token's first character.
};

/** One-token-lookahead lexer over an in-memory buffer. */
class Lexer
{
  public:
    explicit Lexer(const std::string &src)
        : src_(src)
    {
        advance();
    }

    const Token &current() const { return tok_; }

    /** Consume the current token and lex the next one. */
    Token
    take()
    {
        Token t = tok_;
        advance();
        return t;
    }

    int line() const { return tok_.line; }

  private:
    void advance();
    char peek(size_t ahead = 0) const;
    /** 1-based column of pos_ on the current line. */
    int curCol() const
    {
        return static_cast<int>(pos_ - lineStart_) + 1;
    }

    const std::string &src_;
    size_t pos_ = 0;
    size_t lineStart_ = 0;
    int line_ = 1;
    Token tok_;
};

} // namespace llva

#endif // LLVA_PARSER_LEXER_H
