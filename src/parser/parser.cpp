#include "parser/parser.h"

#include <map>
#include <set>
#include <vector>

#include "ir/instructions.h"
#include "parser/lexer.h"
#include "support/error.h"

namespace llva {

namespace {

/**
 * Two-pass recursive-descent parser. Pass 1 registers named types,
 * global variables, and function signatures (skipping bodies and
 * initializers) so pass 2 can resolve forward references between
 * top-level entities; pass 2 fills in initializers and bodies.
 */
class Parser
{
  public:
    Parser(const std::string &src, Module &m)
        : src_(src), m_(m)
    {}

    /**
     * Failure cleanup: forward-reference placeholders are owned by
     * the parser until resolution, so an abandoned parse must free
     * the ones still outstanding. Only safe once the module (whose
     * instructions may hold operand edges to them) is destroyed.
     */
    void
    freeForwardPlaceholders()
    {
        for (auto &[name, fwd] : forwards_)
            delete fwd;
        forwards_.clear();
    }

    void
    run()
    {
        signaturesOnly_ = true;
        parseModule();
        signaturesOnly_ = false;
        parseModule();
        for (const auto &[name, st] : m_.types().namedTypes())
            if (!definedTypes_.count(name))
                fatal("named type %%%s referenced but never defined",
                      name.c_str());
    }

  private:
    // --- Token helpers -------------------------------------------------

    const Token &cur() { return lex_->current(); }

    Token take() { return lex_->take(); }

    bool
    isWord(const char *w)
    {
        return cur().kind == TokKind::Word && cur().text == w;
    }

    bool
    acceptWord(const char *w)
    {
        if (!isWord(w))
            return false;
        take();
        return true;
    }

    void
    expectWord(const char *w)
    {
        if (!acceptWord(w))
            fatal("line %d:%d: expected '%s'", cur().line, cur().col, w);
    }

    Token
    expect(TokKind kind, const char *what)
    {
        if (cur().kind != kind)
            fatal("line %d:%d: expected %s", cur().line, cur().col, what);
        return take();
    }

    bool
    accept(TokKind kind)
    {
        if (cur().kind != kind)
            return false;
        take();
        return true;
    }

    // --- Types ---------------------------------------------------------

    /** True if the current token can begin a type. */
    bool
    atType()
    {
        if (cur().kind == TokKind::Var)
            return true;
        if (cur().kind == TokKind::LBrace ||
            cur().kind == TokKind::LBracket)
            return true;
        return cur().kind == TokKind::Word &&
               m_.types().primByName(cur().text) != nullptr;
    }

    Type *
    parseType()
    {
        Type *base = parseBaseType();
        // Postfix: pointers and function types.
        while (true) {
            if (accept(TokKind::Star)) {
                base = m_.types().pointerTo(base);
            } else if (cur().kind == TokKind::LParen) {
                take();
                std::vector<Type *> params;
                bool vararg = false;
                if (!accept(TokKind::RParen)) {
                    while (true) {
                        if (accept(TokKind::Ellipsis)) {
                            vararg = true;
                            break;
                        }
                        params.push_back(parseType());
                        if (!accept(TokKind::Comma))
                            break;
                    }
                    expect(TokKind::RParen, "')'");
                }
                base = m_.types().functionOf(base, params, vararg);
            } else {
                break;
            }
        }
        return base;
    }

    Type *
    parseBaseType()
    {
        if (cur().kind == TokKind::Word) {
            Type *prim = m_.types().primByName(cur().text);
            if (!prim)
                fatal("line %d:%d: unknown type '%s'", cur().line, cur().col,
                      cur().text.c_str());
            take();
            return prim;
        }
        if (cur().kind == TokKind::Var) {
            Token t = take();
            return m_.types().getOrCreateNamedStruct(t.text);
        }
        if (accept(TokKind::LBrace)) {
            std::vector<Type *> fields;
            if (!accept(TokKind::RBrace)) {
                while (true) {
                    fields.push_back(parseType());
                    if (!accept(TokKind::Comma))
                        break;
                }
                expect(TokKind::RBrace, "'}'");
            }
            return m_.types().structOf(fields);
        }
        if (accept(TokKind::LBracket)) {
            Token n = expect(TokKind::IntLit, "array length");
            expectWord("x");
            Type *elem = parseType();
            expect(TokKind::RBracket, "']'");
            return m_.types().arrayOf(elem, n.intBits);
        }
        fatal("line %d:%d: expected type", cur().line, cur().col);
    }

    // --- Module level ----------------------------------------------------

    void
    parseModule()
    {
        Lexer lexer(src_);
        lex_ = &lexer;
        while (cur().kind != TokKind::Eof) {
            if (acceptWord("target")) {
                parseTargetSpec();
            } else if (acceptWord("declare")) {
                parseDeclare();
            } else if (cur().kind == TokKind::Var) {
                // %name = type ... | %name = global/constant ...
                Token name = take();
                expect(TokKind::Equal, "'='");
                if (acceptWord("type"))
                    parseTypeDef(name.text);
                else
                    parseGlobal(name.text);
            } else {
                parseFunctionDef();
            }
        }
        lex_ = nullptr;
    }

    void
    parseTargetSpec()
    {
        TargetFlags flags = m_.targetFlags();
        if (acceptWord("pointersize")) {
            expect(TokKind::Equal, "'='");
            Token n = expect(TokKind::IntLit, "pointer size");
            // Accept both bit (32/64) and byte (4/8) spellings.
            uint64_t v = n.intBits;
            if (v == 32 || v == 64)
                v /= 8;
            if (v != 4 && v != 8)
                fatal("line %d:%d: pointer size must be 32 or 64 bits",
                      n.line, n.col);
            flags.pointerSize = static_cast<unsigned>(v);
        } else if (acceptWord("endian")) {
            expect(TokKind::Equal, "'='");
            if (acceptWord("little"))
                flags.bigEndian = false;
            else if (acceptWord("big"))
                flags.bigEndian = true;
            else
                fatal("line %d:%d: expected 'little' or 'big'", cur().line, cur().col);
        } else {
            fatal("line %d:%d: unknown target property", cur().line, cur().col);
        }
        if (signaturesOnly_)
            m_.setTargetFlags(flags);
    }

    void
    parseTypeDef(const std::string &name)
    {
        StructType *st = m_.types().getOrCreateNamedStruct(name);
        Type *body = parseType();
        auto *bodyStruct = dyn_cast<StructType>(body);
        if (!bodyStruct)
            fatal("named type %%%s must be a structure", name.c_str());
        if (signaturesOnly_) {
            if (bodyStruct != st)
                st->setBody(bodyStruct->fields());
            definedTypes_.insert(name);
        }
    }

    void
    parseGlobal(const std::string &name)
    {
        Linkage linkage =
            acceptWord("internal") ? Linkage::Internal
                                   : Linkage::External;
        bool is_constant;
        if (acceptWord("global"))
            is_constant = false;
        else if (acceptWord("constant"))
            is_constant = true;
        else
            fatal("line %d:%d: expected 'global' or 'constant'",
                  cur().line, cur().col);

        Type *contained = parseType();
        if (signaturesOnly_) {
            m_.createGlobal(contained, name, nullptr, is_constant,
                            linkage);
            skipInitializer();
            return;
        }
        GlobalVariable *gv = m_.getGlobal(name);
        LLVA_ASSERT(gv, "global vanished between passes");
        if (acceptWord("zeroinitializer"))
            gv->setInitializer(nullptr);
        else
            gv->setInitializer(parseConstant(contained));
    }

    /** Pass-1 skip over a self-delimiting initializer. */
    void
    skipInitializer()
    {
        switch (cur().kind) {
          case TokKind::IntLit:
          case TokKind::FPLit:
          case TokKind::StringLit:
          case TokKind::Var:
            take();
            return;
          case TokKind::Word:
            // zeroinitializer / null / true / false / undef
            take();
            return;
          case TokKind::LBrace:
          case TokKind::LBracket: {
            TokKind open = cur().kind;
            TokKind close = open == TokKind::LBrace ? TokKind::RBrace
                                                    : TokKind::RBracket;
            take();
            int depth = 1;
            while (depth > 0) {
                if (cur().kind == TokKind::Eof)
                    fatal("unterminated initializer");
                if (cur().kind == open ||
                    (cur().kind == TokKind::LBrace ||
                     cur().kind == TokKind::LBracket))
                    ++depth;
                else if (cur().kind == close ||
                         cur().kind == TokKind::RBrace ||
                         cur().kind == TokKind::RBracket)
                    --depth;
                take();
            }
            return;
          }
          default:
            fatal("line %d:%d: malformed initializer", cur().line, cur().col);
        }
    }

    /** Parse a constant of known type \p type (initializer payload). */
    Constant *
    parseConstant(Type *type)
    {
        switch (cur().kind) {
          case TokKind::IntLit: {
            Token t = take();
            if (!type->isInteger() && !type->isBool())
                fatal("line %d:%d: integer constant for non-integer type",
                      t.line, t.col);
            return m_.constantInt(type, t.intBits);
          }
          case TokKind::FPLit: {
            Token t = take();
            if (!type->isFloatingPoint())
                fatal("line %d:%d: FP constant for non-FP type", t.line, t.col);
            return m_.constantFP(type, t.fpValue);
          }
          case TokKind::StringLit: {
            Token t = take();
            auto *at = dyn_cast<ArrayType>(type);
            if (!at || !at->element()->isInteger() ||
                at->element()->sizeInBytes(8) != 1)
                fatal("line %d:%d: string constant needs [N x ubyte] type",
                      t.line, t.col);
            auto *ty = m_.types().arrayOf(at->element(), t.text.size());
            if (ty != type)
                fatal("line %d:%d: string length %zu does not match type",
                      t.line, t.col, t.text.size());
            // The token bytes already include any NUL terminator.
            return m_.constantString(t.text, /*nul=*/false);
          }
          case TokKind::Word: {
            if (acceptWord("null")) {
                auto *pt = dyn_cast<PointerType>(type);
                if (!pt)
                    fatal("'null' needs a pointer type");
                return m_.constantNull(
                    const_cast<PointerType *>(pt));
            }
            if (acceptWord("true"))
                return m_.constantBool(true);
            if (acceptWord("false"))
                return m_.constantBool(false);
            if (acceptWord("undef"))
                return m_.constantUndef(type);
            fatal("line %d:%d: unexpected word '%s' in constant",
                  cur().line, cur().col, cur().text.c_str());
          }
          case TokKind::Var: {
            // Reference to a global or function.
            Token t = take();
            if (Function *f = m_.getFunction(t.text))
                return f;
            if (GlobalVariable *g = m_.getGlobal(t.text))
                return g;
            fatal("line %d:%d: unknown global %%%s in constant", t.line, t.col,
                  t.text.c_str());
          }
          case TokKind::LBracket: {
            take();
            auto *at = dyn_cast<ArrayType>(type);
            if (!at)
                fatal("array initializer for non-array type");
            std::vector<Constant *> elems;
            if (!accept(TokKind::RBracket)) {
                while (true) {
                    Type *et = parseType();
                    if (et != at->element())
                        fatal("array element type mismatch");
                    elems.push_back(parseConstant(et));
                    if (!accept(TokKind::Comma))
                        break;
                }
                expect(TokKind::RBracket, "']'");
            }
            if (elems.size() != at->numElements())
                fatal("array initializer has %zu elements, needs %llu",
                      elems.size(),
                      (unsigned long long)at->numElements());
            return m_.constantAggregate(type, std::move(elems));
          }
          case TokKind::LBrace: {
            take();
            auto *st = dyn_cast<StructType>(type);
            if (!st)
                fatal("struct initializer for non-struct type");
            std::vector<Constant *> elems;
            if (!accept(TokKind::RBrace)) {
                while (true) {
                    Type *et = parseType();
                    elems.push_back(parseConstant(et));
                    if (!accept(TokKind::Comma))
                        break;
                }
                expect(TokKind::RBrace, "'}'");
            }
            if (elems.size() != st->numFields())
                fatal("struct initializer field count mismatch");
            for (size_t i = 0; i < elems.size(); ++i)
                if (elems[i]->type() != st->field(i))
                    fatal("struct initializer field %zu type mismatch",
                          i);
            return m_.constantAggregate(type, std::move(elems));
          }
          default:
            fatal("line %d:%d: expected constant", cur().line, cur().col);
        }
    }

    void
    parseDeclare()
    {
        Type *ret = parseType();
        Token name = expect(TokKind::Var, "function name");
        expect(TokKind::LParen, "'('");
        std::vector<Type *> params;
        bool vararg = false;
        if (!accept(TokKind::RParen)) {
            while (true) {
                if (accept(TokKind::Ellipsis)) {
                    vararg = true;
                    break;
                }
                params.push_back(parseType());
                // Optional parameter name.
                if (cur().kind == TokKind::Var)
                    take();
                if (!accept(TokKind::Comma))
                    break;
            }
            expect(TokKind::RParen, "')'");
        }
        if (signaturesOnly_)
            m_.getOrInsertFunction(
                name.text, m_.types().functionOf(ret, params, vararg));
    }

    void
    parseFunctionDef()
    {
        Linkage linkage = acceptWord("internal") ? Linkage::Internal
                                                 : Linkage::External;
        Type *ret = parseType();
        Token name = expect(TokKind::Var, "function name");
        expect(TokKind::LParen, "'('");
        std::vector<Type *> params;
        std::vector<std::string> param_names;
        bool vararg = false;
        if (!accept(TokKind::RParen)) {
            while (true) {
                if (accept(TokKind::Ellipsis)) {
                    vararg = true;
                    break;
                }
                params.push_back(parseType());
                if (cur().kind == TokKind::Var)
                    param_names.push_back(take().text);
                else
                    param_names.push_back("");
                if (!accept(TokKind::Comma))
                    break;
            }
            expect(TokKind::RParen, "')'");
        }
        expect(TokKind::LBrace, "'{'");

        if (signaturesOnly_) {
            Function *f = m_.getOrInsertFunction(
                name.text, m_.types().functionOf(ret, params, vararg));
            f->setLinkage(linkage);
            // Skip the body.
            int depth = 1;
            while (depth > 0) {
                if (cur().kind == TokKind::Eof)
                    fatal("unterminated function body");
                if (cur().kind == TokKind::LBrace)
                    ++depth;
                else if (cur().kind == TokKind::RBrace)
                    --depth;
                take();
            }
            return;
        }

        Function *f = m_.getFunction(name.text);
        LLVA_ASSERT(f, "function vanished between passes");
        if (!f->isDeclaration())
            fatal("line %d:%d: function %%%s defined twice",
                  name.line, name.col, name.text.c_str());
        parseBody(f, param_names);
    }

    // --- Function bodies -----------------------------------------------

    void
    parseBody(Function *f, const std::vector<std::string> &param_names)
    {
        func_ = f;
        locals_.clear();
        blocks_.clear();
        blockOrder_.clear();
        forwards_.clear();
        fwdLoc_.clear();
        blockRefLoc_.clear();

        for (size_t i = 0; i < f->numArgs(); ++i) {
            if (!param_names[i].empty()) {
                f->arg(i)->setName(param_names[i]);
                locals_[param_names[i]] = f->arg(i);
            }
        }

        // Body: label: insts... label: insts... '}'
        while (!accept(TokKind::RBrace)) {
            if (cur().kind == TokKind::Word &&
                m_.types().primByName(cur().text) == nullptr) {
                // Could be a label (word ':') or an opcode.
                Token w = cur();
                if (isLabelAhead()) {
                    take();
                    expect(TokKind::Colon, "':'");
                    BasicBlock *bb = getBlock(w.text);
                    blockOrder_.push_back(bb);
                    definedBlocks_.insert(bb);
                    curBlock_ = bb;
                    continue;
                }
            }
            if (!curBlock_)
                fatal("line %d:%d: instruction before first label",
                      cur().line, cur().col);
            parseInstruction();
        }

        // Reorder blocks to match source order.
        for (BasicBlock *bb : blockOrder_)
            f->moveBlockBefore(bb, nullptr);
        for (const auto &[name, bb] : blocks_)
            if (!definedBlocks_.count(bb)) {
                auto loc = blockRefLoc_[name];
                fatal("line %d:%d: label %%%s referenced but not "
                      "defined in %%%s",
                      loc.first, loc.second, name.c_str(),
                      f->name().c_str());
            }

        // Resolve forward value references.
        for (auto &[name, fwd] : forwards_) {
            auto loc = fwdLoc_[name];
            auto it = locals_.find(name);
            if (it == locals_.end())
                fatal("line %d:%d: value %%%s used but never "
                      "defined in %%%s",
                      loc.first, loc.second, name.c_str(),
                      f->name().c_str());
            if (it->second->type() != fwd->type())
                fatal("line %d:%d: value %%%s used with type %s "
                      "but defined as %s",
                      loc.first, loc.second, name.c_str(),
                      fwd->type()->str().c_str(),
                      it->second->type()->str().c_str());
            fwd->replaceAllUsesWith(it->second);
        }
        for (auto &[name, fwd] : forwards_)
            delete fwd;
        forwards_.clear();
        definedBlocks_.clear();
        curBlock_ = nullptr;
        func_ = nullptr;
    }

    /** Lookahead: is the current Word followed by ':'? */
    bool
    isLabelAhead()
    {
        // The lexer has one-token lookahead only; a label is a Word
        // whose next token is ':'. Probe by copying the lexer state:
        // cheap because Lexer is small and the source is shared.
        Lexer probe = *lex_;
        probe.take();
        return probe.current().kind == TokKind::Colon;
    }

    BasicBlock *
    getBlock(const std::string &name, int line = 0, int col = 0)
    {
        auto it = blocks_.find(name);
        if (it != blocks_.end())
            return it->second;
        BasicBlock *bb = func_->createBlock(name);
        blocks_[name] = bb;
        // Remember where the label was first mentioned so the
        // "referenced but not defined" diagnostic at end of body
        // can point at the reference.
        if (line && !blockRefLoc_.count(name))
            blockRefLoc_[name] = {line, col};
        return bb;
    }

    /** Resolve %name as a local value of expected type \p type. */
    Value *
    lookupValue(const std::string &name, Type *type, int line,
                int col)
    {
        auto it = locals_.find(name);
        if (it != locals_.end()) {
            if (it->second->type() != type)
                fatal("line %d:%d: %%%s has type %s, expected %s", line, col,
                      name.c_str(), it->second->type()->str().c_str(),
                      type->str().c_str());
            return it->second;
        }
        if (Function *f = m_.getFunction(name)) {
            if (f->type() != type)
                fatal("line %d:%d: function %%%s type mismatch", line, col,
                      name.c_str());
            return f;
        }
        if (GlobalVariable *g = m_.getGlobal(name)) {
            if (g->type() != type)
                fatal("line %d:%d: global %%%s type mismatch", line, col,
                      name.c_str());
            return g;
        }
        // Forward reference within the function (phi operands).
        auto fit = forwards_.find(name);
        if (fit != forwards_.end()) {
            if (fit->second->type() != type)
                fatal("line %d:%d: forward ref %%%s type mismatch", line, col,
                      name.c_str());
            return fit->second;
        }
        auto *placeholder = new ConstantUndef(type);
        placeholder->setName(name);
        forwards_[name] = placeholder;
        if (!fwdLoc_.count(name))
            fwdLoc_[name] = {line, col};
        return placeholder;
    }

    /** Parse a value reference whose type \p type is already known. */
    Value *
    parseValueRef(Type *type)
    {
        int line = cur().line;
        int col = cur().col;
        switch (cur().kind) {
          case TokKind::Var: {
            Token t = take();
            return lookupValue(t.text, type, line, col);
          }
          case TokKind::IntLit: {
            Token t = take();
            if (!type->isInteger() && !type->isBool())
                fatal("line %d:%d: integer literal for type %s", line, col,
                      type->str().c_str());
            return m_.constantInt(type, t.intBits);
          }
          case TokKind::FPLit: {
            Token t = take();
            if (!type->isFloatingPoint())
                fatal("line %d:%d: FP literal for type %s", line, col,
                      type->str().c_str());
            return m_.constantFP(type, t.fpValue);
          }
          case TokKind::Word:
            if (acceptWord("null")) {
                auto *pt = dyn_cast<PointerType>(type);
                if (!pt)
                    fatal("line %d:%d: 'null' for non-pointer", line, col);
                return m_.constantNull(const_cast<PointerType *>(pt));
            }
            if (acceptWord("true")) {
                if (!type->isBool())
                    fatal("line %d:%d: 'true' for non-bool", line, col);
                return m_.constantBool(true);
            }
            if (acceptWord("false")) {
                if (!type->isBool())
                    fatal("line %d:%d: 'false' for non-bool", line, col);
                return m_.constantBool(false);
            }
            if (acceptWord("undef"))
                return m_.constantUndef(type);
            fatal("line %d:%d: expected value", line, col);
          default:
            fatal("line %d:%d: expected value", line, col);
        }
    }

    /** Parse `type valueref`. */
    Value *
    parseTypedValue()
    {
        Type *t = parseType();
        return parseValueRef(t);
    }

    BasicBlock *
    parseLabelRef()
    {
        expectWord("label");
        Token t = expect(TokKind::Var, "label name");
        return getBlock(t.text, t.line, t.col);
    }

    void
    define(const std::string &name, Value *v, int line, int col)
    {
        if (name.empty())
            return;
        v->setName(name);
        if (locals_.count(name))
            fatal("line %d:%d: value %%%s redefined (SSA violation)",
                  line, col, name.c_str());
        locals_[name] = v;
    }

    Instruction *
    append(Instruction *inst)
    {
        return curBlock_->append(std::unique_ptr<Instruction>(inst));
    }

    void
    parseInstruction()
    {
        std::string result;
        int rline = 0, rcol = 0;
        if (cur().kind == TokKind::Var) {
            Token r = take();
            result = r.text;
            rline = r.line;
            rcol = r.col;
            expect(TokKind::Equal, "'='");
        }
        Token op = expect(TokKind::Word, "opcode");
        Instruction *inst = parseInstructionBody(op.text, op.line, op.col);
        define(result, inst, rline, rcol);

        // Optional !ee(true/false) attribute.
        if (cur().kind == TokKind::Bang) {
            take();
            expectWord("ee");
            expect(TokKind::LParen, "'('");
            if (acceptWord("true"))
                inst->setExceptionsEnabled(true);
            else if (acceptWord("false"))
                inst->setExceptionsEnabled(false);
            else
                fatal("line %d:%d: expected true/false", cur().line, cur().col);
            expect(TokKind::RParen, "')'");
        }
    }

    Instruction *
    parseInstructionBody(const std::string &op, int line, int col)
    {
        auto &tc = m_.types();

        static const std::map<std::string, Opcode> binaries = {
            {"add", Opcode::Add},   {"sub", Opcode::Sub},
            {"mul", Opcode::Mul},   {"div", Opcode::Div},
            {"rem", Opcode::Rem},   {"and", Opcode::And},
            {"or", Opcode::Or},     {"xor", Opcode::Xor},
            {"shl", Opcode::Shl},   {"shr", Opcode::Shr},
        };
        static const std::map<std::string, Opcode> compares = {
            {"seteq", Opcode::SetEQ}, {"setne", Opcode::SetNE},
            {"setlt", Opcode::SetLT}, {"setgt", Opcode::SetGT},
            {"setle", Opcode::SetLE}, {"setge", Opcode::SetGE},
        };

        if (auto it = binaries.find(op); it != binaries.end()) {
            Type *t = parseType();
            Value *lhs = parseValueRef(t);
            expect(TokKind::Comma, "','");
            Value *rhs;
            if (it->second == Opcode::Shl || it->second == Opcode::Shr)
                rhs = parseTypedValue();
            else
                rhs = parseValueRef(t);
            return append(new BinaryOperator(it->second, lhs, rhs));
        }
        if (auto it = compares.find(op); it != compares.end()) {
            Type *t = parseType();
            Value *lhs = parseValueRef(t);
            expect(TokKind::Comma, "','");
            Value *rhs = parseValueRef(t);
            return append(new SetCondInst(it->second, lhs, rhs));
        }
        if (op == "ret") {
            if (acceptWord("void"))
                return append(new ReturnInst(tc));
            return append(new ReturnInst(tc, parseTypedValue()));
        }
        if (op == "br") {
            if (isWord("label")) {
                BasicBlock *dest = parseLabelRef();
                return append(new BranchInst(tc, dest));
            }
            Value *cond = parseTypedValue();
            expect(TokKind::Comma, "','");
            BasicBlock *t = parseLabelRef();
            expect(TokKind::Comma, "','");
            BasicBlock *f = parseLabelRef();
            return append(new BranchInst(tc, cond, t, f));
        }
        if (op == "mbr") {
            Value *v = parseTypedValue();
            expect(TokKind::Comma, "','");
            BasicBlock *def = parseLabelRef();
            auto *mbr = new MBrInst(tc, v, def);
            append(mbr);
            expect(TokKind::LBracket, "'['");
            if (!accept(TokKind::RBracket)) {
                while (true) {
                    Value *cv = parseTypedValue();
                    auto *ci = dyn_cast<ConstantInt>(cv);
                    if (!ci)
                        fatal("line %d:%d: mbr case must be constant",
                              line, col);
                    expect(TokKind::Comma, "','");
                    BasicBlock *dest = parseLabelRef();
                    mbr->addCase(const_cast<ConstantInt *>(ci), dest);
                    if (!accept(TokKind::Comma))
                        break;
                }
                expect(TokKind::RBracket, "']'");
            }
            return mbr;
        }
        if (op == "invoke") {
            Type *ret = parseType();
            Token callee_tok = expect(TokKind::Var, "callee");
            auto [callee, args] = parseCallSuffix(callee_tok.text, ret,
                                                  line, col);
            expectWord("to");
            BasicBlock *normal = parseLabelRef();
            expectWord("unwind");
            BasicBlock *uw = parseLabelRef();
            return append(
                new InvokeInst(ret, callee, args, normal, uw));
        }
        if (op == "unwind")
            return append(new UnwindInst(tc));
        if (op == "load") {
            Value *ptr = parseTypedValue();
            if (!ptr->type()->isPointer())
                fatal("line %d:%d: load needs a pointer", line, col);
            return append(new LoadInst(ptr));
        }
        if (op == "store") {
            Value *v = parseTypedValue();
            expect(TokKind::Comma, "','");
            Value *ptr = parseTypedValue();
            if (!ptr->type()->isPointer())
                fatal("line %d:%d: store needs a pointer", line, col);
            return append(new StoreInst(v, ptr));
        }
        if (op == "getelementptr") {
            Value *ptr = parseTypedValue();
            std::vector<Value *> indices;
            while (accept(TokKind::Comma))
                indices.push_back(parseTypedValue());
            return append(new GetElementPtrInst(ptr, indices));
        }
        if (op == "alloca") {
            Type *t = parseType();
            Value *size = nullptr;
            if (accept(TokKind::Comma))
                size = parseTypedValue();
            return append(new AllocaInst(t, size));
        }
        if (op == "cast") {
            Value *v = parseTypedValue();
            expectWord("to");
            Type *dest = parseType();
            return append(new CastInst(v, dest));
        }
        if (op == "call") {
            Type *ret = parseType();
            Token callee_tok = expect(TokKind::Var, "callee");
            auto [callee, args] = parseCallSuffix(callee_tok.text, ret,
                                                  line, col);
            return append(new CallInst(ret, callee, args));
        }
        if (op == "phi") {
            Type *t = parseType();
            auto *phi = new PhiNode(t);
            append(phi);
            while (true) {
                expect(TokKind::LBracket, "'['");
                Value *v = parseValueRef(t);
                expect(TokKind::Comma, "','");
                Token b = expect(TokKind::Var, "block name");
                phi->addIncoming(v, getBlock(b.text, b.line, b.col));
                expect(TokKind::RBracket, "']'");
                if (!accept(TokKind::Comma))
                    break;
            }
            return phi;
        }
        fatal("line %d:%d: unknown opcode '%s'", line, col, op.c_str());
    }

    /**
     * Parse `(args...)` and resolve the callee %name. Returns the
     * callee value (function or function-pointer local) and args.
     */
    std::pair<Value *, std::vector<Value *>>
    parseCallSuffix(const std::string &callee_name, Type *ret, int line,
                    int col)
    {
        expect(TokKind::LParen, "'('");
        std::vector<Value *> args;
        if (!accept(TokKind::RParen)) {
            while (true) {
                args.push_back(parseTypedValue());
                if (!accept(TokKind::Comma))
                    break;
            }
            expect(TokKind::RParen, "')'");
        }

        // Locals (function pointers) shadow module-level names.
        Value *callee = nullptr;
        if (auto it = locals_.find(callee_name); it != locals_.end())
            callee = it->second;
        else if (Function *f = m_.getFunction(callee_name))
            callee = f;
        if (!callee)
            fatal("line %d:%d: unknown callee %%%s", line, col,
                  callee_name.c_str());
        auto *pt = dyn_cast<PointerType>(callee->type());
        auto *ft = pt ? dyn_cast<FunctionType>(pt->pointee()) : nullptr;
        if (!ft)
            fatal("line %d:%d: callee %%%s is not a function", line, col,
                  callee_name.c_str());
        if (ft->returnType() != ret)
            fatal("line %d:%d: call return type mismatch for %%%s", line, col,
                  callee_name.c_str());
        return {callee, args};
    }

    const std::string &src_;
    Module &m_;
    Lexer *lex_ = nullptr;
    bool signaturesOnly_ = true;

    // Per-function state.
    Function *func_ = nullptr;
    BasicBlock *curBlock_ = nullptr;
    std::map<std::string, Value *> locals_;
    std::map<std::string, BasicBlock *> blocks_;
    std::vector<BasicBlock *> blockOrder_;
    std::set<BasicBlock *> definedBlocks_;
    std::map<std::string, ConstantUndef *> forwards_;
    /** First-reference source location of each forward value /
     *  forward label, for end-of-body diagnostics. */
    std::map<std::string, std::pair<int, int>> fwdLoc_;
    std::map<std::string, std::pair<int, int>> blockRefLoc_;
    std::set<std::string> definedTypes_;
};

} // namespace

Expected<std::unique_ptr<Module>>
parseAssembly(const std::string &source, const std::string &module_name)
{
    auto m = std::make_unique<Module>(module_name);
    Parser p(source, *m);
    try {
        p.run();
    } catch (const FatalError &e) {
        // Destruction order matters: instructions in the half-built
        // module may still hold operand edges to the parser's
        // forward-reference placeholders. Destroy the module first
        // (severing those edges), then free the placeholders.
        m.reset();
        p.freeForwardPlaceholders();
        return Error(std::string("parse error: ") + e.what());
    }
    return m;
}

} // namespace llva
