/**
 * @file
 * Parser for LLVA assembly: turns the textual form (paper Fig. 2)
 * back into an in-memory Module.
 */

#ifndef LLVA_PARSER_PARSER_H
#define LLVA_PARSER_PARSER_H

#include <memory>
#include <string>

#include "ir/module.h"

namespace llva {

/**
 * Parse a complete module from LLVA assembly text.
 * Throws FatalError on syntax or semantic errors.
 */
std::unique_ptr<Module> parseAssembly(const std::string &source,
                                      const std::string &module_name =
                                          "module");

} // namespace llva

#endif // LLVA_PARSER_PARSER_H
