/**
 * @file
 * Parser for LLVA assembly: turns the textual form (paper Fig. 2)
 * back into an in-memory Module.
 */

#ifndef LLVA_PARSER_PARSER_H
#define LLVA_PARSER_PARSER_H

#include <memory>
#include <string>

#include "ir/module.h"
#include "support/expected.h"

namespace llva {

/**
 * Parse a complete module from LLVA assembly text.
 *
 * Assembly text is untrusted input like any other persistent form:
 * malformed source yields an Error whose message carries the
 * "line L:C" location of the offending token — never an exception
 * and never a partially-built module. Trusted callers (tests,
 * drivers that want to die on bad input) bridge with `.orDie()`.
 */
Expected<std::unique_ptr<Module>>
parseAssembly(const std::string &source,
              const std::string &module_name = "module");

} // namespace llva

#endif // LLVA_PARSER_PARSER_H
