/**
 * @file
 * Byte-level serialization helpers used by the virtual object code
 * writer/reader and the LLEE offline cache.
 *
 * All multi-byte quantities are stored little-endian regardless of
 * host order; variable-length integers use LEB128, matching the
 * "self-extending" encoding strategy of the LLVA paper (Section 3.1).
 */

#ifndef LLVA_SUPPORT_BYTE_IO_H
#define LLVA_SUPPORT_BYTE_IO_H

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "support/error.h"

namespace llva {

/** Append-only little-endian byte buffer. */
class ByteWriter
{
  public:
    void writeByte(uint8_t v) { bytes_.push_back(v); }

    void
    writeU32(uint32_t v)
    {
        for (int i = 0; i < 4; ++i)
            bytes_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }

    void
    writeU64(uint64_t v)
    {
        for (int i = 0; i < 8; ++i)
            bytes_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }

    /** Unsigned LEB128 (self-extending encoding). */
    void
    writeVaruint(uint64_t v)
    {
        do {
            uint8_t b = v & 0x7f;
            v >>= 7;
            if (v)
                b |= 0x80;
            bytes_.push_back(b);
        } while (v);
    }

    /** Signed LEB128. */
    void
    writeVarint(int64_t v)
    {
        bool more = true;
        while (more) {
            uint8_t b = v & 0x7f;
            v >>= 7;
            if ((v == 0 && !(b & 0x40)) || (v == -1 && (b & 0x40)))
                more = false;
            else
                b |= 0x80;
            bytes_.push_back(b);
        }
    }

    void
    writeDouble(double d)
    {
        uint64_t bits;
        std::memcpy(&bits, &d, sizeof(bits));
        writeU64(bits);
    }

    /** Length-prefixed string. */
    void
    writeString(const std::string &s)
    {
        writeVaruint(s.size());
        bytes_.insert(bytes_.end(), s.begin(), s.end());
    }

    void
    writeBytes(const uint8_t *data, size_t n)
    {
        bytes_.insert(bytes_.end(), data, data + n);
    }

    /** Patch a previously written 32-bit slot (for back-patching). */
    void
    patchU32(size_t offset, uint32_t v)
    {
        LLVA_ASSERT(offset + 4 <= bytes_.size(), "patch out of range");
        for (int i = 0; i < 4; ++i)
            bytes_[offset + i] = static_cast<uint8_t>(v >> (8 * i));
    }

    size_t size() const { return bytes_.size(); }
    const std::vector<uint8_t> &bytes() const { return bytes_; }
    std::vector<uint8_t> takeBytes() { return std::move(bytes_); }

  private:
    std::vector<uint8_t> bytes_;
};

/** Sequential reader over a byte buffer; throws FatalError on overrun. */
class ByteReader
{
  public:
    ByteReader(const uint8_t *data, size_t size)
        : data_(data), size_(size)
    {}

    explicit ByteReader(const std::vector<uint8_t> &buf)
        : data_(buf.data()), size_(buf.size())
    {}

    bool atEnd() const { return pos_ == size_; }
    size_t position() const { return pos_; }
    size_t remaining() const { return size_ - pos_; }

    /** Reposition to an absolute offset (forward or backward). */
    void
    seek(size_t pos)
    {
        LLVA_ASSERT(pos <= size_, "seek out of range");
        pos_ = pos;
    }

    uint8_t
    readByte()
    {
        need(1);
        return data_[pos_++];
    }

    uint32_t
    readU32()
    {
        need(4);
        uint32_t v = 0;
        for (int i = 0; i < 4; ++i)
            v |= static_cast<uint32_t>(data_[pos_ + i]) << (8 * i);
        pos_ += 4;
        return v;
    }

    uint64_t
    readU64()
    {
        need(8);
        uint64_t v = 0;
        for (int i = 0; i < 8; ++i)
            v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
        pos_ += 8;
        return v;
    }

    uint64_t
    readVaruint()
    {
        uint64_t v = 0;
        int shift = 0;
        while (true) {
            uint8_t b = readByte();
            v |= static_cast<uint64_t>(b & 0x7f) << shift;
            if (!(b & 0x80))
                break;
            shift += 7;
            if (shift >= 64)
                fatal("malformed varuint");
        }
        return v;
    }

    int64_t
    readVarint()
    {
        int64_t v = 0;
        int shift = 0;
        uint8_t b;
        do {
            b = readByte();
            v |= static_cast<int64_t>(b & 0x7f) << shift;
            shift += 7;
            if (shift > 70)
                fatal("malformed varint");
        } while (b & 0x80);
        if (shift < 64 && (b & 0x40))
            v |= -(static_cast<int64_t>(1) << shift);
        return v;
    }

    double
    readDouble()
    {
        uint64_t bits = readU64();
        double d;
        std::memcpy(&d, &bits, sizeof(d));
        return d;
    }

    std::string
    readString()
    {
        uint64_t n = readVaruint();
        need(n);
        std::string s(reinterpret_cast<const char *>(data_ + pos_), n);
        pos_ += n;
        return s;
    }

    void
    readBytes(uint8_t *out, size_t n)
    {
        need(n);
        std::memcpy(out, data_ + pos_, n);
        pos_ += n;
    }

  private:
    void
    need(size_t n)
    {
        if (pos_ + n > size_)
            fatal("object file truncated (need %zu bytes at %zu/%zu)",
                  n, pos_, size_);
    }

    const uint8_t *data_;
    size_t size_;
    size_t pos_ = 0;
};

} // namespace llva

#endif // LLVA_SUPPORT_BYTE_IO_H
