/**
 * @file
 * Lightweight isa/cast/dyn_cast facility.
 *
 * Classes participating in checked casting expose a static
 * `classof(const Base *)` predicate, mirroring the classic LLVM idiom
 * the LLVA paper's implementation introduced.
 */

#ifndef LLVA_SUPPORT_CASTING_H
#define LLVA_SUPPORT_CASTING_H

#include <cassert>

namespace llva {

/** True if \p val dynamically has type To (never null). */
template <typename To, typename From>
bool
isa(const From *val)
{
    assert(val && "isa<> on null pointer");
    return To::classof(val);
}

/** Checked downcast; asserts the cast is valid. */
template <typename To, typename From>
To *
cast(From *val)
{
    assert(isa<To>(val) && "cast<> to incompatible type");
    return static_cast<To *>(val);
}

template <typename To, typename From>
const To *
cast(const From *val)
{
    assert(isa<To>(val) && "cast<> to incompatible type");
    return static_cast<const To *>(val);
}

/** Downcast returning nullptr when the dynamic type does not match. */
template <typename To, typename From>
To *
dyn_cast(From *val)
{
    return (val && To::classof(val)) ? static_cast<To *>(val) : nullptr;
}

template <typename To, typename From>
const To *
dyn_cast(const From *val)
{
    return (val && To::classof(val)) ? static_cast<const To *>(val)
                                     : nullptr;
}

} // namespace llva

#endif // LLVA_SUPPORT_CASTING_H
