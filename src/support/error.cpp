#include "support/error.h"

#include <cstdio>
#include <cstdlib>

namespace llva {

std::string
vformatString(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap2);
    va_end(ap2);
    if (n < 0)
        return "<format error>";
    std::string buf(static_cast<size_t>(n), '\0');
    std::vsnprintf(buf.data(), buf.size() + 1, fmt, ap);
    return buf;
}

std::string
formatString(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vformatString(fmt, ap);
    va_end(ap);
    return s;
}

void
fatal(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vformatString(fmt, ap);
    va_end(ap);
    throw FatalError(s);
}

void
panic(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vformatString(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "llva panic: %s\n", s.c_str());
    std::abort();
}

void
warn(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string s = vformatString(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "llva warning: %s\n", s.c_str());
}

} // namespace llva
