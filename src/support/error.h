/**
 * @file
 * Error reporting helpers for the LLVA system.
 *
 * Follows the gem5 convention: panic() is for internal invariant
 * violations (bugs in this library), fatal() is for user-caused
 * conditions such as malformed assembly or invalid object files.
 */

#ifndef LLVA_SUPPORT_ERROR_H
#define LLVA_SUPPORT_ERROR_H

#include <cstdarg>
#include <stdexcept>
#include <string>

namespace llva {

/** Exception thrown for user-level errors (bad input, bad config). */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg)
    {}
};

/**
 * Report a user-caused error. Throws FatalError with a printf-style
 * formatted message; callers higher up (drivers, tests) may catch it.
 */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/**
 * Report an internal invariant violation (a bug in this library).
 * Prints the message and aborts.
 */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Emit a non-fatal warning to stderr. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** printf-style formatting into a std::string. */
std::string formatString(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** vprintf-style formatting into a std::string. */
std::string vformatString(const char *fmt, va_list ap);

} // namespace llva

/** Assert an internal invariant; compiled in all build modes. */
#define LLVA_ASSERT(cond, ...)                                           \
    do {                                                                 \
        if (!(cond))                                                     \
            ::llva::panic("assertion failed: %s: %s", #cond,             \
                          ::llva::formatString(__VA_ARGS__).c_str());    \
    } while (0)

#endif // LLVA_SUPPORT_ERROR_H
