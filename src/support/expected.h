/**
 * @file
 * Recoverable-error vocabulary for the persistent-input boundary.
 *
 * fatal()/FatalError (error.h) reports user-caused conditions by
 * throwing; that is the right tool for interactive drivers, but the
 * APIs that consume *persistent* inputs — virtual object code files
 * and cached native translations read back from OS storage — must
 * let callers distinguish "this input is malformed, degrade
 * gracefully" from "this library has a bug". Expected<T> carries
 * either a value or an Error; readers catch their internal
 * FatalError throws at the API boundary and return the error, so no
 * exception escapes and LLEE can fall back to retranslation instead
 * of dying.
 */

#ifndef LLVA_SUPPORT_EXPECTED_H
#define LLVA_SUPPORT_EXPECTED_H

#include <optional>
#include <string>
#include <utility>

#include "support/error.h"

namespace llva {

/** A recoverable failure: a message describing the bad input. */
class Error
{
  public:
    Error() = default;
    explicit Error(std::string msg)
        : msg_(std::move(msg))
    {}

    const std::string &message() const { return msg_; }

  private:
    std::string msg_;
};

/**
 * Either a T or an Error. Implicitly constructible from both, so
 * readers `return value;` on success and `return Error(...)` (or
 * rethrow-free catch of FatalError) on malformed input.
 */
template <typename T> class [[nodiscard]] Expected
{
  public:
    Expected(T value) // NOLINT: implicit by design
        : value_(std::move(value))
    {}
    Expected(Error error) // NOLINT: implicit by design
        : error_(std::move(error))
    {}

    bool ok() const { return value_.has_value(); }
    explicit operator bool() const { return ok(); }

    T &
    operator*()
    {
        LLVA_ASSERT(ok(), "Expected: dereference of error state");
        return *value_;
    }
    const T &
    operator*() const
    {
        LLVA_ASSERT(ok(), "Expected: dereference of error state");
        return *value_;
    }
    T *operator->() { return &**this; }
    const T *operator->() const { return &**this; }

    const Error &
    error() const
    {
        LLVA_ASSERT(!ok(), "Expected: error() on success state");
        return error_;
    }

    /** Move the value out (precondition: ok()). */
    T
    take()
    {
        LLVA_ASSERT(ok(), "Expected: take() of error state");
        return std::move(*value_);
    }

    /**
     * Bridge for callers that still want throwing semantics: the
     * value, or a FatalError carrying the message. Keeps driver
     * code (`catch (const FatalError &)`) working unchanged.
     */
    T
    orDie()
    {
        if (!ok())
            throw FatalError(error_.message());
        return std::move(*value_);
    }

  private:
    std::optional<T> value_;
    Error error_;
};

} // namespace llva

#endif // LLVA_SUPPORT_EXPECTED_H
