/**
 * @file
 * Content hashing for the persistent-input boundary: FNV-1a keys
 * cached translations in the LLEE offline storage (paper Section
 * 4.1: cached vectors are validated against the LLVA program they
 * were produced from), and CRC-32 is the integrity checksum carried
 * by virtual object code files and the mcode cache envelope so a
 * single flipped or missing bit is detected before any byte of the
 * payload is trusted.
 */

#ifndef LLVA_SUPPORT_HASHING_H
#define LLVA_SUPPORT_HASHING_H

#include <cstdint>
#include <cstddef>
#include <string>
#include <vector>

namespace llva {

/** 64-bit FNV-1a over a byte range. */
inline uint64_t
fnv1a(const uint8_t *data, size_t n, uint64_t seed = 0xcbf29ce484222325ull)
{
    uint64_t h = seed;
    for (size_t i = 0; i < n; ++i) {
        h ^= data[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

inline uint64_t
fnv1a(const std::vector<uint8_t> &bytes)
{
    return fnv1a(bytes.data(), bytes.size());
}

inline uint64_t
fnv1a(const std::string &s)
{
    return fnv1a(reinterpret_cast<const uint8_t *>(s.data()), s.size());
}

/** CRC-32 (IEEE 802.3 polynomial, reflected), table-driven. */
inline uint32_t
crc32(const uint8_t *data, size_t n, uint32_t seed = 0)
{
    static const uint32_t *table = [] {
        static uint32_t t[256];
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xedb88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    uint32_t crc = ~seed;
    for (size_t i = 0; i < n; ++i)
        crc = table[(crc ^ data[i]) & 0xff] ^ (crc >> 8);
    return ~crc;
}

inline uint32_t
crc32(const std::vector<uint8_t> &bytes)
{
    return crc32(bytes.data(), bytes.size());
}

} // namespace llva

#endif // LLVA_SUPPORT_HASHING_H
