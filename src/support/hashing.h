/**
 * @file
 * FNV-1a hashing, used to key cached translations in the LLEE
 * offline storage (paper Section 4.1: cached vectors are validated
 * against the LLVA program they were produced from).
 */

#ifndef LLVA_SUPPORT_HASHING_H
#define LLVA_SUPPORT_HASHING_H

#include <cstdint>
#include <cstddef>
#include <string>
#include <vector>

namespace llva {

/** 64-bit FNV-1a over a byte range. */
inline uint64_t
fnv1a(const uint8_t *data, size_t n, uint64_t seed = 0xcbf29ce484222325ull)
{
    uint64_t h = seed;
    for (size_t i = 0; i < n; ++i) {
        h ^= data[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

inline uint64_t
fnv1a(const std::vector<uint8_t> &bytes)
{
    return fnv1a(bytes.data(), bytes.size());
}

inline uint64_t
fnv1a(const std::string &s)
{
    return fnv1a(reinterpret_cast<const uint8_t *>(s.data()), s.size());
}

} // namespace llva

#endif // LLVA_SUPPORT_HASHING_H
