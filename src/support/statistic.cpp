#include "support/statistic.h"

#include <algorithm>
#include <cstdio>
#include <mutex>

namespace llva {

namespace {

/**
 * Registration lists live behind accessors so that statics defined
 * in any translation unit can register during their (lazy or static)
 * construction regardless of initialization order. The mutex guards
 * registration from function-local statics constructed on worker
 * threads.
 */
struct Registry
{
    std::mutex mu;
    std::vector<Statistic *> counters;
    std::vector<StageTimer *> timers;
};

Registry &
registry()
{
    static Registry r;
    return r;
}

} // namespace

Statistic::Statistic(const char *name, const char *desc)
    : name_(name), desc_(desc)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.counters.push_back(this);
}

StageTimer::StageTimer(const char *name, const char *desc)
    : name_(name), desc_(desc)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    r.timers.push_back(this);
}

namespace stats {

std::vector<const Statistic *>
allCounters()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    std::vector<const Statistic *> out(r.counters.begin(),
                                       r.counters.end());
    std::sort(out.begin(), out.end(),
              [](const Statistic *a, const Statistic *b) {
                  return std::string(a->name()) < b->name();
              });
    return out;
}

std::vector<const StageTimer *>
allTimers()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    std::vector<const StageTimer *> out(r.timers.begin(),
                                        r.timers.end());
    std::sort(out.begin(), out.end(),
              [](const StageTimer *a, const StageTimer *b) {
                  return std::string(a->name()) < b->name();
              });
    return out;
}

uint64_t
value(const std::string &name)
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    for (const Statistic *s : r.counters)
        if (name == s->name())
            return s->value();
    return 0;
}

void
reset()
{
    Registry &r = registry();
    std::lock_guard<std::mutex> lock(r.mu);
    for (Statistic *s : r.counters)
        s->reset();
    for (StageTimer *t : r.timers)
        t->reset();
}

std::string
report()
{
    std::string out = "=== Statistics ===\n";
    for (const Statistic *s : allCounters()) {
        if (!s->value())
            continue;
        char line[256];
        std::snprintf(line, sizeof(line), "%10llu  %-36s %s\n",
                      (unsigned long long)s->value(), s->name(),
                      s->desc());
        out += line;
    }
    bool timed = false;
    for (const StageTimer *t : allTimers())
        timed |= t->invocations() != 0;
    if (timed) {
        out += "=== Stage timings ===\n";
        for (const StageTimer *t : allTimers()) {
            if (!t->invocations())
                continue;
            char line[256];
            std::snprintf(line, sizeof(line),
                          "%10.3f ms  %-32s %llu calls  (%s)\n",
                          t->seconds() * 1000.0, t->name(),
                          (unsigned long long)t->invocations(),
                          t->desc());
            out += line;
        }
    }
    return out;
}

} // namespace stats

} // namespace llva
