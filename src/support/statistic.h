/**
 * @file
 * Named statistic counters and stage timers for the translation
 * pipeline. Every counter is a process-global, thread-safe named
 * value (analysis cache hits, instructions selected, spills, bytes
 * emitted, ...) surfaced by `-stats` in the tools and recorded by
 * the bench harness; stage timers accumulate wall-clock nanoseconds
 * per pipeline stage for `-time-passes`-style reports.
 *
 * Counters are cheap enough to leave always-on: one relaxed atomic
 * add per event, including under parallel translation.
 */

#ifndef LLVA_SUPPORT_STATISTIC_H
#define LLVA_SUPPORT_STATISTIC_H

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

#include "support/timer.h"

namespace llva {

/** A named, thread-safe event counter registered globally. */
class Statistic
{
  public:
    Statistic(const char *name, const char *desc);

    Statistic &
    operator+=(uint64_t n)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
        return *this;
    }

    Statistic &operator++() { return *this += 1; }

    uint64_t
    value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0, std::memory_order_relaxed); }

    const char *name() const { return name_; }
    const char *desc() const { return desc_; }

  private:
    const char *name_;
    const char *desc_;
    std::atomic<uint64_t> value_{0};
};

/** A named, thread-safe wall-clock accumulator (one per stage). */
class StageTimer
{
  public:
    StageTimer(const char *name, const char *desc);

    void
    addNanos(uint64_t ns)
    {
        nanos_.fetch_add(ns, std::memory_order_relaxed);
        invocations_.fetch_add(1, std::memory_order_relaxed);
    }

    double
    seconds() const
    {
        return static_cast<double>(
                   nanos_.load(std::memory_order_relaxed)) *
               1e-9;
    }

    uint64_t
    invocations() const
    {
        return invocations_.load(std::memory_order_relaxed);
    }

    void
    reset()
    {
        nanos_.store(0, std::memory_order_relaxed);
        invocations_.store(0, std::memory_order_relaxed);
    }

    const char *name() const { return name_; }
    const char *desc() const { return desc_; }

  private:
    const char *name_;
    const char *desc_;
    std::atomic<uint64_t> nanos_{0};
    std::atomic<uint64_t> invocations_{0};
};

/** RAII: adds elapsed wall time to a StageTimer on destruction. */
class ScopedStageTimer
{
  public:
    explicit ScopedStageTimer(StageTimer &t) : timer_(t) {}
    ~ScopedStageTimer()
    {
        timer_.addNanos(
            static_cast<uint64_t>(clock_.seconds() * 1e9));
    }

    ScopedStageTimer(const ScopedStageTimer &) = delete;
    ScopedStageTimer &operator=(const ScopedStageTimer &) = delete;

  private:
    StageTimer &timer_;
    Timer clock_;
};

namespace stats {

/** All registered counters, sorted by name. */
std::vector<const Statistic *> allCounters();

/** All registered stage timers, sorted by name. */
std::vector<const StageTimer *> allTimers();

/** Current value of a counter by name (0 if unregistered). */
uint64_t value(const std::string &name);

/** Zero every counter and timer (tests, bench reruns). */
void reset();

/** The `-stats` report: nonzero counters and timers, aligned. */
std::string report();

} // namespace stats

} // namespace llva

#endif // LLVA_SUPPORT_STATISTIC_H
