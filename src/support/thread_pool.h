/**
 * @file
 * The small thread pool behind parallel per-function translation.
 * Each function translation is a self-contained, re-entrant unit
 * (it reads shared immutable IR and writes only its own
 * MachineFunction), so a work queue of function indices is all the
 * coordination needed. Callers address results by index, which is
 * what makes parallel and serial translation produce byte-identical
 * output: the work may complete in any order, but it is always
 * stored and consumed in input order.
 */

#ifndef LLVA_SUPPORT_THREAD_POOL_H
#define LLVA_SUPPORT_THREAD_POOL_H

#include <atomic>
#include <condition_variable>
#include <deque>
#include <exception>
#include <functional>
#include <future>
#include <mutex>
#include <thread>
#include <vector>

namespace llva {

/**
 * Apply \p fn to every index in [0, n), using up to \p jobs worker
 * threads. \p fn must be re-entrant; it runs on this thread when
 * jobs <= 1 (or n <= 1), so the serial path has zero threading
 * overhead. The first exception thrown by any worker is rethrown on
 * the calling thread after all workers have stopped.
 */
inline void
parallelFor(size_t n, unsigned jobs,
            const std::function<void(size_t)> &fn)
{
    if (jobs <= 1 || n <= 1) {
        for (size_t i = 0; i < n; ++i)
            fn(i);
        return;
    }

    unsigned workers = jobs < n ? jobs : static_cast<unsigned>(n);
    std::atomic<size_t> next{0};
    std::exception_ptr error;
    std::mutex errorMu;

    auto worker = [&]() {
        for (;;) {
            size_t i = next.fetch_add(1, std::memory_order_relaxed);
            if (i >= n)
                return;
            try {
                fn(i);
            } catch (...) {
                std::lock_guard<std::mutex> lock(errorMu);
                if (!error)
                    error = std::current_exception();
                // Drain remaining work: let other workers finish
                // their current items and exit.
                next.store(n, std::memory_order_relaxed);
                return;
            }
        }
    };

    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (unsigned t = 0; t < workers; ++t)
        threads.emplace_back(worker);
    for (std::thread &t : threads)
        t.join();
    if (error)
        std::rethrow_exception(error);
}

/**
 * A persistent worker pool for work that arrives over time — the
 * adaptive reoptimizer's retranslation jobs, as opposed to the
 * fixed-size batches parallelFor serves. Jobs are queued and run
 * FIFO; enqueue() returns a future the caller may wait on. An
 * exception thrown by a job is captured into its future, never lost.
 */
class ThreadPool
{
  public:
    explicit ThreadPool(unsigned workers = 1)
    {
        if (workers == 0)
            workers = 1;
        for (unsigned i = 0; i < workers; ++i)
            threads_.emplace_back([this] { work(); });
    }

    ~ThreadPool()
    {
        {
            std::lock_guard<std::mutex> lock(mu_);
            stop_ = true;
        }
        cv_.notify_all();
        for (std::thread &t : threads_)
            t.join();
    }

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    std::future<void>
    enqueue(std::function<void()> job)
    {
        auto task = std::make_shared<std::packaged_task<void()>>(
            std::move(job));
        std::future<void> result = task->get_future();
        {
            std::lock_guard<std::mutex> lock(mu_);
            queue_.push_back([task] { (*task)(); });
        }
        cv_.notify_one();
        return result;
    }

  private:
    void
    work()
    {
        for (;;) {
            std::function<void()> job;
            {
                std::unique_lock<std::mutex> lock(mu_);
                cv_.wait(lock,
                         [this] { return stop_ || !queue_.empty(); });
                if (stop_ && queue_.empty())
                    return;
                job = std::move(queue_.front());
                queue_.pop_front();
            }
            job();
        }
    }

    std::mutex mu_;
    std::condition_variable cv_;
    std::deque<std::function<void()>> queue_;
    std::vector<std::thread> threads_;
    bool stop_ = false;
};

/** Default worker count for a `-j 0` / "auto" request. */
inline unsigned
defaultJobs()
{
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 2;
}

} // namespace llva

#endif // LLVA_SUPPORT_THREAD_POOL_H
