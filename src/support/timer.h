/**
 * @file
 * Simple wall-clock timer used to measure translation cost
 * (Table 2's "Translate Time" column).
 */

#ifndef LLVA_SUPPORT_TIMER_H
#define LLVA_SUPPORT_TIMER_H

#include <chrono>

namespace llva {

/** Monotonic wall-clock stopwatch. */
class Timer
{
  public:
    Timer() { reset(); }

    void reset() { start_ = Clock::now(); }

    /** Seconds elapsed since construction or the last reset(). */
    double
    seconds() const
    {
        return std::chrono::duration<double>(Clock::now() - start_)
            .count();
    }

  private:
    using Clock = std::chrono::steady_clock;
    Clock::time_point start_;
};

} // namespace llva

#endif // LLVA_SUPPORT_TIMER_H
