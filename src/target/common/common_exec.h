/**
 * @file
 * The shared direct-threaded execute handlers. One free function per
 * structural opcode group, written against the relative opcode
 * layout in target_ops.h, so every backend's instruction table
 * references the same functions and the three machines cannot
 * diverge from each other (or from the interpreter) in the shared
 * semantics.
 *
 * Handlers rely on the driver presetting state.next = Fall and must
 * write every consumer field of the Next value they request
 * (branchTarget, callTarget/callAddr, trapKind); see
 * Target::handlerFor.
 */

#ifndef LLVA_TARGET_COMMON_COMMON_EXEC_H
#define LLVA_TARGET_COMMON_COMMON_EXEC_H

#include "target/common/target_ops.h"
#include "target/target_util.h"

namespace llva {
namespace cmn {

inline tgt::Alu
aluOfInt(uint16_t opcode)
{
    return static_cast<tgt::Alu>(relOp(opcode) - kAdd);
}

inline tgt::Alu
aluOfFP(uint16_t opcode)
{
    return static_cast<tgt::Alu>(relOp(opcode) - kFAdd);
}

inline tgt::Cond
condOf(uint16_t opcode)
{
    return static_cast<tgt::Cond>(relOp(opcode) - kSetEq);
}

/** Integer ALU: [def dst, use a, use b(Reg|Imm)]. */
inline void
hAlu(const MachineInstr &mi, SimState &state)
{
    using namespace tgt;
    uint64_t a = state.ireg[mi.ops[1].reg];
    uint64_t b = operandIntValue(mi.ops[2], state);
    uint64_t r = evalAlu(aluOfInt(mi.opcode), a, b, mi.width,
                         mi.signExt, mi.trapEnabled, state);
    if (state.next != SimState::Next::Trap)
        state.ireg[mi.ops[0].reg] = r;
}

/** FP ALU: [def dst, use a, use b]. */
inline void
hFAlu(const MachineInstr &mi, SimState &state)
{
    using namespace tgt;
    state.freg[mi.ops[0].reg - 32] =
        evalFAlu(aluOfFP(mi.opcode), state.freg[mi.ops[1].reg - 32],
                 state.freg[mi.ops[2].reg - 32], mi.fp32);
}

/** Flags-style setcc: [def dst], reads the recorded compare state. */
inline void
hSetCCFlags(const MachineInstr &mi, SimState &state)
{
    state.ireg[mi.ops[0].reg] =
        tgt::evalCondState(condOf(mi.opcode), mi.signExt, state) ? 1
                                                                 : 0;
}

/** Compare-into-register setcc: [def dst, use a, use b]. Integer or
 *  FP by the register class of the first source operand. */
inline void
hSetCCCompare(const MachineInstr &mi, SimState &state)
{
    using namespace tgt;
    Cond c = condOf(mi.opcode);
    bool r;
    if (isFPReg(mi.ops[1].reg)) {
        r = evalCond<double>(c, state.freg[mi.ops[1].reg - 32],
                             state.freg[mi.ops[2].reg - 32]);
    } else {
        uint64_t a = state.ireg[mi.ops[1].reg];
        uint64_t b = operandIntValue(mi.ops[2], state);
        if (mi.signExt)
            r = evalCond<int64_t>(
                c, static_cast<int64_t>(normInt(a, mi.width, true)),
                static_cast<int64_t>(normInt(b, mi.width, true)));
        else
            r = evalCond<uint64_t>(c, normInt(a, mi.width, false),
                                   normInt(b, mi.width, false));
    }
    state.ireg[mi.ops[0].reg] = r ? 1 : 0;
}

/** Flags-style integer compare: [use a, use b(Reg|Imm)]. */
inline void
hCmpFlags(const MachineInstr &mi, SimState &state)
{
    tgt::recordCmp(state.ireg[mi.ops[0].reg],
                   tgt::operandIntValue(mi.ops[1], state), mi.width,
                   state);
}

/** Flags-style FP compare: [use a, use b]. */
inline void
hFCmpFlags(const MachineInstr &mi, SimState &state)
{
    tgt::recordFCmp(state.freg[mi.ops[0].reg - 32],
                    state.freg[mi.ops[1].reg - 32], state);
}

/** High half of an immediate pair: dst = imm & ~LoMask. An FPImm
 *  operand marks a constant-pool address pair; the simulated pool
 *  has no real location, so the base is zero (kLoadConst carries
 *  the value itself). */
template <uint64_t LoMask>
inline void
hHi(const MachineInstr &mi, SimState &state)
{
    uint64_t v = mi.ops[1].kind == MOperand::FPImm
                     ? 0
                     : tgt::operandIntValue(mi.ops[1], state);
    state.ireg[mi.ops[0].reg] = v & ~LoMask;
}

/** Low half of an immediate pair: dst = src | (imm & LoMask). */
template <uint64_t LoMask>
inline void
hLo(const MachineInstr &mi, SimState &state)
{
    state.ireg[mi.ops[0].reg] =
        state.ireg[mi.ops[1].reg] |
        (tgt::operandIntValue(mi.ops[2], state) & LoMask);
}

/** FP constant-pool load: [def fdst, use addr, FPImm]. */
inline void
hLoadConst(const MachineInstr &mi, SimState &state)
{
    state.freg[mi.ops[0].reg - 32] =
        tgt::fpRound(mi.ops[2].fpimm, mi.fp32);
}

inline void
hNop(const MachineInstr &, SimState &)
{}

inline void
hBrnz(const MachineInstr &mi, SimState &state)
{
    if (state.ireg[mi.ops[0].reg]) {
        state.next = SimState::Next::Branch;
        state.branchTarget = mi.ops[1].block;
    }
}

inline void
hBr(const MachineInstr &mi, SimState &state)
{
    state.next = SimState::Next::Branch;
    state.branchTarget = mi.ops[0].block;
}

inline void
hCall(const MachineInstr &mi, SimState &state)
{
    state.next = SimState::Next::Call;
    if (mi.ops[0].kind == MOperand::Func) {
        state.callTarget = mi.ops[0].func;
    } else {
        // Without a full reset() a stale direct-call target would
        // shadow the indirect address, so clear it explicitly.
        state.callTarget = nullptr;
        state.callAddr = state.ireg[mi.ops[0].reg];
    }
}

inline void
hRet(const MachineInstr &, SimState &state)
{
    state.next = SimState::Next::Return;
}

inline void
hUnwind(const MachineInstr &, SimState &state)
{
    state.next = SimState::Next::Unwind;
}

inline void
hLoad(const MachineInstr &mi, SimState &state)
{
    tgt::execLoad(mi, state.ireg[mi.ops[1].reg], state);
}

inline void
hStore(const MachineInstr &mi, SimState &state)
{
    tgt::execStore(mi, 0, state.ireg[mi.ops[1].reg], state);
}

inline void
hLoadStack(const MachineInstr &mi, SimState &state)
{
    tgt::execSlotLoad(mi.ops[0].reg, mi.ops[1].imm, state);
}

inline void
hStoreStack(const MachineInstr &mi, SimState &state)
{
    tgt::execSlotStore(mi.ops[0].reg, mi.ops[1].imm, state);
}

inline void
hSpAdj(const MachineInstr &mi, SimState &state)
{
    state.sp += static_cast<uint64_t>(mi.ops[0].imm);
}

} // namespace cmn
} // namespace llva

#endif // LLVA_TARGET_COMMON_COMMON_EXEC_H
