#include "target/common/common_isel.h"

#include "ir/function.h"
#include "target/target_util.h"

namespace llva {
namespace cmn {

namespace {

/** Relative opcode of an integer ALU V-ISA operation. */
unsigned
intAluRel(Opcode op)
{
    switch (op) {
      case Opcode::Add: return kAdd;
      case Opcode::Sub: return kSub;
      case Opcode::Mul: return kMul;
      case Opcode::Div: return kDiv;
      case Opcode::Rem: return kRem;
      case Opcode::And: return kAnd;
      case Opcode::Or: return kOr;
      case Opcode::Xor: return kXor;
      case Opcode::Shl: return kShl;
      case Opcode::Shr: return kShr;
      default: panic("not an integer ALU opcode");
    }
}

unsigned
fpAluRel(Opcode op)
{
    switch (op) {
      case Opcode::Add: return kFAdd;
      case Opcode::Sub: return kFSub;
      case Opcode::Mul: return kFMul;
      case Opcode::Div: return kFDiv;
      case Opcode::Rem: return kFRem;
      default: panic("not an FP ALU opcode");
    }
}

unsigned
setccRel(Opcode op)
{
    switch (op) {
      case Opcode::SetEQ: return kSetEq;
      case Opcode::SetNE: return kSetNe;
      case Opcode::SetLT: return kSetLt;
      case Opcode::SetGT: return kSetGt;
      case Opcode::SetLE: return kSetLe;
      case Opcode::SetGE: return kSetGe;
      default: panic("not a comparison opcode");
    }
}

} // namespace

uint8_t
CommonISel::widthOf(const Type *t) const
{
    return static_cast<uint8_t>(tgt::widthCodeOf(t, pointerSize_));
}

MOperand
CommonISel::intOperand(const Value *v)
{
    if (auto *ci = dyn_cast<ConstantInt>(v)) {
        int64_t imm = ci->sext();
        if (immFits(imm))
            return MOperand::makeImm(imm);
    }
    return R(valueReg(v));
}

void
CommonISel::emitMove(unsigned dst, unsigned src, bool fp, bool fp32)
{
    (void)fp;
    auto *mi = emit(kOpCopy, {R(dst), R(src)}, 1);
    mi->fp32 = fp32;
}

void
CommonISel::emitMaterialize(unsigned dst, const MOperand &value,
                            bool fp, bool fp32)
{
    (void)fp;
    if (loBits_) {
        if (value.kind == MOperand::FPImm) {
            // No FP-immediate forms on the RISC machines: go through
            // a constant-pool entry whose address is itself an
            // immediate-pair base.
            unsigned t = mf_->createVReg(RegClass::Int);
            emit(op(kHi), {R(t), value}, 1);
            auto *ld = emit(op(kLoadConst), {R(dst), R(t), value}, 1);
            ld->fp32 = fp32;
            return;
        }
        if (value.kind == MOperand::Global ||
            value.kind == MOperand::Func) {
            emit(op(kHi), {R(dst), value}, 1);
            emit(op(kLo), {R(dst), R(dst), value}, 1);
            return;
        }
        if (value.kind == MOperand::Imm && !immFits(value.imm)) {
            int64_t v = value.imm;
            // The high-half op covers everything above the low
            // loBits_, the low-half or's in the rest: two
            // instructions reach any value representable in 32 bits
            // (sign- or zero-extended). Anything wider takes the
            // full six-instruction sequence: build each 32-bit
            // half, shift the high half up, merge.
            if ((v >> 32) == 0 || (v >> 32) == -1) {
                emit(op(kHi), {R(dst), value}, 1);
                emit(op(kLo), {R(dst), R(dst), value}, 1);
                return;
            }
            unsigned t = mf_->createVReg(RegClass::Int);
            MOperand hi = MOperand::makeImm(v >> 32);
            MOperand lo = MOperand::makeImm(v & 0xffffffff);
            emit(op(kHi), {R(t), hi}, 1);
            emit(op(kLo), {R(t), R(t), hi}, 1);
            emit(op(kShl), {R(t), R(t), MOperand::makeImm(32)}, 1);
            emit(op(kHi), {R(dst), lo}, 1);
            emit(op(kLo), {R(dst), R(dst), lo}, 1);
            emit(op(kOr), {R(dst), R(dst), R(t)}, 1);
            return;
        }
    }
    auto *mi = emit(kOpCopy, {R(dst), value}, 1);
    mi->fp32 = fp32;
}

MachineInstr *
CommonISel::emitBin(uint16_t opcode, unsigned dst, unsigned a,
                    const MOperand &b, bool fp, bool fp32)
{
    if (twoAddress_) {
        emitMove(dst, a, fp, fp32);
        return emit(opcode, {R(dst), R(dst), b}, 1);
    }
    return emit(opcode, {R(dst), R(a), b}, 1);
}

void
CommonISel::emitBinImm(unsigned rel, unsigned dst, unsigned a,
                       int64_t imm)
{
    if (immFits(imm)) {
        emitBin(op(rel), dst, a, MOperand::makeImm(imm), false,
                false);
        return;
    }
    unsigned t = mf_->createVReg(RegClass::Int);
    emitMaterialize(t, MOperand::makeImm(imm), false, false);
    emitBin(op(rel), dst, a, R(t), false, false);
}

void
CommonISel::emitAdd(unsigned dst, unsigned a, unsigned b)
{
    emitBin(op(kAdd), dst, a, R(b), false, false);
}

void
CommonISel::emitAddImm(unsigned dst, unsigned a, int64_t imm)
{
    emitBinImm(kAdd, dst, a, imm);
}

void
CommonISel::emitMulImm(unsigned dst, unsigned a, int64_t imm)
{
    emitBinImm(kMul, dst, a, imm);
}

void
CommonISel::emitDynAlloca(unsigned dst, unsigned size_reg)
{
    emit(kOpDynAlloca, {R(dst), R(size_reg)}, 1);
}

void
CommonISel::lowerArgs()
{
    // Register-carried arguments copy out of their ABI registers;
    // the rest live in the caller's outgoing area, reachable through
    // the negative frame index -1-i (resolved during frame
    // finalization).
    for (unsigned i = 0; i < f_->numArgs(); ++i) {
        const auto *a = f_->arg(i);
        unsigned dst = vregFor(a);
        if (i < abi_.numRegArgs) {
            bool fp = a->type()->isFloatingPoint();
            unsigned phys =
                fp ? abi_.fpArgBase + i : abi_.intArgBase + i;
            auto *mi = emit(kOpCopy, {R(dst), R(phys)}, 1);
            mi->fp32 = isFP32(a->type());
        } else {
            emit(op(kLoadStack),
                 {R(dst),
                  MOperand::makeFrame(-1 - static_cast<int>(i))},
                 1);
        }
    }
}

void
CommonISel::lowerBinary(const BinaryOperator &inst)
{
    const Type *t = inst.type();
    unsigned dst = vregFor(&inst);
    if (t->isFloatingPoint()) {
        unsigned a = valueReg(inst.lhs());
        unsigned b = valueReg(inst.rhs());
        auto *mi = emitBin(op(fpAluRel(inst.opcode())), dst, a, R(b),
                           true, isFP32(t));
        mi->fp32 = isFP32(t);
        return;
    }
    unsigned a = valueReg(inst.lhs());
    MOperand b = intOperand(inst.rhs());
    auto *mi = emitBin(op(intAluRel(inst.opcode())), dst, a, b,
                       false, false);
    mi->width = widthOf(t);
    mi->signExt = t->isSignedInteger();
    if (inst.opcode() == Opcode::Div || inst.opcode() == Opcode::Rem)
        mi->trapEnabled = inst.exceptionsEnabled();
}

void
CommonISel::lowerCompare(const SetCondInst &inst)
{
    // Compare-into-register style; flags machines override.
    const Type *t = inst.lhs()->type();
    unsigned dst = vregFor(&inst);
    unsigned a = valueReg(inst.lhs());
    if (t->isFloatingPoint()) {
        unsigned b = valueReg(inst.rhs());
        emit(op(setccRel(inst.opcode())), {R(dst), R(a), R(b)}, 1);
        return;
    }
    MOperand b = intOperand(inst.rhs());
    auto *mi =
        emit(op(setccRel(inst.opcode())), {R(dst), R(a), b}, 1);
    mi->width = widthOf(t);
    mi->signExt = t->isSignedInteger();
}

void
CommonISel::lowerRet(const ReturnInst &inst)
{
    if (const Value *v = inst.returnValue()) {
        bool fp = v->type()->isFloatingPoint();
        unsigned r = valueReg(v);
        auto *cp = emit(
            kOpCopy,
            {R(fp ? abi_.fpRetReg : abi_.intRetReg), R(r)}, 1);
        cp->fp32 = isFP32(v->type());
    }
    emit(op(kRet), {})->isRet = true;
    afterRet();
}

void
CommonISel::lowerBr(const BranchInst &inst)
{
    if (!inst.isConditional()) {
        auto *t = blockMap_.at(inst.target(0));
        emit(op(kBr), {MOperand::makeBlock(t)});
        cur_->successors().push_back(t);
        return;
    }
    unsigned c = valueReg(inst.condition());
    auto *tb = blockMap_.at(inst.target(0));
    auto *fb = blockMap_.at(inst.target(1));
    emit(op(kBrnz), {R(c), MOperand::makeBlock(tb)});
    emit(op(kBr), {MOperand::makeBlock(fb)});
    cur_->successors().push_back(tb);
    cur_->successors().push_back(fb);
}

void
CommonISel::emitCaseSetEq(unsigned dst, unsigned v,
                          const MOperand &b)
{
    // Full canonical 64-bit equality, like the interpreter.
    emit(op(kSetEq), {R(dst), R(v), b}, 1);
}

void
CommonISel::lowerMBr(const MBrInst &inst)
{
    // Materialize one bool per case first, then dispatch with a
    // branch chain. Keeping all the Block-carrying instructions in
    // one trailing run lets phi elimination insert its copies on
    // every outgoing path.
    unsigned v = valueReg(inst.condition());
    std::vector<unsigned> match;
    for (unsigned i = 0; i < inst.numCases(); ++i) {
        int64_t cv = inst.caseValue(i)->sext();
        MOperand b = MOperand::makeImm(cv);
        if (!caseImmFits(cv)) {
            unsigned t = mf_->createVReg(RegClass::Int);
            emitMaterialize(t, MOperand::makeImm(cv), false, false);
            b = R(t);
        }
        unsigned r = mf_->createVReg(RegClass::Int);
        emitCaseSetEq(r, v, b);
        match.push_back(r);
    }
    for (unsigned i = 0; i < inst.numCases(); ++i) {
        auto *bb = blockMap_.at(inst.caseDest(i));
        emit(op(kBrnz), {R(match[i]), MOperand::makeBlock(bb)});
        cur_->successors().push_back(bb);
    }
    auto *def = blockMap_.at(inst.defaultDest());
    emit(op(kBr), {MOperand::makeBlock(def)});
    cur_->successors().push_back(def);
}

void
CommonISel::lowerLoad(const LoadInst &inst)
{
    const Type *t = inst.type();
    unsigned addr = valueReg(inst.pointer());
    auto *mi = emit(op(kLoad), {R(vregFor(&inst)), R(addr)}, 1);
    mi->trapEnabled = inst.exceptionsEnabled();
    if (t->isFloatingPoint()) {
        mi->fp32 = isFP32(t);
    } else {
        mi->width = widthOf(t);
        mi->signExt = t->isSignedInteger();
    }
}

void
CommonISel::lowerStore(const StoreInst &inst)
{
    const Type *t = inst.value()->type();
    unsigned src = valueReg(inst.value());
    unsigned addr = valueReg(inst.pointer());
    auto *mi = emit(op(kStore), {R(src), R(addr)});
    mi->trapEnabled = inst.exceptionsEnabled();
    if (t->isFloatingPoint())
        mi->fp32 = isFP32(t);
    else
        mi->width = widthOf(t);
}

void
CommonISel::lowerCast(const CastInst &inst)
{
    const Type *src = inst.value()->type();
    const Type *dst = inst.type();
    unsigned d = vregFor(&inst);
    unsigned s = valueReg(inst.value());
    if (src->isFloatingPoint() && dst->isFloatingPoint()) {
        auto *mi = emit(op(kCvtF2F), {R(d), R(s)}, 1);
        mi->fp32 = isFP32(dst);
    } else if (src->isFloatingPoint()) {
        auto *mi = emit(op(kCvtF2I), {R(d), R(s)}, 1);
        mi->width = widthOf(dst);
        mi->signExt = dst->isSignedInteger();
    } else if (dst->isFloatingPoint()) {
        auto *mi = emit(op(kCvtI2F), {R(d), R(s)}, 1);
        mi->signExt = src->isSignedInteger();
        mi->fp32 = isFP32(dst);
    } else if (dst->isBool()) {
        emit(op(kCvtI2B), {R(d), R(s)}, 1);
    } else {
        auto *mi = emit(op(kExt), {R(d), R(s)}, 1);
        mi->width = widthOf(dst);
        mi->signExt = dst->isSignedInteger();
    }
}

void
CommonISel::marshalOutgoingArgs(
    const std::vector<const Value *> &args)
{
    for (unsigned i = 0; i < args.size(); ++i) {
        unsigned r = valueReg(args[i]);
        if (i < abi_.numRegArgs) {
            bool fp = args[i]->type()->isFloatingPoint();
            unsigned phys =
                fp ? abi_.fpArgBase + i : abi_.intArgBase + i;
            auto *mi = emit(kOpCopy, {R(phys), R(r)}, 1);
            mi->fp32 = isFP32(args[i]->type());
        } else {
            emit(op(kStoreStack),
                 {R(r),
                  MOperand::makeImm(8 * static_cast<int64_t>(i))});
        }
    }
    if (args.size() > abi_.numRegArgs)
        mf_->noteOutgoingArgs(8ull * args.size());
}

MachineInstr *
CommonISel::emitCallInstr(const Value *callee,
                          std::vector<MOperand> blocks)
{
    std::vector<MOperand> ops;
    if (auto *fn = dyn_cast<Function>(callee))
        ops.push_back(MOperand::makeFunc(fn));
    else
        ops.push_back(R(valueReg(callee)));
    for (auto &b : blocks)
        ops.push_back(b);
    auto *mi = emit(op(kCall), std::move(ops));
    mi->isCall = true;
    return mi;
}

void
CommonISel::emitResultCopy(const Instruction &inst)
{
    const Type *t = inst.type();
    if (t->kind() == TypeKind::Void)
        return;
    bool fp = t->isFloatingPoint();
    auto *cp = emit(
        kOpCopy,
        {R(vregFor(&inst)), R(fp ? abi_.fpRetReg : abi_.intRetReg)},
        1);
    cp->fp32 = isFP32(t);
}

void
CommonISel::lowerCall(const CallInst &inst)
{
    std::vector<const Value *> args;
    for (unsigned i = 0; i < inst.numArgs(); ++i)
        args.push_back(inst.arg(i));
    marshalOutgoingArgs(args);
    emitCallInstr(inst.callee(), {});
    afterCall();
    emitResultCopy(inst);
}

void
CommonISel::lowerInvoke(const InvokeInst &inst)
{
    std::vector<const Value *> args;
    for (unsigned i = 0; i < inst.numArgs(); ++i)
        args.push_back(inst.arg(i));
    marshalOutgoingArgs(args);

    // The simulator driver resumes at the first Block operand on
    // normal return and at the second after an unwind. Each edge
    // gets its own landing block so phi copies can distinguish the
    // two paths.
    auto *ret = mf_->createBlock(cur_->name() + ".invret");
    auto *uw = mf_->createBlock(cur_->name() + ".invuw");
    emitCallInstr(inst.callee(), {MOperand::makeBlock(ret),
                                  MOperand::makeBlock(uw)});
    afterCall();
    cur_->successors().push_back(ret);
    cur_->successors().push_back(uw);
    edgeBlock_[{inst.parent(), inst.normalDest()}] = ret;
    edgeBlock_[{inst.parent(), inst.unwindDest()}] = uw;

    MachineBasicBlock *save = cur_;
    cur_ = ret;
    emitResultCopy(inst);
    auto *nd = blockMap_.at(inst.normalDest());
    emit(op(kBr), {MOperand::makeBlock(nd)});
    ret->successors().push_back(nd);

    cur_ = uw;
    auto *ud = blockMap_.at(inst.unwindDest());
    emit(op(kBr), {MOperand::makeBlock(ud)});
    uw->successors().push_back(ud);
    cur_ = save;
}

void
CommonISel::lowerUnwind(const UnwindInst &inst)
{
    (void)inst;
    emit(op(kUnwind), {});
}

} // namespace cmn
} // namespace llva
