/**
 * @file
 * Shared instruction selection against the common relative opcode
 * layout. CommonISel implements the whole ISelBase contract —
 * argument and return marshalling from the ABI descriptor, binary
 * ops in either two-address (read-modify-write) or three-address
 * form, immediate-pair materialization (sethi+or / lui+ori),
 * branches, memory, conversions, calls and invokes — leaving a
 * backend only small policy hooks: which immediates encode inline,
 * whether calls/returns need delay-slot fillers, and (for
 * flags-based machines) how comparisons are lowered.
 */

#ifndef LLVA_TARGET_COMMON_COMMON_ISEL_H
#define LLVA_TARGET_COMMON_COMMON_ISEL_H

#include "codegen/isel.h"
#include "target/common/common_target.h"

namespace llva {
namespace cmn {

class CommonISel : public ISelBase
{
  protected:
    /**
     * \p two_address selects read-modify-write binary lowering
     * (dst <- a; dst <- dst OP b) instead of three-address form.
     * \p lo_bits is the low-half width of the immediate-pair
     * materialization scheme (10 for sethi+or, 12 for lui+ori);
     * 0 materializes everything with plain copies (CISC immediate
     * forms).
     */
    CommonISel(uint16_t opcode_base, const AbiDesc &abi,
               bool two_address, unsigned lo_bits)
        : base_(opcode_base), abi_(abi), twoAddress_(two_address),
          loBits_(lo_bits)
    {}

    // --- Policy hooks -----------------------------------------------------

    /** Whether an integer immediate can ride inline in an operand. */
    virtual bool
    immFits(int64_t v) const
    {
        (void)v;
        return true;
    }

    /** Inline-immediate policy for multiway-branch case values
     *  (x86 compares cannot take imm64 even though moves can). */
    virtual bool
    caseImmFits(int64_t v) const
    {
        return immFits(v);
    }

    /** Delay-slot fillers, emitted right after calls / returns. */
    virtual void afterCall() {}
    virtual void afterRet() {}

    /** One boolean-producing equality test for a multiway-branch
     *  case (default: compare-into-register setcc). */
    virtual void emitCaseSetEq(unsigned dst, unsigned v,
                               const MOperand &b);

    // --- Shared machinery -------------------------------------------------

    uint16_t
    op(unsigned rel) const
    {
        return static_cast<uint16_t>(base_ | rel);
    }

    static MOperand
    R(unsigned reg)
    {
        return MOperand::makeReg(reg);
    }

    uint8_t widthOf(const Type *t) const;

    /** Inline a ConstantInt passing immFits; else a register. */
    MOperand intOperand(const Value *v);

    /** Binary op in the target's address style; returns the ALU
     *  instruction for flag fixup (width, signExt, traps). */
    MachineInstr *emitBin(uint16_t opcode, unsigned dst, unsigned a,
                          const MOperand &b, bool fp, bool fp32);

    void marshalOutgoingArgs(const std::vector<const Value *> &args);
    MachineInstr *emitCallInstr(const Value *callee,
                                std::vector<MOperand> blocks);
    void emitResultCopy(const Instruction &inst);

    // --- ISelBase emit-helper vocabulary ---------------------------------

    void emitMove(unsigned dst, unsigned src, bool fp,
                  bool fp32) override;
    void emitMaterialize(unsigned dst, const MOperand &value,
                         bool fp, bool fp32) override;
    void emitAdd(unsigned dst, unsigned a, unsigned b) override;
    void emitAddImm(unsigned dst, unsigned a, int64_t imm) override;
    void emitMulImm(unsigned dst, unsigned a, int64_t imm) override;
    void emitDynAlloca(unsigned dst, unsigned size_reg) override;

    // --- ISelBase lowerings ----------------------------------------------

    void lowerArgs() override;
    void lowerBinary(const BinaryOperator &inst) override;
    void lowerCompare(const SetCondInst &inst) override;
    void lowerRet(const ReturnInst &inst) override;
    void lowerBr(const BranchInst &inst) override;
    void lowerMBr(const MBrInst &inst) override;
    void lowerLoad(const LoadInst &inst) override;
    void lowerStore(const StoreInst &inst) override;
    void lowerCast(const CastInst &inst) override;
    void lowerCall(const CallInst &inst) override;
    void lowerInvoke(const InvokeInst &inst) override;
    void lowerUnwind(const UnwindInst &inst) override;

  private:
    void emitBinImm(unsigned rel, unsigned dst, unsigned a,
                    int64_t imm);

    uint16_t base_;
    AbiDesc abi_;
    bool twoAddress_;
    unsigned loBits_;
};

} // namespace cmn
} // namespace llva

#endif // LLVA_TARGET_COMMON_COMMON_ISEL_H
