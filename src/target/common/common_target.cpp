#include "target/common/common_target.h"

#include "support/error.h"
#include "target/common/common_exec.h"
#include "target/target_util.h"

namespace llva {
namespace cmn {

CommonTarget::CommonTarget(uint16_t opcode_base, const AbiDesc &abi,
                           unsigned fixed_instr_bytes)
    : base_(opcode_base), abi_(abi), fixedBytes_(fixed_instr_bytes)
{}

const std::vector<unsigned> &
CommonTarget::allocatable(RegClass rc) const
{
    return rc == RegClass::Int ? allocInt_ : allocFP_;
}

const std::vector<unsigned> &
CommonTarget::calleeSaved(RegClass rc) const
{
    return rc == RegClass::Int ? calleeInt_ : calleeFP_;
}

unsigned
CommonTarget::returnReg(RegClass rc) const
{
    return rc == RegClass::Int ? abi_.intRetReg : abi_.fpRetReg;
}

void
CommonTarget::setInstr(unsigned rel, const char *mnemonic,
                       ExecFn exec, unsigned enc_bytes)
{
    LLVA_ASSERT(rel < kNumRelOps, "relative opcode out of range");
    table_[rel] = {mnemonic, exec,
                   static_cast<uint8_t>(enc_bytes)};
}

void
CommonTarget::setEncBytes(unsigned rel, unsigned bytes)
{
    LLVA_ASSERT(rel < kNumRelOps && table_[rel].exec,
                "setEncBytes on unregistered opcode");
    table_[rel].encBytes = static_cast<uint8_t>(bytes);
}

void
CommonTarget::installCommonCore(ExecFn setcc_handler)
{
    static const char *const alu[] = {"add", "sub", "mul", "div",
                                      "rem", "and", "or",  "xor",
                                      "shl", "shr"};
    for (unsigned i = kAdd; i <= kShr; ++i)
        setInstr(i, alu[i - kAdd], hAlu);
    static const char *const falu[] = {"fadd", "fsub", "fmul",
                                       "fdiv", "frem"};
    for (unsigned i = kFAdd; i <= kFRem; ++i)
        setInstr(i, falu[i - kFAdd], hFAlu);
    static const char *const setcc[] = {"seteq", "setne", "setlt",
                                        "setgt", "setle", "setge"};
    for (unsigned i = kSetEq; i <= kSetGe; ++i)
        setInstr(i, setcc[i - kSetEq], setcc_handler);
    setInstr(kBrnz, "brnz", hBrnz);
    setInstr(kBr, "br", hBr);
    setInstr(kCall, "call", hCall);
    setInstr(kRet, "ret", hRet);
    setInstr(kUnwind, "unwind", hUnwind);
    setInstr(kLoad, "load", hLoad);
    setInstr(kStore, "store", hStore);
    setInstr(kLoadStack, "loadstack", hLoadStack);
    setInstr(kStoreStack, "storestack", hStoreStack);
    setInstr(kExt, "ext", tgt::execExt);
    setInstr(kCvtI2F, "cvti2f", tgt::execCvtI2F);
    setInstr(kCvtF2I, "cvtf2i", tgt::execCvtF2I);
    setInstr(kCvtF2F, "cvtf2f", tgt::execCvtF2F);
    setInstr(kCvtI2B, "cvti2b", tgt::execCvtI2B);
    setInstr(kSpAdj, "spadj", hSpAdj);
}

void
CommonTarget::insertPrologueEpilogue(
    MachineFunction &mf,
    const std::vector<std::pair<unsigned, int64_t>> &saved)
{
    tgt::insertFrameCode(mf, saved, op(kSpAdj), op(kStoreStack),
                         op(kLoadStack));
    finishPrologueEpilogue(mf);
}

const InstrDesc &
CommonTarget::desc(uint16_t opcode) const
{
    uint16_t rel = relOp(opcode);
    if ((opcode & 0xff00) != base_ || rel >= kNumRelOps ||
        !table_[rel].exec)
        panic("%s: unknown opcode %u", name(), opcode);
    return table_[rel];
}

ExecFn
CommonTarget::handlerFor(const MachineInstr &mi) const
{
    if (ExecFn fn = tgt::genericHandler(mi.opcode))
        return fn;
    return desc(mi.opcode).exec;
}

void
CommonTarget::execute(const MachineInstr &mi, SimState &state) const
{
    handlerFor(mi)(mi, state);
}

std::vector<uint8_t>
CommonTarget::encode(const MachineInstr &mi) const
{
    size_t size;
    if (fixedBytes_) {
        // The RISC property: every instruction, including the
        // generic pseudos, packs into exactly one word. Wide
        // constants already cost extra instructions, never a wider
        // word.
        size = fixedBytes_;
    } else if (mi.opcode >= kOpPhi) {
        size = variableSize(mi);
    } else {
        const InstrDesc &d = desc(mi.opcode);
        size = d.encBytes ? d.encBytes : variableSize(mi);
    }
    return tgt::packEncoding(mi, size);
}

size_t
CommonTarget::variableSize(const MachineInstr &mi) const
{
    panic("%s: no variable-size rule for opcode %u", name(),
          mi.opcode);
}

void
CommonTarget::writeArgs(SimState &state, const FunctionType *ft,
                        const std::vector<RtValue> &args) const
{
    for (size_t i = 0; i < args.size(); ++i) {
        bool fp = i < ft->numParams() &&
                  ft->paramType(i)->isFloatingPoint();
        if (i < abi_.numRegArgs) {
            if (fp)
                state.freg[abi_.fpArgBase - 32 + i] = args[i].f;
            else
                state.ireg[abi_.intArgBase + i] = args[i].i;
        } else {
            uint64_t addr = state.sp + 8 * i;
            if (fp)
                state.mem->storeFP(addr, false, args[i].f);
            else
                state.mem->store(addr, 8, args[i].i);
        }
    }
}

std::vector<RtValue>
CommonTarget::readArgs(SimState &state, const FunctionType *ft) const
{
    std::vector<RtValue> args(ft->numParams());
    for (size_t i = 0; i < ft->numParams(); ++i) {
        bool fp = ft->paramType(i)->isFloatingPoint();
        if (i < abi_.numRegArgs) {
            args[i] =
                fp ? RtValue::ofFP(state.freg[abi_.fpArgBase - 32 + i])
                   : RtValue::ofInt(state.ireg[abi_.intArgBase + i]);
        } else {
            uint64_t addr = state.sp + 8 * i;
            if (fp) {
                double v = 0;
                state.mem->loadFP(addr, false, v);
                args[i] = RtValue::ofFP(v);
            } else {
                uint64_t v = 0;
                state.mem->load(addr, 8, v);
                args[i] = RtValue::ofInt(v);
            }
        }
    }
    return args;
}

} // namespace cmn
} // namespace llva
