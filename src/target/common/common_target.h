/**
 * @file
 * The common target framework: a Target base class that derives the
 * register-file queries, calling-convention marshalling,
 * prologue/epilogue shape, encode driver, and the threaded-dispatch
 * handler table from two declarative inputs —
 *
 *  - an AbiDesc describing the calling convention (how many
 *    arguments ride in registers, which registers, where returns
 *    live), and
 *  - a table of InstrDesc rows (mnemonic, execute handler, encoding
 *    width) indexed by the relative opcode layout of target_ops.h.
 *
 * A backend supplies its register file, fills the table (mostly via
 * installCommonCore), and implements only what is genuinely
 * target-specific: instruction selection flavor, disassembly syntax,
 * variable-length encoding rules, and delay-slot placement.
 */

#ifndef LLVA_TARGET_COMMON_COMMON_TARGET_H
#define LLVA_TARGET_COMMON_COMMON_TARGET_H

#include <array>

#include "codegen/target.h"
#include "target/common/target_ops.h"

namespace llva {
namespace cmn {

/**
 * Per-target calling-convention descriptor. The first numRegArgs
 * arguments travel in registers intArgBase+i / fpArgBase+i (by the
 * parameter's class); the rest use the caller's outgoing stack area
 * at sp+8i. numRegArgs == 0 describes a fully stack-based
 * convention (x86).
 */
struct AbiDesc
{
    unsigned numRegArgs = 0;
    unsigned intArgBase = 0;
    unsigned fpArgBase = 32;
    unsigned intRetReg = 0;
    unsigned fpRetReg = 32;
};

/** One row of a target's instruction-description table. */
struct InstrDesc
{
    const char *mnemonic = nullptr;
    ExecFn exec = nullptr;
    /** Encoded byte size; 0 defers to the target's variableSize()
     *  (variable-length encodings and fixed-word targets). */
    uint8_t encBytes = 0;
};

class CommonTarget : public Target
{
  public:
    const std::vector<unsigned> &allocatable(RegClass rc)
        const override;
    const std::vector<unsigned> &calleeSaved(RegClass rc)
        const override;
    unsigned returnReg(RegClass rc) const override;

    void insertPrologueEpilogue(
        MachineFunction &mf,
        const std::vector<std::pair<unsigned, int64_t>> &saved)
        override;

    std::vector<uint8_t> encode(const MachineInstr &mi)
        const override;
    void execute(const MachineInstr &mi, SimState &state)
        const override;
    ExecFn handlerFor(const MachineInstr &mi) const override;

    void writeArgs(SimState &state, const FunctionType *ft,
                   const std::vector<RtValue> &args) const override;
    std::vector<RtValue> readArgs(SimState &state,
                                  const FunctionType *ft)
        const override;

    const AbiDesc &abi() const { return abi_; }
    uint16_t opcodeBase() const { return base_; }

  protected:
    /**
     * \p fixed_instr_bytes is the uniform instruction word size of a
     * fixed-width (RISC) encoding, applied to every opcode including
     * the generic pseudos; 0 selects variable-length encoding, where
     * table rows give fixed sizes and everything else (including
     * pseudos) goes through variableSize().
     */
    CommonTarget(uint16_t opcode_base, const AbiDesc &abi,
                 unsigned fixed_instr_bytes);

    /** Absolute opcode of a relative (structural) opcode. */
    uint16_t
    op(unsigned rel) const
    {
        return static_cast<uint16_t>(base_ | rel);
    }

    /** Register one instruction-table row. */
    void setInstr(unsigned rel, const char *mnemonic, ExecFn exec,
                  unsigned enc_bytes = 0);

    /** Set the encoded size of an already-registered row. */
    void setEncBytes(unsigned rel, unsigned bytes);

    /**
     * Fill the table rows every backend shares: ALU, FP ALU, setcc
     * (with the target's comparison style), control flow, memory,
     * conversions, and the sp adjustment.
     */
    void installCommonCore(ExecFn setcc_handler);

    /** Operand-dependent encoded size (variable-length targets). */
    virtual size_t variableSize(const MachineInstr &mi) const;

    /** Post-pass over the frame code (e.g. branch delay-slot fill,
     *  which must run after phi elimination). */
    virtual void
    finishPrologueEpilogue(MachineFunction &mf)
    {
        (void)mf;
    }

    std::vector<unsigned> allocInt_, allocFP_;
    std::vector<unsigned> calleeInt_, calleeFP_;

  private:
    const InstrDesc &desc(uint16_t opcode) const;

    uint16_t base_;
    AbiDesc abi_;
    unsigned fixedBytes_;
    std::array<InstrDesc, kNumRelOps> table_{};
};

} // namespace cmn
} // namespace llva

#endif // LLVA_TARGET_COMMON_COMMON_TARGET_H
