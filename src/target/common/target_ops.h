/**
 * @file
 * The shared structural opcode layout for I-ISA backends. Every
 * target's opcode space is a 256-entry window at a per-target base
 * (x86 0x100, sparc 0x200, riscv 0x300); within the window the
 * *relative* opcode identifies the structural operation, so the
 * common execute handlers and the table-driven instruction
 * descriptions can be written once against `opcode & 0xff`.
 *
 * The first kNumCommonOps slots are operations every backend
 * provides; kHi..kNop are optional ops shared by more than one
 * backend (registered only by the targets that use them); slots from
 * kTargetOp0 are free for genuinely target-specific instructions
 * (e.g. the x86 flags-setting compares).
 *
 * Relative ALU opcodes follow tgt::Alu order and relative setcc
 * opcodes follow tgt::Cond order, so handlers recover the semantic
 * operation arithmetically.
 */

#ifndef LLVA_TARGET_COMMON_TARGET_OPS_H
#define LLVA_TARGET_COMMON_TARGET_OPS_H

#include <cstdint>

namespace llva {
namespace cmn {

enum RelOp : uint16_t {
    // Integer ALU (tgt::Alu order).
    kAdd = 0,
    kSub,
    kMul,
    kDiv,
    kRem,
    kAnd,
    kOr,
    kXor,
    kShl,
    kShr,
    // FP ALU (tgt::Alu order).
    kFAdd,
    kFSub,
    kFMul,
    kFDiv,
    kFRem,
    // Boolean-producing comparisons (tgt::Cond order). The execute
    // style differs by target: flags + setcc (x86) or
    // compare-into-register (sparc, riscv); the table picks the
    // handler.
    kSetEq,
    kSetNe,
    kSetLt,
    kSetGt,
    kSetLe,
    kSetGe,
    // Control flow: branch-if-nonzero, unconditional branch.
    kBrnz,
    kBr,
    kCall,
    kRet,
    kUnwind,
    // Memory.
    kLoad,
    kStore,
    kLoadStack,
    kStoreStack,
    // Conversions.
    kExt,
    kCvtI2F,
    kCvtF2I,
    kCvtF2F,
    kCvtI2B,
    // Stack pointer adjustment (prologue/epilogue).
    kSpAdj,
    kNumCommonOps,

    // Optional shared ops: high/low immediate-pair synthesis
    // (sethi+or, lui+ori), FP constant-pool loads, and the
    // delay-slot filler. Registered only by targets that use them.
    kHi = 40,
    kLo,
    kLoadConst,
    kNop,

    // First free slot for target-specific instructions.
    kTargetOp0 = 44,

    // Table capacity per target.
    kNumRelOps = 48,
};

/** Per-target opcode window bases. */
constexpr uint16_t kX86Base = 0x100;
constexpr uint16_t kSparcBase = 0x200;
constexpr uint16_t kRiscvBase = 0x300;

/** Relative (structural) opcode of a target instruction. */
constexpr uint16_t
relOp(uint16_t opcode)
{
    return opcode & 0xff;
}

} // namespace cmn
} // namespace llva

#endif // LLVA_TARGET_COMMON_TARGET_OPS_H
