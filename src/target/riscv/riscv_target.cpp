/**
 * @file
 * The riscv-like RISC evaluation machine, the framework's proof
 * target: everything structural — register-file queries, calling
 * convention, prologue/epilogue, encode, the threaded-dispatch
 * table, and the whole instruction selector — comes from the common
 * framework. This file supplies only the riscv policy: the register
 * plan, simm12 inline immediates, the 12-bit lui/ori split, and the
 * disassembly syntax. Unlike sparc there are no delay slots, so no
 * delay-slot hooks and no frame post-pass.
 *
 * Register numbering follows the RV64 ABI: x0=zero, x1=ra, x2=sp,
 * x3=gp, x4=tp, x5-x7=t0-t2, x8/x9=s0/s1, x10-x17=a0-a7,
 * x18-x27=s2-s11, x28-x31=t3-t6; f0-f31 at 32-63 (ft0-ft7, fs0/fs1,
 * fa0-fa7, fs2-fs11, ft8-ft11). a0-a7 / fa0-fa7 carry the first
 * eight arguments, a0 / fa0 returns.
 */

#include "target/riscv/riscv_target.h"

#include <sstream>

#include "codegen/isel.h"
#include "ir/function.h"
#include "target/common/common_exec.h"
#include "target/common/common_isel.h"
#include "target/target_util.h"

namespace llva {

namespace {

/** I-type immediate range. */
bool
fitsSimm12(int64_t v)
{
    return v >= -2048 && v <= 2047;
}

class RiscvISel final : public cmn::CommonISel
{
  public:
    explicit RiscvISel(const cmn::AbiDesc &abi)
        : CommonISel(cmn::kRiscvBase, abi, /*two_address=*/false,
                     /*lo_bits=*/12)
    {}

  protected:
    bool
    immFits(int64_t v) const override
    {
        return fitsSimm12(v);
    }
};

} // namespace

RiscvTarget::RiscvTarget()
    : CommonTarget(cmn::kRiscvBase,
                   cmn::AbiDesc{/*numRegArgs=*/8, /*intArgBase=*/10,
                                /*fpArgBase=*/42, /*intRetReg=*/10,
                                /*fpRetReg=*/42},
                   /*fixed_instr_bytes=*/4)
{
    // Temporaries first, then the callee-saved s registers.
    // Excluded: x0 (hardwired zero), x1 (ra), x2 (sp), x3/x4
    // (gp/tp), a0-a7 (arguments and return). The allocator reserves
    // the last two per class (s10/s11, ft10/ft11) as spill scratch.
    allocInt_ = {5,  6,  7,  28, 29, 30, 31, 8,  9, 18,
                 19, 20, 21, 22, 23, 24, 25, 26, 27};
    calleeInt_ = {8, 9, 18, 19, 20, 21, 22, 23, 24, 25, 26, 27};
    for (unsigned r = 32; r < 42; ++r)
        allocFP_.push_back(r); // ft0-ft7, fs0, fs1
    for (unsigned r = 50; r < 64; ++r)
        allocFP_.push_back(r); // fs2-fs11, ft8-ft11
    calleeFP_ = {40, 41, 50, 51, 52, 53, 54, 55, 56, 57, 58, 59};

    installCommonCore(cmn::hSetCCCompare);
    // lui+ori immediate pairs with a 12-bit low half; FP constants
    // ride a constant-pool load addressed by the hi half.
    setInstr(cmn::kHi, "lui", cmn::hHi<0xfff>);
    setInstr(cmn::kLo, "ori", cmn::hLo<0xfff>);
    setInstr(cmn::kLoadConst, "fld", cmn::hLoadConst);
}

const char *
RiscvTarget::regName(unsigned reg) const
{
    static const char *const names[32] = {
        "zero", "ra", "sp",  "gp",  "tp", "t0", "t1", "t2",
        "s0",   "s1", "a0",  "a1",  "a2", "a3", "a4", "a5",
        "a6",   "a7", "s2",  "s3",  "s4", "s5", "s6", "s7",
        "s8",   "s9", "s10", "s11", "t3", "t4", "t5", "t6"};
    static const char *const fnames[32] = {
        "ft0", "ft1", "ft2",  "ft3",  "ft4", "ft5", "ft6", "ft7",
        "fs0", "fs1", "fa0",  "fa1",  "fa2", "fa3", "fa4", "fa5",
        "fa6", "fa7", "fs2",  "fs3",  "fs4", "fs5", "fs6", "fs7",
        "fs8", "fs9", "fs10", "fs11", "ft8", "ft9", "ft10", "ft11"};
    if (reg < 32)
        return names[reg];
    if (reg < 64)
        return fnames[reg - 32];
    return "?";
}

void
RiscvTarget::select(const Function &f, MachineFunction &mf)
{
    RiscvISel isel(abi());
    isel.runOn(f, mf);
}

std::string
RiscvTarget::instrToString(const MachineInstr &mi) const
{
    using tgt::isFPReg;
    std::ostringstream os;
    auto reg = [&](const MOperand &op) -> std::string {
        if (isVirtualReg(op.reg))
            return "v" + std::to_string(op.reg - kFirstVirtualReg);
        return regName(op.reg);
    };
    auto operand = [&](const MOperand &op) -> std::string {
        switch (op.kind) {
          case MOperand::Reg: return reg(op);
          case MOperand::Imm: return std::to_string(op.imm);
          case MOperand::FPImm: return std::to_string(op.fpimm);
          case MOperand::Frame:
            return "frame[" + std::to_string(op.frameIndex) + "]";
          case MOperand::Block: return "." + op.block->name();
          case MOperand::Global: return op.global->name();
          case MOperand::Func: return op.func->name();
        }
        return "?";
    };
    auto slot = [&](const MOperand &op) -> std::string {
        if (op.kind != MOperand::Imm)
            return operand(op);
        return std::to_string(op.imm) + "(sp)";
    };
    unsigned key =
        mi.opcode >= kOpPhi ? mi.opcode : cmn::relOp(mi.opcode);
    switch (key) {
      case kOpCopy:
        if (isFPReg(mi.ops[0].reg))
            os << (mi.fp32 ? "fmv.s " : "fmv.d ") << reg(mi.ops[0])
               << ", " << operand(mi.ops[1]);
        else if (mi.ops[1].kind == MOperand::Global ||
                 mi.ops[1].kind == MOperand::Func)
            os << "la " << reg(mi.ops[0]) << ", "
               << operand(mi.ops[1]);
        else if (mi.ops[1].kind == MOperand::Imm)
            os << "li " << reg(mi.ops[0]) << ", "
               << operand(mi.ops[1]);
        else
            os << "mv " << reg(mi.ops[0]) << ", "
               << operand(mi.ops[1]);
        break;
      case kOpSpill:
        os << "sd " << reg(mi.ops[0]) << ", " << slot(mi.ops[1]);
        break;
      case kOpReload:
        os << "ld " << reg(mi.ops[0]) << ", " << slot(mi.ops[1]);
        break;
      case kOpFrameAddr:
        os << "addi " << reg(mi.ops[0]) << ", sp, "
           << operand(mi.ops[1]);
        break;
      case kOpDynAlloca:
        os << "call alloca, " << reg(mi.ops[1]) << ", "
           << reg(mi.ops[0]);
        break;
      case cmn::kAdd:
      case cmn::kSub:
      case cmn::kMul:
      case cmn::kDiv:
      case cmn::kRem:
      case cmn::kAnd:
      case cmn::kOr:
      case cmn::kXor:
      case cmn::kShl:
      case cmn::kShr: {
        static const char *const sn[10] = {
            "add", "sub", "mul", "div", "rem",
            "and", "or",  "xor", "sll", "sra"};
        static const char *const un[10] = {
            "add", "sub", "mul", "divu", "remu",
            "and", "or",  "xor", "sll",  "srl"};
        os << (mi.signExt ? sn : un)[key - cmn::kAdd];
        if (mi.ops[2].kind == MOperand::Imm)
            os << "i";
        os << " " << reg(mi.ops[0]) << ", " << reg(mi.ops[1])
           << ", " << operand(mi.ops[2]);
        break;
      }
      case cmn::kFAdd:
      case cmn::kFSub:
      case cmn::kFMul:
      case cmn::kFDiv:
      case cmn::kFRem: {
        static const char *const f[5] = {"fadd", "fsub", "fmul",
                                         "fdiv", "frem"};
        os << f[key - cmn::kFAdd] << (mi.fp32 ? ".s " : ".d ")
           << reg(mi.ops[0]) << ", " << reg(mi.ops[1]) << ", "
           << reg(mi.ops[2]);
        break;
      }
      case cmn::kSetEq:
      case cmn::kSetNe:
      case cmn::kSetLt:
      case cmn::kSetGt:
      case cmn::kSetLe:
      case cmn::kSetGe: {
        static const char *const names[6] = {"seq", "sne", "slt",
                                             "sgt", "sle", "sge"};
        os << names[key - cmn::kSetEq];
        if (!isFPReg(mi.ops[1].reg) && !mi.signExt &&
            key >= cmn::kSetLt)
            os << "u";
        os << " " << reg(mi.ops[0]) << ", " << reg(mi.ops[1])
           << ", " << operand(mi.ops[2]);
        break;
      }
      case cmn::kHi:
        os << "lui " << reg(mi.ops[0]) << ", %hi("
           << operand(mi.ops[1]) << ")";
        break;
      case cmn::kLo:
        os << "ori " << reg(mi.ops[0]) << ", " << reg(mi.ops[1])
           << ", %lo(" << operand(mi.ops[2]) << ")";
        break;
      case cmn::kLoadConst:
        os << (mi.fp32 ? "flw " : "fld ") << reg(mi.ops[0])
           << ", %lo(" << operand(mi.ops[2]) << ")("
           << reg(mi.ops[1]) << ")";
        break;
      case cmn::kBrnz:
        os << "bnez " << reg(mi.ops[0]) << ", "
           << operand(mi.ops[1]);
        break;
      case cmn::kBr:
        os << "j " << operand(mi.ops[0]);
        break;
      case cmn::kCall:
        if (mi.ops[0].kind == MOperand::Func)
            os << "call " << mi.ops[0].func->name();
        else
            os << "jalr " << reg(mi.ops[0]);
        for (size_t i = 1; i < mi.ops.size(); ++i)
            os << (i == 1 ? " -> " : ", ") << operand(mi.ops[i]);
        break;
      case cmn::kRet:
        os << "ret";
        break;
      case cmn::kUnwind:
        os << "unwind";
        break;
      case cmn::kLoad:
        if (isFPReg(mi.ops[0].reg))
            os << (mi.fp32 ? "flw " : "fld ") << reg(mi.ops[0])
               << ", 0(" << reg(mi.ops[1]) << ")";
        else {
            static const char *const s[9] = {"lb", "lb", "lh", "?",
                                             "lw", "?",  "?",  "?",
                                             "ld"};
            static const char *const u[9] = {"lbu", "lbu", "lhu",
                                             "?",   "lwu", "?",
                                             "?",   "?",   "ld"};
            os << (mi.signExt ? s : u)[mi.width] << " "
               << reg(mi.ops[0]) << ", 0(" << reg(mi.ops[1]) << ")";
        }
        break;
      case cmn::kStore:
        if (isFPReg(mi.ops[0].reg))
            os << (mi.fp32 ? "fsw " : "fsd ") << reg(mi.ops[0])
               << ", 0(" << reg(mi.ops[1]) << ")";
        else {
            static const char *const w[9] = {"sb", "sb", "sh", "?",
                                             "sw", "?",  "?",  "?",
                                             "sd"};
            os << w[mi.width] << " " << reg(mi.ops[0]) << ", 0("
               << reg(mi.ops[1]) << ")";
        }
        break;
      case cmn::kLoadStack:
        os << "ld " << reg(mi.ops[0]) << ", " << slot(mi.ops[1]);
        break;
      case cmn::kStoreStack:
        os << "sd " << reg(mi.ops[0]) << ", " << slot(mi.ops[1]);
        break;
      case cmn::kExt:
        os << (mi.signExt ? "sext" : "zext")
           << static_cast<unsigned>(tgt::widthBits(mi.width)) << " "
           << reg(mi.ops[0]) << ", " << reg(mi.ops[1]);
        break;
      case cmn::kCvtI2F:
        os << (mi.fp32 ? "fcvt.s.l " : "fcvt.d.l ")
           << reg(mi.ops[0]) << ", " << reg(mi.ops[1]);
        break;
      case cmn::kCvtF2I:
        os << "fcvt.l.d " << reg(mi.ops[0]) << ", "
           << reg(mi.ops[1]);
        break;
      case cmn::kCvtF2F:
        os << (mi.fp32 ? "fcvt.s.d " : "fcvt.d.s ")
           << reg(mi.ops[0]) << ", " << reg(mi.ops[1]);
        break;
      case cmn::kCvtI2B:
        os << "snez " << reg(mi.ops[0]) << ", " << reg(mi.ops[1]);
        break;
      case cmn::kSpAdj:
        os << "addi sp, sp, " << mi.ops[0].imm;
        break;
      default:
        os << "riscv.op" << mi.opcode;
        break;
    }
    return os.str();
}

} // namespace llva
