/**
 * @file
 * The riscv-like I-ISA: the third evaluation machine, built entirely
 * on the common target framework. Like sparc it is a three-address RISC
 * with fixed 4-byte words and an immediate-pair (lui+ori) scheme,
 * but with a 12-bit low half, eight register arguments (a0-a7 /
 * fa0-fa7), and — deliberately — no delay slots, proving the
 * framework accommodates a different pipeline shape without
 * target-specific frame code.
 */

#ifndef LLVA_TARGET_RISCV_RISCV_TARGET_H
#define LLVA_TARGET_RISCV_RISCV_TARGET_H

#include "target/common/common_target.h"

namespace llva {

class RiscvTarget final : public cmn::CommonTarget
{
  public:
    RiscvTarget();

    const char *name() const override { return "riscv"; }
    const char *regName(unsigned reg) const override;

    void select(const Function &f, MachineFunction &mf) override;
    std::string instrToString(const MachineInstr &mi) const override;
};

} // namespace llva

#endif // LLVA_TARGET_RISCV_RISCV_TARGET_H
