/**
 * @file
 * The sparc-like RISC evaluation machine. Three-address arithmetic
 * over 32 integer registers, compare-into-register conditionals
 * (V9-style branch-on-register, so no condition-code state), fixed
 * 4-byte instruction words — large immediates pay the sethi+or tax
 * the paper's sparc expansion ratios come from — and a register
 * calling convention.
 *
 * Register numbering follows the architecture: %g0-%g7 = 0-7,
 * %o0-%o7 = 8-15, %l0-%l7 = 16-23, %i0-%i7 = 24-31, and %f0-%f31 at
 * 32-63. %o0-%o5 / %f0-%f5 carry arguments, %o0 / %f0 returns.
 */

#include "target/sparc/sparc_target.h"

#include <sstream>

#include "codegen/isel.h"
#include "ir/function.h"
#include "target/target_util.h"

namespace llva {

namespace {

using tgt::Alu;
using tgt::Cond;

enum SparcOp : uint16_t {
    // Three-address ALU: [def dst, use a, use b(Reg|Imm simm13)].
    kSpAdd = 0x200,
    kSpSub,
    kSpMul,
    kSpDiv,
    kSpRem,
    kSpAnd,
    kSpOr,
    kSpXor,
    kSpSll,
    kSpSrl,
    kSpFAdd,
    kSpFSub,
    kSpFMul,
    kSpFDiv,
    kSpFRem,
    // Compare-into-register: [def dst, use a, use b]. Integer or FP
    // by the register class of the first source operand.
    kSpSetEq,
    kSpSetNe,
    kSpSetLt,
    kSpSetGt,
    kSpSetLe,
    kSpSetGe,
    // Address/large-immediate synthesis; both halves carry the full
    // value (or symbol) so the pair reconstructs any 64-bit canonical
    // image exactly. Global and function addresses always pay this
    // two-instruction tax — the RISC property behind the paper's
    // sparc code-size numbers.
    kSpSethi,
    kSpOrLo,
    /** FP constant-pool load: [def fdst, use addr, FPImm]. Pairs with
     *  a kSpSethi that forms the pool entry's address. */
    kSpLoadC,
    // Control flow.
    kSpBrnz,
    kSpBa,
    kSpCall,
    kSpRet,
    kSpUnwind,
    // Memory.
    kSpLoad,
    kSpStore,
    kSpLoadStack,
    kSpStoreStack,
    // Conversions.
    kSpExt,
    kSpCvtI2F,
    kSpCvtF2I,
    kSpCvtF2F,
    kSpCvtI2B,
    // Stack pointer adjustment.
    kSpSpAdj,
    /** Delay-slot filler. This simple code generator does not
     *  schedule useful work into call/return delay slots. */
    kSpNop,
};

Alu
aluOfInt(uint16_t opc)
{
    return static_cast<Alu>(opc - kSpAdd);
}

Alu
aluOfFP(uint16_t opc)
{
    return static_cast<Alu>(opc - kSpFAdd);
}

Cond
condOf(uint16_t opc)
{
    return static_cast<Cond>(opc - kSpSetEq);
}

uint16_t
intAluOpcode(Opcode op)
{
    switch (op) {
      case Opcode::Add: return kSpAdd;
      case Opcode::Sub: return kSpSub;
      case Opcode::Mul: return kSpMul;
      case Opcode::Div: return kSpDiv;
      case Opcode::Rem: return kSpRem;
      case Opcode::And: return kSpAnd;
      case Opcode::Or: return kSpOr;
      case Opcode::Xor: return kSpXor;
      case Opcode::Shl: return kSpSll;
      case Opcode::Shr: return kSpSrl;
      default: panic("not an integer ALU opcode");
    }
}

uint16_t
fpAluOpcode(Opcode op)
{
    switch (op) {
      case Opcode::Add: return kSpFAdd;
      case Opcode::Sub: return kSpFSub;
      case Opcode::Mul: return kSpFMul;
      case Opcode::Div: return kSpFDiv;
      case Opcode::Rem: return kSpFRem;
      default: panic("not an FP ALU opcode");
    }
}

uint16_t
setOpcode(Opcode op)
{
    switch (op) {
      case Opcode::SetEQ: return kSpSetEq;
      case Opcode::SetNE: return kSpSetNe;
      case Opcode::SetLT: return kSpSetLt;
      case Opcode::SetGT: return kSpSetGt;
      case Opcode::SetLE: return kSpSetLe;
      case Opcode::SetGE: return kSpSetGe;
      default: panic("not a comparison opcode");
    }
}

/** Number of register-carried arguments. */
constexpr unsigned kRegArgs = 6;

class SparcISel final : public ISelBase
{
  protected:
    static MOperand
    R(unsigned reg)
    {
        return MOperand::makeReg(reg);
    }

    uint8_t
    widthOf(const Type *t) const
    {
        return static_cast<uint8_t>(
            tgt::widthCodeOf(t, pointerSize_));
    }

    /** Inline a ConstantInt fitting simm13; else a register (which
     *  materializes sethi+or for wide values). */
    MOperand
    intOperand(const Value *v)
    {
        if (auto *ci = dyn_cast<ConstantInt>(v)) {
            int64_t imm = ci->sext();
            if (tgt::fitsSimm13(imm))
                return MOperand::makeImm(imm);
        }
        return R(valueReg(v));
    }

    void
    emitMove(unsigned dst, unsigned src, bool fp, bool fp32) override
    {
        (void)fp;
        auto *mi = emit(kOpCopy, {R(dst), R(src)}, 1);
        mi->fp32 = fp32;
    }

    void
    emitMaterialize(unsigned dst, const MOperand &value, bool fp,
                    bool fp32) override
    {
        (void)fp;
        if (value.kind == MOperand::FPImm) {
            // No FP-immediate forms: go through a constant-pool
            // entry whose address is itself a sethi pair base.
            unsigned t = mf_->createVReg(RegClass::Int);
            emit(kSpSethi, {R(t), value}, 1);
            auto *ld = emit(kSpLoadC, {R(dst), R(t), value}, 1);
            ld->fp32 = fp32;
            return;
        }
        if (value.kind == MOperand::Global ||
            value.kind == MOperand::Func) {
            emit(kSpSethi, {R(dst), value}, 1);
            emit(kSpOrLo, {R(dst), R(dst), value}, 1);
            return;
        }
        if (value.kind == MOperand::Imm &&
            !tgt::fitsSimm13(value.imm)) {
            int64_t v = value.imm;
            // sethi covers bits 31:10, or the rest: two
            // instructions reach any value representable in 32 bits
            // (sign- or zero-extended). Anything wider takes the
            // full six-instruction setx sequence: build each 32-bit
            // half, shift the high half up, merge.
            if ((v >> 32) == 0 || (v >> 32) == -1) {
                emit(kSpSethi, {R(dst), value}, 1);
                emit(kSpOrLo, {R(dst), R(dst), value}, 1);
                return;
            }
            unsigned t = mf_->createVReg(RegClass::Int);
            MOperand hi = MOperand::makeImm(v >> 32);
            MOperand lo = MOperand::makeImm(v & 0xffffffff);
            emit(kSpSethi, {R(t), hi}, 1);
            emit(kSpOrLo, {R(t), R(t), hi}, 1);
            emit(kSpSll, {R(t), R(t), MOperand::makeImm(32)}, 1);
            emit(kSpSethi, {R(dst), lo}, 1);
            emit(kSpOrLo, {R(dst), R(dst), lo}, 1);
            emit(kSpOr, {R(dst), R(dst), R(t)}, 1);
            return;
        }
        auto *mi = emit(kOpCopy, {R(dst), value}, 1);
        mi->fp32 = fp32;
    }

    void
    emitAdd(unsigned dst, unsigned a, unsigned b) override
    {
        emit(kSpAdd, {R(dst), R(a), R(b)}, 1);
    }

    void
    emitAddImm(unsigned dst, unsigned a, int64_t imm) override
    {
        if (tgt::fitsSimm13(imm)) {
            emit(kSpAdd, {R(dst), R(a), MOperand::makeImm(imm)}, 1);
            return;
        }
        unsigned t = mf_->createVReg(RegClass::Int);
        emitMaterialize(t, MOperand::makeImm(imm), false, false);
        emit(kSpAdd, {R(dst), R(a), R(t)}, 1);
    }

    void
    emitMulImm(unsigned dst, unsigned a, int64_t imm) override
    {
        if (tgt::fitsSimm13(imm)) {
            emit(kSpMul, {R(dst), R(a), MOperand::makeImm(imm)}, 1);
            return;
        }
        unsigned t = mf_->createVReg(RegClass::Int);
        emitMaterialize(t, MOperand::makeImm(imm), false, false);
        emit(kSpMul, {R(dst), R(a), R(t)}, 1);
    }

    void
    emitDynAlloca(unsigned dst, unsigned size_reg) override
    {
        emit(kOpDynAlloca, {R(dst), R(size_reg)}, 1);
    }

    void
    lowerArgs() override
    {
        for (unsigned i = 0; i < f_->numArgs(); ++i) {
            const auto *a = f_->arg(i);
            bool fp = a->type()->isFloatingPoint();
            unsigned dst = vregFor(a);
            if (i < kRegArgs) {
                unsigned phys = fp ? 32 + i : 8 + i; // %fI / %oI
                auto *mi = emit(kOpCopy, {R(dst), R(phys)}, 1);
                mi->fp32 = isFP32(a->type());
            } else {
                emit(kSpLoadStack,
                     {R(dst),
                      MOperand::makeFrame(-1 - static_cast<int>(i))},
                     1);
            }
        }
    }

    void
    lowerBinary(const BinaryOperator &inst) override
    {
        const Type *t = inst.type();
        unsigned dst = vregFor(&inst);
        if (t->isFloatingPoint()) {
            unsigned a = valueReg(inst.lhs());
            unsigned b = valueReg(inst.rhs());
            auto *mi = emit(fpAluOpcode(inst.opcode()),
                            {R(dst), R(a), R(b)}, 1);
            mi->fp32 = isFP32(t);
            return;
        }
        unsigned a = valueReg(inst.lhs());
        MOperand b = intOperand(inst.rhs());
        auto *mi =
            emit(intAluOpcode(inst.opcode()), {R(dst), R(a), b}, 1);
        mi->width = widthOf(t);
        mi->signExt = t->isSignedInteger();
        if (inst.opcode() == Opcode::Div ||
            inst.opcode() == Opcode::Rem)
            mi->trapEnabled = inst.exceptionsEnabled();
    }

    void
    lowerCompare(const SetCondInst &inst) override
    {
        const Type *t = inst.lhs()->type();
        unsigned dst = vregFor(&inst);
        if (t->isFloatingPoint()) {
            unsigned a = valueReg(inst.lhs());
            unsigned b = valueReg(inst.rhs());
            emit(setOpcode(inst.opcode()), {R(dst), R(a), R(b)}, 1);
            return;
        }
        unsigned a = valueReg(inst.lhs());
        MOperand b = intOperand(inst.rhs());
        auto *mi = emit(setOpcode(inst.opcode()), {R(dst), R(a), b},
                        1);
        mi->width = widthOf(t);
        mi->signExt = t->isSignedInteger();
    }

    void
    lowerRet(const ReturnInst &inst) override
    {
        if (const Value *v = inst.returnValue()) {
            bool fp = v->type()->isFloatingPoint();
            unsigned r = valueReg(v);
            auto *cp = emit(kOpCopy, {R(fp ? 32u : 8u), R(r)}, 1);
            cp->fp32 = isFP32(v->type());
        }
        emit(kSpRet, {})->isRet = true;
        emit(kSpNop, {}); // delay slot
    }

    void
    lowerBr(const BranchInst &inst) override
    {
        if (!inst.isConditional()) {
            auto *t = blockMap_.at(inst.target(0));
            emit(kSpBa, {MOperand::makeBlock(t)});
            cur_->successors().push_back(t);
            return;
        }
        unsigned c = valueReg(inst.condition());
        auto *tb = blockMap_.at(inst.target(0));
        auto *fb = blockMap_.at(inst.target(1));
        emit(kSpBrnz, {R(c), MOperand::makeBlock(tb)});
        emit(kSpBa, {MOperand::makeBlock(fb)});
        cur_->successors().push_back(tb);
        cur_->successors().push_back(fb);
    }

    void
    lowerMBr(const MBrInst &inst) override
    {
        // All compares first, then one contiguous run of branches,
        // so phi-elimination copies land on every outgoing path.
        unsigned v = valueReg(inst.condition());
        std::vector<unsigned> match;
        for (unsigned i = 0; i < inst.numCases(); ++i) {
            int64_t cv = inst.caseValue(i)->sext();
            MOperand b = MOperand::makeImm(cv);
            if (!tgt::fitsSimm13(cv)) {
                unsigned t = mf_->createVReg(RegClass::Int);
                emitMaterialize(t, MOperand::makeImm(cv), false,
                                false);
                b = R(t);
            }
            unsigned r = mf_->createVReg(RegClass::Int);
            // Full canonical 64-bit equality, like the interpreter.
            emit(kSpSetEq, {R(r), R(v), b}, 1);
            match.push_back(r);
        }
        for (unsigned i = 0; i < inst.numCases(); ++i) {
            auto *bb = blockMap_.at(inst.caseDest(i));
            emit(kSpBrnz, {R(match[i]), MOperand::makeBlock(bb)});
            cur_->successors().push_back(bb);
        }
        auto *def = blockMap_.at(inst.defaultDest());
        emit(kSpBa, {MOperand::makeBlock(def)});
        cur_->successors().push_back(def);
    }

    void
    lowerLoad(const LoadInst &inst) override
    {
        const Type *t = inst.type();
        unsigned addr = valueReg(inst.pointer());
        auto *mi = emit(kSpLoad, {R(vregFor(&inst)), R(addr)}, 1);
        mi->trapEnabled = inst.exceptionsEnabled();
        if (t->isFloatingPoint()) {
            mi->fp32 = isFP32(t);
        } else {
            mi->width = widthOf(t);
            mi->signExt = t->isSignedInteger();
        }
    }

    void
    lowerStore(const StoreInst &inst) override
    {
        const Type *t = inst.value()->type();
        unsigned src = valueReg(inst.value());
        unsigned addr = valueReg(inst.pointer());
        auto *mi = emit(kSpStore, {R(src), R(addr)});
        mi->trapEnabled = inst.exceptionsEnabled();
        if (t->isFloatingPoint())
            mi->fp32 = isFP32(t);
        else
            mi->width = widthOf(t);
    }

    void
    lowerCast(const CastInst &inst) override
    {
        const Type *src = inst.value()->type();
        const Type *dst = inst.type();
        unsigned d = vregFor(&inst);
        unsigned s = valueReg(inst.value());
        if (src->isFloatingPoint() && dst->isFloatingPoint()) {
            auto *mi = emit(kSpCvtF2F, {R(d), R(s)}, 1);
            mi->fp32 = isFP32(dst);
        } else if (src->isFloatingPoint()) {
            auto *mi = emit(kSpCvtF2I, {R(d), R(s)}, 1);
            mi->width = widthOf(dst);
            mi->signExt = dst->isSignedInteger();
        } else if (dst->isFloatingPoint()) {
            auto *mi = emit(kSpCvtI2F, {R(d), R(s)}, 1);
            mi->signExt = src->isSignedInteger();
            mi->fp32 = isFP32(dst);
        } else if (dst->isBool()) {
            emit(kSpCvtI2B, {R(d), R(s)}, 1);
        } else {
            auto *mi = emit(kSpExt, {R(d), R(s)}, 1);
            mi->width = widthOf(dst);
            mi->signExt = dst->isSignedInteger();
        }
    }

    void
    marshalOutgoingArgs(const std::vector<const Value *> &args)
    {
        for (unsigned i = 0; i < args.size(); ++i) {
            bool fp = args[i]->type()->isFloatingPoint();
            unsigned r = valueReg(args[i]);
            if (i < kRegArgs) {
                unsigned phys = fp ? 32 + i : 8 + i;
                auto *mi = emit(kOpCopy, {R(phys), R(r)}, 1);
                mi->fp32 = isFP32(args[i]->type());
            } else {
                emit(kSpStoreStack,
                     {R(r),
                      MOperand::makeImm(8 * static_cast<int64_t>(i))});
            }
        }
        if (args.size() > kRegArgs)
            mf_->noteOutgoingArgs(8ull * args.size());
    }

    MachineInstr *
    emitCallInstr(const Value *callee, std::vector<MOperand> blocks)
    {
        std::vector<MOperand> ops;
        if (auto *fn = dyn_cast<Function>(callee))
            ops.push_back(MOperand::makeFunc(fn));
        else
            ops.push_back(R(valueReg(callee)));
        for (auto &b : blocks)
            ops.push_back(b);
        auto *mi = emit(kSpCall, std::move(ops));
        mi->isCall = true;
        return mi;
    }

    void
    emitResultCopy(const Instruction &inst)
    {
        const Type *t = inst.type();
        if (t->kind() == TypeKind::Void)
            return;
        bool fp = t->isFloatingPoint();
        auto *cp =
            emit(kOpCopy, {R(vregFor(&inst)), R(fp ? 32u : 8u)}, 1);
        cp->fp32 = isFP32(t);
    }

    void
    lowerCall(const CallInst &inst) override
    {
        std::vector<const Value *> args;
        for (unsigned i = 0; i < inst.numArgs(); ++i)
            args.push_back(inst.arg(i));
        marshalOutgoingArgs(args);
        emitCallInstr(inst.callee(), {});
        emit(kSpNop, {}); // delay slot
        emitResultCopy(inst);
    }

    void
    lowerInvoke(const InvokeInst &inst) override
    {
        std::vector<const Value *> args;
        for (unsigned i = 0; i < inst.numArgs(); ++i)
            args.push_back(inst.arg(i));
        marshalOutgoingArgs(args);

        auto *ret = mf_->createBlock(cur_->name() + ".invret");
        auto *uw = mf_->createBlock(cur_->name() + ".invuw");
        emitCallInstr(inst.callee(), {MOperand::makeBlock(ret),
                                      MOperand::makeBlock(uw)});
        emit(kSpNop, {}); // delay slot
        cur_->successors().push_back(ret);
        cur_->successors().push_back(uw);
        edgeBlock_[{inst.parent(), inst.normalDest()}] = ret;
        edgeBlock_[{inst.parent(), inst.unwindDest()}] = uw;

        MachineBasicBlock *save = cur_;
        cur_ = ret;
        emitResultCopy(inst);
        auto *nd = blockMap_.at(inst.normalDest());
        emit(kSpBa, {MOperand::makeBlock(nd)});
        ret->successors().push_back(nd);

        cur_ = uw;
        auto *ud = blockMap_.at(inst.unwindDest());
        emit(kSpBa, {MOperand::makeBlock(ud)});
        uw->successors().push_back(ud);
        cur_ = save;
    }

    void
    lowerUnwind(const UnwindInst &inst) override
    {
        (void)inst;
        emit(kSpUnwind, {});
    }
};

} // namespace

SparcTarget::SparcTarget()
{
    // %g1-%g5 (caller-saved) first, then the callee-saved locals and
    // ins. Excluded: %g0 (zero), %g6/%g7 (system), %o0-%o7
    // (arguments, return, sp at %o6, link at %o7), %i6/%i7 (frame
    // pointer and return address in a real RISC ABI). The allocator
    // reserves the last two per class (%i4/%i5, %f30/%f31) as spill
    // scratch.
    allocInt_ = {1,  2,  3,  4,  5,  16, 17, 18, 19, 20,
                 21, 22, 23, 24, 25, 26, 27, 28, 29};
    calleeInt_ = {16, 17, 18, 19, 20, 21, 22,
                  23, 24, 25, 26, 27, 28, 29};
    for (unsigned r = 38; r < 64; ++r)
        allocFP_.push_back(r); // %f6-%f31
    for (unsigned r = 48; r < 64; ++r)
        calleeFP_.push_back(r); // %f16-%f31
}

const std::vector<unsigned> &
SparcTarget::allocatable(RegClass rc) const
{
    return rc == RegClass::Int ? allocInt_ : allocFP_;
}

const std::vector<unsigned> &
SparcTarget::calleeSaved(RegClass rc) const
{
    return rc == RegClass::Int ? calleeInt_ : calleeFP_;
}

unsigned
SparcTarget::returnReg(RegClass rc) const
{
    return rc == RegClass::Int ? 8u : 32u; // %o0 / %f0
}

const char *
SparcTarget::regName(unsigned reg) const
{
    static const char *const names[32] = {
        "g0", "g1", "g2", "g3", "g4", "g5", "g6", "g7",
        "o0", "o1", "o2", "o3", "o4", "o5", "o6", "o7",
        "l0", "l1", "l2", "l3", "l4", "l5", "l6", "l7",
        "i0", "i1", "i2", "i3", "i4", "i5", "i6", "i7"};
    static const char *const fnames[32] = {
        "f0",  "f1",  "f2",  "f3",  "f4",  "f5",  "f6",  "f7",
        "f8",  "f9",  "f10", "f11", "f12", "f13", "f14", "f15",
        "f16", "f17", "f18", "f19", "f20", "f21", "f22", "f23",
        "f24", "f25", "f26", "f27", "f28", "f29", "f30", "f31"};
    if (reg < 32)
        return names[reg];
    if (reg < 64)
        return fnames[reg - 32];
    return "?";
}

void
SparcTarget::select(const Function &f, MachineFunction &mf)
{
    SparcISel isel;
    isel.runOn(f, mf);
}

void
SparcTarget::insertPrologueEpilogue(
    MachineFunction &mf,
    const std::vector<std::pair<unsigned, int64_t>> &saved)
{
    tgt::insertFrameCode(mf, saved, kSpSpAdj, kSpStoreStack,
                         kSpLoadStack);
    // Fill branch delay slots with nops. Call and return slots are
    // filled during selection; branch slots must wait until after
    // phi elimination, which needs the branch run at the end of each
    // block to be contiguous.
    for (auto &mbb : mf.blocks()) {
        auto &instrs = mbb->instrs();
        for (size_t i = 0; i < instrs.size(); ++i) {
            uint16_t op = instrs[i]->opcode;
            if (op != kSpBrnz && op != kSpBa)
                continue;
            instrs.insert(instrs.begin() +
                              static_cast<ptrdiff_t>(i + 1),
                          std::make_unique<MachineInstr>(
                              kSpNop, std::vector<MOperand>{}, 0));
            ++i;
        }
    }
}

void
SparcTarget::writeArgs(SimState &state, const FunctionType *ft,
                       const std::vector<RtValue> &args) const
{
    for (size_t i = 0; i < args.size(); ++i) {
        bool fp = i < ft->numParams() &&
                  ft->paramType(i)->isFloatingPoint();
        if (i < kRegArgs) {
            if (fp)
                state.freg[i] = args[i].f;
            else
                state.ireg[8 + i] = args[i].i;
        } else {
            uint64_t addr = state.sp + 8 * i;
            if (fp)
                state.mem->storeFP(addr, false, args[i].f);
            else
                state.mem->store(addr, 8, args[i].i);
        }
    }
}

std::vector<RtValue>
SparcTarget::readArgs(SimState &state, const FunctionType *ft) const
{
    std::vector<RtValue> args(ft->numParams());
    for (size_t i = 0; i < ft->numParams(); ++i) {
        bool fp = ft->paramType(i)->isFloatingPoint();
        if (i < kRegArgs) {
            args[i] = fp ? RtValue::ofFP(state.freg[i])
                         : RtValue::ofInt(state.ireg[8 + i]);
        } else {
            uint64_t addr = state.sp + 8 * i;
            if (fp) {
                double v = 0;
                state.mem->loadFP(addr, false, v);
                args[i] = RtValue::ofFP(v);
            } else {
                uint64_t v = 0;
                state.mem->load(addr, 8, v);
                args[i] = RtValue::ofInt(v);
            }
        }
    }
    return args;
}

namespace {

// Direct-threaded dispatch handlers (Target::handlerFor): one free
// function per opcode group, the single source of the execution
// semantics — execute() routes through the same functions, so the
// legacy switch dispatch and the threaded engine cannot diverge.
// Handlers rely on the driver presetting state.next = Fall and must
// write every consumer field of the Next value they request.

void
hSpAlu(const MachineInstr &mi, SimState &state)
{
    using namespace tgt;
    uint64_t a = state.ireg[mi.ops[1].reg];
    uint64_t b = operandIntValue(mi.ops[2], state);
    uint64_t r = evalAlu(aluOfInt(mi.opcode), a, b, mi.width,
                         mi.signExt, mi.trapEnabled, state);
    if (state.next != SimState::Next::Trap)
        state.ireg[mi.ops[0].reg] = r;
}

void
hSpFAlu(const MachineInstr &mi, SimState &state)
{
    using namespace tgt;
    state.freg[mi.ops[0].reg - 32] =
        evalFAlu(aluOfFP(mi.opcode), state.freg[mi.ops[1].reg - 32],
                 state.freg[mi.ops[2].reg - 32], mi.fp32);
}

void
hSpSetCC(const MachineInstr &mi, SimState &state)
{
    using namespace tgt;
    Cond c = condOf(mi.opcode);
    bool r;
    if (isFPReg(mi.ops[1].reg)) {
        r = evalCond<double>(c, state.freg[mi.ops[1].reg - 32],
                             state.freg[mi.ops[2].reg - 32]);
    } else {
        uint64_t a = state.ireg[mi.ops[1].reg];
        uint64_t b = operandIntValue(mi.ops[2], state);
        if (mi.signExt)
            r = evalCond<int64_t>(
                c, static_cast<int64_t>(normInt(a, mi.width, true)),
                static_cast<int64_t>(normInt(b, mi.width, true)));
        else
            r = evalCond<uint64_t>(c, normInt(a, mi.width, false),
                                   normInt(b, mi.width, false));
    }
    state.ireg[mi.ops[0].reg] = r ? 1 : 0;
}

void
hSpSethi(const MachineInstr &mi, SimState &state)
{
    // An FPImm operand marks a constant-pool address pair; the
    // simulated pool has no real location, so the base is zero
    // (kSpLoadC carries the value itself).
    uint64_t v = mi.ops[1].kind == MOperand::FPImm
                     ? 0
                     : tgt::operandIntValue(mi.ops[1], state);
    state.ireg[mi.ops[0].reg] = v & ~0x3ffull;
}

void
hSpOrLo(const MachineInstr &mi, SimState &state)
{
    state.ireg[mi.ops[0].reg] =
        state.ireg[mi.ops[1].reg] |
        (tgt::operandIntValue(mi.ops[2], state) & 0x3ffull);
}

void
hSpLoadC(const MachineInstr &mi, SimState &state)
{
    state.freg[mi.ops[0].reg - 32] =
        tgt::fpRound(mi.ops[2].fpimm, mi.fp32);
}

void
hSpNop(const MachineInstr &, SimState &)
{}

void
hSpBrnz(const MachineInstr &mi, SimState &state)
{
    if (state.ireg[mi.ops[0].reg]) {
        state.next = SimState::Next::Branch;
        state.branchTarget = mi.ops[1].block;
    }
}

void
hSpBa(const MachineInstr &mi, SimState &state)
{
    state.next = SimState::Next::Branch;
    state.branchTarget = mi.ops[0].block;
}

void
hSpCall(const MachineInstr &mi, SimState &state)
{
    state.next = SimState::Next::Call;
    if (mi.ops[0].kind == MOperand::Func) {
        state.callTarget = mi.ops[0].func;
    } else {
        // Without a full reset() a stale direct-call target would
        // shadow the indirect address, so clear it explicitly.
        state.callTarget = nullptr;
        state.callAddr = state.ireg[mi.ops[0].reg];
    }
}

void
hSpRet(const MachineInstr &, SimState &state)
{
    state.next = SimState::Next::Return;
}

void
hSpUnwind(const MachineInstr &, SimState &state)
{
    state.next = SimState::Next::Unwind;
}

void
hSpLoad(const MachineInstr &mi, SimState &state)
{
    tgt::execLoad(mi, state.ireg[mi.ops[1].reg], state);
}

void
hSpStore(const MachineInstr &mi, SimState &state)
{
    tgt::execStore(mi, 0, state.ireg[mi.ops[1].reg], state);
}

void
hSpLoadStack(const MachineInstr &mi, SimState &state)
{
    tgt::execSlotLoad(mi.ops[0].reg, mi.ops[1].imm, state);
}

void
hSpStoreStack(const MachineInstr &mi, SimState &state)
{
    tgt::execSlotStore(mi.ops[0].reg, mi.ops[1].imm, state);
}

void
hSpSpAdj(const MachineInstr &mi, SimState &state)
{
    state.sp += static_cast<uint64_t>(mi.ops[0].imm);
}

} // namespace

ExecFn
SparcTarget::handlerFor(const MachineInstr &mi) const
{
    if (ExecFn fn = tgt::genericHandler(mi.opcode))
        return fn;
    switch (mi.opcode) {
      case kSpAdd:
      case kSpSub:
      case kSpMul:
      case kSpDiv:
      case kSpRem:
      case kSpAnd:
      case kSpOr:
      case kSpXor:
      case kSpSll:
      case kSpSrl:
        return hSpAlu;
      case kSpFAdd:
      case kSpFSub:
      case kSpFMul:
      case kSpFDiv:
      case kSpFRem:
        return hSpFAlu;
      case kSpSetEq:
      case kSpSetNe:
      case kSpSetLt:
      case kSpSetGt:
      case kSpSetLe:
      case kSpSetGe:
        return hSpSetCC;
      case kSpSethi: return hSpSethi;
      case kSpOrLo: return hSpOrLo;
      case kSpLoadC: return hSpLoadC;
      case kSpNop: return hSpNop;
      case kSpBrnz: return hSpBrnz;
      case kSpBa: return hSpBa;
      case kSpCall: return hSpCall;
      case kSpRet: return hSpRet;
      case kSpUnwind: return hSpUnwind;
      case kSpLoad: return hSpLoad;
      case kSpStore: return hSpStore;
      case kSpLoadStack: return hSpLoadStack;
      case kSpStoreStack: return hSpStoreStack;
      case kSpExt: return tgt::execExt;
      case kSpCvtI2F: return tgt::execCvtI2F;
      case kSpCvtF2I: return tgt::execCvtF2I;
      case kSpCvtF2F: return tgt::execCvtF2F;
      case kSpCvtI2B: return tgt::execCvtI2B;
      case kSpSpAdj: return hSpSpAdj;
      default:
        panic("sparc: cannot execute opcode");
    }
}

void
SparcTarget::execute(const MachineInstr &mi, SimState &state) const
{
    handlerFor(mi)(mi, state);
}

std::vector<uint8_t>
SparcTarget::encode(const MachineInstr &mi) const
{
    // The RISC property: every instruction, including the generic
    // pseudos, packs into exactly one 4-byte word. Wide constants
    // already cost an extra instruction (sethi+or), never a wider
    // word.
    return tgt::packEncoding(mi, 4);
}

std::string
SparcTarget::instrToString(const MachineInstr &mi) const
{
    using tgt::isFPReg;
    std::ostringstream os;
    auto reg = [&](const MOperand &op) -> std::string {
        if (isVirtualReg(op.reg))
            return "%v" + std::to_string(op.reg - kFirstVirtualReg);
        return std::string("%") + regName(op.reg);
    };
    auto operand = [&](const MOperand &op) -> std::string {
        switch (op.kind) {
          case MOperand::Reg: return reg(op);
          case MOperand::Imm: return std::to_string(op.imm);
          case MOperand::FPImm: return std::to_string(op.fpimm);
          case MOperand::Frame:
            return "frame[" + std::to_string(op.frameIndex) + "]";
          case MOperand::Block: return "." + op.block->name();
          case MOperand::Global: return op.global->name();
          case MOperand::Func: return op.func->name();
        }
        return "?";
    };
    auto slot = [&](const MOperand &op) -> std::string {
        if (op.kind != MOperand::Imm)
            return "[" + operand(op) + "]";
        return "[%sp+" + std::to_string(op.imm) + "]";
    };
    switch (mi.opcode) {
      case kOpCopy:
        if (isFPReg(mi.ops[0].reg))
            os << (mi.fp32 ? "fmovs " : "fmovd ")
               << operand(mi.ops[1]) << ", " << reg(mi.ops[0]);
        else if (mi.ops[1].kind == MOperand::Global ||
                 mi.ops[1].kind == MOperand::Func)
            os << "set " << operand(mi.ops[1]) << ", "
               << reg(mi.ops[0]);
        else
            os << "mov " << operand(mi.ops[1]) << ", "
               << reg(mi.ops[0]);
        break;
      case kOpSpill:
        os << "stx " << reg(mi.ops[0]) << ", " << slot(mi.ops[1]);
        break;
      case kOpReload:
        os << "ldx " << slot(mi.ops[1]) << ", " << reg(mi.ops[0]);
        break;
      case kOpFrameAddr:
        os << "add %sp, " << operand(mi.ops[1]) << ", "
           << reg(mi.ops[0]);
        break;
      case kOpDynAlloca:
        os << "call alloca, " << reg(mi.ops[1]) << ", "
           << reg(mi.ops[0]);
        break;
      case kSpAdd:
      case kSpSub:
      case kSpMul:
      case kSpDiv:
      case kSpRem:
      case kSpAnd:
      case kSpOr:
      case kSpXor:
      case kSpSll:
      case kSpSrl: {
        static const char *const sn[10] = {
            "add", "sub", "mulx", "sdivx", "srem",
            "and", "or",  "xor",  "sllx",  "srax"};
        static const char *const un[10] = {
            "add", "sub", "mulx", "udivx", "urem",
            "and", "or",  "xor",  "sllx",  "srlx"};
        os << (mi.signExt ? sn : un)[mi.opcode - kSpAdd] << " "
           << reg(mi.ops[1]) << ", " << operand(mi.ops[2]) << ", "
           << reg(mi.ops[0]);
        break;
      }
      case kSpFAdd:
      case kSpFSub:
      case kSpFMul:
      case kSpFDiv:
      case kSpFRem: {
        static const char *const fd[5] = {"faddd", "fsubd", "fmuld",
                                          "fdivd", "fremd"};
        static const char *const fs[5] = {"fadds", "fsubs", "fmuls",
                                          "fdivs", "frems"};
        os << (mi.fp32 ? fs : fd)[mi.opcode - kSpFAdd] << " "
           << reg(mi.ops[1]) << ", " << reg(mi.ops[2]) << ", "
           << reg(mi.ops[0]);
        break;
      }
      case kSpSetEq:
      case kSpSetNe:
      case kSpSetLt:
      case kSpSetGt:
      case kSpSetLe:
      case kSpSetGe: {
        static const char *const names[6] = {"seteq", "setne",
                                             "setlt", "setgt",
                                             "setle", "setge"};
        os << names[mi.opcode - kSpSetEq] << " " << reg(mi.ops[1])
           << ", " << operand(mi.ops[2]) << ", " << reg(mi.ops[0]);
        break;
      }
      case kSpSethi:
        os << "sethi %hi(" << operand(mi.ops[1]) << "), "
           << reg(mi.ops[0]);
        break;
      case kSpOrLo:
        os << "or " << reg(mi.ops[1]) << ", %lo("
           << operand(mi.ops[2]) << "), " << reg(mi.ops[0]);
        break;
      case kSpLoadC:
        os << (mi.fp32 ? "ld [" : "ldd [") << reg(mi.ops[1])
           << "+%lo(" << operand(mi.ops[2]) << ")], "
           << reg(mi.ops[0]);
        break;
      case kSpNop:
        os << "nop";
        break;
      case kSpBrnz:
        os << "brnz " << reg(mi.ops[0]) << ", "
           << operand(mi.ops[1]);
        break;
      case kSpBa:
        os << "ba " << operand(mi.ops[0]);
        break;
      case kSpCall:
        if (mi.ops[0].kind == MOperand::Func)
            os << "call " << mi.ops[0].func->name();
        else
            os << "call " << reg(mi.ops[0]);
        for (size_t i = 1; i < mi.ops.size(); ++i)
            os << (i == 1 ? " -> " : ", ") << operand(mi.ops[i]);
        break;
      case kSpRet:
        os << "ret";
        break;
      case kSpUnwind:
        os << "unwind";
        break;
      case kSpLoad:
        if (isFPReg(mi.ops[0].reg))
            os << (mi.fp32 ? "ld [" : "ldd [") << reg(mi.ops[1])
               << "], " << reg(mi.ops[0]);
        else {
            static const char *const s[9] = {"ldsb", "ldsb", "ldsh",
                                             "?",    "ldsw", "?",
                                             "?",    "?",    "ldx"};
            static const char *const u[9] = {"ldub", "ldub", "lduh",
                                             "?",    "lduw", "?",
                                             "?",    "?",    "ldx"};
            os << (mi.signExt ? s : u)[mi.width] << " ["
               << reg(mi.ops[1]) << "], " << reg(mi.ops[0]);
        }
        break;
      case kSpStore:
        if (isFPReg(mi.ops[0].reg))
            os << (mi.fp32 ? "st " : "std ") << reg(mi.ops[0])
               << ", [" << reg(mi.ops[1]) << "]";
        else {
            static const char *const w[9] = {"stb", "stb", "sth",
                                             "?",   "stw", "?",
                                             "?",   "?",   "stx"};
            os << w[mi.width] << " " << reg(mi.ops[0]) << ", ["
               << reg(mi.ops[1]) << "]";
        }
        break;
      case kSpLoadStack:
        os << "ldx " << slot(mi.ops[1]) << ", " << reg(mi.ops[0]);
        break;
      case kSpStoreStack:
        os << "stx " << reg(mi.ops[0]) << ", " << slot(mi.ops[1]);
        break;
      case kSpExt:
        os << (mi.signExt ? "sext" : "zext")
           << static_cast<unsigned>(tgt::widthBits(mi.width)) << " "
           << reg(mi.ops[1]) << ", " << reg(mi.ops[0]);
        break;
      case kSpCvtI2F:
        os << (mi.fp32 ? "fitos " : "fitod ") << reg(mi.ops[1])
           << ", " << reg(mi.ops[0]);
        break;
      case kSpCvtF2I:
        os << "fdtoi " << reg(mi.ops[1]) << ", " << reg(mi.ops[0]);
        break;
      case kSpCvtF2F:
        os << (mi.fp32 ? "fdtos " : "fstod ") << reg(mi.ops[1])
           << ", " << reg(mi.ops[0]);
        break;
      case kSpCvtI2B:
        os << "movrnz " << reg(mi.ops[1]) << ", 1, "
           << reg(mi.ops[0]);
        break;
      case kSpSpAdj:
        os << "add %sp, " << mi.ops[0].imm << ", %sp";
        break;
      default:
        os << "sparc.op" << mi.opcode;
        break;
    }
    return os.str();
}

} // namespace llva
