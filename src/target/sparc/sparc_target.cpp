/**
 * @file
 * The sparc-like RISC evaluation machine. Three-address arithmetic
 * over 32 integer registers, compare-into-register conditionals
 * (V9-style branch-on-register, so no condition-code state), fixed
 * 4-byte instruction words — large immediates pay the sethi+or tax
 * the paper's sparc expansion ratios come from — a register calling
 * convention, and branch/call/return delay slots.
 *
 * Register numbering follows the architecture: %g0-%g7 = 0-7,
 * %o0-%o7 = 8-15, %l0-%l7 = 16-23, %i0-%i7 = 24-31, and %f0-%f31 at
 * 32-63. %o0-%o5 / %f0-%f5 carry arguments, %o0 / %f0 returns.
 *
 * Everything structural lives in the common target framework; this
 * file keeps only the sparc policy: simm13 inline immediates, the
 * 10-bit sethi/or split, delay-slot fillers, and the disassembly
 * syntax.
 */

#include "target/sparc/sparc_target.h"

#include <sstream>

#include "codegen/isel.h"
#include "ir/function.h"
#include "target/common/common_exec.h"
#include "target/common/common_isel.h"
#include "target/target_util.h"

namespace llva {

namespace {

class SparcISel final : public cmn::CommonISel
{
  public:
    explicit SparcISel(const cmn::AbiDesc &abi)
        : CommonISel(cmn::kSparcBase, abi, /*two_address=*/false,
                     /*lo_bits=*/10)
    {}

  protected:
    bool
    immFits(int64_t v) const override
    {
        return tgt::fitsSimm13(v);
    }

    void
    afterCall() override
    {
        emit(op(cmn::kNop), {}); // delay slot
    }

    void
    afterRet() override
    {
        emit(op(cmn::kNop), {}); // delay slot
    }
};

} // namespace

SparcTarget::SparcTarget()
    : CommonTarget(cmn::kSparcBase,
                   cmn::AbiDesc{/*numRegArgs=*/6, /*intArgBase=*/8,
                                /*fpArgBase=*/32, /*intRetReg=*/8,
                                /*fpRetReg=*/32},
                   /*fixed_instr_bytes=*/4)
{
    // %g1-%g5 (caller-saved) first, then the callee-saved locals and
    // ins. Excluded: %g0 (zero), %g6/%g7 (system), %o0-%o7
    // (arguments, return, sp at %o6, link at %o7), %i6/%i7 (frame
    // pointer and return address in a real RISC ABI). The allocator
    // reserves the last two per class (%i4/%i5, %f30/%f31) as spill
    // scratch.
    allocInt_ = {1,  2,  3,  4,  5,  16, 17, 18, 19, 20,
                 21, 22, 23, 24, 25, 26, 27, 28, 29};
    calleeInt_ = {16, 17, 18, 19, 20, 21, 22,
                  23, 24, 25, 26, 27, 28, 29};
    for (unsigned r = 38; r < 64; ++r)
        allocFP_.push_back(r); // %f6-%f31
    for (unsigned r = 48; r < 64; ++r)
        calleeFP_.push_back(r); // %f16-%f31

    installCommonCore(cmn::hSetCCCompare);
    // Address/large-immediate synthesis; both halves carry the full
    // value (or symbol) so the pair reconstructs any 64-bit canonical
    // image exactly. Global and function addresses always pay this
    // two-instruction tax — the RISC property behind the paper's
    // sparc code-size numbers. The delay-slot nop exists because this
    // simple code generator never schedules useful work into
    // call/return slots.
    setInstr(cmn::kHi, "sethi", cmn::hHi<0x3ff>);
    setInstr(cmn::kLo, "or", cmn::hLo<0x3ff>);
    setInstr(cmn::kLoadConst, "ld", cmn::hLoadConst);
    setInstr(cmn::kNop, "nop", cmn::hNop);
}

const char *
SparcTarget::regName(unsigned reg) const
{
    static const char *const names[32] = {
        "g0", "g1", "g2", "g3", "g4", "g5", "g6", "g7",
        "o0", "o1", "o2", "o3", "o4", "o5", "o6", "o7",
        "l0", "l1", "l2", "l3", "l4", "l5", "l6", "l7",
        "i0", "i1", "i2", "i3", "i4", "i5", "i6", "i7"};
    static const char *const fnames[32] = {
        "f0",  "f1",  "f2",  "f3",  "f4",  "f5",  "f6",  "f7",
        "f8",  "f9",  "f10", "f11", "f12", "f13", "f14", "f15",
        "f16", "f17", "f18", "f19", "f20", "f21", "f22", "f23",
        "f24", "f25", "f26", "f27", "f28", "f29", "f30", "f31"};
    if (reg < 32)
        return names[reg];
    if (reg < 64)
        return fnames[reg - 32];
    return "?";
}

void
SparcTarget::select(const Function &f, MachineFunction &mf)
{
    SparcISel isel(abi());
    isel.runOn(f, mf);
}

void
SparcTarget::finishPrologueEpilogue(MachineFunction &mf)
{
    // Fill branch delay slots with nops. Call and return slots are
    // filled during selection; branch slots must wait until after
    // phi elimination, which needs the branch run at the end of each
    // block to be contiguous.
    for (auto &mbb : mf.blocks()) {
        auto &instrs = mbb->instrs();
        for (size_t i = 0; i < instrs.size(); ++i) {
            uint16_t opc = instrs[i]->opcode;
            if (opc != op(cmn::kBrnz) && opc != op(cmn::kBr))
                continue;
            instrs.insert(
                instrs.begin() + static_cast<ptrdiff_t>(i + 1),
                std::make_unique<MachineInstr>(
                    op(cmn::kNop), std::vector<MOperand>{}, 0));
            ++i;
        }
    }
}

std::string
SparcTarget::instrToString(const MachineInstr &mi) const
{
    using tgt::isFPReg;
    std::ostringstream os;
    auto reg = [&](const MOperand &op) -> std::string {
        if (isVirtualReg(op.reg))
            return "%v" + std::to_string(op.reg - kFirstVirtualReg);
        return std::string("%") + regName(op.reg);
    };
    auto operand = [&](const MOperand &op) -> std::string {
        switch (op.kind) {
          case MOperand::Reg: return reg(op);
          case MOperand::Imm: return std::to_string(op.imm);
          case MOperand::FPImm: return std::to_string(op.fpimm);
          case MOperand::Frame:
            return "frame[" + std::to_string(op.frameIndex) + "]";
          case MOperand::Block: return "." + op.block->name();
          case MOperand::Global: return op.global->name();
          case MOperand::Func: return op.func->name();
        }
        return "?";
    };
    auto slot = [&](const MOperand &op) -> std::string {
        if (op.kind != MOperand::Imm)
            return "[" + operand(op) + "]";
        return "[%sp+" + std::to_string(op.imm) + "]";
    };
    unsigned key =
        mi.opcode >= kOpPhi ? mi.opcode : cmn::relOp(mi.opcode);
    switch (key) {
      case kOpCopy:
        if (isFPReg(mi.ops[0].reg))
            os << (mi.fp32 ? "fmovs " : "fmovd ")
               << operand(mi.ops[1]) << ", " << reg(mi.ops[0]);
        else if (mi.ops[1].kind == MOperand::Global ||
                 mi.ops[1].kind == MOperand::Func)
            os << "set " << operand(mi.ops[1]) << ", "
               << reg(mi.ops[0]);
        else
            os << "mov " << operand(mi.ops[1]) << ", "
               << reg(mi.ops[0]);
        break;
      case kOpSpill:
        os << "stx " << reg(mi.ops[0]) << ", " << slot(mi.ops[1]);
        break;
      case kOpReload:
        os << "ldx " << slot(mi.ops[1]) << ", " << reg(mi.ops[0]);
        break;
      case kOpFrameAddr:
        os << "add %sp, " << operand(mi.ops[1]) << ", "
           << reg(mi.ops[0]);
        break;
      case kOpDynAlloca:
        os << "call alloca, " << reg(mi.ops[1]) << ", "
           << reg(mi.ops[0]);
        break;
      case cmn::kAdd:
      case cmn::kSub:
      case cmn::kMul:
      case cmn::kDiv:
      case cmn::kRem:
      case cmn::kAnd:
      case cmn::kOr:
      case cmn::kXor:
      case cmn::kShl:
      case cmn::kShr: {
        static const char *const sn[10] = {
            "add", "sub", "mulx", "sdivx", "srem",
            "and", "or",  "xor",  "sllx",  "srax"};
        static const char *const un[10] = {
            "add", "sub", "mulx", "udivx", "urem",
            "and", "or",  "xor",  "sllx",  "srlx"};
        os << (mi.signExt ? sn : un)[key - cmn::kAdd] << " "
           << reg(mi.ops[1]) << ", " << operand(mi.ops[2]) << ", "
           << reg(mi.ops[0]);
        break;
      }
      case cmn::kFAdd:
      case cmn::kFSub:
      case cmn::kFMul:
      case cmn::kFDiv:
      case cmn::kFRem: {
        static const char *const fd[5] = {"faddd", "fsubd", "fmuld",
                                          "fdivd", "fremd"};
        static const char *const fs[5] = {"fadds", "fsubs", "fmuls",
                                          "fdivs", "frems"};
        os << (mi.fp32 ? fs : fd)[key - cmn::kFAdd] << " "
           << reg(mi.ops[1]) << ", " << reg(mi.ops[2]) << ", "
           << reg(mi.ops[0]);
        break;
      }
      case cmn::kSetEq:
      case cmn::kSetNe:
      case cmn::kSetLt:
      case cmn::kSetGt:
      case cmn::kSetLe:
      case cmn::kSetGe: {
        static const char *const names[6] = {"seteq", "setne",
                                             "setlt", "setgt",
                                             "setle", "setge"};
        os << names[key - cmn::kSetEq] << " " << reg(mi.ops[1])
           << ", " << operand(mi.ops[2]) << ", " << reg(mi.ops[0]);
        break;
      }
      case cmn::kHi:
        os << "sethi %hi(" << operand(mi.ops[1]) << "), "
           << reg(mi.ops[0]);
        break;
      case cmn::kLo:
        os << "or " << reg(mi.ops[1]) << ", %lo("
           << operand(mi.ops[2]) << "), " << reg(mi.ops[0]);
        break;
      case cmn::kLoadConst:
        os << (mi.fp32 ? "ld [" : "ldd [") << reg(mi.ops[1])
           << "+%lo(" << operand(mi.ops[2]) << ")], "
           << reg(mi.ops[0]);
        break;
      case cmn::kNop:
        os << "nop";
        break;
      case cmn::kBrnz:
        os << "brnz " << reg(mi.ops[0]) << ", "
           << operand(mi.ops[1]);
        break;
      case cmn::kBr:
        os << "ba " << operand(mi.ops[0]);
        break;
      case cmn::kCall:
        if (mi.ops[0].kind == MOperand::Func)
            os << "call " << mi.ops[0].func->name();
        else
            os << "call " << reg(mi.ops[0]);
        for (size_t i = 1; i < mi.ops.size(); ++i)
            os << (i == 1 ? " -> " : ", ") << operand(mi.ops[i]);
        break;
      case cmn::kRet:
        os << "ret";
        break;
      case cmn::kUnwind:
        os << "unwind";
        break;
      case cmn::kLoad:
        if (isFPReg(mi.ops[0].reg))
            os << (mi.fp32 ? "ld [" : "ldd [") << reg(mi.ops[1])
               << "], " << reg(mi.ops[0]);
        else {
            static const char *const s[9] = {"ldsb", "ldsb", "ldsh",
                                             "?",    "ldsw", "?",
                                             "?",    "?",    "ldx"};
            static const char *const u[9] = {"ldub", "ldub", "lduh",
                                             "?",    "lduw", "?",
                                             "?",    "?",    "ldx"};
            os << (mi.signExt ? s : u)[mi.width] << " ["
               << reg(mi.ops[1]) << "], " << reg(mi.ops[0]);
        }
        break;
      case cmn::kStore:
        if (isFPReg(mi.ops[0].reg))
            os << (mi.fp32 ? "st " : "std ") << reg(mi.ops[0])
               << ", [" << reg(mi.ops[1]) << "]";
        else {
            static const char *const w[9] = {"stb", "stb", "sth",
                                             "?",   "stw", "?",
                                             "?",   "?",   "stx"};
            os << w[mi.width] << " " << reg(mi.ops[0]) << ", ["
               << reg(mi.ops[1]) << "]";
        }
        break;
      case cmn::kLoadStack:
        os << "ldx " << slot(mi.ops[1]) << ", " << reg(mi.ops[0]);
        break;
      case cmn::kStoreStack:
        os << "stx " << reg(mi.ops[0]) << ", " << slot(mi.ops[1]);
        break;
      case cmn::kExt:
        os << (mi.signExt ? "sext" : "zext")
           << static_cast<unsigned>(tgt::widthBits(mi.width)) << " "
           << reg(mi.ops[1]) << ", " << reg(mi.ops[0]);
        break;
      case cmn::kCvtI2F:
        os << (mi.fp32 ? "fitos " : "fitod ") << reg(mi.ops[1])
           << ", " << reg(mi.ops[0]);
        break;
      case cmn::kCvtF2I:
        os << "fdtoi " << reg(mi.ops[1]) << ", " << reg(mi.ops[0]);
        break;
      case cmn::kCvtF2F:
        os << (mi.fp32 ? "fdtos " : "fstod ") << reg(mi.ops[1])
           << ", " << reg(mi.ops[0]);
        break;
      case cmn::kCvtI2B:
        os << "movrnz " << reg(mi.ops[1]) << ", 1, "
           << reg(mi.ops[0]);
        break;
      case cmn::kSpAdj:
        os << "add %sp, " << mi.ops[0].imm << ", %sp";
        break;
      default:
        os << "sparc.op" << mi.opcode;
        break;
    }
    return os.str();
}

} // namespace llva
