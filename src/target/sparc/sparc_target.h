/**
 * @file
 * The sparc-like I-ISA (paper Section 5.2's RISC evaluation
 * machine): 32 integer registers, three-address arithmetic, fixed
 * 4-byte instruction words (large immediates need sethi+or), a
 * register calling convention (first six arguments in %o0-%o5 /
 * %f0-%f5), and branch/call/return delay slots.
 */

#ifndef LLVA_TARGET_SPARC_SPARC_TARGET_H
#define LLVA_TARGET_SPARC_SPARC_TARGET_H

#include "target/common/common_target.h"

namespace llva {

class SparcTarget final : public cmn::CommonTarget
{
  public:
    SparcTarget();

    const char *name() const override { return "sparc"; }
    const char *regName(unsigned reg) const override;

    void select(const Function &f, MachineFunction &mf) override;
    std::string instrToString(const MachineInstr &mi) const override;

  protected:
    /** Fill branch delay slots (after phi elimination). */
    void finishPrologueEpilogue(MachineFunction &mf) override;
};

} // namespace llva

#endif // LLVA_TARGET_SPARC_SPARC_TARGET_H
