/**
 * @file
 * The sparc-like I-ISA (paper Section 5.2's RISC evaluation
 * machine): 32 integer registers, three-address arithmetic, fixed
 * 4-byte instruction words (large immediates need sethi+or), and a
 * register calling convention (first six arguments in %o0-%o5 /
 * %f0-%f5), so the marshalling hooks are overridden.
 */

#ifndef LLVA_TARGET_SPARC_SPARC_TARGET_H
#define LLVA_TARGET_SPARC_SPARC_TARGET_H

#include "codegen/target.h"

namespace llva {

class SparcTarget final : public Target
{
  public:
    SparcTarget();

    const char *name() const override { return "sparc"; }
    const std::vector<unsigned> &allocatable(RegClass rc)
        const override;
    const std::vector<unsigned> &calleeSaved(RegClass rc)
        const override;
    unsigned returnReg(RegClass rc) const override;
    const char *regName(unsigned reg) const override;

    void select(const Function &f, MachineFunction &mf) override;
    void insertPrologueEpilogue(
        MachineFunction &mf,
        const std::vector<std::pair<unsigned, int64_t>> &saved)
        override;

    std::vector<uint8_t> encode(const MachineInstr &mi)
        const override;
    void execute(const MachineInstr &mi, SimState &state)
        const override;
    ExecFn handlerFor(const MachineInstr &mi) const override;
    std::string instrToString(const MachineInstr &mi) const override;

    // Register calling convention: the first six arguments ride in
    // %o0-%o5 (integer) / %f0-%f5 (FP); the rest use the stack area.
    void writeArgs(SimState &state, const FunctionType *ft,
                   const std::vector<RtValue> &args) const override;
    std::vector<RtValue> readArgs(SimState &state,
                                  const FunctionType *ft)
        const override;

  private:
    std::vector<unsigned> allocInt_, allocFP_;
    std::vector<unsigned> calleeInt_, calleeFP_;
};

} // namespace llva

#endif // LLVA_TARGET_SPARC_SPARC_TARGET_H
