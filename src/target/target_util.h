/**
 * @file
 * Execution helpers shared by the I-ISA backends. Both modeled
 * machines must agree bit-for-bit with the reference interpreter
 * (src/vm/interpreter.cpp), so the width normalization, trap gating,
 * and conversion rules live here once and the targets only pick
 * opcode numbers and operand shapes.
 *
 * Width convention: MachineInstr::width holds the access/operation
 * size in BYTES, with 0 meaning bool (a 1-bit value stored in one
 * byte of memory).
 */

#ifndef LLVA_TARGET_TARGET_UTIL_H
#define LLVA_TARGET_TARGET_UTIL_H

#include <cmath>

#include "codegen/target.h"
#include "ir/constant.h"
#include "ir/type.h"
#include "support/error.h"

namespace llva {
namespace tgt {

/** FP registers live at 32..63 in SimState. */
inline bool
isFPReg(unsigned reg)
{
    return reg >= 32 && reg < kFirstVirtualReg;
}

/** Bits covered by a width code (0 = bool = 1 bit). */
inline unsigned
widthBits(unsigned wcode)
{
    if (wcode == 0)
        return 1;
    return wcode >= 8 ? 64 : wcode * 8;
}

/**
 * Canonicalize \p v to the register image of a value of the given
 * width: mask to the width, then sign-extend if \p sign. Mirrors the
 * interpreter's canonInt().
 */
inline uint64_t
normInt(uint64_t v, unsigned wcode, bool sign)
{
    unsigned bits = widthBits(wcode);
    if (bits >= 64)
        return v;
    uint64_t mask = (1ull << bits) - 1;
    v &= mask;
    if (sign && (v & (1ull << (bits - 1))))
        v |= ~mask;
    return v;
}

/** Round to float precision when the operation is fp32. */
inline double
fpRound(double v, bool fp32)
{
    return fp32 ? static_cast<double>(static_cast<float>(v)) : v;
}

/** Width code for a first-class type (bool -> 0, pointer -> 8). */
inline unsigned
widthCodeOf(const Type *t, unsigned pointer_size)
{
    if (t->isBool())
        return 0;
    if (t->isPointer())
        return pointer_size;
    return static_cast<unsigned>(t->sizeInBytes(pointer_size));
}

// --- Integer ALU -----------------------------------------------------------

enum class Alu : uint8_t {
    Add,
    Sub,
    Mul,
    Div,
    Rem,
    And,
    Or,
    Xor,
    Shl,
    Shr,
};

/**
 * Evaluate one integer ALU operation on canonical inputs, producing
 * a canonical result. Division faults follow the interpreter: trap
 * only when the instruction has exceptions enabled, else produce 0;
 * INT64_MIN/-1 wraps to (INT64_MIN, 0).
 */
inline uint64_t
evalAlu(Alu op, uint64_t a, uint64_t b, unsigned wcode, bool sign,
        bool trap_enabled, SimState &state)
{
    uint64_t r = 0;
    switch (op) {
      case Alu::Add: r = a + b; break;
      case Alu::Sub: r = a - b; break;
      case Alu::Mul: r = a * b; break;
      case Alu::Div:
      case Alu::Rem:
        if (b == 0) {
            if (trap_enabled) {
                state.trap(TrapKind::DivByZero);
                return 0;
            }
            r = 0;
            break;
        }
        if (sign) {
            auto sa = static_cast<int64_t>(a);
            auto sb = static_cast<int64_t>(b);
            if (sa == INT64_MIN && sb == -1)
                r = op == Alu::Div ? a : 0;
            else
                r = static_cast<uint64_t>(op == Alu::Div ? sa / sb
                                                         : sa % sb);
        } else {
            r = op == Alu::Div ? a / b : a % b;
        }
        break;
      case Alu::And: r = a & b; break;
      case Alu::Or: r = a | b; break;
      case Alu::Xor: r = a ^ b; break;
      case Alu::Shl: r = a << (b & 63); break;
      case Alu::Shr:
        if (sign)
            r = static_cast<uint64_t>(static_cast<int64_t>(a) >>
                                      (b & 63));
        else
            r = a >> (b & 63);
        break;
    }
    return normInt(r, wcode, sign);
}

/** FP arithmetic in double, rounded to float when fp32. */
inline double
evalFAlu(Alu op, double a, double b, bool fp32)
{
    double r = 0;
    switch (op) {
      case Alu::Add: r = a + b; break;
      case Alu::Sub: r = a - b; break;
      case Alu::Mul: r = a * b; break;
      case Alu::Div: r = a / b; break;
      case Alu::Rem: r = std::fmod(a, b); break;
      default: panic("bad FP ALU op");
    }
    return fpRound(r, fp32);
}

// --- Conditions ------------------------------------------------------------

enum class Cond : uint8_t { Eq, Ne, Lt, Gt, Le, Ge };

template <typename T>
inline bool
evalCond(Cond c, T a, T b)
{
    switch (c) {
      case Cond::Eq: return a == b;
      case Cond::Ne: return a != b;
      case Cond::Lt: return a < b;
      case Cond::Gt: return a > b;
      case Cond::Le: return a <= b;
      case Cond::Ge: return a >= b;
    }
    return false;
}

/** Evaluate a comparison against the recorded condition state. */
inline bool
evalCondState(Cond c, bool sign, const SimState &state)
{
    if (state.ccFP)
        return evalCond<double>(c, state.ccFA, state.ccFB);
    if (sign)
        return evalCond<int64_t>(c, state.ccSA, state.ccSB);
    return evalCond<uint64_t>(c, state.ccUA, state.ccUB);
}

/** Record an integer comparison into the condition state. */
inline void
recordCmp(uint64_t a, uint64_t b, unsigned wcode, SimState &state)
{
    state.ccSA = static_cast<int64_t>(normInt(a, wcode, true));
    state.ccSB = static_cast<int64_t>(normInt(b, wcode, true));
    state.ccUA = normInt(a, wcode, false);
    state.ccUB = normInt(b, wcode, false);
    state.ccFP = false;
}

/** Record an FP comparison into the condition state. */
inline void
recordFCmp(double a, double b, SimState &state)
{
    state.ccFA = a;
    state.ccFB = b;
    state.ccFP = true;
}

// --- Operand evaluation ----------------------------------------------------

/** Integer value of a use operand (Reg/Imm/Global/Func). */
inline uint64_t
operandIntValue(const MOperand &op, SimState &state)
{
    switch (op.kind) {
      case MOperand::Reg: return state.ireg[op.reg];
      case MOperand::Imm: return static_cast<uint64_t>(op.imm);
      case MOperand::Global: return state.globalAddrs->at(op.global);
      case MOperand::Func:
        return state.mem->functionAddress(op.func);
      default: panic("operand has no integer value");
    }
}

/** FP value of a use operand (Reg/FPImm). */
inline double
operandFPValue(const MOperand &op, SimState &state)
{
    switch (op.kind) {
      case MOperand::Reg: return state.freg[op.reg - 32];
      case MOperand::FPImm: return op.fpimm;
      default: panic("operand has no FP value");
    }
}

// --- Memory ----------------------------------------------------------------

/**
 * Execute a typed load into ops[0]: normalize integers to the
 * instruction's width/sign, deliver traps only when enabled (else
 * the destination reads as zero, matching the interpreter).
 */
inline void
execLoad(const MachineInstr &mi, uint64_t addr, SimState &state)
{
    unsigned dst = mi.ops[0].reg;
    if (isFPReg(dst)) {
        double v = 0;
        if (!state.mem->loadFP(addr, mi.fp32, v)) {
            TrapKind k = state.mem->lastTrap();
            state.mem->clearTrap();
            if (mi.trapEnabled) {
                state.trap(k);
                return;
            }
            v = 0;
        }
        state.freg[dst - 32] = v;
        return;
    }
    unsigned bytes = mi.width ? mi.width : 1;
    uint64_t v = 0;
    if (!state.mem->load(addr, bytes, v)) {
        TrapKind k = state.mem->lastTrap();
        state.mem->clearTrap();
        if (mi.trapEnabled) {
            state.trap(k);
            return;
        }
        v = 0;
    }
    state.ireg[dst] = normInt(v, mi.width, mi.signExt);
}

/** Execute a typed store of ops[src_idx]; failed stores are ignored
 *  unless the instruction delivers traps. */
inline void
execStore(const MachineInstr &mi, unsigned src_idx, uint64_t addr,
          SimState &state)
{
    unsigned src = mi.ops[src_idx].reg;
    bool ok;
    if (isFPReg(src))
        ok = state.mem->storeFP(addr, mi.fp32, state.freg[src - 32]);
    else
        ok = state.mem->store(addr, mi.width ? mi.width : 1,
                              state.ireg[src]);
    if (!ok) {
        TrapKind k = state.mem->lastTrap();
        state.mem->clearTrap();
        if (mi.trapEnabled)
            state.trap(k);
    }
}

/** Read an 8-byte stack slot at sp+off into a register (raw bits for
 *  integers, a double for FP registers). Slot accesses are always
 *  in-frame, so failures are silently dropped. */
inline void
execSlotLoad(unsigned dst, int64_t off, SimState &state)
{
    uint64_t addr = state.sp + static_cast<uint64_t>(off);
    if (isFPReg(dst)) {
        double v = 0;
        if (!state.mem->loadFP(addr, false, v))
            state.mem->clearTrap();
        state.freg[dst - 32] = v;
    } else {
        uint64_t v = 0;
        if (!state.mem->load(addr, 8, v))
            state.mem->clearTrap();
        state.ireg[dst] = v;
    }
}

/** Write a register to the 8-byte stack slot at sp+off. */
inline void
execSlotStore(unsigned src, int64_t off, SimState &state)
{
    uint64_t addr = state.sp + static_cast<uint64_t>(off);
    bool ok;
    if (isFPReg(src))
        ok = state.mem->storeFP(addr, false, state.freg[src - 32]);
    else
        ok = state.mem->store(addr, 8, state.ireg[src]);
    if (!ok)
        state.mem->clearTrap();
}

// --- Conversions -----------------------------------------------------------

/** int -> FP: sign from the SOURCE type, round if the dest is float. */
inline void
execCvtI2F(const MachineInstr &mi, SimState &state)
{
    uint64_t a = state.ireg[mi.ops[1].reg];
    double d = mi.signExt
                   ? static_cast<double>(static_cast<int64_t>(a))
                   : static_cast<double>(a);
    state.freg[mi.ops[0].reg - 32] = fpRound(d, mi.fp32);
}

/** FP -> int, following the interpreter: non-finite -> 0, negative
 *  unsigned -> 0, then canonicalize at the destination width. */
inline void
execCvtF2I(const MachineInstr &mi, SimState &state)
{
    double v = state.freg[mi.ops[1].reg - 32];
    uint64_t r = 0;
    if (std::isfinite(v)) {
        if (mi.signExt)
            r = static_cast<uint64_t>(static_cast<int64_t>(v));
        else if (v > 0)
            r = static_cast<uint64_t>(v);
    }
    state.ireg[mi.ops[0].reg] = normInt(r, mi.width, mi.signExt);
}

/** FP -> FP: round when narrowing to float. */
inline void
execCvtF2F(const MachineInstr &mi, SimState &state)
{
    state.freg[mi.ops[0].reg - 32] =
        fpRound(state.freg[mi.ops[1].reg - 32], mi.fp32);
}

/** int -> bool: any nonzero becomes 1. */
inline void
execCvtI2B(const MachineInstr &mi, SimState &state)
{
    state.ireg[mi.ops[0].reg] = state.ireg[mi.ops[1].reg] ? 1 : 0;
}

/** int -> int: re-canonicalize at the destination width/sign. */
inline void
execExt(const MachineInstr &mi, SimState &state)
{
    state.ireg[mi.ops[0].reg] =
        normInt(state.ireg[mi.ops[1].reg], mi.width, mi.signExt);
}

// --- Generic pseudos -------------------------------------------------------

/**
 * Execute the target-independent pseudos (copies, spill code, frame
 * address, dynamic alloca). Returns false if \p mi is not generic.
 */
inline bool
execGeneric(const MachineInstr &mi, SimState &state)
{
    switch (mi.opcode) {
      case kOpCopy: {
        unsigned dst = mi.ops[0].reg;
        if (isFPReg(dst))
            state.freg[dst - 32] = operandFPValue(mi.ops[1], state);
        else
            state.ireg[dst] = operandIntValue(mi.ops[1], state);
        return true;
      }
      case kOpSpill:
        execSlotStore(mi.ops[0].reg, mi.ops[1].imm, state);
        return true;
      case kOpReload:
        execSlotLoad(mi.ops[0].reg, mi.ops[1].imm, state);
        return true;
      case kOpFrameAddr:
        state.ireg[mi.ops[0].reg] =
            state.sp + static_cast<uint64_t>(mi.ops[1].imm);
        return true;
      case kOpDynAlloca: {
        uint64_t size = state.ireg[mi.ops[1].reg];
        uint64_t p = state.mem->malloc(size ? size : 1);
        if (!p) {
            state.trap(TrapKind::StackOverflow);
            return true;
        }
        state.ireg[mi.ops[0].reg] = p;
        return true;
      }
      default: return false;
    }
}

// --- Generic dispatch handlers ---------------------------------------------
//
// The direct-threaded forms of the generic pseudos: one free
// function per opcode, shared by every target's handlerFor(). Each
// is exactly the matching execGeneric() case.

inline void
hdlCopy(const MachineInstr &mi, SimState &state)
{
    unsigned dst = mi.ops[0].reg;
    if (isFPReg(dst))
        state.freg[dst - 32] = operandFPValue(mi.ops[1], state);
    else
        state.ireg[dst] = operandIntValue(mi.ops[1], state);
}

inline void
hdlSpill(const MachineInstr &mi, SimState &state)
{
    execSlotStore(mi.ops[0].reg, mi.ops[1].imm, state);
}

inline void
hdlReload(const MachineInstr &mi, SimState &state)
{
    execSlotLoad(mi.ops[0].reg, mi.ops[1].imm, state);
}

inline void
hdlFrameAddr(const MachineInstr &mi, SimState &state)
{
    state.ireg[mi.ops[0].reg] =
        state.sp + static_cast<uint64_t>(mi.ops[1].imm);
}

inline void
hdlDynAlloca(const MachineInstr &mi, SimState &state)
{
    uint64_t size = state.ireg[mi.ops[1].reg];
    uint64_t p = state.mem->malloc(size ? size : 1);
    if (!p) {
        state.trap(TrapKind::StackOverflow);
        return;
    }
    state.ireg[mi.ops[0].reg] = p;
}

/** Handler for a generic pseudo opcode, or nullptr. */
inline ExecFn
genericHandler(uint16_t opcode)
{
    switch (opcode) {
      case kOpCopy: return hdlCopy;
      case kOpSpill: return hdlSpill;
      case kOpReload: return hdlReload;
      case kOpFrameAddr: return hdlFrameAddr;
      case kOpDynAlloca: return hdlDynAlloca;
      default: return nullptr;
    }
}

// --- Prologue / epilogue ---------------------------------------------------

/**
 * The frame-code shape shared by both targets: sp -= frameSize and
 * callee-saved stores at function entry; the mirrored loads and
 * sp += frameSize immediately before every return. The simulator
 * driver does not restore sp on return, so the epilogue must.
 * Opcode numbers are the target's sp-adjust / slot-store /
 * slot-load instructions.
 */
inline void
insertFrameCode(MachineFunction &mf,
                const std::vector<std::pair<unsigned, int64_t>> &saved,
                uint16_t sp_adj_op, uint16_t store_op,
                uint16_t load_op)
{
    int64_t fs = static_cast<int64_t>(mf.frameSize());
    if (fs == 0 && saved.empty())
        return;
    auto mkAdj = [&](int64_t d) {
        return std::make_unique<MachineInstr>(
            sp_adj_op, std::vector<MOperand>{MOperand::makeImm(d)},
            0u);
    };
    auto &entry = *mf.blocks().front();
    std::vector<std::unique_ptr<MachineInstr>> pro;
    if (fs)
        pro.push_back(mkAdj(-fs));
    for (const auto &[reg, off] : saved)
        pro.push_back(std::make_unique<MachineInstr>(
            store_op,
            std::vector<MOperand>{MOperand::makeReg(reg),
                                  MOperand::makeImm(off)},
            0u));
    entry.instrs().insert(entry.instrs().begin(),
                          std::make_move_iterator(pro.begin()),
                          std::make_move_iterator(pro.end()));
    for (auto &mbb : mf.blocks()) {
        auto &instrs = mbb->instrs();
        for (size_t i = 0; i < instrs.size(); ++i) {
            if (!instrs[i]->isRet)
                continue;
            std::vector<std::unique_ptr<MachineInstr>> epi;
            for (const auto &[reg, off] : saved)
                epi.push_back(std::make_unique<MachineInstr>(
                    load_op,
                    std::vector<MOperand>{MOperand::makeReg(reg),
                                          MOperand::makeImm(off)},
                    1u));
            if (fs)
                epi.push_back(mkAdj(fs));
            size_t n = epi.size();
            instrs.insert(
                instrs.begin() + static_cast<ptrdiff_t>(i),
                std::make_move_iterator(epi.begin()),
                std::make_move_iterator(epi.end()));
            i += n;
        }
    }
}

// --- Encoding / printing helpers ------------------------------------------

inline bool
fitsInt8(int64_t v)
{
    return v >= -128 && v <= 127;
}

inline bool
fitsInt32(int64_t v)
{
    return v >= INT32_MIN && v <= INT32_MAX;
}

/** SPARC simm13 immediate field. */
inline bool
fitsSimm13(int64_t v)
{
    return v >= -4096 && v <= 4095;
}

/** Fill an encoding buffer of exactly \p size bytes: opcode byte,
 *  operand summary bytes, immediates little-endian. */
inline std::vector<uint8_t>
packEncoding(const MachineInstr &mi, size_t size)
{
    std::vector<uint8_t> bytes(size, 0);
    bytes[0] = static_cast<uint8_t>(mi.opcode & 0xff);
    size_t at = 1;
    for (const MOperand &op : mi.ops) {
        if (at >= size)
            break;
        switch (op.kind) {
          case MOperand::Reg:
            bytes[at++] = static_cast<uint8_t>(op.reg & 0xff);
            break;
          case MOperand::Imm:
          case MOperand::Frame: {
            uint64_t v = static_cast<uint64_t>(op.imm);
            for (unsigned i = 0; i < 8 && at < size; ++i)
                bytes[at++] = static_cast<uint8_t>(v >> (8 * i));
            break;
          }
          case MOperand::Block:
            bytes[at++] = static_cast<uint8_t>(
                op.block ? op.block->index() : 0);
            break;
          default:
            bytes[at++] = 0xaa;
            break;
        }
    }
    return bytes;
}

} // namespace tgt
} // namespace llva

#endif // LLVA_TARGET_TARGET_UTIL_H
