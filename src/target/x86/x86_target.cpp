/**
 * @file
 * The x86-like CISC evaluation machine. Two-address integer
 * arithmetic over 8 registers with condition flags, variable-length
 * encoding (reg/reg forms vs imm8/imm32/imm64 forms), and a fully
 * stack-based calling convention: all arguments travel through the
 * caller's outgoing area at sp+8i, so the default marshalling hooks
 * in target_conv.cpp apply unchanged.
 *
 * Register numbering: 0=rax 1=rcx 2=rdx 3=rbx 4=rsi 5=rdi 6=rbp
 * (7=rsp is the simulated stack pointer and never allocated);
 * FP registers 32..39 are xmm0..xmm7.
 */

#include "target/x86/x86_target.h"

#include <sstream>

#include "codegen/isel.h"
#include "ir/function.h"
#include "target/target_util.h"

namespace llva {

namespace {

using tgt::Alu;
using tgt::Cond;

enum X86Op : uint16_t {
    // Two-address ALU: [def dst, use dst, use src(Reg|Imm)]. The
    // dst-as-use operand keeps both register allocators honest about
    // the read-modify-write semantics.
    kX86Add = 0x100,
    kX86Sub,
    kX86IMul,
    kX86Div,
    kX86Rem,
    kX86And,
    kX86Or,
    kX86Xor,
    kX86Shl,
    kX86Shr,
    // FP two-address ALU: [def dst, use dst, use src].
    kX86FAdd,
    kX86FSub,
    kX86FMul,
    kX86FDiv,
    kX86FRem,
    // Flags: cmp records both signed and unsigned views; setcc picks
    // one via signExt (or the FP view when the last compare was FP).
    kX86Cmp,
    kX86FCmp,
    kX86SetEq,
    kX86SetNe,
    kX86SetLt,
    kX86SetGt,
    kX86SetLe,
    kX86SetGe,
    // Control flow. Jnz is the fused test+jnz on a register, so no
    // flags survive across phi-copy insertion points.
    kX86Jnz,
    kX86Jmp,
    kX86Call,
    kX86Ret,
    kX86Unwind,
    // Memory.
    kX86Load,
    kX86Store,
    kX86LoadStack,
    kX86StoreStack,
    // Conversions.
    kX86Ext,
    kX86CvtI2F,
    kX86CvtF2I,
    kX86CvtF2F,
    kX86CvtI2B,
    // Stack pointer adjustment (prologue/epilogue).
    kX86SpAdj,
};

const char *const kIntRegNames[8] = {"rax", "rcx", "rdx", "rbx",
                                     "rsi", "rdi", "rbp", "rsp"};

Alu
aluOfInt(uint16_t opc)
{
    return static_cast<Alu>(opc - kX86Add);
}

Alu
aluOfFP(uint16_t opc)
{
    return static_cast<Alu>(opc - kX86FAdd);
}

Cond
condOf(uint16_t opc)
{
    return static_cast<Cond>(opc - kX86SetEq);
}

uint16_t
intAluOpcode(Opcode op)
{
    switch (op) {
      case Opcode::Add: return kX86Add;
      case Opcode::Sub: return kX86Sub;
      case Opcode::Mul: return kX86IMul;
      case Opcode::Div: return kX86Div;
      case Opcode::Rem: return kX86Rem;
      case Opcode::And: return kX86And;
      case Opcode::Or: return kX86Or;
      case Opcode::Xor: return kX86Xor;
      case Opcode::Shl: return kX86Shl;
      case Opcode::Shr: return kX86Shr;
      default: panic("not an integer ALU opcode");
    }
}

uint16_t
fpAluOpcode(Opcode op)
{
    switch (op) {
      case Opcode::Add: return kX86FAdd;
      case Opcode::Sub: return kX86FSub;
      case Opcode::Mul: return kX86FMul;
      case Opcode::Div: return kX86FDiv;
      case Opcode::Rem: return kX86FRem;
      default: panic("not an FP ALU opcode");
    }
}

uint16_t
setOpcode(Opcode op)
{
    switch (op) {
      case Opcode::SetEQ: return kX86SetEq;
      case Opcode::SetNE: return kX86SetNe;
      case Opcode::SetLT: return kX86SetLt;
      case Opcode::SetGT: return kX86SetGt;
      case Opcode::SetLE: return kX86SetLe;
      case Opcode::SetGE: return kX86SetGe;
      default: panic("not a comparison opcode");
    }
}

class X86ISel final : public ISelBase
{
  protected:
    static MOperand
    R(unsigned reg)
    {
        return MOperand::makeReg(reg);
    }

    uint8_t
    widthOf(const Type *t) const
    {
        return static_cast<uint8_t>(
            tgt::widthCodeOf(t, pointerSize_));
    }

    /** Inline a ConstantInt as an immediate; else a register. */
    MOperand
    intOperand(const Value *v)
    {
        if (auto *ci = dyn_cast<ConstantInt>(v))
            return MOperand::makeImm(ci->sext());
        return R(valueReg(v));
    }

    void
    emitMove(unsigned dst, unsigned src, bool fp, bool fp32) override
    {
        (void)fp;
        auto *mi = emit(kOpCopy, {R(dst), R(src)}, 1);
        mi->fp32 = fp32;
    }

    void
    emitMaterialize(unsigned dst, const MOperand &value, bool fp,
                    bool fp32) override
    {
        (void)fp;
        auto *mi = emit(kOpCopy, {R(dst), value}, 1);
        mi->fp32 = fp32;
    }

    void
    emitAdd(unsigned dst, unsigned a, unsigned b) override
    {
        emitMove(dst, a, false, false);
        emit(kX86Add, {R(dst), R(dst), R(b)}, 1);
    }

    void
    emitAddImm(unsigned dst, unsigned a, int64_t imm) override
    {
        emitMove(dst, a, false, false);
        emit(kX86Add, {R(dst), R(dst), MOperand::makeImm(imm)}, 1);
    }

    void
    emitMulImm(unsigned dst, unsigned a, int64_t imm) override
    {
        emitMove(dst, a, false, false);
        emit(kX86IMul, {R(dst), R(dst), MOperand::makeImm(imm)}, 1);
    }

    void
    emitDynAlloca(unsigned dst, unsigned size_reg) override
    {
        emit(kOpDynAlloca, {R(dst), R(size_reg)}, 1);
    }

    void
    lowerArgs() override
    {
        // Stack convention: incoming argument i lives in the
        // caller's outgoing area, reachable through the negative
        // frame index -1-i (resolved during frame finalization).
        for (unsigned i = 0; i < f_->numArgs(); ++i)
            emit(kX86LoadStack,
                 {R(vregFor(f_->arg(i))),
                  MOperand::makeFrame(-1 - static_cast<int>(i))},
                 1);
    }

    void
    lowerBinary(const BinaryOperator &inst) override
    {
        const Type *t = inst.type();
        unsigned dst = vregFor(&inst);
        if (t->isFloatingPoint()) {
            unsigned a = valueReg(inst.lhs());
            unsigned b = valueReg(inst.rhs());
            emitMove(dst, a, true, isFP32(t));
            auto *mi = emit(fpAluOpcode(inst.opcode()),
                            {R(dst), R(dst), R(b)}, 1);
            mi->fp32 = isFP32(t);
            return;
        }
        unsigned a = valueReg(inst.lhs());
        MOperand b = intOperand(inst.rhs());
        emitMove(dst, a, false, false);
        auto *mi =
            emit(intAluOpcode(inst.opcode()), {R(dst), R(dst), b}, 1);
        mi->width = widthOf(t);
        mi->signExt = t->isSignedInteger();
        if (inst.opcode() == Opcode::Div ||
            inst.opcode() == Opcode::Rem)
            mi->trapEnabled = inst.exceptionsEnabled();
    }

    void
    lowerCompare(const SetCondInst &inst) override
    {
        const Type *t = inst.lhs()->type();
        unsigned dst = vregFor(&inst);
        if (t->isFloatingPoint()) {
            unsigned a = valueReg(inst.lhs());
            unsigned b = valueReg(inst.rhs());
            emit(kX86FCmp, {R(a), R(b)});
            emit(setOpcode(inst.opcode()), {R(dst)}, 1);
            return;
        }
        unsigned a = valueReg(inst.lhs());
        MOperand b = intOperand(inst.rhs());
        auto *cmp = emit(kX86Cmp, {R(a), b});
        cmp->width = widthOf(t);
        auto *set = emit(setOpcode(inst.opcode()), {R(dst)}, 1);
        set->signExt = t->isSignedInteger();
    }

    void
    lowerRet(const ReturnInst &inst) override
    {
        if (const Value *v = inst.returnValue()) {
            bool fp = v->type()->isFloatingPoint();
            unsigned r = valueReg(v);
            auto *cp = emit(kOpCopy, {R(fp ? 32u : 0u), R(r)}, 1);
            cp->fp32 = isFP32(v->type());
        }
        emit(kX86Ret, {})->isRet = true;
    }

    void
    lowerBr(const BranchInst &inst) override
    {
        if (!inst.isConditional()) {
            auto *t = blockMap_.at(inst.target(0));
            emit(kX86Jmp, {MOperand::makeBlock(t)});
            cur_->successors().push_back(t);
            return;
        }
        unsigned c = valueReg(inst.condition());
        auto *tb = blockMap_.at(inst.target(0));
        auto *fb = blockMap_.at(inst.target(1));
        emit(kX86Jnz, {R(c), MOperand::makeBlock(tb)});
        emit(kX86Jmp, {MOperand::makeBlock(fb)});
        cur_->successors().push_back(tb);
        cur_->successors().push_back(fb);
    }

    void
    lowerMBr(const MBrInst &inst) override
    {
        // Materialize one bool per case first, then dispatch with a
        // branch chain. Keeping all the Block-carrying instructions
        // in one trailing run lets phi elimination insert its copies
        // on every outgoing path.
        unsigned v = valueReg(inst.condition());
        std::vector<unsigned> match;
        for (unsigned i = 0; i < inst.numCases(); ++i) {
            int64_t cv = inst.caseValue(i)->sext();
            MOperand b = MOperand::makeImm(cv);
            if (!tgt::fitsInt32(cv)) {
                unsigned t = mf_->createVReg(RegClass::Int);
                emitMaterialize(t, MOperand::makeImm(cv), false,
                                false);
                b = R(t);
            }
            // The interpreter matches on full canonical 64-bit
            // values, so compare at width 8 unsigned.
            emit(kX86Cmp, {R(v), b});
            unsigned r = mf_->createVReg(RegClass::Int);
            emit(kX86SetEq, {R(r)}, 1);
            match.push_back(r);
        }
        for (unsigned i = 0; i < inst.numCases(); ++i) {
            auto *bb = blockMap_.at(inst.caseDest(i));
            emit(kX86Jnz, {R(match[i]), MOperand::makeBlock(bb)});
            cur_->successors().push_back(bb);
        }
        auto *def = blockMap_.at(inst.defaultDest());
        emit(kX86Jmp, {MOperand::makeBlock(def)});
        cur_->successors().push_back(def);
    }

    void
    lowerLoad(const LoadInst &inst) override
    {
        const Type *t = inst.type();
        unsigned addr = valueReg(inst.pointer());
        auto *mi = emit(kX86Load, {R(vregFor(&inst)), R(addr)}, 1);
        mi->trapEnabled = inst.exceptionsEnabled();
        if (t->isFloatingPoint()) {
            mi->fp32 = isFP32(t);
        } else {
            mi->width = widthOf(t);
            mi->signExt = t->isSignedInteger();
        }
    }

    void
    lowerStore(const StoreInst &inst) override
    {
        const Type *t = inst.value()->type();
        unsigned src = valueReg(inst.value());
        unsigned addr = valueReg(inst.pointer());
        auto *mi = emit(kX86Store, {R(src), R(addr)});
        mi->trapEnabled = inst.exceptionsEnabled();
        if (t->isFloatingPoint())
            mi->fp32 = isFP32(t);
        else
            mi->width = widthOf(t);
    }

    void
    lowerCast(const CastInst &inst) override
    {
        const Type *src = inst.value()->type();
        const Type *dst = inst.type();
        unsigned d = vregFor(&inst);
        unsigned s = valueReg(inst.value());
        if (src->isFloatingPoint() && dst->isFloatingPoint()) {
            auto *mi = emit(kX86CvtF2F, {R(d), R(s)}, 1);
            mi->fp32 = isFP32(dst);
        } else if (src->isFloatingPoint()) {
            auto *mi = emit(kX86CvtF2I, {R(d), R(s)}, 1);
            mi->width = widthOf(dst);
            mi->signExt = dst->isSignedInteger();
        } else if (dst->isFloatingPoint()) {
            auto *mi = emit(kX86CvtI2F, {R(d), R(s)}, 1);
            mi->signExt = src->isSignedInteger();
            mi->fp32 = isFP32(dst);
        } else if (dst->isBool()) {
            emit(kX86CvtI2B, {R(d), R(s)}, 1);
        } else {
            auto *mi = emit(kX86Ext, {R(d), R(s)}, 1);
            mi->width = widthOf(dst);
            mi->signExt = dst->isSignedInteger();
        }
    }

    void
    storeOutgoingArgs(const Value *const *args, unsigned n)
    {
        for (unsigned i = 0; i < n; ++i)
            emit(kX86StoreStack,
                 {R(valueReg(args[i])),
                  MOperand::makeImm(8 * static_cast<int64_t>(i))});
        mf_->noteOutgoingArgs(8ull * n);
    }

    MachineInstr *
    emitCallInstr(const Value *callee, std::vector<MOperand> blocks)
    {
        std::vector<MOperand> ops;
        if (auto *fn = dyn_cast<Function>(callee))
            ops.push_back(MOperand::makeFunc(fn));
        else
            ops.push_back(R(valueReg(callee)));
        for (auto &b : blocks)
            ops.push_back(b);
        auto *mi = emit(kX86Call, std::move(ops));
        mi->isCall = true;
        return mi;
    }

    void
    emitResultCopy(const Instruction &inst)
    {
        const Type *t = inst.type();
        if (t->kind() == TypeKind::Void)
            return;
        bool fp = t->isFloatingPoint();
        auto *cp =
            emit(kOpCopy, {R(vregFor(&inst)), R(fp ? 32u : 0u)}, 1);
        cp->fp32 = isFP32(t);
    }

    void
    lowerCall(const CallInst &inst) override
    {
        std::vector<const Value *> args;
        for (unsigned i = 0; i < inst.numArgs(); ++i)
            args.push_back(inst.arg(i));
        storeOutgoingArgs(args.data(),
                          static_cast<unsigned>(args.size()));
        emitCallInstr(inst.callee(), {});
        emitResultCopy(inst);
    }

    void
    lowerInvoke(const InvokeInst &inst) override
    {
        std::vector<const Value *> args;
        for (unsigned i = 0; i < inst.numArgs(); ++i)
            args.push_back(inst.arg(i));
        storeOutgoingArgs(args.data(),
                          static_cast<unsigned>(args.size()));

        // The simulator driver resumes at the first Block operand on
        // normal return and at the second after an unwind. Each edge
        // gets its own landing block so phi copies can distinguish
        // the two paths.
        auto *ret = mf_->createBlock(cur_->name() + ".invret");
        auto *uw = mf_->createBlock(cur_->name() + ".invuw");
        emitCallInstr(inst.callee(), {MOperand::makeBlock(ret),
                                      MOperand::makeBlock(uw)});
        cur_->successors().push_back(ret);
        cur_->successors().push_back(uw);
        edgeBlock_[{inst.parent(), inst.normalDest()}] = ret;
        edgeBlock_[{inst.parent(), inst.unwindDest()}] = uw;

        MachineBasicBlock *save = cur_;
        cur_ = ret;
        emitResultCopy(inst);
        auto *nd = blockMap_.at(inst.normalDest());
        emit(kX86Jmp, {MOperand::makeBlock(nd)});
        ret->successors().push_back(nd);

        cur_ = uw;
        auto *ud = blockMap_.at(inst.unwindDest());
        emit(kX86Jmp, {MOperand::makeBlock(ud)});
        uw->successors().push_back(ud);
        cur_ = save;
    }

    void
    lowerUnwind(const UnwindInst &inst) override
    {
        (void)inst;
        emit(kX86Unwind, {});
    }
};

} // namespace

X86Target::X86Target()
{
    // Preference order: caller-saved first so leaf code stays cheap;
    // the linear-scan allocator reserves the last two per class as
    // spill scratch (rdi/rbp and xmm6/xmm7).
    allocInt_ = {0, 1, 2, 3, 4, 5, 6};
    calleeInt_ = {3, 4, 5, 6}; // rbx rsi rdi rbp
    allocFP_ = {32, 33, 34, 35, 36, 37, 38, 39};
    calleeFP_ = {}; // xmm regs are caller-saved on x86
}

const std::vector<unsigned> &
X86Target::allocatable(RegClass rc) const
{
    return rc == RegClass::Int ? allocInt_ : allocFP_;
}

const std::vector<unsigned> &
X86Target::calleeSaved(RegClass rc) const
{
    return rc == RegClass::Int ? calleeInt_ : calleeFP_;
}

unsigned
X86Target::returnReg(RegClass rc) const
{
    return rc == RegClass::Int ? 0u : 32u; // rax / xmm0
}

const char *
X86Target::regName(unsigned reg) const
{
    static const char *const xmm[8] = {"xmm0", "xmm1", "xmm2",
                                       "xmm3", "xmm4", "xmm5",
                                       "xmm6", "xmm7"};
    if (reg < 8)
        return kIntRegNames[reg];
    if (reg >= 32 && reg < 40)
        return xmm[reg - 32];
    return "?";
}

void
X86Target::select(const Function &f, MachineFunction &mf)
{
    X86ISel isel;
    isel.runOn(f, mf);
}

void
X86Target::insertPrologueEpilogue(
    MachineFunction &mf,
    const std::vector<std::pair<unsigned, int64_t>> &saved)
{
    tgt::insertFrameCode(mf, saved, kX86SpAdj, kX86StoreStack,
                         kX86LoadStack);
}

namespace {

// Direct-threaded dispatch handlers (Target::handlerFor): one free
// function per opcode group, the single source of the execution
// semantics — execute() routes through the same functions, so the
// legacy switch dispatch and the threaded engine cannot diverge.
// Handlers rely on the driver presetting state.next = Fall and must
// write every consumer field of the Next value they request.

void
hX86Alu(const MachineInstr &mi, SimState &state)
{
    using namespace tgt;
    uint64_t a = state.ireg[mi.ops[1].reg];
    uint64_t b = operandIntValue(mi.ops[2], state);
    uint64_t r = evalAlu(aluOfInt(mi.opcode), a, b, mi.width,
                         mi.signExt, mi.trapEnabled, state);
    if (state.next != SimState::Next::Trap)
        state.ireg[mi.ops[0].reg] = r;
}

void
hX86FAlu(const MachineInstr &mi, SimState &state)
{
    using namespace tgt;
    state.freg[mi.ops[0].reg - 32] =
        evalFAlu(aluOfFP(mi.opcode), state.freg[mi.ops[1].reg - 32],
                 state.freg[mi.ops[2].reg - 32], mi.fp32);
}

void
hX86Cmp(const MachineInstr &mi, SimState &state)
{
    tgt::recordCmp(state.ireg[mi.ops[0].reg],
                   tgt::operandIntValue(mi.ops[1], state), mi.width,
                   state);
}

void
hX86FCmp(const MachineInstr &mi, SimState &state)
{
    tgt::recordFCmp(state.freg[mi.ops[0].reg - 32],
                    state.freg[mi.ops[1].reg - 32], state);
}

void
hX86SetCC(const MachineInstr &mi, SimState &state)
{
    state.ireg[mi.ops[0].reg] =
        tgt::evalCondState(condOf(mi.opcode), mi.signExt, state) ? 1
                                                                 : 0;
}

void
hX86Jnz(const MachineInstr &mi, SimState &state)
{
    if (state.ireg[mi.ops[0].reg]) {
        state.next = SimState::Next::Branch;
        state.branchTarget = mi.ops[1].block;
    }
}

void
hX86Jmp(const MachineInstr &mi, SimState &state)
{
    state.next = SimState::Next::Branch;
    state.branchTarget = mi.ops[0].block;
}

void
hX86Call(const MachineInstr &mi, SimState &state)
{
    state.next = SimState::Next::Call;
    if (mi.ops[0].kind == MOperand::Func) {
        state.callTarget = mi.ops[0].func;
    } else {
        // Without a full reset() a stale direct-call target would
        // shadow the indirect address, so clear it explicitly.
        state.callTarget = nullptr;
        state.callAddr = state.ireg[mi.ops[0].reg];
    }
}

void
hX86Ret(const MachineInstr &, SimState &state)
{
    state.next = SimState::Next::Return;
}

void
hX86Unwind(const MachineInstr &, SimState &state)
{
    state.next = SimState::Next::Unwind;
}

void
hX86Load(const MachineInstr &mi, SimState &state)
{
    tgt::execLoad(mi, state.ireg[mi.ops[1].reg], state);
}

void
hX86Store(const MachineInstr &mi, SimState &state)
{
    tgt::execStore(mi, 0, state.ireg[mi.ops[1].reg], state);
}

void
hX86LoadStack(const MachineInstr &mi, SimState &state)
{
    tgt::execSlotLoad(mi.ops[0].reg, mi.ops[1].imm, state);
}

void
hX86StoreStack(const MachineInstr &mi, SimState &state)
{
    tgt::execSlotStore(mi.ops[0].reg, mi.ops[1].imm, state);
}

void
hX86SpAdj(const MachineInstr &mi, SimState &state)
{
    state.sp += static_cast<uint64_t>(mi.ops[0].imm);
}

} // namespace

ExecFn
X86Target::handlerFor(const MachineInstr &mi) const
{
    if (ExecFn fn = tgt::genericHandler(mi.opcode))
        return fn;
    switch (mi.opcode) {
      case kX86Add:
      case kX86Sub:
      case kX86IMul:
      case kX86Div:
      case kX86Rem:
      case kX86And:
      case kX86Or:
      case kX86Xor:
      case kX86Shl:
      case kX86Shr:
        return hX86Alu;
      case kX86FAdd:
      case kX86FSub:
      case kX86FMul:
      case kX86FDiv:
      case kX86FRem:
        return hX86FAlu;
      case kX86Cmp: return hX86Cmp;
      case kX86FCmp: return hX86FCmp;
      case kX86SetEq:
      case kX86SetNe:
      case kX86SetLt:
      case kX86SetGt:
      case kX86SetLe:
      case kX86SetGe:
        return hX86SetCC;
      case kX86Jnz: return hX86Jnz;
      case kX86Jmp: return hX86Jmp;
      case kX86Call: return hX86Call;
      case kX86Ret: return hX86Ret;
      case kX86Unwind: return hX86Unwind;
      case kX86Load: return hX86Load;
      case kX86Store: return hX86Store;
      case kX86LoadStack: return hX86LoadStack;
      case kX86StoreStack: return hX86StoreStack;
      case kX86Ext: return tgt::execExt;
      case kX86CvtI2F: return tgt::execCvtI2F;
      case kX86CvtF2I: return tgt::execCvtF2I;
      case kX86CvtF2F: return tgt::execCvtF2F;
      case kX86CvtI2B: return tgt::execCvtI2B;
      case kX86SpAdj: return hX86SpAdj;
      default:
        panic("x86: cannot execute opcode");
    }
}

void
X86Target::execute(const MachineInstr &mi, SimState &state) const
{
    handlerFor(mi)(mi, state);
}

std::vector<uint8_t>
X86Target::encode(const MachineInstr &mi) const
{
    using namespace tgt;
    size_t size = 0;
    auto immSize = [](int64_t v) -> size_t {
        return fitsInt8(v) ? 1 : 4;
    };
    switch (mi.opcode) {
      case kOpCopy:
        switch (mi.ops[1].kind) {
          case MOperand::Reg:
            size = isFPReg(mi.ops[0].reg) ? 4 : 3;
            break;
          case MOperand::Imm:
            size = fitsInt32(mi.ops[1].imm) ? 5 : 10; // mov / movabs
            break;
          case MOperand::FPImm:
            size = 8; // movsd xmm, [rip+disp32]
            break;
          default:
            size = 10; // movabs $address
            break;
        }
        break;
      case kOpSpill:
      case kOpReload:
      case kX86LoadStack:
      case kX86StoreStack:
      case kOpFrameAddr:
        // mod/rm with rsp base: disp8 or disp32 form.
        size = mi.ops[1].kind == MOperand::Imm
                   ? 4 + immSize(mi.ops[1].imm)
                   : 8;
        break;
      case kOpDynAlloca:
        size = 5; // call [runtime]
        break;
      case kX86Add:
      case kX86Sub:
      case kX86And:
      case kX86Or:
      case kX86Xor:
        size = mi.ops[2].kind == MOperand::Imm
                   ? 3 + immSize(mi.ops[2].imm)
                   : 3;
        break;
      case kX86IMul:
        size = mi.ops[2].kind == MOperand::Imm
                   ? 3 + immSize(mi.ops[2].imm)
                   : 4;
        break;
      case kX86Shl:
      case kX86Shr:
        size = mi.ops[2].kind == MOperand::Imm ? 4 : 3;
        break;
      case kX86Div:
      case kX86Rem:
        size = 3; // cqo implied
        break;
      case kX86FAdd:
      case kX86FSub:
      case kX86FMul:
      case kX86FDiv:
        size = 4;
        break;
      case kX86FRem:
        size = 5; // runtime fmod thunk
        break;
      case kX86Cmp:
        size = mi.ops[1].kind == MOperand::Imm
                   ? 3 + immSize(mi.ops[1].imm)
                   : 3;
        break;
      case kX86FCmp:
        size = 4; // ucomisd
        break;
      case kX86SetEq:
      case kX86SetNe:
      case kX86SetLt:
      case kX86SetGt:
      case kX86SetLe:
      case kX86SetGe:
        size = 4; // setcc + movzx fold
        break;
      case kX86Jnz:
        size = 9; // test r,r (3) + jnz rel32 (6)
        break;
      case kX86Jmp:
        size = 5; // jmp rel32
        break;
      case kX86Call:
        size = mi.ops[0].kind == MOperand::Func ? 5 : 3;
        break;
      case kX86Ret:
        size = 1;
        break;
      case kX86Unwind:
        size = 2; // int imm8 style trap to the runtime
        break;
      case kX86Load:
      case kX86Store:
        size = isFPReg(mi.ops[0].reg) ? 5 : (mi.width == 8 ? 4 : 3);
        break;
      case kX86Ext:
      case kX86CvtF2F:
        size = 4;
        break;
      case kX86CvtI2F:
      case kX86CvtF2I:
        size = 5;
        break;
      case kX86CvtI2B:
        size = 6; // test + setne
        break;
      case kX86SpAdj:
        size = 3 + immSize(mi.ops[0].imm);
        break;
      default:
        panic("x86: cannot encode opcode");
    }
    return packEncoding(mi, size);
}

std::string
X86Target::instrToString(const MachineInstr &mi) const
{
    using tgt::isFPReg;
    std::ostringstream os;
    auto reg = [&](const MOperand &op) -> std::string {
        if (isVirtualReg(op.reg))
            return "%v" + std::to_string(op.reg - kFirstVirtualReg);
        return std::string("%") + regName(op.reg);
    };
    auto operand = [&](const MOperand &op) -> std::string {
        switch (op.kind) {
          case MOperand::Reg: return reg(op);
          case MOperand::Imm: return "$" + std::to_string(op.imm);
          case MOperand::FPImm:
            return "$" + std::to_string(op.fpimm);
          case MOperand::Frame:
            return "frame[" + std::to_string(op.frameIndex) + "]";
          case MOperand::Block: return "." + op.block->name();
          case MOperand::Global: return "$" + op.global->name();
          case MOperand::Func: return "$" + op.func->name();
        }
        return "?";
    };
    auto slot = [&](const MOperand &op) -> std::string {
        if (op.kind != MOperand::Imm)
            return "[" + operand(op) + "]";
        return "[%rsp+" + std::to_string(op.imm) + "]";
    };
    auto widthName = [&]() -> const char * {
        switch (mi.width) {
          case 0:
          case 1: return "byte";
          case 2: return "word";
          case 4: return "dword";
          default: return "qword";
        }
    };
    switch (mi.opcode) {
      case kOpCopy:
        os << (isFPReg(mi.ops[0].reg) ? (mi.fp32 ? "movss" : "movsd")
                                      : "mov")
           << " " << reg(mi.ops[0]) << ", " << operand(mi.ops[1]);
        break;
      case kOpSpill:
        os << "mov " << slot(mi.ops[1]) << ", " << reg(mi.ops[0]);
        break;
      case kOpReload:
        os << "mov " << reg(mi.ops[0]) << ", " << slot(mi.ops[1]);
        break;
      case kOpFrameAddr:
        os << "lea " << reg(mi.ops[0]) << ", " << slot(mi.ops[1]);
        break;
      case kOpDynAlloca:
        os << "call alloca, " << reg(mi.ops[0]) << ", "
           << reg(mi.ops[1]);
        break;
      case kX86Add:
      case kX86Sub:
      case kX86IMul:
      case kX86Div:
      case kX86Rem:
      case kX86And:
      case kX86Or:
      case kX86Xor:
      case kX86Shl:
      case kX86Shr: {
        static const char *const sn[10] = {
            "add", "sub", "imul", "idiv", "irem",
            "and", "or",  "xor",  "shl",  "sar"};
        static const char *const un[10] = {
            "add", "sub", "imul", "div", "rem",
            "and", "or",  "xor",  "shl", "shr"};
        os << (mi.signExt ? sn : un)[mi.opcode - kX86Add] << " "
           << reg(mi.ops[0]) << ", " << operand(mi.ops[2]);
        break;
      }
      case kX86FAdd:
      case kX86FSub:
      case kX86FMul:
      case kX86FDiv:
      case kX86FRem: {
        static const char *const fd[5] = {"addsd", "subsd", "mulsd",
                                          "divsd", "fmodsd"};
        static const char *const fs[5] = {"addss", "subss", "mulss",
                                          "divss", "fmodss"};
        os << (mi.fp32 ? fs : fd)[mi.opcode - kX86FAdd] << " "
           << reg(mi.ops[0]) << ", " << reg(mi.ops[2]);
        break;
      }
      case kX86Cmp:
        os << "cmp " << reg(mi.ops[0]) << ", " << operand(mi.ops[1]);
        break;
      case kX86FCmp:
        os << "ucomisd " << reg(mi.ops[0]) << ", " << reg(mi.ops[1]);
        break;
      case kX86SetEq:
      case kX86SetNe:
      case kX86SetLt:
      case kX86SetGt:
      case kX86SetLe:
      case kX86SetGe: {
        static const char *const sn[6] = {"sete",  "setne", "setl",
                                          "setg",  "setle", "setge"};
        static const char *const un[6] = {"sete",  "setne", "setb",
                                          "seta",  "setbe", "setae"};
        os << (mi.signExt ? sn : un)[mi.opcode - kX86SetEq] << " "
           << reg(mi.ops[0]);
        break;
      }
      case kX86Jnz:
        os << "test " << reg(mi.ops[0]) << ", " << reg(mi.ops[0])
           << " ; jnz " << operand(mi.ops[1]);
        break;
      case kX86Jmp:
        os << "jmp " << operand(mi.ops[0]);
        break;
      case kX86Call:
        if (mi.ops[0].kind == MOperand::Func)
            os << "call " << mi.ops[0].func->name();
        else
            os << "call *" << reg(mi.ops[0]);
        for (size_t i = 1; i < mi.ops.size(); ++i)
            os << (i == 1 ? " -> " : ", ") << operand(mi.ops[i]);
        break;
      case kX86Ret:
        os << "ret";
        break;
      case kX86Unwind:
        os << "unwind";
        break;
      case kX86Load:
        if (isFPReg(mi.ops[0].reg))
            os << (mi.fp32 ? "movss " : "movsd ") << reg(mi.ops[0])
               << ", [" << reg(mi.ops[1]) << "]";
        else
            os << (mi.signExt && mi.width < 8 ? "movsx " : "mov ")
               << reg(mi.ops[0]) << ", " << widthName() << " ["
               << reg(mi.ops[1]) << "]";
        break;
      case kX86Store:
        if (isFPReg(mi.ops[0].reg))
            os << (mi.fp32 ? "movss [" : "movsd [") << reg(mi.ops[1])
               << "], " << reg(mi.ops[0]);
        else
            os << "mov " << widthName() << " [" << reg(mi.ops[1])
               << "], " << reg(mi.ops[0]);
        break;
      case kX86LoadStack:
        os << (isFPReg(mi.ops[0].reg) ? "movsd " : "mov ")
           << reg(mi.ops[0]) << ", " << slot(mi.ops[1]);
        break;
      case kX86StoreStack:
        os << (isFPReg(mi.ops[0].reg) ? "movsd " : "mov ")
           << slot(mi.ops[1]) << ", " << reg(mi.ops[0]);
        break;
      case kX86Ext:
        os << (mi.signExt ? "movsx " : "movzx ") << reg(mi.ops[0])
           << ", " << reg(mi.ops[1]);
        break;
      case kX86CvtI2F:
        os << (mi.fp32 ? "cvtsi2ss " : "cvtsi2sd ") << reg(mi.ops[0])
           << ", " << reg(mi.ops[1]);
        break;
      case kX86CvtF2I:
        os << "cvttsd2si " << reg(mi.ops[0]) << ", "
           << reg(mi.ops[1]);
        break;
      case kX86CvtF2F:
        os << (mi.fp32 ? "cvtsd2ss " : "cvtss2sd ") << reg(mi.ops[0])
           << ", " << reg(mi.ops[1]);
        break;
      case kX86CvtI2B:
        os << "test " << reg(mi.ops[1]) << " ; setne "
           << reg(mi.ops[0]);
        break;
      case kX86SpAdj:
        os << "add %rsp, " << mi.ops[0].imm;
        break;
      default:
        os << "x86.op" << mi.opcode;
        break;
    }
    return os.str();
}

} // namespace llva
