/**
 * @file
 * The x86-like CISC evaluation machine. Two-address integer
 * arithmetic over 8 registers with condition flags, variable-length
 * encoding (reg/reg forms vs imm8/imm32/imm64 forms), and a fully
 * stack-based calling convention: all arguments travel through the
 * caller's outgoing area at sp+8i.
 *
 * Everything structural — isel traversal, marshalling, handler
 * table, encode driver — comes from the common target framework;
 * this file keeps only the CISC-specific parts: the flags-based
 * comparison lowering, the operand-dependent instruction sizes, and
 * the AT&T-flavored disassembly.
 *
 * Register numbering: 0=rax 1=rcx 2=rdx 3=rbx 4=rsi 5=rdi 6=rbp
 * (7=rsp is the simulated stack pointer and never allocated);
 * FP registers 32..39 are xmm0..xmm7.
 */

#include "target/x86/x86_target.h"

#include <sstream>

#include "ir/function.h"
#include "target/common/common_exec.h"
#include "target/common/common_isel.h"
#include "target/target_util.h"

namespace llva {

namespace {

/** x86-specific opcodes: the flags-setting compares. */
enum X86Op : uint16_t {
    kX86Cmp = cmn::kX86Base + cmn::kTargetOp0,
    kX86FCmp,
};

const char *const kIntRegNames[8] = {"rax", "rcx", "rdx", "rbx",
                                     "rsi", "rdi", "rbp", "rsp"};

class X86ISel final : public cmn::CommonISel
{
  public:
    explicit X86ISel(const cmn::AbiDesc &abi)
        : CommonISel(cmn::kX86Base, abi, /*two_address=*/true,
                     /*lo_bits=*/0)
    {}

  protected:
    // Compares cannot carry an imm64 even though moves can.
    bool
    caseImmFits(int64_t v) const override
    {
        return tgt::fitsInt32(v);
    }

    /** Flags: cmp records both signed and unsigned views; setcc
     *  picks one via signExt (or the FP view when the last compare
     *  was FP). */
    void
    lowerCompare(const SetCondInst &inst) override
    {
        const Type *t = inst.lhs()->type();
        unsigned dst = vregFor(&inst);
        unsigned a = valueReg(inst.lhs());
        if (t->isFloatingPoint()) {
            unsigned b = valueReg(inst.rhs());
            emit(kX86FCmp, {R(a), R(b)});
            emit(op(cmn::kSetEq + setccIndex(inst.opcode())),
                 {R(dst)}, 1);
            return;
        }
        MOperand b = intOperand(inst.rhs());
        auto *cmp = emit(kX86Cmp, {R(a), b});
        cmp->width = widthOf(t);
        auto *set = emit(
            op(cmn::kSetEq + setccIndex(inst.opcode())), {R(dst)}, 1);
        set->signExt = t->isSignedInteger();
    }

    void
    emitCaseSetEq(unsigned dst, unsigned v,
                  const MOperand &b) override
    {
        // The interpreter matches on full canonical 64-bit values,
        // so compare at width 8 unsigned.
        emit(kX86Cmp, {R(v), b});
        emit(op(cmn::kSetEq), {R(dst)}, 1);
    }

  private:
    static unsigned
    setccIndex(Opcode op)
    {
        switch (op) {
          case Opcode::SetEQ: return 0;
          case Opcode::SetNE: return 1;
          case Opcode::SetLT: return 2;
          case Opcode::SetGT: return 3;
          case Opcode::SetLE: return 4;
          case Opcode::SetGE: return 5;
          default: panic("not a comparison opcode");
        }
    }
};

} // namespace

X86Target::X86Target()
    : CommonTarget(cmn::kX86Base,
                   cmn::AbiDesc{/*numRegArgs=*/0, /*intArgBase=*/0,
                                /*fpArgBase=*/32, /*intRetReg=*/0,
                                /*fpRetReg=*/32},
                   /*fixed_instr_bytes=*/0)
{
    // Preference order: caller-saved first so leaf code stays cheap;
    // the linear-scan allocator reserves the last two per class as
    // spill scratch (rdi/rbp and xmm6/xmm7).
    allocInt_ = {0, 1, 2, 3, 4, 5, 6};
    calleeInt_ = {3, 4, 5, 6}; // rbx rsi rdi rbp
    allocFP_ = {32, 33, 34, 35, 36, 37, 38, 39};
    calleeFP_ = {}; // xmm regs are caller-saved on x86

    installCommonCore(cmn::hSetCCFlags);
    setInstr(cmn::relOp(kX86Cmp), "cmp", cmn::hCmpFlags);
    setInstr(cmn::relOp(kX86FCmp), "ucomisd", cmn::hFCmpFlags, 4);

    // Fixed encoded sizes; rows left at 0 are operand-dependent and
    // resolved by variableSize().
    for (unsigned i = cmn::kFAdd; i <= cmn::kFDiv; ++i)
        setEncBytes(i, 4);
    setEncBytes(cmn::kFRem, 5); // runtime fmod thunk
    setEncBytes(cmn::kDiv, 3);  // cqo implied
    setEncBytes(cmn::kRem, 3);
    for (unsigned i = cmn::kSetEq; i <= cmn::kSetGe; ++i)
        setEncBytes(i, 4);      // setcc + movzx fold
    setEncBytes(cmn::kBrnz, 9); // test r,r (3) + jnz rel32 (6)
    setEncBytes(cmn::kBr, 5);   // jmp rel32
    setEncBytes(cmn::kRet, 1);
    setEncBytes(cmn::kUnwind, 2); // int imm8 style trap
    setEncBytes(cmn::kExt, 4);
    setEncBytes(cmn::kCvtI2F, 5);
    setEncBytes(cmn::kCvtF2I, 5);
    setEncBytes(cmn::kCvtF2F, 4);
    setEncBytes(cmn::kCvtI2B, 6); // test + setne
}

const char *
X86Target::regName(unsigned reg) const
{
    static const char *const xmm[8] = {"xmm0", "xmm1", "xmm2",
                                       "xmm3", "xmm4", "xmm5",
                                       "xmm6", "xmm7"};
    if (reg < 8)
        return kIntRegNames[reg];
    if (reg >= 32 && reg < 40)
        return xmm[reg - 32];
    return "?";
}

void
X86Target::select(const Function &f, MachineFunction &mf)
{
    X86ISel isel(abi());
    isel.runOn(f, mf);
}

size_t
X86Target::variableSize(const MachineInstr &mi) const
{
    using namespace tgt;
    auto immSize = [](int64_t v) -> size_t {
        return fitsInt8(v) ? 1 : 4;
    };
    switch (mi.opcode) {
      case kOpCopy:
        switch (mi.ops[1].kind) {
          case MOperand::Reg:
            return isFPReg(mi.ops[0].reg) ? 4 : 3;
          case MOperand::Imm:
            return fitsInt32(mi.ops[1].imm) ? 5 : 10; // mov / movabs
          case MOperand::FPImm:
            return 8; // movsd xmm, [rip+disp32]
          default:
            return 10; // movabs $address
        }
      case kOpSpill:
      case kOpReload:
      case kOpFrameAddr:
        // mod/rm with rsp base: disp8 or disp32 form.
        return mi.ops[1].kind == MOperand::Imm
                   ? 4 + immSize(mi.ops[1].imm)
                   : 8;
      case kOpDynAlloca:
        return 5; // call [runtime]
    }
    switch (cmn::relOp(mi.opcode)) {
      case cmn::kAdd:
      case cmn::kSub:
      case cmn::kAnd:
      case cmn::kOr:
      case cmn::kXor:
        return mi.ops[2].kind == MOperand::Imm
                   ? 3 + immSize(mi.ops[2].imm)
                   : 3;
      case cmn::kMul:
        return mi.ops[2].kind == MOperand::Imm
                   ? 3 + immSize(mi.ops[2].imm)
                   : 4;
      case cmn::kShl:
      case cmn::kShr:
        return mi.ops[2].kind == MOperand::Imm ? 4 : 3;
      case cmn::relOp(kX86Cmp):
        return mi.ops[1].kind == MOperand::Imm
                   ? 3 + immSize(mi.ops[1].imm)
                   : 3;
      case cmn::kCall:
        return mi.ops[0].kind == MOperand::Func ? 5 : 3;
      case cmn::kLoad:
      case cmn::kStore:
        return isFPReg(mi.ops[0].reg) ? 5 : (mi.width == 8 ? 4 : 3);
      case cmn::kLoadStack:
      case cmn::kStoreStack:
        return mi.ops[1].kind == MOperand::Imm
                   ? 4 + immSize(mi.ops[1].imm)
                   : 8;
      case cmn::kSpAdj:
        return 3 + immSize(mi.ops[0].imm);
      default:
        panic("x86: cannot encode opcode");
    }
}

std::string
X86Target::instrToString(const MachineInstr &mi) const
{
    using tgt::isFPReg;
    std::ostringstream os;
    auto reg = [&](const MOperand &op) -> std::string {
        if (isVirtualReg(op.reg))
            return "%v" + std::to_string(op.reg - kFirstVirtualReg);
        return std::string("%") + regName(op.reg);
    };
    auto operand = [&](const MOperand &op) -> std::string {
        switch (op.kind) {
          case MOperand::Reg: return reg(op);
          case MOperand::Imm: return "$" + std::to_string(op.imm);
          case MOperand::FPImm:
            return "$" + std::to_string(op.fpimm);
          case MOperand::Frame:
            return "frame[" + std::to_string(op.frameIndex) + "]";
          case MOperand::Block: return "." + op.block->name();
          case MOperand::Global: return "$" + op.global->name();
          case MOperand::Func: return "$" + op.func->name();
        }
        return "?";
    };
    auto slot = [&](const MOperand &op) -> std::string {
        if (op.kind != MOperand::Imm)
            return "[" + operand(op) + "]";
        return "[%rsp+" + std::to_string(op.imm) + "]";
    };
    auto widthName = [&]() -> const char * {
        switch (mi.width) {
          case 0:
          case 1: return "byte";
          case 2: return "word";
          case 4: return "dword";
          default: return "qword";
        }
    };
    // Generic pseudos keep their absolute opcode; target
    // instructions print by their relative (structural) opcode.
    unsigned key =
        mi.opcode >= kOpPhi ? mi.opcode : cmn::relOp(mi.opcode);
    switch (key) {
      case kOpCopy:
        os << (isFPReg(mi.ops[0].reg) ? (mi.fp32 ? "movss" : "movsd")
                                      : "mov")
           << " " << reg(mi.ops[0]) << ", " << operand(mi.ops[1]);
        break;
      case kOpSpill:
        os << "mov " << slot(mi.ops[1]) << ", " << reg(mi.ops[0]);
        break;
      case kOpReload:
        os << "mov " << reg(mi.ops[0]) << ", " << slot(mi.ops[1]);
        break;
      case kOpFrameAddr:
        os << "lea " << reg(mi.ops[0]) << ", " << slot(mi.ops[1]);
        break;
      case kOpDynAlloca:
        os << "call alloca, " << reg(mi.ops[0]) << ", "
           << reg(mi.ops[1]);
        break;
      case cmn::kAdd:
      case cmn::kSub:
      case cmn::kMul:
      case cmn::kDiv:
      case cmn::kRem:
      case cmn::kAnd:
      case cmn::kOr:
      case cmn::kXor:
      case cmn::kShl:
      case cmn::kShr: {
        static const char *const sn[10] = {
            "add", "sub", "imul", "idiv", "irem",
            "and", "or",  "xor",  "shl",  "sar"};
        static const char *const un[10] = {
            "add", "sub", "imul", "div", "rem",
            "and", "or",  "xor",  "shl", "shr"};
        os << (mi.signExt ? sn : un)[key - cmn::kAdd] << " "
           << reg(mi.ops[0]) << ", " << operand(mi.ops[2]);
        break;
      }
      case cmn::kFAdd:
      case cmn::kFSub:
      case cmn::kFMul:
      case cmn::kFDiv:
      case cmn::kFRem: {
        static const char *const fd[5] = {"addsd", "subsd", "mulsd",
                                          "divsd", "fmodsd"};
        static const char *const fs[5] = {"addss", "subss", "mulss",
                                          "divss", "fmodss"};
        os << (mi.fp32 ? fs : fd)[key - cmn::kFAdd] << " "
           << reg(mi.ops[0]) << ", " << reg(mi.ops[2]);
        break;
      }
      case cmn::relOp(kX86Cmp):
        os << "cmp " << reg(mi.ops[0]) << ", " << operand(mi.ops[1]);
        break;
      case cmn::relOp(kX86FCmp):
        os << "ucomisd " << reg(mi.ops[0]) << ", " << reg(mi.ops[1]);
        break;
      case cmn::kSetEq:
      case cmn::kSetNe:
      case cmn::kSetLt:
      case cmn::kSetGt:
      case cmn::kSetLe:
      case cmn::kSetGe: {
        static const char *const sn[6] = {"sete",  "setne", "setl",
                                          "setg",  "setle", "setge"};
        static const char *const un[6] = {"sete",  "setne", "setb",
                                          "seta",  "setbe", "setae"};
        os << (mi.signExt ? sn : un)[key - cmn::kSetEq] << " "
           << reg(mi.ops[0]);
        break;
      }
      case cmn::kBrnz:
        os << "test " << reg(mi.ops[0]) << ", " << reg(mi.ops[0])
           << " ; jnz " << operand(mi.ops[1]);
        break;
      case cmn::kBr:
        os << "jmp " << operand(mi.ops[0]);
        break;
      case cmn::kCall:
        if (mi.ops[0].kind == MOperand::Func)
            os << "call " << mi.ops[0].func->name();
        else
            os << "call *" << reg(mi.ops[0]);
        for (size_t i = 1; i < mi.ops.size(); ++i)
            os << (i == 1 ? " -> " : ", ") << operand(mi.ops[i]);
        break;
      case cmn::kRet:
        os << "ret";
        break;
      case cmn::kUnwind:
        os << "unwind";
        break;
      case cmn::kLoad:
        if (isFPReg(mi.ops[0].reg))
            os << (mi.fp32 ? "movss " : "movsd ") << reg(mi.ops[0])
               << ", [" << reg(mi.ops[1]) << "]";
        else
            os << (mi.signExt && mi.width < 8 ? "movsx " : "mov ")
               << reg(mi.ops[0]) << ", " << widthName() << " ["
               << reg(mi.ops[1]) << "]";
        break;
      case cmn::kStore:
        if (isFPReg(mi.ops[0].reg))
            os << (mi.fp32 ? "movss [" : "movsd [") << reg(mi.ops[1])
               << "], " << reg(mi.ops[0]);
        else
            os << "mov " << widthName() << " [" << reg(mi.ops[1])
               << "], " << reg(mi.ops[0]);
        break;
      case cmn::kLoadStack:
        os << (isFPReg(mi.ops[0].reg) ? "movsd " : "mov ")
           << reg(mi.ops[0]) << ", " << slot(mi.ops[1]);
        break;
      case cmn::kStoreStack:
        os << (isFPReg(mi.ops[0].reg) ? "movsd " : "mov ")
           << slot(mi.ops[1]) << ", " << reg(mi.ops[0]);
        break;
      case cmn::kExt:
        os << (mi.signExt ? "movsx " : "movzx ") << reg(mi.ops[0])
           << ", " << reg(mi.ops[1]);
        break;
      case cmn::kCvtI2F:
        os << (mi.fp32 ? "cvtsi2ss " : "cvtsi2sd ") << reg(mi.ops[0])
           << ", " << reg(mi.ops[1]);
        break;
      case cmn::kCvtF2I:
        os << "cvttsd2si " << reg(mi.ops[0]) << ", "
           << reg(mi.ops[1]);
        break;
      case cmn::kCvtF2F:
        os << (mi.fp32 ? "cvtsd2ss " : "cvtss2sd ") << reg(mi.ops[0])
           << ", " << reg(mi.ops[1]);
        break;
      case cmn::kCvtI2B:
        os << "test " << reg(mi.ops[1]) << " ; setne "
           << reg(mi.ops[0]);
        break;
      case cmn::kSpAdj:
        os << "add %rsp, " << mi.ops[0].imm;
        break;
      default:
        os << "x86.op" << mi.opcode;
        break;
    }
    return os.str();
}

} // namespace llva
