/**
 * @file
 * The x86-like I-ISA (paper Section 5.2's CISC evaluation machine):
 * 8 integer registers, two-address arithmetic, condition flags,
 * variable-length encoding (imm8/imm32 forms), and a fully
 * stack-based calling convention (AbiDesc with numRegArgs == 0, so
 * the common marshalling degenerates to the stack scheme).
 */

#ifndef LLVA_TARGET_X86_X86_TARGET_H
#define LLVA_TARGET_X86_X86_TARGET_H

#include "target/common/common_target.h"

namespace llva {

class X86Target final : public cmn::CommonTarget
{
  public:
    X86Target();

    const char *name() const override { return "x86"; }
    const char *regName(unsigned reg) const override;

    void select(const Function &f, MachineFunction &mf) override;
    std::string instrToString(const MachineInstr &mi) const override;

  protected:
    size_t variableSize(const MachineInstr &mi) const override;
};

} // namespace llva

#endif // LLVA_TARGET_X86_X86_TARGET_H
