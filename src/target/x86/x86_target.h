/**
 * @file
 * The x86-like I-ISA (paper Section 5.2's CISC evaluation machine):
 * 8 integer registers, two-address arithmetic, condition flags,
 * variable-length encoding (imm8/imm32 forms), and a fully
 * stack-based calling convention (so the default marshalling hooks
 * apply unchanged).
 */

#ifndef LLVA_TARGET_X86_X86_TARGET_H
#define LLVA_TARGET_X86_X86_TARGET_H

#include "codegen/target.h"

namespace llva {

class X86Target final : public Target
{
  public:
    X86Target();

    const char *name() const override { return "x86"; }
    const std::vector<unsigned> &allocatable(RegClass rc)
        const override;
    const std::vector<unsigned> &calleeSaved(RegClass rc)
        const override;
    unsigned returnReg(RegClass rc) const override;
    const char *regName(unsigned reg) const override;

    void select(const Function &f, MachineFunction &mf) override;
    void insertPrologueEpilogue(
        MachineFunction &mf,
        const std::vector<std::pair<unsigned, int64_t>> &saved)
        override;

    std::vector<uint8_t> encode(const MachineInstr &mi)
        const override;
    void execute(const MachineInstr &mi, SimState &state)
        const override;
    ExecFn handlerFor(const MachineInstr &mi) const override;
    std::string instrToString(const MachineInstr &mi) const override;

  private:
    std::vector<unsigned> allocInt_, allocFP_;
    std::vector<unsigned> calleeInt_, calleeFP_;
};

} // namespace llva

#endif // LLVA_TARGET_X86_X86_TARGET_H
