#include "trace/profile.h"

#include "support/byte_io.h"

namespace llva {

namespace {

constexpr char kMagic[4] = {'L', 'P', 'R', 'F'};
constexpr uint8_t kProfileVersion = 1;
constexpr size_t kCrcSize = 4;

} // namespace

std::vector<uint8_t>
writeEdgeProfile(const EdgeProfile &profile)
{
    ByteWriter w;
    for (char c : kMagic)
        w.writeByte(static_cast<uint8_t>(c));
    w.writeByte(kProfileVersion);
    w.writeVaruint(profile.blocks.size());
    for (const auto &[id, count] : profile.blocks) {
        w.writeU64(id.fn);
        w.writeU64(id.block);
        w.writeVaruint(count);
    }
    w.writeVaruint(profile.edges.size());
    for (const auto &[edge, count] : profile.edges) {
        w.writeU64(edge.first.fn);
        w.writeU64(edge.first.block);
        w.writeU64(edge.second.fn);
        w.writeU64(edge.second.block);
        w.writeVaruint(count);
    }
    w.writeU32(crc32(w.bytes()));
    return w.takeBytes();
}

Expected<EdgeProfile>
readEdgeProfile(const std::vector<uint8_t> &bytes)
{
    if (bytes.size() < sizeof(kMagic) + 1 + kCrcSize)
        return Error("profile too short");
    size_t body = bytes.size() - kCrcSize;
    uint32_t stored = 0;
    for (size_t i = 0; i < kCrcSize; ++i)
        stored |= static_cast<uint32_t>(bytes[body + i]) << (8 * i);
    if (crc32(bytes.data(), body) != stored)
        return Error("profile checksum mismatch");

    try {
        ByteReader r(bytes.data(), body);
        for (char c : kMagic)
            if (r.readByte() != static_cast<uint8_t>(c))
                return Error("bad profile magic");
        if (r.readByte() != kProfileVersion)
            return Error("unsupported profile version");

        EdgeProfile p;
        uint64_t nblocks = r.readVaruint();
        // Each block row costs at least 17 stream bytes; a larger
        // claim is a corrupt length field.
        if (nblocks > r.remaining())
            return Error("profile block count exceeds data");
        for (uint64_t i = 0; i < nblocks; ++i) {
            BlockId id{r.readU64(), r.readU64()};
            uint64_t count = r.readVaruint();
            p.blocks[id] += count;
            p.fnSamples[id.fn] += count;
            p.samples += count;
        }
        uint64_t nedges = r.readVaruint();
        if (nedges > r.remaining())
            return Error("profile edge count exceeds data");
        for (uint64_t i = 0; i < nedges; ++i) {
            BlockId from{r.readU64(), r.readU64()};
            BlockId to{r.readU64(), r.readU64()};
            p.edges[{from, to}] += r.readVaruint();
        }
        if (!r.atEnd())
            return Error("trailing bytes after profile");
        return p;
    } catch (const FatalError &e) {
        return Error(e.what());
    }
}

uint64_t
profileHash(const EdgeProfile &profile)
{
    std::vector<uint8_t> bytes = writeEdgeProfile(profile);
    return fnv1a(bytes);
}

} // namespace llva
