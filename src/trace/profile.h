/**
 * @file
 * Runtime edge/block profiles keyed by *stable block IDs* (paper
 * Section 4.2: the profile information gathered transparently at
 * runtime that seeds hot-trace formation and is persisted by LLEE
 * for idle-time profile-guided optimization).
 *
 * A BlockId is the pair (fnv1a of the function name, fnv1a of the
 * block name). Unlike the BasicBlock pointers an earlier revision
 * keyed on, a BlockId survives everything a pointer does not:
 * CFG-mutating passes that delete and recreate blocks, sandboxed
 * tier retranslation restoring a FunctionSnapshot, and — because it
 * is content-derived — process restarts, which is what lets LLEE
 * persist a profile next to the virtual object code and resume at
 * the trace tier on a warm start.
 */

#ifndef LLVA_TRACE_PROFILE_H
#define LLVA_TRACE_PROFILE_H

#include <iterator>
#include <map>
#include <vector>

#include "ir/basic_block.h"
#include "ir/function.h"
#include "support/expected.h"
#include "support/hashing.h"

namespace llva {

/** Stable identity of a basic block within a program. */
struct BlockId
{
    uint64_t fn = 0;    ///< fnv1a of the owning function's name
    uint64_t block = 0; ///< fnv1a of the block's name

    bool
    operator<(const BlockId &o) const
    {
        return fn != o.fn ? fn < o.fn : block < o.block;
    }
    bool
    operator==(const BlockId &o) const
    {
        return fn == o.fn && block == o.block;
    }
    bool operator!=(const BlockId &o) const { return !(*this == o); }
};

/** Stable hash of a function name (the BlockId::fn component). */
inline uint64_t
functionId(const std::string &name)
{
    return fnv1a(name);
}

/**
 * The stable ID of \p bb. Checked: a detached block (no parent
 * function) has no stable identity — asking for one is the dangling
 * situation the pointer-keyed profile used to silently corrupt on,
 * and it panics here instead.
 */
inline BlockId
blockId(const BasicBlock *bb)
{
    LLVA_ASSERT(bb && bb->parent(),
                "blockId of a detached basic block");
    return {functionId(bb->parent()->name()), fnv1a(bb->name())};
}

/**
 * CFG edge/block execution counts gathered during execution — by the
 * reference interpreter and by the machine simulator running
 * translated code. Keys are stable BlockIds, so one profile can be
 * accumulated across tiers, merged across runs, and persisted.
 */
struct EdgeProfile
{
    std::map<std::pair<BlockId, BlockId>, uint64_t> edges;
    std::map<BlockId, uint64_t> blocks;
    /** Per-function block-execution totals (hotness watermark). */
    std::map<uint64_t, uint64_t> fnSamples;
    /** Total block executions recorded into this profile. */
    uint64_t samples = 0;

    void
    note(const BasicBlock *from, const BasicBlock *to)
    {
        noteId(from ? blockId(from) : BlockId{}, blockId(to));
    }

    /**
     * \p from == BlockId{} records a block entry with no edge.
     * \p weight > 1 is how sampled profiling keeps counts in
     * execution units: recording every Nth event with weight N
     * estimates the same totals at 1/N the map traffic.
     */
    void
    noteId(const BlockId &from, const BlockId &to,
           uint64_t weight = 1)
    {
        if (from.fn || from.block)
            edges[{from, to}] += weight;
        blocks[to] += weight;
        fnSamples[to.fn] += weight;
        samples += weight;
    }

    bool empty() const { return blocks.empty(); }

    /** Executions of \p bb (0 if never profiled). Checked resolve
     *  through the stable ID. */
    uint64_t
    blockCount(const BasicBlock *bb) const
    {
        auto it = blocks.find(blockId(bb));
        return it == blocks.end() ? 0 : it->second;
    }

    /** Executions of the edge \p from -> \p to. */
    uint64_t
    edgeCount(const BasicBlock *from, const BasicBlock *to) const
    {
        auto it = edges.find({blockId(from), blockId(to)});
        return it == edges.end() ? 0 : it->second;
    }

    /** Block executions recorded inside the named function. */
    uint64_t
    functionSamples(uint64_t fnHash) const
    {
        auto it = fnSamples.find(fnHash);
        return it == fnSamples.end() ? 0 : it->second;
    }

    /**
     * Exponentially decay every counter by \p shift halvings and
     * drop entries that reach zero. Long-lived engines call this
     * periodically so a profile left always-on tracks the *current*
     * hot set instead of accumulating stale history forever.
     */
    void
    decay(unsigned shift = 1)
    {
        auto scale = [shift](auto &m) {
            for (auto it = m.begin(); it != m.end();) {
                it->second >>= shift;
                it = it->second ? std::next(it) : m.erase(it);
            }
        };
        scale(edges);
        scale(blocks);
        scale(fnSamples);
        samples = 0;
        for (const auto &[id, c] : blocks)
            samples += c;
    }

    /** Accumulate \p other into this profile. */
    void
    merge(const EdgeProfile &other)
    {
        for (const auto &[id, c] : other.blocks)
            blocks[id] += c;
        for (const auto &[e, c] : other.edges)
            edges[e] += c;
        for (const auto &[fn, c] : other.fnSamples)
            fnSamples[fn] += c;
        samples += other.samples;
    }

    // --- Deprecated pointer-keyed API -------------------------------------
    //
    // The original profile was keyed directly on BasicBlock*, which
    // dangled the moment a sandboxed pass restored a FunctionSnapshot
    // or a pass deleted a block. These shims keep the old lookup
    // shape compiling but resolve through stable IDs and *check*
    // their argument (a detached block panics instead of reading
    // freed memory).

    [[deprecated("profiles are keyed by stable BlockId; use "
                 "blockCount()")]]
    uint64_t
    at(const BasicBlock *bb) const
    {
        return blockCount(bb);
    }

    [[deprecated("profiles are keyed by stable BlockId; use "
                 "edgeCount()")]]
    uint64_t
    at(const BasicBlock *from, const BasicBlock *to) const
    {
        return edgeCount(from, to);
    }
};

/**
 * Serialize a profile for LLEE persistence: versioned binary rows
 * with a CRC-32 trailer (the profile read back from storage is
 * untrusted input, exactly like a cached translation).
 */
std::vector<uint8_t> writeEdgeProfile(const EdgeProfile &profile);

/** Parse persisted profile bytes; any damage is a recoverable
 *  Error, never a crash. */
Expected<EdgeProfile> readEdgeProfile(const std::vector<uint8_t> &bytes);

/** Content hash of a profile (stamped into trace-tier envelopes so a
 *  warm restart can tell which profile shaped a cached body). */
uint64_t profileHash(const EdgeProfile &profile);

} // namespace llva

#endif // LLVA_TRACE_PROFILE_H
