#include "trace/trace.h"

#include <algorithm>
#include <set>

#include "ir/instructions.h"

namespace llva {

std::vector<Trace>
formTraces(Function &f, const EdgeProfile &profile,
           const TraceOptions &opts)
{
    // Resolve the stable profile rows against the function's current
    // blocks. Rows whose block was deleted by a pass since the
    // profile was gathered simply fail to resolve and are ignored;
    // blocks created since have no row and count as never executed.
    const uint64_t fnHash = functionId(f.name());
    std::map<uint64_t, BasicBlock *> byName;
    for (const auto &bb : f)
        byName[fnv1a(bb->name())] = bb.get();

    auto blockCount = [&](const BasicBlock *bb) -> uint64_t {
        auto it = profile.blocks.find({fnHash, fnv1a(bb->name())});
        return it == profile.blocks.end() ? 0 : it->second;
    };
    auto edgeCount = [&](const BasicBlock *from,
                         const BasicBlock *to) -> uint64_t {
        auto it = profile.edges.find(
            {{fnHash, fnv1a(from->name())},
             {fnHash, fnv1a(to->name())}});
        return it == profile.edges.end() ? 0 : it->second;
    };

    // Candidate seeds: hot blocks of this function, hottest first;
    // ties broken by layout order so loop headers win over their
    // equally-hot latches.
    std::vector<std::pair<uint64_t, BasicBlock *>> seeds;
    for (const auto &bb : f) {
        uint64_t count = blockCount(bb.get());
        if (count >= opts.hotThreshold)
            seeds.emplace_back(count, bb.get());
    }
    std::stable_sort(seeds.begin(), seeds.end(),
                     [](const auto &a, const auto &b) {
                         return a.first > b.first;
                     });

    std::set<const BasicBlock *> taken;
    std::vector<Trace> traces;

    for (auto &[count, seed] : seeds) {
        if (taken.count(seed))
            continue;
        Trace trace;
        trace.headCount = count;
        BasicBlock *cur = seed;
        while (trace.blocks.size() < opts.maxLength) {
            trace.blocks.push_back(cur);
            taken.insert(cur);

            // Follow the dominant successor edge.
            BasicBlock *best = nullptr;
            uint64_t best_count = 0;
            uint64_t total = 0;
            for (BasicBlock *succ : cur->successors()) {
                uint64_t c = edgeCount(cur, succ);
                total += c;
                if (c > best_count) {
                    best_count = c;
                    best = succ;
                }
            }
            if (!best || taken.count(best) || total == 0)
                break;
            if (static_cast<double>(best_count) <
                opts.minBranchBias * static_cast<double>(total))
                break;
            cur = best;
        }
        if (trace.blocks.size() >= 2) {
            traces.push_back(std::move(trace));
        } else {
            // Rejected trace: release every block it claimed so a
            // later (colder) seed can still absorb them. Growth only
            // stops after at least one block is appended, so a
            // rejected trace holds exactly the seed — but release by
            // iteration, not by assumption, so a future change to
            // the growth loop cannot silently strand blocks in
            // `taken` forever.
            LLVA_ASSERT(trace.blocks.size() <= 1,
                        "rejected trace claimed %zu blocks",
                        trace.blocks.size());
            for (BasicBlock *bb : trace.blocks)
                taken.erase(bb);
        }
    }
    return traces;
}

void
TraceCache::insert(Trace trace)
{
    // Replace in place on a duplicate head: the previous behaviour
    // overwrote the index entry but left the stale trace in order_,
    // so coverage() double-counted its blocks and the cache grew
    // without bound under repeated reoptimization.
    auto it = traces_.find(trace.head());
    if (it != traces_.end()) {
        order_[it->second] = std::move(trace);
        return;
    }
    traces_[trace.head()] = order_.size();
    order_.push_back(std::move(trace));
}

const Trace *
TraceCache::lookup(const BasicBlock *head) const
{
    auto it = traces_.find(head);
    return it == traces_.end() ? nullptr : &order_[it->second];
}

double
TraceCache::coverage(const EdgeProfile &profile) const
{
    std::set<BlockId> inTrace;
    std::set<uint64_t> fns;
    for (const Trace &t : order_)
        for (const BasicBlock *bb : t.blocks) {
            BlockId id = blockId(bb);
            inTrace.insert(id);
            fns.insert(id.fn);
        }

    uint64_t total = 0, covered = 0;
    for (const auto &[id, count] : profile.blocks) {
        if (!fns.count(id.fn))
            continue;
        total += count;
        if (inTrace.count(id))
            covered += count;
    }
    return total ? static_cast<double>(covered) /
                       static_cast<double>(total)
                 : 0.0;
}

void
applyTraceLayout(Function &f, const std::vector<Trace> &traces)
{
    // Pettis–Hansen-style chain merging: each consecutive pair of
    // trace blocks is a hot edge we want as a fallthrough. Chains
    // start as singletons (in original layout order, preserving
    // existing fallthroughs as much as possible) and merge when a
    // hot edge connects one chain's tail to another's head.
    std::map<BasicBlock *, size_t> chainOf;
    std::vector<std::vector<BasicBlock *>> chains;
    for (const auto &bb : f) {
        chainOf[bb.get()] = chains.size();
        chains.push_back({bb.get()});
    }

    auto tryMerge = [&](BasicBlock *a, BasicBlock *b) {
        if (a->parent() != &f || b->parent() != &f)
            return;
        size_t ca = chainOf[a], cb = chainOf[b];
        if (ca == cb)
            return;
        if (chains[ca].back() != a || chains[cb].front() != b)
            return;
        for (BasicBlock *bb : chains[cb]) {
            chains[ca].push_back(bb);
            chainOf[bb] = ca;
        }
        chains[cb].clear();
    };

    for (const Trace &t : traces)
        for (size_t i = 0; i + 1 < t.blocks.size(); ++i)
            tryMerge(t.blocks[i], t.blocks[i + 1]);

    // Emit: the entry block's chain first, then the remaining
    // chains in original order.
    std::vector<BasicBlock *> order;
    size_t entry_chain = chainOf[f.entryBlock()];
    for (BasicBlock *bb : chains[entry_chain])
        order.push_back(bb);
    for (size_t c = 0; c < chains.size(); ++c)
        if (c != entry_chain)
            for (BasicBlock *bb : chains[c])
                order.push_back(bb);

    // The entry block must stay first; if its chain does not start
    // with it (merged as a tail), fall back to original order.
    if (order.empty() || order.front() != f.entryBlock())
        return;

    for (BasicBlock *bb : order)
        f.moveBlockBefore(bb, nullptr);
}

} // namespace llva
