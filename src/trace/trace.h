/**
 * @file
 * The software trace cache and hot-trace formation (paper Section
 * 4.2): runtime path profiles gathered over the explicit CFG are
 * turned into traces — sequences of basic blocks that execution
 * usually follows — which seed trace-driven reoptimization. The
 * concrete optimization implemented here is trace-driven code
 * layout: blocks on a trace are emitted contiguously so the
 * translator's fallthrough elision removes the branches between
 * them (fewer executed instructions, smaller code).
 *
 * Profiles are keyed by stable BlockIds (trace/profile.h); trace
 * formation resolves them against the function's *current* blocks by
 * name, so a profile gathered before CFG-mutating passes (or in a
 * previous process) still seeds traces on the optimized body.
 */

#ifndef LLVA_TRACE_TRACE_H
#define LLVA_TRACE_TRACE_H

#include <map>
#include <vector>

#include "trace/profile.h"

namespace llva {

/** A hot path: blocks of one function, in execution order. */
struct Trace
{
    std::vector<BasicBlock *> blocks;
    uint64_t headCount = 0; ///< executions of the head block

    BasicBlock *head() const { return blocks.front(); }
    size_t length() const { return blocks.size(); }
};

/** Knobs for trace formation. */
struct TraceOptions
{
    /** A block is a trace seed if executed at least this often. */
    uint64_t hotThreshold = 50;
    /** Stop growing when the best successor edge carries less than
     *  this fraction of the current block's executions. */
    double minBranchBias = 0.6;
    size_t maxLength = 16;
};

/**
 * Form traces for \p f from an edge profile, most-executed seeds
 * first. Each block joins at most one trace. Profile rows are
 * resolved against \p f's blocks through their stable IDs; rows for
 * blocks that no longer exist (deleted by a pass since the profile
 * was gathered) are ignored.
 */
std::vector<Trace> formTraces(Function &f, const EdgeProfile &profile,
                              const TraceOptions &opts = {});

/**
 * The software trace cache: traces indexed by head block, with hit
 * accounting. (The paper's cache stores native code for traces; here
 * the payload is the trace itself, consumed by the re-layout step.)
 * Re-inserting a trace with the same head replaces the cached trace
 * in place — the cache never holds two traces for one head.
 */
class TraceCache
{
  public:
    void insert(Trace trace);

    const Trace *lookup(const BasicBlock *head) const;

    size_t size() const { return traces_.size(); }

    const std::vector<Trace> &traces() const { return order_; }

    /**
     * Fraction of profiled block executions *of the functions
     * represented in this cache* that occur inside some cached trace
     * — the coverage metric for ablation A3 and the trace.coverage
     * statistic. Rows for other functions are excluded so one
     * function's cache is not judged against the whole program.
     */
    double coverage(const EdgeProfile &profile) const;

  private:
    std::map<const BasicBlock *, size_t> traces_;
    std::vector<Trace> order_;
};

/**
 * Reorder \p f's blocks so each trace is contiguous (trace-driven
 * code layout). Cross-procedure traces are handled per function.
 */
void applyTraceLayout(Function &f, const std::vector<Trace> &traces);

} // namespace llva

#endif // LLVA_TRACE_TRACE_H
