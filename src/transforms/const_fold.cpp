#include "transforms/const_fold.h"

#include <cmath>

namespace llva {

namespace {

/** Truncate/extend \p bits to the width and signedness of \p type. */
uint64_t
canonicalize(Type *type, uint64_t bits)
{
    unsigned width = type->integerBitWidth();
    if (width == 0 || width >= 64)
        return bits;
    uint64_t mask = (1ull << width) - 1;
    bits &= mask;
    if (type->isSignedInteger() && ((bits >> (width - 1)) & 1))
        bits |= ~mask;
    return bits;
}

} // namespace

Constant *
foldBinary(Module &m, Opcode op, Constant *lhs, Constant *rhs)
{
    Type *t = lhs->type();

    // Comparisons on pointers: only null-vs-null is constant here.
    if (t->isPointer()) {
        bool ln = isa<ConstantNull>(lhs), rn = isa<ConstantNull>(rhs);
        if (!(ln && rn))
            return nullptr;
        switch (op) {
          case Opcode::SetEQ:
          case Opcode::SetLE:
          case Opcode::SetGE:
            return m.constantBool(true);
          case Opcode::SetNE:
          case Opcode::SetLT:
          case Opcode::SetGT:
            return m.constantBool(false);
          default:
            return nullptr;
        }
    }

    if (t->isFloatingPoint()) {
        auto *lf = dyn_cast<ConstantFP>(lhs);
        auto *rf = dyn_cast<ConstantFP>(rhs);
        if (!lf || !rf)
            return nullptr;
        double a = lf->value(), b = rf->value();
        switch (op) {
          case Opcode::Add: return m.constantFP(t, a + b);
          case Opcode::Sub: return m.constantFP(t, a - b);
          case Opcode::Mul: return m.constantFP(t, a * b);
          case Opcode::Div:
            return b == 0.0 ? nullptr : m.constantFP(t, a / b);
          case Opcode::Rem:
            return b == 0.0 ? nullptr
                            : m.constantFP(t, std::fmod(a, b));
          case Opcode::SetEQ: return m.constantBool(a == b);
          case Opcode::SetNE: return m.constantBool(a != b);
          case Opcode::SetLT: return m.constantBool(a < b);
          case Opcode::SetGT: return m.constantBool(a > b);
          case Opcode::SetLE: return m.constantBool(a <= b);
          case Opcode::SetGE: return m.constantBool(a >= b);
          default: return nullptr;
        }
    }

    auto *li = dyn_cast<ConstantInt>(lhs);
    auto *ri = dyn_cast<ConstantInt>(rhs);
    if (!li || !ri)
        return nullptr;

    bool is_signed = t->isSignedInteger();
    int64_t sa = li->sext(), sb = ri->sext();
    uint64_t ua = li->zext(), ub = ri->zext();
    // For sub-64-bit unsigned types zext() may carry sign-extension
    // bits from canonicalization; mask to the width for unsigned math.
    unsigned width = t->integerBitWidth();
    if (width && width < 64) {
        uint64_t mask = (1ull << width) - 1;
        ua &= mask;
        ub &= mask;
    }

    auto wrap = [&](uint64_t v) {
        return m.constantInt(t, canonicalize(t, v));
    };

    switch (op) {
      case Opcode::Add:
        return wrap(ua + ub);
      case Opcode::Sub:
        return wrap(ua - ub);
      case Opcode::Mul:
        return wrap(ua * ub);
      case Opcode::Div:
        if (ub == 0)
            return nullptr; // traps: never fold away
        if (is_signed) {
            if (sa == INT64_MIN && sb == -1)
                return nullptr; // overflow trap
            return wrap(static_cast<uint64_t>(sa / sb));
        }
        return wrap(ua / ub);
      case Opcode::Rem:
        if (ub == 0)
            return nullptr;
        if (is_signed) {
            if (sa == INT64_MIN && sb == -1)
                return nullptr;
            return wrap(static_cast<uint64_t>(sa % sb));
        }
        return wrap(ua % ub);
      case Opcode::And:
        return wrap(ua & ub);
      case Opcode::Or:
        return wrap(ua | ub);
      case Opcode::Xor:
        return wrap(ua ^ ub);
      case Opcode::Shl: {
        uint64_t sh = ri->zext() & 0xff;
        if (sh >= 64)
            return wrap(0);
        return wrap(ua << sh);
      }
      case Opcode::Shr: {
        uint64_t sh = ri->zext() & 0xff;
        // Arithmetic shift for signed types, logical for unsigned
        // (LLVA-era convention: shr is overloaded by type).
        if (is_signed) {
            if (sh >= 64)
                return wrap(static_cast<uint64_t>(sa < 0 ? -1 : 0));
            return wrap(static_cast<uint64_t>(sa >> sh));
        }
        if (sh >= 64)
            return wrap(0);
        return wrap(ua >> sh);
      }
      case Opcode::SetEQ:
        return m.constantBool(ua == ub);
      case Opcode::SetNE:
        return m.constantBool(ua != ub);
      case Opcode::SetLT:
        return m.constantBool(is_signed ? sa < sb : ua < ub);
      case Opcode::SetGT:
        return m.constantBool(is_signed ? sa > sb : ua > ub);
      case Opcode::SetLE:
        return m.constantBool(is_signed ? sa <= sb : ua <= ub);
      case Opcode::SetGE:
        return m.constantBool(is_signed ? sa >= sb : ua >= ub);
      default:
        return nullptr;
    }
}

Constant *
foldCast(Module &m, Constant *value, Type *dest)
{
    Type *src = value->type();
    if (src == dest)
        return value;

    if (auto *ci = dyn_cast<ConstantInt>(value)) {
        if (dest->isInteger() || dest->isBool()) {
            // Integer-to-integer: reinterpret through source value.
            uint64_t v = src->isSignedInteger()
                             ? static_cast<uint64_t>(ci->sext())
                             : ci->zext();
            if (dest->isBool())
                return m.constantBool(v != 0);
            return m.constantInt(dest, v);
        }
        if (dest->isFloatingPoint()) {
            double d = src->isSignedInteger()
                           ? static_cast<double>(ci->sext())
                           : static_cast<double>(ci->zext());
            return m.constantFP(dest, d);
        }
        return nullptr; // int -> pointer: not folded
    }
    if (auto *cf = dyn_cast<ConstantFP>(value)) {
        if (dest->isFloatingPoint())
            return m.constantFP(dest, cf->value());
        if (dest->isInteger()) {
            // FP-to-int casts trap on out-of-range in some I-ISAs;
            // fold only in-range values.
            double d = cf->value();
            if (!(d >= -9.2e18 && d <= 9.2e18))
                return nullptr;
            if (dest->isSignedInteger())
                return m.constantInt(
                    dest, static_cast<uint64_t>(
                              static_cast<int64_t>(d)));
            if (d < 0)
                return nullptr;
            return m.constantInt(dest, static_cast<uint64_t>(d));
        }
        return nullptr;
    }
    if (isa<ConstantNull>(value)) {
        if (auto *pt = dyn_cast<PointerType>(dest))
            return m.constantNull(const_cast<PointerType *>(pt));
        if (dest->isInteger())
            return m.constantInt(dest, 0);
        if (dest->isBool())
            return m.constantBool(false);
    }
    return nullptr;
}

Constant *
foldInstruction(Module &m, const Instruction *inst)
{
    // All operands must be constants.
    std::vector<Constant *> ops;
    for (size_t i = 0; i < inst->numOperands(); ++i) {
        auto *c = dyn_cast<Constant>(inst->operand(i));
        if (!c && !isa<BasicBlock>(inst->operand(i)))
            return nullptr;
        ops.push_back(const_cast<Constant *>(c));
    }

    if (inst->isBinaryOp() || inst->isComparison())
        return foldBinary(m, inst->opcode(), ops[0], ops[1]);

    if (inst->opcode() == Opcode::Cast)
        return foldCast(m, ops[0], inst->type());

    if (auto *phi = dyn_cast<PhiNode>(inst)) {
        // phi folds if every incoming value is the same constant.
        Constant *common = nullptr;
        for (unsigned i = 0; i < phi->numIncoming(); ++i) {
            auto *c = dyn_cast<Constant>(phi->incomingValue(i));
            if (!c)
                return nullptr;
            if (common && common != c)
                return nullptr;
            common = const_cast<Constant *>(c);
        }
        return common;
    }

    return nullptr;
}

} // namespace llva
