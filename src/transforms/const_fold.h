/**
 * @file
 * Constant folding over LLVA's typed operations. Arithmetic follows
 * the type's signedness and width exactly; operations that would trap
 * with ExceptionsEnabled set (div/rem by zero) are never folded away.
 */

#ifndef LLVA_TRANSFORMS_CONST_FOLD_H
#define LLVA_TRANSFORMS_CONST_FOLD_H

#include "ir/instructions.h"
#include "ir/module.h"

namespace llva {

/**
 * Fold a binary/comparison operation with constant operands.
 * Returns nullptr when not foldable.
 */
Constant *foldBinary(Module &m, Opcode op, Constant *lhs, Constant *rhs);

/** Fold a cast of a constant. Returns nullptr when not foldable. */
Constant *foldCast(Module &m, Constant *value, Type *dest);

/**
 * Fold any instruction whose operands are all constants (including
 * phi with identical incoming constants). Returns nullptr when not
 * foldable.
 */
Constant *foldInstruction(Module &m, const Instruction *inst);

} // namespace llva

#endif // LLVA_TRANSFORMS_CONST_FOLD_H
