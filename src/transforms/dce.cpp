/**
 * @file
 * Dead code elimination.
 *
 * DCE removes trivially dead instructions (no uses, no side effects,
 * no deliverable exceptions — the ExceptionsEnabled attribute of
 * paper Section 3.3 is what licenses deleting dead arithmetic while
 * keeping dead trapping loads).
 *
 * ADCE is the aggressive variant: start from the set of obviously
 * live roots (side-effecting and control-returning instructions) and
 * mark backward along def-use chains; everything unmarked dies.
 */

#include <set>

#include "ir/instructions.h"
#include "transforms/pass.h"

namespace llva {

namespace {

/** Removable if dead: no side effects and no deliverable traps. */
bool
removableIfUnused(const Instruction *inst)
{
    if (inst->isTerminator() || inst->hasSideEffects())
        return false;
    if (inst->mayTrap())
        return false;
    // Alloca frees automatically; safe to drop when unused.
    return true;
}

class DCE : public FunctionPass
{
  public:
    const char *name() const override { return "dce"; }

    PassResult
    run(Function &f, AnalysisManager &) override
    {
        bool changed = false;
        bool local_change = true;
        while (local_change) {
            local_change = false;
            for (auto &bb : f) {
                for (auto it = bb->begin(); it != bb->end();) {
                    Instruction *inst = it->get();
                    ++it;
                    if (!inst->hasUses() &&
                        removableIfUnused(inst)) {
                        inst->eraseFromParent();
                        local_change = changed = true;
                    }
                }
            }
        }
        // Deleting dead non-terminators never reshapes the CFG.
        return changed
                   ? PassResult::modified(PreservedAnalyses::all())
                   : PassResult::unchanged();
    }
};

class ADCE : public FunctionPass
{
  public:
    const char *name() const override { return "adce"; }

    PassResult
    run(Function &f, AnalysisManager &) override
    {
        std::set<Instruction *> live;
        std::vector<Instruction *> work;

        auto markLive = [&](Instruction *inst) {
            if (live.insert(inst).second)
                work.push_back(inst);
        };

        for (auto &bb : f)
            for (auto &inst : *bb)
                if (!removableIfUnused(inst.get()))
                    markLive(inst.get());

        while (!work.empty()) {
            Instruction *inst = work.back();
            work.pop_back();
            for (size_t i = 0; i < inst->numOperands(); ++i)
                if (auto *op =
                        dyn_cast<Instruction>(inst->operand(i)))
                    markLive(op);
        }

        bool changed = false;
        for (auto &bb : f) {
            for (auto it = bb->begin(); it != bb->end();) {
                Instruction *inst = it->get();
                ++it;
                if (live.count(inst))
                    continue;
                // Dead instructions may feed each other; detach from
                // the graph before erasing.
                if (inst->hasUses())
                    inst->replaceAllUsesWith(
                        f.parent()->constantUndef(inst->type()));
                inst->eraseFromParent();
                changed = true;
            }
        }
        return changed
                   ? PassResult::modified(PreservedAnalyses::all())
                   : PassResult::unchanged();
    }
};

} // namespace

std::unique_ptr<FunctionPass>
createDCEPass()
{
    return std::make_unique<DCE>();
}

std::unique_ptr<FunctionPass>
createADCEPass()
{
    return std::make_unique<ADCE>();
}

} // namespace llva
