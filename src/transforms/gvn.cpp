/**
 * @file
 * Global value numbering / dominator-scoped common subexpression
 * elimination for pure operations (arithmetic, comparisons, casts,
 * getelementptr), plus redundant-load elimination within a block when
 * alias analysis proves no intervening clobber.
 */

#include <map>
#include <vector>

#include "analysis/alias_analysis.h"
#include "analysis/dominators.h"
#include "ir/instructions.h"
#include "transforms/pass.h"

namespace llva {

namespace {

/** Is this instruction a pure, re-usable expression? */
bool
isPureExpression(const Instruction *inst)
{
    switch (inst->opcode()) {
      case Opcode::Cast:
      case Opcode::GetElementPtr:
        return true;
      default:
        return inst->isBinaryOp() || inst->isComparison();
    }
}

using ExprKey = std::vector<uint64_t>;

ExprKey
keyOf(const Instruction *inst)
{
    ExprKey key;
    key.push_back(static_cast<uint64_t>(inst->opcode()));
    key.push_back(reinterpret_cast<uint64_t>(inst->type()));
    uint64_t op0 = 0, op1 = 0;
    for (size_t i = 0; i < inst->numOperands(); ++i) {
        uint64_t v = reinterpret_cast<uint64_t>(inst->operand(i));
        if (i == 0)
            op0 = v;
        if (i == 1)
            op1 = v;
        key.push_back(v);
    }
    // Commutative operations: canonicalize operand order.
    switch (inst->opcode()) {
      case Opcode::Add:
      case Opcode::Mul:
      case Opcode::And:
      case Opcode::Or:
      case Opcode::Xor:
      case Opcode::SetEQ:
      case Opcode::SetNE:
        if (op0 > op1) {
            key[2] = op1;
            key[3] = op0;
        }
        break;
      default:
        break;
    }
    return key;
}

class GVN : public FunctionPass
{
  public:
    const char *name() const override { return "gvn"; }

    PassResult
    run(Function &f, AnalysisManager &am) override
    {
        changed_ = false;
        DominatorTree &dt = am.dominators(f);
        BasicAliasAnalysis aa(*f.parent());
        processBlock(f.entryBlock(), dt, aa);
        if (!changed_)
            return PassResult::unchanged();
        // Only pure instructions and redundant loads are deleted;
        // the block structure is untouched.
        return PassResult::modified(PreservedAnalyses::all());
    }

  private:
    void
    processBlock(BasicBlock *bb, DominatorTree &dt,
                 BasicAliasAnalysis &aa)
    {
        std::vector<ExprKey> inserted;

        // Per-block load table: pointer -> last known value.
        std::map<Value *, Value *> availableLoads;

        for (auto it = bb->begin(); it != bb->end();) {
            Instruction *inst = it->get();
            ++it;

            if (auto *ld = dyn_cast<LoadInst>(inst)) {
                auto av = availableLoads.find(ld->pointer());
                if (av != availableLoads.end()) {
                    ld->replaceAllUsesWith(av->second);
                    ld->eraseFromParent();
                    changed_ = true;
                } else {
                    availableLoads[ld->pointer()] = ld;
                }
                continue;
            }
            if (auto *st = dyn_cast<StoreInst>(inst)) {
                // Kill aliased entries; remember the stored value.
                for (auto av = availableLoads.begin();
                     av != availableLoads.end();) {
                    if (aa.alias(st->pointer(), av->first) !=
                        AliasResult::NoAlias)
                        av = availableLoads.erase(av);
                    else
                        ++av;
                }
                availableLoads[st->pointer()] = st->value();
                continue;
            }
            if (inst->opcode() == Opcode::Call ||
                inst->opcode() == Opcode::Invoke) {
                // Unknown side effects clobber all loads.
                availableLoads.clear();
                continue;
            }

            if (!isPureExpression(inst))
                continue;
            ExprKey key = keyOf(inst);
            auto found = table_.find(key);
            if (found != table_.end() && !found->second.empty()) {
                inst->replaceAllUsesWith(found->second.back());
                inst->eraseFromParent();
                changed_ = true;
            } else {
                table_[key].push_back(inst);
                inserted.push_back(std::move(key));
            }
        }

        for (BasicBlock *child : dt.children(bb))
            processBlock(child, dt, aa);

        for (const ExprKey &key : inserted) {
            auto found = table_.find(key);
            found->second.pop_back();
            if (found->second.empty())
                table_.erase(found);
        }
    }

    std::map<ExprKey, std::vector<Value *>> table_;
    bool changed_ = false;
};

} // namespace

std::unique_ptr<FunctionPass>
createGVNPass()
{
    return std::make_unique<GVN>();
}

} // namespace llva
