/**
 * @file
 * Function inlining — the workhorse of the link-time interprocedural
 * configuration (paper Section 4.2). Operates bottom-up over the
 * call graph and inlines small defined callees at direct call sites.
 */

#include <map>

#include "analysis/call_graph.h"
#include "ir/instructions.h"
#include "transforms/pass.h"

namespace llva {

namespace {

class Inliner : public ModulePass
{
  public:
    explicit Inliner(unsigned threshold)
        : threshold_(threshold)
    {}

    const char *name() const override { return "inline"; }

    PassResult
    run(Module &m, AnalysisManager &) override
    {
        CallGraph cg(m);
        bool changed = false;
        for (const Function *cf : cg.bottomUpOrder()) {
            Function *f = const_cast<Function *>(cf);
            changed |= processFunction(*f, cg);
        }
        // Inlining splices callee blocks into callers: the callers'
        // CFGs change shape.
        return changed
                   ? PassResult::modified(PreservedAnalyses::none())
                   : PassResult::unchanged();
    }

  private:
    bool
    shouldInline(const Function *callee, const CallGraph &cg) const
    {
        if (callee->isDeclaration() || callee->isIntrinsic())
            return false;
        if (callee->functionType()->isVarArg())
            return false;
        if (callee->instructionCount() > threshold_)
            return false;
        if (cg.isRecursive(callee))
            return false;
        return true;
    }

    bool
    processFunction(Function &f, const CallGraph &cg)
    {
        bool changed = false;
        // Collect call sites up front; inlining mutates the lists.
        std::vector<CallInst *> sites;
        for (auto &bb : f)
            for (auto &inst : *bb)
                if (auto *call = dyn_cast<CallInst>(inst.get()))
                    if (Function *callee = call->calledFunction())
                        if (callee != &f &&
                            shouldInline(callee, cg))
                            sites.push_back(call);
        for (CallInst *call : sites) {
            inlineCall(f, call);
            changed = true;
        }
        return changed;
    }

    void
    inlineCall(Function &caller, CallInst *call)
    {
        Function *callee = call->calledFunction();
        TypeContext &tc = caller.functionType()->context();
        BasicBlock *head = call->parent();

        // Split the block right after the call.
        auto call_it = head->locate(call);
        auto next_it = std::next(call_it);
        Instruction *next = next_it->get();
        BasicBlock *tail = head->splitBefore(
            next, head->name() + ".after_" + callee->name());

        // Successor phis that named `head` must now name `tail`.
        for (BasicBlock *succ : tail->successors()) {
            for (auto &inst : *succ) {
                auto *phi = dyn_cast<PhiNode>(inst.get());
                if (!phi)
                    break;
                int idx = phi->incomingIndexFor(head);
                if (idx >= 0)
                    phi->setOperand(
                        static_cast<size_t>(2 * idx + 1), tail);
            }
        }

        // Clone the callee body.
        std::map<const Value *, Value *> map;
        for (size_t i = 0; i < callee->numArgs(); ++i)
            map[callee->arg(i)] = call->arg(i);

        std::vector<BasicBlock *> clonedBlocks;
        for (auto &bb : *callee) {
            BasicBlock *clone = caller.createBlock(
                callee->name() + "." + bb->name());
            caller.moveBlockBefore(clone, tail);
            map[bb.get()] = clone;
            clonedBlocks.push_back(clone);
        }

        std::vector<std::pair<Value *, BasicBlock *>> returns;
        {
            auto src = callee->begin();
            for (BasicBlock *clone : clonedBlocks) {
                for (auto &inst : **src) {
                    if (auto *ret =
                            dyn_cast<ReturnInst>(inst.get())) {
                        // Record the (mapped-later) return value; the
                        // terminator becomes a br to the tail block.
                        returns.push_back(
                            {ret->returnValue(), clone});
                        clone->append(std::make_unique<BranchInst>(
                            tc, tail));
                        continue;
                    }
                    Instruction *cloned = inst->clone();
                    cloned->setName(inst->name());
                    cloned->setExceptionsEnabled(
                        inst->exceptionsEnabled());
                    map[inst.get()] = cloned;
                    clone->append(
                        std::unique_ptr<Instruction>(cloned));
                }
                ++src;
            }
        }

        // Remap operands of all cloned instructions.
        for (BasicBlock *clone : clonedBlocks) {
            for (auto &inst : *clone) {
                for (size_t i = 0; i < inst->numOperands(); ++i) {
                    auto it = map.find(inst->operand(i));
                    if (it != map.end())
                        inst->setOperand(i, it->second);
                }
            }
        }

        // Wire the call block to the cloned entry.
        BasicBlock *clonedEntry = clonedBlocks.front();
        head->erase(head->terminator()); // the br added by split
        head->append(std::make_unique<BranchInst>(tc, clonedEntry));

        // Return value plumbing.
        if (!call->type()->isVoid()) {
            Value *result;
            if (returns.size() == 1) {
                Value *rv = returns[0].first;
                auto it = map.find(rv);
                result = it != map.end() ? it->second : rv;
            } else {
                auto *phi = new PhiNode(call->type());
                phi->setName(callee->name() + ".ret");
                for (auto &[rv, bb] : returns) {
                    Value *mapped = rv;
                    auto it = map.find(rv);
                    if (it != map.end())
                        mapped = it->second;
                    phi->addIncoming(mapped, bb);
                }
                tail->insert(tail->begin(),
                             std::unique_ptr<Instruction>(phi));
                result = phi;
            }
            call->replaceAllUsesWith(result);
        }
        call->eraseFromParent();
    }

    unsigned threshold_;
};

} // namespace

std::unique_ptr<ModulePass>
createInlinerPass(unsigned threshold)
{
    return std::make_unique<Inliner>(threshold);
}

} // namespace llva
