/**
 * @file
 * Peephole algebraic simplification (instcombine). Works directly on
 * the typed SSA graph; every rule respects the type's signedness and
 * the ExceptionsEnabled attribute (a potentially trapping div is
 * never removed, only strength-reduced when provably safe).
 */

#include <set>

#include "ir/instructions.h"
#include "transforms/const_fold.h"
#include "transforms/pass.h"

namespace llva {

namespace {

bool
isAllOnes(const ConstantInt *c)
{
    unsigned width = c->type()->integerBitWidth();
    if (width == 64)
        return c->zext() == ~0ull;
    uint64_t mask = (1ull << width) - 1;
    return (c->zext() & mask) == mask;
}

/** Log2 of a power-of-two constant, or -1. */
int
powerOfTwo(const ConstantInt *c)
{
    uint64_t v = c->zext();
    unsigned width = c->type()->integerBitWidth();
    if (width < 64)
        v &= (1ull << width) - 1;
    if (v == 0 || (v & (v - 1)))
        return -1;
    int log = 0;
    while (!(v & 1)) {
        v >>= 1;
        ++log;
    }
    return log;
}

class InstCombine : public FunctionPass
{
  public:
    const char *name() const override { return "instcombine"; }

    PassResult
    run(Function &f, AnalysisManager &) override
    {
        mod_ = f.parent();
        bool changed = false;
        bool local = true;
        while (local) {
            local = false;
            for (auto &bb : f) {
                for (auto it = bb->begin(); it != bb->end();) {
                    Instruction *inst = it->get();
                    ++it;
                    if (simplify(inst)) {
                        local = changed = true;
                    }
                }
            }
        }
        // Peepholes rewrite instructions in place; the CFG (and so
        // dominators and loops) is preserved.
        return changed
                   ? PassResult::modified(PreservedAnalyses::all())
                   : PassResult::unchanged();
    }

  private:
    /** Replace inst's result and erase it. */
    bool
    replaceWith(Instruction *inst, Value *v)
    {
        inst->replaceAllUsesWith(v);
        inst->eraseFromParent();
        return true;
    }

    bool
    simplify(Instruction *inst)
    {
        // Full constant fold first.
        if (!inst->type()->isVoid()) {
            if (Constant *c = foldInstruction(*mod_, inst))
                return replaceWith(inst, c);
        }

        if (auto *phi = dyn_cast<PhiNode>(inst)) {
            // Single incoming, or all incoming identical.
            if (phi->numIncoming() >= 1) {
                Value *common = phi->incomingValue(0);
                bool same = true;
                for (unsigned i = 1; i < phi->numIncoming(); ++i)
                    if (phi->incomingValue(i) != common &&
                        phi->incomingValue(i) != phi) {
                        same = false;
                        break;
                    }
                if (same && common != phi)
                    return replaceWith(phi, common);
            }
            return false;
        }

        if (auto *c = dyn_cast<CastInst>(inst)) {
            if (c->value()->type() == c->type())
                return replaceWith(c, c->value());
            // cast (cast x to T1) to T2 where T1 and T2 are the same
            // width and x's type equals T2: the round trip is a no-op.
            if (auto *inner = dyn_cast<CastInst>(c->value())) {
                Type *x = inner->value()->type();
                if (x == c->type() && x->isInteger() &&
                    inner->type()->isInteger() &&
                    inner->type()->integerBitWidth() >=
                        x->integerBitWidth())
                    return replaceWith(c, inner->value());
            }
            return false;
        }

        if (inst->isComparison()) {
            auto *cmp = cast<SetCondInst>(inst);
            Type *t = cmp->lhs()->type();
            bool fp = t->isFloatingPoint();
            if (cmp->lhs() == cmp->rhs() && !fp) {
                switch (inst->opcode()) {
                  case Opcode::SetEQ:
                  case Opcode::SetLE:
                  case Opcode::SetGE:
                    return replaceWith(inst, mod_->constantBool(true));
                  default:
                    return replaceWith(inst,
                                       mod_->constantBool(false));
                }
            }
            // Constant on the left: canonicalize to the right.
            if (isa<Constant>(cmp->lhs()) &&
                !isa<Constant>(cmp->rhs())) {
                Value *l = cmp->lhs(), *r = cmp->rhs();
                auto *repl = new SetCondInst(
                    SetCondInst::swapped(inst->opcode()), r, l);
                repl->setName(inst->name());
                inst->parent()->insertBefore(
                    inst, std::unique_ptr<Instruction>(repl));
                return replaceWith(inst, repl);
            }
            return false;
        }

        if (!inst->isBinaryOp())
            return false;

        auto *bin = cast<BinaryOperator>(inst);
        Value *lhs = bin->lhs(), *rhs = bin->rhs();
        Type *t = bin->type();
        bool is_int = t->isInteger();

        // Canonicalize constants to the right for commutative ops.
        if ((inst->opcode() == Opcode::Add ||
             inst->opcode() == Opcode::Mul ||
             inst->opcode() == Opcode::And ||
             inst->opcode() == Opcode::Or ||
             inst->opcode() == Opcode::Xor) &&
            isa<Constant>(lhs) && !isa<Constant>(rhs)) {
            bin->setOperand(0, rhs);
            bin->setOperand(1, lhs);
            std::swap(lhs, rhs);
            // fall through to the rules below (counts as a change
            // only if another rule fires; canonicalization alone
            // must not claim progress or the loop never terminates).
        }

        auto *rc = dyn_cast<ConstantInt>(rhs);
        switch (inst->opcode()) {
          case Opcode::Add:
            if (rc && rc->isZero())
                return replaceWith(inst, lhs);
            break;
          case Opcode::Sub:
            if (rc && rc->isZero())
                return replaceWith(inst, lhs);
            if (lhs == rhs && is_int)
                return replaceWith(inst, mod_->constantInt(t, 0));
            break;
          case Opcode::Mul:
            if (rc && rc->isOne())
                return replaceWith(inst, lhs);
            if (rc && rc->isZero() && is_int)
                return replaceWith(inst, mod_->constantInt(t, 0));
            if (rc && is_int && t->isUnsignedInteger()) {
                int log = powerOfTwo(rc);
                if (log > 0) {
                    auto *shift = new BinaryOperator(
                        Opcode::Shl, lhs,
                        mod_->constantInt(
                            mod_->types().ubyteTy(),
                            static_cast<uint64_t>(log)));
                    shift->setName(inst->name());
                    inst->parent()->insertBefore(
                        inst, std::unique_ptr<Instruction>(shift));
                    return replaceWith(inst, shift);
                }
            }
            break;
          case Opcode::Div:
            if (rc && rc->isOne())
                return replaceWith(inst, lhs);
            if (rc && is_int && t->isUnsignedInteger()) {
                int log = powerOfTwo(rc);
                if (log > 0) {
                    auto *shift = new BinaryOperator(
                        Opcode::Shr, lhs,
                        mod_->constantInt(
                            mod_->types().ubyteTy(),
                            static_cast<uint64_t>(log)));
                    shift->setName(inst->name());
                    inst->parent()->insertBefore(
                        inst, std::unique_ptr<Instruction>(shift));
                    return replaceWith(inst, shift);
                }
            }
            break;
          case Opcode::Rem:
            if (rc && rc->isOne() && is_int)
                return replaceWith(inst, mod_->constantInt(t, 0));
            break;
          case Opcode::And:
            if (rc && rc->isZero())
                return replaceWith(inst, mod_->constantInt(t, 0));
            if (rc && isAllOnes(rc))
                return replaceWith(inst, lhs);
            if (lhs == rhs)
                return replaceWith(inst, lhs);
            break;
          case Opcode::Or:
            if (rc && rc->isZero())
                return replaceWith(inst, lhs);
            if (rc && isAllOnes(rc))
                return replaceWith(inst, rhs);
            if (lhs == rhs)
                return replaceWith(inst, lhs);
            break;
          case Opcode::Xor:
            if (rc && rc->isZero())
                return replaceWith(inst, lhs);
            if (lhs == rhs && is_int)
                return replaceWith(inst, mod_->constantInt(t, 0));
            break;
          case Opcode::Shl:
          case Opcode::Shr:
            if (rc && rc->isZero())
                return replaceWith(inst, lhs);
            break;
          default:
            break;
        }
        return false;
    }

    Module *mod_ = nullptr;
};

} // namespace

std::unique_ptr<FunctionPass>
createInstCombinePass()
{
    return std::make_unique<InstCombine>();
}

} // namespace llva
