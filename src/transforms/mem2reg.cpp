/**
 * @file
 * mem2reg: promote scalar stack slots to SSA registers.
 *
 * External compilers emit source variables as allocas (paper Fig. 2:
 * %V lives on the stack because its address is taken); everything
 * whose address does not escape is promoted into the infinite virtual
 * register file, inserting phi nodes at iterated dominance frontiers.
 */

#include <map>
#include <set>

#include "analysis/dominators.h"
#include "ir/instructions.h"
#include "transforms/pass.h"

namespace llva {

namespace {

/** Promotable: scalar, statically sized, and only loaded/stored. */
bool
isPromotable(const AllocaInst *ai)
{
    if (ai->arraySize())
        return false;
    if (!ai->allocatedType()->isFirstClass())
        return false;
    for (const User *u : ai->users()) {
        if (isa<LoadInst>(u))
            continue;
        auto *st = dyn_cast<StoreInst>(u);
        if (st && st->pointer() == ai && st->value() != ai)
            continue;
        return false; // address escapes (gep, call, store of ptr...)
    }
    return true;
}

class Mem2Reg : public FunctionPass
{
  public:
    const char *name() const override { return "mem2reg"; }

    PassResult
    run(Function &f, AnalysisManager &am) override
    {
        std::vector<AllocaInst *> allocas;
        for (auto &inst : *f.entryBlock())
            if (auto *ai = dyn_cast<AllocaInst>(inst.get()))
                if (isPromotable(ai))
                    allocas.push_back(ai);
        if (allocas.empty())
            return PassResult::unchanged();

        DominatorTree &dt = am.dominators(f);
        for (AllocaInst *ai : allocas)
            promote(f, dt, ai);
        // Promotion rewrites instructions but never blocks or
        // edges: every CFG-derived analysis survives.
        return PassResult::modified(PreservedAnalyses::all());
    }

  private:
    void
    promote(Function &f, DominatorTree &dt, AllocaInst *ai)
    {
        Type *type = ai->allocatedType();
        Module *mod = f.parent();

        // Phi placement at the iterated dominance frontier of the
        // store (definition) blocks.
        std::set<BasicBlock *> defBlocks;
        for (User *u : ai->users())
            if (auto *st = dyn_cast<StoreInst>(u))
                defBlocks.insert(st->parent());

        std::set<BasicBlock *> phiBlocks;
        std::vector<BasicBlock *> work(defBlocks.begin(),
                                       defBlocks.end());
        while (!work.empty()) {
            BasicBlock *bb = work.back();
            work.pop_back();
            for (BasicBlock *df : dt.frontier(bb))
                if (phiBlocks.insert(df).second)
                    work.push_back(df);
        }

        std::map<BasicBlock *, PhiNode *> phis;
        for (BasicBlock *bb : phiBlocks) {
            if (!dt.reachable(bb))
                continue;
            auto *phi = new PhiNode(type);
            phi->setName(ai->name());
            bb->insert(bb->begin(), std::unique_ptr<Instruction>(phi));
            phis[bb] = phi;
        }

        // Rename: one pass over the CFG from the entry. A block
        // without a phi is only reached with a single well-defined
        // value (that is what the iterated-DF placement guarantees),
        // so a visited-once DFS carrying the current value is sound.
        Value *undef = mod->constantUndef(type);
        struct Frame
        {
            BasicBlock *bb;
            Value *value;
        };
        std::vector<Frame> stack{{f.entryBlock(), undef}};
        std::set<BasicBlock *> visited;
        while (!stack.empty()) {
            Frame fr = stack.back();
            stack.pop_back();
            if (auto it = phis.find(fr.bb); it != phis.end())
                fr.value = it->second;
            bool first_visit = visited.insert(fr.bb).second;

            if (first_visit) {
                for (auto &inst : *fr.bb) {
                    if (auto *ld = dyn_cast<LoadInst>(inst.get())) {
                        if (ld->pointer() == ai)
                            ld->replaceAllUsesWith(fr.value);
                    } else if (auto *st =
                                   dyn_cast<StoreInst>(inst.get())) {
                        if (st->pointer() == ai)
                            fr.value = st->value();
                    }
                }
            } else {
                // Value at block end unchanged: recompute by scanning
                // stores only (cheap; needed to fill successor phis
                // identically on every edge).
                for (auto &inst : *fr.bb)
                    if (auto *st = dyn_cast<StoreInst>(inst.get()))
                        if (st->pointer() == ai)
                            fr.value = st->value();
            }

            for (BasicBlock *succ : fr.bb->successors()) {
                if (auto it = phis.find(succ); it != phis.end())
                    if (it->second->incomingIndexFor(fr.bb) < 0)
                        it->second->addIncoming(fr.value, fr.bb);
                if (!visited.count(succ))
                    stack.push_back({succ, fr.value});
            }
        }

        // Unreachable predecessors never got visited: give their phi
        // edges undef so the SSA form stays verifier-clean.
        for (auto &[bb, phi] : phis)
            for (BasicBlock *pred : bb->predecessors())
                if (phi->incomingIndexFor(pred) < 0)
                    phi->addIncoming(undef, pred);

        // Drop the memory operations and the slot itself. Loads in
        // unreachable code were never rewritten; they become undef.
        std::vector<Instruction *> dead;
        for (User *u : ai->users())
            dead.push_back(cast<Instruction>(u));
        for (Instruction *inst : dead) {
            if (inst->hasUses())
                inst->replaceAllUsesWith(
                    mod->constantUndef(inst->type()));
            inst->eraseFromParent();
        }
        ai->eraseFromParent();
    }
};

} // namespace

std::unique_ptr<FunctionPass>
createMem2RegPass()
{
    return std::make_unique<Mem2Reg>();
}

} // namespace llva
