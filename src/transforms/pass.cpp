#include "transforms/pass.h"

#include <algorithm>

#include "support/statistic.h"
#include "support/timer.h"
#include "verifier/verifier.h"

namespace llva {

namespace {

Statistic NumPassRuns("pass.applications",
                      "Individual pass applications (pass x unit)");
Statistic NumPassChanges("pass.changes",
                         "Pass applications that modified the IR");

} // namespace

bool
PassManager::run(Module &m)
{
    AnalysisManager am;
    return run(m, am);
}

void
PassManager::verifyAfter(Module &m, const Entry &e)
{
    VerifyResult r = verifyModule(m);
    if (!r.ok())
        fatal("verification failed after pass '%s':\n%s", e.name(),
              r.str().c_str());
}

bool
PassManager::run(Module &m, AnalysisManager &am)
{
    changed_.clear();
    timings_.clear();
    timings_.resize(entries_.size());
    for (size_t i = 0; i < entries_.size(); ++i)
        timings_[i].name = entries_[i].name();

    size_t i = 0;
    while (i < entries_.size()) {
        if (entries_[i].mp) {
            Entry &e = entries_[i];
            Timer t;
            PassResult r = e.mp->run(m, am);
            timings_[i].seconds += t.seconds();
            timings_[i].invocations += 1;
            ++NumPassRuns;
            if (r.changed) {
                timings_[i].changed = true;
                ++NumPassChanges;
                // Interprocedural rewrites can touch any function;
                // drop every cached analysis.
                am.clear();
            }
            if (verifyEach_)
                verifyAfter(m, e);
            ++i;
            continue;
        }

        // A stage: the maximal run of consecutive function passes.
        // Drive it function-major so analyses computed for a
        // function stay cached across the whole stage.
        size_t stageEnd = i;
        while (stageEnd < entries_.size() && entries_[stageEnd].fp)
            ++stageEnd;

        for (auto &f : m.functions()) {
            if (f->isDeclaration())
                continue;
            for (size_t k = i; k < stageEnd; ++k) {
                Entry &e = entries_[k];
                Timer t;
                PassResult r = e.fp->run(*f, am);
                timings_[k].seconds += t.seconds();
                timings_[k].invocations += 1;
                ++NumPassRuns;
                if (r.changed) {
                    timings_[k].changed = true;
                    ++NumPassChanges;
                    am.invalidate(*f, r.preserved);
                }
                if (verifyEach_)
                    verifyAfter(m, e);
            }
        }
        i = stageEnd;
    }

    bool any = false;
    for (const PassTiming &t : timings_) {
        if (!t.changed)
            continue;
        changed_.push_back(t.name);
        any = true;
    }
    return any;
}

std::string
PassManager::timingReport() const
{
    std::vector<const PassTiming *> rows;
    double total = 0;
    for (const PassTiming &t : timings_) {
        rows.push_back(&t);
        total += t.seconds;
    }
    std::sort(rows.begin(), rows.end(),
              [](const PassTiming *a, const PassTiming *b) {
                  return a->seconds > b->seconds;
              });

    std::string out = "=== Pass timings ===\n";
    for (const PassTiming *t : rows) {
        char line[256];
        std::snprintf(
            line, sizeof(line),
            "%10.3f ms  %5.1f%%  %-14s %zu applications%s\n",
            t->seconds * 1000.0,
            total > 0 ? 100.0 * t->seconds / total : 0.0,
            t->name.c_str(), t->invocations,
            t->changed ? "  (changed)" : "");
        out += line;
    }
    char line[64];
    std::snprintf(line, sizeof(line), "%10.3f ms  total\n",
                  total * 1000.0);
    out += line;
    return out;
}

void
addStandardPasses(PassManager &pm, unsigned level)
{
    if (level == 0)
        return;
    pm.add(createMem2RegPass());
    pm.add(createInstCombinePass());
    pm.add(createSCCPPass());
    pm.add(createSimplifyCFGPass());
    pm.add(createGVNPass());
    pm.add(createADCEPass());
    pm.add(createSimplifyCFGPass());
    if (level >= 2) {
        pm.add(createInlinerPass());
        pm.add(createInstCombinePass());
        pm.add(createSCCPPass());
        pm.add(createGVNPass());
        pm.add(createADCEPass());
        pm.add(createSimplifyCFGPass());
    }
}

} // namespace llva
