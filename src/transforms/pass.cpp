#include "transforms/pass.h"

#include "verifier/verifier.h"

namespace llva {

bool
PassManager::run(Module &m)
{
    changed_.clear();
    bool any = false;
    for (auto &e : entries_) {
        bool changed = false;
        if (e.mp) {
            changed = e.mp->run(m);
        } else {
            for (auto &f : m.functions())
                if (!f->isDeclaration())
                    changed |= e.fp->run(*f);
        }
        if (changed)
            changed_.push_back(e.mp ? e.mp->name() : e.fp->name());
        any |= changed;
        if (verifyEach_) {
            VerifyResult r = verifyModule(m);
            if (!r.ok())
                fatal("verification failed after pass '%s':\n%s",
                      e.mp ? e.mp->name() : e.fp->name(),
                      r.str().c_str());
        }
    }
    return any;
}

void
addStandardPasses(PassManager &pm, unsigned level)
{
    if (level == 0)
        return;
    pm.add(createMem2RegPass());
    pm.add(createInstCombinePass());
    pm.add(createSCCPPass());
    pm.add(createSimplifyCFGPass());
    pm.add(createGVNPass());
    pm.add(createADCEPass());
    pm.add(createSimplifyCFGPass());
    if (level >= 2) {
        pm.add(createInlinerPass());
        pm.add(createInstCombinePass());
        pm.add(createSCCPPass());
        pm.add(createGVNPass());
        pm.add(createADCEPass());
        pm.add(createSimplifyCFGPass());
    }
}

} // namespace llva
