#include "transforms/pass.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <set>

#include "ir/clone.h"
#include "support/statistic.h"
#include "support/timer.h"
#include "verifier/verifier.h"

namespace llva {

namespace {

Statistic NumPassRuns("pass.applications",
                      "Individual pass applications (pass x unit)");
Statistic NumPassChanges("pass.changes",
                         "Pass applications that modified the IR");
Statistic NumContained("passes.contained_failures",
                       "Pass applications contained by the sandbox");
Statistic NumBudgetExceeded(
    "passes.budget_exceeded",
    "Pass applications rolled back for blowing their budget");

/** CI hook: LLVA_VERIFY_EACH=1 turns on verify-each everywhere. */
bool
envVerifyEach()
{
    static const bool on = [] {
        const char *e = std::getenv("LLVA_VERIFY_EACH");
        return e && *e && std::string(e) != "0";
    }();
    return on;
}

/** Process-wide -opt-bisect-limit state. */
struct BisectState
{
    std::mutex mu;
    int64_t limit = -1;
    int64_t counter = 0;
    std::vector<std::string> decisions;
};

BisectState &
bisectState()
{
    static BisectState s;
    return s;
}

} // namespace

// --- OptBisect ---------------------------------------------------------

void
OptBisect::setLimit(int64_t limit)
{
    BisectState &s = bisectState();
    std::lock_guard<std::mutex> lock(s.mu);
    s.limit = limit < 0 ? -1 : limit;
    s.counter = 0;
    s.decisions.clear();
}

int64_t
OptBisect::limit()
{
    BisectState &s = bisectState();
    std::lock_guard<std::mutex> lock(s.mu);
    return s.limit;
}

bool
OptBisect::enabled()
{
    return limit() >= 0;
}

int64_t
OptBisect::count()
{
    BisectState &s = bisectState();
    std::lock_guard<std::mutex> lock(s.mu);
    return s.counter;
}

bool
OptBisect::shouldRun(const char *pass, const std::string &unit)
{
    BisectState &s = bisectState();
    std::lock_guard<std::mutex> lock(s.mu);
    if (s.limit < 0)
        return true;
    const int64_t index = ++s.counter;
    const bool run = index <= s.limit;
    std::string desc =
        std::string(pass) + " on " + (unit.empty() ? "<module>" : unit);
    s.decisions.push_back(desc);
    std::fprintf(stderr, "BISECT: %srunning pass (%lld) %s\n",
                 run ? "" : "NOT ", static_cast<long long>(index),
                 desc.c_str());
    return run;
}

std::string
OptBisect::description(int64_t index)
{
    BisectState &s = bisectState();
    std::lock_guard<std::mutex> lock(s.mu);
    if (index < 1 || static_cast<size_t>(index) > s.decisions.size())
        return "";
    return s.decisions[static_cast<size_t>(index) - 1];
}

// --- PassManager -------------------------------------------------------

bool
PassManager::run(Module &m)
{
    AnalysisManager am;
    return run(m, am);
}

void
PassManager::verifyAfter(Module &m, const Entry &e)
{
    VerifyResult r = verifyModule(m);
    if (!r.ok())
        fatal("verification failed after pass '%s':\n%s", e.name(),
              r.str().c_str());
}

PassResult
PassManager::applyFunctionPass(const Entry &e, Function &f,
                               AnalysisManager &am)
{
    ++NumPassRuns;
    if (OptBisect::enabled() && !OptBisect::shouldRun(e.name(), f.name()))
        return PassResult::unchanged();

    const bool verify = verifyEach_ || envVerifyEach();

    if (!sandbox_) {
        PassResult r = e.fp->run(f, am);
        if (r.changed) {
            ++NumPassChanges;
            am.invalidate(f, r.preserved);
        }
        if (verify) {
            VerifyResult vr = verifyFunction(f);
            if (!vr.ok())
                fatal("verification failed after pass '%s' on "
                      "function '%s':\n%s",
                      e.name(), f.name().c_str(), vr.str().c_str());
        }
        return r;
    }

    // Sandboxed: snapshot, guard, enforce the budget, and on any
    // failure put the function back exactly as it was.
    FunctionSnapshot snap = FunctionSnapshot::capture(f);
    const size_t before = snap.instructionCount();
    Timer t;
    std::string failure;
    bool budgetBlown = false;
    PassResult r = PassResult::unchanged();
    try {
        r = e.fp->run(f, am);
    } catch (const FatalError &err) {
        failure = std::string("pass fault: ") + err.what();
    } catch (const std::exception &err) {
        failure = std::string("pass exception: ") + err.what();
    }

    if (failure.empty()) {
        const double secs = t.seconds();
        const size_t limit = std::max(
            budget_.growthFloor,
            static_cast<size_t>(static_cast<double>(before) *
                                budget_.maxGrowth));
        if (secs > budget_.maxSeconds) {
            char buf[128];
            std::snprintf(buf, sizeof(buf),
                          "budget exceeded: %.3fs > %.3fs wall clock",
                          secs, budget_.maxSeconds);
            failure = buf;
            budgetBlown = true;
        } else if (f.instructionCount() > limit) {
            char buf[128];
            std::snprintf(buf, sizeof(buf),
                          "budget exceeded: grew %zu -> %zu "
                          "instructions (limit %zu)",
                          before, f.instructionCount(), limit);
            failure = buf;
            budgetBlown = true;
        }
    }

    // Invalidation runs outside the guard on purpose: the analysis
    // manager's preservation audit flags a pass-declaration bug, not
    // an input-dependent fault, and must never be swallowed here.
    if (failure.empty() && r.changed)
        am.invalidate(f, r.preserved);

    if (failure.empty() && verify) {
        VerifyResult vr = verifyFunction(f);
        if (!vr.ok())
            failure = "verification failed: " + vr.str();
    }

    if (!failure.empty()) {
        snap.restoreInto(f);
        // The restore replaced every block, so anything cached for
        // this function points at freed IR.
        am.invalidate(f);
        containedFailures_.push_back({e.name(), f.name(), failure});
        ++NumContained;
        if (budgetBlown)
            ++NumBudgetExceeded;
        warn("contained pass '%s' on function '%s': %s", e.name(),
             f.name().c_str(), failure.c_str());
        return PassResult::unchanged();
    }
    if (r.changed)
        ++NumPassChanges;
    return r;
}

PassResult
PassManager::applyModulePass(const Entry &e, Module &m,
                             AnalysisManager &am)
{
    ++NumPassRuns;
    if (OptBisect::enabled() && !OptBisect::shouldRun(e.name(), m.name()))
        return PassResult::unchanged();

    const bool verify = verifyEach_ || envVerifyEach();

    if (!sandbox_) {
        PassResult r = e.mp->run(m, am);
        if (r.changed) {
            ++NumPassChanges;
            // Interprocedural rewrites can touch any function;
            // drop every cached analysis.
            am.clear();
        }
        if (verify)
            verifyAfter(m, e);
        return r;
    }

    // Sandboxed module pass: snapshot every defined body plus the
    // set of functions, so a faulting interprocedural pass can be
    // unwound (bodies restored, functions it minted removed).
    std::vector<std::pair<Function *, FunctionSnapshot>> snaps;
    std::set<const Function *> preexisting;
    size_t before = 0;
    for (const auto &f : m.functions()) {
        preexisting.insert(f.get());
        if (f->isDeclaration())
            continue;
        snaps.emplace_back(f.get(), FunctionSnapshot::capture(*f));
        before += snaps.back().second.instructionCount();
    }

    Timer t;
    std::string failure;
    bool budgetBlown = false;
    PassResult r = PassResult::unchanged();
    try {
        r = e.mp->run(m, am);
    } catch (const FatalError &err) {
        failure = std::string("pass fault: ") + err.what();
    } catch (const std::exception &err) {
        failure = std::string("pass exception: ") + err.what();
    }

    if (failure.empty()) {
        const double secs = t.seconds();
        const size_t limit = std::max(
            budget_.growthFloor,
            static_cast<size_t>(static_cast<double>(before) *
                                budget_.maxGrowth));
        if (secs > budget_.maxSeconds) {
            char buf[128];
            std::snprintf(buf, sizeof(buf),
                          "budget exceeded: %.3fs > %.3fs wall clock",
                          secs, budget_.maxSeconds);
            failure = buf;
            budgetBlown = true;
        } else if (m.instructionCount() > limit) {
            char buf[128];
            std::snprintf(buf, sizeof(buf),
                          "budget exceeded: module grew %zu -> %zu "
                          "instructions (limit %zu)",
                          before, m.instructionCount(), limit);
            failure = buf;
            budgetBlown = true;
        }
    }

    if (failure.empty() && r.changed)
        am.clear();

    if (failure.empty() && verify) {
        VerifyResult vr = verifyModule(m);
        if (!vr.ok())
            failure = "verification failed: " + vr.str();
    }

    if (!failure.empty()) {
        for (auto &[f, snap] : snaps)
            snap.restoreInto(*f);
        // With every pre-existing body restored, nothing can
        // reference functions the pass created; drop them.
        std::vector<Function *> minted;
        for (const auto &f : m.functions())
            if (!preexisting.count(f.get()) && !f->hasUses())
                minted.push_back(f.get());
        for (Function *f : minted)
            m.eraseFunction(f);
        am.clear();
        containedFailures_.push_back({e.name(), "", failure});
        ++NumContained;
        if (budgetBlown)
            ++NumBudgetExceeded;
        warn("contained module pass '%s': %s", e.name(),
             failure.c_str());
        return PassResult::unchanged();
    }
    if (r.changed)
        ++NumPassChanges;
    return r;
}

bool
PassManager::run(Module &m, AnalysisManager &am)
{
    changed_.clear();
    containedFailures_.clear();
    timings_.clear();
    timings_.resize(entries_.size());
    for (size_t i = 0; i < entries_.size(); ++i)
        timings_[i].name = entries_[i].name();

    size_t i = 0;
    while (i < entries_.size()) {
        if (entries_[i].mp) {
            Entry &e = entries_[i];
            Timer t;
            PassResult r = applyModulePass(e, m, am);
            timings_[i].seconds += t.seconds();
            timings_[i].invocations += 1;
            if (r.changed)
                timings_[i].changed = true;
            ++i;
            continue;
        }

        // A stage: the maximal run of consecutive function passes.
        // Drive it function-major so analyses computed for a
        // function stay cached across the whole stage.
        size_t stageEnd = i;
        while (stageEnd < entries_.size() && entries_[stageEnd].fp)
            ++stageEnd;

        for (auto &f : m.functions()) {
            if (f->isDeclaration())
                continue;
            for (size_t k = i; k < stageEnd; ++k) {
                Entry &e = entries_[k];
                Timer t;
                PassResult r = applyFunctionPass(e, *f, am);
                timings_[k].seconds += t.seconds();
                timings_[k].invocations += 1;
                if (r.changed)
                    timings_[k].changed = true;
            }
        }
        i = stageEnd;
    }

    bool any = false;
    for (const PassTiming &t : timings_) {
        if (!t.changed)
            continue;
        changed_.push_back(t.name);
        any = true;
    }
    return any;
}

bool
PassManager::runOnFunction(Function &f, AnalysisManager &am)
{
    changed_.clear();
    containedFailures_.clear();
    timings_.clear();
    timings_.resize(entries_.size());
    for (size_t i = 0; i < entries_.size(); ++i) {
        timings_[i].name = entries_[i].name();
        if (entries_[i].mp)
            panic("runOnFunction: pipeline contains module pass '%s'",
                  entries_[i].name());
    }

    for (size_t k = 0; k < entries_.size(); ++k) {
        Entry &e = entries_[k];
        Timer t;
        PassResult r = applyFunctionPass(e, f, am);
        timings_[k].seconds += t.seconds();
        timings_[k].invocations += 1;
        if (r.changed)
            timings_[k].changed = true;
    }

    bool any = false;
    for (const PassTiming &t : timings_) {
        if (!t.changed)
            continue;
        changed_.push_back(t.name);
        any = true;
    }
    return any;
}

std::string
PassManager::timingReport() const
{
    std::vector<const PassTiming *> rows;
    double total = 0;
    for (const PassTiming &t : timings_) {
        rows.push_back(&t);
        total += t.seconds;
    }
    std::sort(rows.begin(), rows.end(),
              [](const PassTiming *a, const PassTiming *b) {
                  return a->seconds > b->seconds;
              });

    std::string out = "=== Pass timings ===\n";
    for (const PassTiming *t : rows) {
        char line[256];
        std::snprintf(
            line, sizeof(line),
            "%10.3f ms  %5.1f%%  %-14s %zu applications%s\n",
            t->seconds * 1000.0,
            total > 0 ? 100.0 * t->seconds / total : 0.0,
            t->name.c_str(), t->invocations,
            t->changed ? "  (changed)" : "");
        out += line;
    }
    char line[64];
    std::snprintf(line, sizeof(line), "%10.3f ms  total\n",
                  total * 1000.0);
    out += line;
    return out;
}

void
addStandardPasses(PassManager &pm, unsigned level)
{
    if (level == 0)
        return;
    pm.add(createMem2RegPass());
    pm.add(createInstCombinePass());
    pm.add(createSCCPPass());
    pm.add(createSimplifyCFGPass());
    pm.add(createGVNPass());
    pm.add(createADCEPass());
    pm.add(createSimplifyCFGPass());
    if (level >= 2) {
        pm.add(createInlinerPass());
        pm.add(createInstCombinePass());
        pm.add(createSCCPPass());
        pm.add(createGVNPass());
        pm.add(createADCEPass());
        pm.add(createSimplifyCFGPass());
    }
}

void
addFunctionPasses(PassManager &pm, unsigned level)
{
    if (level == 0)
        return;
    pm.add(createMem2RegPass());
    pm.add(createInstCombinePass());
    pm.add(createSCCPPass());
    pm.add(createSimplifyCFGPass());
    pm.add(createGVNPass());
    pm.add(createADCEPass());
    pm.add(createSimplifyCFGPass());
    if (level >= 2) {
        pm.add(createInstCombinePass());
        pm.add(createSCCPPass());
        pm.add(createGVNPass());
        pm.add(createADCEPass());
        pm.add(createSimplifyCFGPass());
    }
}

} // namespace llva
