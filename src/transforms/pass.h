/**
 * @file
 * Pass framework: the optimization pipeline that runs over virtual
 * object code at compile-, link-, install-, run-, or idle-time
 * (paper Section 4.2's four optimization opportunities all operate
 * on this same representation).
 *
 * The pipeline is staged and per-function: consecutive function
 * passes form a stage that is driven function-at-a-time over a
 * shared AnalysisManager, so an analysis computed by one pass
 * (e.g. the dominator tree mem2reg builds) is still hot when the
 * next pass asks for it. Every pass reports what it preserved; the
 * manager invalidates exactly the rest. Module passes are stage
 * barriers.
 */

#ifndef LLVA_TRANSFORMS_PASS_H
#define LLVA_TRANSFORMS_PASS_H

#include <memory>
#include <string>
#include <vector>

#include "analysis/analysis_manager.h"
#include "ir/module.h"

namespace llva {

/**
 * What one pass application did: whether the IR changed, and which
 * cached analyses survived. The two are independent — GVN deletes
 * instructions (changed) without touching the CFG (dominators
 * preserved), while a no-op SimplifyCFG run preserves everything.
 */
struct PassResult
{
    bool changed = false;
    PreservedAnalyses preserved = PreservedAnalyses::all();

    /** IR untouched; everything stays cached. */
    static PassResult
    unchanged()
    {
        return {false, PreservedAnalyses::all()};
    }

    /** IR changed; \p pa says what is still valid. */
    static PassResult
    modified(PreservedAnalyses pa)
    {
        return {true, pa};
    }
};

/** A transformation applied to one function at a time. */
class FunctionPass
{
  public:
    virtual ~FunctionPass() = default;

    /**
     * Transform \p f, taking analyses from \p am instead of
     * computing them locally. Implementations must not claim to
     * preserve an analysis they invalidated (the verifying pass
     * manager cross-checks this in tests).
     */
    virtual PassResult run(Function &f, AnalysisManager &am) = 0;

    virtual const char *name() const = 0;
};

/** A whole-module (interprocedural) transformation. */
class ModulePass
{
  public:
    virtual ~ModulePass() = default;

    virtual PassResult run(Module &m, AnalysisManager &am) = 0;

    virtual const char *name() const = 0;
};

/** Wall-clock cost of one pipeline entry across the last run. */
struct PassTiming
{
    std::string name;
    double seconds = 0;
    /** Individual applications (functions visited, or 1 per module
     *  pass). */
    size_t invocations = 0;
    bool changed = false;
};

/**
 * Resource ceiling for one sandboxed pass application. A pass that
 * exceeds it is treated exactly like a faulting pass: the unit is
 * restored from its snapshot and the pipeline continues without
 * that application. Wall clock is necessarily checked after the
 * pass returns (passes are not preemptible), so the budget bounds
 * damage per application, not the absolute latency of one.
 */
struct PassBudget
{
    /** Max wall-clock seconds for a single application. */
    double maxSeconds = 5.0;
    /** Max IR instruction growth factor for a single application. */
    double maxGrowth = 8.0;
    /** Functions smaller than this may always grow up to it (a
     *  3-instruction function legitimately triples). */
    size_t growthFloor = 512;
};

/** Identity of one contained pass failure (sandbox telemetry). */
struct ContainedFailure
{
    std::string pass;
    std::string unit; ///< function name; empty for a module pass
    std::string reason;
};

/**
 * Deterministic global pass-application counter (LLVM-style
 * -opt-bisect-limit). When a limit is set, every pass application
 * process-wide draws the next index; applications whose index
 * exceeds the limit are skipped. Because pipelines run passes in a
 * deterministic serial order, an output difference can be
 * binary-searched over the limit to the exact application — and
 * description() names it.
 */
class OptBisect
{
  public:
    /** Enable with a limit (>= 0); negative disables. Resets the
     *  counter and the recorded decisions. */
    static void setLimit(int64_t limit);
    static int64_t limit();
    static bool enabled();

    /** Applications drawn since the limit was set. */
    static int64_t count();

    /** Draw the next index for (pass, unit); true = run it. Records
     *  the decision and echoes it to stderr, like LLVM. */
    static bool shouldRun(const char *pass, const std::string &unit);

    /** "pass on unit" for a 1-based application index ("" if out of
     *  range or bisect disabled). */
    static std::string description(int64_t index);
};

/**
 * Runs a sequence of passes as a staged per-function pipeline.
 * Consecutive function passes are applied function-major (all
 * stage passes to one function before moving to the next) so the
 * AnalysisManager cache stays hot; module passes act as barriers
 * and flush the cache when they change anything. Optionally
 * verifies after each pass application (used heavily in tests).
 */
class PassManager
{
  public:
    void
    add(std::unique_ptr<FunctionPass> p)
    {
        entries_.push_back({std::move(p), nullptr});
    }

    void
    add(std::unique_ptr<ModulePass> p)
    {
        entries_.push_back({nullptr, std::move(p)});
    }

    void setVerifyEach(bool v) { verifyEach_ = v; }

    /**
     * Fault containment: snapshot each unit before a pass runs, and
     * if the pass throws, breaks the verifier (under verify-each), or
     * blows its budget, restore the snapshot and continue the
     * pipeline without that application. Off by default — batch
     * tools want a faulting pass to be loud; the runtime translator
     * wants it contained.
     */
    void setSandbox(bool v) { sandbox_ = v; }
    bool sandbox() const { return sandbox_; }

    void setBudget(const PassBudget &b) { budget_ = b; }
    const PassBudget &budget() const { return budget_; }

    /** Failures contained by the sandbox in the last run. */
    const std::vector<ContainedFailure> &containedFailures() const
    {
        return containedFailures_;
    }

    /** Run all passes; returns true if anything changed. */
    bool run(Module &m);

    /** Run with an external AnalysisManager (tests, pipelining). */
    bool run(Module &m, AnalysisManager &am);

    /**
     * Run only the function passes over a single function (the tier
     * ladder retranslates one function at a time). Panics if the
     * pipeline contains a module pass.
     */
    bool runOnFunction(Function &f, AnalysisManager &am);

    /** Names of passes that reported changes in the last run. */
    const std::vector<std::string> &changedPasses() const
    {
        return changed_;
    }

    /** Per-pass wall-clock timing of the last run, pipeline order. */
    const std::vector<PassTiming> &timings() const
    {
        return timings_;
    }

    /** The `-time-passes` report for the last run. */
    std::string timingReport() const;

  private:
    struct Entry
    {
        std::unique_ptr<FunctionPass> fp;
        std::unique_ptr<ModulePass> mp;

        const char *
        name() const
        {
            return fp ? fp->name() : mp->name();
        }
    };

    void verifyAfter(Module &m, const Entry &e);

    /** One sandboxed/bisected function-pass application. */
    PassResult applyFunctionPass(const Entry &e, Function &f,
                                 AnalysisManager &am);
    /** One sandboxed/bisected module-pass application. */
    PassResult applyModulePass(const Entry &e, Module &m,
                               AnalysisManager &am);

    std::vector<Entry> entries_;
    std::vector<std::string> changed_;
    std::vector<PassTiming> timings_;
    std::vector<ContainedFailure> containedFailures_;
    PassBudget budget_;
    bool verifyEach_ = false;
    bool sandbox_ = false;
};

// Factory functions for the standard passes.
std::unique_ptr<FunctionPass> createMem2RegPass();
std::unique_ptr<FunctionPass> createSCCPPass();
std::unique_ptr<FunctionPass> createDCEPass();
std::unique_ptr<FunctionPass> createADCEPass();
std::unique_ptr<FunctionPass> createGVNPass();
std::unique_ptr<FunctionPass> createInstCombinePass();
std::unique_ptr<FunctionPass> createSimplifyCFGPass();
std::unique_ptr<ModulePass> createInlinerPass(unsigned threshold = 40);
/** Demote phis to stack slots (models naive front-end output). */
std::unique_ptr<FunctionPass> createReg2MemPass();
/**
 * Automatic Pool Allocation (Section 5.1): partition the heap into
 * one pool per disjoint data-structure instance found by the
 * points-to analysis.
 */
std::unique_ptr<ModulePass> createPoolAllocationPass();

/**
 * The standard optimization pipeline.
 *  - level 0: nothing.
 *  - level 1: mem2reg, instcombine, SCCP, GVN, ADCE, simplifycfg.
 *  - level 2: level 1 plus inlining and a second scalar round
 *    (the "link-time interprocedural" configuration of Section 4.2).
 */
void addStandardPasses(PassManager &pm, unsigned level);

/**
 * The function-pass subset of the standard pipeline (no inliner; the
 * tier ladder retranslates one function at a time, so module passes
 * cannot apply). Level 2 adds the second scalar round.
 */
void addFunctionPasses(PassManager &pm, unsigned level);

} // namespace llva

#endif // LLVA_TRANSFORMS_PASS_H
