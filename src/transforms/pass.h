/**
 * @file
 * Pass framework: the optimization pipeline that runs over virtual
 * object code at compile-, link-, install-, run-, or idle-time
 * (paper Section 4.2's four optimization opportunities all operate
 * on this same representation).
 */

#ifndef LLVA_TRANSFORMS_PASS_H
#define LLVA_TRANSFORMS_PASS_H

#include <memory>
#include <string>
#include <vector>

#include "ir/module.h"

namespace llva {

/** A transformation applied to one function at a time. */
class FunctionPass
{
  public:
    virtual ~FunctionPass() = default;

    /** Returns true if the function was modified. */
    virtual bool run(Function &f) = 0;

    virtual const char *name() const = 0;
};

/** A whole-module (interprocedural) transformation. */
class ModulePass
{
  public:
    virtual ~ModulePass() = default;

    virtual bool run(Module &m) = 0;

    virtual const char *name() const = 0;
};

/**
 * Runs a sequence of passes. Function passes are applied to every
 * defined function; module passes to the whole module. Optionally
 * verifies after each pass (used heavily in tests).
 */
class PassManager
{
  public:
    void
    add(std::unique_ptr<FunctionPass> p)
    {
        entries_.push_back({std::move(p), nullptr});
    }

    void
    add(std::unique_ptr<ModulePass> p)
    {
        entries_.push_back({nullptr, std::move(p)});
    }

    void setVerifyEach(bool v) { verifyEach_ = v; }

    /** Run all passes; returns true if anything changed. */
    bool run(Module &m);

    /** Names of passes that reported changes in the last run. */
    const std::vector<std::string> &changedPasses() const
    {
        return changed_;
    }

  private:
    struct Entry
    {
        std::unique_ptr<FunctionPass> fp;
        std::unique_ptr<ModulePass> mp;
    };
    std::vector<Entry> entries_;
    std::vector<std::string> changed_;
    bool verifyEach_ = false;
};

// Factory functions for the standard passes.
std::unique_ptr<FunctionPass> createMem2RegPass();
std::unique_ptr<FunctionPass> createSCCPPass();
std::unique_ptr<FunctionPass> createDCEPass();
std::unique_ptr<FunctionPass> createADCEPass();
std::unique_ptr<FunctionPass> createGVNPass();
std::unique_ptr<FunctionPass> createInstCombinePass();
std::unique_ptr<FunctionPass> createSimplifyCFGPass();
std::unique_ptr<ModulePass> createInlinerPass(unsigned threshold = 40);
/** Demote phis to stack slots (models naive front-end output). */
std::unique_ptr<FunctionPass> createReg2MemPass();
/**
 * Automatic Pool Allocation (Section 5.1): partition the heap into
 * one pool per disjoint data-structure instance found by the
 * points-to analysis.
 */
std::unique_ptr<ModulePass> createPoolAllocationPass();

/**
 * The standard optimization pipeline.
 *  - level 0: nothing.
 *  - level 1: mem2reg, instcombine, SCCP, GVN, ADCE, simplifycfg.
 *  - level 2: level 1 plus inlining and a second scalar round
 *    (the "link-time interprocedural" configuration of Section 4.2).
 */
void addStandardPasses(PassManager &pm, unsigned level);

} // namespace llva

#endif // LLVA_TRANSFORMS_PASS_H
