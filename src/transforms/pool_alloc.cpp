/**
 * @file
 * Automatic Pool Allocation (paper Section 5.1, reference [25]):
 * "a powerful interprocedural transformation that uses Data
 * Structure Analysis to partition the heap into separate pools for
 * each data structure instance."
 *
 * Simplified faithfully to this repository's DSA stand-in: the
 * unification-based points-to analysis identifies disjoint logical
 * data-structure instances; every malloc feeding one instance is
 * rewritten to allocate from that instance's pool
 * (`llva.poolalloc`), and frees of pointers into the instance go to
 * `llva.poolfree`. Pools hand out contiguous chunks, so each data
 * structure becomes spatially clustered — the locality property the
 * original transformation targets. Pool descriptors are module
 * globals (the full algorithm sinks create/destroy to the data
 * structure's lifetime; see DESIGN.md).
 */

#include <map>

#include "analysis/alias_analysis.h"
#include "ir/instructions.h"
#include "transforms/pass.h"

namespace llva {

namespace {

class PoolAllocation : public ModulePass
{
  public:
    const char *name() const override { return "poolalloc"; }

    PassResult
    run(Module &m, AnalysisManager &) override
    {
        Function *mallocFn = m.getFunction("malloc");
        if (!mallocFn)
            return PassResult::unchanged();
        Function *freeFn = m.getFunction("free");

        SteensgaardAnalysis dsa(m);

        // Group heap allocation sites by points-to class.
        std::map<unsigned, std::vector<CallInst *>> classes;
        for (const auto &f : m.functions()) {
            for (const auto &bb : *f) {
                for (const auto &inst : *bb) {
                    auto *call = dyn_cast<CallInst>(inst.get());
                    if (!call ||
                        call->calledFunction() != mallocFn)
                        continue;
                    unsigned cls = dsa.structureClass(call);
                    if (cls)
                        classes[cls].push_back(call);
                }
            }
        }
        if (classes.empty())
            return PassResult::unchanged();

        TypeContext &tc = m.types();
        auto *bytePtr = tc.pointerTo(tc.ubyteTy());
        auto *poolPtrTy = tc.pointerTo(tc.ulongTy());
        Function *poolAlloc = m.getOrInsertFunction(
            "llva.poolalloc",
            tc.functionOf(bytePtr, {poolPtrTy, tc.ulongTy()}));
        Function *poolFree = m.getOrInsertFunction(
            "llva.poolfree",
            tc.functionOf(tc.voidTy(), {poolPtrTy, bytePtr}));

        // One pool descriptor global per disjoint structure.
        std::map<unsigned, GlobalVariable *> pools;
        unsigned n = 0;
        for (const auto &[cls, sites] : classes) {
            pools[cls] = m.createGlobal(
                tc.ulongTy(), "pool." + std::to_string(n++),
                m.constantInt(tc.ulongTy(), 0), false,
                Linkage::Internal);
        }

        // Resolve each free's pool before rewriting mallocs (the
        // analysis maps the original values).
        std::vector<std::pair<CallInst *, GlobalVariable *>>
            free_rewrites;
        if (freeFn) {
            for (const auto &f : m.functions())
                for (const auto &bb : *f)
                    for (const auto &inst : *bb) {
                        auto *call =
                            dyn_cast<CallInst>(inst.get());
                        if (!call ||
                            call->calledFunction() != freeFn)
                            continue;
                        auto it = pools.find(
                            dsa.structureClass(call->arg(0)));
                        if (it != pools.end())
                            free_rewrites.emplace_back(
                                call, it->second);
                    }
        }

        // Rewrite mallocs.
        for (const auto &[cls, sites] : classes) {
            for (CallInst *call : sites) {
                auto *repl = new CallInst(
                    bytePtr, poolAlloc,
                    {pools[cls], call->arg(0)});
                repl->setName(call->name());
                call->parent()->insertBefore(
                    call, std::unique_ptr<Instruction>(repl));
                call->replaceAllUsesWith(repl);
                call->eraseFromParent();
            }
        }

        // Rewrite the resolved frees.
        for (auto &[call, pool] : free_rewrites) {
            auto *repl = new CallInst(tc.voidTy(), poolFree,
                                      {pool, call->arg(0)});
            call->parent()->insertBefore(
                call, std::unique_ptr<Instruction>(repl));
            call->eraseFromParent();
        }
        // Call rewriting keeps every CFG intact, but this pass also
        // rewrites entry blocks (pool descriptors) and creates
        // functions; claim nothing rather than rely on the module-
        // pass cache flush masking an over-broad declaration.
        return PassResult::modified(PreservedAnalyses::none());
    }
};

} // namespace

std::unique_ptr<ModulePass>
createPoolAllocationPass()
{
    return std::make_unique<PoolAllocation>();
}

} // namespace llva
