/**
 * @file
 * reg2mem: demote SSA phi values to stack slots — the inverse of
 * mem2reg. This models what a naive front-end emits before any
 * optimization (every cross-block value lives in memory), and is
 * the baseline for the "optimize before translation" ablation.
 */

#include <vector>

#include "ir/instructions.h"
#include "transforms/pass.h"

namespace llva {

namespace {

class Reg2Mem : public FunctionPass
{
  public:
    const char *name() const override { return "reg2mem"; }

    PassResult
    run(Function &f, AnalysisManager &) override
    {
        std::vector<PhiNode *> phis;
        for (auto &bb : f)
            for (auto &inst : *bb) {
                auto *phi = dyn_cast<PhiNode>(inst.get());
                if (!phi)
                    break;
                // An invoke result can only be named by the phi on
                // its normal edge, never stored before the invoke
                // itself — leave such phis alone.
                bool demotable = true;
                for (unsigned i = 0; i < phi->numIncoming(); ++i)
                    if (phi->incomingValue(i) ==
                        static_cast<Value *>(
                            phi->incomingBlock(i)->terminator()))
                        demotable = false;
                if (demotable)
                    phis.push_back(phi);
            }
        if (phis.empty())
            return PassResult::unchanged();

        BasicBlock *entry = f.entryBlock();
        for (PhiNode *phi : phis) {
            auto *slot = new AllocaInst(phi->type());
            slot->setName(phi->name() + ".slot");
            entry->insert(entry->begin(),
                          std::unique_ptr<Instruction>(slot));

            // Store each incoming value at the end of its edge's
            // source block.
            for (unsigned i = 0; i < phi->numIncoming(); ++i) {
                BasicBlock *pred = phi->incomingBlock(i);
                Instruction *term = pred->terminator();
                pred->insertBefore(
                    term, std::make_unique<StoreInst>(
                              phi->incomingValue(i), slot));
            }

            // The merged value becomes a load where the phi stood.
            auto *load = new LoadInst(slot);
            load->setName(phi->name());
            phi->parent()->insert(
                phi->parent()->firstNonPhi(),
                std::unique_ptr<Instruction>(load));
            phi->replaceAllUsesWith(load);
            phi->eraseFromParent();
        }
        // Demotion adds allocas/loads/stores but no blocks.
        return PassResult::modified(PreservedAnalyses::all());
    }
};

} // namespace

std::unique_ptr<FunctionPass>
createReg2MemPass()
{
    return std::make_unique<Reg2Mem>();
}

} // namespace llva
