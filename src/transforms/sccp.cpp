/**
 * @file
 * Sparse conditional constant propagation over LLVA's SSA form.
 * The explicit SSA def-use chains are exactly what makes the sparse
 * formulation possible on the persistent representation (paper
 * Section 3.1: SSA "allows for efficient 'sparse' algorithms for
 * global dataflow problems").
 */

#include <map>
#include <set>

#include "ir/instructions.h"
#include "transforms/const_fold.h"
#include "transforms/pass.h"

namespace llva {

namespace {

struct LatticeValue
{
    enum State { Unknown, Constant, Overdefined } state = Unknown;
    llva::Constant *constant = nullptr;
};

class SCCP : public FunctionPass
{
  public:
    const char *name() const override { return "sccp"; }

    PassResult
    run(Function &f, AnalysisManager &) override
    {
        values_.clear();
        executableBlocks_.clear();
        executableEdges_.clear();
        instWork_.clear();
        blockWork_.clear();

        mod_ = f.parent();

        // Arguments are runtime values.
        for (size_t i = 0; i < f.numArgs(); ++i)
            markOverdefined(f.arg(i));

        markBlockExecutable(f.entryBlock());
        while (!blockWork_.empty() || !instWork_.empty()) {
            while (!instWork_.empty()) {
                Instruction *inst = *instWork_.begin();
                instWork_.erase(instWork_.begin());
                if (executableBlocks_.count(inst->parent()))
                    visit(inst);
            }
            while (!blockWork_.empty()) {
                BasicBlock *bb = *blockWork_.begin();
                blockWork_.erase(blockWork_.begin());
                for (auto &inst : *bb)
                    visit(inst.get());
            }
        }

        // Rewrite proven constants.
        bool changed = false;
        for (auto &bb : f) {
            for (auto it = bb->begin(); it != bb->end();) {
                Instruction *inst = it->get();
                ++it;
                if (inst->type()->isVoid())
                    continue;
                // Note: a trapping op (div/rem with ExceptionsEnabled)
                // only reaches the Constant state when the fold was
                // proven safe (nonzero divisor), so rewriting is fine.
                auto lv = values_.find(inst);
                if (lv == values_.end() ||
                    lv->second.state != LatticeValue::Constant)
                    continue;
                if (inst->hasUses()) {
                    inst->replaceAllUsesWith(lv->second.constant);
                    changed = true;
                }
                if (!inst->hasSideEffects() && !inst->hasUses()) {
                    inst->eraseFromParent();
                    changed = true;
                }
            }
        }
        // SCCP proves constants but leaves branch folding to
        // SimplifyCFG, so the block graph is intact.
        return changed
                   ? PassResult::modified(PreservedAnalyses::all())
                   : PassResult::unchanged();
    }

  private:
    LatticeValue
    lattice(Value *v)
    {
        if (auto *c = dyn_cast<Constant>(v)) {
            if (isa<ConstantUndef>(c))
                return {LatticeValue::Unknown, nullptr};
            return {LatticeValue::Constant, c};
        }
        auto it = values_.find(v);
        if (it != values_.end())
            return it->second;
        return {LatticeValue::Unknown, nullptr};
    }

    void
    markOverdefined(Value *v)
    {
        LatticeValue &lv = values_[v];
        if (lv.state == LatticeValue::Overdefined)
            return;
        lv.state = LatticeValue::Overdefined;
        lv.constant = nullptr;
        notifyUsers(v);
    }

    void
    markConstant(Value *v, Constant *c)
    {
        LatticeValue &lv = values_[v];
        if (lv.state == LatticeValue::Constant && lv.constant == c)
            return;
        if (lv.state == LatticeValue::Overdefined)
            return;
        if (lv.state == LatticeValue::Constant && lv.constant != c) {
            markOverdefined(v);
            return;
        }
        lv.state = LatticeValue::Constant;
        lv.constant = c;
        notifyUsers(v);
    }

    void
    notifyUsers(Value *v)
    {
        for (User *u : v->users())
            if (auto *inst = dyn_cast<Instruction>(u))
                instWork_.insert(inst);
    }

    void
    markBlockExecutable(BasicBlock *bb)
    {
        if (executableBlocks_.insert(bb).second)
            blockWork_.insert(bb);
    }

    void
    markEdgeExecutable(BasicBlock *from, BasicBlock *to)
    {
        if (!executableEdges_.insert({from, to}).second)
            return;
        markBlockExecutable(to);
        // Phi nodes in `to` must be re-evaluated.
        for (auto &inst : *to) {
            if (!isa<PhiNode>(inst.get()))
                break;
            instWork_.insert(inst.get());
        }
    }

    void
    visit(Instruction *inst)
    {
        switch (inst->opcode()) {
          case Opcode::Phi:
            visitPhi(cast<PhiNode>(inst));
            return;
          case Opcode::Br:
            visitBranch(cast<BranchInst>(inst));
            return;
          case Opcode::MBr:
            visitMBr(cast<MBrInst>(inst));
            return;
          case Opcode::Invoke: {
            auto *iv = cast<InvokeInst>(inst);
            markEdgeExecutable(inst->parent(), iv->normalDest());
            markEdgeExecutable(inst->parent(), iv->unwindDest());
            if (!inst->type()->isVoid())
                markOverdefined(inst);
            return;
          }
          case Opcode::Ret:
          case Opcode::Unwind:
          case Opcode::Store:
            return;
          case Opcode::Call:
          case Opcode::Load:
          case Opcode::Alloca:
          case Opcode::GetElementPtr:
            if (!inst->type()->isVoid())
                markOverdefined(inst);
            return;
          default:
            break;
        }

        // Foldable scalar operation: meet over operand lattice.
        bool any_overdefined = false, all_constant = true;
        for (size_t i = 0; i < inst->numOperands(); ++i) {
            LatticeValue lv = lattice(inst->operand(i));
            if (lv.state == LatticeValue::Overdefined)
                any_overdefined = true;
            if (lv.state != LatticeValue::Constant)
                all_constant = false;
        }
        if (all_constant) {
            // Build a shadow fold using the lattice constants.
            Constant *folded = nullptr;
            if (inst->isBinaryOp() || inst->isComparison()) {
                folded = foldBinary(*mod_, inst->opcode(),
                                    latticeConst(inst->operand(0)),
                                    latticeConst(inst->operand(1)));
            } else if (inst->opcode() == Opcode::Cast) {
                folded = foldCast(*mod_,
                                  latticeConst(inst->operand(0)),
                                  inst->type());
            }
            if (folded)
                markConstant(inst, folded);
            else
                markOverdefined(inst);
            return;
        }
        if (any_overdefined)
            markOverdefined(inst);
        // else: still unknown — wait for operands.
    }

    Constant *
    latticeConst(Value *v)
    {
        LatticeValue lv = lattice(v);
        LLVA_ASSERT(lv.state == LatticeValue::Constant,
                    "operand is not constant");
        return lv.constant;
    }

    void
    visitPhi(PhiNode *phi)
    {
        Constant *common = nullptr;
        bool overdefined = false;
        for (unsigned i = 0; i < phi->numIncoming(); ++i) {
            if (!executableEdges_.count(
                    {phi->incomingBlock(i), phi->parent()}))
                continue;
            LatticeValue lv = lattice(phi->incomingValue(i));
            if (lv.state == LatticeValue::Overdefined) {
                overdefined = true;
                break;
            }
            if (lv.state == LatticeValue::Unknown)
                continue;
            if (common && common != lv.constant) {
                overdefined = true;
                break;
            }
            common = lv.constant;
        }
        if (overdefined)
            markOverdefined(phi);
        else if (common)
            markConstant(phi, common);
    }

    void
    visitBranch(BranchInst *br)
    {
        BasicBlock *bb = br->parent();
        if (!br->isConditional()) {
            markEdgeExecutable(bb, br->target(0));
            return;
        }
        LatticeValue lv = lattice(br->condition());
        if (lv.state == LatticeValue::Constant) {
            auto *ci = cast<ConstantInt>(lv.constant);
            markEdgeExecutable(bb, br->target(ci->isZero() ? 1 : 0));
        } else if (lv.state == LatticeValue::Overdefined) {
            markEdgeExecutable(bb, br->target(0));
            markEdgeExecutable(bb, br->target(1));
        }
    }

    void
    visitMBr(MBrInst *mbr)
    {
        BasicBlock *bb = mbr->parent();
        LatticeValue lv = lattice(mbr->condition());
        if (lv.state == LatticeValue::Constant) {
            auto *ci = cast<ConstantInt>(lv.constant);
            for (unsigned i = 0; i < mbr->numCases(); ++i) {
                if (mbr->caseValue(i)->bits() == ci->bits()) {
                    markEdgeExecutable(bb, mbr->caseDest(i));
                    return;
                }
            }
            markEdgeExecutable(bb, mbr->defaultDest());
        } else if (lv.state == LatticeValue::Overdefined) {
            markEdgeExecutable(bb, mbr->defaultDest());
            for (unsigned i = 0; i < mbr->numCases(); ++i)
                markEdgeExecutable(bb, mbr->caseDest(i));
        }
    }

    Module *mod_ = nullptr;
    std::map<Value *, LatticeValue> values_;
    std::set<BasicBlock *> executableBlocks_;
    std::set<std::pair<BasicBlock *, BasicBlock *>> executableEdges_;
    std::set<Instruction *> instWork_;
    std::set<BasicBlock *> blockWork_;
};

} // namespace

std::unique_ptr<FunctionPass>
createSCCPPass()
{
    return std::make_unique<SCCP>();
}

} // namespace llva
