/**
 * @file
 * CFG simplification: folds branches on constants, deletes
 * unreachable blocks, and merges straight-line block chains.
 */

#include <set>

#include "ir/instructions.h"
#include "transforms/pass.h"

namespace llva {

namespace {

/** Remove \p pred's incoming entries from all phis in \p bb. */
void
removePhiEntriesFor(BasicBlock *bb, BasicBlock *pred)
{
    for (auto &inst : *bb) {
        auto *phi = dyn_cast<PhiNode>(inst.get());
        if (!phi)
            break;
        int idx = phi->incomingIndexFor(pred);
        if (idx >= 0)
            phi->removeIncoming(static_cast<unsigned>(idx));
    }
}

class SimplifyCFG : public FunctionPass
{
  public:
    const char *name() const override { return "simplifycfg"; }

    PassResult
    run(Function &f, AnalysisManager &) override
    {
        bool changed = false;
        bool local = true;
        while (local) {
            local = false;
            local |= foldConstantBranches(f);
            local |= removeUnreachable(f);
            local |= mergeChains(f);
            local |= simplifyTrivialPhis(f);
            changed |= local;
        }
        // Any change here is a CFG change: blocks were deleted or
        // merged, so cached dominators and loops are stale.
        return changed
                   ? PassResult::modified(PreservedAnalyses::none())
                   : PassResult::unchanged();
    }

  private:
    bool
    foldConstantBranches(Function &f)
    {
        bool changed = false;
        for (auto &bb : f) {
            Instruction *term = bb->terminator();
            if (!term)
                continue;
            TypeContext &tc = f.functionType()->context();

            if (auto *br = dyn_cast<BranchInst>(term)) {
                if (!br->isConditional())
                    continue;
                BasicBlock *t = br->target(0), *fb = br->target(1);
                if (t == fb) {
                    replaceTerminator(bb.get(),
                                      new BranchInst(tc, t));
                    changed = true;
                    continue;
                }
                auto *ci = dyn_cast<ConstantInt>(br->condition());
                if (!ci)
                    continue;
                BasicBlock *live = ci->isZero() ? fb : t;
                BasicBlock *dead = ci->isZero() ? t : fb;
                replaceTerminator(bb.get(), new BranchInst(tc, live));
                if (!isPredecessor(bb.get(), dead))
                    removePhiEntriesFor(dead, bb.get());
                changed = true;
            } else if (auto *mbr = dyn_cast<MBrInst>(term)) {
                auto *ci = dyn_cast<ConstantInt>(mbr->condition());
                if (!ci)
                    continue;
                BasicBlock *live = mbr->defaultDest();
                for (unsigned i = 0; i < mbr->numCases(); ++i)
                    if (mbr->caseValue(i)->bits() == ci->bits())
                        live = mbr->caseDest(i);
                std::set<BasicBlock *> targets;
                targets.insert(mbr->defaultDest());
                for (unsigned i = 0; i < mbr->numCases(); ++i)
                    targets.insert(mbr->caseDest(i));
                replaceTerminator(bb.get(), new BranchInst(tc, live));
                for (BasicBlock *target : targets)
                    if (target != live &&
                        !isPredecessor(bb.get(), target))
                        removePhiEntriesFor(target, bb.get());
                changed = true;
            }
        }
        return changed;
    }

    static bool
    isPredecessor(BasicBlock *pred, BasicBlock *bb)
    {
        for (BasicBlock *p : bb->predecessors())
            if (p == pred)
                return true;
        return false;
    }

    void
    replaceTerminator(BasicBlock *bb, Instruction *repl)
    {
        bb->erase(bb->terminator());
        bb->append(std::unique_ptr<Instruction>(repl));
    }

    bool
    removeUnreachable(Function &f)
    {
        std::set<BasicBlock *> reachable;
        std::vector<BasicBlock *> work{f.entryBlock()};
        reachable.insert(f.entryBlock());
        while (!work.empty()) {
            BasicBlock *bb = work.back();
            work.pop_back();
            for (BasicBlock *succ : bb->successors())
                if (reachable.insert(succ).second)
                    work.push_back(succ);
        }
        std::vector<BasicBlock *> dead;
        for (auto &bb : f)
            if (!reachable.count(bb.get()))
                dead.push_back(bb.get());
        if (dead.empty())
            return false;

        // Detach phi entries in reachable blocks, then clear bodies
        // (which drops cross-references among dead blocks), then
        // erase.
        for (BasicBlock *bb : dead)
            for (BasicBlock *succ : bb->successors())
                if (reachable.count(succ))
                    removePhiEntriesFor(succ, bb);
        for (BasicBlock *bb : dead) {
            // Any stray uses of dead instructions from other dead
            // blocks disappear with clear(); uses from reachable code
            // cannot exist (defs must dominate uses).
            for (auto &inst : *bb)
                if (inst->hasUses())
                    inst->replaceAllUsesWith(
                        f.parent()->constantUndef(inst->type()));
            bb->clear();
        }
        for (BasicBlock *bb : dead)
            f.eraseBlock(bb);
        return true;
    }

    bool
    mergeChains(Function &f)
    {
        bool changed = false;
        for (auto it = f.begin(); it != f.end();) {
            BasicBlock *bb = it->get();
            ++it;
            if (bb == f.entryBlock())
                continue;
            std::vector<BasicBlock *> preds = bb->predecessors();
            if (preds.size() != 1)
                continue;
            BasicBlock *pred = preds[0];
            if (pred == bb)
                continue;
            auto *br = dyn_cast<BranchInst>(pred->terminator());
            if (!br || br->isConditional())
                continue;
            LLVA_ASSERT(br->target(0) == bb, "CFG inconsistency");

            // Phis in bb have exactly one incoming (from pred).
            for (auto pit = bb->begin(); pit != bb->end();) {
                auto *phi = dyn_cast<PhiNode>(pit->get());
                if (!phi)
                    break;
                ++pit;
                phi->replaceAllUsesWith(phi->incomingValue(0));
                phi->eraseFromParent();
            }

            // Splice bb's instructions into pred.
            pred->erase(pred->terminator());
            while (!bb->empty()) {
                std::unique_ptr<Instruction> inst =
                    bb->remove(bb->front());
                inst->setParent(pred);
                pred->append(std::move(inst));
            }
            // Successor phis must now name pred as the incoming block.
            bb->replaceAllUsesWith(pred);
            f.eraseBlock(bb);
            changed = true;
            it = f.begin(); // iterator invalidated; restart
        }
        return changed;
    }

    bool
    simplifyTrivialPhis(Function &f)
    {
        bool changed = false;
        for (auto &bb : f) {
            for (auto it = bb->begin(); it != bb->end();) {
                auto *phi = dyn_cast<PhiNode>(it->get());
                if (!phi)
                    break;
                ++it;
                if (phi->numIncoming() == 1) {
                    phi->replaceAllUsesWith(phi->incomingValue(0));
                    phi->eraseFromParent();
                    changed = true;
                }
            }
        }
        return changed;
    }
};

} // namespace

std::unique_ptr<FunctionPass>
createSimplifyCFGPass()
{
    return std::make_unique<SimplifyCFG>();
}

} // namespace llva
