#include "verifier/verifier.h"

#include <algorithm>
#include <set>
#include <sstream>

#include "analysis/dominators.h"
#include "ir/instructions.h"

namespace llva {

namespace {

class FunctionVerifier
{
  public:
    FunctionVerifier(const Function &f, VerifyResult &result)
        : f_(f), result_(result)
    {}

    void
    run()
    {
        if (f_.isDeclaration())
            return;
        checkBlocks();
        if (!result_.errors.empty())
            return; // structural errors make SSA checks unreliable
        checkSSADominance();
    }

  private:
    void
    error(const Instruction *inst, const std::string &msg)
    {
        std::ostringstream os;
        os << "in %" << f_.name();
        if (inst && inst->parent())
            os << ", block %" << inst->parent()->name();
        os << ": " << msg;
        result_.errors.push_back(os.str());
    }

    void
    checkBlocks()
    {
        if (!f_.entryBlock()->predecessors().empty())
            error(nullptr, "entry block has predecessors");

        for (const auto &bb : f_) {
            if (bb->empty()) {
                error(nullptr, "block %" + bb->name() + " is empty");
                continue;
            }
            // Exactly one terminator, and it is last.
            size_t idx = 0, n = bb->size();
            for (const auto &inst : *bb) {
                bool is_last = (++idx == n);
                if (inst->isTerminator() != is_last) {
                    error(inst.get(),
                          is_last ? "block does not end in a terminator"
                                  : "terminator in mid-block");
                }
            }
            checkPhis(bb.get());
            for (const auto &inst : *bb)
                checkInstruction(inst.get());
        }
    }

    void
    checkPhis(const BasicBlock *bb)
    {
        std::vector<BasicBlock *> preds = bb->predecessors();
        bool seen_non_phi = false;
        for (const auto &inst : *bb) {
            auto *phi = dyn_cast<PhiNode>(inst.get());
            if (!phi) {
                seen_non_phi = true;
                continue;
            }
            if (seen_non_phi)
                error(phi, "phi node not grouped at block head");
            if (bb == f_.entryBlock())
                error(phi, "phi node in entry block");

            // One incoming value per predecessor, no extras.
            std::set<const BasicBlock *> seen;
            for (unsigned i = 0; i < phi->numIncoming(); ++i) {
                const BasicBlock *in = phi->incomingBlock(i);
                if (!seen.insert(in).second)
                    error(phi, "phi has duplicate incoming block %" +
                                   in->name());
                if (std::find(preds.begin(), preds.end(), in) ==
                    preds.end())
                    error(phi, "phi incoming block %" + in->name() +
                                   " is not a predecessor");
                if (phi->incomingValue(i)->type() != phi->type())
                    error(phi, "phi incoming value type mismatch");
            }
            for (const BasicBlock *pred : preds)
                if (!seen.count(pred))
                    error(phi, "phi missing incoming value for "
                               "predecessor %" +
                                   pred->name());
        }
    }

    void
    typeError(const Instruction *inst, const char *what)
    {
        error(inst, std::string(inst->opcodeStr()) + ": " + what);
    }

    void
    checkInstruction(const Instruction *inst)
    {
        // Generic operand sanity.
        for (size_t i = 0; i < inst->numOperands(); ++i) {
            if (!inst->operand(i)) {
                typeError(inst, "null operand");
                return;
            }
        }

        switch (inst->opcode()) {
          case Opcode::Add:
          case Opcode::Sub:
          case Opcode::Mul:
          case Opcode::Div:
          case Opcode::Rem: {
            auto *b = cast<BinaryOperator>(inst);
            Type *t = b->lhs()->type();
            if (!t->isInteger() && !t->isFloatingPoint())
                typeError(inst, "operands must be numeric");
            if (b->rhs()->type() != t)
                typeError(inst, "operand types differ");
            if (inst->type() != t)
                typeError(inst, "result type mismatch");
            break;
          }
          case Opcode::And:
          case Opcode::Or:
          case Opcode::Xor: {
            auto *b = cast<BinaryOperator>(inst);
            Type *t = b->lhs()->type();
            if (!t->isInteger() && !t->isBool())
                typeError(inst, "operands must be integral");
            if (b->rhs()->type() != t)
                typeError(inst, "operand types differ");
            break;
          }
          case Opcode::Shl:
          case Opcode::Shr: {
            auto *b = cast<BinaryOperator>(inst);
            if (!b->lhs()->type()->isInteger())
                typeError(inst, "shifted value must be integer");
            if (b->rhs()->type()->kind() != TypeKind::UByte)
                typeError(inst, "shift amount must be ubyte");
            break;
          }
          case Opcode::SetEQ:
          case Opcode::SetNE:
          case Opcode::SetLT:
          case Opcode::SetGT:
          case Opcode::SetLE:
          case Opcode::SetGE: {
            auto *s = cast<SetCondInst>(inst);
            Type *t = s->lhs()->type();
            if (!t->isScalar())
                typeError(inst, "operands must be scalar");
            if (s->rhs()->type() != t)
                typeError(inst, "operand types differ");
            if (!inst->type()->isBool())
                typeError(inst, "result must be bool");
            break;
          }
          case Opcode::Ret: {
            auto *r = cast<ReturnInst>(inst);
            Type *expected = f_.returnType();
            if (expected->isVoid()) {
                if (r->returnValue())
                    typeError(inst, "value returned from void function");
            } else if (!r->returnValue()) {
                typeError(inst, "missing return value");
            } else if (r->returnValue()->type() != expected) {
                typeError(inst, "return value type mismatch");
            }
            break;
          }
          case Opcode::Br: {
            auto *b = cast<BranchInst>(inst);
            if (b->isConditional() &&
                !b->condition()->type()->isBool())
                typeError(inst, "condition must be bool");
            break;
          }
          case Opcode::MBr: {
            auto *m = cast<MBrInst>(inst);
            Type *t = m->condition()->type();
            if (!t->isInteger())
                typeError(inst, "mbr value must be integer");
            std::set<uint64_t> cases;
            for (unsigned i = 0; i < m->numCases(); ++i) {
                if (m->caseValue(i)->type() != t)
                    typeError(inst, "case type mismatch");
                if (!cases.insert(m->caseValue(i)->bits()).second)
                    typeError(inst, "duplicate case value");
            }
            break;
          }
          case Opcode::Invoke:
          case Opcode::Call:
            checkCallLike(inst);
            break;
          case Opcode::Unwind:
            break;
          case Opcode::Load: {
            auto *l = cast<LoadInst>(inst);
            auto *pt = dyn_cast<PointerType>(l->pointer()->type());
            if (!pt) {
                typeError(inst, "operand must be a pointer");
            } else {
                if (!pt->pointee()->isFirstClass())
                    typeError(inst, "loaded type must be scalar");
                if (inst->type() != pt->pointee())
                    typeError(inst, "result type mismatch");
            }
            break;
          }
          case Opcode::Store: {
            auto *s = cast<StoreInst>(inst);
            auto *pt = dyn_cast<PointerType>(s->pointer()->type());
            if (!pt) {
                typeError(inst, "destination must be a pointer");
            } else {
                if (!pt->pointee()->isFirstClass())
                    typeError(inst, "stored type must be scalar");
                if (s->value()->type() != pt->pointee())
                    typeError(inst, "stored value type mismatch");
            }
            break;
          }
          case Opcode::GetElementPtr:
            checkGEP(cast<GetElementPtrInst>(inst));
            break;
          case Opcode::Alloca: {
            auto *a = cast<AllocaInst>(inst);
            if (a->arraySize() &&
                !a->arraySize()->type()->isInteger())
                typeError(inst, "array size must be integer");
            if (!inst->type()->isPointer())
                typeError(inst, "result must be pointer");
            break;
          }
          case Opcode::Cast: {
            auto *c = cast<CastInst>(inst);
            Type *src = c->value()->type();
            Type *dst = c->type();
            if (!src->isScalar() || !dst->isScalar())
                typeError(inst, "cast requires scalar types");
            // Pointer <-> FP conversions are not meaningful.
            if ((src->isPointer() && dst->isFloatingPoint()) ||
                (src->isFloatingPoint() && dst->isPointer()))
                typeError(inst, "cannot cast between pointer and FP");
            break;
          }
          case Opcode::Phi:
            break; // handled in checkPhis
        }
    }

    void
    checkCallLike(const Instruction *inst)
    {
        Value *callee;
        std::vector<Value *> args;
        if (auto *c = dyn_cast<CallInst>(inst)) {
            callee = c->callee();
            for (unsigned i = 0; i < c->numArgs(); ++i)
                args.push_back(c->arg(i));
        } else {
            auto *iv = cast<InvokeInst>(inst);
            callee = iv->callee();
            for (unsigned i = 0; i < iv->numArgs(); ++i)
                args.push_back(iv->arg(i));
        }

        auto *pt = dyn_cast<PointerType>(callee->type());
        auto *ft = pt ? dyn_cast<FunctionType>(pt->pointee()) : nullptr;
        if (!ft) {
            typeError(inst, "callee is not a function");
            return;
        }
        if (inst->type() != ft->returnType())
            typeError(inst, "result type does not match callee return");
        if (args.size() < ft->numParams() ||
            (args.size() > ft->numParams() && !ft->isVarArg())) {
            typeError(inst, "argument count mismatch");
            return;
        }
        for (size_t i = 0; i < ft->numParams(); ++i)
            if (args[i]->type() != ft->paramType(i))
                typeError(inst, "argument type mismatch");
    }

    void
    checkGEP(const GetElementPtrInst *gep)
    {
        auto *pt = dyn_cast<PointerType>(gep->pointer()->type());
        if (!pt) {
            typeError(gep, "base must be a pointer");
            return;
        }
        if (gep->numIndices() == 0) {
            typeError(gep, "requires at least one index");
            return;
        }
        Type *cur = pt->pointee();
        for (unsigned i = 0; i < gep->numIndices(); ++i) {
            Value *idx = gep->index(i);
            if (i == 0) {
                if (!idx->type()->isInteger())
                    typeError(gep, "index must be integer");
                continue;
            }
            if (auto *at = dyn_cast<ArrayType>(cur)) {
                if (!idx->type()->isInteger())
                    typeError(gep, "array index must be integer");
                cur = at->element();
            } else if (auto *st = dyn_cast<StructType>(cur)) {
                auto *ci = dyn_cast<ConstantInt>(idx);
                if (!ci ||
                    ci->type()->kind() != TypeKind::UByte) {
                    typeError(gep,
                              "struct index must be constant ubyte");
                    return;
                }
                if (ci->zext() >= st->numFields()) {
                    typeError(gep, "struct index out of range");
                    return;
                }
                cur = st->field(static_cast<size_t>(ci->zext()));
            } else {
                typeError(gep, "cannot index into scalar type");
                return;
            }
        }
        auto *expect = cur->context().pointerTo(cur);
        if (gep->type() != expect)
            typeError(gep, "result type mismatch");
    }

    void
    checkSSADominance()
    {
        DominatorTree dt(f_);
        for (const auto &bb : f_) {
            if (!dt.reachable(bb.get()))
                continue; // dead code: dominance is vacuous
            for (const auto &inst : *bb) {
                for (size_t op = 0; op < inst->numOperands(); ++op) {
                    auto *def =
                        dyn_cast<Instruction>(inst->operand(op));
                    if (!def)
                        continue;
                    if (def->function() != &f_) {
                        error(inst.get(),
                              "operand defined in another function");
                        continue;
                    }
                    if (!dt.dominates(def, inst.get(),
                                      static_cast<unsigned>(op)))
                        error(inst.get(),
                              "use of %" + def->name() +
                                  " is not dominated by its "
                                  "definition");
                }
            }
        }
    }

    const Function &f_;
    VerifyResult &result_;
};

} // namespace

std::string
VerifyResult::str() const
{
    std::string s;
    for (const auto &e : errors) {
        s += e;
        s += '\n';
    }
    return s;
}

VerifyResult
verifyFunction(const Function &f)
{
    VerifyResult r;
    FunctionVerifier(f, r).run();
    return r;
}

VerifyResult
verifyModule(const Module &m)
{
    VerifyResult r;
    for (const auto &f : m.functions())
        FunctionVerifier(*f, r).run();
    return r;
}

void
verifyOrDie(const Module &m)
{
    VerifyResult r = verifyModule(m);
    if (!r.ok())
        fatal("module '%s' failed verification:\n%s", m.name().c_str(),
              r.str().c_str());
}

} // namespace llva
