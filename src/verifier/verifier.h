/**
 * @file
 * The LLVA verifier: checks the structural, type, and SSA rules that
 * make virtual object code analyzable (paper Section 3.1 — "All
 * instructions in the V-ISA have strict type rules").
 *
 * Checks performed:
 *  - every block ends in exactly one terminator, and only one;
 *  - phi nodes are grouped at block heads and have exactly one
 *    incoming entry per CFG predecessor;
 *  - operand types obey each opcode's typing rule (no implicit
 *    coercions anywhere);
 *  - every SSA definition dominates each of its uses (phi uses are
 *    checked against the incoming edge);
 *  - call/invoke argument lists match the callee's function type;
 *  - entry blocks have no predecessors and no phis.
 */

#ifndef LLVA_VERIFIER_VERIFIER_H
#define LLVA_VERIFIER_VERIFIER_H

#include <string>
#include <vector>

#include "ir/module.h"

namespace llva {

/** Result of verification: empty errors means the module is valid. */
struct VerifyResult
{
    std::vector<std::string> errors;

    bool ok() const { return errors.empty(); }

    /** All errors joined with newlines. */
    std::string str() const;
};

/** Verify a whole module. */
VerifyResult verifyModule(const Module &m);

/** Verify a single function. */
VerifyResult verifyFunction(const Function &f);

/** Verify and fatal() with the error list if invalid. */
void verifyOrDie(const Module &m);

} // namespace llva

#endif // LLVA_VERIFIER_VERIFIER_H
