#include "vm/chain.h"

#include "support/statistic.h"

namespace llva {

namespace {

Statistic NumSuperblockLinks(
    "vm.superblock_links",
    "Superblock side exits and fallthroughs patched to successors");

Statistic NumSuperblockUnlinks(
    "vm.superblock_unlinks",
    "Chained functions unlinked on invalidate()/SMC retirement");

} // namespace

ChainedFunction::ChainedFunction(const MachineFunction *mf,
                                 Target &target)
    : mf_(mf), target_(target), blocks_(mf->blocks().size())
{}

ChainedBlock *
ChainedFunction::blockFor(MachineBasicBlock *mbb)
{
    LLVA_ASSERT(mbb->parent() == mf_,
                "chaining a block of another function");
    // Executors read the slot lock-free; a non-null pointer was
    // release-published after the block was fully built.
    ChainedBlock *cb =
        blocks_[mbb->index()].load(std::memory_order_acquire);
    return cb ? cb : buildBlock(mbb);
}

ChainedBlock *
ChainedFunction::buildBlock(MachineBasicBlock *mbb)
{
    std::lock_guard<std::mutex> lock(mu_);
    ChainedBlock *cb =
        blocks_[mbb->index()].load(std::memory_order_relaxed);
    if (cb)
        return cb; // lost the build race; reuse the winner
    auto built = std::make_unique<ChainedBlock>();
    built->mbb = mbb;
    built->id = BlockId{mf_->nameHash(), mbb->nameHash()};
    built->code.resize(mbb->instrs().size());
    size_t i = 0;
    for (const auto &mi : mbb->instrs()) {
        ChainedInstr &ci = built->code[i++];
        ci.mi = mi.get();
        ExecFn fn = mi->exec.load(std::memory_order_relaxed);
        if (!fn) {
            fn = target_.handlerFor(*mi);
            mi->exec.store(fn, std::memory_order_relaxed);
        }
        ci.fn = fn;
    }
    cb = built.get();
    owned_.push_back(std::move(built));
    blocks_[mbb->index()].store(cb, std::memory_order_release);
    return cb;
}

ChainedBlock *
ChainedFunction::entry()
{
    return blockFor(mf_->blocks().front().get());
}

ChainedBlock *
ChainedFunction::linkFallthrough(ChainedBlock *cb)
{
    size_t next = cb->mbb->index() + 1;
    LLVA_ASSERT(next < mf_->blocks().size(),
                "machine function fell off the end (%s)",
                mf_->name().c_str());
    ChainedBlock *succ = blockFor(mf_->blocks()[next].get());
    std::lock_guard<std::mutex> lock(mu_);
    if (!unlinked_.load(std::memory_order_relaxed)) {
        if (!cb->fall.load(std::memory_order_relaxed))
            links_.fetch_add(1, std::memory_order_relaxed);
        cb->fall.store(succ, std::memory_order_release);
        ++NumSuperblockLinks;
    }
    return succ;
}

ChainedBlock *
ChainedFunction::linkBranch(ChainedInstr &ci,
                            MachineBasicBlock *target)
{
    ChainedBlock *succ = blockFor(target);
    std::lock_guard<std::mutex> lock(mu_);
    if (!unlinked_.load(std::memory_order_relaxed)) {
        if (!ci.link.load(std::memory_order_relaxed))
            links_.fetch_add(1, std::memory_order_relaxed);
        ci.link.store(succ, std::memory_order_release);
        ++NumSuperblockLinks;
    }
    return succ;
}

void
ChainedFunction::unlink()
{
    std::lock_guard<std::mutex> lock(mu_);
    for (auto &slot : blocks_) {
        ChainedBlock *cb = slot.load(std::memory_order_relaxed);
        if (!cb)
            continue;
        cb->fall.store(nullptr, std::memory_order_release);
        for (ChainedInstr &ci : cb->code)
            ci.link.store(nullptr, std::memory_order_release);
    }
    links_.store(0, std::memory_order_relaxed);
    unlinked_.store(true, std::memory_order_release);
    ++NumSuperblockUnlinks;
}

} // namespace llva
