#include "vm/chain.h"

#include "support/statistic.h"

namespace llva {

namespace {

Statistic NumSuperblockLinks(
    "vm.superblock_links",
    "Superblock side exits and fallthroughs patched to successors");

Statistic NumSuperblockUnlinks(
    "vm.superblock_unlinks",
    "Chained functions unlinked on invalidate()/SMC retirement");

} // namespace

ChainedFunction::ChainedFunction(const MachineFunction *mf,
                                 Target &target)
    : mf_(mf), target_(target)
{
    blocks_.resize(mf->blocks().size());
}

ChainedBlock *
ChainedFunction::blockFor(MachineBasicBlock *mbb)
{
    LLVA_ASSERT(mbb->parent() == mf_,
                "chaining a block of another function");
    auto &slot = blocks_[mbb->index()];
    if (!slot) {
        auto cb = std::make_unique<ChainedBlock>();
        cb->mbb = mbb;
        cb->id = BlockId{mf_->nameHash(), mbb->nameHash()};
        cb->code.reserve(mbb->instrs().size());
        for (const auto &mi : mbb->instrs()) {
            ChainedInstr ci;
            ci.mi = mi.get();
            ci.fn = mi->exec ? mi->exec
                             : (mi->exec = target_.handlerFor(*mi));
            cb->code.push_back(ci);
        }
        slot = std::move(cb);
    }
    return slot.get();
}

ChainedBlock *
ChainedFunction::entry()
{
    return blockFor(mf_->blocks().front().get());
}

ChainedBlock *
ChainedFunction::linkFallthrough(ChainedBlock *cb)
{
    size_t next = cb->mbb->index() + 1;
    LLVA_ASSERT(next < mf_->blocks().size(),
                "machine function fell off the end (%s)",
                mf_->name().c_str());
    ChainedBlock *succ = blockFor(mf_->blocks()[next].get());
    if (!unlinked_) {
        cb->fall = succ;
        ++links_;
        ++NumSuperblockLinks;
    }
    return succ;
}

ChainedBlock *
ChainedFunction::linkBranch(ChainedInstr &ci,
                            MachineBasicBlock *target)
{
    ChainedBlock *succ = blockFor(target);
    if (!unlinked_) {
        if (!ci.link)
            ++links_;
        ci.link = succ;
        ++NumSuperblockLinks;
    }
    return succ;
}

void
ChainedFunction::unlink()
{
    for (auto &cb : blocks_) {
        if (!cb)
            continue;
        cb->fall = nullptr;
        for (ChainedInstr &ci : cb->code)
            ci.link = nullptr;
    }
    links_ = 0;
    unlinked_ = true;
    ++NumSuperblockUnlinks;
}

} // namespace llva
