/**
 * @file
 * Superblock chaining for the trace tier (ROADMAP item 3, after the
 * shape of JCPU's block-chaining VM). Once a function reaches
 * `-O2+traces`, its machine blocks — the trace-laid-out superblocks
 * — are flattened into arrays of (instruction, resolved handler)
 * pairs, and each side exit is linked directly to its successor's
 * chained form the first time it is taken. Hot paths then run
 * dispatch-loop-free: one indirect call per instruction, one
 * pointer hop per block transition, no map lookups and no name
 * hashing.
 *
 * Links are intra-function and patched lazily; invalidate()/SMC
 * retirement unlinks the whole chained function (every patched
 * side exit and fallthrough is severed) so no future execution can
 * chain into a retired body. The ChainedFunction itself is retired,
 * not destroyed, for the same reason MachineFunctions are: a live
 * activation may still be executing inside it.
 *
 * Thread safety: several simulator threads may execute through one
 * chain while another builds blocks, patches links, or unlinks it
 * (concurrent SMC replacement). Link fields are atomic pointers —
 * a reader either sees a fully built successor (release-published)
 * or null and falls back to the slow resolution path — and all
 * structural mutation (lazy block build, link patching, unlink) is
 * serialized by an internal mutex.
 */

#ifndef LLVA_VM_CHAIN_H
#define LLVA_VM_CHAIN_H

#include <atomic>
#include <memory>
#include <mutex>
#include <vector>

#include "codegen/target.h"
#include "trace/profile.h"

namespace llva {

class ChainedFunction;
struct ChainedBlock;

/** One instruction slot of a chained superblock. */
struct ChainedInstr
{
    const MachineInstr *mi = nullptr;
    ExecFn fn = nullptr; ///< resolved at chain-build time
    /** Patched side-exit successor (atomic: raced by executors). */
    std::atomic<ChainedBlock *> link{nullptr};

    ChainedInstr() = default;
    ChainedInstr(const ChainedInstr &o)
        : mi(o.mi), fn(o.fn),
          link(o.link.load(std::memory_order_relaxed))
    {}
    ChainedInstr &
    operator=(const ChainedInstr &o)
    {
        mi = o.mi;
        fn = o.fn;
        link.store(o.link.load(std::memory_order_relaxed),
                   std::memory_order_relaxed);
        return *this;
    }
};

/** The chained form of one machine basic block. */
struct ChainedBlock
{
    MachineBasicBlock *mbb = nullptr;
    BlockId id; ///< cached stable profile ID
    std::vector<ChainedInstr> code;
    /** Patched fallthrough successor (atomic: raced by executors). */
    std::atomic<ChainedBlock *> fall{nullptr};
};

/**
 * The chained form of one trace-tier MachineFunction. Blocks are
 * built lazily on first entry; side exits and fallthroughs are
 * patched on first traversal and counted so tests (and -stats) can
 * observe the linking protocol.
 */
class ChainedFunction
{
  public:
    ChainedFunction(const MachineFunction *mf, Target &target);

    const MachineFunction *function() const { return mf_; }

    /** Chained form of \p mbb, building it on first use. */
    ChainedBlock *blockFor(MachineBasicBlock *mbb);

    /** Chained entry block. */
    ChainedBlock *entry();

    /** Resolve + patch the fallthrough successor of \p cb (the next
     *  block in layout order, the elided-jump convention). */
    ChainedBlock *linkFallthrough(ChainedBlock *cb);

    /** Resolve + patch the side exit of \p ci to \p target. */
    ChainedBlock *linkBranch(ChainedInstr &ci,
                             MachineBasicBlock *target);

    /** Patched links currently live (side exits + fallthroughs). */
    size_t
    linkCount() const
    {
        return links_.load(std::memory_order_relaxed);
    }

    /** Sever every patched link (invalidate()/SMC retirement). */
    void unlink();

    bool
    unlinked() const
    {
        return unlinked_.load(std::memory_order_acquire);
    }

  private:
    /** blocks_[i] publication point for executor threads; built
     *  blocks are owned by owned_ under mu_. */
    ChainedBlock *buildBlock(MachineBasicBlock *mbb);

    const MachineFunction *mf_;
    Target &target_;
    std::mutex mu_; ///< serializes build/link/unlink
    std::vector<std::atomic<ChainedBlock *>> blocks_; ///< by index
    std::vector<std::unique_ptr<ChainedBlock>> owned_;
    std::atomic<size_t> links_{0};
    std::atomic<bool> unlinked_{false};
};

} // namespace llva

#endif // LLVA_VM_CHAIN_H
