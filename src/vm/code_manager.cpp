#include "vm/code_manager.h"

#include "support/timer.h"

namespace llva {

const MachineFunction *
CodeManager::get(const Function *f)
{
    auto it = cache_.find(f);
    if (it != cache_.end())
        return it->second.get();

    Timer timer;
    CodeGenStats stats;
    auto mf = translateFunction(*f, target_, opts_, &stats);
    seconds_ += timer.seconds();
    ++translated_;
    stats_.phiCopiesInserted += stats.phiCopiesInserted;
    stats_.phiCopiesCoalesced += stats.phiCopiesCoalesced;
    stats_.spillsInserted += stats.spillsInserted;
    stats_.reloadsInserted += stats.reloadsInserted;

    const MachineFunction *raw = mf.get();
    cache_[f] = std::move(mf);
    return raw;
}

void
CodeManager::invalidate(const Function *f)
{
    cache_.erase(f);
}

void
CodeManager::translateAll(const Module &m)
{
    for (const auto &f : m.functions())
        if (!f->isDeclaration())
            get(f.get());
}

void
CodeManager::install(const Function *f,
                     std::unique_ptr<MachineFunction> mf)
{
    cache_[f] = std::move(mf);
}

size_t
CodeManager::totalMachineInstructions() const
{
    size_t n = 0;
    for (const auto &[f, mf] : cache_)
        n += mf->instructionCount();
    return n;
}

size_t
CodeManager::totalEncodedBytes() const
{
    size_t n = 0;
    for (const auto &[f, mf] : cache_) {
        n += encodeFunction(*mf, target_).size();
        // Functions are 16-byte aligned in a linked executable.
        n = (n + 15) / 16 * 16;
    }
    return n;
}

} // namespace llva
