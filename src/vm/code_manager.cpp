#include "vm/code_manager.h"

#include "support/thread_pool.h"
#include "support/timer.h"

namespace llva {

const MachineFunction *
CodeManager::get(const Function *f)
{
    auto it = cache_.find(f);
    if (it != cache_.end())
        return it->second.get();

    Timer timer;
    CodeGenStats stats;
    auto mf = translateFunction(*f, target_, opts_, &stats);
    seconds_ += timer.seconds();
    ++translated_;
    stats_.phiCopiesInserted += stats.phiCopiesInserted;
    stats_.phiCopiesCoalesced += stats.phiCopiesCoalesced;
    stats_.spillsInserted += stats.spillsInserted;
    stats_.reloadsInserted += stats.reloadsInserted;

    const MachineFunction *raw = mf.get();
    cache_[f] = std::move(mf);
    return raw;
}

void
CodeManager::invalidate(const Function *f)
{
    cache_.erase(f);
}

size_t
CodeManager::translate(const std::vector<const Function *> &fns,
                       unsigned jobs)
{
    std::vector<const Function *> work;
    for (const Function *f : fns)
        if (f && !f->isDeclaration() && !cache_.count(f))
            work.push_back(f);
    if (work.empty())
        return 0;

    // Workers fill index-addressed slots; nothing shared is
    // mutated until the serial install loop below.
    std::vector<std::unique_ptr<MachineFunction>> results(
        work.size());
    std::vector<CodeGenStats> stats(work.size());
    std::vector<double> seconds(work.size(), 0.0);
    parallelFor(work.size(), jobs, [&](size_t i) {
        Timer timer;
        results[i] =
            translateFunction(*work[i], target_, opts_, &stats[i]);
        seconds[i] = timer.seconds();
    });

    for (size_t i = 0; i < work.size(); ++i) {
        cache_[work[i]] = std::move(results[i]);
        ++translated_;
        // Aggregate translator time: the sum of per-function costs,
        // not elapsed wall time (matching the serial accounting).
        seconds_ += seconds[i];
        stats_.phiCopiesInserted += stats[i].phiCopiesInserted;
        stats_.phiCopiesCoalesced += stats[i].phiCopiesCoalesced;
        stats_.spillsInserted += stats[i].spillsInserted;
        stats_.reloadsInserted += stats[i].reloadsInserted;
    }
    return work.size();
}

void
CodeManager::translateAll(const Module &m, unsigned jobs)
{
    std::vector<const Function *> fns;
    for (const auto &f : m.functions())
        if (!f->isDeclaration())
            fns.push_back(f.get());
    translate(fns, jobs);
}

void
CodeManager::install(const Function *f,
                     std::unique_ptr<MachineFunction> mf)
{
    cache_[f] = std::move(mf);
}

size_t
CodeManager::totalMachineInstructions() const
{
    size_t n = 0;
    for (const auto &[f, mf] : cache_)
        n += mf->instructionCount();
    return n;
}

size_t
CodeManager::totalEncodedBytes() const
{
    size_t n = 0;
    for (const auto &[f, mf] : cache_) {
        n += encodeFunction(*mf, target_).size();
        // Functions are 16-byte aligned in a linked executable.
        n = (n + 15) / 16 * 16;
    }
    return n;
}

} // namespace llva
