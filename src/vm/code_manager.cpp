#include "vm/code_manager.h"

#include <cstdio>

#include "analysis/analysis_manager.h"
#include "ir/clone.h"
#include "support/statistic.h"
#include "support/thread_pool.h"
#include "support/timer.h"

namespace llva {

namespace {

Statistic NumTierDowngrades(
    "llee.tier_downgrades",
    "Translation tiers abandoned after a contained fault");
Statistic NumInterpFallbacks(
    "llee.interp_fallbacks",
    "Functions pinned to the interpreter (all native tiers failed)");
Statistic NumPromotions(
    "llee.promotions",
    "Functions promoted to the trace tier at runtime");
Statistic NumPromotionFailures(
    "llee.promotion_failures",
    "Trace-tier promotions abandoned after a contained fault");
Statistic TraceCoveragePct(
    "trace.coverage",
    "Profiled block executions inside formed traces, in percent "
    "points accumulated per promotion");
Statistic NumTraceCacheHits(
    "trace.cache_hits",
    "Trace formations or cached-translation loads that reused an "
    "already-known hot trace head");
Statistic NumRetiredBodies(
    "vm.retired_bodies",
    "Machine-function bodies retired by SMC invalidation, "
    "reinstallation, or promotion");
Statistic NumRetiredChains(
    "vm.retired_chains",
    "Superblock chains retired alongside their bodies");
Statistic NumRetiredReclaimed(
    "vm.retired_reclaimed",
    "Retired bodies and chains freed once no epoch pin could still "
    "reference them");
Statistic NumLiveReplacements(
    "vm.live_replacements",
    "Function bodies swapped by replaceFunctionLive() while the "
    "program kept running");

} // namespace

const MachineFunction *
CodeManager::get(const Function *f)
{
    {
        std::shared_lock<std::shared_mutex> lock(mu_);
        auto it = cache_.find(f);
        if (it != cache_.end())
            return it->second.get();
        auto tit = tiers_.find(f);
        if (tit != tiers_.end() && tit->second == kTierInterpreter)
            return nullptr;
    }

    std::unique_lock<std::shared_mutex> lock(mu_);
    // Another thread may have translated (or pinned) while we
    // upgraded the lock.
    auto it = cache_.find(f);
    if (it != cache_.end())
        return it->second.get();
    auto tit = tiers_.find(f);
    if (tit != tiers_.end() && tit->second == kTierInterpreter)
        return nullptr;

    // The ladder optimizes the body in place (and restores it); the
    // cache API stays const because callers never observe a change.
    return translateWithLadder(*const_cast<Function *>(f));
}

const MachineFunction *
CodeManager::translateWithLadder(Function &f)
{
    const unsigned top = opts_.optLevel;
    for (int level = static_cast<int>(top); level >= 0; --level) {
        Timer timer;
        auto mf = translateAtTier(f, static_cast<unsigned>(level));
        if (mf) {
            seconds_ += timer.seconds();
            ++translated_;
            const MachineFunction *raw = mf.get();
            cache_[&f] = std::move(mf);
            tiers_[&f] = static_cast<uint8_t>(level);
            return raw;
        }
        // This rung failed; drop one level (or fall off the end).
        ++tierDowngrades_;
        ++NumTierDowngrades;
        warn("translation of '%s' failed at -O%d; %s", f.name().c_str(),
             level,
             level > 0 ? "retrying one tier lower"
                       : "falling back to the interpreter");
    }
    tiers_[&f] = kTierInterpreter;
    ++NumInterpFallbacks;
    return nullptr;
}

std::unique_ptr<MachineFunction>
CodeManager::translateAtTier(Function &f, unsigned level)
{
    // Optimize a copy-on-write style: snapshot the pristine body,
    // optimize in place under the sandbox, codegen, then restore.
    // The original bytecode stays the single source of truth (lower
    // tiers and the interpreter must see the unoptimized body).
    FunctionSnapshot pristine;
    const bool mutates = level > 0 || bool(hooks_);
    if (mutates) {
        pristine = FunctionSnapshot::capture(f);
        PassManager pm;
        pm.setSandbox(true);
        pm.setVerifyEach(opts_.verifyEach);
        addFunctionPasses(pm, level);
        if (hooks_.extendPipeline)
            hooks_.extendPipeline(pm, level);
        AnalysisManager am;
        bool failed = false;
        try {
            pm.runOnFunction(f, am);
            // The sandbox restored any individual failing pass, but
            // a tier that faulted at all is not trusted: degrade.
            failed = !pm.containedFailures().empty();
        } catch (const std::exception &) {
            failed = true;
        }
        if (failed) {
            pristine.restoreInto(f);
            return nullptr;
        }
    }

    std::unique_ptr<MachineFunction> mf;
    try {
        if (hooks_.beforeCodegen)
            hooks_.beforeCodegen(f, level);
        CodeGenStats stats;
        mf = translateFunction(f, target_, opts_, &stats);
        stats_.phiCopiesInserted += stats.phiCopiesInserted;
        stats_.phiCopiesCoalesced += stats.phiCopiesCoalesced;
        stats_.spillsInserted += stats.spillsInserted;
        stats_.reloadsInserted += stats.reloadsInserted;
    } catch (const std::exception &) {
        mf.reset();
    }
    if (mutates)
        pristine.restoreInto(f);
    return mf;
}

void
CodeManager::retireBodyLocked(std::unique_ptr<MachineFunction> mf)
{
    retired_.push_back({std::move(mf), ++epoch_});
    ++NumRetiredBodies;
}

void
CodeManager::retireChainLocked(const MachineFunction *mf)
{
    auto it = chains_.find(mf);
    if (it == chains_.end())
        return;
    // Sever every patched link before retiring: a still-running
    // activation of the old body keeps a valid (block-at-a-time)
    // chain, but no hot path can race through stale superblock
    // links into a body the program just replaced.
    it->second->unlink();
    ++chainsUnlinked_;
    retiredChains_.push_back({std::move(it->second), ++epoch_});
    ++NumRetiredChains;
    chains_.erase(it);
}

void
CodeManager::reclaimLocked()
{
    // A pin taken at epoch P protects exactly the objects retired
    // after it (retirement epoch > P): pointers into anything
    // retired earlier were already unreachable when the pin was
    // taken. An object is freed once no pin predates its
    // retirement.
    uint64_t minPin = pins_.empty() ? UINT64_MAX : *pins_.begin();
    auto sweep = [&](auto &list) {
        size_t kept = 0;
        for (auto &entry : list) {
            if (entry.epoch <= minPin) {
                ++reclaimed_;
                ++NumRetiredReclaimed;
            } else {
                if (kept != size_t(&entry - list.data()))
                    list[kept] = std::move(entry);
                ++kept;
            }
        }
        list.resize(kept);
    };
    sweep(retired_);
    sweep(retiredChains_);
}

uint64_t
CodeManager::pinEpoch()
{
    std::unique_lock<std::shared_mutex> lock(mu_);
    uint64_t pin = epoch_;
    pins_.insert(pin);
    return pin;
}

void
CodeManager::unpinEpoch(uint64_t pin)
{
    std::unique_lock<std::shared_mutex> lock(mu_);
    auto it = pins_.find(pin);
    LLVA_ASSERT(it != pins_.end(), "unpinning an unknown epoch");
    pins_.erase(it);
    reclaimLocked();
}

size_t
CodeManager::retiredBodies() const
{
    std::shared_lock<std::shared_mutex> lock(mu_);
    return retired_.size();
}

size_t
CodeManager::retiredChainCount() const
{
    std::shared_lock<std::shared_mutex> lock(mu_);
    return retiredChains_.size();
}

size_t
CodeManager::reclaimedObjects() const
{
    std::shared_lock<std::shared_mutex> lock(mu_);
    return reclaimed_;
}

void
CodeManager::invalidateLocked(const Function *f)
{
    // Retire rather than destroy: the simulator may be invalidating
    // a function whose old body still sits in its call frames (SMC
    // affects only *future* invocations, Section 3.4). A fresh
    // translation may also be re-promoted later.
    auto it = cache_.find(f);
    if (it != cache_.end()) {
        retireChainLocked(it->second.get());
        retireBodyLocked(std::move(it->second));
        cache_.erase(it);
    }
    tiers_.erase(f);
    promoteAttempted_.erase(f);
    reclaimLocked();
}

void
CodeManager::invalidate(const Function *f)
{
    std::unique_lock<std::shared_mutex> lock(mu_);
    invalidateLocked(f);
}

const MachineFunction *
CodeManager::replaceFunctionLive(const Function *f)
{
    if (!f || f->isDeclaration())
        return nullptr;
    std::unique_lock<std::shared_mutex> lock(mu_);
    // Drop the installed translation, its chain, and any
    // interpreter pin, then walk the ladder again — all under one
    // exclusive section, so no other thread ever observes the gap
    // between the retirement and the fresh installation.
    invalidateLocked(f);
    const MachineFunction *mf =
        translateWithLadder(*const_cast<Function *>(f));
    ++NumLiveReplacements;
    return mf;
}

ChainedFunction *
CodeManager::chainFor(const MachineFunction *mf)
{
    std::unique_lock<std::shared_mutex> lock(mu_);
    // Never chain a retired body: a concurrent replacement may have
    // retired mf between the caller's liveness check and this call.
    // Its chains_ entry was dropped with it, and inserting a new one
    // here would outlive the body (dangling key after reclamation).
    auto live = cache_.find(mf->source());
    if (live == cache_.end() || live->second.get() != mf)
        return nullptr;
    auto &slot = chains_[mf];
    if (!slot)
        slot = std::make_unique<ChainedFunction>(mf, target_);
    return slot.get();
}

size_t
CodeManager::translate(const std::vector<const Function *> &fns,
                       unsigned jobs)
{
    std::vector<const Function *> work;
    {
        std::shared_lock<std::shared_mutex> lock(mu_);
        for (const Function *f : fns) {
            if (!f || f->isDeclaration() || cache_.count(f))
                continue;
            auto tit = tiers_.find(f);
            if (tit != tiers_.end() &&
                tit->second == kTierInterpreter)
                continue;
            work.push_back(f);
        }
    }
    if (work.empty())
        return 0;

    // Tiered translation optimizes bodies in place and interns
    // constants through the shared module: not re-entrant. Run the
    // ladder serially instead of the parallel fast path.
    if (opts_.optLevel > 0 || hooks_) {
        for (const Function *f : work)
            get(f);
        return work.size();
    }

    // Workers fill index-addressed slots; nothing shared is
    // mutated until the serial install loop below.
    std::vector<std::unique_ptr<MachineFunction>> results(
        work.size());
    std::vector<CodeGenStats> stats(work.size());
    std::vector<double> seconds(work.size(), 0.0);
    parallelFor(work.size(), jobs, [&](size_t i) {
        Timer timer;
        results[i] =
            translateFunction(*work[i], target_, opts_, &stats[i]);
        seconds[i] = timer.seconds();
    });

    std::unique_lock<std::shared_mutex> lock(mu_);
    for (size_t i = 0; i < work.size(); ++i) {
        cache_[work[i]] = std::move(results[i]);
        tiers_[work[i]] = 0;
        ++translated_;
        // Aggregate translator time: the sum of per-function costs,
        // not elapsed wall time (matching the serial accounting).
        seconds_ += seconds[i];
        stats_.phiCopiesInserted += stats[i].phiCopiesInserted;
        stats_.phiCopiesCoalesced += stats[i].phiCopiesCoalesced;
        stats_.spillsInserted += stats[i].spillsInserted;
        stats_.reloadsInserted += stats[i].reloadsInserted;
    }
    return work.size();
}

void
CodeManager::translateAll(const Module &m, unsigned jobs)
{
    std::vector<const Function *> fns;
    for (const auto &f : m.functions())
        if (!f->isDeclaration())
            fns.push_back(f.get());
    translate(fns, jobs);
}

void
CodeManager::install(const Function *f,
                     std::unique_ptr<MachineFunction> mf)
{
    install(f, std::move(mf), opts_.optLevel);
}

void
CodeManager::install(const Function *f,
                     std::unique_ptr<MachineFunction> mf, uint8_t tier)
{
    std::unique_lock<std::shared_mutex> lock(mu_);
    auto old = cache_.find(f);
    if (old != cache_.end()) {
        retireChainLocked(old->second.get());
        retireBodyLocked(std::move(old->second));
        cache_.erase(old);
    }
    cache_[f] = std::move(mf);
    tiers_[f] = tier;
    reclaimLocked();
}

void
CodeManager::markInterpreted(const Function *f)
{
    std::unique_lock<std::shared_mutex> lock(mu_);
    auto it = cache_.find(f);
    if (it != cache_.end()) {
        retireChainLocked(it->second.get());
        retireBodyLocked(std::move(it->second));
        cache_.erase(it);
    }
    tiers_[f] = kTierInterpreter;
    reclaimLocked();
}

void
CodeManager::setAdaptive(EdgeProfile *profile, uint64_t watermark,
                         ThreadPool *pool)
{
    std::unique_lock<std::shared_mutex> lock(mu_);
    std::lock_guard<std::mutex> plock(profileMu_);
    profile_ = profile;
    watermark_ = watermark;
    pool_ = pool;
}

void
CodeManager::mergeProfile(const EdgeProfile &delta)
{
    std::lock_guard<std::mutex> plock(profileMu_);
    if (profile_)
        profile_->merge(delta);
}

EdgeProfile
CodeManager::profileSnapshot() const
{
    std::lock_guard<std::mutex> plock(profileMu_);
    return profile_ ? *profile_ : EdgeProfile{};
}

bool
CodeManager::maybePromote(const Function *f)
{
    if (!f || f->isDeclaration())
        return false;
    // Cheap precheck under the shared lock: this runs on every
    // branch event of a profiled execution, and almost always
    // rejects (already attempted, wrong tier, or still cold).
    {
        std::shared_lock<std::shared_mutex> lock(mu_);
        if (!profile_)
            return false;
        if (promoteAttempted_.count(f))
            return false;
        auto it = tiers_.find(f);
        if (it != tiers_.end() && (it->second == kTierInterpreter ||
                                   it->second == kTierTrace))
            return false;
        if (!cache_.count(f))
            return false;
        std::lock_guard<std::mutex> plock(profileMu_);
        if (profile_->functionSamples(functionId(f->name())) <
            watermark_)
            return false;
    }

    std::unique_lock<std::shared_mutex> lock(mu_);
    // Re-validate under the exclusive lock: another thread may have
    // promoted, replaced, or invalidated while we upgraded.
    if (!profile_ || promoteAttempted_.count(f))
        return false;
    {
        auto it = tiers_.find(f);
        if (it != tiers_.end() && (it->second == kTierInterpreter ||
                                   it->second == kTierTrace))
            return false;
    }
    if (!cache_.count(f))
        return false;

    // One attempt per function per manager: a failed promotion must
    // not be retried on every subsequent profile event.
    promoteAttempted_.insert(f);

    Function &fn = *const_cast<Function *>(f);
    std::unique_ptr<MachineFunction> mf;
    Timer timer;
    if (pool_) {
        // The job runs on the pool's dedicated worker while this
        // thread blocks: passes intern constants through the shared
        // module, so translation must never overlap other pipeline
        // work. The pool decouples promotion from the dispatch loop
        // without introducing a data race.
        pool_->enqueue([&] { mf = translateAtTraceTier(fn); }).get();
    } else {
        mf = translateAtTraceTier(fn);
    }

    if (!mf) {
        ++promotionFailures_;
        ++NumPromotionFailures;
        warn("trace-tier promotion of '%s' failed; keeping tier -O%u",
             f->name().c_str(),
             static_cast<unsigned>(tiers_.count(f)
                                       ? tiers_.at(f)
                                       : opts_.optLevel));
        return false;
    }
    seconds_ += timer.seconds();
    ++translated_;

    // Atomic install with retirement: the executing activation keeps
    // its (old) body; every future dispatch gets the promoted one.
    // The old body's superblock chain (if any) is unlinked with it.
    auto old = cache_.find(f);
    if (old != cache_.end()) {
        retireChainLocked(old->second.get());
        retireBodyLocked(std::move(old->second));
        cache_.erase(old);
    }
    cache_[f] = std::move(mf);
    tiers_[f] = kTierTrace;
    ++promotions_;
    ++NumPromotions;
    reclaimLocked();
    return true;
}

std::unique_ptr<MachineFunction>
CodeManager::translateAtTraceTier(Function &f)
{
    // Same copy-on-write discipline as every other rung: snapshot,
    // optimize in place under the sandbox, lay out, codegen, restore.
    FunctionSnapshot pristine = FunctionSnapshot::capture(f);
    PassManager pm;
    pm.setSandbox(true);
    pm.setVerifyEach(opts_.verifyEach);
    addFunctionPasses(pm, opts_.optLevel);
    if (hooks_.extendPipeline)
        hooks_.extendPipeline(pm, kTierTrace);
    AnalysisManager am;
    bool failed = false;
    try {
        pm.runOnFunction(f, am);
        failed = !pm.containedFailures().empty();
    } catch (const std::exception &) {
        failed = true;
    }

    std::unique_ptr<MachineFunction> mf;
    if (!failed) {
        try {
            // Form hot traces from the runtime profile. The profile
            // was gathered over machine code produced by this same
            // deterministic pipeline, so its stable block IDs
            // resolve by name against the freshly optimized body.
            // The trace cache is scoped to this promotion: it holds
            // BasicBlock pointers into the optimized body, which
            // dies when the snapshot is restored below. Only the
            // stable head IDs outlive it (re-promotion accounting).
            // The profile is read under its own mutex: worker
            // threads may be merging deltas concurrently.
            std::unique_lock<std::mutex> plock(profileMu_);
            std::vector<Trace> traces =
                formTraces(f, *profile_, TraceOptions{});
            TraceCache cache;
            for (Trace &t : traces) {
                BlockId head = blockId(t.head());
                if (cache.lookup(t.head()) || traceHeads_.count(head))
                    ++NumTraceCacheHits;
                traceHeads_.insert(head);
                cache.insert(t);
            }
            lastCoverage_ = cache.coverage(*profile_);
            plock.unlock();
            TraceCoveragePct +=
                static_cast<uint64_t>(lastCoverage_ * 100.0);
            if (opts_.printTraces) {
                for (const Trace &t : cache.traces()) {
                    std::string line;
                    for (const BasicBlock *bb : t.blocks) {
                        if (!line.empty())
                            line += " -> ";
                        line += bb->name();
                    }
                    std::fprintf(stderr,
                                 "trace: %s: %s (head count %llu)\n",
                                 f.name().c_str(), line.c_str(),
                                 (unsigned long long)t.headCount);
                }
                std::fprintf(stderr,
                             "trace: %s: coverage %.2f over %zu "
                             "trace(s)\n",
                             f.name().c_str(), lastCoverage_,
                             cache.size());
            }
            applyTraceLayout(f, cache.traces());

            if (hooks_.beforeCodegen)
                hooks_.beforeCodegen(f, kTierTrace);
            CodeGenStats stats;
            mf = translateFunction(f, target_, opts_, &stats);
            stats_.phiCopiesInserted += stats.phiCopiesInserted;
            stats_.phiCopiesCoalesced += stats.phiCopiesCoalesced;
            stats_.spillsInserted += stats.spillsInserted;
            stats_.reloadsInserted += stats.reloadsInserted;
        } catch (const std::exception &) {
            mf.reset();
        }
    }
    pristine.restoreInto(f);
    return mf;
}

size_t
CodeManager::totalMachineInstructions() const
{
    std::shared_lock<std::shared_mutex> lock(mu_);
    size_t n = 0;
    for (const auto &[f, mf] : cache_)
        n += mf->instructionCount();
    return n;
}

size_t
CodeManager::totalEncodedBytes() const
{
    std::shared_lock<std::shared_mutex> lock(mu_);
    size_t n = 0;
    for (const auto &[f, mf] : cache_) {
        n += encodeFunction(*mf, target_).size();
        // Functions are 16-byte aligned in a linked executable.
        n = (n + 15) / 16 * 16;
    }
    return n;
}

void
CodeManager::forEachCached(
    const std::function<void(const Function *, uint8_t,
                             const MachineFunction *)> &fn) const
{
    std::shared_lock<std::shared_mutex> lock(mu_);
    for (const auto &[f, mf] : cache_) {
        auto tit = tiers_.find(f);
        fn(f,
           tit != tiers_.end() ? tit->second : opts_.optLevel,
           mf.get());
    }
    for (const auto &[f, tier] : tiers_)
        if (tier == kTierInterpreter)
            fn(f, tier, nullptr);
}

} // namespace llva
