#include "vm/code_manager.h"

#include "analysis/analysis_manager.h"
#include "ir/clone.h"
#include "support/statistic.h"
#include "support/thread_pool.h"
#include "support/timer.h"

namespace llva {

namespace {

Statistic NumTierDowngrades(
    "llee.tier_downgrades",
    "Translation tiers abandoned after a contained fault");
Statistic NumInterpFallbacks(
    "llee.interp_fallbacks",
    "Functions pinned to the interpreter (all native tiers failed)");

} // namespace

const MachineFunction *
CodeManager::get(const Function *f)
{
    auto it = cache_.find(f);
    if (it != cache_.end())
        return it->second.get();
    if (isInterpreted(f))
        return nullptr;

    // The ladder optimizes the body in place (and restores it); the
    // cache API stays const because callers never observe a change.
    return translateWithLadder(*const_cast<Function *>(f));
}

const MachineFunction *
CodeManager::translateWithLadder(Function &f)
{
    const unsigned top = opts_.optLevel;
    for (int level = static_cast<int>(top); level >= 0; --level) {
        Timer timer;
        auto mf = translateAtTier(f, static_cast<unsigned>(level));
        if (mf) {
            seconds_ += timer.seconds();
            ++translated_;
            const MachineFunction *raw = mf.get();
            cache_[&f] = std::move(mf);
            tiers_[&f] = static_cast<uint8_t>(level);
            return raw;
        }
        // This rung failed; drop one level (or fall off the end).
        ++tierDowngrades_;
        ++NumTierDowngrades;
        warn("translation of '%s' failed at -O%d; %s", f.name().c_str(),
             level,
             level > 0 ? "retrying one tier lower"
                       : "falling back to the interpreter");
    }
    markInterpreted(&f);
    ++NumInterpFallbacks;
    return nullptr;
}

std::unique_ptr<MachineFunction>
CodeManager::translateAtTier(Function &f, unsigned level)
{
    // Optimize a copy-on-write style: snapshot the pristine body,
    // optimize in place under the sandbox, codegen, then restore.
    // The original bytecode stays the single source of truth (lower
    // tiers and the interpreter must see the unoptimized body).
    FunctionSnapshot pristine;
    const bool mutates = level > 0 || bool(hooks_);
    if (mutates) {
        pristine = FunctionSnapshot::capture(f);
        PassManager pm;
        pm.setSandbox(true);
        pm.setVerifyEach(opts_.verifyEach);
        addFunctionPasses(pm, level);
        if (hooks_.extendPipeline)
            hooks_.extendPipeline(pm, level);
        AnalysisManager am;
        bool failed = false;
        try {
            pm.runOnFunction(f, am);
            // The sandbox restored any individual failing pass, but
            // a tier that faulted at all is not trusted: degrade.
            failed = !pm.containedFailures().empty();
        } catch (const std::exception &) {
            failed = true;
        }
        if (failed) {
            pristine.restoreInto(f);
            return nullptr;
        }
    }

    std::unique_ptr<MachineFunction> mf;
    try {
        if (hooks_.beforeCodegen)
            hooks_.beforeCodegen(f, level);
        CodeGenStats stats;
        mf = translateFunction(f, target_, opts_, &stats);
        stats_.phiCopiesInserted += stats.phiCopiesInserted;
        stats_.phiCopiesCoalesced += stats.phiCopiesCoalesced;
        stats_.spillsInserted += stats.spillsInserted;
        stats_.reloadsInserted += stats.reloadsInserted;
    } catch (const std::exception &) {
        mf.reset();
    }
    if (mutates)
        pristine.restoreInto(f);
    return mf;
}

void
CodeManager::invalidate(const Function *f)
{
    cache_.erase(f);
    tiers_.erase(f);
}

size_t
CodeManager::translate(const std::vector<const Function *> &fns,
                       unsigned jobs)
{
    std::vector<const Function *> work;
    for (const Function *f : fns)
        if (f && !f->isDeclaration() && !cache_.count(f) &&
            !isInterpreted(f))
            work.push_back(f);
    if (work.empty())
        return 0;

    // Tiered translation optimizes bodies in place and interns
    // constants through the shared module: not re-entrant. Run the
    // ladder serially instead of the parallel fast path.
    if (opts_.optLevel > 0 || hooks_) {
        for (const Function *f : work)
            get(f);
        return work.size();
    }

    // Workers fill index-addressed slots; nothing shared is
    // mutated until the serial install loop below.
    std::vector<std::unique_ptr<MachineFunction>> results(
        work.size());
    std::vector<CodeGenStats> stats(work.size());
    std::vector<double> seconds(work.size(), 0.0);
    parallelFor(work.size(), jobs, [&](size_t i) {
        Timer timer;
        results[i] =
            translateFunction(*work[i], target_, opts_, &stats[i]);
        seconds[i] = timer.seconds();
    });

    for (size_t i = 0; i < work.size(); ++i) {
        cache_[work[i]] = std::move(results[i]);
        tiers_[work[i]] = 0;
        ++translated_;
        // Aggregate translator time: the sum of per-function costs,
        // not elapsed wall time (matching the serial accounting).
        seconds_ += seconds[i];
        stats_.phiCopiesInserted += stats[i].phiCopiesInserted;
        stats_.phiCopiesCoalesced += stats[i].phiCopiesCoalesced;
        stats_.spillsInserted += stats[i].spillsInserted;
        stats_.reloadsInserted += stats[i].reloadsInserted;
    }
    return work.size();
}

void
CodeManager::translateAll(const Module &m, unsigned jobs)
{
    std::vector<const Function *> fns;
    for (const auto &f : m.functions())
        if (!f->isDeclaration())
            fns.push_back(f.get());
    translate(fns, jobs);
}

void
CodeManager::install(const Function *f,
                     std::unique_ptr<MachineFunction> mf)
{
    install(f, std::move(mf), opts_.optLevel);
}

void
CodeManager::install(const Function *f,
                     std::unique_ptr<MachineFunction> mf, uint8_t tier)
{
    cache_[f] = std::move(mf);
    tiers_[f] = tier;
}

void
CodeManager::markInterpreted(const Function *f)
{
    cache_.erase(f);
    tiers_[f] = kTierInterpreter;
}

size_t
CodeManager::totalMachineInstructions() const
{
    size_t n = 0;
    for (const auto &[f, mf] : cache_)
        n += mf->instructionCount();
    return n;
}

size_t
CodeManager::totalEncodedBytes() const
{
    size_t n = 0;
    for (const auto &[f, mf] : cache_) {
        n += encodeFunction(*mf, target_).size();
        // Functions are 16-byte aligned in a linked executable.
        n = (n + 15) / 16 * 16;
    }
    return n;
}

} // namespace llva
