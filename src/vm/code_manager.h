/**
 * @file
 * CodeManager: the translator's code cache. Functions are translated
 * on demand (JIT mode, paper Section 4.1: "the JIT translates
 * functions on demand, so that unused code is not translated") or
 * eagerly (offline mode). Translation wall-clock time is recorded
 * per function — this is the "Translate Time" column of Table 2.
 *
 * SMC support (Section 3.4): invalidating a function simply drops
 * its translation, "forcing it to be regenerated the next time the
 * function is invoked."
 */

#ifndef LLVA_VM_CODE_MANAGER_H
#define LLVA_VM_CODE_MANAGER_H

#include <map>
#include <memory>
#include <vector>

#include "codegen/codegen.h"

namespace llva {

class CodeManager
{
  public:
    CodeManager(Target &target, CodeGenOptions opts = {})
        : target_(target), opts_(opts)
    {}

    Target &target() { return target_; }
    const CodeGenOptions &options() const { return opts_; }

    /** Translation for \p f, translating now if needed. */
    const MachineFunction *get(const Function *f);

    bool
    has(const Function *f) const
    {
        return cache_.count(f) != 0;
    }

    /** Drop a translation (SMC invalidation). */
    void invalidate(const Function *f);

    /**
     * Translate every not-yet-cached function in \p fns on up to
     * \p jobs threads. Declarations and cached entries are skipped.
     * Each translation is an independent, re-entrant unit; results
     * are installed serially in input order afterwards, so the
     * cache contents (and all downstream byte output) are identical
     * for any \p jobs. Returns the number translated.
     */
    size_t translate(const std::vector<const Function *> &fns,
                     unsigned jobs = 1);

    /** Eagerly translate every defined function in \p m. */
    void translateAll(const Module &m, unsigned jobs = 1);

    /** Install an externally produced translation (LLEE cache). */
    void install(const Function *f,
                 std::unique_ptr<MachineFunction> mf);

    // --- Statistics -------------------------------------------------------

    double totalTranslateSeconds() const { return seconds_; }
    size_t functionsTranslated() const { return translated_; }
    const CodeGenStats &stats() const { return stats_; }

    /** Total machine instructions across all cached translations. */
    size_t totalMachineInstructions() const;

    /** Total encoded native bytes across all cached translations. */
    size_t totalEncodedBytes() const;

  private:
    Target &target_;
    CodeGenOptions opts_;
    std::map<const Function *, std::unique_ptr<MachineFunction>>
        cache_;
    double seconds_ = 0;
    size_t translated_ = 0;
    CodeGenStats stats_;
};

} // namespace llva

#endif // LLVA_VM_CODE_MANAGER_H
