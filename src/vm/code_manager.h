/**
 * @file
 * CodeManager: the translator's code cache. Functions are translated
 * on demand (JIT mode, paper Section 4.1: "the JIT translates
 * functions on demand, so that unused code is not translated") or
 * eagerly (offline mode). Translation wall-clock time is recorded
 * per function — this is the "Translate Time" column of Table 2.
 *
 * SMC support (Section 3.4): invalidating a function simply drops
 * its translation, "forcing it to be regenerated the next time the
 * function is invoked." replaceFunctionLive() is the push-style
 * variant: drop + retranslate in one atomic step, so other threads
 * never observe a translation gap while a function is swapped
 * under them.
 *
 * Tiered degradation: when options request an optimization level,
 * each function is optimized (under the pass sandbox) and code-
 * generated at that level; a tier whose pipeline contains a failure
 * or whose codegen faults is abandoned and the function is
 * retranslated one level lower, down to -O0 and finally the
 * interpreter (get() returns nullptr for interpreter-pinned
 * functions). A fault in one function's translation therefore never
 * takes down the program — it costs that one function performance.
 *
 * Adaptive promotion (Section 4.2): with a runtime profile attached
 * (setAdaptive), a function whose profiled block executions cross
 * the watermark is retranslated at the ladder's top rung —
 * `-O<level>+traces` — which forms hot traces from the profile and
 * applies trace-driven layout before instruction selection. The new
 * body is installed through the same install path; the replaced one
 * is retired, not destroyed, because the simulator may still be
 * executing it (raw MachineFunction pointers live in its frames).
 *
 * Epoch-based reclamation: retired bodies and chains used to
 * accumulate forever — a slow leak under repeated SMC replacement
 * or promotion. Every retirement now advances an epoch counter and
 * tags the retired object with it; every executing simulator pins
 * the epoch current at its entry (pinEpoch/unpinEpoch) for the
 * duration of its activation. A retired object is freed exactly
 * when no pin predates its retirement — i.e. no thread can still
 * hold a frame pointer into it. With no concurrent activations the
 * lists drain to empty on every retire, so single-threaded use is
 * leak-free too.
 *
 * Thread safety: all cache state is guarded by a shared_mutex
 * (readers: dispatch lookups; writers: translation, installation,
 * retirement, reclamation). Translation mutates IR bodies in place
 * (snapshot/restore), so interpreter-tier execution of a function
 * body — the only concurrent IR *reader* — must hold the shared
 * lock (readLock()) for its duration. The attached profile has its
 * own mutex: simulator threads record into thread-local profiles
 * and publish them with mergeProfile(); promotion reads the merged
 * master under the same lock.
 */

#ifndef LLVA_VM_CODE_MANAGER_H
#define LLVA_VM_CODE_MANAGER_H

#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <shared_mutex>
#include <vector>

#include "codegen/codegen.h"
#include "llee/envelope.h"
#include "support/thread_pool.h"
#include "trace/trace.h"
#include "transforms/pass.h"
#include "vm/chain.h"

namespace llva {

/**
 * Test seams into the per-tier translation pipeline (mirrors the
 * storage layer's FaultInjectingStorage): extendPipeline may append
 * extra (e.g. deliberately faulting) passes per tier; beforeCodegen
 * runs just before instruction selection and may throw to simulate
 * a codegen fault at a given tier.
 */
struct TranslationHooks
{
    std::function<void(PassManager &, unsigned level)> extendPipeline;
    std::function<void(const Function &, unsigned level)> beforeCodegen;

    explicit operator bool() const
    {
        return static_cast<bool>(extendPipeline) ||
               static_cast<bool>(beforeCodegen);
    }
};

class CodeManager
{
  public:
    CodeManager(Target &target, CodeGenOptions opts = {})
        : target_(target), opts_(opts)
    {}

    Target &target() { return target_; }
    const CodeGenOptions &options() const { return opts_; }

    void setHooks(TranslationHooks hooks)
    {
        std::unique_lock<std::shared_mutex> lock(mu_);
        hooks_ = std::move(hooks);
    }

    /**
     * Translation for \p f, translating now if needed — possibly at
     * a degraded tier. Returns nullptr when \p f is pinned to the
     * interpreter (every native tier failed): the caller must
     * interpret it.
     */
    const MachineFunction *get(const Function *f);

    bool
    has(const Function *f) const
    {
        std::shared_lock<std::shared_mutex> lock(mu_);
        return cache_.count(f) != 0;
    }

    /** The currently installed body of \p f, or nullptr — a pure
     *  lookup that never triggers translation (the chaining code
     *  uses it to tell a live body from a retired one). */
    const MachineFunction *
    cached(const Function *f) const
    {
        std::shared_lock<std::shared_mutex> lock(mu_);
        auto it = cache_.find(f);
        return it == cache_.end() ? nullptr : it->second.get();
    }

    /** Drop a translation (SMC invalidation). */
    void invalidate(const Function *f);

    /**
     * Atomically replace the installed translation of \p f with a
     * freshly translated body while other threads may be executing
     * the old one (paper Section 3.4, live-update). The old body is
     * retired (epoch-tagged, reclaimed once unpinned) and the
     * ladder walks from the top again — including for a function
     * previously pinned to the interpreter, so a replacement whose
     * translation now succeeds un-pins it. Returns the new body, or
     * nullptr if every native tier failed again.
     */
    const MachineFunction *replaceFunctionLive(const Function *f);

    /**
     * Translate every not-yet-cached function in \p fns on up to
     * \p jobs threads. Declarations and cached entries are skipped.
     * Each translation is an independent, re-entrant unit; results
     * are installed serially in input order afterwards, so the
     * cache contents (and all downstream byte output) are identical
     * for any \p jobs. Returns the number translated.
     *
     * With an optimization level (or hooks) set, translation
     * optimizes function bodies in place and is forced serial —
     * passes intern constants through the shared module.
     */
    size_t translate(const std::vector<const Function *> &fns,
                     unsigned jobs = 1);

    /** Eagerly translate every defined function in \p m. */
    void translateAll(const Module &m, unsigned jobs = 1);

    /** Install an externally produced translation (LLEE cache). */
    void install(const Function *f,
                 std::unique_ptr<MachineFunction> mf);

    /** Install with an explicitly known achieved tier. */
    void install(const Function *f,
                 std::unique_ptr<MachineFunction> mf, uint8_t tier);

    // --- Tier ladder ------------------------------------------------------

    /** Pin \p f to the interpreter (tier of last resort). */
    void markInterpreted(const Function *f);

    bool
    isInterpreted(const Function *f) const
    {
        std::shared_lock<std::shared_mutex> lock(mu_);
        auto it = tiers_.find(f);
        return it != tiers_.end() && it->second == kTierInterpreter;
    }

    /**
     * Tier actually achieved for \p f: the requested level, lower
     * after degradation, kTierInterpreter when pinned. Only
     * meaningful once \p f has been translated or marked.
     */
    uint8_t
    tierOf(const Function *f) const
    {
        std::shared_lock<std::shared_mutex> lock(mu_);
        auto it = tiers_.find(f);
        return it != tiers_.end() ? it->second : opts_.optLevel;
    }

    /** Tier demotions taken (one per abandoned level). */
    size_t tierDowngrades() const { return tierDowngrades_; }

    // --- Epoch-based reclamation ------------------------------------------

    /**
     * Pin the current epoch: retired bodies/chains whose retirement
     * postdates the pin stay alive until unpinEpoch(). Every
     * executing simulator holds a pin for its whole activation —
     * its call frames hold raw MachineFunction pointers.
     */
    uint64_t pinEpoch();

    /** Release a pin and reclaim whatever became unreachable. */
    void unpinEpoch(uint64_t pin);

    /** Retired bodies currently awaiting reclamation. */
    size_t retiredBodies() const;

    /** Retired chains currently awaiting reclamation. */
    size_t retiredChainCount() const;

    /** Total retired objects (bodies + chains) freed so far. */
    size_t reclaimedObjects() const;

    /**
     * Shared (reader) lock over translation state. Interpreter-tier
     * execution holds this while walking a function's IR: tiered
     * translation mutates bodies in place under the exclusive lock,
     * and the interpreter is the only concurrent IR reader.
     */
    std::shared_lock<std::shared_mutex>
    readLock() const
    {
        return std::shared_lock<std::shared_mutex>(mu_);
    }

    // --- Adaptive promotion -----------------------------------------------

    /**
     * Attach a runtime profile and arm the hotness watermark. \p
     * pool, when non-null, runs promotion jobs (the caller blocks on
     * the result — passes intern constants through the shared
     * module, so translation work must never overlap other pipeline
     * activity; the pool buys a dedicated, warm worker, not
     * concurrency). \p profile must outlive this manager.
     */
    void setAdaptive(EdgeProfile *profile, uint64_t watermark,
                     ThreadPool *pool = nullptr);

    /**
     * Promote \p f to the trace tier if its profiled sample count
     * has crossed the watermark. Safe to call from the simulator's
     * dispatch loop on every profile event: each function is
     * attempted at most once per manager, and the currently
     * executing body stays valid (retired, not destroyed). Returns
     * true if a promotion was installed now.
     */
    bool maybePromote(const Function *f);

    /** Fold a thread-local profile delta into the attached master
     *  profile (no-op without one). Worker threads publish their
     *  samples here so promotion sees fleet-wide heat. */
    void mergeProfile(const EdgeProfile &delta);

    /** Copy of the attached master profile (empty if none). */
    EdgeProfile profileSnapshot() const;

    // --- Superblock chaining ----------------------------------------------

    /**
     * The chained (direct-threaded, superblock-linked) form of a
     * trace-tier body, built lazily on first use. Chains live here —
     * not in the simulator — so invalidate()/SMC retirement can
     * unlink them: a retired chain is severed (every patched side
     * exit cleared) and kept alive, never re-linked, while any
     * still-running activation of the old body falls back to
     * block-at-a-time resolution inside it. Returns nullptr when
     * \p mf is no longer the installed body of its source (lost a
     * race with retirement) — never chain a retired body.
     */
    ChainedFunction *chainFor(const MachineFunction *mf);

    /**
     * The live chain of \p mf, or nullptr if none was built yet (or
     * the body was retired). A non-null result proves the body is
     * still the installed trace-tier translation of its source:
     * every path that retires a body (invalidate, reinstall,
     * promotion) drops its chain in the same step, so dispatch can
     * re-derive its chaining state with this single lookup instead
     * of the tier + cache + chain triple.
     */
    ChainedFunction *
    findChain(const MachineFunction *mf) const
    {
        std::shared_lock<std::shared_mutex> lock(mu_);
        auto it = chains_.find(mf);
        return it == chains_.end() ? nullptr : it->second.get();
    }

    /** Live (non-retired) chained functions. */
    size_t chainedFunctions() const
    {
        std::shared_lock<std::shared_mutex> lock(mu_);
        return chains_.size();
    }

    /** Chains unlinked by invalidation/retirement so far. */
    size_t chainsUnlinked() const { return chainsUnlinked_; }

    /** Trace-tier promotions installed. */
    size_t promotions() const { return promotions_; }
    /** Promotions attempted but failed (existing tier kept). */
    size_t promotionFailures() const { return promotionFailures_; }
    /** Coverage of the last formed trace set (0 before any). */
    double lastTraceCoverage() const { return lastCoverage_; }

    // --- Statistics -------------------------------------------------------

    double totalTranslateSeconds() const { return seconds_; }
    size_t functionsTranslated() const { return translated_; }
    const CodeGenStats &stats() const { return stats_; }

    /** Total machine instructions across all cached translations. */
    size_t totalMachineInstructions() const;

    /** Total encoded native bytes across all cached translations. */
    size_t totalEncodedBytes() const;

    /**
     * Enumerate the cache index under the shared lock — cached
     * bodies with their achieved tiers, plus interpreter-pinned
     * functions (tier kTierInterpreter, null body). Checkpointing
     * serializes entries inside the callback so no body can be
     * retired mid-walk.
     */
    void forEachCached(
        const std::function<void(const Function *, uint8_t tier,
                                 const MachineFunction *)> &fn) const;

  private:
    /** Walk the ladder from opts_.optLevel down; installs the result
     *  or pins \p f to the interpreter. Returns the translation
     *  (nullptr when pinned). Caller holds mu_ exclusively. */
    const MachineFunction *translateWithLadder(Function &f);

    /** One rung: optimize (sandboxed) + codegen at \p level.
     *  Returns nullptr if this tier failed. Leaves the function body
     *  exactly as found. */
    std::unique_ptr<MachineFunction> translateAtTier(Function &f,
                                                     unsigned level);

    /** The `-O<level>+traces` rung: optimize, form traces from the
     *  attached profile, apply trace layout, codegen. Returns
     *  nullptr if the tier failed; the body is left as found. */
    std::unique_ptr<MachineFunction> translateAtTraceTier(Function &f);

    // The following helpers assume mu_ is held exclusively.
    void invalidateLocked(const Function *f);
    void retireBodyLocked(std::unique_ptr<MachineFunction> mf);
    void retireChainLocked(const MachineFunction *mf);
    void reclaimLocked();

    Target &target_;
    CodeGenOptions opts_;
    TranslationHooks hooks_;
    mutable std::shared_mutex mu_;
    std::map<const Function *, std::unique_ptr<MachineFunction>>
        cache_;
    std::map<const Function *, uint8_t> tiers_;
    size_t tierDowngrades_ = 0;
    double seconds_ = 0;
    size_t translated_ = 0;
    CodeGenStats stats_;

    // Adaptive promotion state. Replaced translations are retired
    // here (never destroyed mid-run): the simulator's call frames
    // hold raw MachineFunction pointers into the old body. The
    // TraceCache itself is scoped inside each promotion — it indexes
    // BasicBlock pointers of the *optimized* body, which die when
    // the snapshot is restored; only stable head IDs persist here.
    mutable std::mutex profileMu_; ///< guards *profile_ contents
    EdgeProfile *profile_ = nullptr;
    uint64_t watermark_ = 0;
    ThreadPool *pool_ = nullptr;
    std::set<BlockId> traceHeads_;
    std::set<const Function *> promoteAttempted_;

    // Epoch-tagged retirement lists (see file comment).
    struct RetiredBody
    {
        std::unique_ptr<MachineFunction> mf;
        uint64_t epoch;
    };
    struct RetiredChain
    {
        std::unique_ptr<ChainedFunction> chain;
        uint64_t epoch;
    };
    uint64_t epoch_ = 0;
    std::multiset<uint64_t> pins_;
    std::vector<RetiredBody> retired_;
    std::vector<RetiredChain> retiredChains_;
    size_t reclaimed_ = 0;

    std::map<const MachineFunction *, std::unique_ptr<ChainedFunction>>
        chains_;
    size_t chainsUnlinked_ = 0;
    size_t promotions_ = 0;
    size_t promotionFailures_ = 0;
    double lastCoverage_ = 0;
};

} // namespace llva

#endif // LLVA_VM_CODE_MANAGER_H
