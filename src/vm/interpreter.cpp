#include "vm/interpreter.h"

#include <cmath>
#include <map>

#include "ir/instructions.h"
#include "support/statistic.h"

/**
 * Direct-threaded dispatch for the interpreter's inner loop. On
 * GCC/Clang each instruction dispatches through one computed goto
 * into a label table indexed by the Opcode value — no switch range
 * check, and the indirect jump gives the branch predictor one
 * prediction site per dispatch instead of a single shared one.
 * Elsewhere the same handler bodies compile as the classic switch.
 * OPCASE introduces a handler; NEXT_INSTR ends one (outer-level
 * `break`s of the old switch — nested switches keep theirs).
 */
#if defined(__GNUC__) || defined(__clang__)
#define LLVA_THREADED_INTERP 1
#endif

#if defined(LLVA_THREADED_INTERP)
#define OPCASE(name) op_##name:
#define NEXT_INSTR goto llva_next_instr
#else
#define OPCASE(name) case Opcode::name:
#define NEXT_INSTR break
#endif

namespace llva {

/**
 * Shared with the machine simulator — both engines deliver traps
 * through ExecutionContext's handler table, and both can find that
 * the registered address no longer names a function.
 */
Statistic NumTrapHandlerMissing(
    "vm.trap_handler_missing",
    "Trap deliveries whose registered handler address did not "
    "resolve to a function");

namespace {

uint64_t
canonInt(uint64_t v, const Type *t)
{
    unsigned bits = t->integerBitWidth();
    if (bits == 0 || bits >= 64)
        return v;
    uint64_t mask = (bits == 64) ? ~0ull : ((1ull << bits) - 1);
    v &= mask;
    if (t->isSignedInteger() && ((v >> (bits - 1)) & 1))
        v |= ~mask;
    return v;
}

constexpr unsigned kMaxDepth = 2048;

} // namespace

ExecResult
Interpreter::run(const Function *f, const std::vector<RtValue> &args)
{
    executed_ = 0;
    stackBrk_ = ctx_.memory().stackTop();

    CallOutcome out = call(f, args, 0);
    ExecResult result;
    result.value = out.value;
    result.unwound = out.unwound;
    result.trap = out.trap;
    result.instructionsExecuted = executed_;

    // Trap-handler dispatch (paper Section 3.5): a trap handler is an
    // ordinary LLVA function taking (trap number, void* info).
    if (out.trap != TrapKind::None) {
        unsigned trapno = static_cast<unsigned>(out.trap);
        uint64_t handler = ctx_.trapHandler(trapno);
        if (handler) {
            if (const Function *hf =
                    ctx_.memory().functionAt(handler)) {
                std::vector<RtValue> hargs = {
                    RtValue::ofInt(trapno), RtValue::ofInt(0)};
                CallOutcome hout = call(hf, hargs, 0);
                result.instructionsExecuted = executed_;
                // The handler's own outcome must not be swallowed:
                // a trap raised inside the handler supersedes the
                // one it was handling, and an unwind escaping the
                // handler surfaces as an escaped unwind.
                if (hout.trap != TrapKind::None)
                    result.trap = hout.trap;
                if (hout.unwound)
                    result.unwound = true;
            } else {
                // A registered address that no longer names a
                // function (SMC moved it, or it was bogus) means
                // the handler silently never runs — count it.
                ++NumTrapHandlerMissing;
            }
        }
    }
    return result;
}

ExecResult
Interpreter::invoke(const Function *f, const std::vector<RtValue> &args,
                    uint64_t stackBase)
{
    executed_ = 0;
    stackBrk_ = stackBase ? stackBase : ctx_.memory().stackTop();

    CallOutcome out = call(f, args, 0);
    ExecResult result;
    result.value = out.value;
    result.unwound = out.unwound;
    result.trap = out.trap;
    result.instructionsExecuted = executed_;
    return result;
}

Interpreter::CallOutcome
Interpreter::call(const Function *f, const std::vector<RtValue> &args,
                  unsigned depth)
{
    // SMC redirect: future invocations run the replacement body.
    if (const Function *repl = ctx_.redirectFor(f))
        f = repl;

    CallOutcome out;
    if (depth > kMaxDepth) {
        out.trap = TrapKind::StackOverflow;
        return out;
    }

    if (f->isDeclaration()) {
        const RuntimeHandler *h = ctx_.handlerFor(f->name());
        if (!h)
            fatal("call to unresolved external %%%s",
                  f->name().c_str());
        out.value = (*h)(ctx_, args);
        // A handler that rejected its arguments raises a recoverable
        // trap instead of aborting; surface it like a hardware trap.
        TrapKind pending = ctx_.takePendingTrap();
        if (pending != TrapKind::None)
            out.trap = pending;
        return out;
    }

    Memory &mem = ctx_.memory();
    std::map<const Value *, RtValue> frame;
    for (size_t i = 0; i < f->numArgs() && i < args.size(); ++i)
        frame[f->arg(i)] = args[i];

    uint64_t saved_stack = stackBrk_;

    auto eval = [&](const Value *v) -> RtValue {
        if (auto *ci = dyn_cast<ConstantInt>(v))
            return RtValue::ofInt(ci->zext());
        if (auto *cf = dyn_cast<ConstantFP>(v))
            return RtValue::ofFP(cf->value());
        if (isa<ConstantNull>(v) || isa<ConstantUndef>(v))
            return RtValue();
        if (auto *gv = dyn_cast<GlobalVariable>(v))
            return RtValue::ofInt(ctx_.globalAddrs().at(gv));
        if (auto *fn = dyn_cast<Function>(v))
            return RtValue::ofInt(mem.functionAddress(fn));
        auto it = frame.find(v);
        LLVA_ASSERT(it != frame.end(), "use of undefined value '%s'",
                    v->name().c_str());
        return it->second;
    };

    auto memTrapKind = [&]() {
        TrapKind k = mem.lastTrap();
        mem.clearTrap();
        return k;
    };

    const BasicBlock *block = f->entryBlock();
    const BasicBlock *prev = nullptr;

    while (true) {
        if (profile_)
            profile_->note(prev, block);
        // Phi nodes evaluate simultaneously on block entry.
        if (prev) {
            std::vector<std::pair<const Value *, RtValue>> updates;
            for (const auto &inst : *block) {
                auto *phi = dyn_cast<PhiNode>(inst.get());
                if (!phi)
                    break;
                const Value *in = phi->incomingValueFor(prev);
                LLVA_ASSERT(in, "phi has no entry for predecessor");
                updates.emplace_back(phi, eval(in));
                ++executed_;
            }
            for (auto &[phi, val] : updates)
                frame[phi] = val;
        }

        for (auto it = block->firstNonPhi(); it != block->end();
             ++it) {
            const Instruction *inst = it->get();
            ++executed_;
            if (limit_ && executed_ > limit_)
                fatal("interpreter instruction limit exceeded");

#if defined(LLVA_THREADED_INTERP)
            // Handler-label table in Opcode order (&&label is the
            // GNU address-of-label extension).
            static const void *const kDispatch[kNumOpcodes] = {
                &&op_Add,    &&op_Sub,    &&op_Mul,
                &&op_Div,    &&op_Rem,    &&op_And,
                &&op_Or,     &&op_Xor,    &&op_Shl,
                &&op_Shr,    &&op_SetEQ,  &&op_SetNE,
                &&op_SetLT,  &&op_SetGT,  &&op_SetLE,
                &&op_SetGE,  &&op_Ret,    &&op_Br,
                &&op_MBr,    &&op_Invoke, &&op_Unwind,
                &&op_Load,   &&op_Store,  &&op_GetElementPtr,
                &&op_Alloca, &&op_Cast,   &&op_Call,
                &&op_Phi,
            };
            goto *kDispatch[static_cast<unsigned>(inst->opcode())];
#else
            switch (inst->opcode()) {
#endif
              OPCASE(Add)
              OPCASE(Sub)
              OPCASE(Mul)
              OPCASE(Div)
              OPCASE(Rem) {
                auto *b = static_cast<const BinaryOperator *>(inst);
                Type *t = b->type();
                RtValue lhs = eval(b->lhs()), rhs = eval(b->rhs());
                if (t->isFloatingPoint()) {
                    double a = lhs.f, bb = rhs.f, r = 0;
                    switch (inst->opcode()) {
                      case Opcode::Add: r = a + bb; break;
                      case Opcode::Sub: r = a - bb; break;
                      case Opcode::Mul: r = a * bb; break;
                      case Opcode::Div: r = a / bb; break;
                      default: r = std::fmod(a, bb); break;
                    }
                    if (t->kind() == TypeKind::Float)
                        r = static_cast<float>(r);
                    frame[inst] = RtValue::ofFP(r);
                    NEXT_INSTR;
                }
                uint64_t a = canonInt(lhs.i, t);
                uint64_t bb = canonInt(rhs.i, t);
                uint64_t r = 0;
                bool trapped = false;
                switch (inst->opcode()) {
                  case Opcode::Add: r = a + bb; break;
                  case Opcode::Sub: r = a - bb; break;
                  case Opcode::Mul: r = a * bb; break;
                  case Opcode::Div:
                  case Opcode::Rem: {
                    if (bb == 0) {
                        if (inst->exceptionsEnabled()) {
                            out.trap = TrapKind::DivByZero;
                            trapped = true;
                        } else {
                            r = 0;
                        }
                        break;
                    }
                    if (t->isSignedInteger()) {
                        int64_t sa = static_cast<int64_t>(a);
                        int64_t sb = static_cast<int64_t>(bb);
                        if (sa == INT64_MIN && sb == -1)
                            r = inst->opcode() == Opcode::Div ? a
                                                              : 0;
                        else
                            r = static_cast<uint64_t>(
                                inst->opcode() == Opcode::Div
                                    ? sa / sb
                                    : sa % sb);
                    } else {
                        r = inst->opcode() == Opcode::Div ? a / bb
                                                          : a % bb;
                    }
                    break;
                  }
                  default:
                    break;
                }
                if (trapped) {
                    stackBrk_ = saved_stack;
                    return out;
                }
                frame[inst] = RtValue::ofInt(canonInt(r, t));
                NEXT_INSTR;
              }
              OPCASE(And)
              OPCASE(Or)
              OPCASE(Xor) {
                auto *b = static_cast<const BinaryOperator *>(inst);
                uint64_t a = eval(b->lhs()).i, bb = eval(b->rhs()).i;
                uint64_t r = inst->opcode() == Opcode::And ? (a & bb)
                             : inst->opcode() == Opcode::Or
                                 ? (a | bb)
                                 : (a ^ bb);
                frame[inst] = RtValue::ofInt(canonInt(r, b->type()));
                NEXT_INSTR;
              }
              OPCASE(Shl)
              OPCASE(Shr) {
                auto *b = static_cast<const BinaryOperator *>(inst);
                Type *t = b->type();
                uint64_t a = canonInt(eval(b->lhs()).i, t);
                uint64_t sh = eval(b->rhs()).i & 63;
                uint64_t r;
                if (inst->opcode() == Opcode::Shl) {
                    r = a << sh;
                } else if (t->isSignedInteger()) {
                    r = static_cast<uint64_t>(
                        static_cast<int64_t>(a) >> sh);
                } else {
                    unsigned bits = t->integerBitWidth();
                    uint64_t ua =
                        bits >= 64 ? a : (a & ((1ull << bits) - 1));
                    r = ua >> sh;
                }
                frame[inst] = RtValue::ofInt(canonInt(r, t));
                NEXT_INSTR;
              }
              OPCASE(SetEQ)
              OPCASE(SetNE)
              OPCASE(SetLT)
              OPCASE(SetGT)
              OPCASE(SetLE)
              OPCASE(SetGE) {
                auto *c = static_cast<const SetCondInst *>(inst);
                Type *t = c->lhs()->type();
                bool r = false;
                if (t->isFloatingPoint()) {
                    double a = eval(c->lhs()).f,
                           b = eval(c->rhs()).f;
                    switch (inst->opcode()) {
                      case Opcode::SetEQ: r = a == b; break;
                      case Opcode::SetNE: r = a != b; break;
                      case Opcode::SetLT: r = a < b; break;
                      case Opcode::SetGT: r = a > b; break;
                      case Opcode::SetLE: r = a <= b; break;
                      default: r = a >= b; break;
                    }
                } else if (t->isSignedInteger()) {
                    int64_t a = static_cast<int64_t>(
                        canonInt(eval(c->lhs()).i, t));
                    int64_t b = static_cast<int64_t>(
                        canonInt(eval(c->rhs()).i, t));
                    switch (inst->opcode()) {
                      case Opcode::SetEQ: r = a == b; break;
                      case Opcode::SetNE: r = a != b; break;
                      case Opcode::SetLT: r = a < b; break;
                      case Opcode::SetGT: r = a > b; break;
                      case Opcode::SetLE: r = a <= b; break;
                      default: r = a >= b; break;
                    }
                } else {
                    unsigned bits = t->isPointer()
                                        ? 64
                                        : t->integerBitWidth();
                    uint64_t mask =
                        bits >= 64 ? ~0ull : ((1ull << bits) - 1);
                    uint64_t a = eval(c->lhs()).i & mask;
                    uint64_t b = eval(c->rhs()).i & mask;
                    switch (inst->opcode()) {
                      case Opcode::SetEQ: r = a == b; break;
                      case Opcode::SetNE: r = a != b; break;
                      case Opcode::SetLT: r = a < b; break;
                      case Opcode::SetGT: r = a > b; break;
                      case Opcode::SetLE: r = a <= b; break;
                      default: r = a >= b; break;
                    }
                }
                frame[inst] = RtValue::ofInt(r ? 1 : 0);
                NEXT_INSTR;
              }
              OPCASE(Ret) {
                auto *r = static_cast<const ReturnInst *>(inst);
                if (r->returnValue())
                    out.value = eval(r->returnValue());
                stackBrk_ = saved_stack;
                return out;
              }
              OPCASE(Br) {
                auto *b = static_cast<const BranchInst *>(inst);
                prev = block;
                if (b->isConditional())
                    block = eval(b->condition()).i ? b->target(0)
                                                   : b->target(1);
                else
                    block = b->target(0);
                goto next_block;
              }
              OPCASE(MBr) {
                auto *m = static_cast<const MBrInst *>(inst);
                uint64_t v = canonInt(eval(m->condition()).i,
                                      m->condition()->type());
                prev = block;
                block = m->defaultDest();
                for (unsigned i = 0; i < m->numCases(); ++i) {
                    if (m->caseValue(i)->bits() == v) {
                        block = m->caseDest(i);
                        break;
                    }
                }
                goto next_block;
              }
              OPCASE(Invoke)
              OPCASE(Call) {
                const Value *callee;
                std::vector<RtValue> cargs;
                if (auto *c = dyn_cast<CallInst>(inst)) {
                    callee = c->callee();
                    for (unsigned i = 0; i < c->numArgs(); ++i)
                        cargs.push_back(eval(c->arg(i)));
                } else {
                    auto *iv = static_cast<const InvokeInst *>(inst);
                    callee = iv->callee();
                    for (unsigned i = 0; i < iv->numArgs(); ++i)
                        cargs.push_back(eval(iv->arg(i)));
                }
                const Function *target = dyn_cast<Function>(callee);
                if (!target) {
                    uint64_t addr = eval(callee).i;
                    target = mem.functionAt(addr);
                    if (!target) {
                        // A control transfer to a non-function
                        // address always traps; ExceptionsEnabled
                        // only gates data-side exceptions.
                        out.trap = TrapKind::BadIndirectCall;
                        stackBrk_ = saved_stack;
                        return out;
                    }
                }
                CallOutcome callee_out =
                    call(target, cargs, depth + 1);
                if (callee_out.trap != TrapKind::None) {
                    out.trap = callee_out.trap;
                    stackBrk_ = saved_stack;
                    return out;
                }
                if (auto *iv = dyn_cast<InvokeInst>(inst)) {
                    prev = block;
                    if (callee_out.unwound) {
                        block = iv->unwindDest();
                    } else {
                        if (!inst->type()->isVoid())
                            frame[inst] = callee_out.value;
                        block = iv->normalDest();
                    }
                    goto next_block;
                }
                if (callee_out.unwound) {
                    // A plain call propagates the unwind upward.
                    out.unwound = true;
                    stackBrk_ = saved_stack;
                    return out;
                }
                if (!inst->type()->isVoid())
                    frame[inst] = callee_out.value;
                NEXT_INSTR;
              }
              OPCASE(Unwind)
                out.unwound = true;
                stackBrk_ = saved_stack;
                return out;
              OPCASE(Load) {
                auto *l = static_cast<const LoadInst *>(inst);
                uint64_t addr = eval(l->pointer()).i;
                Type *t = l->type();
                if (t->isFloatingPoint()) {
                    double v = 0;
                    if (!mem.loadFP(addr,
                                    t->kind() == TypeKind::Float,
                                    v)) {
                        TrapKind k = memTrapKind();
                        if (inst->exceptionsEnabled()) {
                            out.trap = k;
                            stackBrk_ = saved_stack;
                            return out;
                        }
                    }
                    frame[inst] = RtValue::ofFP(v);
                    NEXT_INSTR;
                }
                unsigned width = static_cast<unsigned>(
                    t->sizeInBytes(ctx_.module().pointerSize()));
                uint64_t v = 0;
                if (!mem.load(addr, width, v)) {
                    TrapKind k = memTrapKind();
                    if (inst->exceptionsEnabled()) {
                        out.trap = k;
                        stackBrk_ = saved_stack;
                        return out;
                    }
                    v = 0;
                }
                frame[inst] = RtValue::ofInt(canonInt(v, t));
                NEXT_INSTR;
              }
              OPCASE(Store) {
                auto *s = static_cast<const StoreInst *>(inst);
                uint64_t addr = eval(s->pointer()).i;
                Type *t = s->value()->type();
                bool ok;
                if (t->isFloatingPoint())
                    ok = mem.storeFP(addr,
                                     t->kind() == TypeKind::Float,
                                     eval(s->value()).f);
                else
                    ok = mem.store(
                        addr,
                        static_cast<unsigned>(t->sizeInBytes(
                            ctx_.module().pointerSize())),
                        eval(s->value()).i);
                if (!ok) {
                    TrapKind k = memTrapKind();
                    if (inst->exceptionsEnabled()) {
                        out.trap = k;
                        stackBrk_ = saved_stack;
                        return out;
                    }
                }
                NEXT_INSTR;
              }
              OPCASE(GetElementPtr) {
                auto *g =
                    static_cast<const GetElementPtrInst *>(inst);
                unsigned ps = ctx_.module().pointerSize();
                uint64_t addr = eval(g->pointer()).i;
                Type *cur = cast<PointerType>(g->pointer()->type())
                                ->pointee();
                for (unsigned i = 0; i < g->numIndices(); ++i) {
                    const Value *idx = g->index(i);
                    if (i == 0) {
                        int64_t n = static_cast<int64_t>(canonInt(
                            eval(idx).i, idx->type()));
                        addr += static_cast<uint64_t>(
                            n * static_cast<int64_t>(
                                    cur->sizeInBytes(ps)));
                        continue;
                    }
                    if (auto *at = dyn_cast<ArrayType>(cur)) {
                        cur = at->element();
                        int64_t n = static_cast<int64_t>(canonInt(
                            eval(idx).i, idx->type()));
                        addr += static_cast<uint64_t>(
                            n * static_cast<int64_t>(
                                    cur->sizeInBytes(ps)));
                    } else {
                        auto *st = cast<StructType>(cur);
                        size_t field = static_cast<size_t>(
                            cast<ConstantInt>(idx)->zext());
                        addr += st->fieldOffset(field, ps);
                        cur = st->field(field);
                    }
                }
                frame[inst] = RtValue::ofInt(addr);
                NEXT_INSTR;
              }
              OPCASE(Alloca) {
                auto *a = static_cast<const AllocaInst *>(inst);
                unsigned ps = ctx_.module().pointerSize();
                uint64_t count = 1;
                if (a->arraySize())
                    count = eval(a->arraySize()).i;
                uint64_t size =
                    a->allocatedType()->sizeInBytes(ps) * count;
                uint64_t align =
                    a->allocatedType()->alignment(ps);
                stackBrk_ -= size;
                stackBrk_ &= ~(align - 1);
                if (stackBrk_ < mem.stackLimit()) {
                    out.trap = TrapKind::StackOverflow;
                    stackBrk_ = saved_stack;
                    return out;
                }
                frame[inst] = RtValue::ofInt(stackBrk_);
                NEXT_INSTR;
              }
              OPCASE(Cast) {
                auto *c = static_cast<const CastInst *>(inst);
                Type *src = c->value()->type();
                Type *dst = c->type();
                RtValue v = eval(c->value());
                if (src->isFloatingPoint() &&
                    dst->isFloatingPoint()) {
                    double d = v.f;
                    if (dst->kind() == TypeKind::Float)
                        d = static_cast<float>(d);
                    frame[inst] = RtValue::ofFP(d);
                } else if (src->isFloatingPoint()) {
                    uint64_t r = 0;
                    if (std::isfinite(v.f)) {
                        if (dst->isSignedInteger())
                            r = static_cast<uint64_t>(
                                static_cast<int64_t>(v.f));
                        else if (v.f > 0)
                            r = static_cast<uint64_t>(v.f);
                    }
                    frame[inst] =
                        RtValue::ofInt(canonInt(r, dst));
                } else if (dst->isFloatingPoint()) {
                    uint64_t a = canonInt(v.i, src);
                    double d =
                        src->isSignedInteger()
                            ? static_cast<double>(
                                  static_cast<int64_t>(a))
                            : static_cast<double>(a);
                    if (dst->kind() == TypeKind::Float)
                        d = static_cast<float>(d);
                    frame[inst] = RtValue::ofFP(d);
                } else {
                    // int/bool/pointer to int/bool/pointer.
                    uint64_t a = src->isPointer()
                                     ? v.i
                                     : canonInt(v.i, src);
                    if (dst->isBool())
                        frame[inst] = RtValue::ofInt(a ? 1 : 0);
                    else if (dst->isPointer())
                        frame[inst] = RtValue::ofInt(a);
                    else
                        frame[inst] =
                            RtValue::ofInt(canonInt(a, dst));
                }
                NEXT_INSTR;
              }
              OPCASE(Phi)
                panic("phi after firstNonPhi");
#if defined(LLVA_THREADED_INTERP)
          llva_next_instr:;
#else
              default:
                panic("unhandled opcode in interpreter");
            }
#endif
        }
        panic("block fell through without a terminator");
      next_block:;
    }
}

} // namespace llva
