/**
 * @file
 * Reference interpreter for LLVA virtual object code. Used as the
 * semantic oracle: the machine-code simulators must produce the same
 * outputs and return values for every program.
 *
 * Implements the paper's execution semantics directly: precise
 * exceptions with the per-instruction ExceptionsEnabled attribute
 * (Section 3.3), invoke/unwind stack unwinding, SMC redirects that
 * affect only future invocations (Section 3.4), and trap-handler
 * dispatch (Section 3.5).
 */

#ifndef LLVA_VM_INTERPRETER_H
#define LLVA_VM_INTERPRETER_H

#include "trace/profile.h" // EdgeProfile
#include "vm/runtime.h"

namespace llva {

/** Outcome of executing a function or whole program. */
struct ExecResult
{
    RtValue value;
    bool unwound = false; ///< unwind escaped past the entry function
    TrapKind trap = TrapKind::None;
    size_t instructionsExecuted = 0;
    /** Execution paused cooperatively (MachineSimulator only); the
     *  activation is suspended, not finished — value is not set. */
    bool paused = false;

    bool ok() const { return !unwound && trap == TrapKind::None; }
};

// EdgeProfile — the profile information the trace-formation
// machinery of Section 4.2 consumes, and what LLEE persists to
// offline storage — lives in trace/profile.h, keyed by stable block
// IDs so it survives CFG-mutating passes and process restarts.

class Interpreter
{
  public:
    explicit Interpreter(ExecutionContext &ctx)
        : ctx_(ctx)
    {}

    /** Collect an edge profile while executing (nullptr = off). */
    void setProfile(EdgeProfile *profile) { profile_ = profile; }

    /** Execute \p f with \p args; traps dispatch to registered
     *  handlers before the result is returned. */
    ExecResult run(const Function *f,
                   const std::vector<RtValue> &args = {});

    /**
     * Execute one function as a fallback from native execution (the
     * tier of last resort): allocas carve down from \p stackBase
     * (the caller's native stack pointer; 0 = top of stack), and
     * traps are returned to the caller undispatched — the machine
     * simulator owns trap-handler policy.
     */
    ExecResult invoke(const Function *f,
                      const std::vector<RtValue> &args,
                      uint64_t stackBase = 0);

    /** Cap on interpreted instructions (0 = unlimited). */
    void setInstructionLimit(size_t limit) { limit_ = limit; }

  private:
    struct CallOutcome
    {
        RtValue value;
        bool unwound = false;
        TrapKind trap = TrapKind::None;
    };

    CallOutcome call(const Function *f,
                     const std::vector<RtValue> &args, unsigned depth);

    ExecutionContext &ctx_;
    size_t executed_ = 0;
    size_t limit_ = 0;
    uint64_t stackBrk_ = 0;
    EdgeProfile *profile_ = nullptr;
};

} // namespace llva

#endif // LLVA_VM_INTERPRETER_H
