#include "vm/machine_sim.h"

#include "support/statistic.h"

namespace llva {

// Defined in interpreter.cpp — both engines count failed trap
// deliveries into one counter (the registry resolves names to the
// first registrant, so a second definition would be shadowed).
extern Statistic NumTrapHandlerMissing;

namespace {

constexpr size_t kMaxCallDepth = 2048;

Statistic NumProfileSamples(
    "llee.profile_samples",
    "Block executions recorded into the runtime edge profile");

Statistic NumPauses(
    "vm.pauses",
    "Cooperative pauses taken at a dispatch boundary");

/** An invoke-style call site: a call with explicit handler blocks. */
bool
isInvokeSite(const MachineInstr &mi)
{
    if (!mi.isCall)
        return false;
    unsigned blocks = 0;
    for (const MOperand &op : mi.ops)
        if (op.kind == MOperand::Block)
            ++blocks;
    return blocks >= 2;
}

MachineBasicBlock *
invokeBlockOperand(const MachineInstr &mi, unsigned which)
{
    unsigned seen = 0;
    for (const MOperand &op : mi.ops) {
        if (op.kind != MOperand::Block)
            continue;
        if (seen == which)
            return op.block;
        ++seen;
    }
    panic("invoke site lacks handler blocks");
}

/** Unpins an activation's reclamation epoch unless the pin was
 *  handed off to a paused activation. */
struct PinGuard
{
    CodeManager &cm;
    uint64_t pin;
    bool active = true;

    PinGuard(CodeManager &c, uint64_t p) : cm(c), pin(p) {}
    PinGuard(const PinGuard &) = delete;
    PinGuard &operator=(const PinGuard &) = delete;
    void release() { active = false; }
    ~PinGuard()
    {
        if (active)
            cm.unpinEpoch(pin);
    }
};

} // namespace

MachineSimulator::~MachineSimulator()
{
    if (hasPausedPin_)
        code_.unpinEpoch(pausedPin_);
}

ExecResult
MachineSimulator::run(const Function *f,
                      const std::vector<RtValue> &args)
{
    ExecResult result = runInternal(f, args);

    // Trap-handler dispatch (paper Section 3.5).
    if (result.trap != TrapKind::None) {
        unsigned trapno = static_cast<unsigned>(result.trap);
        uint64_t handler = ctx_.trapHandler(trapno);
        if (handler) {
            if (const Function *hf =
                    ctx_.memory().functionAt(handler)) {
                std::vector<RtValue> hargs = {
                    RtValue::ofInt(trapno), RtValue::ofInt(0)};
                ExecResult hr = runInternal(hf, hargs);
                result.instructionsExecuted = executed_;
                // The handler's own outcome must not be swallowed:
                // a trap raised inside the handler supersedes the
                // trap it was handling, and an unwind escaping the
                // handler surfaces as an escaped unwind.
                if (hr.trap != TrapKind::None)
                    result.trap = hr.trap;
                if (hr.unwound)
                    result.unwound = true;
            } else {
                // A registered address that no longer names a
                // function (SMC moved it, or it was bogus) means
                // the handler silently never runs — count it.
                ++NumTrapHandlerMissing;
            }
        }
    }
    return result;
}

ExecResult
MachineSimulator::resume()
{
    LLVA_ASSERT(suspended_.valid,
                "resume() without a paused activation");
    resuming_ = true;
    return run(suspended_.f, {});
}

ExecResult
MachineSimulator::interpretFallback(const Function *f,
                                    const std::vector<RtValue> &args,
                                    uint64_t stackBase)
{
    Interpreter interp(ctx_);
    if (limit_) {
        // Hand the interpreter exactly the remaining budget. A
        // drained budget (executed_ >= limit_) must not buy a free
        // instruction: any defined function executes at least one,
        // so the handoff itself exceeds the limit.
        if (executed_ >= limit_)
            fatal("simulator instruction limit exceeded");
        interp.setInstructionLimit(limit_ - executed_);
    }
    ExecResult r;
    {
        // The interpreter walks the function's IR, and tiered
        // translation mutates IR bodies in place (under the
        // exclusive lock): hold the shared lock for the duration of
        // the interpreted call so no concurrent replacement can
        // optimize the body out from under the walk.
        auto lock = code_.readLock();
        r = interp.invoke(f, args, stackBase);
    }
    executed_ += r.instructionsExecuted;
    interpreted_ += r.instructionsExecuted;
    // The interpreted code may have requested SMC invalidations;
    // apply them before native dispatch resumes.
    for (const Function *inv : ctx_.takeInvalidations())
        code_.invalidate(inv);
    return r;
}

ExecResult
MachineSimulator::runInternal(const Function *f,
                              const std::vector<RtValue> &args)
{
    Target &target = code_.target();
    ExecResult result;

    const bool resuming = resuming_;
    resuming_ = false;

    // Pin the reclamation epoch for this whole activation: the call
    // frames below hold raw MachineFunction pointers that a
    // concurrent replaceFunctionLive()/promotion may retire. A
    // resumed activation adopts the pin its pause kept alive.
    uint64_t pin;
    if (resuming && hasPausedPin_) {
        pin = pausedPin_;
        hasPausedPin_ = false;
    } else {
        pin = code_.pinEpoch();
    }
    PinGuard pinGuard(code_, pin);

    SimState state;
    const MachineFunction *mf = nullptr;
    MachineBasicBlock *block = nullptr;
    size_t index = 0;
    std::vector<Frame> frames;

    if (resuming) {
        Suspended s = std::move(suspended_);
        suspended_ = Suspended{};
        f = s.f;
        state = s.state;
        frames = std::move(s.frames);
        mf = s.mf;
        block = s.block;
        index = s.index;
        // The context may be a different process than the one that
        // checkpointed: re-wire the transient pointers.
        state.mem = &ctx_.memory();
        state.globalAddrs = &ctx_.globalAddrs();
    } else {
        // Apply pending SMC invalidations before dispatch.
        for (const Function *inv : ctx_.takeInvalidations())
            code_.invalidate(inv);
        if (const Function *repl = ctx_.redirectFor(f))
            f = repl;

        state.mem = &ctx_.memory();
        state.globalAddrs = &ctx_.globalAddrs();
        state.sp = ctx_.memory().stackTop() - 4096; // synthetic caller

        target.writeArgs(state, f->functionType(), args);

        mf = code_.get(f);
        if (!mf) {
            // The entry function itself is pinned to the interpreter
            // tier; run it there with the default stack base.
            ExecResult r = interpretFallback(f, args, 0);
            r.instructionsExecuted = executed_;
            return r;
        }
        block = mf->blocks().front().get();
    }

    const bool threaded = dispatch_ == Dispatch::Threaded;

    // Superblock chaining state: non-null while the current frame
    // runs the live trace-tier body of its function under threaded
    // dispatch.
    ChainedFunction *chain = nullptr;
    ChainedBlock *cb = nullptr;

    // Profile hook: record a block entry (and, within one function,
    // the edge taken into it). Machine block names mirror the source
    // blocks' names, so these are the same stable IDs the trace
    // formation resolves on the IR. `from == nullptr` marks entries
    // with no intra-function predecessor (call dispatch, invoke
    // resumption). Threaded dispatch uses the hashes cached at
    // translation time; the legacy engine keeps its original
    // rehash-per-event cost as the measurable baseline. Events are
    // recorded every sampleInterval_-th occurrence with matching
    // weight, so totals stay in execution units.
    auto noteBlock = [&](const MachineFunction *in,
                         const MachineBasicBlock *from,
                         const MachineBasicBlock *to) {
        if (!profile_)
            return;
        if (--sampleCountdown_)
            return;
        sampleCountdown_ = sampleInterval_;
        if (threaded) {
            profile_->noteId(
                from ? BlockId{in->nameHash(), from->nameHash()}
                     : BlockId{},
                BlockId{in->nameHash(), to->nameHash()},
                sampleInterval_);
        } else {
            uint64_t fnHash = functionId(in->name());
            profile_->noteId(
                from ? BlockId{fnHash, fnv1a(from->name())}
                     : BlockId{},
                BlockId{fnHash, fnv1a(to->name())}, sampleInterval_);
        }
        NumProfileSamples += sampleInterval_;
    };


    // Re-derive the chaining state after any control transfer that
    // may have changed the current function (call, return, unwind)
    // or retired its body (SMC invalidation, promotion). Only the
    // *live* body of a trace-tier function chains: a retired body
    // keeps executing, unchained, until its activation ends.
    auto syncChain = [&]() {
        chain = nullptr;
        cb = nullptr;
        if (!threaded)
            return;
        // Fast path for the steady state (every call/return runs
        // through here): one lookup resolves an already-built live
        // chain. The tier + installed-body checks only run when
        // that misses, to decide first-time chain creation.
        chain = code_.findChain(mf);
        if (!chain) {
            if (code_.tierOf(mf->source()) != kTierTrace)
                return;
            if (code_.cached(mf->source()) != mf)
                return;
            // chainFor() re-validates liveness under the exclusive
            // lock and refuses to chain a body retired since the
            // checks above (lost race with a concurrent
            // replacement): keep executing it unchained.
            chain = code_.chainFor(mf);
            if (!chain)
                return;
        }
        cb = chain->blockFor(block);
    };

    // Park the activation: save the resume position (about to
    // execute block->instrs()[index]), hand the epoch pin to the
    // suspended state, and surface a paused result.
    auto suspendHere = [&]() -> ExecResult {
        suspended_.valid = true;
        suspended_.f = f;
        suspended_.state = state;
        suspended_.frames = frames;
        suspended_.mf = mf;
        suspended_.block = block;
        suspended_.index = index;
        pauseFlag_.store(false, std::memory_order_relaxed);
        pauseAt_.store(0, std::memory_order_relaxed);
        pausedPin_ = pin;
        hasPausedPin_ = true;
        pinGuard.release();
        ++NumPauses;
        result.paused = true;
        result.instructionsExecuted = executed_;
        return result;
    };

    if (!resuming)
        noteBlock(mf, nullptr, block);
    syncChain();

    // Pop machine frames to the nearest invoke-style call site and
    // resume at its handler block; false if the unwind escapes.
    auto unwindFrames = [&]() -> bool {
        while (!frames.empty()) {
            Frame fr = frames.back();
            frames.pop_back();
            const MachineInstr &site = *fr.block->instrs()[fr.index];
            if (isInvokeSite(site)) {
                mf = fr.mf;
                state.sp = fr.spAtCall;
                block = invokeBlockOperand(site, 1);
                index = 0;
                noteBlock(mf, nullptr, block);
                syncChain();
                return true;
            }
        }
        return false;
    };

    uint64_t start_count = executed_;
    (void)start_count;

    while (true) {
        // Cooperative pause point: every dispatch boundary of the
        // unchained engines, plus every block transition of the
        // chained fast path below.
        {
            uint64_t pauseAt =
                pauseAt_.load(std::memory_order_relaxed);
            if ((pauseAt && executed_ >= pauseAt) ||
                pauseFlag_.load(std::memory_order_relaxed))
                return suspendHere();
        }

        const MachineInstr *mip = nullptr;

        if (cb) {
            // Superblock fast path: cached handlers over flattened
            // blocks, transitions through patched links — no map
            // lookups, no hashing, no dispatch switch. Falls out
            // only on a call/return/trap/unwind side exit. Chained
            // blocks are pointer-stable and their code arrays never
            // resize after build, so the walk stays in registers;
            // `index` is synced back on every exit.
            ChainedInstr *ip = cb->code.data() + index;
            const ChainedInstr *end =
                cb->code.data() + cb->code.size();
            // The instruction counter and the profile-sampling
            // countdown live in locals for the duration of the
            // inner loop: the indirect handler call clobbers
            // memory, so member fields would be reloaded and
            // stored on every instruction, while loop-local state
            // survives in callee-saved registers. Both are synced
            // back on every exit from the loop. With no limit set
            // the sentinel makes the budget check a single
            // never-taken compare.
            uint64_t executed = executed_;
            const uint64_t limit = limit_ ? limit_ : ~uint64_t(0);
            uint64_t countdown = sampleCountdown_;
            EdgeProfile *profile = profile_;
            // Block-entry profile event over the cached IDs; the
            // same sampling discipline as noteBlock, against the
            // loop-local countdown.
            auto noteChained = [&](const ChainedBlock *from,
                                   const ChainedBlock *to) {
                if (!profile)
                    return;
                if (--countdown)
                    return;
                countdown = sampleInterval_;
                profile_->noteId(from->id, to->id, sampleInterval_);
                NumProfileSamples += sampleInterval_;
            };
            // Pause check at a chained block transition, where the
            // resume position is exactly (new block, index 0).
            auto pauseHere = [&]() {
                uint64_t pauseAt =
                    pauseAt_.load(std::memory_order_relaxed);
                if (!(pauseAt && executed >= pauseAt) &&
                    !pauseFlag_.load(std::memory_order_relaxed))
                    return false;
                index = 0;
                executed_ = executed;
                sampleCountdown_ = countdown;
                return true;
            };
            bool pauseNow = false;
            for (;;) {
                if (ip == end) {
                    // Links are release-published; a null read just
                    // takes the slow (patching) path.
                    ChainedBlock *next =
                        cb->fall.load(std::memory_order_acquire);
                    if (!next)
                        next = chain->linkFallthrough(cb);
                    noteChained(cb, next);
                    cb = next;
                    block = cb->mbb;
                    ip = cb->code.data();
                    end = ip + cb->code.size();
                    if (pauseHere()) {
                        pauseNow = true;
                        break;
                    }
                    continue;
                }
                if (++executed > limit) {
                    index = size_t(ip - cb->code.data());
                    executed_ = executed;
                    sampleCountdown_ = countdown;
                    fatal("simulator instruction limit exceeded");
                }
                state.next = SimState::Next::Fall;
                ip->fn(*ip->mi, state);
                if (state.next == SimState::Next::Fall) {
                    ++ip;
                    continue;
                }
                if (state.next == SimState::Next::Branch) {
                    ChainedInstr &ci = *ip;
                    ChainedBlock *link =
                        ci.link.load(std::memory_order_acquire);
                    ChainedBlock *next =
                        link && link->mbb == state.branchTarget
                            ? link
                            : chain->linkBranch(ci,
                                                state.branchTarget);
                    noteChained(cb, next);
                    cb = next;
                    block = cb->mbb;
                    ip = cb->code.data();
                    end = ip + cb->code.size();
                    if (pauseHere()) {
                        pauseNow = true;
                        break;
                    }
                    continue;
                }
                mip = ip->mi;
                index = size_t(ip - cb->code.data());
                executed_ = executed;
                sampleCountdown_ = countdown;
                break;
            }
            if (pauseNow)
                return suspendHere();
        } else {
            if (index >= block->instrs().size()) {
                // Elided fallthrough jump: continue with the next
                // block in layout order.
                size_t next = block->index() + 1;
                LLVA_ASSERT(next < mf->blocks().size(),
                            "machine function fell off the end (%s)",
                            mf->name().c_str());
                MachineBasicBlock *prev = block;
                block = mf->blocks()[next].get();
                index = 0;
                noteBlock(mf, prev, block);
                continue;
            }
            const MachineInstr &mi = *block->instrs()[index];
            ++executed_;
            if (limit_ && executed_ > limit_)
                fatal("simulator instruction limit exceeded");
            if (threaded) {
                // Direct-threaded dispatch: resolve the handler
                // once, then one indirect call per execution. Only
                // next is re-armed — handlers write every consumer
                // field of the Next value they request. The cache
                // slot is a relaxed atomic: concurrent simulators
                // racing here store the same deterministic handler.
                ExecFn fn = mi.exec.load(std::memory_order_relaxed);
                if (!fn) {
                    fn = target.handlerFor(mi);
                    mi.exec.store(fn, std::memory_order_relaxed);
                }
                state.next = SimState::Next::Fall;
                fn(mi, state);
            } else {
                state.reset();
                target.execute(mi, state);
            }
            mip = &mi;
        }

        const MachineInstr &mi = *mip;
        switch (state.next) {
          case SimState::Next::Fall:
            ++index;
            break;

          case SimState::Next::Branch:
            noteBlock(mf, block, state.branchTarget);
            block = state.branchTarget;
            index = 0;
            // Branches carry the loop back-edges, so this is where a
            // function's sample count can cross the watermark; the
            // running activation keeps its body (the replaced
            // translation is retired, not destroyed).
            if (profile_)
                code_.maybePromote(mf->source());
            break;

          case SimState::Next::Trap:
            result.trap = state.trapKind;
            result.instructionsExecuted = executed_;
            return result;

          case SimState::Next::Return: {
            if (frames.empty()) {
                result.value = target.readReturn(
                    state, f->functionType()->returnType());
                result.instructionsExecuted = executed_;
                return result;
            }
            Frame fr = frames.back();
            frames.pop_back();
            mf = fr.mf;
            const MachineInstr &site =
                *fr.block->instrs()[fr.index];
            if (isInvokeSite(site)) {
                block = invokeBlockOperand(site, 0);
                index = 0;
                noteBlock(mf, nullptr, block);
            } else {
                block = fr.block;
                index = fr.index + 1;
            }
            syncChain();
            break;
          }

          case SimState::Next::Call: {
            const Function *callee = state.callTarget;
            if (!callee) {
                callee = ctx_.memory().functionAt(state.callAddr);
                if (!callee) {
                    result.trap = TrapKind::BadIndirectCall;
                    result.instructionsExecuted = executed_;
                    return result;
                }
            }
            if (const Function *repl = ctx_.redirectFor(callee))
                callee = repl;

            if (callee->isDeclaration()) {
                const RuntimeHandler *h =
                    ctx_.handlerFor(callee->name());
                if (!h)
                    fatal("call to unresolved external %%%s",
                          callee->name().c_str());
                std::vector<RtValue> hargs =
                    target.readArgs(state, callee->functionType());
                RtValue rv = (*h)(ctx_, hargs);
                // Consume any pending SMC invalidations the handler
                // produced before the next dispatch.
                for (const Function *inv :
                     ctx_.takeInvalidations())
                    code_.invalidate(inv);
                // A handler that rejected its arguments raises a
                // recoverable trap instead of aborting: surface it
                // through the same trap-dispatch path hardware
                // traps take (paper Section 3.5).
                TrapKind pending = ctx_.takePendingTrap();
                if (pending != TrapKind::None) {
                    result.trap = pending;
                    result.instructionsExecuted = executed_;
                    return result;
                }
                target.writeReturn(
                    state, callee->functionType()->returnType(),
                    rv);
                if (isInvokeSite(mi)) {
                    block = invokeBlockOperand(mi, 0);
                    index = 0;
                    noteBlock(mf, nullptr, block);
                } else {
                    ++index;
                }
                // The handler may have invalidated this very
                // function: its chain is now severed and must not
                // be re-entered.
                syncChain();
                break;
            }

            if (frames.size() >= kMaxCallDepth ||
                state.sp < ctx_.memory().stackLimit() + 4096) {
                result.trap = TrapKind::StackOverflow;
                result.instructionsExecuted = executed_;
                return result;
            }

            const MachineFunction *cmf = code_.get(callee);
            if (!cmf) {
                // Callee is pinned to the interpreter tier: bridge
                // the call — read the arguments the native caller
                // set up, interpret with allocas below the caller's
                // stack pointer, and write the return back into the
                // native calling convention.
                std::vector<RtValue> cargs =
                    target.readArgs(state, callee->functionType());
                ExecResult r =
                    interpretFallback(callee, cargs, state.sp);
                if (r.trap != TrapKind::None) {
                    result.trap = r.trap;
                    result.instructionsExecuted = executed_;
                    return result;
                }
                if (r.unwound) {
                    if (!unwindFrames()) {
                        result.unwound = true;
                        result.instructionsExecuted = executed_;
                        return result;
                    }
                    break;
                }
                target.writeReturn(
                    state, callee->functionType()->returnType(),
                    r.value);
                if (isInvokeSite(mi)) {
                    block = invokeBlockOperand(mi, 0);
                    index = 0;
                    noteBlock(mf, nullptr, block);
                } else {
                    ++index;
                }
                // interpretFallback applied any invalidations the
                // interpreted code requested.
                syncChain();
                break;
            }

            frames.push_back({mf, block, index, state.sp});
            mf = cmf;
            block = mf->blocks().front().get();
            index = 0;
            noteBlock(mf, nullptr, block);
            syncChain();
            break;
          }

          case SimState::Next::Unwind: {
            // Pop frames to the nearest invoke-style call site.
            if (!unwindFrames()) {
                result.unwound = true;
                result.instructionsExecuted = executed_;
                return result;
            }
            break;
          }
        }
    }
}

void
MachineSimulator::serializeSuspended(ByteWriter &w) const
{
    LLVA_ASSERT(suspended_.valid,
                "no suspended activation to serialize");
    const Suspended &s = suspended_;
    w.writeString(s.f->name());
    w.writeU64(executed_);
    w.writeU64(interpreted_);

    const SimState &st = s.state;
    for (uint64_t v : st.ireg)
        w.writeU64(v);
    for (double v : st.freg)
        w.writeDouble(v);
    w.writeU64(static_cast<uint64_t>(st.ccSA));
    w.writeU64(static_cast<uint64_t>(st.ccSB));
    w.writeU64(st.ccUA);
    w.writeU64(st.ccUB);
    w.writeDouble(st.ccFA);
    w.writeDouble(st.ccFB);
    w.writeByte(st.ccFP ? 1 : 0);
    w.writeU64(st.sp);

    // Positions are (function name, block index, instruction index)
    // plus the shape of what they index into: restore retranslates
    // and must prove the regenerated body has the recorded shape
    // before trusting raw indices into it.
    auto writePos = [&](const MachineFunction *mf,
                        const MachineBasicBlock *bb, size_t idx) {
        w.writeString(mf->name());
        w.writeVaruint(mf->blocks().size());
        w.writeVaruint(bb->index());
        w.writeVaruint(bb->instrs().size());
        w.writeVaruint(idx);
    };
    writePos(s.mf, s.block, s.index);
    w.writeVaruint(s.frames.size());
    for (const Frame &fr : s.frames) {
        writePos(fr.mf, fr.block, fr.index);
        w.writeU64(fr.spAtCall);
    }
}

bool
MachineSimulator::restoreSuspended(ByteReader &r)
{
    Suspended s;
    std::string entryName = r.readString();
    s.f = ctx_.module().getFunction(entryName);
    uint64_t executed = r.readU64();
    uint64_t interpreted = r.readU64();

    SimState &st = s.state;
    for (auto &v : st.ireg)
        v = r.readU64();
    for (auto &v : st.freg)
        v = r.readDouble();
    st.ccSA = static_cast<int64_t>(r.readU64());
    st.ccSB = static_cast<int64_t>(r.readU64());
    st.ccUA = r.readU64();
    st.ccUB = r.readU64();
    st.ccFA = r.readDouble();
    st.ccFB = r.readDouble();
    st.ccFP = r.readByte() != 0;
    st.sp = r.readU64();

    // Resolve a recorded position against a (re)translated body.
    // All fields are consumed before validating so a rejection
    // leaves the reader positioned at the next record. A call-site
    // index must name a real instruction; the resume position may
    // sit one past the block's end (pending fallthrough).
    auto readPos = [&](const MachineFunction *&mf,
                       MachineBasicBlock *&bb, size_t &idx,
                       bool callSite) -> bool {
        std::string name = r.readString();
        uint64_t nBlocks = r.readVaruint();
        uint64_t blockIdx = r.readVaruint();
        uint64_t nInstrs = r.readVaruint();
        uint64_t instrIdx = r.readVaruint();
        const Function *fn = ctx_.module().getFunction(name);
        if (!fn || fn->isDeclaration())
            return false;
        const MachineFunction *m = code_.get(fn);
        if (!m)
            return false;
        if (m->blocks().size() != nBlocks || blockIdx >= nBlocks)
            return false;
        MachineBasicBlock *b = m->blocks()[blockIdx].get();
        if (b->instrs().size() != nInstrs)
            return false;
        if (callSite ? instrIdx >= nInstrs : instrIdx > nInstrs)
            return false;
        mf = m;
        bb = b;
        idx = static_cast<size_t>(instrIdx);
        return true;
    };

    bool ok = s.f != nullptr && !s.f->isDeclaration();
    ok = readPos(s.mf, s.block, s.index, false) && ok;
    uint64_t nframes = r.readVaruint();
    if (nframes > kMaxCallDepth)
        return false;
    s.frames.resize(static_cast<size_t>(nframes));
    for (Frame &fr : s.frames) {
        ok = readPos(fr.mf, fr.block, fr.index, true) && ok;
        fr.spAtCall = r.readU64();
    }
    if (!ok)
        return false;

    if (hasPausedPin_) {
        code_.unpinEpoch(pausedPin_);
        hasPausedPin_ = false;
    }
    s.valid = true;
    suspended_ = std::move(s);
    executed_ = executed;
    interpreted_ = interpreted;
    // A suspended activation's frames point into live bodies: pin
    // the epoch now so they survive until resume().
    pausedPin_ = code_.pinEpoch();
    hasPausedPin_ = true;
    return true;
}

} // namespace llva
